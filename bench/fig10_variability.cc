// Reproduces paper Fig. 10: throughput over time in 1-minute windows per
// SSD type. RocksDB's throughput swings widely (and stalls entirely on the
// cache-overwhelmed SSD2); WiredTiger stays steady on every device.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 200;
  std::printf("=== Fig. 10: throughput variability across SSD types ===\n");

  const ssd::ProfileKind profiles[3] = {ssd::ProfileKind::kSsd1Enterprise,
                                        ssd::ProfileKind::kSsd2ConsumerQlc,
                                        ssd::ProfileKind::kSsd3Optane};
  const std::string engines[2] = {"lsm", "btree"};
  std::vector<core::ExperimentResult> all;
  double cv[2][3];
  for (int e = 0; e < 2; e++) {
    for (int p = 0; p < 3; p++) {
      core::ExperimentConfig c;
      c.engine = engines[e];
      c.profile = profiles[p];
      c.dataset_frac = 0.05;
      c.initial_state = ssd::InitialState::kTrimmed;
      c.duration_minutes = 90;
      c.window_minutes = 1;  // the paper's 1-minute averaging for this figure
      c.collect_lba_trace = false;
      c.name = std::string("fig10-") + engines[e] + "-" +
               ssd::ProfileName(profiles[p]);
      flags.Apply(&c);
      auto r = bench::MustRun(c, flags);
      cv[e][p] = r.throughput_cv;
      core::WriteResultsFile(c.name + ".csv", r.series.ToCsv());
      all.push_back(std::move(r));
    }
  }

  // Compact sparkline-style rendering of the 1-minute series.
  auto sparkline = [](const core::MetricsSeries& s) {
    double peak = 1e-9;
    for (const auto& w : s.windows) peak = std::max(peak, w.kv_kops);
    std::string out;
    const char* levels[] = {"_", ".", ":", "-", "=", "#"};
    for (const auto& w : s.windows) {
      const int idx = std::min(5, static_cast<int>(w.kv_kops / peak * 5.99));
      out += levels[idx];
    }
    return out;
  };
  std::printf("\n1-minute throughput profile (relative to own peak):\n");
  int i = 0;
  for (int e = 0; e < 2; e++) {
    for (int p = 0; p < 3; p++, i++) {
      std::printf("  %-11s %-5s |%s|\n", e == 0 ? "rocksdb" : "wiredtiger",
                  ssd::ProfileName(profiles[p]).c_str(),
                  sparkline(all[i].series).c_str());
    }
  }

  std::printf("\ncoefficient of variation of 1-minute throughput:\n");
  std::printf("  %-14s %8s %8s %8s\n", "", "SSD1", "SSD2", "SSD3");
  for (int e = 0; e < 2; e++) {
    std::printf("  %-14s %8.3f %8.3f %8.3f\n",
                e == 0 ? "rocksdb" : "wiredtiger", cv[e][0], cv[e][1],
                cv[e][2]);
  }

  core::Report report("Fig. 10: paper vs measured (variability)");
  // The paper describes ~100% swings for RocksDB on SSD1, long stalls on
  // SSD2, ~30% on SSD3; WiredTiger is steady everywhere. As CV targets:
  report.AddComparison("RocksDB CV on SSD1", 0.3, cv[0][0]);
  report.AddComparison("RocksDB CV on SSD2 (stall-heavy)", 0.6, cv[0][1]);
  report.AddComparison("RocksDB CV on SSD3", 0.1, cv[0][2]);
  report.AddComparison("WiredTiger CV on SSD1 (steady)", 0.03, cv[1][0]);
  report.AddComparison("WiredTiger CV on SSD2 (steady)", 0.03, cv[1][1]);
  report.AddNote("qualitative target: RocksDB varies far more than "
                 "WiredTiger on every device, worst on SSD2");
  report.PrintTo(stdout);

  core::WriteResultsFile("fig10_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
