// Reproduces paper Fig. 4: the CDF of per-LBA write counts (blktrace
// analysis) that explains Fig. 3. WiredTiger never writes ~45% of the LBA
// space (its single file plus block reuse stays compact); RocksDB's file
// churn sweeps the whole device.
#include <cstdio>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  std::printf("=== Fig. 4: CDF of LBA write probability ===\n");

  core::ExperimentResult results[2];
  const std::string engines[2] = {"lsm", "btree"};
  for (int e = 0; e < 2; e++) {
    core::ExperimentConfig c;
    c.engine = engines[e];
    c.duration_minutes = 210;
    c.collect_lba_trace = true;
    c.name = std::string("fig04-") + engines[e];
    flags.Apply(&c);
    results[e] = bench::MustRun(c, flags);
  }

  std::printf(
      "\nLBA fraction (sorted by writes)  |  cumulative write fraction\n"
      "   x      rocksdb-like   wiredtiger-like\n");
  std::string csv = "lba_fraction,lsm_write_fraction,btree_write_fraction\n";
  const auto& lsm_cdf = results[0].lba_cdf;
  const auto& bt_cdf = results[1].lba_cdf;
  for (size_t i = 0; i < lsm_cdf.size(); i += 5) {
    std::printf("  %4.2f     %8.4f       %8.4f\n", lsm_cdf[i].lba_fraction,
                lsm_cdf[i].write_fraction, bt_cdf[i].write_fraction);
  }
  for (size_t i = 0; i < lsm_cdf.size(); i++) {
    char line[96];
    snprintf(line, sizeof(line), "%.3f,%.5f,%.5f\n", lsm_cdf[i].lba_fraction,
             lsm_cdf[i].write_fraction, bt_cdf[i].write_fraction);
    csv += line;
  }
  core::WriteResultsFile("fig04_cdf.csv", csv);

  core::Report report("Fig. 4: paper vs measured");
  report.AddComparison("WiredTiger LBAs never written", 0.45,
                       results[1].lba_fraction_untouched, "frac");
  report.AddComparison("RocksDB LBAs never written", 0.0,
                       results[0].lba_fraction_untouched, "frac");
  report.AddNote(
      "the untouched LBAs act as implicit over-provisioning on a trimmed "
      "drive, which is why WiredTiger's WA-D depends on the initial state");
  report.PrintTo(stdout);
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
