// Reproduces paper Fig. 11: the first three pitfalls hold for other
// workloads too — (top) 128-byte values with proportionally more keys,
// (bottom) a 50:50 read/write mix — each on trimmed and preconditioned
// drives.
//
// Notable paper detail reproduced here: with 128 B values, WiredTiger's
// WA-D on a *trimmed* drive starts near 2 rather than 1, because packing
// many small KV pairs rewrites the same filesystem pages repeatedly during
// loading, fragmenting the flash blocks.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;
  std::printf("=== Fig. 11: other workloads (small values; 50:50 r/w) ===\n");

  struct Variant {
    const char* tag;
    size_t value_bytes;
    double write_fraction;
  };
  const Variant variants[2] = {{"128B-values", 128, 1.0},
                               {"rw50", 4000, 0.5}};
  const std::string engines[3] = {"lsm", "btree", "alog"};
  const ssd::InitialState states[2] = {ssd::InitialState::kTrimmed,
                                       ssd::InitialState::kPreconditioned};

  std::vector<core::ExperimentResult> all;
  for (const auto& v : variants) {
    for (int e = 0; e < 3; e++) {
      for (int s = 0; s < 2; s++) {
        core::ExperimentConfig c;
        c.initial_state = states[s];
        c.value_bytes = v.value_bytes;  // NumKeys scales automatically
        c.write_fraction = v.write_fraction;
        c.duration_minutes = 120;
        c.collect_lba_trace = false;
        c.name = std::string("fig11-") + v.tag + "-" +
                 engines[e] + "-" +
                 ssd::InitialStateName(states[s]);
        flags.Apply(&c);
        bench::SelectEngine(&c, engines[e]);
        auto r = bench::MustRun(c, flags);
        std::printf("%s\n", r.series.ToTable(c.name).c_str());
        all.push_back(std::move(r));
      }
    }
  }

  // Index into `all`: variant-major, then engine, then state.
  auto at = [&](int v, int e, int s) -> const core::ExperimentResult& {
    return all[static_cast<size_t>(v * 6 + e * 2 + s)];
  };

  core::Report report("Fig. 11: paper vs measured");
  report.AddComparison("128B rocksdb trim Kops (paper ~100-300)", 200,
                       at(0, 0, 0).steady.kv_kops, "Kops/s");
  report.AddComparison("128B wiredtiger trim Kops", 1.2,
                       at(0, 1, 0).steady.kv_kops, "Kops/s");
  report.AddComparison("128B wiredtiger trim first-window WA-D (~2)", 2.0,
                       at(0, 1, 0).series.windows.front().wa_d_cum);
  report.AddComparison("rw50 rocksdb trim Kops", 8.0,
                       at(1, 0, 0).steady.kv_kops, "Kops/s");
  report.AddComparison("rw50 wiredtiger trim Kops", 1.5,
                       at(1, 1, 0).steady.kv_kops, "Kops/s");
  // Pitfall 3 still applies: initial state changes steady state.
  report.AddComparison(
      "rw50 wiredtiger trim/prec Kops ratio (>1)", 1.2,
      at(1, 1, 0).steady.kv_kops /
          std::max(0.001, at(1, 1, 1).steady.kv_kops),
      "x");
  report.AddNote("pitfalls 1-3 (short tests, WA-D, initial state) show in "
                 "every variant with a sustained write component");
  report.AddNote(StrPrintf(
      "alog (not in paper): 128B trim %.2f Kops/s, rw50 trim %.2f Kops/s — "
      "small values amortize poorly in every engine but the log pays no "
      "read-modify-write for them",
      at(0, 2, 0).steady.kv_kops, at(1, 2, 0).steady.kv_kops));
  report.PrintTo(stdout);

  core::WriteResultsFile("fig11_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
