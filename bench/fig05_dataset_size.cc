// Reproduces paper Fig. 5 (Pitfall 4: testing a single dataset size):
// steady-state throughput, WA-D and WA-A across dataset sizes from 0.25 to
// 0.62 of the device capacity, on trimmed and preconditioned drives.
//
// Shape targets: throughput decreases with dataset size (mostly via WA-D,
// not WA-A); the RocksDB/WiredTiger speedup shrinks as the dataset grows;
// the initial state changes the comparison.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;  // sweep default: faster scale
  std::printf("=== Fig. 5: dataset size vs steady-state behavior ===\n");

  const double fracs[] = {0.25, 0.37, 0.5, 0.62};
  const std::string engines[2] = {"lsm", "btree"};
  const ssd::InitialState states[2] = {ssd::InitialState::kTrimmed,
                                       ssd::InitialState::kPreconditioned};

  std::vector<core::ExperimentResult> all;
  double kops[2][2][4], wad[2][2][4], waa[2][2][4];
  for (int s = 0; s < 2; s++) {
    for (int e = 0; e < 2; e++) {
      for (int f = 0; f < 4; f++) {
        core::ExperimentConfig c;
        c.engine = engines[e];
        c.initial_state = states[s];
        c.dataset_frac = fracs[f];
        c.duration_minutes = 120;
        c.collect_lba_trace = false;
        c.name = std::string("fig05-") + engines[e] + "-" +
                 ssd::InitialStateName(states[s]) + "-" +
                 std::to_string(fracs[f]).substr(0, 4);
        flags.Apply(&c);
        auto r = bench::MustRun(c, flags);
        kops[s][e][f] = r.steady.kv_kops;
        wad[s][e][f] = r.steady.wa_d_cum;
        waa[s][e][f] = r.steady.wa_a_cum;
        all.push_back(std::move(r));
      }
    }
  }

  auto print_grid = [&](const char* title, double g[2][2][4]) {
    std::printf("\n%s\n  dataset/capacity:      0.25    0.37    0.50    0.62\n",
                title);
    const char* rows[4] = {"rocksdb trim", "wiredtiger trim",
                           "rocksdb prec", "wiredtiger prec"};
    for (int s = 0; s < 2; s++) {
      for (int e = 0; e < 2; e++) {
        std::printf("  %-18s", rows[s * 2 + e]);
        for (int f = 0; f < 4; f++) std::printf("  %6.2f", g[s][e][f]);
        std::printf("\n");
      }
    }
  };
  print_grid("Fig5(a) throughput (Kops/s)", kops);
  print_grid("Fig5(b) WA-D", wad);
  print_grid("Fig5(c) WA-A", waa);

  core::Report report("Fig. 5: paper vs measured");
  // Paper values: trimmed speedup RocksDB/WT shrinks 3.3x -> 1.9x.
  report.AddComparison("trim speedup R/W at 0.25", 3.3,
                       kops[0][0][0] / kops[0][1][0], "x");
  report.AddComparison("trim speedup R/W at 0.62", 1.9,
                       kops[0][0][3] / kops[0][1][3], "x");
  report.AddComparison("prec speedup R/W at 0.25", 2.7,
                       kops[1][0][0] / kops[1][1][0], "x");
  report.AddComparison("prec speedup R/W at 0.62", 2.57,
                       kops[1][0][3] / kops[1][1][3], "x");
  report.AddComparison("RocksDB trim WA-D 0.25", 1.7, wad[0][0][0]);
  report.AddComparison("RocksDB trim WA-D 0.62", 2.2, wad[0][0][3]);
  report.AddComparison("WiredTiger trim WA-D 0.25", 1.1, wad[0][1][0]);
  report.AddComparison("WiredTiger trim WA-D 0.62", 1.6, wad[0][1][3]);
  report.AddComparison("WiredTiger prec WA-D 0.62", 2.6, wad[1][1][3]);
  report.AddComparison("RocksDB WA-A 0.25 (mild growth)", 11.0, waa[0][0][0]);
  report.AddComparison("RocksDB WA-A 0.62 (mild growth)", 12.3, waa[0][0][3]);
  report.AddNote("throughput decline with dataset size is driven by WA-D "
                 "(device GC), not WA-A: compare the three grids");
  report.PrintTo(stdout);

  core::WriteResultsFile("fig05_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
