// Reproduces paper Fig. 6 (Pitfall 5: ignoring space amplification):
//  (a) disk utilization vs dataset size — RocksDB runs out of space on the
//      two largest datasets, WiredTiger fits all six;
//  (b) space amplification — RocksDB 1.86..1.39, WiredTiger ~1.12..1.15;
//  (c) the storage-cost heatmap: which system needs fewer drives for a
//      given (total dataset, target throughput).
//
// The append-only log engine rides the same sweep: its footprint is the
// live data plus whatever dead bytes the GC trigger tolerates, so its
// space amplification sits near 1/(1-gc_trigger/2) — between the other
// two engines, tunable by a single knob.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;
  std::printf("=== Fig. 6: space amplification and storage cost ===\n");

  constexpr int kNumFracs = 6;
  constexpr int kNumEngines = 3;
  const double fracs[kNumFracs] = {0.25, 0.37, 0.5, 0.62, 0.75, 0.88};
  const std::string engines[kNumEngines] = {"lsm", "btree", "alog"};
  const char* labels[kNumEngines] = {"rocksdb", "wiredtiger", "alog"};
  std::vector<core::ExperimentResult> all;
  double util[kNumEngines][kNumFracs] = {}, amp[kNumEngines][kNumFracs] = {},
         kops[kNumEngines][kNumFracs] = {};
  bool oos[kNumEngines][kNumFracs] = {};
  for (int e = 0; e < kNumEngines; e++) {
    for (int f = 0; f < kNumFracs; f++) {
      core::ExperimentConfig c;
      c.dataset_frac = fracs[f];
      c.duration_minutes = 90;
      c.collect_lba_trace = false;
      c.name = std::string("fig06-") + engines[e] + "-" +
               std::to_string(fracs[f]).substr(0, 4);
      flags.Apply(&c);
      bench::SelectEngine(&c, engines[e]);
      auto r = bench::MustRun(c, flags);
      oos[e][f] = r.ran_out_of_space;
      util[e][f] = r.peak_disk_utilization;
      amp[e][f] = std::max(r.peak_space_amp, r.final_space_amp);
      kops[e][f] = r.steady.kv_kops;
      all.push_back(std::move(r));
    }
  }

  std::printf("\nFig6(a) peak disk utilization %% (OOS = ran out of space)\n"
              "  dataset/capacity:    0.25   0.37   0.50   0.62   0.75   0.88\n");
  for (int e = 0; e < kNumEngines; e++) {
    std::printf("  %-18s", labels[e]);
    for (int f = 0; f < kNumFracs; f++) {
      if (oos[e][f]) {
        std::printf("    OOS");
      } else {
        std::printf("  %5.1f", util[e][f] * 100);
      }
    }
    std::printf("\n");
  }
  std::printf("\nFig6(b) space amplification\n");
  for (int e = 0; e < kNumEngines; e++) {
    std::printf("  %-18s", labels[e]);
    for (int f = 0; f < kNumFracs; f++) {
      if (oos[e][f]) {
        std::printf("    OOS");
      } else {
        std::printf("  %5.2f", amp[e][f]);
      }
    }
    std::printf("\n");
  }

  // Fig6(c): cost heatmap from the measured operating points, mapped back
  // to paper-scale bytes (the paper's two systems; the log engine's points
  // are reported in the tables above).
  core::SystemProfile rocks{"rocksdb-like", {}};
  core::SystemProfile wt{"wiredtiger-like", {}};
  for (int f = 0; f < kNumFracs; f++) {
    const uint64_t paper_dataset = static_cast<uint64_t>(
        fracs[f] * static_cast<double>(ssd::kPaperDeviceBytes));
    if (!oos[0][f]) {
      rocks.points.push_back({paper_dataset, kops[0][f]});
    }
    if (!oos[1][f]) {
      wt.points.push_back({paper_dataset, kops[1][f]});
    }
  }
  std::vector<double> ds_axis = {1, 2, 3, 4, 5};       // TB
  std::vector<double> kops_axis = {5, 10, 15, 20, 25};  // Kops/s
  const auto heatmap = core::ComputeHeatmap(rocks, wt, ds_axis, kops_axis);
  std::printf("\nFig6(c) %s\n", heatmap.Render().c_str());

  core::Report report("Fig. 6: paper vs measured");
  report.AddComparison("RocksDB space amp at 0.25", 1.86, amp[0][0]);
  report.AddComparison("RocksDB space amp at 0.62", 1.39, amp[0][3]);
  report.AddComparison("WiredTiger space amp at 0.25", 1.15, amp[1][0]);
  report.AddComparison("WiredTiger space amp at 0.88", 1.12, amp[1][5]);
  report.AddComparison("RocksDB OOS datasets (count)", 2.0,
                       (oos[0][4] ? 1 : 0) + (oos[0][5] ? 1 : 0));
  report.AddComparison("WiredTiger OOS datasets (count)", 0.0,
                       (oos[1][4] ? 1 : 0) + (oos[1][5] ? 1 : 0));
  report.AddNote("heatmap: 'B' (wiredtiger) wins at large datasets with low "
                 "target throughput; 'A' (rocksdb) at high throughput");
  if (!oos[2][0] && !oos[2][2]) {
    report.AddNote(StrPrintf(
        "alog (not in paper): space amp %.2f at 0.25, %.2f at 0.50; GC "
        "keeps dead bytes under the gc_trigger fraction of the log",
        amp[2][0], amp[2][2]));
  }
  report.PrintTo(stdout);

  core::WriteResultsFile("fig06_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
