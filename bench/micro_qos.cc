// micro_qos: the QoS frontier of the simulated SSD's inter-class
// scheduler, on a compaction-heavy LSM workload. One flash channel, no
// write cache, background_io=1: every user commit's WAL append contends
// with compaction directly at the device, so foreground tail latency is
// at the mercy of background span scheduling — exactly the knob the
// per-channel QoS scheduler (SsdConfig::background_slice_ns /
// class_weights / background_rate_mbps) exists to turn.
//
// Cells (identical op stream; only the SSD scheduler config differs):
//   off        no QoS knobs — the FIFO baseline
//   slice=S    background preempted every S us (sweep, tightening)
//   +weights   slice + 4:4:1 service weights (background interleaves)
//   +rate=R    slice + token-bucket admission at R MB/s (sweep, lower)
//
// Self-checks (the bench exits non-zero instead of rotting):
//   - store contents byte-identical in every cell (scheduling must not
//     change WHAT is written, only WHEN),
//   - per-class scheduled backend work conserved EXACTLY across cells
//     (it is a pure function of the command byte stream),
//   - foreground p99 commit latency strictly decreases as the slice
//     tightens (the latency half of the frontier),
//   - settled time strictly increases as the admission rate drops (the
//     background-throughput half of the frontier),
//   - the no-knob cell reproduces the pre-QoS FIFO device exactly: a
//     repeat run is nanosecond-identical and reports zero preemptions,
//     zero throttle time and zero scheduler wait.
//
//   ./build/micro_qos
//   ./build/micro_qos --smoke        # CI-sized, same self-checks
//   ./build/micro_qos --puts=20000 --value-bytes=1024
//
// Single-threaded and deterministic.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "sim/io_class.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t puts = 8000;       // user commits per cell
  size_t value_bytes = 1024;  // value payload
  bool smoke = false;
};

struct QosSetting {
  const char* label;
  int64_t slice_us = 0;
  double rate_mbps = 0;
  std::array<int, sim::kNumIoClasses> weights{};
};

struct QosCell {
  int64_t foreground_ns = 0;  // clock at end of the commit loop
  int64_t settled_ns = 0;     // after SettleBackgroundWork + Flush
  double p50_us = 0;          // exact (sorted), not histogram buckets
  double p99_us = 0;
  double max_us = 0;
  int64_t scheduled_ns = 0;   // channel backend work, backlog included
  std::array<int64_t, sim::kNumIoClasses> class_scheduled_ns{};
  std::array<int64_t, sim::kNumIoClasses> class_wait_ns{};
  uint64_t preemptions = 0;
  int64_t bg_throttled_ns = 0;
  uint32_t checksum = 0;
};

// One cell: the fixed LSM workload under one SSD scheduler setting.
QosCell RunCell(const Flags& flags, const QosSetting& qos) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  // ONE channel and no write cache: user WAL appends (fg-write class,
  // queue 0) and compaction (background class, queue 1) serialize on
  // the same backend timeline, so inter-class scheduling is the whole
  // story. The cache would hide the contention behind async drains.
  cfg.channels = 1;
  cfg.timing.cache_bytes = 0;
  cfg.background_slice_ns = qos.slice_us * 1000;
  cfg.background_rate_mbps = qos.rate_mbps;
  cfg.class_weights = qos.weights;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &fs;
  options.clock = &clock;
  // Tiny structural sizes keep compaction running continuously; the
  // stall trigger is parked high so no commit ever joins the background
  // horizon — measured latency is pure device-level scheduling. WAL
  // sync on every record makes each commit a synchronous device write,
  // the latency-sensitive foreground a QoS scheduler serves.
  options.params = {{"memtable_bytes", std::to_string(32 << 10)},
                    {"l1_target_bytes", std::to_string(256 << 10)},
                    {"sst_target_bytes", std::to_string(128 << 10)},
                    {"l0_stall_trigger", "1000"},
                    // Batch compaction pacing into long bursts so the
                    // booked background periods span multiple quanta at
                    // every slice setting in the sweep.
                    {"compaction_work_per_user_write", "1024"},
                    {"wal_sync_every_bytes", "1"},
                    {"background_io", "1"}};
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  std::vector<int64_t> latencies;
  latencies.reserve(flags.puts);
  kv::WriteBatch batch;
  uint64_t next = 0xc0ffee;
  for (uint64_t i = 0; i < flags.puts; i++) {
    next = next * 6364136223846793005ull + 1442695040888963407ull;
    batch.Clear();
    batch.Put(kv::MakeKey((next >> 11) % (flags.puts / 4)),
              kv::MakeValue(i, flags.value_bytes));
    const int64_t t0 = clock.NowNanos();
    PTSB_CHECK_OK(store->Write(batch));
    latencies.push_back(clock.NowNanos() - t0);
  }
  QosCell r;
  r.foreground_ns = clock.NowNanos();

  PTSB_CHECK_OK(store->SettleBackgroundWork());
  PTSB_CHECK_OK(store->Flush());
  r.settled_ns = clock.NowNanos();

  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  PTSB_CHECK_OK(store->Close());

  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](uint64_t permille) {
    const size_t idx = std::min(latencies.size() - 1,
                                latencies.size() * permille / 1000);
    return static_cast<double>(latencies[idx]) / 1000.0;
  };
  r.p50_us = at(500);
  r.p99_us = at(990);
  r.max_us = static_cast<double>(latencies.back()) / 1000.0;

  for (const auto& ch : ssd.channel_stats()) {
    r.scheduled_ns += ch.scheduled_ns;
    r.preemptions += ch.preemptions;
    r.bg_throttled_ns += ch.bg_throttled_ns;
    for (int c = 0; c < sim::kNumIoClasses; c++) {
      r.class_scheduled_ns[static_cast<size_t>(c)] += ch.class_scheduled_ns[c];
      r.class_wait_ns[static_cast<size_t>(c)] += ch.class_wait_ns[c];
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--puts=", 7) == 0) {
      flags.puts = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same cells and self-checks, ~4x less work.
      flags.smoke = true;
      flags.puts = 2000;
    } else {
      std::printf(
          "flags: --puts=N user commits per cell (default 8000)\n"
          "       --value-bytes=N (default 1024)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }

  // The slice sweep (tightening) and the admission-rate sweep (lowering)
  // trace the two halves of the latency-vs-throughput frontier.
  const QosSetting settings[] = {
      {"off", 0, 0, {}},
      {"slice=800us", 800, 0, {}},
      {"slice=200us", 200, 0, {}},
      {"slice=50us", 50, 0, {}},
      {"slice=200us w=4:4:1", 200, 0, {4, 4, 1}},
      {"slice=200us rate=60", 200, 60, {}},
      {"slice=200us rate=20", 200, 20, {}},
  };
  constexpr size_t kOff = 0;
  constexpr size_t kSliceFirst = 1;  // 1..3: the tightening slice sweep
  constexpr size_t kSliceLast = 3;
  constexpr size_t kSliceMid = 2;    // rate/weight cells reuse this slice
  constexpr size_t kWeights = 4;
  constexpr size_t kRateFirst = 5;   // 5..6: the lowering rate sweep
  constexpr size_t kRateLast = 6;

  std::printf(
      "micro_qos: %llu LSM commits (%zu B values) vs continuous "
      "compaction on ONE channel, by SSD scheduler setting\n\n",
      static_cast<unsigned long long>(flags.puts), flags.value_bytes);
  std::printf("%-22s %9s %9s %11s %11s %8s %10s\n", "setting", "p50(us)",
              "p99(us)", "fg(ms)", "settled(ms)", "preempt", "thrtl(ms)");

  std::vector<QosCell> cells;
  std::string csv =
      "setting,slice_us,rate_mbps,p50_us,p99_us,foreground_ms,settled_ms,"
      "preemptions,bg_throttled_ms\n";
  for (const QosSetting& s : settings) {
    const QosCell r = RunCell(flags, s);
    cells.push_back(r);
    std::printf("%-22s %9.1f %9.1f %11.2f %11.2f %8llu %10.2f\n", s.label,
                r.p50_us, r.p99_us, static_cast<double>(r.foreground_ns) / 1e6,
                static_cast<double>(r.settled_ns) / 1e6,
                static_cast<unsigned long long>(r.preemptions),
                static_cast<double>(r.bg_throttled_ns) / 1e6);
    csv += StrPrintf("%s,%lld,%.0f,%.3f,%.3f,%.3f,%.3f,%llu,%.3f\n", s.label,
                     static_cast<long long>(s.slice_us), s.rate_mbps, r.p50_us,
                     r.p99_us, static_cast<double>(r.foreground_ns) / 1e6,
                     static_cast<double>(r.settled_ns) / 1e6,
                     static_cast<unsigned long long>(r.preemptions),
                     static_cast<double>(r.bg_throttled_ns) / 1e6);
  }
  const std::string csv_path = core::WriteResultsFile("micro_qos.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());

  // ---- Self-checks.
  // 1. Scheduling must not change contents.
  for (size_t i = 0; i < cells.size(); i++) {
    if (cells[i].checksum != cells[kOff].checksum) {
      std::printf("FAIL: cell \"%s\" changed store contents\n",
                  settings[i].label);
      return 1;
    }
  }
  // 2. Per-class scheduled backend work is a pure function of the
  // command byte stream — conserved exactly, cell by cell, class by
  // class.
  for (size_t i = 0; i < cells.size(); i++) {
    if (cells[i].scheduled_ns != cells[kOff].scheduled_ns ||
        cells[i].class_scheduled_ns != cells[kOff].class_scheduled_ns) {
      std::printf("FAIL: cell \"%s\" did not conserve scheduled backend "
                  "work (%lld ns vs %lld ns) — the scheduler may move "
                  "work, never create or destroy it\n",
                  settings[i].label,
                  static_cast<long long>(cells[i].scheduled_ns),
                  static_cast<long long>(cells[kOff].scheduled_ns));
      return 1;
    }
  }
  // 3. The latency half of the frontier: tighter slice -> strictly
  // lower foreground p99 (off counts as the loosest slice).
  for (size_t i = kSliceFirst; i <= kSliceLast; i++) {
    if (cells[i].p99_us >= cells[i - 1].p99_us) {
      std::printf("FAIL: fg p99 not strictly decreasing: \"%s\" %.1f us "
                  ">= \"%s\" %.1f us\n",
                  settings[i].label, cells[i].p99_us, settings[i - 1].label,
                  cells[i - 1].p99_us);
      return 1;
    }
    if (cells[i].preemptions == 0) {
      std::printf("FAIL: cell \"%s\" recorded no preemptions\n",
                  settings[i].label);
      return 1;
    }
  }
  // 4. The throughput half: lower admission rate -> strictly later
  // background completion (settled time), with real throttle time.
  for (size_t i = kRateFirst; i <= kRateLast; i++) {
    const size_t prev = (i == kRateFirst) ? kSliceMid : i - 1;
    if (cells[i].settled_ns <= cells[prev].settled_ns) {
      std::printf("FAIL: settled time not strictly increasing as the "
                  "admission rate drops: \"%s\" %.2f ms <= \"%s\" %.2f ms\n",
                  settings[i].label,
                  static_cast<double>(cells[i].settled_ns) / 1e6,
                  settings[prev].label,
                  static_cast<double>(cells[prev].settled_ns) / 1e6);
      return 1;
    }
    if (cells[i].bg_throttled_ns == 0) {
      std::printf("FAIL: cell \"%s\" recorded no throttle time\n",
                  settings[i].label);
      return 1;
    }
  }
  // 5. Weighted interleave must charge the foreground for background
  // grants (class_wait on fg-write exceeds the unweighted cell's).
  if (cells[kWeights].class_wait_ns[static_cast<size_t>(
          sim::IoClass::kForegroundWrite)] <=
      cells[2].class_wait_ns[static_cast<size_t>(
          sim::IoClass::kForegroundWrite)]) {
    std::printf("FAIL: 4:4:1 weights did not add interleaved background "
                "service to foreground windows\n");
    return 1;
  }
  // 6. No knobs = the pre-QoS FIFO device, reproduced exactly: the
  // scheduler counters stay zero and a repeat run is ns-identical.
  if (cells[kOff].preemptions != 0 || cells[kOff].bg_throttled_ns != 0 ||
      cells[kOff].class_wait_ns !=
          std::array<int64_t, sim::kNumIoClasses>{}) {
    std::printf("FAIL: QoS counters moved with no QoS knobs set\n");
    return 1;
  }
  const QosCell again = RunCell(flags, settings[kOff]);
  if (again.foreground_ns != cells[kOff].foreground_ns ||
      again.settled_ns != cells[kOff].settled_ns ||
      again.checksum != cells[kOff].checksum) {
    std::printf("FAIL: default (no QoS) run is not reproducible to the "
                "nanosecond (fg %lld vs %lld)\n",
                static_cast<long long>(again.foreground_ns),
                static_cast<long long>(cells[kOff].foreground_ns));
    return 1;
  }
  std::printf(
      "OK: contents identical and per-class scheduled work conserved in "
      "all %zu cells; fg p99 %.1f -> %.1f us as the slice tightens "
      "(%llu preemptions at the tightest); settled time %.2f -> %.2f ms "
      "as admission drops; no-knob cell reproduces FIFO exactly\n",
      cells.size(), cells[kOff].p99_us, cells[kSliceLast].p99_us,
      static_cast<unsigned long long>(cells[kSliceLast].preemptions),
      static_cast<double>(cells[kSliceMid].settled_ns) / 1e6,
      static_cast<double>(cells[kRateLast].settled_ns) / 1e6);
  return 0;
}
