// Reproduces paper Fig. 9 (Pitfall 7: testing a single SSD type): the same
// workload (10x smaller dataset, trimmed drives to isolate device
// character from GC effects) on three device classes.
//
// Shape targets: RocksDB is fastest on the Optane-like SSD3 and *slowest*
// on the consumer-QLC SSD2 (its bursty writes overwhelm the cache), while
// WiredTiger is *faster* on SSD2 than on the enterprise SSD1 (small
// steady writes absorbed by the big cache) — so either engine can "win"
// depending on the device.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 200;
  std::printf("=== Fig. 9: throughput across SSD types ===\n");

  const ssd::ProfileKind profiles[3] = {ssd::ProfileKind::kSsd1Enterprise,
                                        ssd::ProfileKind::kSsd2ConsumerQlc,
                                        ssd::ProfileKind::kSsd3Optane};
  const std::string engines[2] = {"lsm", "btree"};
  std::vector<core::ExperimentResult> all;
  double kops[2][3];
  for (int e = 0; e < 2; e++) {
    for (int p = 0; p < 3; p++) {
      core::ExperimentConfig c;
      c.engine = engines[e];
      c.profile = profiles[p];
      c.dataset_frac = 0.05;  // 10x smaller dataset (20 GB at paper scale)
      c.initial_state = ssd::InitialState::kTrimmed;
      c.duration_minutes = 90;
      c.collect_lba_trace = false;
      c.name = std::string("fig09-") + engines[e] + "-" +
               ssd::ProfileName(profiles[p]);
      flags.Apply(&c);
      auto r = bench::MustRun(c, flags);
      kops[e][p] = r.steady.kv_kops;
      all.push_back(std::move(r));
    }
  }

  std::printf("\nsteady-state throughput (Kops/s)\n");
  std::printf("  %-14s %8s %8s %8s\n", "", "SSD1", "SSD2", "SSD3");
  for (int e = 0; e < 2; e++) {
    std::printf("  %-14s %8.2f %8.2f %8.2f\n",
                e == 0 ? "rocksdb" : "wiredtiger", kops[e][0], kops[e][1],
                kops[e][2]);
  }

  core::Report report("Fig. 9: paper vs measured");
  report.AddComparison("RocksDB SSD1", 8.7, kops[0][0], "Kops/s");
  report.AddComparison("RocksDB SSD2", 1.3, kops[0][1], "Kops/s");
  report.AddComparison("RocksDB SSD3", 24.1, kops[0][2], "Kops/s");
  report.AddComparison("WiredTiger SSD1", 1.2, kops[1][0], "Kops/s");
  report.AddComparison("WiredTiger SSD2", 1.6, kops[1][1], "Kops/s");
  report.AddComparison("WiredTiger SSD3", 2.9, kops[1][2], "Kops/s");
  report.AddComparison("RocksDB best/worst spread", 18.5,
                       kops[0][2] / kops[0][1], "x");
  report.AddComparison("WiredTiger best/worst spread", 2.4,
                       kops[1][2] / std::min(kops[1][0], kops[1][1]), "x");
  report.AddNote("qualitative target: RocksDB SSD3 > SSD1 > SSD2; "
                 "WiredTiger SSD3 > SSD2 >= SSD1 (either engine can win)");
  report.PrintTo(stdout);

  core::WriteResultsFile("fig09_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
