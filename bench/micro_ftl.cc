// FTL ablations (DESIGN.md Section 8) and the paper's Section 4.2
// reference point: a pure uniform-random write workload over 60% of the
// device has WA-D around 1.4.
//
// Sweeps: utilization x hardware OP; GC write-placement policy; host
// open-block striping width; filesystem discard vs nodiscard.
#include <cstdio>

#include "bench_common.h"
#include "fs/file.h"
#include "fs/filesystem.h"
#include "ssd/precondition.h"
#include "ssd/ssd_device.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb {
namespace {

double RandomWriteWaD(double utilization, double op_frac, int stripe,
                      bool separate_gc) {
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.geometry.hardware_op_frac = op_frac;
  cfg.gc_separate_open_block = separate_gc;
  cfg.host_open_blocks = stripe;
  sim::SimClock clock;
  ssd::SsdDevice dev(cfg, &clock);
  const uint64_t lbas = dev.num_lbas();
  const auto used = static_cast<uint64_t>(utilization * static_cast<double>(lbas));
  Rng rng(7);
  for (uint64_t i = 0; i < used; i++) {
    PTSB_CHECK_OK(dev.Write(i, 1, nullptr));
  }
  // Steady the GC, then measure.
  for (uint64_t i = 0; i < 4 * used; i++) {
    PTSB_CHECK_OK(dev.Write(rng.Uniform(used), 1, nullptr));
  }
  const auto s0 = dev.smart();
  for (uint64_t i = 0; i < 2 * used; i++) {
    PTSB_CHECK_OK(dev.Write(rng.Uniform(used), 1, nullptr));
  }
  const auto s1 = dev.smart();
  return static_cast<double>(s1.nand_bytes_written - s0.nand_bytes_written) /
         static_cast<double>(s1.host_bytes_written - s0.host_bytes_written);
}

int Main(int argc, char**) {
  (void)argc;
  std::printf("=== micro_ftl: FTL ablations ===\n");

  std::printf("\nWA-D vs utilization (hardware OP = 12%%, stripe = 8):\n");
  std::printf("  util:   ");
  for (double u : {0.3, 0.45, 0.6, 0.75, 0.9}) std::printf("  %5.2f", u);
  std::printf("\n  WA-D:   ");
  std::string csv = "utilization,wa_d\n";
  for (double u : {0.3, 0.45, 0.6, 0.75, 0.9}) {
    const double wa = RandomWriteWaD(u, 0.12, 8, true);
    std::printf("  %5.2f", wa);
    char line[48];
    snprintf(line, sizeof(line), "%.2f,%.3f\n", u, wa);
    csv += line;
  }
  std::printf("\n");
  core::WriteResultsFile("micro_ftl_utilization.csv", csv);

  const double ref = RandomWriteWaD(0.6, 0.12, 8, true);
  core::Report report("Section 4.2 reference point");
  report.AddComparison("pure random write at 60%% utilization WA-D", 1.4,
                       ref);
  report.PrintTo(stdout);

  std::printf("\nWA-D vs hardware OP (util = 0.9):\n");
  for (double op : {0.07, 0.12, 0.2, 0.4}) {
    std::printf("  OP=%4.2f -> WA-D %5.2f\n", op,
                RandomWriteWaD(0.9, op, 8, true));
  }

  std::printf("\nGC write placement (util = 0.9, 90/10 skew workloads use "
              "tests; uniform here):\n");
  std::printf("  dedicated GC open block: WA-D %5.2f\n",
              RandomWriteWaD(0.9, 0.12, 8, true));
  std::printf("  shared with host:        WA-D %5.2f\n",
              RandomWriteWaD(0.9, 0.12, 8, false));

  std::printf("\nhost open-block striping width (util = 0.75):\n");
  for (int stripe : {1, 2, 8, 16}) {
    std::printf("  stripe=%2d -> WA-D %5.2f\n", stripe,
                RandomWriteWaD(0.75, 0.12, stripe, true));
  }

  // Filesystem discard vs nodiscard: with discard, deleting files trims
  // their LBAs, giving the FTL free space back (changes the Pitfall-3
  // story entirely).
  std::printf("\nfilesystem churn: nodiscard vs discard mount option\n");
  for (const bool nodiscard : {true, false}) {
    ssd::SsdConfig cfg;
    cfg.geometry.logical_bytes = 256ull << 20;
    cfg.geometry.hardware_op_frac = 0.12;
    sim::SimClock clock;
    ssd::SsdDevice dev(cfg, &clock);
    fs::FsOptions fso;
    fso.nodiscard = nodiscard;
    fs::SimpleFs fs(&dev, fso);
    Rng rng(11);
    // Churn: create/delete 8 MiB files filling ~70% of the fs.
    const std::string chunk(1 << 20, 'x');
    int generation = 0;
    std::vector<std::string> live;
    for (int i = 0; i < 400; i++) {
      if (live.size() >= 20 && rng.Bernoulli(0.55)) {
        const size_t idx = rng.Uniform(live.size());
        PTSB_CHECK_OK(fs.Delete(live[idx]));
        live.erase(live.begin() + static_cast<long>(idx));
      } else {
        const std::string name = "f" + std::to_string(generation++);
        auto file = fs.Create(name);
        PTSB_CHECK_OK(file.status());
        for (int j = 0; j < 8; j++) PTSB_CHECK_OK((*file)->Append(chunk));
        live.push_back(name);
      }
    }
    std::printf("  %-10s WA-D %5.2f  (FTL-valid pages: %llu)\n",
                nodiscard ? "nodiscard:" : "discard:", dev.smart().WaD(),
                static_cast<unsigned long long>(
                    dev.ftl().GetStats().valid_pages));
  }
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
