// Reproduces paper Fig. 7 (Pitfall 6: overlooking software OP): reserving
// 100 GB of a 400 GB drive as never-written space. RocksDB gains ~1.8x
// throughput (WA-D 2.3 -> 1.4) in both initial states; WiredTiger barely
// benefits on a trimmed drive (its untouched LBAs already act as OP) and
// moderately on a preconditioned one.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;
  std::printf("=== Fig. 7: software over-provisioning (OP) ===\n");

  const std::string engines[2] = {"lsm", "btree"};
  const ssd::InitialState states[2] = {ssd::InitialState::kTrimmed,
                                       ssd::InitialState::kPreconditioned};
  const double partitions[2] = {1.0, 0.75};  // no OP vs 100GB/400GB extra OP

  std::vector<core::ExperimentResult> all;
  double kops[2][2][2], wad[2][2][2];  // [engine][state][op]
  for (int e = 0; e < 2; e++) {
    for (int s = 0; s < 2; s++) {
      for (int p = 0; p < 2; p++) {
        core::ExperimentConfig c;
        c.engine = engines[e];
        c.initial_state = states[s];
        c.partition_frac = partitions[p];
        c.dataset_frac = 0.5;  // the 200 GB dataset
        c.duration_minutes = 120;
        c.collect_lba_trace = false;
        c.name = std::string("fig07-") + engines[e] + "-" +
                 ssd::InitialStateName(states[s]) +
                 (p == 0 ? "-noOP" : "-extraOP");
        flags.Apply(&c);
        auto r = bench::MustRun(c, flags);
        kops[e][s][p] = r.steady.kv_kops;
        wad[e][s][p] = r.steady.wa_d_cum;
        all.push_back(std::move(r));
      }
    }
  }

  std::printf("\nFig7(a) throughput Kops/s        noOP   extraOP\n");
  std::printf("\nFig7 grid: rows = config, columns = {no OP, extra OP}\n");
  const char* rows[4] = {"rocksdb trim", "rocksdb prec", "wiredtiger trim",
                         "wiredtiger prec"};
  std::printf("  %-18s %8s %8s %8s %8s\n", "", "Kops", "Kops+OP", "WA-D",
              "WA-D+OP");
  for (int e = 0; e < 2; e++) {
    for (int s = 0; s < 2; s++) {
      std::printf("  %-18s %8.2f %8.2f %8.2f %8.2f\n", rows[e * 2 + s],
                  kops[e][s][0], kops[e][s][1], wad[e][s][0], wad[e][s][1]);
    }
  }

  core::Report report("Fig. 7: paper vs measured");
  report.AddComparison("RocksDB trim speedup from OP", 1.83,
                       kops[0][0][1] / kops[0][0][0], "x");
  report.AddComparison("RocksDB prec speedup from OP", 1.86,
                       kops[0][1][1] / kops[0][1][0], "x");
  report.AddComparison("RocksDB trim WA-D noOP", 2.3, wad[0][0][0]);
  report.AddComparison("RocksDB trim WA-D extraOP", 1.4, wad[0][0][1]);
  report.AddComparison("WiredTiger trim speedup from OP (~none)", 0.98,
                       kops[1][0][1] / kops[1][0][0], "x");
  report.AddComparison("WiredTiger prec speedup from OP", 1.14,
                       kops[1][1][1] / kops[1][1][0], "x");
  report.AddComparison("WiredTiger prec WA-D noOP", 1.7, wad[1][1][0]);
  report.AddComparison("WiredTiger prec WA-D extraOP", 1.3, wad[1][1][1]);
  report.PrintTo(stdout);

  core::WriteResultsFile("fig07_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
