// Reproduces paper Fig. 3 (Pitfall 3: overlooking the SSD's internal
// state): the same workload on a trimmed vs a preconditioned drive.
//
// Paper findings to reproduce in shape:
//  - WiredTiger's steady state differs *persistently* between the two
//    initial states (it writes only ~55% of the LBA space, so a trimmed
//    drive keeps acting as extra OP forever);
//  - RocksDB's WA-D converges to roughly the same value in both states
//    (it cycles the whole LBA space).
#include <cstdio>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  std::printf(
      "=== Fig. 3: initial drive state (trimmed vs preconditioned) ===\n");

  core::ExperimentResult r[2][2];  // [engine][state]
  const std::string engines[2] = {"lsm", "btree"};
  const ssd::InitialState states[2] = {ssd::InitialState::kTrimmed,
                                       ssd::InitialState::kPreconditioned};
  for (int e = 0; e < 2; e++) {
    for (int s = 0; s < 2; s++) {
      core::ExperimentConfig c;
      c.engine = engines[e];
      c.initial_state = states[s];
      c.duration_minutes = 210;
      c.name = std::string("fig03-") + engines[e] + "-" +
               ssd::InitialStateName(states[s]);
      flags.Apply(&c);
      r[e][s] = bench::MustRun(c, flags);
      std::printf("%s\n",
                  r[e][s].series.ToTable(c.name).c_str());
      core::WriteResultsFile(c.name + ".csv", r[e][s].series.ToCsv());
    }
  }

  core::Report report("Fig. 3: paper vs measured (steady state)");
  report.AddComparison("RocksDB trimmed WA-D", 2.1,
                       r[0][0].steady.wa_d_cum);
  report.AddComparison("RocksDB preconditioned WA-D", 2.3,
                       r[0][1].steady.wa_d_cum);
  report.AddComparison("RocksDB WA-D prec/trim (converges ~1)", 1.1,
                       r[0][1].steady.wa_d_cum / r[0][0].steady.wa_d_cum,
                       "x");
  report.AddComparison("WiredTiger trimmed WA-D", 1.5,
                       r[1][0].steady.wa_d_cum);
  report.AddComparison("WiredTiger preconditioned WA-D", 2.4,
                       r[1][1].steady.wa_d_cum);
  report.AddComparison("WiredTiger WA-D prec/trim (stays >1)", 1.6,
                       r[1][1].steady.wa_d_cum / r[1][0].steady.wa_d_cum,
                       "x");
  report.AddComparison("RocksDB trimmed Kops", 3.0, r[0][0].steady.kv_kops);
  report.AddComparison("RocksDB preconditioned Kops", 2.6,
                       r[0][1].steady.kv_kops);
  report.AddComparison("WiredTiger trimmed Kops", 0.9,
                       r[1][0].steady.kv_kops);
  report.AddComparison("WiredTiger preconditioned Kops", 0.75,
                       r[1][1].steady.kv_kops);
  report.AddNote(
      "pitfall: running the same test on an uncontrolled drive state gives "
      "non-reproducible results, especially for the B+Tree engine");
  report.PrintTo(stdout);

  core::WriteResultsFile(
      "fig03_summary.csv",
      core::SteadySummaryCsv({r[0][0], r[0][1], r[1][0], r[1][1]}));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
