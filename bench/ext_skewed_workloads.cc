// Extension beyond the paper: skewed (zipfian) update workloads.
//
// The paper's update workload is uniform random (Section 3.2). Real
// deployments skew; skew changes the SSD-level picture in a specific way:
// hot logical pages are invalidated quickly, so flash blocks holding hot
// data drain to low valid counts and become cheap GC victims, while
// cold-only blocks stay full and untouched. Expectation: WA-D *decreases*
// with skew for the B+Tree engine (in-place-ish updates preserve the
// logical->physical heat mapping), while the LSM's compactions launder
// the skew away (every compaction rewrites hot and cold keys together),
// keeping WA-D closer to the uniform case — another example of engine
// design interacting with firmware behavior (the paper's core thesis).
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;
  std::printf("=== extension: zipfian update skew vs WA-D ===\n");

  struct Variant {
    const char* tag;
    kv::Distribution dist;
    double theta;
  };
  const Variant variants[3] = {{"uniform", kv::Distribution::kUniform, 0},
                               {"zipf0.8", kv::Distribution::kZipfian, 0.8},
                               {"zipf0.99", kv::Distribution::kZipfian, 0.99}};
  const std::string engines[2] = {"lsm", "btree"};

  std::vector<core::ExperimentResult> all;
  double wad[2][3], kops[2][3], waa[2][3];
  for (int e = 0; e < 2; e++) {
    for (int v = 0; v < 3; v++) {
      core::ExperimentConfig c;
      c.engine = engines[e];
      c.initial_state = ssd::InitialState::kPreconditioned;  // GC active
      c.distribution = variants[v].dist;
      c.zipf_theta = variants[v].theta;
      c.duration_minutes = 120;
      c.collect_lba_trace = false;
      c.name = std::string("ext-skew-") + engines[e] +
               "-" + variants[v].tag;
      flags.Apply(&c);
      auto r = bench::MustRun(c, flags);
      wad[e][v] = r.steady.wa_d_cum;
      kops[e][v] = r.steady.kv_kops;
      waa[e][v] = r.steady.wa_a_cum;
      all.push_back(std::move(r));
    }
  }

  std::printf("\npreconditioned SSD1, steady state:\n");
  std::printf("  %-12s %10s %8s %8s %8s\n", "engine", "workload", "Kops/s",
              "WA-A", "WA-D");
  for (int e = 0; e < 2; e++) {
    for (int v = 0; v < 3; v++) {
      std::printf("  %-12s %10s %8.2f %8.2f %8.2f\n",
                  e == 0 ? "rocksdb" : "wiredtiger", variants[v].tag,
                  kops[e][v], waa[e][v], wad[e][v]);
    }
  }

  core::Report report("extension findings");
  report.AddComparison("btree WA-D uniform -> zipf0.99 (expect drop)",
                       wad[1][0], wad[1][2]);
  report.AddComparison("lsm WA-A uniform -> zipf0.99 (expect drop: "
                       "duplicate keys compact away)",
                       waa[0][0], waa[0][2]);
  report.AddNote("columns here are measured-vs-measured (uniform as the "
                 "baseline), not paper values: this experiment extends the "
                 "paper");
  report.PrintTo(stdout);

  core::WriteResultsFile("ext_skew_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
