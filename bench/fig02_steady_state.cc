// Reproduces paper Fig. 2 (Pitfall 1: running short tests) and the
// Section 4.2 end-to-end write-amplification numbers.
//
// Setup: trimmed SSD1, 50M x 4000B dataset (50% of the device), one thread
// of uniform-random overwrites for 210 minutes. The paper's headline: early
// measurements overstate RocksDB's sustainable throughput by ~3x, because
// WA-A grows as LSM levels fill and WA-D grows as SSD GC starts.
//
// Beyond the paper's two systems, the same sweep runs the append-only log
// engine ("alog"): the limiting case of sequential-write friendliness,
// whose only application-level amplification is segment GC.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"

namespace ptsb {
namespace {

const char* const kEngines[] = {"lsm", "btree", "alog"};

int Main(int argc, char** argv) {
  const auto flags = bench::BenchFlags::Parse(argc, argv);
  std::printf(
      "=== Fig. 2: steady-state vs bursty performance (trimmed SSD1) ===\n");

  std::vector<core::ExperimentResult> all;
  for (const char* engine : kEngines) {
    core::ExperimentConfig c;
    c.initial_state = ssd::InitialState::kTrimmed;
    c.dataset_frac = 0.5;
    c.duration_minutes = 210;
    c.window_minutes = 10;
    c.name = std::string("fig02-") + engine;
    flags.Apply(&c);
    bench::SelectEngine(&c, engine);
    all.push_back(bench::MustRun(c, flags));
  }
  const core::ExperimentResult& lsm = all[0];
  const core::ExperimentResult& bt = all[1];
  const core::ExperimentResult& alog = all[2];

  std::printf("%s\n", lsm.series.ToTable("Fig2(a,c) RocksDB-like over time")
                          .c_str());
  std::printf("%s\n", bt.series.ToTable("Fig2(b,d) WiredTiger-like over time")
                          .c_str());
  std::printf("%s\n",
              alog.series.ToTable("Fig2(+) append-only log over time")
                  .c_str());

  // Where the application-level writes went, per engine (the WA-A story:
  // compaction vs page writeback vs segment GC).
  std::printf("engine write attribution:\n");
  for (size_t e = 0; e < all.size(); e++) {
    bench::PrintWriteAttribution(kEngines[e], all[e].engine_stats);
  }
  std::printf("\n");

  // Bursty (first window) vs steady-state comparison.
  const auto& l_first = lsm.series.windows.front();
  const auto& b_first = bt.series.windows.front();
  const auto& a_first = alog.series.windows.front();

  core::Report report("Fig. 2 / Section 4.1-4.2: paper vs measured");
  report.AddComparison("RocksDB initial throughput", 11.0, l_first.kv_kops,
                       "Kops/s");
  report.AddComparison("RocksDB steady throughput", 3.0, lsm.steady.kv_kops,
                       "Kops/s");
  report.AddComparison("RocksDB burst/steady ratio", 3.6,
                       l_first.kv_kops / lsm.steady.kv_kops, "x");
  report.AddComparison("RocksDB initial device writes", 375.0,
                       l_first.dev_write_mbps, "MB/s");
  report.AddComparison("RocksDB steady WA-A", 12.0, lsm.steady.wa_a_cum);
  report.AddComparison("RocksDB steady WA-D", 2.1, lsm.steady.wa_d_cum);
  report.AddComparison("RocksDB end-to-end WA", 25.0, lsm.EndToEndWa());
  report.AddComparison("WiredTiger initial throughput", 1.2, b_first.kv_kops,
                       "Kops/s");
  report.AddComparison("WiredTiger steady throughput", 0.9,
                       bt.steady.kv_kops, "Kops/s");
  report.AddComparison("WiredTiger steady WA-A", 10.0, bt.steady.wa_a_cum);
  report.AddComparison("WiredTiger steady WA-D", 1.5, bt.steady.wa_d_cum);
  report.AddComparison("WiredTiger end-to-end WA", 11.9, bt.EndToEndWa());
  report.AddComparison("e2e-WA ratio RocksDB/WiredTiger", 2.1,
                       lsm.EndToEndWa() / bt.EndToEndWa(), "x");
  report.AddNote("absolute numbers depend on device calibration; the paper's"
                 " qualitative claims are the targets");
  report.AddNote(StrPrintf(
      "alog (not in paper): initial %.2f Kops/s, steady %.2f Kops/s, "
      "WA-A=%.2f WA-D=%.2f e2e-WA=%.2f — pure-log lower bound on WA-A",
      a_first.kv_kops, alog.steady.kv_kops, alog.steady.wa_a_cum,
      alog.steady.wa_d_cum, alog.EndToEndWa()));
  report.PrintTo(stdout);

  core::WriteResultsFile("fig02_lsm_series.csv", lsm.series.ToCsv());
  core::WriteResultsFile("fig02_btree_series.csv", bt.series.ToCsv());
  core::WriteResultsFile("fig02_alog_series.csv", alog.series.ToCsv());
  core::WriteResultsFile("fig02_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
