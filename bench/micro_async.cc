// micro_async: simulated device time of a cross-shard batched write
// workload as a function of queue_depth x channels — the VIRTUAL-time
// counterpart of micro_sharded's wall-clock sweep, and the bench behind
// the async-submission item on the ROADMAP (Roh et al.'s internal
// parallelism, PAPERS.md). The sharded store commits each batch's
// per-shard sub-batches through KVStore::WriteAsync with at most
// queue_depth in flight; the simulated SSD serializes queue q on channel
// q % channels. One channel or queue_depth=1 reproduces the serialized
// single-server device; more of both lets the sub-commits overlap in
// virtual time, so the same workload finishes in less simulated device
// time with IDENTICAL final contents (checksummed across all cells).
//
//   ./build/micro_async
//   ./build/micro_async --batches=2000 --batch=64 --value-bytes=1024
//
// Single-threaded and deterministic: the sweep replays the exact same
// op stream into every cell, so cells differ only in the timing model.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t batches = 512;
  size_t batch = 32;           // entries per WriteBatch
  size_t value_bytes = 4000;   // paper-sized values: program time matters
  uint64_t key_space = 4096;   // ids cycled through by the put stream
  int shards = 8;
};

struct CellResult {
  double device_ms = 0;              // final virtual time
  uint32_t checksum = 0;             // CRC32C over the final contents
  std::vector<double> utilization;   // per-channel busy fraction
};

CellResult RunCell(const Flags& flags, int channels, int queue_depth) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = channels;
  // No write cache: host writes are synchronous with the channel backend,
  // so channel overlap (not cache absorption) is what the sweep measures
  // — the worst case for a serialized device and the best showcase for
  // multi-queue submission.
  cfg.timing.cache_bytes = 0;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = &fs;
  options.clock = &clock;
  options.params = {{"shards", std::to_string(flags.shards)},
                    {"inner_engine", "alog"},
                    {"segment_bytes", std::to_string(4 << 20)},
                    // Dispatch from this thread only: the virtual
                    // timeline stays deterministic.
                    {"parallel_write", "0"},
                    {"queue_depth", std::to_string(queue_depth)}};
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  uint64_t next_id = 0;
  for (uint64_t b = 0; b < flags.batches; b++) {
    batch.Clear();
    for (size_t i = 0; i < flags.batch; i++) {
      const uint64_t id = next_id++ % flags.key_space;
      batch.Put(kv::MakeKey(id), kv::MakeValue(b ^ id, flags.value_bytes));
    }
    PTSB_CHECK_OK(store->Write(batch));
  }
  PTSB_CHECK_OK(store->Flush());

  CellResult r;
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  PTSB_CHECK_OK(store->Close());

  const int64_t total_ns = clock.NowNanos();
  r.device_ms = static_cast<double>(total_ns) / 1e6;
  for (const auto& ch : ssd.channel_stats()) {
    r.utilization.push_back(total_ns > 0
                                ? static_cast<double>(ch.busy_ns) /
                                      static_cast<double>(total_ns)
                                : 0.0);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--batches=", 10) == 0) {
      flags.batches = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      flags.batch = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      flags.shards = static_cast<int>(std::strtol(arg + 9, nullptr, 10));
    } else if (std::strncmp(arg, "--key-space=", 12) == 0) {
      flags.key_space = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same sweep shape and self-checks, ~10x less work.
      flags.batches = 96;
      flags.batch = 16;
      flags.value_bytes = 1024;
      flags.key_space = 512;
      flags.shards = 8;
    } else {
      std::printf(
          "flags: --batches=N (default 512)\n"
          "       --batch=N entries per WriteBatch (default 32)\n"
          "       --value-bytes=N (default 4000)\n"
          "       --shards=N sharded store width (default 8)\n"
          "       --key-space=N distinct keys cycled through (default "
          "4096)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }

  const int channel_axis[] = {1, 2, 4, 8};
  const int depth_axis[] = {1, 2, 4, 8};

  std::printf(
      "micro_async: simulated device time (ms) of %llu batches x %zu "
      "entries x %zu B values through sharded(%dx alog), by queue_depth "
      "(rows) x channels (columns)\n\n",
      static_cast<unsigned long long>(flags.batches), flags.batch,
      flags.value_bytes, flags.shards);
  std::printf("%-12s |", "queue_depth");
  for (const int ch : channel_axis) std::printf(" %4d ch ", ch);
  std::printf("\n");

  std::string csv = "queue_depth,channels,device_ms,mean_utilization\n";
  bool checksums_agree = true;
  uint32_t baseline_sum = 0;
  double serialized_ms = 0, overlapped_ms = 0;
  std::vector<double> best_util;
  for (const int qd : depth_axis) {
    std::printf("%-12d |", qd);
    for (const int ch : channel_axis) {
      const CellResult r = RunCell(flags, ch, qd);
      std::printf(" %7.1f ", r.device_ms);
      if (qd == 1 && ch == 1) {
        baseline_sum = r.checksum;
        serialized_ms = r.device_ms;
      } else if (r.checksum != baseline_sum) {
        checksums_agree = false;
      }
      if (qd == 8 && ch == 4) {
        overlapped_ms = r.device_ms;
        best_util = r.utilization;
      }
      double util_sum = 0;
      for (const double u : r.utilization) util_sum += u;
      csv += StrPrintf("%d,%d,%.3f,%.4f\n", qd, ch, r.device_ms,
                       util_sum / static_cast<double>(r.utilization.size()));
    }
    std::printf("\n");
  }

  std::printf("\nper-channel utilization at queue_depth=8, channels=4:");
  for (size_t c = 0; c < best_util.size(); c++) {
    std::printf(" ch%zu=%.1f%%", c, best_util[c] * 100);
  }
  std::printf("\n");

  const std::string csv_path = core::WriteResultsFile("micro_async.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());

  // Self-check: identical contents everywhere, and the multi-channel
  // async run strictly beats the serialized single-channel run.
  if (!checksums_agree) {
    std::printf("FAIL: final store contents differ across cells\n");
    return 1;
  }
  if (overlapped_ms >= serialized_ms) {
    std::printf("FAIL: queue_depth=8 x 4 channels (%.1f ms) did not beat "
                "the serialized run (%.1f ms)\n",
                overlapped_ms, serialized_ms);
    return 1;
  }
  std::printf("OK: contents identical in every cell; 4-channel qd=8 run is "
              "%.2fx faster in simulated device time than serialized\n",
              serialized_ms / overlapped_ms);
  return 0;
}
