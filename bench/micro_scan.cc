// micro_scan: the scan-side counterpart of micro_read. Three experiments,
// all self-checking:
//
// 1. Snapshot isolation under write load — for EVERY engine cell (the
//    three bare engines, sharded over each, cached over each): take a
//    snapshot, compute its scan checksum, then let 4 concurrent writer
//    threads overwrite and range-delete the keyspace while the main
//    thread keeps re-scanning through the snapshot. Every scan — during
//    the churn and after the writers join — must return the exact
//    snapshot-time checksum. This is the paper's "reads don't block
//    writes" contract made falsifiable: the cursor observes a frozen
//    sequence, not whatever compaction/flush/GC left behind.
//
// 2. Iterator readahead sweep — a quiesced store scanned twice through a
//    snapshot cursor: once at read_queue_depth=1 (the sequential
//    baseline: every leaf/block/segment read completes before the next
//    is issued) and once at read_queue_depth=4 with
//    ReadOptions::readahead=8 on a 4-channel device. The prefetched
//    reads are submitted on distinct foreground-read lanes at the same
//    virtual instant, so the SSD overlaps them across channels —
//    completion is the max, not the sum. Self-check: identical scan
//    checksums, and the fanned scan is strictly faster in simulated
//    device time for every engine config.
//
// 3. Snapshot pin accounting — a snapshot taken before heavy churn pins
//    resources the engine would otherwise reclaim (obsolete SSTs past
//    compaction, zombie alog segments past GC, the cached wrapper's
//    buffered entries). GetStats().snapshot_pinned_bytes must be > 0
//    while the snapshot lives and return to exactly 0 after the last
//    reference drops — pins are accounted, not leaked.
//
//   ./build/micro_scan
//   ./build/micro_scan --smoke        # CI-sized, same self-checks
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t keys = 2048;       // loaded key count (isolation cell)
  size_t value_bytes = 256;   // isolation-cell value payload
  int writer_rounds = 6;      // churn rounds per writer thread
  uint64_t scan_keys = 3072;  // readahead-cell key count
  size_t scan_value_bytes = 2048;
  bool smoke = false;
};

struct EngineConfig {
  std::string label;
  std::string engine;
  std::map<std::string, std::string> params;
};

std::map<std::string, std::string> SmallParams(const std::string& engine) {
  if (engine == "lsm") {
    return {{"memtable_bytes", std::to_string(64 << 10)},
            {"l1_target_bytes", std::to_string(256 << 10)},
            {"sst_target_bytes", std::to_string(128 << 10)},
            {"block_bytes", "4096"}};
  }
  if (engine == "btree") {
    return {{"leaf_max_bytes", std::to_string(4 << 10)},
            {"internal_max_bytes", "1024"},
            {"cache_bytes", std::to_string(32 << 10)},
            {"checkpoint_every_bytes", std::to_string(256 << 10)}};
  }
  if (engine == "alog") {
    return {{"segment_bytes", std::to_string(128 << 10)},
            {"gc_trigger", "0.4"}};
  }
  return {};
}

// Every engine cell: bare engines, sharded over each, cached over each.
std::vector<EngineConfig> AllEngineConfigs() {
  kv::RegisterBuiltinEngines();
  std::vector<EngineConfig> configs;
  for (const std::string name : {"lsm", "btree", "alog"}) {
    configs.push_back({name, name, SmallParams(name)});
  }
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = SmallParams(inner);
    params["shards"] = "3";
    params["inner_engine"] = inner;
    configs.push_back({"sharded/" + inner, "sharded", std::move(params)});
  }
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = SmallParams(inner);
    params["inner_engine"] = inner;
    params["write_buffer_bytes"] = std::to_string(32 << 10);
    params["read_cache_bytes"] = std::to_string(64 << 10);
    configs.push_back({"cached/" + inner, "cached", std::move(params)});
  }
  return configs;
}

uint32_t ChecksumSnapshotScan(kv::KVStore* store, const kv::Snapshot* snap,
                              int readahead = 0) {
  kv::ReadOptions opts;
  opts.snapshot = snap;
  opts.readahead = readahead;
  std::unique_ptr<kv::KVStore::Iterator> it = store->NewIterator(opts);
  uint32_t sum = 0;
  uint64_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    sum = Crc32c(sum, it->key().data(), it->key().size());
    sum = Crc32c(sum, it->value().data(), it->value().size());
    n++;
  }
  PTSB_CHECK_OK(it->status());
  // Fold the entry count in so "same bytes, fewer rows" cannot collide.
  sum = Crc32c(sum, reinterpret_cast<const char*>(&n), sizeof(n));
  return sum;
}

// ---- Cell 1: snapshot isolation under 4 concurrent writer threads.

bool RunIsolationCell(const Flags& flags, const EngineConfig& config) {
  block::MemoryBlockDevice dev(4096, 1 << 15);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &fs;
  options.params = config.params;
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  for (uint64_t id = 0; id < flags.keys; id++) {
    batch.Put(kv::MakeKey(id), kv::MakeValue(id, flags.value_bytes));
    if (batch.Count() >= 64) {
      PTSB_CHECK_OK(store->Write(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));

  auto got = store->GetSnapshot();
  PTSB_CHECK_OK(got.status());
  std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
  const uint32_t golden = ChecksumSnapshotScan(store.get(), snap.get());

  // 4 writers, each churning its own quarter of the keyspace:
  // overwrites with round-stamped values plus a range delete per round,
  // so compaction/flush/GC/eviction all run under the live snapshot.
  constexpr size_t kWriters = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  const uint64_t slice = flags.keys / kWriters;
  for (size_t w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      const uint64_t base = w * slice;
      for (int round = 1; round <= flags.writer_rounds; round++) {
        kv::WriteBatch wb;
        for (uint64_t i = 0; i < slice; i++) {
          wb.Put(kv::MakeKey(base + i),
                 kv::MakeValue(base + i + round * 7919, flags.value_bytes));
          if (wb.Count() >= 32) {
            if (!store->Write(wb).ok()) { failed = true; return; }
            wb.Clear();
          }
        }
        // Carve a hole out of this writer's slice; refilled next round.
        wb.DeleteRange(kv::MakeKey(base + slice / 4),
                       kv::MakeKey(base + slice / 2));
        if (!store->Write(wb).ok()) { failed = true; return; }
      }
    });
  }

  // Re-scan the snapshot while the writers churn: every pass must see
  // the exact snapshot-time state.
  bool isolated = true;
  for (int pass = 0; pass < 4 && isolated; pass++) {
    isolated = ChecksumSnapshotScan(store.get(), snap.get()) == golden;
  }
  for (std::thread& w : writers) w.join();
  if (failed.load()) {
    std::printf("FAIL: %s writer thread hit an error\n", config.label.c_str());
    return false;
  }
  // After the dust settles the snapshot still reads its frozen state...
  if (ChecksumSnapshotScan(store.get(), snap.get()) != golden || !isolated) {
    std::printf("FAIL: %s snapshot scan drifted from snapshot-time state\n",
                config.label.c_str());
    return false;
  }
  // ... and the live view genuinely moved (the churn wasn't a no-op).
  std::string v;
  const Status live = store->Get(kv::MakeKey(slice / 4), &v);
  if (live.ok() && v == kv::MakeValue(slice / 4, flags.value_bytes)) {
    std::printf("FAIL: %s live state unchanged — churn did not land\n",
                config.label.c_str());
    return false;
  }
  snap.reset();
  PTSB_CHECK_OK(store->Close());
  return true;
}

// ---- Cell 2: readahead sweep (simulated device time, quiesced store).

struct ScanCell {
  double device_ms = 0;
  uint32_t checksum = 0;
};

ScanCell RunReadaheadCell(const Flags& flags, const EngineConfig& config,
                          int read_qd, int readahead) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = 4;
  cfg.timing.cache_bytes = 0;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &fs;
  options.clock = &clock;
  options.params = config.params;
  options.params["read_queue_depth"] = std::to_string(read_qd);
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  for (uint64_t id = 0; id < flags.scan_keys; id++) {
    batch.Put(kv::MakeKey(id), kv::MakeValue(id * 13 + 5, flags.scan_value_bytes));
    if (batch.Count() >= 64) {
      PTSB_CHECK_OK(store->Write(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));
  PTSB_CHECK_OK(store->Flush());
  PTSB_CHECK_OK(store->SettleBackgroundWork());

  auto got = store->GetSnapshot();
  PTSB_CHECK_OK(got.status());
  std::shared_ptr<const kv::Snapshot> snap = *std::move(got);

  ScanCell r;
  const int64_t t0 = clock.NowNanos();
  r.checksum = ChecksumSnapshotScan(store.get(), snap.get(), readahead);
  r.device_ms = static_cast<double>(clock.NowNanos() - t0) / 1e6;
  snap.reset();
  PTSB_CHECK_OK(store->Close());
  return r;
}

// ---- Cell 3: snapshot pin accounting.

bool RunPinCell(const Flags& flags, const EngineConfig& config) {
  block::MemoryBlockDevice dev(4096, 1 << 15);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &fs;
  options.params = config.params;
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  for (uint64_t id = 0; id < flags.keys; id++) {
    PTSB_CHECK_OK(
        store->Put(kv::MakeKey(id), kv::MakeValue(id, flags.value_bytes)));
  }
  PTSB_CHECK_OK(store->Flush());
  PTSB_CHECK_OK(store->SettleBackgroundWork());

  auto got = store->GetSnapshot();
  PTSB_CHECK_OK(got.status());
  std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
  const uint32_t golden = ChecksumSnapshotScan(store.get(), snap.get());

  // Churn hard enough that compaction/GC want to reclaim the snapshot's
  // files: several full overwrite passes, flushed and settled.
  for (int round = 1; round <= 3; round++) {
    for (uint64_t id = 0; id < flags.keys; id++) {
      PTSB_CHECK_OK(store->Put(
          kv::MakeKey(id), kv::MakeValue(id + round * 104729, flags.value_bytes)));
    }
    PTSB_CHECK_OK(store->Flush());
    PTSB_CHECK_OK(store->SettleBackgroundWork());
  }

  const kv::KvStoreStats pinned = store->GetStats();
  if (pinned.snapshots_open != 1) {
    std::printf("FAIL: %s snapshots_open=%llu with one live snapshot\n",
                config.label.c_str(),
                static_cast<unsigned long long>(pinned.snapshots_open));
    return false;
  }
  if (pinned.snapshot_pinned_bytes == 0) {
    std::printf("FAIL: %s pinned no bytes despite churn under a snapshot\n",
                config.label.c_str());
    return false;
  }
  // The pinned resources are what keep the snapshot readable.
  if (ChecksumSnapshotScan(store.get(), snap.get()) != golden) {
    std::printf("FAIL: %s snapshot unreadable after churn\n",
                config.label.c_str());
    return false;
  }

  snap.reset();
  PTSB_CHECK_OK(store->SettleBackgroundWork());
  const kv::KvStoreStats released = store->GetStats();
  if (released.snapshots_open != 0 || released.snapshot_pinned_bytes != 0) {
    std::printf(
        "FAIL: %s pins leaked after release (open=%llu pinned=%llu B)\n",
        config.label.c_str(),
        static_cast<unsigned long long>(released.snapshots_open),
        static_cast<unsigned long long>(released.snapshot_pinned_bytes));
    return false;
  }
  std::printf("  %-12s pinned %8llu B under snapshot, 0 after release\n",
              config.label.c_str(),
              static_cast<unsigned long long>(pinned.snapshot_pinned_bytes));
  PTSB_CHECK_OK(store->Close());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--keys=", 7) == 0) {
      flags.keys = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--scan-keys=", 12) == 0) {
      flags.scan_keys = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      flags.writer_rounds = static_cast<int>(std::strtol(arg + 9, nullptr, 10));
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same cells and self-checks, much less churn.
      flags.smoke = true;
      flags.keys = 1024;
      flags.value_bytes = 128;
      flags.writer_rounds = 3;
      flags.scan_keys = 1024;
      flags.scan_value_bytes = 1024;
    } else {
      std::printf(
          "flags: --keys=N isolation/pin-cell keys (default 2048)\n"
          "       --scan-keys=N readahead-cell keys (default 3072)\n"
          "       --value-bytes=N (default 256)\n"
          "       --rounds=N churn rounds per writer (default 6)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }

  // ---- Cell 1: snapshot isolation in every engine cell.
  std::printf("micro_scan cell 1: snapshot scan vs 4 concurrent writers "
              "(%llu keys x %zu B, %d churn rounds)\n",
              static_cast<unsigned long long>(flags.keys), flags.value_bytes,
              flags.writer_rounds);
  bool ok = true;
  for (const EngineConfig& config : AllEngineConfigs()) {
    if (!RunIsolationCell(flags, config)) {
      ok = false;
    } else {
      std::printf("  %-12s snapshot checksum stable under churn\n",
                  config.label.c_str());
    }
  }
  if (!ok) return 1;

  // ---- Cell 2: readahead sweep. The snapshot cursor at
  // read_queue_depth=4 + readahead=8 must strictly beat the qd-1
  // baseline on the 4-channel device, with identical contents.
  std::printf("\nmicro_scan cell 2: full snapshot scan, simulated device "
              "time (ms), qd1 vs qd4+readahead on 4 channels "
              "(%llu keys x %zu B)\n",
              static_cast<unsigned long long>(flags.scan_keys),
              flags.scan_value_bytes);
  std::string csv = "engine,read_queue_depth,readahead,device_ms\n";
  for (const EngineConfig& config :
       std::vector<EngineConfig>{AllEngineConfigs()[0],   // lsm
                                 AllEngineConfigs()[1],   // btree
                                 AllEngineConfigs()[2],   // alog
                                 AllEngineConfigs()[5],   // sharded/alog
                                 AllEngineConfigs()[6]}) {  // cached/lsm
    const ScanCell base = RunReadaheadCell(flags, config, 1, 1);
    const ScanCell fanned = RunReadaheadCell(flags, config, 4, 8);
    std::printf("  %-12s %8.1f -> %8.1f  (%.2fx)\n", config.label.c_str(),
                base.device_ms, fanned.device_ms,
                fanned.device_ms > 0 ? base.device_ms / fanned.device_ms : 0.0);
    csv += StrPrintf("%s,1,1,%.3f\n", config.label.c_str(), base.device_ms);
    csv += StrPrintf("%s,4,8,%.3f\n", config.label.c_str(), fanned.device_ms);
    if (fanned.checksum != base.checksum) {
      std::printf("FAIL: %s readahead scan returned different contents\n",
                  config.label.c_str());
      return 1;
    }
    if (fanned.device_ms >= base.device_ms) {
      std::printf("FAIL: %s readahead at qd=4 x 4 channels (%.1f ms) did "
                  "not beat the sequential cursor (%.1f ms)\n",
                  config.label.c_str(), fanned.device_ms, base.device_ms);
      return 1;
    }
  }

  // ---- Cell 3: pin accounting on the engines that defer reclamation.
  std::printf("\nmicro_scan cell 3: snapshot pin accounting\n");
  for (const EngineConfig& config :
       std::vector<EngineConfig>{AllEngineConfigs()[0],     // lsm
                                 AllEngineConfigs()[2],     // alog
                                 AllEngineConfigs()[6]}) {  // cached/lsm
    if (!RunPinCell(flags, config)) return 1;
  }

  const std::string csv_path = core::WriteResultsFile("micro_scan.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());
  std::printf("\nOK: snapshots isolate against 4-writer churn in every "
              "engine cell; readahead strictly beats the sequential cursor "
              "on 4 channels; pinned bytes return to zero on release\n");
  return 0;
}
