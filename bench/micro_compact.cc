// micro_compact: partitioned subcompactions (LsmOptions::
// compaction_parallelism) against the simulated SSD's channel count. The
// LSM engine splits each picked compaction into K disjoint key subranges
// and runs each in its own background submission lane (queue
// background_queue + i); lane i lands on channel (background_queue + i) %
// channels, so with enough channels the subranges' device time overlaps
// and the drain settles earlier. With one channel the lanes fold back
// onto one backend timeline and K buys nothing — the win is K x channels,
// not K.
//
// Two regimes over one identical op stream:
//   deferred   compaction_work_per_user_write=0: commits leave all
//              compaction debt behind, SettleBackgroundWork drains it in
//              one go — the settle time IS the compaction wall time, the
//              cleanest view of K x channels overlap.
//   paced      the usual per-commit pacing: compaction runs during the
//              commit loop, where with K=4 on 4 channels lane 3 shares
//              the foreground's channel — the QoS slice cells show what
//              keeps commit tails bounded there.
//
// Self-checks (the bench exits non-zero instead of rotting):
//   - store contents byte-identical in every cell (splitting a compaction
//     must not change WHAT is written, only WHEN),
//   - scheduled backend work conserved EXACTLY across same-K same-pacing
//     cells (it is a pure function of the command byte stream; channels
//     and QoS only move it in time) — across K it legitimately differs
//     (subrange seam re-reads, extra output-file framing),
//   - settle time strictly falls as K x channels grows, with
//     settle(K=1)/settle(K=4) >= 1.5 on four channels,
//   - K=4 on ONE channel settles no sooner than K=4 on four (the speedup
//     is channel overlap, not an accounting artifact),
//   - under --bg-slice-us, going K=1 -> K=4 moves foreground p99 by at
//     most one preemption quantum, and collapses the unsliced paced K=4
//     tail (lane 3 folds onto the foreground's channel; the slice is
//     what keeps commits responsive there),
//   - K=1 is today's serial compactor, reproduced exactly: a repeat run
//     is nanosecond-identical.
//
//   ./build/micro_compact
//   ./build/micro_compact --smoke        # CI-sized, same self-checks
//   ./build/micro_compact --puts=20000 --value-bytes=1024
//
// Single-threaded and deterministic.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t puts = 8000;       // user commits per cell
  size_t value_bytes = 1024;  // value payload
  bool smoke = false;
};

struct CompactSetting {
  const char* label;
  int parallelism;
  uint32_t channels;
  uint64_t pacing;       // compaction_work_per_user_write (0 = deferred)
  int64_t slice_us = 0;  // QoS preemption quantum (0 = FIFO)
};

struct CompactCell {
  int64_t foreground_ns = 0;  // clock at end of the commit loop
  int64_t settled_ns = 0;     // after SettleBackgroundWork + Flush
  int64_t settle_ns = 0;      // settled - foreground: the drain's wall time
  double p50_us = 0;          // exact (sorted), not histogram buckets
  double p99_us = 0;
  int64_t scheduled_ns = 0;   // channel backend work, backlog included
  uint64_t preemptions = 0;
  uint32_t checksum = 0;
};

// One cell: the fixed LSM workload under one (K, channels, pacing,
// slice) point.
CompactCell RunCell(const Flags& flags, const CompactSetting& s) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = s.channels;
  // No write cache: programs are synchronous with the channel backend,
  // so channel overlap (or the lack of it) shows directly in the clock.
  cfg.timing.cache_bytes = 0;
  cfg.background_slice_ns = s.slice_us * 1000;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &fs;
  options.clock = &clock;
  // Structural sizes differ by regime (logical contents don't, so the
  // checksum check still spans all cells). Deferred cells keep input
  // files several readahead spans long: a subrange then covers multiple
  // span reads per input, which is what channel overlap compresses
  // (each subjob pays one fixed seek read per input — with single-span
  // files that fixed cost times K would swamp the win; real
  // subcompactions split large inputs). Paced cells use the micro_qos
  // tiny sizes instead: continuous small compactions whose booked
  // bursts collide with foreground syncs, the contention a QoS slice
  // exists to bound. The stall trigger is parked high in both so no
  // commit ever joins the background horizon.
  const bool paced = s.pacing != 0;
  const uint64_t memtable = paced ? (32 << 10) : (256 << 10);
  const uint64_t l1_target = paced ? (256 << 10) : (1 << 20);
  const uint64_t sst_target = paced ? (128 << 10) : (512 << 10);
  const uint64_t readahead = paced ? (32 << 10) : (64 << 10);
  options.params = {{"memtable_bytes", std::to_string(memtable)},
                    {"l1_target_bytes", std::to_string(l1_target)},
                    {"sst_target_bytes", std::to_string(sst_target)},
                    {"l0_stall_trigger", "1000"},
                    {"compaction_work_per_user_write",
                     std::to_string(s.pacing)},
                    {"compaction_readahead_bytes", std::to_string(readahead)},
                    {"wal_sync_every_bytes", "1"},
                    {"background_io", "1"},
                    {"compaction_parallelism", std::to_string(s.parallelism)}};
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  std::vector<int64_t> latencies;
  latencies.reserve(flags.puts);
  kv::WriteBatch batch;
  uint64_t next = 0xc0ffee;
  for (uint64_t i = 0; i < flags.puts; i++) {
    next = next * 6364136223846793005ull + 1442695040888963407ull;
    batch.Clear();
    batch.Put(kv::MakeKey((next >> 11) % flags.puts),
              kv::MakeValue(i, flags.value_bytes));
    const int64_t t0 = clock.NowNanos();
    PTSB_CHECK_OK(store->Write(batch));
    latencies.push_back(clock.NowNanos() - t0);
  }
  CompactCell r;
  r.foreground_ns = clock.NowNanos();

  PTSB_CHECK_OK(store->SettleBackgroundWork());
  PTSB_CHECK_OK(store->Flush());
  PTSB_CHECK_OK(store->SettleBackgroundWork());
  r.settled_ns = clock.NowNanos();
  r.settle_ns = r.settled_ns - r.foreground_ns;

  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  PTSB_CHECK_OK(store->Close());

  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](uint64_t permille) {
    const size_t idx = std::min(latencies.size() - 1,
                                latencies.size() * permille / 1000);
    return static_cast<double>(latencies[idx]) / 1000.0;
  };
  r.p50_us = at(500);
  r.p99_us = at(990);

  for (const auto& ch : ssd.channel_stats()) {
    r.scheduled_ns += ch.scheduled_ns;
    r.preemptions += ch.preemptions;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--puts=", 7) == 0) {
      flags.puts = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same cells and self-checks, ~4x less work.
      flags.smoke = true;
      flags.puts = 2000;
    } else {
      std::printf(
          "flags: --puts=N user commits per cell (default 8000)\n"
          "       --value-bytes=N (default 1024)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }

  constexpr uint64_t kPaced = 1024;
  constexpr int64_t kSliceUs = 200;
  const CompactSetting settings[] = {
      {"K=1 ch=1 deferred", 1, 1, 0},
      {"K=1 ch=4 deferred", 1, 4, 0},
      {"K=2 ch=4 deferred", 2, 4, 0},
      {"K=4 ch=4 deferred", 4, 4, 0},
      {"K=4 ch=1 deferred", 4, 1, 0},
      {"K=4 ch=4 paced", 4, 4, kPaced},
      {"K=1 ch=4 paced+slice", 1, 4, kPaced, kSliceUs},
      {"K=4 ch=4 paced+slice", 4, 4, kPaced, kSliceUs},
  };
  constexpr size_t kSerial1ch = 0;
  constexpr size_t kBaseline = 1;  // 1..3: the K x channels growth chain
  constexpr size_t kTarget = 3;    // K=4 on 4 channels
  constexpr size_t kNoChannels = 4;
  constexpr size_t kPacedFifo = 5;
  constexpr size_t kSliceK1 = 6;
  constexpr size_t kSliceK4 = 7;

  std::printf(
      "micro_compact: %llu LSM commits (%zu B values), partitioned "
      "subcompactions by K x channels\n\n",
      static_cast<unsigned long long>(flags.puts), flags.value_bytes);
  std::printf("%-22s %9s %9s %11s %11s %12s %8s\n", "setting", "p50(us)",
              "p99(us)", "fg(ms)", "settle(ms)", "sched(ms)", "preempt");

  std::vector<CompactCell> cells;
  std::string csv =
      "setting,parallelism,channels,pacing,slice_us,p50_us,p99_us,"
      "foreground_ms,settled_ms,settle_ms,scheduled_ms,preemptions\n";
  for (const CompactSetting& s : settings) {
    const CompactCell r = RunCell(flags, s);
    cells.push_back(r);
    std::printf("%-22s %9.1f %9.1f %11.2f %11.2f %12.2f %8llu\n", s.label,
                r.p50_us, r.p99_us, static_cast<double>(r.foreground_ns) / 1e6,
                static_cast<double>(r.settle_ns) / 1e6,
                static_cast<double>(r.scheduled_ns) / 1e6,
                static_cast<unsigned long long>(r.preemptions));
    csv += StrPrintf("%s,%d,%u,%llu,%lld,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%llu\n",
                     s.label, s.parallelism, s.channels,
                     static_cast<unsigned long long>(s.pacing),
                     static_cast<long long>(s.slice_us), r.p50_us, r.p99_us,
                     static_cast<double>(r.foreground_ns) / 1e6,
                     static_cast<double>(r.settled_ns) / 1e6,
                     static_cast<double>(r.settle_ns) / 1e6,
                     static_cast<double>(r.scheduled_ns) / 1e6,
                     static_cast<unsigned long long>(r.preemptions));
  }
  const std::string csv_path =
      core::WriteResultsFile("micro_compact.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());

  // ---- Self-checks.
  // 1. Splitting a compaction must not change contents.
  for (size_t i = 0; i < cells.size(); i++) {
    if (cells[i].checksum != cells[kSerial1ch].checksum) {
      std::printf("FAIL: cell \"%s\" changed store contents\n",
                  settings[i].label);
      return 1;
    }
  }
  // 2. Scheduled backend work is a pure function of the command byte
  // stream: conserved exactly across channel counts and QoS settings
  // for a fixed (K, pacing). (Across K it differs legitimately — each
  // subrange's first span re-reads past the seam, and more output files
  // mean more index/footer framing — so cross-K equality is NOT
  // asserted.)
  const size_t same_stream[][2] = {{kSerial1ch, kBaseline},
                                   {kTarget, kNoChannels},
                                   {kPacedFifo, kSliceK4}};
  for (const auto& pair : same_stream) {
    if (cells[pair[1]].scheduled_ns != cells[pair[0]].scheduled_ns) {
      std::printf(
          "FAIL: \"%s\" did not conserve scheduled backend work vs "
          "\"%s\" (%lld ns vs %lld ns) — channels and QoS may move "
          "work, never create or destroy it\n",
          settings[pair[1]].label, settings[pair[0]].label,
          static_cast<long long>(cells[pair[1]].scheduled_ns),
          static_cast<long long>(cells[pair[0]].scheduled_ns));
      return 1;
    }
  }
  // 3. Settle time strictly falls as K x channels grows
  // (1x4 -> 2x4 -> 4x4; serial is channel-blind, so 1x1 = 1x4).
  for (size_t i = kBaseline + 1; i <= kTarget; i++) {
    if (cells[i].settle_ns >= cells[i - 1].settle_ns) {
      std::printf("FAIL: settle time not strictly falling: \"%s\" %.2f ms "
                  ">= \"%s\" %.2f ms\n",
                  settings[i].label,
                  static_cast<double>(cells[i].settle_ns) / 1e6,
                  settings[i - 1].label,
                  static_cast<double>(cells[i - 1].settle_ns) / 1e6);
      return 1;
    }
  }
  // 4. The headline target: K=4 on four channels drains the deferred
  // debt >= 1.5x faster than the serial compactor on the same device.
  const double speedup = static_cast<double>(cells[kBaseline].settle_ns) /
                         static_cast<double>(cells[kTarget].settle_ns);
  if (speedup < 1.5) {
    std::printf("FAIL: K=4 on 4 channels drains only %.2fx faster than "
                "K=1 (target >= 1.5x)\n", speedup);
    return 1;
  }
  // 5. K without channels must not help: the win is overlap across
  // channel timelines, not a bookkeeping artifact of splitting.
  if (cells[kNoChannels].settle_ns <= cells[kTarget].settle_ns) {
    std::printf("FAIL: K=4 on ONE channel drained faster (%.2f ms) than "
                "K=4 on four (%.2f ms)\n",
                static_cast<double>(cells[kNoChannels].settle_ns) / 1e6,
                static_cast<double>(cells[kTarget].settle_ns) / 1e6);
    return 1;
  }
  // 6. The foreground tail under the QoS slice. With 4 paced lanes on 4
  // channels, lane 3 folds onto the foreground's channel; unsliced FIFO
  // makes every commit there wait out whole booked subcompaction spans.
  // The slice must (a) collapse that tail and (b) bound the K=1 -> K=4
  // regression by one preemption quantum — the scheduler's worst case.
  if (cells[kSliceK4].p99_us >= cells[kPacedFifo].p99_us) {
    std::printf("FAIL: slice did not collapse the paced K=4 FIFO tail "
                "(%.1f us sliced vs %.1f us FIFO)\n",
                cells[kSliceK4].p99_us, cells[kPacedFifo].p99_us);
    return 1;
  }
  if (cells[kSliceK4].p99_us >
      cells[kSliceK1].p99_us + static_cast<double>(kSliceUs)) {
    std::printf("FAIL: under a %lld us slice, K=4 moved foreground p99 "
                "by more than one quantum: %.1f us vs %.1f us at K=1\n",
                static_cast<long long>(kSliceUs), cells[kSliceK4].p99_us,
                cells[kSliceK1].p99_us);
    return 1;
  }
  if (cells[kSliceK4].preemptions == 0) {
    std::printf("FAIL: sliced K=4 cell recorded no preemptions\n");
    return 1;
  }
  // 7. K=1 is today's serial compactor, reproduced exactly: a repeat run
  // is nanosecond-identical.
  const CompactCell again = RunCell(flags, settings[kBaseline]);
  if (again.foreground_ns != cells[kBaseline].foreground_ns ||
      again.settled_ns != cells[kBaseline].settled_ns ||
      again.scheduled_ns != cells[kBaseline].scheduled_ns ||
      again.checksum != cells[kBaseline].checksum) {
    std::printf("FAIL: K=1 baseline is not reproducible to the nanosecond "
                "(settled %lld vs %lld)\n",
                static_cast<long long>(again.settled_ns),
                static_cast<long long>(cells[kBaseline].settled_ns));
    return 1;
  }
  std::printf(
      "OK: contents identical in all %zu cells and scheduled work "
      "conserved per (K, pacing); settle %.2f -> %.2f ms as K x channels "
      "grows (%.2fx at K=4 on 4 channels, target 1.5x); K=4 on one "
      "channel drains in %.2f ms (no channel overlap, no win); sliced "
      "paced K=4 fg p99 %.1f us vs %.1f us at K=1\n",
      cells.size(), static_cast<double>(cells[kBaseline].settle_ns) / 1e6,
      static_cast<double>(cells[kTarget].settle_ns) / 1e6, speedup,
      static_cast<double>(cells[kNoChannels].settle_ns) / 1e6,
      cells[kSliceK4].p99_us, cells[kSliceK1].p99_us);
  return 0;
}
