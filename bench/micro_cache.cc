// micro_cache: the host-buffering experiment for the "cached" wrapper
// engine (src/cached/). For each inner engine {lsm, btree, alog} the same
// deterministic workload — load, skewed overwrite churn, skewed point
// reads, full scan — runs once on the bare engine and once per
// (read_cache_policy x read_cache_bytes) cell on cached+inner, on
// identical simulated SSDs. The sweep shows where the write buffer and
// the scan-resistant read cache pay: coalesced inner writes and served
// cache hits as the cache grows, lru vs 2q under a hot set plus a scan.
//
// Self-checks (the bench fails loudly instead of rotting):
//   - store contents and read-phase values are byte-identical (CRC) in
//     every cell, bare or cached;
//   - with the default non-trivial write buffer, the inner engine's own
//     write counters (WAL + flush + compaction + page + checkpoint + GC
//     bytes) stay strictly below the bare engine's in every cached cell
//     — the buffer absorbed and coalesced writes, it didn't just relay;
//   - with a read cache (read_cache_bytes > 0), host bytes read from
//     the device stay strictly below bare, and the cache layer serves a
//     nonzero hit ratio on the skewed read phase;
//   - at read_cache_bytes=0 the hit-ratio check is skipped (noted in
//     the output) — the cell still runs for the contents check.
//
//   ./build/micro_cache
//   ./build/micro_cache --smoke          # CI-sized, same self-checks
//   ./build/micro_cache --keys=4096 --churn=20000 --reads=16000
//
// Single-threaded and deterministic: every cell replays the same op
// stream, so cells differ only in the caching layer.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cached/cached_store.h"
#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t keys = 2048;            // loaded key count
  size_t value_bytes = 512;        // value payload
  uint64_t churn = 12000;          // skewed overwrite phase (80% hot)
  uint64_t reads = 8000;           // skewed read phase (90% hot)
  uint64_t write_buffer = 256 << 10;  // cached cells' write buffer
  uint64_t cache_small = 64 << 10;    // read-cache axis, small point
  uint64_t cache_large = 256 << 10;   // read-cache axis, large point
  bool smoke = false;
};

// Structural params shared by the bare run and the cached run's inner
// engine, sized so maintenance (compaction / page eviction / GC) is live
// at bench scale. The B+Tree page cache is deliberately small: the
// wrapper's read cache is the memory under study, not the engine's own.
std::map<std::string, std::string> InnerParams(const std::string& engine) {
  if (engine == "lsm") {
    return {{"memtable_bytes", std::to_string(128 << 10)},
            {"l1_target_bytes", std::to_string(512 << 10)},
            {"sst_target_bytes", std::to_string(256 << 10)}};
  }
  if (engine == "btree") {
    return {{"cache_bytes", std::to_string(64 << 10)}};
  }
  PTSB_CHECK(engine == "alog") << "unknown inner engine " << engine;
  return {{"segment_bytes", std::to_string(1 << 20)}};
}

struct CellResult {
  double total_ms = 0;        // simulated time, whole run
  uint32_t checksum = 0;      // read-phase values + final scan contents
  uint64_t engine_write_bytes = 0;  // inner engine for cached, self bare
  uint64_t device_read_bytes = 0;   // SMART host reads, whole run
  double hit_ratio = 0;       // cache-layer hits on the read phase
  uint64_t coalesced_bytes = 0;
  uint64_t flush_batches = 0;
};

// Every byte the engine itself pushed down: WAL, structure flushes,
// compaction/GC rewrites, page writes, checkpoints. For the cached runs
// this is taken from InnerStats(), i.e. what survived the write buffer.
uint64_t EngineWriteBytes(const kv::KvStoreStats& s) {
  return s.wal_bytes_written + s.flush_bytes_written +
         s.compaction_bytes_written + s.page_write_bytes +
         s.checkpoint_bytes_written + s.gc_bytes_written;
}

// One cell: the full workload against `inner`, either bare or wrapped
// (cache_policy empty = bare). The op stream is identical either way.
CellResult RunCell(const Flags& flags, const std::string& inner,
                   const std::string& cache_policy, uint64_t cache_bytes) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = 2;
  cfg.timing.cache_bytes = 0;  // identical device across cells
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  const bool wrapped = !cache_policy.empty();
  kv::EngineOptions options;
  options.engine = wrapped ? "cached" : inner;
  options.fs = &fs;
  options.clock = &clock;
  options.params = InnerParams(inner);
  if (wrapped) {
    options.params["inner_engine"] = inner;
    options.params["write_buffer_bytes"] = std::to_string(flags.write_buffer);
    options.params["read_cache_bytes"] = std::to_string(cache_bytes);
    options.params["read_cache_policy"] = cache_policy;
  }

  // The cached runs open through the typed entry point so InnerStats()
  // (what actually reached the wrapped engine) stays reachable.
  std::unique_ptr<kv::KVStore> store;
  cached::CachedStore* cached_store = nullptr;
  if (wrapped) {
    auto opened = cached::CachedStore::Open(options);
    PTSB_CHECK_OK(opened.status());
    cached_store = opened->get();
    store = *std::move(opened);
  } else {
    auto opened = kv::OpenStore(options);
    PTSB_CHECK_OK(opened.status());
    store = *std::move(opened);
  }

  // Load phase: every key once, in 32-entry batches.
  kv::WriteBatch batch;
  for (uint64_t id = 0; id < flags.keys; id++) {
    batch.Put(kv::MakeKey(id), kv::MakeValue(id * 31 + 7, flags.value_bytes));
    if (batch.Count() >= 32) {
      PTSB_CHECK_OK(store->Write(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));

  // Churn phase: single-put rewrites, 80% landing on the hot eighth of
  // the keyspace — the write buffer's coalescing target.
  const uint64_t hot = std::max<uint64_t>(flags.keys / 8, 1);
  uint64_t next = 0x9e3779b97f4a7c15ull;
  for (uint64_t i = 0; i < flags.churn; i++) {
    next = next * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t pick = next >> 17;
    const uint64_t id =
        pick % 10 < 8 ? pick % hot : pick % flags.keys;
    batch.Clear();
    batch.Put(kv::MakeKey(id), kv::MakeValue(i ^ id, flags.value_bytes));
    PTSB_CHECK_OK(store->Write(batch));
  }

  // Read phase: point lookups, 90% on the hot set. The cache layer's
  // hit ratio is measured over exactly this window.
  const kv::KvStoreStats before = store->GetStats();
  CellResult r;
  std::string value;
  for (uint64_t i = 0; i < flags.reads; i++) {
    next = next * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t pick = next >> 17;
    const uint64_t id =
        pick % 10 < 9 ? pick % hot : pick % flags.keys;
    PTSB_CHECK_OK(store->Get(kv::MakeKey(id), &value));
    r.checksum = Crc32c(r.checksum, value.data(), value.size());
  }
  const kv::KvStoreStats after = store->GetStats();
  const uint64_t probes = (after.cache_hits - before.cache_hits) +
                          (after.cache_misses - before.cache_misses);
  r.hit_ratio = probes > 0 ? static_cast<double>(after.cache_hits -
                                                 before.cache_hits) /
                                 static_cast<double>(probes)
                           : 0.0;

  // Full scan before any flush: the cached cells serve it as the
  // buffer-over-inner merge, exactly what a reader would see mid-run.
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  it.reset();

  PTSB_CHECK_OK(store->Flush());
  const kv::KvStoreStats final_stats =
      wrapped ? cached_store->InnerStats() : store->GetStats();
  r.engine_write_bytes = EngineWriteBytes(final_stats);
  if (wrapped) {
    const kv::KvStoreStats wrapper = store->GetStats();
    r.coalesced_bytes = wrapper.buffer_coalesced_bytes;
    r.flush_batches = wrapper.flush_batches;
  }
  r.device_read_bytes = ssd.smart().host_bytes_read;
  r.total_ms = static_cast<double>(clock.NowNanos()) / 1e6;
  PTSB_CHECK_OK(store->Close());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--keys=", 7) == 0) {
      flags.keys = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--churn=", 8) == 0) {
      flags.churn = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--reads=", 8) == 0) {
      flags.reads = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--write-buffer-bytes=", 21) == 0) {
      flags.write_buffer = std::strtoull(arg + 21, nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same sweep shape and self-checks, ~4x less work.
      flags.smoke = true;
      flags.keys = 1024;
      flags.value_bytes = 256;
      flags.churn = 4000;
      flags.reads = 2500;
      flags.write_buffer = 64 << 10;
      flags.cache_small = 16 << 10;
      flags.cache_large = 64 << 10;
    } else {
      std::printf(
          "flags: --keys=N loaded keys (default 2048)\n"
          "       --value-bytes=N (default 512)\n"
          "       --churn=N skewed overwrites (default 12000)\n"
          "       --reads=N skewed lookups (default 8000)\n"
          "       --write-buffer-bytes=N cached cells' buffer "
          "(default 262144)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }
  kv::RegisterBuiltinEngines();

  std::printf(
      "micro_cache: cached+X vs bare X (%llu keys x %zu B, %llu skewed "
      "overwrites, %llu skewed reads, %s write buffer)\n"
      "  engine writes = WAL+flush+compaction+page+checkpoint+GC bytes "
      "of the (inner) engine; reads = SMART host bytes read\n\n",
      static_cast<unsigned long long>(flags.keys), flags.value_bytes,
      static_cast<unsigned long long>(flags.churn),
      static_cast<unsigned long long>(flags.reads),
      HumanBytes(flags.write_buffer).c_str());
  std::printf("%-7s %-8s %-10s | %10s %12s %12s %9s %8s\n", "inner",
              "policy", "cache", "time(ms)", "eng wr(MiB)", "dev rd(MiB)",
              "hit%", "flushes");

  struct Cell {
    std::string policy;  // empty = bare
    uint64_t cache_bytes = 0;
  };
  std::vector<Cell> cells = {{"", 0},
                             {"2q", 0},
                             {"lru", flags.cache_small},
                             {"2q", flags.cache_small},
                             {"lru", flags.cache_large},
                             {"2q", flags.cache_large}};

  std::string csv =
      "inner,policy,cache_bytes,total_ms,engine_write_bytes,"
      "device_read_bytes,hit_ratio,coalesced_bytes,flush_batches\n";
  std::vector<std::string> failures;
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    CellResult bare;
    for (const Cell& cell : cells) {
      const CellResult r =
          RunCell(flags, inner, cell.policy, cell.cache_bytes);
      const bool wrapped = !cell.policy.empty();
      if (!wrapped) bare = r;
      std::printf("%-7s %-8s %-10s | %10.1f %12.2f %12.2f %8.1f%% %8llu\n",
                  inner.c_str(), wrapped ? cell.policy.c_str() : "bare",
                  wrapped ? HumanBytes(cell.cache_bytes).c_str() : "-",
                  r.total_ms,
                  static_cast<double>(r.engine_write_bytes) / (1 << 20),
                  static_cast<double>(r.device_read_bytes) / (1 << 20),
                  r.hit_ratio * 100,
                  static_cast<unsigned long long>(r.flush_batches));
      csv += StrPrintf(
          "%s,%s,%llu,%.3f,%llu,%llu,%.4f,%llu,%llu\n", inner.c_str(),
          wrapped ? cell.policy.c_str() : "bare",
          static_cast<unsigned long long>(cell.cache_bytes), r.total_ms,
          static_cast<unsigned long long>(r.engine_write_bytes),
          static_cast<unsigned long long>(r.device_read_bytes),
          r.hit_ratio,
          static_cast<unsigned long long>(r.coalesced_bytes),
          static_cast<unsigned long long>(r.flush_batches));
      if (!wrapped) continue;

      const std::string label =
          StrPrintf("cached/%s %s cache=%s", inner.c_str(),
                    cell.policy.c_str(), HumanBytes(cell.cache_bytes).c_str());
      if (r.checksum != bare.checksum) {
        failures.push_back(label + ": contents differ from bare " + inner);
      }
      if (r.engine_write_bytes >= bare.engine_write_bytes) {
        failures.push_back(StrPrintf(
            "%s: inner engine wrote %.2f MiB, not below bare's %.2f MiB",
            label.c_str(),
            static_cast<double>(r.engine_write_bytes) / (1 << 20),
            static_cast<double>(bare.engine_write_bytes) / (1 << 20)));
      }
      if (r.coalesced_bytes == 0) {
        failures.push_back(label + ": write buffer coalesced nothing");
      }
      if (cell.cache_bytes == 0) {
        // No read cache to grade: only the contents and write-side
        // checks apply to this cell.
        std::printf("%-7s %-8s   (read_cache_bytes=0: hit-ratio and "
                    "device-read checks skipped)\n",
                    "", "");
        continue;
      }
      if (r.device_read_bytes >= bare.device_read_bytes) {
        failures.push_back(StrPrintf(
            "%s: device reads %.2f MiB, not below bare's %.2f MiB",
            label.c_str(),
            static_cast<double>(r.device_read_bytes) / (1 << 20),
            static_cast<double>(bare.device_read_bytes) / (1 << 20)));
      }
      if (r.hit_ratio <= 0) {
        failures.push_back(label +
                           ": zero hit ratio on the skewed read phase");
      }
    }
    std::printf("\n");
  }

  const std::string csv_path = core::WriteResultsFile("micro_cache.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::printf("FAIL: %s\n", f.c_str());
    }
    return 1;
  }
  std::printf(
      "OK: contents identical in every cell; the write buffer kept inner "
      "engine writes strictly below bare for all 3 inner engines; every "
      "read-cache cell cut device reads with a nonzero hit ratio\n");
  return 0;
}
