// micro_read: the read-side counterpart of micro_async. Two experiments,
// both self-checking:
//
// 1. Read fan-out sweep — simulated device time of a uniform point-read
//    workload through KVStore::MultiGet as a function of
//    read_queue_depth (rows) x channels (columns), on the alog engine
//    (every Get is exactly one segment read, so the read path is pure).
//    Each lookup runs in its own foreground-read submission lane; the
//    simulated SSD serializes a lane's read on channel
//    `queue % channels` only, so independent lookups overlap in virtual
//    time — Roh et al.'s observation (PAPERS.md) that read fan-out is
//    where SSD internal parallelism pays off most. read_queue_depth=1
//    IS the sequential-Get baseline, and one channel serializes any
//    depth, so row 1 and column 1 reproduce the old read path exactly.
//    Self-check: identical returned values in every cell, and the
//    channels=4 x read_queue_depth=8 cell strictly beats sequential.
//
// 2. Background-separation check — a compaction-heavy LSM write
//    workload run twice: once with compaction charged to the foreground
//    timeline (background_io=0, the PR 4 baseline) and once on a
//    dedicated background lane/queue (background_io=1). Foreground
//    commit time must fall strictly, while the device's total scheduled
//    backend work (programs + device GC + erases) is byte-driven and
//    must be conserved exactly — the interference moved, it didn't
//    disappear. Contents are checksummed equal.
//
//   ./build/micro_read
//   ./build/micro_read --smoke          # CI-sized, same self-checks
//   ./build/micro_read --keys=8192 --value-bytes=2048 --group=128
//
// Single-threaded and deterministic: every cell replays the same op
// stream, so cells differ only in the timing model.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t keys = 4096;        // loaded key count
  size_t value_bytes = 2048;   // value payload
  uint64_t reads = 8192;       // total point lookups per cell
  size_t group = 64;           // keys per MultiGet call
  uint64_t bg_puts = 6000;     // background-check write count
  bool smoke = false;
};

struct ReadCell {
  double device_ms = 0;
  uint32_t checksum = 0;  // statuses + returned values
};

// One sweep cell: load `keys` into an alog store, then issue `reads`
// uniform lookups in MultiGet groups. Only the read phase is timed.
ReadCell RunReadCell(const Flags& flags, int channels, int read_qd) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = channels;
  // No write cache: irrelevant for the timed read phase, but it keeps
  // the load phase identical across cells.
  cfg.timing.cache_bytes = 0;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = "alog";
  options.fs = &fs;
  options.clock = &clock;
  options.params = {{"segment_bytes", std::to_string(8 << 20)},
                    {"read_queue_depth", std::to_string(read_qd)}};
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  for (uint64_t id = 0; id < flags.keys; id++) {
    batch.Put(kv::MakeKey(id), kv::MakeValue(id * 31 + 7, flags.value_bytes));
    if (batch.Count() >= 64) {
      PTSB_CHECK_OK(store->Write(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));
  PTSB_CHECK_OK(store->Flush());

  ReadCell r;
  const int64_t t0 = clock.NowNanos();
  std::vector<std::string> keys;
  std::vector<std::string_view> views;
  std::vector<std::string> values;
  uint64_t next = 0x9e3779b97f4a7c15ull;  // deterministic "uniform" stream
  for (uint64_t done = 0; done < flags.reads; done += flags.group) {
    keys.clear();
    for (size_t j = 0; j < flags.group; j++) {
      next = next * 6364136223846793005ull + 1442695040888963407ull;
      keys.push_back(kv::MakeKey((next >> 17) % flags.keys));
    }
    views.assign(keys.begin(), keys.end());
    const std::vector<Status> statuses = store->MultiGet(views, &values);
    for (size_t j = 0; j < statuses.size(); j++) {
      PTSB_CHECK_OK(statuses[j]);
      r.checksum = Crc32c(r.checksum, values[j].data(), values[j].size());
    }
  }
  r.device_ms = static_cast<double>(clock.NowNanos() - t0) / 1e6;
  PTSB_CHECK_OK(store->Close());
  return r;
}

struct BgRun {
  double foreground_ms = 0;   // clock at end of the write loop
  double settled_ms = 0;      // clock after settle + flush (joins bg)
  int64_t scheduled_busy_ns = 0;  // sum of per-channel backend work
  double background_share = 0;    // background class share of busy time
  uint32_t checksum = 0;
};

// The background-separation experiment: a compaction-heavy LSM write
// workload, identical in both modes down to the device command stream.
BgRun RunLsmWorkload(const Flags& flags, bool background_io) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 512ull << 20;
  cfg.channels = 2;  // one foreground channel, one for maintenance
  cfg.timing.cache_bytes = 0;
  ssd::SsdDevice ssd(cfg, &clock);
  fs::SimpleFs fs(&ssd, {});

  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &fs;
  options.clock = &clock;
  // Tiny structural sizes so compaction runs continuously.
  options.params = {{"memtable_bytes", std::to_string(64 << 10)},
                    {"l1_target_bytes", std::to_string(256 << 10)},
                    {"sst_target_bytes", std::to_string(128 << 10)},
                    {"background_io", background_io ? "1" : "0"}};
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  uint64_t next = 0xc0ffee;
  for (uint64_t i = 0; i < flags.bg_puts; i++) {
    next = next * 6364136223846793005ull + 1442695040888963407ull;
    batch.Clear();
    batch.Put(kv::MakeKey((next >> 11) % (flags.bg_puts / 4)),
              kv::MakeValue(i, 512));
    PTSB_CHECK_OK(store->Write(batch));
  }
  BgRun r;
  r.foreground_ms = static_cast<double>(clock.NowNanos()) / 1e6;

  // Settling and flushing wait the background horizon out, so the two
  // modes end with identical durable state.
  PTSB_CHECK_OK(store->SettleBackgroundWork());
  PTSB_CHECK_OK(store->Flush());
  r.settled_ms = static_cast<double>(clock.NowNanos()) / 1e6;

  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  PTSB_CHECK_OK(store->Close());

  int64_t class_total = 0, class_bg = 0;
  for (const auto& ch : ssd.channel_stats()) {
    r.scheduled_busy_ns += ch.scheduled_ns;
    for (int c = 0; c < sim::kNumIoClasses; c++) {
      class_total += ch.class_busy_ns[static_cast<size_t>(c)];
    }
    class_bg +=
        ch.class_busy_ns[static_cast<int>(sim::IoClass::kBackground)];
  }
  r.background_share = class_total > 0
                           ? static_cast<double>(class_bg) /
                                 static_cast<double>(class_total)
                           : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--keys=", 7) == 0) {
      flags.keys = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--reads=", 8) == 0) {
      flags.reads = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--group=", 8) == 0) {
      flags.group = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--bg-puts=", 10) == 0) {
      flags.bg_puts = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same sweep shape and self-checks, ~10x less work.
      flags.smoke = true;
      flags.keys = 1024;
      flags.value_bytes = 1024;
      flags.reads = 1024;
      flags.group = 32;
      flags.bg_puts = 1500;
    } else {
      std::printf(
          "flags: --keys=N loaded keys (default 4096)\n"
          "       --value-bytes=N (default 2048)\n"
          "       --reads=N lookups per cell (default 8192)\n"
          "       --group=N keys per MultiGet (default 64)\n"
          "       --bg-puts=N background-check writes (default 6000)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }

  const int channel_axis[] = {1, 2, 4};
  const int depth_axis[] = {1, 2, 4, 8};

  std::printf(
      "micro_read: simulated device time (ms) of %llu uniform lookups "
      "(%zu-key MultiGets, %llu keys x %zu B, alog), by read_queue_depth "
      "(rows) x channels (columns)\n\n",
      static_cast<unsigned long long>(flags.reads), flags.group,
      static_cast<unsigned long long>(flags.keys), flags.value_bytes);
  std::printf("%-16s |", "read_queue_depth");
  for (const int ch : channel_axis) std::printf(" %4d ch ", ch);
  std::printf("\n");

  std::string csv = "read_queue_depth,channels,device_ms\n";
  bool checksums_agree = true;
  uint32_t baseline_sum = 0;
  double sequential_ms = 0, fanned_ms = 0;
  for (const int qd : depth_axis) {
    std::printf("%-16d |", qd);
    for (const int ch : channel_axis) {
      const ReadCell r = RunReadCell(flags, ch, qd);
      std::printf(" %7.1f ", r.device_ms);
      if (qd == 1 && ch == 1) {
        baseline_sum = r.checksum;
      } else if (r.checksum != baseline_sum) {
        checksums_agree = false;
      }
      if (qd == 1 && ch == 4) sequential_ms = r.device_ms;
      if (qd == 8 && ch == 4) fanned_ms = r.device_ms;
      csv += StrPrintf("%d,%d,%.3f\n", qd, ch, r.device_ms);
    }
    std::printf("\n");
  }

  // ---- Background-separation check (compaction-heavy LSM).
  const BgRun base = RunLsmWorkload(flags, /*background_io=*/false);
  const BgRun sep = RunLsmWorkload(flags, /*background_io=*/true);
  std::printf(
      "\nbackground separation (lsm, %llu puts, 2 channels):\n"
      "  foreground commit time: %8.1f ms -> %8.1f ms  (%.2fx lower)\n"
      "  settled total time:     %8.1f ms -> %8.1f ms\n"
      "  scheduled backend work: %8.1f ms -> %8.1f ms  (conserved)\n"
      "  background busy share:  %7.1f%% -> %7.1f%%\n",
      static_cast<unsigned long long>(flags.bg_puts), base.foreground_ms,
      sep.foreground_ms,
      sep.foreground_ms > 0 ? base.foreground_ms / sep.foreground_ms : 0.0,
      base.settled_ms, sep.settled_ms,
      static_cast<double>(base.scheduled_busy_ns) / 1e6,
      static_cast<double>(sep.scheduled_busy_ns) / 1e6,
      base.background_share * 100, sep.background_share * 100);
  csv += StrPrintf("background_io,foreground_ms,scheduled_busy_ms\n");
  csv += StrPrintf("0,%.3f,%.3f\n", base.foreground_ms,
                   static_cast<double>(base.scheduled_busy_ns) / 1e6);
  csv += StrPrintf("1,%.3f,%.3f\n", sep.foreground_ms,
                   static_cast<double>(sep.scheduled_busy_ns) / 1e6);

  const std::string csv_path = core::WriteResultsFile("micro_read.csv", csv);
  if (!csv_path.empty()) std::printf("written to %s\n", csv_path.c_str());

  // ---- Self-checks (the bench fails loudly instead of rotting).
  if (!checksums_agree) {
    std::printf("FAIL: returned values differ across cells\n");
    return 1;
  }
  if (fanned_ms >= sequential_ms) {
    std::printf("FAIL: MultiGet at read_queue_depth=8 x 4 channels "
                "(%.1f ms) did not beat sequential gets (%.1f ms)\n",
                fanned_ms, sequential_ms);
    return 1;
  }
  if (base.checksum != sep.checksum) {
    std::printf("FAIL: background separation changed store contents\n");
    return 1;
  }
  if (sep.foreground_ms >= base.foreground_ms) {
    std::printf("FAIL: background separation did not lower foreground "
                "commit time (%.1f ms vs %.1f ms)\n",
                sep.foreground_ms, base.foreground_ms);
    return 1;
  }
  if (sep.scheduled_busy_ns != base.scheduled_busy_ns) {
    std::printf("FAIL: scheduled backend work not conserved "
                "(%lld ns vs %lld ns) — background I/O must move, not "
                "vanish\n",
                static_cast<long long>(sep.scheduled_busy_ns),
                static_cast<long long>(base.scheduled_busy_ns));
    return 1;
  }
  std::printf(
      "OK: values identical in every cell; 4-channel qd=8 MultiGet is "
      "%.2fx faster than sequential gets; background separation lowers "
      "foreground time %.2fx at exactly conserved device work\n",
      sequential_ms / fanned_ms, base.foreground_ms / sep.foreground_ms);
  return 0;
}
