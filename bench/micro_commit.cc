// micro_commit: WAL/journal record count as a function of concurrent
// writer threads — the group-commit bench behind the cross-thread
// kv::WriteGroup. N writers commit one-entry batches against ONE
// unsharded engine; concurrent callers line up in the engine's write
// group, a leader merges the waiting batches and persists them under a
// single log record, so the record count grows SUB-linearly in the
// writer count while the visible contents stay byte-identical to a
// serial run of the same keys.
//
//   ./build/micro_commit
//   ./build/micro_commit --keys=4800 --value-bytes=4096
//   ./build/micro_commit --smoke     (CI-sized, same self-checks)
//
// Self-checking: for every engine (lsm, btree, alog) the final contents
// of every threaded run must checksum-equal the serial golden run, a
// single writer must produce exactly one record per put (the identity
// baseline), and 4 writers must produce STRICTLY fewer records than the
// serial run of the same total workload (4x the per-writer serial
// count). Grouping depends on real thread interleaving, so the 4-writer
// cell retries a few rounds before declaring failure.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "core/report.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t keys = 2400;      // total puts per run (split across writers)
  size_t value_bytes = 2048;
  int rounds = 5;            // retry budget for the 4-writer cell
};

// Journal on for the B+Tree so its commit path writes one record per
// group like the LSM WAL and the alog segment log do.
std::map<std::string, std::string> EngineParams(const std::string& engine) {
  if (engine == "btree") return {{"journal_enabled", "1"}};
  return {};
}

struct RunResult {
  uint64_t wal_records = 0;
  uint64_t write_groups = 0;
  uint64_t write_group_batches = 0;
  uint32_t checksum = 0;  // CRC32C over the final visible contents
};

// Runs `threads` concurrent writers against a fresh engine instance.
// Writer t puts the disjoint key range [t*K/threads, (t+1)*K/threads),
// value a pure function of the key, so the final contents are identical
// for every interleaving — and to the serial (threads=1) run.
RunResult RunCell(const std::string& engine, const Flags& flags,
                  size_t threads) {
  block::MemoryBlockDevice dev(4096, 1 << 16);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = engine;
  options.fs = &fs;
  options.params = EngineParams(engine);
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);
  PTSB_CHECK(store->SupportsConcurrentWriters());

  const uint64_t per_thread = flags.keys / threads;
  std::vector<std::thread> writers;
  writers.reserve(threads);
  // Start barrier: writers spin until every thread is constructed, so
  // the group-commit queue sees all of them at once from the first put.
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  for (size_t t = 0; t < threads; t++) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < per_thread; i++) {
        const uint64_t key = t * per_thread + i;
        if (!store
                 ->Put(kv::MakeKey(key),
                       kv::MakeValue(key * 2654435761ull, flags.value_bytes))
                 .ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  PTSB_CHECK(failures.load() == 0);

  RunResult r;
  const auto stats = store->GetStats();
  r.wal_records = stats.wal_records;
  r.write_groups = stats.write_groups;
  r.write_group_batches = stats.write_group_batches;
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    r.checksum = Crc32c(r.checksum, it->key().data(), it->key().size());
    r.checksum = Crc32c(r.checksum, it->value().data(), it->value().size());
  }
  PTSB_CHECK_OK(it->status());
  PTSB_CHECK_OK(store->Close());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--keys=", 7) == 0) {
      flags.keys = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      flags.rounds = static_cast<int>(std::strtol(arg + 9, nullptr, 10));
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // CI-sized run: same sweep shape and self-checks, ~5x less work.
      flags.keys = 960;
      flags.value_bytes = 512;
    } else {
      std::printf(
          "flags: --keys=N total puts per run, split across writers "
          "(default 2400)\n"
          "       --value-bytes=N (default 2048)\n"
          "       --rounds=N retry budget for the 4-writer cell "
          "(default 5)\n"
          "       --smoke    CI-sized run, same self-checks\n");
      return 2;
    }
  }
  kv::RegisterBuiltinEngines();
  flags.keys -= flags.keys % 4;  // divisible by every thread count

  std::printf(
      "micro_commit: log records written for %llu one-entry commits x "
      "%zu B values, by writer threads (group commit merges concurrent "
      "batches into one record)\n\n",
      static_cast<unsigned long long>(flags.keys), flags.value_bytes);
  std::printf("%-8s %8s %12s %12s %12s %10s\n", "engine", "writers",
              "records", "groups", "batches", "occupancy");

  std::string csv =
      "engine,writers,puts,wal_records,write_groups,write_group_batches,"
      "occupancy\n";
  bool ok = true;
  for (const std::string engine : {"lsm", "btree", "alog"}) {
    const RunResult golden = RunCell(engine, flags, 1);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      RunResult r;
      // Grouping needs the threads to actually collide; one lucky
      // scheduler round is enough, so retry the sub-linearity check a
      // few times before calling it a failure. Contents must match in
      // EVERY round.
      for (int round = 0; round < flags.rounds; round++) {
        r = RunCell(engine, flags, threads);
        if (r.checksum != golden.checksum) {
          std::printf("FAIL: %s x%zu writers: contents diverged from the "
                      "serial golden run\n",
                      engine.c_str(), threads);
          ok = false;
          break;
        }
        if (threads == 1 || r.wal_records < flags.keys) break;
      }
      if (!ok) break;
      const double occupancy =
          r.write_groups > 0 ? static_cast<double>(r.write_group_batches) /
                                   static_cast<double>(r.write_groups)
                             : 0.0;
      std::printf("%-8s %8zu %12llu %12llu %12llu %9.2fx\n", engine.c_str(),
                  threads, static_cast<unsigned long long>(r.wal_records),
                  static_cast<unsigned long long>(r.write_groups),
                  static_cast<unsigned long long>(r.write_group_batches),
                  occupancy);
      csv += StrPrintf("%s,%zu,%llu,%llu,%llu,%llu,%.4f\n", engine.c_str(),
                       threads,
                       static_cast<unsigned long long>(flags.keys),
                       static_cast<unsigned long long>(r.wal_records),
                       static_cast<unsigned long long>(r.write_groups),
                       static_cast<unsigned long long>(r.write_group_batches),
                       occupancy);
      // Self-checks. One writer is the identity baseline: every put is
      // its own group and record. Four writers must merge at least once:
      // strictly fewer records than the serial run of the same total
      // workload (= 4x the per-writer serial count).
      if (threads == 1 &&
          (r.wal_records != flags.keys || r.write_groups != flags.keys)) {
        std::printf("FAIL: %s single-writer run wrote %llu records for "
                    "%llu puts (expected one per put)\n",
                    engine.c_str(),
                    static_cast<unsigned long long>(r.wal_records),
                    static_cast<unsigned long long>(flags.keys));
        ok = false;
        break;
      }
      if (threads == 4 && r.wal_records >= flags.keys) {
        std::printf("FAIL: %s x4 writers wrote %llu records for %llu puts "
                    "in every round — group commit never merged\n",
                    engine.c_str(),
                    static_cast<unsigned long long>(r.wal_records),
                    static_cast<unsigned long long>(flags.keys));
        ok = false;
        break;
      }
      if (r.write_group_batches != flags.keys) {
        std::printf("FAIL: %s x%zu writers: %llu batches through the "
                    "group for %llu puts\n",
                    engine.c_str(), threads,
                    static_cast<unsigned long long>(r.write_group_batches),
                    static_cast<unsigned long long>(flags.keys));
        ok = false;
        break;
      }
    }
    if (!ok) break;
  }

  const std::string csv_path =
      core::WriteResultsFile("micro_commit.csv", csv);
  if (!csv_path.empty()) std::printf("\nwritten to %s\n", csv_path.c_str());

  if (!ok) return 1;
  std::printf("OK: contents identical to the serial golden run in every "
              "cell; 4 concurrent writers commit in strictly fewer log "
              "records than 4x the serial count on every engine\n");
  return 0;
}
