// Reproduces paper Fig. 8: the storage-cost heatmap comparing RocksDB with
// and without extra over-provisioning. Extra OP raises per-drive
// throughput but lowers per-drive capacity, so it wins for small datasets
// with high target throughput.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"

namespace ptsb {
namespace {

int Main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  if (flags.scale == 100) flags.scale = 400;
  std::printf("=== Fig. 8: storage cost of RocksDB with/without extra OP ===\n");

  // Measure the two configurations at a few per-drive dataset sizes on a
  // preconditioned drive (the paper's setup for this figure).
  const double partitions[2] = {1.0, 0.75};
  const double fracs[] = {0.25, 0.4, 0.5};
  core::SystemProfile profiles[2] = {{"rocksdb noOP", {}},
                                     {"rocksdb extraOP", {}}};
  std::vector<core::ExperimentResult> all;
  for (int p = 0; p < 2; p++) {
    for (const double frac : fracs) {
      core::ExperimentConfig c;
      c.engine = "lsm";
      c.initial_state = ssd::InitialState::kPreconditioned;
      c.partition_frac = partitions[p];
      c.dataset_frac = frac;
      c.duration_minutes = 100;
      c.collect_lba_trace = false;
      c.name = std::string("fig08-") + (p == 0 ? "noOP-" : "extraOP-") +
               std::to_string(frac).substr(0, 4);
      flags.Apply(&c);
      auto r = bench::MustRun(c, flags);
      if (!r.ran_out_of_space) {
        const uint64_t paper_dataset = static_cast<uint64_t>(
            frac * static_cast<double>(ssd::kPaperDeviceBytes));
        profiles[p].points.push_back({paper_dataset, r.steady.kv_kops});
      }
      all.push_back(std::move(r));
    }
  }

  std::printf("\nmeasured operating points (per paper-scale drive):\n");
  for (const auto& prof : profiles) {
    for (const auto& pt : prof.points) {
      std::printf("  %-16s dataset=%5.0f GB  throughput=%5.2f Kops/s\n",
                  prof.name.c_str(),
                  static_cast<double>(pt.dataset_bytes_per_instance) / 1e9,
                  pt.kops_per_instance);
    }
  }

  std::vector<double> ds_axis = {1, 2, 3, 4, 5};
  std::vector<double> kops_axis = {5, 10, 15, 20, 25};
  const auto heatmap =
      core::ComputeHeatmap(profiles[0], profiles[1], ds_axis, kops_axis);
  std::printf("\n%s\n", heatmap.Render().c_str());

  core::Report report("Fig. 8: paper vs measured");
  const double speedup = !profiles[0].points.empty() &&
                                 !profiles[1].points.empty()
                             ? profiles[1].points.back().kops_per_instance /
                                   profiles[0].points.back().kops_per_instance
                             : 0;
  report.AddComparison("extra-OP throughput gain at 200GB", 1.83, speedup,
                       "x");
  report.AddNote("'B' (extra OP) should dominate the high-throughput / "
                 "small-dataset corner; 'A' (no OP) the large-dataset / "
                 "low-throughput corner, as in the paper's Fig. 8");
  report.PrintTo(stdout);

  core::WriteResultsFile("fig08_summary.csv", core::SteadySummaryCsv(all));
  return 0;
}

}  // namespace
}  // namespace ptsb

int main(int argc, char** argv) { return ptsb::Main(argc, argv); }
