// micro_sharded: aggregate put throughput of the sharded front end as a
// function of shards x threads x inner engine — the scaling sweep behind
// the concurrency item on the ROADMAP. Unlike the figure benches this
// measures WALL-CLOCK throughput: virtual time models one serialized
// device, so the win from sharding is the overlap of per-shard CPU work
// (key comparison, checksums, memtable/index updates) outside the
// filesystem's serialization point, and only a wall clock can see it.
//
//   ./build/micro_sharded                     # default sweep
//   ./build/micro_sharded --entries=100000 --value-bytes=1024
//
// Each worker thread writes batches into its own id range (disjoint
// streams, like the experiment driver's ForThread split); a config's
// throughput is total entries / wall seconds across all workers. The
// shards=1 rows are the serialized baseline: every thread queues on one
// engine mutex, so threads do not help. With shards=4 the per-shard locks
// let the workers' commits overlap, and throughput should climb from 1 to
// 4 threads — the aha moment the paper's single-threaded harness cannot
// show. (The scaling self-check needs >= 2 CPUs: on a single-CPU host
// wall-clock parallelism is physically impossible and the sweep only
// measures the router's overhead, so the check reports SKIPPED.)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

struct Flags {
  uint64_t entries = 60'000;  // per configuration, split across threads
  size_t value_bytes = 512;
  size_t batch = 16;
};

// One configuration of the sweep; returns aggregate Kops/s (wall clock).
double RunConfig(const Flags& flags, const std::string& inner, int shards,
                 int threads) {
  block::MemoryBlockDevice dev(4096, 1 << 16);  // 256 MiB, no timing model
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = &fs;
  options.params["shards"] = std::to_string(shards);
  options.params["inner_engine"] = inner;
  auto opened = kv::OpenStore(options);
  PTSB_CHECK_OK(opened.status());
  auto store = *std::move(opened);

  const uint64_t per_thread = flags.entries / static_cast<uint64_t>(threads);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      // Disjoint id ranges per worker: no cross-thread key conflicts, so
      // the measurement isolates commit-path scaling.
      const uint64_t base = static_cast<uint64_t>(t) * per_thread;
      kv::WriteBatch batch;
      for (uint64_t i = 0; i < per_thread; i++) {
        batch.Put(kv::MakeKey(base + i),
                  kv::MakeValue(base + i, flags.value_bytes));
        if (batch.Count() >= flags.batch || i + 1 == per_thread) {
          PTSB_CHECK_OK(store->Write(batch));
          batch.Clear();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto stats = store->GetStats();
  PTSB_CHECK_EQ(stats.user_puts, per_thread * static_cast<uint64_t>(threads));
  PTSB_CHECK_OK(store->Close());
  return static_cast<double>(stats.user_puts) / secs / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--entries=", 10) == 0) {
      flags.entries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--value-bytes=", 14) == 0) {
      flags.value_bytes = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      flags.batch = std::strtoull(arg + 8, nullptr, 10);
    } else {
      std::printf("flags: --entries=N (total puts per config, default "
                  "60000)\n"
                  "       --value-bytes=N (default 512)\n"
                  "       --batch=N (entries per WriteBatch, default 16)\n");
      return 2;
    }
  }

  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("micro_sharded: aggregate put throughput (WALL-clock Kops/s), "
              "%llu entries x %zu B values, batch=%zu, %u CPUs\n\n",
              static_cast<unsigned long long>(flags.entries),
              flags.value_bytes, flags.batch, cpus);
  std::printf("%-7s %-7s | %9s %9s %9s | %s\n", "inner", "shards",
              "1 thread", "2 threads", "4 threads", "4T/1T speedup");

  bool scaling_ok = true;
  for (const char* inner : {"alog", "lsm", "btree"}) {
    for (const int shards : {1, 4}) {
      double kops[3] = {0, 0, 0};
      const int thread_counts[3] = {1, 2, 4};
      for (int i = 0; i < 3; i++) {
        kops[i] = RunConfig(flags, inner, shards, thread_counts[i]);
      }
      std::printf("%-7s %-7d | %9.1f %9.1f %9.1f | %.2fx\n", inner, shards,
                  kops[0], kops[1], kops[2], kops[2] / kops[0]);
      if (shards == 4 && kops[2] <= kops[0]) scaling_ok = false;
    }
    std::printf("\n");
  }
  if (cpus < 2) {
    std::printf("SKIPPED scaling check: single-CPU host, wall-clock "
                "parallelism is not measurable here (the table above still "
                "shows the router overhead)\n");
    return 0;
  }
  std::printf("%s: 4-shard aggregate throughput %s from 1 to 4 threads\n",
              scaling_ok ? "OK" : "FAIL",
              scaling_ok ? "increases" : "did NOT increase");
  return scaling_ok ? 0 : 1;
}
