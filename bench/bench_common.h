// Shared helpers for the figure-reproduction benches: a tiny flag parser
// and progress printing. Every bench runs with no arguments at a scale that
// finishes in well under a minute per experiment; pass --scale=N to change
// fidelity (N divides the paper's sizes; smaller N = closer to paper).
#ifndef PTSB_BENCH_BENCH_COMMON_H_
#define PTSB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "util/human.h"

namespace ptsb::bench {

struct BenchFlags {
  uint64_t scale = 100;
  double duration_minutes = 0;  // 0: per-bench default
  bool verbose = false;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--scale=", 8) == 0) {
        flags.scale = std::strtoull(arg + 8, nullptr, 10);
      } else if (std::strncmp(arg, "--minutes=", 10) == 0) {
        flags.duration_minutes = std::strtod(arg + 10, nullptr);
      } else if (std::strcmp(arg, "--verbose") == 0 ||
                 std::strcmp(arg, "-v") == 0) {
        flags.verbose = true;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "flags: --scale=N (default 100; divides paper sizes)\n"
            "       --minutes=M (override simulated duration)\n"
            "       --verbose   (per-window progress)\n");
        std::exit(0);
      } else if (std::strncmp(arg, "--benchmark", 11) == 0) {
        // Tolerate google-benchmark-style flags when driven by scripts.
      } else {
        std::fprintf(stderr, "unknown flag: %s (see --help)\n", arg);
        std::exit(2);
      }
    }
    return flags;
  }

  // Applies common flags to a config.
  void Apply(core::ExperimentConfig* config) const {
    config->scale = scale;
    if (duration_minutes > 0) config->duration_minutes = duration_minutes;
  }

  std::function<void(const std::string&)> Progress() const {
    if (!verbose) return nullptr;
    return [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  }
};

inline core::ExperimentResult MustRun(const core::ExperimentConfig& config,
                                      const BenchFlags& flags) {
  auto result = core::RunExperiment(config, flags.Progress());
  if (!result.ok()) {
    std::fprintf(stderr, "experiment %s failed: %s\n", config.name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

// Applies an engine name to a config. The driver (core::RunExperiment)
// scales every built-in engine's structural defaults itself — lsm, btree,
// alog, and the inner engine behind "sharded" — and engine_params the
// bench set win over those defaults, matching run_experiment's
// --engine-param semantics.
inline void SelectEngine(core::ExperimentConfig* config,
                         const std::string& engine) {
  config->engine = engine;
}

// One-line application-level write breakdown, so the benches can attribute
// WA-A to engine mechanisms: compaction for the LSM, page writebacks and
// checkpoints for the B+Tree, segment GC for the log engine.
inline void PrintWriteAttribution(const std::string& name,
                                  const kv::KvStoreStats& s) {
  std::printf(
      "  %-10s user=%-9s log=%-9s flush=%-9s compact w/r=%s/%s  "
      "page=%-9s ckpt=%-9s gc w/r=%s/%s\n",
      name.c_str(), HumanBytes(s.user_bytes_written).c_str(),
      HumanBytes(s.wal_bytes_written).c_str(),
      HumanBytes(s.flush_bytes_written).c_str(),
      HumanBytes(s.compaction_bytes_written).c_str(),
      HumanBytes(s.compaction_bytes_read).c_str(),
      HumanBytes(s.page_write_bytes).c_str(),
      HumanBytes(s.checkpoint_bytes_written).c_str(),
      HumanBytes(s.gc_bytes_written).c_str(),
      HumanBytes(s.gc_bytes_read).c_str());
}

}  // namespace ptsb::bench

#endif  // PTSB_BENCH_BENCH_COMMON_H_
