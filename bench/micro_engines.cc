// google-benchmark microbenchmarks of the three engines' operation costs
// on a plain in-memory block device (no SSD timing): the software-side
// cost the paper's CPU-overhead discussion refers to.
//
// All engines are instantiated exclusively through kv::OpenStore, and the
// BM_*Write benchmarks sweep the batch size: the wal_bytes_per_op counter
// shows group commit amortizing the per-record log overhead (one crc +
// length frame per batch instead of per op). The alog write benchmarks
// also report gc_bytes_per_op — the log engine's entire application-level
// write amplification beyond the appends themselves.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb {
namespace {

struct EngineFixture {
  block::MemoryBlockDevice dev{4096, 1 << 16};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;

  explicit EngineFixture(const std::string& engine,
                         std::map<std::string, std::string> params = {}) {
    kv::EngineOptions options;
    options.engine = engine;
    options.fs = &fs;
    options.params = std::move(params);
    store = *kv::OpenStore(options);
  }
};

std::map<std::string, std::string> LsmBenchParams() {
  return {{"memtable_bytes", std::to_string(4 << 20)},
          {"l1_target_bytes", std::to_string(16 << 20)},
          {"sst_target_bytes", std::to_string(4 << 20)}};
}

std::map<std::string, std::string> BTreeBenchParams(bool journal) {
  return {{"cache_bytes", std::to_string(8 << 20)},
          {"checkpoint_every_bytes", std::to_string(64 << 20)},
          {"journal_enabled", journal ? "1" : "0"}};
}

std::map<std::string, std::string> AlogBenchParams() {
  return {{"segment_bytes", std::to_string(4 << 20)},
          {"gc_trigger", "0.5"}};
}

// Batched writes, state.range(0) = entries per batch (1 = single-op puts).
// Reported counter wal_bytes_per_op makes the group-commit amortization
// visible: per-op log bytes drop as the batch grows.
void RunWriteBatchBench(benchmark::State& state, const std::string& engine,
                        std::map<std::string, std::string> params) {
  EngineFixture f(engine, std::move(params));
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const std::string value = kv::MakeValue(1, 128);
  Rng rng(1);
  uint64_t ops = 0;
  kv::WriteBatch batch;
  for (auto _ : state) {
    batch.Clear();
    for (size_t j = 0; j < batch_size; j++) {
      batch.Put(kv::MakeKey(rng.Uniform(100000)), value);
    }
    PTSB_CHECK_OK(f.store->Write(batch));
    ops += batch_size;
  }
  const auto stats = f.store->GetStats();
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["wal_bytes_per_op"] =
      ops > 0 ? static_cast<double>(stats.wal_bytes_written) /
                    static_cast<double>(ops)
              : 0;
  state.counters["gc_bytes_per_op"] =
      ops > 0 ? static_cast<double>(stats.gc_bytes_written) /
                    static_cast<double>(ops)
              : 0;
  // Host-buffering layer counters: zero for the bare engines, live for
  // the "cached" wrapper (BM_CachedWrite) — coalesced_bytes_per_op is
  // the write traffic the buffer absorbed before the inner engine.
  state.counters["coalesced_bytes_per_op"] =
      ops > 0 ? static_cast<double>(stats.buffer_coalesced_bytes) /
                    static_cast<double>(ops)
              : 0;
  state.counters["flush_batches"] =
      static_cast<double>(stats.flush_batches);
}

void BM_LsmWrite(benchmark::State& state) {
  RunWriteBatchBench(state, "lsm", LsmBenchParams());
}
BENCHMARK(BM_LsmWrite)->Arg(1)->Arg(8)->Arg(64);

void BM_BTreeWrite(benchmark::State& state) {
  // Journal on: the B+Tree analog of WAL group commit.
  RunWriteBatchBench(state, "btree", BTreeBenchParams(/*journal=*/true));
}
BENCHMARK(BM_BTreeWrite)->Arg(1)->Arg(8)->Arg(64);

void BM_AlogWrite(benchmark::State& state) {
  // The segment log is both data and WAL: one framed record per batch.
  RunWriteBatchBench(state, "alog", AlogBenchParams());
}
BENCHMARK(BM_AlogWrite)->Arg(1)->Arg(8)->Arg(64);

void BM_CachedWrite(benchmark::State& state) {
  // The cached wrapper over the LSM: wal_bytes_per_op is the wrapper's
  // own durability log, coalesced_bytes_per_op the rewrites its write
  // buffer absorbed before the inner engine saw them.
  std::map<std::string, std::string> params = LsmBenchParams();
  params["inner_engine"] = "lsm";
  params["write_buffer_bytes"] = std::to_string(1 << 20);
  params["read_cache_bytes"] = std::to_string(1 << 20);
  params["read_cache_policy"] = "2q";
  RunWriteBatchBench(state, "cached", std::move(params));
}
BENCHMARK(BM_CachedWrite)->Arg(1)->Arg(8)->Arg(64);

void BM_CachedGet(benchmark::State& state) {
  std::map<std::string, std::string> params = LsmBenchParams();
  params["inner_engine"] = "lsm";
  params["write_buffer_bytes"] = std::to_string(1 << 20);
  params["read_cache_bytes"] = std::to_string(4 << 20);
  params["read_cache_policy"] = "2q";
  EngineFixture f("cached", std::move(params));
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(8);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
  const auto stats = f.store->GetStats();
  const double probes =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  state.counters["cache_hit_ratio"] =
      probes > 0 ? static_cast<double>(stats.cache_hits) / probes : 0;
}
BENCHMARK(BM_CachedGet);

void BM_LsmPut(benchmark::State& state) {
  EngineFixture f("lsm", LsmBenchParams());
  const std::string value = kv::MakeValue(1, state.range(0));
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(rng.Uniform(100000)), value));
    i++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(i) * state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(128)->Arg(4000);

void BM_LsmGet(benchmark::State& state) {
  EngineFixture f("lsm", LsmBenchParams());
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(2);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
}
BENCHMARK(BM_LsmGet);

void BM_BTreePut(benchmark::State& state) {
  EngineFixture f("btree", BTreeBenchParams(/*journal=*/false));
  const std::string value = kv::MakeValue(1, state.range(0));
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(rng.Uniform(100000)), value));
    i++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(i) * state.range(0));
}
BENCHMARK(BM_BTreePut)->Arg(128)->Arg(4000);

void BM_BTreeGet(benchmark::State& state) {
  EngineFixture f("btree", BTreeBenchParams(/*journal=*/false));
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  Rng rng(4);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
}
BENCHMARK(BM_BTreeGet);

// Streaming 100-entry scans through the iterator API.
void RunScanBench(benchmark::State& state, const std::string& engine,
                  std::map<std::string, std::string> params) {
  EngineFixture f(engine, std::move(params));
  const std::string value = kv::MakeValue(1, 256);
  for (uint64_t k = 0; k < 20000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(5);
  for (auto _ : state) {
    auto it = f.store->NewIterator();
    size_t n = 0;
    for (it->Seek(kv::MakeKey(rng.Uniform(19000))); it->Valid() && n < 100;
         it->Next()) {
      benchmark::DoNotOptimize(it->value().data());
      n++;
    }
    PTSB_CHECK_OK(it->status());
  }
}

void BM_LsmScan100(benchmark::State& state) {
  RunScanBench(state, "lsm", LsmBenchParams());
}
BENCHMARK(BM_LsmScan100);

void BM_BTreeScan100(benchmark::State& state) {
  RunScanBench(state, "btree", BTreeBenchParams(/*journal=*/false));
}
BENCHMARK(BM_BTreeScan100);

void BM_AlogPut(benchmark::State& state) {
  EngineFixture f("alog", AlogBenchParams());
  const std::string value = kv::MakeValue(1, state.range(0));
  Rng rng(6);
  uint64_t i = 0;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(rng.Uniform(100000)), value));
    i++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(i) * state.range(0));
}
BENCHMARK(BM_AlogPut)->Arg(128)->Arg(4000);

void BM_AlogGet(benchmark::State& state) {
  EngineFixture f("alog", AlogBenchParams());
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(7);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
}
BENCHMARK(BM_AlogGet);

void BM_AlogScan100(benchmark::State& state) {
  RunScanBench(state, "alog", AlogBenchParams());
}
BENCHMARK(BM_AlogScan100);

}  // namespace
}  // namespace ptsb

BENCHMARK_MAIN();
