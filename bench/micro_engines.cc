// google-benchmark microbenchmarks of the two engines' operation costs on
// a plain in-memory block device (no SSD timing): the software-side cost
// the paper's CPU-overhead discussion refers to.
#include <benchmark/benchmark.h>

#include <memory>

#include "block/memory_device.h"
#include "btree/btree_store.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "lsm/lsm_store.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb {
namespace {

struct LsmFixtureState {
  block::MemoryBlockDevice dev{4096, 1 << 16};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<lsm::LsmStore> store;

  LsmFixtureState() {
    lsm::LsmOptions o;
    o.memtable_bytes = 4 << 20;
    o.l1_target_bytes = 16 << 20;
    o.sst_target_bytes = 4 << 20;
    store = *lsm::LsmStore::Open(&fs, o);
  }
};

struct BTreeFixtureState {
  block::MemoryBlockDevice dev{4096, 1 << 16};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<btree::BTreeStore> store;

  BTreeFixtureState() {
    btree::BTreeOptions o;
    o.cache_bytes = 8 << 20;
    o.checkpoint_every_bytes = 64 << 20;
    store = *btree::BTreeStore::Open(&fs, o);
  }
};

void BM_LsmPut(benchmark::State& state) {
  LsmFixtureState f;
  const std::string value = kv::MakeValue(1, state.range(0));
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(rng.Uniform(100000)), value));
    i++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(i) * state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(128)->Arg(4000);

void BM_LsmGet(benchmark::State& state) {
  LsmFixtureState f;
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(2);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
}
BENCHMARK(BM_LsmGet);

void BM_BTreePut(benchmark::State& state) {
  BTreeFixtureState f;
  const std::string value = kv::MakeValue(1, state.range(0));
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(rng.Uniform(100000)), value));
    i++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(i) * state.range(0));
}
BENCHMARK(BM_BTreePut)->Arg(128)->Arg(4000);

void BM_BTreeGet(benchmark::State& state) {
  BTreeFixtureState f;
  const std::string value = kv::MakeValue(1, 512);
  for (uint64_t k = 0; k < 5000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  Rng rng(4);
  std::string out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Get(kv::MakeKey(rng.Uniform(5000)), &out));
  }
}
BENCHMARK(BM_BTreeGet);

void BM_LsmScan100(benchmark::State& state) {
  LsmFixtureState f;
  const std::string value = kv::MakeValue(1, 256);
  for (uint64_t k = 0; k < 20000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  PTSB_CHECK_OK(f.store->Flush());
  Rng rng(5);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Scan(kv::MakeKey(rng.Uniform(19000)), 100, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LsmScan100);

void BM_BTreeScan100(benchmark::State& state) {
  BTreeFixtureState f;
  const std::string value = kv::MakeValue(1, 256);
  for (uint64_t k = 0; k < 20000; k++) {
    PTSB_CHECK_OK(f.store->Put(kv::MakeKey(k), value));
  }
  Rng rng(6);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    PTSB_CHECK_OK(f.store->Scan(kv::MakeKey(rng.Uniform(19000)), 100, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BTreeScan100);

}  // namespace
}  // namespace ptsb

BENCHMARK_MAIN();
