#include "sharded/sharded_store.h"

#include <algorithm>
#include <utility>

#include "fs/file.h"
#include "fs/filesystem.h"
#include "util/crc32.h"
#include "util/human.h"
#include "util/logging.h"

namespace ptsb::sharded {

namespace {

// Field-wise sum of the engine counters; per-shard clocks don't exist
// (shards share the experiment's SimClock), so the time breakdown sums
// like the byte counters do.
void AddStats(kv::KvStoreStats* into, const kv::KvStoreStats& s) {
  into->user_puts += s.user_puts;
  into->user_gets += s.user_gets;
  into->user_deletes += s.user_deletes;
  into->user_scans += s.user_scans;
  into->user_batches += s.user_batches;
  into->user_bytes_written += s.user_bytes_written;
  into->user_bytes_read += s.user_bytes_read;
  into->wal_records += s.wal_records;
  into->write_groups += s.write_groups;
  into->write_group_batches += s.write_group_batches;
  into->wal_bytes_written += s.wal_bytes_written;
  into->flush_bytes_written += s.flush_bytes_written;
  into->compaction_bytes_written += s.compaction_bytes_written;
  into->compaction_bytes_read += s.compaction_bytes_read;
  into->page_write_bytes += s.page_write_bytes;
  into->page_read_bytes += s.page_read_bytes;
  into->checkpoint_bytes_written += s.checkpoint_bytes_written;
  into->gc_bytes_written += s.gc_bytes_written;
  into->gc_bytes_read += s.gc_bytes_read;
  into->cache_hits += s.cache_hits;
  into->cache_misses += s.cache_misses;
  into->bloom_negatives += s.bloom_negatives;
  into->bloom_false_positives += s.bloom_false_positives;
  into->buffer_coalesced_bytes += s.buffer_coalesced_bytes;
  into->flush_batches += s.flush_batches;
  into->stall_count += s.stall_count;
  into->snapshots_created += s.snapshots_created;
  into->snapshots_open += s.snapshots_open;
  into->snapshot_pinned_bytes += s.snapshot_pinned_bytes;
  into->time_wal_ns += s.time_wal_ns;
  into->time_flush_ns += s.time_flush_ns;
  into->time_compaction_ns += s.time_compaction_ns;
  into->time_read_path_ns += s.time_read_path_ns;
  into->time_writeback_ns += s.time_writeback_ns;
  into->time_checkpoint_ns += s.time_checkpoint_ns;
  into->time_background_ns += s.time_background_ns;
}

// NoSpace wins over generic errors: the experiment driver treats it as
// data (the paper's Fig. 6 scenario), so a concurrent commit where one
// shard filled the device and another hit a follow-on error must report
// the root cause.
Status CombineStatuses(const std::vector<Status>& statuses) {
  const Status* first_bad = nullptr;
  for (const Status& s : statuses) {
    if (s.IsNoSpace()) return s;
    if (!s.ok() && first_bad == nullptr) first_bad = &s;
  }
  return first_bad == nullptr ? Status::OK() : *first_bad;
}

}  // namespace

// A Write call waiting for its dispatched sub-batches. Lives on the
// caller's stack; `remaining` counts sub-batches still running on shard
// workers.
struct ShardedStore::WriteBarrier {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
};

struct ShardedStore::WriteTask {
  const kv::WriteBatch* batch = nullptr;
  Status* status = nullptr;       // caller-owned slot for the result
  WriteBarrier* barrier = nullptr;
};

struct ShardedStore::Shard {
  std::unique_ptr<kv::KVStore> store;
  // Guards `store`: every inner-engine call (Write/Get/iterator creation/
  // Flush/stats) happens under this mutex, making each shard as
  // single-threaded as the engines assume while different shards run in
  // parallel.
  std::mutex mu;

  // Write-dispatch queue, used only when parallel_write is on.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<WriteTask> queue;
  bool stop = false;
  std::thread worker;
};

ShardedStore::ShardedStore(ShardedOptions options, std::string root)
    : options_(std::move(options)), root_(std::move(root)) {}

ShardedStore::~ShardedStore() {
  StopWorkers();
  if (!closed_) {
    // Best-effort shutdown; errors are not recoverable in a destructor.
    Close().ok();
  }
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const kv::EngineOptions& options) {
  ShardedOptions so;
  so.shards = kv::ParamInt(options, "shards", so.shards);
  so.parallel_write =
      kv::ParamBool(options, "parallel_write", so.parallel_write);
  so.parallel_write_min_bytes =
      kv::ParamUint64(options, "parallel_write_min_bytes",
                      so.parallel_write_min_bytes);
  so.queue_depth = kv::ParamInt(options, "queue_depth", so.queue_depth);
  if (so.queue_depth < 1) {
    return Status::InvalidArgument("sharded: queue_depth must be >= 1");
  }
  so.read_queue_depth =
      kv::ParamInt(options, "read_queue_depth", so.read_queue_depth);
  if (so.read_queue_depth < 1) {
    return Status::InvalidArgument("sharded: read_queue_depth must be >= 1");
  }
  if (const auto it = options.params.find("inner_engine");
      it != options.params.end()) {
    so.inner_engine = it->second;
  }
  if (so.shards < 1) {
    return Status::InvalidArgument("sharded: shards must be >= 1");
  }
  if (so.inner_engine == "sharded") {
    return Status::InvalidArgument(
        "sharded: inner_engine cannot be \"sharded\" (no nesting)");
  }
  if (!kv::EngineRegistry::Global().Contains(so.inner_engine)) {
    return Status::InvalidArgument("sharded: unknown inner_engine \"" +
                                   so.inner_engine + "\"");
  }

  const std::string root = options.root.empty() ? "sharded" : options.root;

  // The shard count is part of the on-disk layout: the hash routes
  // key -> CRC32C(key) % shards, so reopening existing data with a
  // different count (or a different inner format) would silently strand
  // keys on shards the hash no longer reaches. Persist both in a META
  // file on first open and refuse a mismatch afterwards.
  const std::string meta_name = root + "/META";
  if (options.fs->Exists(meta_name)) {
    PTSB_ASSIGN_OR_RETURN(fs::File * meta, options.fs->Open(meta_name));
    std::string contents(meta->size(), '\0');
    PTSB_ASSIGN_OR_RETURN(
        const uint64_t got,
        meta->ReadAt(0, contents.size(), contents.data()));
    contents.resize(got);
    const std::string expected = "shards=" + std::to_string(so.shards) +
                                 "\ninner_engine=" + so.inner_engine + "\n";
    if (contents != expected) {
      return Status::InvalidArgument(
          "sharded: store at \"" + root + "\" was created with different "
          "layout parameters (on disk: \"" + contents +
          "\", requested: \"" + expected +
          "\"); shard count and inner engine are part of the on-disk "
          "layout and must match");
    }
  } else {
    PTSB_ASSIGN_OR_RETURN(fs::File * meta, options.fs->Create(meta_name));
    PTSB_RETURN_IF_ERROR(
        meta->Append("shards=" + std::to_string(so.shards) +
                     "\ninner_engine=" + so.inner_engine + "\n"));
    PTSB_RETURN_IF_ERROR(meta->Sync());
  }

  auto store = std::unique_ptr<ShardedStore>(new ShardedStore(so, root));
  store->clock_ = options.clock;

  // Everything except the router's own knobs configures the inner engine.
  kv::EngineOptions inner = options;
  inner.engine = so.inner_engine;
  inner.params.erase("shards");
  inner.params.erase("inner_engine");
  inner.params.erase("parallel_write");
  inner.params.erase("parallel_write_min_bytes");
  inner.params.erase("queue_depth");
  // read_queue_depth is dual-use: the router consumes it for its own
  // cross-shard MultiGet fan-out AND leaves it in the inner params, so
  // each shard's snapshot iterator can prefetch (ReadOptions::readahead)
  // across its own read submission lanes.

  for (int i = 0; i < so.shards; i++) {
    inner.root = root + "/shard-" + std::to_string(i);
    // Shard i submits async commits on queue i, so the SSD can overlap
    // distinct shards' I/O on distinct channels (queue % channels);
    // shard i's background lane (compaction/checkpoint/GC with
    // background_io on) gets queue shards + i, keeping maintenance off
    // the foreground channels whenever the device has channels to spare.
    inner.io_queue = static_cast<uint32_t>(i);
    inner.background_queue = static_cast<uint32_t>(so.shards + i);
    auto opened = kv::EngineRegistry::Global().Open(inner);
    if (!opened.ok()) return opened.status();
    auto shard = std::make_unique<Shard>();
    shard->store = *std::move(opened);
    store->shards_.push_back(std::move(shard));
  }

  if (so.parallel_write && so.shards > 1) {
    for (auto& shard : store->shards_) {
      Shard* s = shard.get();
      s->worker = std::thread([store = store.get(), s] {
        store->WorkerLoop(s);
      });
    }
  }
  return store;
}

int ShardedStore::ShardOf(std::string_view key) const {
  return static_cast<int>(Crc32c(key) %
                          static_cast<uint32_t>(shards_.size()));
}

Status ShardedStore::CommitToShard(Shard* shard, const kv::WriteBatch& sub) {
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->store->Write(sub);
}

void ShardedStore::WorkerLoop(Shard* shard) {
  for (;;) {
    WriteTask task;
    {
      std::unique_lock<std::mutex> lock(shard->queue_mu);
      shard->queue_cv.wait(lock, [shard] {
        return shard->stop || !shard->queue.empty();
      });
      if (shard->queue.empty()) {
        if (shard->stop) return;
        continue;
      }
      task = shard->queue.front();
      shard->queue.pop_front();
    }
    *task.status = CommitToShard(shard, *task.batch);
    {
      std::lock_guard<std::mutex> lock(task.barrier->mu);
      if (--task.barrier->remaining == 0) task.barrier->cv.notify_all();
    }
  }
}

void ShardedStore::StopWorkers() {
  for (auto& shard : shards_) {
    if (!shard->worker.joinable()) continue;
    {
      std::lock_guard<std::mutex> lock(shard->queue_mu);
      shard->stop = true;
    }
    shard->queue_cv.notify_all();
    shard->worker.join();
  }
}

Status ShardedStore::Write(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  if (batch.empty()) return Status::OK();

  // Split by shard, preserving entry order within each shard. Duplicate
  // keys hash identically, so last-entry-wins is per-shard order.
  std::vector<kv::WriteBatch> subs(shards_.size());
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    if (e.kind == kv::WriteBatch::EntryKind::kDeleteRange) {
      // A range spans the hash partition (covered keys live on every
      // shard), so it is broadcast: each shard deletes its own covered
      // keys, and in-sub-batch order still matches the user's order.
      for (kv::WriteBatch& sub : subs) sub.DeleteRange(e.key, e.value);
      continue;
    }
    kv::WriteBatch& sub = subs[static_cast<size_t>(ShardOf(e.key))];
    if (e.kind == kv::WriteBatch::EntryKind::kPut) {
      sub.Put(e.key, e.value);
    } else {
      sub.Delete(e.key);
    }
  }
  std::vector<size_t> touched;
  for (size_t i = 0; i < subs.size(); i++) {
    if (!subs[i].empty()) touched.push_back(i);
  }
  // Rotate the commit order per call: if every caller walked the shards
  // in ascending order, concurrent writers would convoy behind each other
  // on shard 0, then shard 1, ... — moving in lockstep and serializing
  // the whole batch despite the per-shard locks. Distinct starting
  // offsets let k callers occupy k different shards at once.
  if (touched.size() > 1) {
    const size_t offset =
        write_rotation_.fetch_add(1, std::memory_order_relaxed) %
        touched.size();
    std::rotate(touched.begin(), touched.begin() + offset, touched.end());
  }

  // Async multi-queue dispatch: with a queue depth > 1 and a virtual
  // clock, sub-batches commit through WriteAsync from this thread — each
  // shard's commit runs in its own virtual-time submission lane, so up
  // to queue_depth commits overlap in simulated device time (on distinct
  // flash channels when the device has them). Deterministic: one thread,
  // no worker handoff.
  if (options_.queue_depth > 1 && clock_ != nullptr) {
    return WriteAsyncDispatch(subs, touched);
  }

  std::vector<Status> statuses(touched.size());
  const bool workers_running =
      options_.parallel_write && shards_.size() > 1;

  // Concurrent group commit: sub-batches big enough to amortize a worker
  // wakeup are dispatched to their shard workers; the rest (always
  // including one, so this thread contributes) commit inline while the
  // workers run. Small batches therefore stay on the caller entirely —
  // with several caller threads the per-shard mutexes still overlap their
  // commits across shards.
  WriteBarrier barrier;
  std::vector<size_t> inline_commits;
  for (size_t t = 0; t < touched.size(); t++) {
    const kv::WriteBatch& sub = subs[touched[t]];
    if (!workers_running || t == 0 ||
        sub.ByteSize() < options_.parallel_write_min_bytes) {
      inline_commits.push_back(t);
      continue;
    }
    Shard* shard = shards_[touched[t]].get();
    WriteTask task;
    task.batch = &sub;
    task.status = &statuses[t];
    task.barrier = &barrier;
    {
      std::lock_guard<std::mutex> lock(barrier.mu);
      barrier.remaining++;
    }
    {
      std::lock_guard<std::mutex> lock(shard->queue_mu);
      shard->queue.push_back(task);
    }
    shard->queue_cv.notify_one();
  }
  for (const size_t t : inline_commits) {
    statuses[t] = CommitToShard(shards_[touched[t]].get(), subs[touched[t]]);
  }
  {
    std::unique_lock<std::mutex> lock(barrier.mu);
    barrier.cv.wait(lock, [&barrier] { return barrier.remaining == 0; });
  }
  return CombineStatuses(statuses);
}

Status ShardedStore::WriteAsyncDispatch(
    const std::vector<kv::WriteBatch>& subs,
    const std::vector<size_t>& touched) {
  std::vector<kv::WriteHandle> handles;
  handles.reserve(touched.size());
  std::vector<Status> statuses(touched.size());
  size_t waited = 0;
  for (const size_t shard_idx : touched) {
    Shard* shard = shards_[shard_idx].get();
    {
      // The lane runs the whole inner commit under the shard mutex (the
      // engines are single-threaded code); only the Wait below happens
      // outside it.
      std::lock_guard<std::mutex> lock(shard->mu);
      handles.push_back(shard->store->WriteAsync(subs[shard_idx]));
    }
    // Keep at most queue_depth commits in flight: waiting the oldest
    // joins its completion into the clock, so later submissions start
    // no earlier than its finish — exactly a bounded submission queue.
    if (handles.size() - waited >=
        static_cast<size_t>(options_.queue_depth)) {
      statuses[waited] = handles[waited].Wait();
      waited++;
    }
  }
  for (; waited < handles.size(); waited++) {
    statuses[waited] = handles[waited].Wait();
  }
  return CombineStatuses(statuses);
}

Status ShardedStore::Get(std::string_view key, std::string* value) {
  PTSB_CHECK(!closed_);
  Shard* shard = shards_[static_cast<size_t>(ShardOf(key))].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->store->Get(key, value);
}

// The composite snapshot: one inner snapshot per shard, in shard order.
// Each component holds its own engine's pins (SSTs, checkpoint blocks,
// segments), released by its shared_ptr deleter — the engines' release
// paths take their own commit-exclusion locks, so dropping the composite
// needs no shard mutexes here.
class ShardedStore::SnapshotImpl : public kv::Snapshot {
 public:
  uint64_t sequence() const override { return seq_; }

  const ShardedStore* store_ = nullptr;
  uint64_t seq_ = 0;
  std::vector<std::shared_ptr<const kv::Snapshot>> shard_snaps_;
};

StatusOr<std::shared_ptr<const kv::Snapshot>> ShardedStore::GetSnapshot() {
  PTSB_CHECK(!closed_);
  auto snap = std::make_shared<SnapshotImpl>();
  snap->store_ = this;
  snap->shard_snaps_.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    PTSB_ASSIGN_OR_RETURN(std::shared_ptr<const kv::Snapshot> s,
                          shard->store->GetSnapshot());
    snap->shard_snaps_.push_back(std::move(s));
  }
  snap->seq_ = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::shared_ptr<const kv::Snapshot>(std::move(snap));
}

Status ShardedStore::Get(const kv::ReadOptions& opts, std::string_view key,
                         std::string* value) {
  if (opts.snapshot == nullptr) return Get(key, value);
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this);
  const auto idx = static_cast<size_t>(ShardOf(key));
  kv::ReadOptions inner_opts = opts;
  inner_opts.snapshot = snap->shard_snaps_[idx].get();
  Shard* shard = shards_[idx].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->store->Get(inner_opts, key, value);
}

std::vector<Status> ShardedStore::MultiGet(
    std::span<const std::string_view> keys,
    std::vector<std::string>* values) {
  PTSB_CHECK(!closed_);
  const int depth = options_.read_queue_depth;
  if (clock_ == nullptr || depth <= 1) {
    return KVStore::MultiGet(keys, values);  // sequential Gets per shard
  }
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size());
  // Async sub-lookup dispatch, mirroring WriteAsyncDispatch: each key's
  // lookup runs in the owning shard's read lane (queue = shard index),
  // at most `depth` in flight. Waiting the oldest joins its completion
  // into the clock, bounding the submission queue. Lookups hitting the
  // same shard serialize on its channel's read pipeline; distinct shards
  // overlap.
  std::vector<kv::ReadHandle> handles;
  handles.reserve(keys.size());
  size_t waited = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    Shard* shard = shards_[static_cast<size_t>(ShardOf(keys[i]))].get();
    {
      // The lane runs the whole inner lookup under the shard mutex (the
      // engines are single-threaded code); only the Wait happens outside.
      std::lock_guard<std::mutex> lock(shard->mu);
      handles.push_back(shard->store->ReadAsync(keys[i], &(*values)[i]));
    }
    if (handles.size() - waited >= static_cast<size_t>(depth)) {
      statuses[waited] = handles[waited].Wait();
      waited++;
    }
  }
  for (; waited < handles.size(); waited++) {
    statuses[waited] = handles[waited].Wait();
  }
  return statuses;
}

kv::ReadHandle ShardedStore::ReadAsync(std::string_view key,
                                       std::string* value) {
  PTSB_CHECK(!closed_);
  Shard* shard = shards_[static_cast<size_t>(ShardOf(key))].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->store->ReadAsync(key, value);
}

// K-way merge over the per-shard ordered iterators. The hash partition is
// disjoint, so the merged stream never sees a key twice and ties cannot
// happen. Consumption is single-threaded by contract (like every iterator
// here); only creation synchronizes with the shards.
class ShardedStore::MergingIterator : public kv::KVStore::Iterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<kv::KVStore::Iterator>> inners)
      : inners_(std::move(inners)) {}

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    for (auto& it : inners_) it->Seek(target);
    PickCurrent();
  }

  bool Valid() const override { return current_ >= 0; }

  void Next() override {
    if (current_ < 0) return;
    inners_[static_cast<size_t>(current_)]->Next();
    PickCurrent();
  }

  std::string_view key() const override {
    return inners_[static_cast<size_t>(current_)]->key();
  }
  std::string_view value() const override {
    return inners_[static_cast<size_t>(current_)]->value();
  }

  Status status() const override {
    for (const auto& it : inners_) {
      if (!it->status().ok()) return it->status();
    }
    return Status::OK();
  }

 private:
  void PickCurrent() {
    current_ = -1;
    for (size_t i = 0; i < inners_.size(); i++) {
      if (!inners_[i]->status().ok()) {
        // An I/O error in any shard invalidates the merged cursor.
        current_ = -1;
        return;
      }
      if (!inners_[i]->Valid()) continue;
      if (current_ < 0 ||
          inners_[i]->key() < inners_[static_cast<size_t>(current_)]->key()) {
        current_ = static_cast<int>(i);
      }
    }
  }

  std::vector<std::unique_ptr<kv::KVStore::Iterator>> inners_;
  int current_ = -1;
};

std::unique_ptr<kv::KVStore::Iterator> ShardedStore::NewIterator() {
  PTSB_CHECK(!closed_);
  std::vector<std::unique_ptr<kv::KVStore::Iterator>> inners;
  inners.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    inners.push_back(shard->store->NewIterator());
  }
  return std::make_unique<MergingIterator>(std::move(inners));
}

std::unique_ptr<kv::KVStore::Iterator> ShardedStore::NewIterator(
    const kv::ReadOptions& opts) {
  if (opts.snapshot == nullptr) return NewIterator();
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this);
  // The merge layer itself shares no mutable state with writers; each
  // per-shard snapshot cursor serializes its own movements against that
  // shard's commits internally, so the merged cursor survives concurrent
  // writes exactly as far as its components do.
  std::vector<std::unique_ptr<kv::KVStore::Iterator>> inners;
  inners.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); i++) {
    kv::ReadOptions inner_opts = opts;
    inner_opts.snapshot = snap->shard_snaps_[i].get();
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    inners.push_back(shards_[i]->store->NewIterator(inner_opts));
  }
  return std::make_unique<MergingIterator>(std::move(inners));
}

Status ShardedStore::Flush() {
  PTSB_CHECK(!closed_);
  std::vector<Status> statuses;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    statuses.push_back(shard->store->Flush());
  }
  return CombineStatuses(statuses);
}

Status ShardedStore::SettleBackgroundWork() {
  PTSB_CHECK(!closed_);
  std::vector<Status> statuses;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    statuses.push_back(shard->store->SettleBackgroundWork());
  }
  return CombineStatuses(statuses);
}

Status ShardedStore::Close() {
  if (closed_) return Status::OK();
  StopWorkers();
  std::vector<Status> statuses;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    statuses.push_back(shard->store->Close());
  }
  closed_ = true;
  return CombineStatuses(statuses);
}

kv::KvStoreStats ShardedStore::GetStats() const {
  kv::KvStoreStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    AddStats(&total, shard->store->GetStats());
  }
  return total;
}

kv::KvStoreStats ShardedStore::ShardStats(int shard) const {
  PTSB_CHECK_GE(shard, 0);
  PTSB_CHECK_LT(static_cast<size_t>(shard), shards_.size());
  const auto& s = shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s->mu);
  return s->store->GetStats();
}

std::string ShardedStore::Name() const {
  return StrPrintf("sharded(%zux %s)", shards_.size(),
                   options_.inner_engine.c_str());
}

uint64_t ShardedStore::DiskBytesUsed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->store->DiskBytesUsed();
  }
  return total;
}

void RegisterShardedEngine() {
  kv::EngineRegistry::Global().Register(
      "sharded",
      [](const kv::EngineOptions& eo)
          -> StatusOr<std::unique_ptr<kv::KVStore>> {
        auto opened = ShardedStore::Open(eo);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<kv::KVStore>(std::move(*opened));
      });
}

std::map<std::string, std::string> EncodeEngineParams(
    const ShardedOptions& o) {
  std::map<std::string, std::string> p;
  p["shards"] = std::to_string(o.shards);
  p["inner_engine"] = o.inner_engine;
  p["parallel_write"] = o.parallel_write ? "1" : "0";
  p["parallel_write_min_bytes"] = std::to_string(o.parallel_write_min_bytes);
  p["queue_depth"] = std::to_string(o.queue_depth);
  p["read_queue_depth"] = std::to_string(o.read_queue_depth);
  return p;
}

}  // namespace ptsb::sharded
