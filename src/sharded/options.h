// Configuration of the sharded front end. The sharded "engine" is a thin
// concurrent router: it owns N instances of an inner engine (any name in
// kv::EngineRegistry except "sharded" itself) and hash-partitions the
// keyspace across them, so the structural options all belong to the inner
// engine and pass through the param map untouched.
#ifndef PTSB_SHARDED_OPTIONS_H_
#define PTSB_SHARDED_OPTIONS_H_

#include <cstdint>
#include <string>

namespace ptsb::sharded {

struct ShardedOptions {
  // Number of per-shard inner engine instances. Each shard lives in its
  // own directory (<root>/shard-NNN) and is guarded by its own mutex, so
  // writers on different shards proceed in parallel.
  int shards = 4;

  // Registry name of the engine each shard runs ("lsm", "btree", "alog",
  // or any out-of-tree registration). Nesting "sharded" is rejected.
  std::string inner_engine = "lsm";

  // Commit the sub-batches of one Write on the per-shard worker threads
  // (concurrent group commit). When false — or when a batch touches a
  // single shard — sub-batches commit sequentially on the calling thread;
  // multiple caller threads still get shard-level parallelism from the
  // per-shard locking.
  bool parallel_write = true;

  // Dispatch a sub-batch to its shard worker only when its payload is at
  // least this large; smaller sub-batches commit inline on the caller.
  // Waking a worker costs a condition-variable round-trip (~10 us), so
  // handing it less work than that makes the batch SLOWER than committing
  // sequentially — the classic small-write dispatch trap. 0 = always
  // dispatch.
  uint64_t parallel_write_min_bytes = 32 << 10;

  // Maximum in-flight async sub-batch commits per Write call. At > 1
  // (and with a virtual clock attached), a cross-shard batch dispatches
  // its sub-batches through KVStore::WriteAsync — shard i submits on
  // queue i, the simulated SSD serializes queue i on channel
  // i % channels only — so up to queue_depth commits overlap in VIRTUAL
  // device time, like an NVMe multi-queue submitter. This is orthogonal
  // to parallel_write (wall-clock overlap on worker threads): when the
  // async path is active it dispatches from the calling thread and the
  // workers stay idle, keeping the virtual timeline deterministic. 1 =
  // synchronous serialized commits (the pre-async behavior).
  int queue_depth = 1;

  // Maximum in-flight async sub-lookups per MultiGet call: the read-side
  // twin of queue_depth. At > 1 (with a virtual clock), MultiGet routes
  // each key's lookup through the owning shard's ReadAsync — shard i
  // submits on queue i, so lookups hitting distinct shards overlap in
  // VIRTUAL device time across SSD channels. 1 = sequential Gets.
  int read_queue_depth = 1;
};

}  // namespace ptsb::sharded

#endif  // PTSB_SHARDED_OPTIONS_H_
