// ShardedStore: a concurrent front end over N inner engine instances.
//
// The paper's harness (and this repo's engines) are single-threaded; an
// SSD only shows its internal parallelism when several flash channels are
// kept busy at once (Roh et al. — see PAPERS.md). ShardedStore is the
// testbed's first multi-threaded execution path: it hash-partitions the
// keyspace across N shards, each shard a full instance of any registered
// engine rooted in its own directory, each guarded by its own mutex.
// Writers on different shards proceed in parallel; the filesystem below
// serializes only the actual I/O (see fs/filesystem.h), so the engines'
// CPU work — key comparison, checksums, memtable/index updates — overlaps
// across shards the way a multi-threaded storage engine overlaps it above
// a kernel block layer.
//
// Semantics relative to a single engine instance:
//  - Write(batch) splits the batch by shard and commits the sub-batches
//    concurrently on per-shard worker threads (one group commit per shard
//    touched). Entries for the same key land on the same shard, so
//    last-entry-wins order is preserved. Atomicity is per shard: a crash
//    can persist one shard's sub-batch and not another's (like a
//    distributed store without a cross-shard commit protocol).
//  - NewIterator() is a k-way merge over per-shard ordered iterators; the
//    partition is disjoint so no key appears twice. Like every iterator
//    in this codebase it observes the store as of creation, must not run
//    concurrently with writes, and is invalidated by them (the inner
//    engines' debug-build epoch checks fail fast on misuse).
//  - GetStats() sums KvStoreStats across shards. user_batches counts
//    per-shard sub-batch commits (each is one WAL/journal/segment
//    record), which is the unit the group-commit accounting cares about.
#ifndef PTSB_SHARDED_SHARDED_STORE_H_
#define PTSB_SHARDED_SHARDED_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "kv/kvstore.h"
#include "kv/registry.h"
#include "sharded/options.h"

namespace ptsb::sharded {

class ShardedStore : public kv::KVStore {
 public:
  // Opens (or reopens) the sharded store described by `options`:
  // engine-level params "shards", "inner_engine" and "parallel_write" are
  // consumed here, every other param passes through to the inner engine
  // factories. Shard i is rooted at <root>/shard-i (root defaults to
  // "sharded"); reopening with the same root recovers every shard through
  // the inner engine's own recovery path. The shard count is part of the
  // on-disk layout: reopening with a different count would strand keys on
  // shards the hash no longer routes to, so it must match.
  static StatusOr<std::unique_ptr<ShardedStore>> Open(
      const kv::EngineOptions& options);
  ~ShardedStore() override;

  // Splits the batch by shard (Put/Delete route by hash; a DeleteRange
  // spans the partition and is broadcast to every shard) and commits the
  // sub-batches concurrently.
  Status Write(const kv::WriteBatch& batch) override;
  Status Get(std::string_view key, std::string* value) override;
  // Snapshot-aware point lookup: routes to the owning shard with that
  // shard's component of the composite snapshot.
  Status Get(const kv::ReadOptions& opts, std::string_view key,
             std::string* value) override;
  // Fans each key's lookup out to its owning shard via the inner
  // engine's ReadAsync (shard i on queue i), with at most
  // read_queue_depth sub-lookups in flight — reads hitting distinct
  // shards overlap in virtual device time across SSD channels (see
  // kv::KVStore::MultiGet).
  std::vector<Status> MultiGet(std::span<const std::string_view> keys,
                               std::vector<std::string>* values) override;
  // Routes to the owning shard's ReadAsync.
  kv::ReadHandle ReadAsync(std::string_view key, std::string* value) override;
  std::unique_ptr<kv::KVStore::Iterator> NewIterator() override;
  // With a snapshot: the same k-way merge over per-shard SNAPSHOT
  // iterators (opts.readahead forwards to each shard's cursor), immune
  // to concurrent writes. Without a snapshot, falls back to the live
  // merged cursor.
  std::unique_ptr<kv::KVStore::Iterator> NewIterator(
      const kv::ReadOptions& opts) override;
  // Composes one inner snapshot per shard. Each component is a
  // consistent view of its shard, but the composite is NOT cross-shard
  // atomic: a concurrent multi-shard Write can land in a later shard's
  // component and miss an earlier one — exactly mirroring Write's
  // per-shard atomicity contract.
  StatusOr<std::shared_ptr<const kv::Snapshot>> GetSnapshot() override;
  Status Flush() override;
  Status SettleBackgroundWork() override;
  Status Close() override;
  // Per-shard mutexes make concurrent Write/Get safe.
  bool SupportsConcurrentWriters() const override { return true; }
  kv::KvStoreStats GetStats() const override;
  std::string Name() const override;
  uint64_t DiskBytesUsed() const override;

  // Introspection for tests and benches.
  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Which shard a key routes to (stable across runs: CRC32C of the key).
  int ShardOf(std::string_view key) const;
  // Per-shard stats, for load-balance diagnostics.
  kv::KvStoreStats ShardStats(int shard) const;

 private:
  class MergingIterator;
  class SnapshotImpl;
  struct WriteBarrier;
  struct WriteTask;
  struct Shard;

  ShardedStore(ShardedOptions options, std::string root);

  // Commits one sub-batch on the calling thread.
  Status CommitToShard(Shard* shard, const kv::WriteBatch& sub);
  // Async-dispatch path (queue_depth > 1 + clock): commits the touched
  // sub-batches via WriteAsync with at most queue_depth in flight, so
  // their device time overlaps across channels.
  Status WriteAsyncDispatch(const std::vector<kv::WriteBatch>& subs,
                            const std::vector<size_t>& touched);
  void WorkerLoop(Shard* shard);
  void StopWorkers();

  ShardedOptions options_;
  std::string root_;
  sim::SimClock* clock_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  // De-synchronizes concurrent Writes' shard-commit order (see Write).
  std::atomic<uint32_t> write_rotation_{0};
  // Orders composite snapshots (kv::Snapshot::sequence is per-store
  // monotonic; the per-shard components each carry their own engine
  // sequence).
  std::atomic<uint64_t> snapshot_seq_{0};
  bool closed_ = false;
};

// Registers the "sharded" engine factory with kv::EngineRegistry.
// Recognized params mirror ShardedOptions field names ("shards",
// "inner_engine", "parallel_write"); all other params pass through to the
// inner engine, so one map configures the whole stack.
void RegisterShardedEngine();

// Encodes the ShardedOptions fields into an EngineOptions param map (the
// inverse of what the factory parses). Merge the inner engine's own
// EncodeEngineParams output into the same map to configure the shards.
std::map<std::string, std::string> EncodeEngineParams(
    const ShardedOptions& o);

}  // namespace ptsb::sharded

#endif  // PTSB_SHARDED_SHARDED_STORE_H_
