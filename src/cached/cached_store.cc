#include "cached/cached_store.h"

#include <algorithm>
#include <utility>

#include "alog/segment.h"
#include "fs/file.h"
#include "kv/registry.h"
#include "util/human.h"
#include "util/logging.h"

namespace ptsb::cached {

CachedStore::CachedStore(const CachedOptions& options, fs::SimpleFs* fs,
                         std::string root,
                         std::unique_ptr<kv::KVStore> inner,
                         std::unique_ptr<ReadCache> cache)
    : options_(options), fs_(fs), root_(std::move(root)),
      inner_(std::move(inner)), cache_(std::move(cache)),
      write_group_(options.max_write_group_bytes) {}

CachedStore::~CachedStore() {
  if (!closed_) {
    // Best-effort shutdown; errors are not recoverable in a destructor.
    Close().ok();
  }
}

CachedOptions CachedOptionsFromEngineOptions(const kv::EngineOptions& eo) {
  CachedOptions o;
  if (const auto it = eo.params.find("inner_engine");
      it != eo.params.end()) {
    o.inner_engine = it->second;
  }
  o.write_buffer_bytes =
      kv::ParamUint64(eo, "write_buffer_bytes", o.write_buffer_bytes);
  o.read_cache_bytes =
      kv::ParamUint64(eo, "read_cache_bytes", o.read_cache_bytes);
  if (const auto it = eo.params.find("read_cache_policy");
      it != eo.params.end()) {
    o.read_cache_policy = it->second;
  }
  o.flush_watermark =
      kv::ParamDouble(eo, "flush_watermark", o.flush_watermark);
  o.max_write_group_bytes = kv::ParamUint64(eo, "max_write_group_bytes",
                                            o.max_write_group_bytes);
  o.log_sync_every_bytes =
      kv::ParamUint64(eo, "log_sync_every_bytes", o.log_sync_every_bytes);
  o.background_io = kv::ParamBool(eo, "background_io", o.background_io);
  o.clock = eo.clock;
  o.io_queue = eo.io_queue;
  o.background_queue = eo.background_queue;
  return o;
}

StatusOr<std::unique_ptr<CachedStore>> CachedStore::Open(
    const kv::EngineOptions& eo) {
  CachedOptions o = CachedOptionsFromEngineOptions(eo);
  if (o.write_buffer_bytes == 0) {
    return Status::InvalidArgument("cached: write_buffer_bytes must be > 0");
  }
  if (!(o.flush_watermark > 0.0) || o.flush_watermark > 1.0) {
    return Status::InvalidArgument(
        "cached: flush_watermark must be in (0, 1]");
  }
  if (o.inner_engine == "cached") {
    return Status::InvalidArgument(
        "cached: inner_engine cannot be \"cached\" (no nesting)");
  }
  if (!kv::EngineRegistry::Global().Contains(o.inner_engine)) {
    return Status::InvalidArgument("cached: unknown inner_engine \"" +
                                   o.inner_engine + "\"");
  }
  // Validate the policy name even when the cache is disabled, so a typo
  // fails loudly instead of silently benchmarking nothing.
  PTSB_ASSIGN_OR_RETURN(
      std::unique_ptr<ReadCache> cache,
      ReadCache::Create(o.read_cache_policy,
                        std::max<uint64_t>(o.read_cache_bytes, 1)));
  if (o.read_cache_bytes == 0) cache.reset();

  const std::string root = eo.root.empty() ? "cached" : eo.root;

  // The inner engine choice is part of the on-disk layout: the wrapper's
  // data lives inside a store of that format under <root>/inner, so
  // reopening with a different inner engine would read another engine's
  // files. Persist it in a META file on first open and refuse a mismatch.
  const std::string meta_name = root + "/META";
  const std::string expected = "inner_engine=" + o.inner_engine + "\n";
  if (eo.fs->Exists(meta_name)) {
    PTSB_ASSIGN_OR_RETURN(fs::File * meta, eo.fs->Open(meta_name));
    std::string contents(meta->size(), '\0');
    PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                          meta->ReadAt(0, contents.size(), contents.data()));
    contents.resize(got);
    if (contents != expected) {
      return Status::InvalidArgument(
          "cached: store at \"" + root + "\" was created with different "
          "layout parameters (on disk: \"" + contents + "\", requested: \"" +
          expected + "\"); the inner engine is part of the on-disk layout "
          "and must match");
    }
  } else {
    PTSB_ASSIGN_OR_RETURN(fs::File * meta, eo.fs->Create(meta_name));
    PTSB_RETURN_IF_ERROR(meta->Append(expected));
    PTSB_RETURN_IF_ERROR(meta->Sync());
  }

  // Everything except the wrapper's own knobs configures the inner
  // engine; background_io intentionally reaches both layers.
  kv::EngineOptions inner = eo;
  inner.engine = o.inner_engine;
  inner.root = root + "/inner";
  inner.params.erase("inner_engine");
  inner.params.erase("write_buffer_bytes");
  inner.params.erase("read_cache_bytes");
  inner.params.erase("read_cache_policy");
  inner.params.erase("flush_watermark");
  inner.params.erase("log_sync_every_bytes");
  auto opened = kv::EngineRegistry::Global().Open(inner);
  if (!opened.ok()) return opened.status();

  auto store = std::unique_ptr<CachedStore>(new CachedStore(
      o, eo.fs, root, *std::move(opened), std::move(cache)));
  PTSB_RETURN_IF_ERROR(store->ReplayAndCompactLog());
  return store;
}

std::string CachedStore::LogName(uint64_t id) const {
  return StrPrintf("%s/%06llu.wlog", root_.c_str(),
                   static_cast<unsigned long long>(id));
}

std::vector<std::pair<uint64_t, std::string>>
CachedStore::ListLogSegments() const {
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : fs_->List(root_ + "/")) {
    if (!name.ends_with(".wlog")) continue;
    std::string_view base(name);
    base.remove_prefix(root_.size() + 1);
    base.remove_suffix(5);
    if (base.empty() || base.size() > 19) continue;  // not a sane id
    uint64_t id = 0;
    bool numeric = true;
    for (const char c : base) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!numeric) continue;  // inner-engine files etc.
    segments.emplace_back(id, name);
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Status CachedStore::ReplayAndCompactLog() {
  const auto segments = ListLogSegments();
  if (segments.empty()) return Status::OK();
  replaying_ = true;
  for (const auto& [id, name] : segments) {
    PTSB_ASSIGN_OR_RETURN(fs::File * file, fs_->Open(name));
    PTSB_RETURN_IF_ERROR(alog::ReplaySegment(
        file, [this](const alog::ReplayedEntry& e) {
          ApplyEntry(e.kind, e.key, e.value);
        }));
  }
  replaying_ = false;
  next_log_id_ = segments.back().first + 1;
  // Rewrite the surviving buffer as one synced snapshot segment, then
  // drop the replayed ones: recovery cost stays proportional to the
  // buffer, not to history.
  if (!buffer_.empty() || !ranges_.empty()) {
    PTSB_RETURN_IF_ERROR(WriteSnapshotSegment());
  }
  for (const auto& [id, name] : segments) {
    PTSB_RETURN_IF_ERROR(fs_->Delete(name));
  }
  return Status::OK();
}

void CachedStore::ApplyEntry(kv::WriteBatch::EntryKind kind,
                             std::string_view key, std::string_view value) {
  if (kind == kv::WriteBatch::EntryKind::kDeleteRange) {
    ApplyRangeDelete(key, value);
    return;
  }
  const bool is_delete = kind == kv::WriteBatch::EntryKind::kDelete;
  // The buffer now owns the freshest version of the key; a stale cached
  // value must never outlive it (it would resurface after the flush).
  if (cache_ != nullptr) cache_->Erase(key);
  const auto it = buffer_.find(key);
  if (it == buffer_.end()) {
    BufferEntry entry;
    entry.tombstone = is_delete;
    if (!is_delete) entry.value.assign(value.data(), value.size());
    buffer_bytes_ += key.size() + entry.value.size();
    buffer_.emplace(std::string(key), std::move(entry));
    return;
  }
  const uint64_t old_charge = EntryCharge(it->first, it->second);
  buffer_bytes_ -= old_charge;
  it->second.absorbed_bytes += old_charge;
  if (!replaying_) stats_.buffer_coalesced_bytes += old_charge;
  it->second.tombstone = is_delete;
  if (is_delete) {
    it->second.value.clear();
  } else {
    it->second.value.assign(value.data(), value.size());
  }
  buffer_bytes_ += EntryCharge(it->first, it->second);
}

void CachedStore::ApplyRangeDelete(std::string_view begin,
                                   std::string_view end) {
  // Covered cache entries must go NOW: once the range flushes to the
  // inner engine it leaves the wrapper's visibility checks, and a stale
  // cached value would resurface. Nothing covered can re-enter the cache
  // while the range is buffered (covered lookups short-circuit before
  // the inner engine, and the merging iterator hides covered inner keys).
  if (cache_ != nullptr) cache_->EraseRange(begin, end);
  for (auto it = buffer_.lower_bound(begin);
       it != buffer_.end() && it->first < end;) {
    const uint64_t charge = EntryCharge(it->first, it->second);
    buffer_bytes_ -= charge;
    if (!replaying_) stats_.buffer_coalesced_bytes += charge;
    it = buffer_.erase(it);
  }
  ranges_.push_back(BufferedRange{std::string(begin), std::string(end)});
  const uint64_t range_charge = begin.size() + end.size();
  ranges_bytes_ += range_charge;
  buffer_bytes_ += range_charge;
}

void CachedStore::ApplyToBuffer(const kv::WriteBatch& batch) {
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    ApplyEntry(e.kind, e.key, e.value);
  }
}

bool CachedStore::Covers(const std::vector<BufferedRange>& ranges,
                         std::string_view key) {
  for (const BufferedRange& r : ranges) {
    if (key >= r.begin && key < r.end) return true;
  }
  return false;
}

Status CachedStore::AppendLogRecord(const std::string& record) {
  if (log_ == nullptr) {
    log_id_ = next_log_id_++;
    PTSB_ASSIGN_OR_RETURN(fs::File * file, fs_->Create(LogName(log_id_)));
    log_ = file;
    unsynced_log_bytes_ = 0;
  }
  PTSB_RETURN_IF_ERROR(log_->Append(record));
  stats_.wal_bytes_written += record.size();
  if (options_.log_sync_every_bytes > 0) {
    unsynced_log_bytes_ += record.size();
    if (unsynced_log_bytes_ >= options_.log_sync_every_bytes) {
      unsynced_log_bytes_ = 0;
      PTSB_RETURN_IF_ERROR(log_->Sync());
    }
  }
  return Status::OK();
}

Status CachedStore::WriteSnapshotSegment() {
  log_id_ = next_log_id_++;
  PTSB_ASSIGN_OR_RETURN(fs::File * file, fs_->Create(LogName(log_id_)));
  log_ = file;
  unsynced_log_bytes_ = 0;
  if (buffer_.empty() && ranges_.empty()) return Status::OK();
  kv::WriteBatch snapshot;
  // Ranges first: every buffered entry postdates every buffered range
  // (see BufferedRange), so replaying "ranges, then entries" rebuilds
  // exactly this state.
  for (const BufferedRange& r : ranges_) snapshot.DeleteRange(r.begin, r.end);
  for (const auto& [key, entry] : buffer_) {
    if (entry.tombstone) {
      snapshot.Delete(key);
    } else {
      snapshot.Put(key, entry.value);
    }
  }
  const std::string record = alog::EncodeRecord(snapshot, nullptr);
  PTSB_RETURN_IF_ERROR(log_->Append(record));
  stats_.checkpoint_bytes_written += record.size();
  return log_->Sync();
}

Status CachedStore::Write(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  if (batch.empty()) return Status::OK();
  return write_group_.Commit(
      batch, [this](const kv::WriteBatch& merged, size_t n_user_batches) {
        return WriteInternal(merged, n_user_batches);
      });
}

Status CachedStore::WriteInternal(const kv::WriteBatch& batch,
                                  size_t n_user_batches) {
  write_epoch_++;
  stats_.user_batches += n_user_batches;
  stats_.write_groups++;
  stats_.write_group_batches += n_user_batches;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        stats_.user_puts++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size();
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
    }
  }
  const int64_t t0 = NowNs();
  const std::string record = alog::EncodeRecord(batch, nullptr);
  const Status logged = AppendLogRecord(record);
  stats_.time_wal_ns += NowNs() - t0;
  PTSB_RETURN_IF_ERROR(logged);
  stats_.wal_records++;
  ApplyToBuffer(batch);
  PTSB_RETURN_IF_ERROR(MaybeFlush());
  return MaybeCheckpointLog();
}

kv::WriteHandle CachedStore::WriteAsync(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  return kv::AsyncCommit(options_.clock, options_.io_queue,
                         [this, &batch] { return Write(batch); });
}

Status CachedStore::MaybeFlush() {
  if (buffer_bytes_ < options_.write_buffer_bytes) return Status::OK();
  const auto target = static_cast<uint64_t>(
      options_.flush_watermark *
      static_cast<double>(options_.write_buffer_bytes));
  if (options_.background_io && options_.clock != nullptr) {
    const kv::BackgroundResult r = kv::RunBackgroundWork(
        options_.clock, options_.background_queue, &background_horizon_ns_,
        [this, target] { return FlushBuffer(target); });
    stats_.time_background_ns += r.busy_ns;
    return r.status;
  }
  // Inline flush: the commit that crossed the capacity line absorbs the
  // whole drain — the wrapper-level write stall.
  stats_.stall_count++;
  const int64_t t0 = NowNs();
  const Status s = FlushBuffer(target);
  stats_.time_flush_ns += NowNs() - t0;
  return s;
}

Status CachedStore::FlushBuffer(uint64_t target_bytes) {
  if (buffer_bytes_ <= target_bytes) return Status::OK();
  if (buffer_.empty() && ranges_.empty()) return Status::OK();

  // Pick victims largest-coalesced-first: the entries that already
  // absorbed the most rewrite traffic have the highest payoff per inner
  // write, and what stays behind is the set still most likely to keep
  // coalescing.
  struct Victim {
    uint64_t priority;
    uint64_t charge;
    std::string_view key;  // into buffer_ (stable until erased below)
  };
  std::vector<Victim> order;
  order.reserve(buffer_.size());
  for (const auto& [key, entry] : buffer_) {
    const uint64_t charge = EntryCharge(key, entry);
    order.push_back(Victim{entry.absorbed_bytes + charge, charge, key});
  }
  std::sort(order.begin(), order.end(), [](const Victim& a, const Victim& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.key < b.key;
  });
  // Buffered ranges always flush, all of them, so start the projection
  // with their charge already gone.
  uint64_t projected = buffer_bytes_ - ranges_bytes_;
  std::vector<std::string_view> victims;
  for (const Victim& v : order) {
    if (projected <= target_bytes) break;
    victims.push_back(v.key);
    projected -= v.charge;
  }

  // One inner group commit in key order (flash-friendly: the inner
  // engine sees a single large sorted batch instead of the user's
  // arrival order). Ranges lead the batch: every buffered entry
  // postdates every buffered range, so "all ranges, then any subset of
  // entries" preserves the user's order no matter which victims win —
  // and an entry flushed later can never be swallowed by a range already
  // pushed down.
  std::sort(victims.begin(), victims.end());
  kv::WriteBatch batch;
  for (const BufferedRange& r : ranges_) batch.DeleteRange(r.begin, r.end);
  for (const std::string_view key : victims) {
    const BufferEntry& entry = buffer_.find(key)->second;
    if (entry.tombstone) {
      batch.Delete(key);
    } else {
      batch.Put(key, entry.value);
    }
  }
  // On failure the buffer (and the durability log) still holds
  // everything; nothing is lost, the error just surfaces.
  PTSB_RETURN_IF_ERROR(inner_->Write(batch));
  stats_.flush_batches++;
  buffer_bytes_ -= ranges_bytes_;
  ranges_bytes_ = 0;
  ranges_.clear();
  for (const std::string_view key : victims) {
    const auto it = buffer_.find(key);
    buffer_bytes_ -= EntryCharge(it->first, it->second);
    buffer_.erase(it);
  }
  return Status::OK();
}

Status CachedStore::MaybeCheckpointLog() {
  if (log_ == nullptr) return Status::OK();
  const uint64_t limit = std::max<uint64_t>(8 * options_.write_buffer_bytes,
                                            uint64_t{128} << 10);
  if (log_->size() <= limit) return Status::OK();
  const int64_t t0 = NowNs();
  // Records about to be dropped from the log cover entries already
  // flushed to the inner engine; make those durable below before the log
  // stops replaying them.
  Status s = inner_->Flush();
  if (s.ok()) s = WriteSnapshotSegment();
  if (s.ok()) s = DeleteLogSegments(log_id_);
  stats_.time_checkpoint_ns += NowNs() - t0;
  return s;
}

Status CachedStore::DeleteLogSegments(uint64_t keep_from_id) {
  for (const auto& [id, name] : ListLogSegments()) {
    if (id >= keep_from_id) continue;
    PTSB_RETURN_IF_ERROR(fs_->Delete(name));
  }
  return Status::OK();
}

void CachedStore::JoinBackgroundWork() {
  if (options_.clock != nullptr) {
    options_.clock->AdvanceTo(background_horizon_ns_);
  }
}

Status CachedStore::Get(std::string_view key, std::string* value) {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive([&] { return GetInternal(key, value); });
}

Status CachedStore::GetInternal(std::string_view key, std::string* value) {
  stats_.user_gets++;
  if (const auto it = buffer_.find(key); it != buffer_.end()) {
    stats_.cache_hits++;
    if (it->second.tombstone) {
      return Status::NotFound("key deleted in write buffer");
    }
    *value = it->second.value;
    stats_.user_bytes_read += value->size();
    return Status::OK();
  }
  // A key inside a buffered range delete is gone, whatever the cache or
  // the inner engine still hold (the range has not flushed down yet).
  if (Covers(ranges_, key)) {
    stats_.cache_hits++;
    return Status::NotFound("key covered by buffered range delete");
  }
  if (cache_ != nullptr && cache_->Get(key, value)) {
    stats_.cache_hits++;
    stats_.user_bytes_read += value->size();
    return Status::OK();
  }
  stats_.cache_misses++;
  const Status s = inner_->Get(key, value);
  if (s.ok()) {
    if (cache_ != nullptr) cache_->Insert(key, *value);
    stats_.user_bytes_read += value->size();
  }
  return s;
}

std::vector<Status> CachedStore::MultiGet(
    std::span<const std::string_view> keys,
    std::vector<std::string>* values) {
  PTSB_CHECK(!closed_);
  if (options_.clock == nullptr) {
    return KVStore::MultiGet(keys, values);  // sequential Gets
  }
  return write_group_.RunExclusive(
      [&] { return MultiGetInternal(keys, values); });
}

std::vector<Status> CachedStore::MultiGetInternal(
    std::span<const std::string_view> keys,
    std::vector<std::string>* values) {
  // Serve buffer/cache hits inline, then forward the misses as ONE inner
  // MultiGet so they inherit the inner engine's read fan-out.
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size(), Status::OK());
  std::vector<size_t> miss_pos;
  std::vector<std::string_view> miss_keys;
  for (size_t i = 0; i < keys.size(); i++) {
    stats_.user_gets++;
    if (const auto it = buffer_.find(keys[i]); it != buffer_.end()) {
      stats_.cache_hits++;
      if (it->second.tombstone) {
        statuses[i] = Status::NotFound("key deleted in write buffer");
      } else {
        (*values)[i] = it->second.value;
        stats_.user_bytes_read += it->second.value.size();
      }
      continue;
    }
    if (Covers(ranges_, keys[i])) {
      stats_.cache_hits++;
      statuses[i] = Status::NotFound("key covered by buffered range delete");
      continue;
    }
    if (cache_ != nullptr && cache_->Get(keys[i], &(*values)[i])) {
      stats_.cache_hits++;
      stats_.user_bytes_read += (*values)[i].size();
      continue;
    }
    stats_.cache_misses++;
    miss_pos.push_back(i);
    miss_keys.push_back(keys[i]);
  }
  if (!miss_keys.empty()) {
    std::vector<std::string> miss_values;
    std::vector<Status> miss_statuses =
        inner_->MultiGet(miss_keys, &miss_values);
    for (size_t j = 0; j < miss_pos.size(); j++) {
      statuses[miss_pos[j]] = miss_statuses[j];
      if (!miss_statuses[j].ok()) continue;
      (*values)[miss_pos[j]] = std::move(miss_values[j]);
      stats_.user_bytes_read += (*values)[miss_pos[j]].size();
      if (cache_ != nullptr) {
        cache_->Insert(keys[miss_pos[j]], (*values)[miss_pos[j]]);
      }
    }
  }
  return statuses;
}

kv::ReadHandle CachedStore::ReadAsync(std::string_view key,
                                      std::string* value) {
  PTSB_CHECK(!closed_);
  return kv::AsyncRead(options_.clock, options_.io_queue,
                       [this, key, value] { return Get(key, value); });
}

// Two-way merge of the write buffer over the inner engine's cursor. The
// buffer wins ties (it holds the newer version) and its tombstones hide
// inner keys. Yielded pairs feed the read cache — deliberately including
// scan traffic, which is exactly what the 2Q policy must shrug off.
class CachedStore::MergeIterator : public kv::KVStore::Iterator {
 public:
  MergeIterator(CachedStore* store,
                std::unique_ptr<kv::KVStore::Iterator> inner)
      : store_(store), inner_(std::move(inner)),
        epoch_(store->write_epoch_) {}

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    CheckEpoch();
    buf_it_ = store_->buffer_.lower_bound(target);
    inner_->Seek(target);
    FindNext();
  }

  bool Valid() const override {
    return source_ != Source::kNone && status_.ok();
  }

  void Next() override {
    CheckEpoch();
    if (source_ == Source::kNone) return;
    if (source_ == Source::kBuffer) {
      ++buf_it_;
    } else {
      inner_->Next();
    }
    FindNext();
  }

  std::string_view key() const override {
    return source_ == Source::kBuffer ? std::string_view(buf_it_->first)
                                      : inner_->key();
  }
  std::string_view value() const override {
    return source_ == Source::kBuffer
               ? std::string_view(buf_it_->second.value)
               : inner_->value();
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    return inner_->status();
  }

 private:
  enum class Source { kNone, kBuffer, kInner };

  void CheckEpoch() const {
    PTSB_DCHECK(epoch_ == store_->write_epoch_)
        << "cached iterator used after a write to the store";
  }

  void FindNext() {
    source_ = Source::kNone;
    for (;;) {
      if (!inner_->status().ok()) {
        status_ = inner_->status();
        return;
      }
      const bool have_buf = buf_it_ != store_->buffer_.end();
      const bool have_inner = inner_->Valid();
      if (!have_buf && !have_inner) return;  // clean end
      // Inner keys swallowed by a buffered range delete are invisible; a
      // buffered entry for the same key would win anyway (it postdates
      // the range), so skipping unconditionally is safe.
      if (have_inner && Covers(store_->ranges_, inner_->key())) {
        inner_->Next();
        continue;
      }
      if (have_buf && (!have_inner || buf_it_->first <= inner_->key())) {
        // The buffer shadows an equal inner key: step past both versions
        // together.
        if (have_inner && inner_->key() == buf_it_->first) inner_->Next();
        if (buf_it_->second.tombstone) {
          ++buf_it_;
          continue;
        }
        source_ = Source::kBuffer;
        Observe(buf_it_->first, buf_it_->second.value);
        return;
      }
      source_ = Source::kInner;
      Observe(inner_->key(), inner_->value());
      return;
    }
  }

  void Observe(std::string_view key, std::string_view value) {
    store_->stats_.user_bytes_read += key.size() + value.size();
    if (store_->cache_ != nullptr) store_->cache_->Insert(key, value);
  }

  CachedStore* const store_;
  std::unique_ptr<kv::KVStore::Iterator> inner_;
  const uint64_t epoch_;
  std::map<std::string, BufferEntry, std::less<>>::const_iterator buf_it_;
  Source source_ = Source::kNone;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> CachedStore::NewIterator() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<MergeIterator>(this, inner_->NewIterator());
      });
}

// The wrapper's snapshot is a composite: a full copy of the write buffer
// and its buffered ranges (they are memory-resident and small by
// construction — write_buffer_bytes caps them) plus the inner engine's
// own snapshot, taken at the same instant under the commit-exclusion
// lock. Snapshot reads check the copies first, then read the inner
// engine AT the inner snapshot; the live read cache is never consulted
// (it tracks the live state, not this one).
class CachedStore::SnapshotImpl : public kv::Snapshot {
 public:
  ~SnapshotImpl() override { store_->ReleaseSnapshot(*this); }
  uint64_t sequence() const override { return seq_; }

  CachedStore* store_ = nullptr;
  uint64_t seq_ = 0;
  std::map<std::string, BufferEntry, std::less<>> buffer_;
  uint64_t buffer_bytes_ = 0;  // charge held in snapshot_pinned_bytes
  std::vector<BufferedRange> ranges_;
  std::shared_ptr<const kv::Snapshot> inner_;
};

StatusOr<std::shared_ptr<const kv::Snapshot>> CachedStore::GetSnapshot() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> StatusOr<std::shared_ptr<const kv::Snapshot>> {
        PTSB_ASSIGN_OR_RETURN(std::shared_ptr<const kv::Snapshot> inner_snap,
                              inner_->GetSnapshot());
        auto snap = std::make_shared<SnapshotImpl>();
        snap->store_ = this;
        snap->seq_ = write_epoch_;
        snap->buffer_ = buffer_;
        snap->buffer_bytes_ = buffer_bytes_;
        snap->ranges_ = ranges_;
        snap->inner_ = std::move(inner_snap);
        snapshot_pinned_buffer_bytes_ += snap->buffer_bytes_;
        stats_.snapshots_created++;
        stats_.snapshots_open++;
        return std::shared_ptr<const kv::Snapshot>(std::move(snap));
      });
}

void CachedStore::ReleaseSnapshot(const SnapshotImpl& snap) {
  write_group_.RunExclusive([&] {
    snapshot_pinned_buffer_bytes_ -= snap.buffer_bytes_;
    stats_.snapshots_open--;
  });
}

Status CachedStore::SnapshotGetInternal(const SnapshotImpl& snap,
                                        std::string_view key,
                                        std::string* value) {
  stats_.user_gets++;
  if (const auto it = snap.buffer_.find(key); it != snap.buffer_.end()) {
    stats_.cache_hits++;
    if (it->second.tombstone) {
      return Status::NotFound("key deleted in snapshot's buffer");
    }
    *value = it->second.value;
    stats_.user_bytes_read += value->size();
    return Status::OK();
  }
  if (Covers(snap.ranges_, key)) {
    stats_.cache_hits++;
    return Status::NotFound("key covered by snapshot's range delete");
  }
  stats_.cache_misses++;
  kv::ReadOptions inner_opts;
  inner_opts.snapshot = snap.inner_.get();
  const Status s = inner_->Get(inner_opts, key, value);
  // Historical values never enter the read cache.
  if (s.ok()) stats_.user_bytes_read += value->size();
  return s;
}

Status CachedStore::Get(const kv::ReadOptions& opts, std::string_view key,
                        std::string* value) {
  if (opts.snapshot == nullptr) return Get(key, value);
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this);
  return write_group_.RunExclusive(
      [&] { return SnapshotGetInternal(*snap, key, value); });
}

// Merge of the snapshot's frozen buffer copy over the inner engine's
// snapshot cursor. Same shape as MergeIterator, minus everything live:
// no write-epoch check (the sources cannot move under it), no read-cache
// feeding (the values are historical), and movements serialize against
// concurrent commits via the wrapper's commit-exclusion lock — the
// wrapper's flushes land in the inner engine's LIVE state, which the
// inner snapshot cursor is immune to by its own contract.
class CachedStore::SnapIterator : public kv::KVStore::Iterator {
 public:
  SnapIterator(CachedStore* store, const SnapshotImpl* snap,
               std::unique_ptr<kv::KVStore::Iterator> inner)
      : store_(store), snap_(snap), inner_(std::move(inner)) {}

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    store_->write_group_.RunExclusive([&] {
      buf_it_ = snap_->buffer_.lower_bound(target);
      inner_->Seek(target);
      FindNext();
    });
  }

  bool Valid() const override {
    return source_ != Source::kNone && status_.ok();
  }

  void Next() override {
    store_->write_group_.RunExclusive([&] {
      if (source_ == Source::kNone) return;
      if (source_ == Source::kBuffer) {
        ++buf_it_;
      } else {
        inner_->Next();
      }
      FindNext();
    });
  }

  std::string_view key() const override {
    return source_ == Source::kBuffer ? std::string_view(buf_it_->first)
                                      : inner_->key();
  }
  std::string_view value() const override {
    return source_ == Source::kBuffer
               ? std::string_view(buf_it_->second.value)
               : inner_->value();
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    return inner_->status();
  }

 private:
  enum class Source { kNone, kBuffer, kInner };

  void FindNext() {
    source_ = Source::kNone;
    for (;;) {
      if (!inner_->status().ok()) {
        status_ = inner_->status();
        return;
      }
      const bool have_buf = buf_it_ != snap_->buffer_.end();
      const bool have_inner = inner_->Valid();
      if (!have_buf && !have_inner) return;  // clean end
      if (have_inner && Covers(snap_->ranges_, inner_->key())) {
        inner_->Next();
        continue;
      }
      if (have_buf && (!have_inner || buf_it_->first <= inner_->key())) {
        if (have_inner && inner_->key() == buf_it_->first) inner_->Next();
        if (buf_it_->second.tombstone) {
          ++buf_it_;
          continue;
        }
        source_ = Source::kBuffer;
        store_->stats_.user_bytes_read +=
            buf_it_->first.size() + buf_it_->second.value.size();
        return;
      }
      source_ = Source::kInner;
      store_->stats_.user_bytes_read +=
          inner_->key().size() + inner_->value().size();
      return;
    }
  }

  CachedStore* const store_;
  const SnapshotImpl* const snap_;
  std::unique_ptr<kv::KVStore::Iterator> inner_;
  std::map<std::string, BufferEntry, std::less<>>::const_iterator buf_it_;
  Source source_ = Source::kNone;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> CachedStore::NewIterator(
    const kv::ReadOptions& opts) {
  if (opts.snapshot == nullptr) return NewIterator();
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this);
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        kv::ReadOptions inner_opts;
        inner_opts.snapshot = snap->inner_.get();
        inner_opts.readahead = opts.readahead;
        return std::make_unique<SnapIterator>(this, snap,
                                              inner_->NewIterator(inner_opts));
      });
}

Status CachedStore::Flush() {
  PTSB_CHECK(!closed_);
  JoinBackgroundWork();
  const int64_t t0 = NowNs();
  const Status drained = FlushBuffer(0);
  stats_.time_flush_ns += NowNs() - t0;
  PTSB_RETURN_IF_ERROR(drained);
  PTSB_RETURN_IF_ERROR(inner_->Flush());
  // Everything the log guarded is durable in the inner engine now; the
  // log is logically empty and its segments can go. The next Write
  // starts a fresh one.
  log_ = nullptr;
  unsynced_log_bytes_ = 0;
  return DeleteLogSegments(next_log_id_);
}

Status CachedStore::SettleBackgroundWork() {
  PTSB_CHECK(!closed_);
  // Joins pending background flush time; the buffer itself stays resident
  // (it is steady-state, not debt — draining it here would make settling
  // non-idempotent).
  JoinBackgroundWork();
  return inner_->SettleBackgroundWork();
}

Status CachedStore::Close() {
  if (closed_) return Status::OK();
  JoinBackgroundWork();
  Status persist = FlushBuffer(0);
  if (persist.ok()) persist = inner_->Flush();
  if (persist.ok()) {
    // Clean shutdown: buffer durable below, log segments redundant.
    log_ = nullptr;
    unsynced_log_bytes_ = 0;
    persist = DeleteLogSegments(next_log_id_);
  }
  const Status closed = inner_->Close();
  closed_ = true;
  if (persist.IsNoSpace()) return persist;
  if (closed.IsNoSpace()) return closed;
  if (!persist.ok()) return persist;
  return closed;
}

kv::KvStoreStats CachedStore::GetStats() const {
  kv::KvStoreStats s = write_group_.RunExclusive([&] {
    kv::KvStoreStats out = stats_;
    // This layer's pinned bytes are the buffer copies snapshots hold in
    // memory; the inner engine adds its pinned DISK bytes below.
    out.snapshot_pinned_bytes = snapshot_pinned_buffer_bytes_;
    return out;
  });
  const kv::KvStoreStats in = inner_->GetStats();
  // Inner snapshots are the wrapper's own composite snapshots, so the
  // created/open counters stay the wrapper's; only the pinned-bytes gauge
  // aggregates across layers.
  s.snapshot_pinned_bytes += in.snapshot_pinned_bytes;
  // The inner engine's "user" traffic is this wrapper's flush traffic:
  // fold its whole write path into the maintenance columns and keep only
  // the wrapper's own user_* counters, so user_bytes_written still means
  // what the application wrote and the write-amplification ratios stay
  // honest.
  s.flush_bytes_written += in.wal_bytes_written + in.flush_bytes_written;
  s.compaction_bytes_written += in.compaction_bytes_written;
  s.compaction_bytes_read += in.compaction_bytes_read;
  s.page_write_bytes += in.page_write_bytes;
  s.page_read_bytes += in.page_read_bytes;
  s.checkpoint_bytes_written += in.checkpoint_bytes_written;
  s.gc_bytes_written += in.gc_bytes_written;
  s.gc_bytes_read += in.gc_bytes_read;
  // Bloom probes only happen in the inner LSM; the wrapper has none of
  // its own, so the inner counters pass straight through.
  s.bloom_negatives += in.bloom_negatives;
  s.bloom_false_positives += in.bloom_false_positives;
  s.stall_count += in.stall_count;
  s.time_flush_ns += in.time_wal_ns + in.time_flush_ns;
  s.time_compaction_ns += in.time_compaction_ns;
  s.time_read_path_ns += in.time_read_path_ns;
  s.time_writeback_ns += in.time_writeback_ns;
  s.time_checkpoint_ns += in.time_checkpoint_ns;
  s.time_background_ns += in.time_background_ns;
  return s;
}

std::string CachedStore::Name() const {
  return StrPrintf("cached(%s over %s)",
                   cache_ != nullptr ? cache_->PolicyName().c_str() : "nocache",
                   options_.inner_engine.c_str());
}

uint64_t CachedStore::DiskBytesUsed() const {
  uint64_t total = inner_->DiskBytesUsed();
  for (const auto& [id, name] : ListLogSegments()) {
    const auto size = fs_->FileSize(name);
    if (size.ok()) total += *size;
  }
  return total;
}

void RegisterCachedEngine() {
  kv::EngineRegistry::Global().Register(
      "cached",
      [](const kv::EngineOptions& eo)
          -> StatusOr<std::unique_ptr<kv::KVStore>> {
        auto opened = CachedStore::Open(eo);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<kv::KVStore>(std::move(*opened));
      });
}

std::map<std::string, std::string> EncodeEngineParams(
    const CachedOptions& o) {
  std::map<std::string, std::string> p;
  p["inner_engine"] = o.inner_engine;
  p["write_buffer_bytes"] = std::to_string(o.write_buffer_bytes);
  p["read_cache_bytes"] = std::to_string(o.read_cache_bytes);
  p["read_cache_policy"] = o.read_cache_policy;
  p["flush_watermark"] = StrPrintf("%g", o.flush_watermark);
  p["max_write_group_bytes"] = std::to_string(o.max_write_group_bytes);
  p["log_sync_every_bytes"] = std::to_string(o.log_sync_every_bytes);
  p["background_io"] = o.background_io ? "1" : "0";
  return p;
}

}  // namespace ptsb::cached
