#include "cached/read_cache.h"

#include <list>
#include <map>
#include <utility>

namespace ptsb::cached {
namespace {

uint64_t Charge(std::string_view key, std::string_view value) {
  return key.size() + value.size();
}

// Classic LRU: one recency list (front = MRU), evict from the tail.
class LruCache : public ReadCache {
 public:
  explicit LruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool Get(std::string_view key, std::string* value) override {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    entries_.splice(entries_.begin(), entries_, it->second);
    *value = it->second->second;
    return true;
  }

  void Insert(std::string_view key, std::string_view value) override {
    if (Charge(key, value) > capacity_) {
      Erase(key);
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ += value.size() - it->second->second.size();
      it->second->second.assign(value);
      entries_.splice(entries_.begin(), entries_, it->second);
    } else {
      entries_.emplace_front(std::string(key), std::string(value));
      index_.emplace(entries_.front().first, entries_.begin());
      bytes_ += Charge(key, value);
    }
    while (bytes_ > capacity_ && !entries_.empty()) {
      const auto& victim = entries_.back();
      bytes_ -= Charge(victim.first, victim.second);
      index_.erase(victim.first);
      entries_.pop_back();
    }
  }

  void Erase(std::string_view key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    bytes_ -= Charge(it->second->first, it->second->second);
    entries_.erase(it->second);
    index_.erase(it);
  }

  void EraseRange(std::string_view begin, std::string_view end) override {
    for (auto it = index_.lower_bound(begin);
         it != index_.end() && it->first < end;) {
      bytes_ -= Charge(it->second->first, it->second->second);
      entries_.erase(it->second);
      it = index_.erase(it);
    }
  }

  uint64_t SizeBytes() const override { return bytes_; }
  uint64_t EntryCount() const override { return entries_.size(); }
  std::string PolicyName() const override { return "lru"; }

 private:
  using Entry = std::pair<std::string, std::string>;
  const uint64_t capacity_;
  uint64_t bytes_ = 0;
  std::list<Entry> entries_;  // front = MRU
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
};

// Simplified 2Q (Johnson & Shasha, VLDB '94): first-touch entries land in
// a probationary FIFO (a1in). Evicted probationers leave a key-only ghost
// (a1out); a key reinserted while ghosted has proven reuse and enters the
// long-lived LRU (am). A sequential scan touches every key exactly once,
// so it churns only the FIFO and never displaces the am working set.
class TwoQCache : public ReadCache {
 public:
  explicit TwoQCache(uint64_t capacity_bytes)
      : capacity_(capacity_bytes),
        a1in_budget_(std::max<uint64_t>(capacity_bytes / 4, 1)),
        ghost_budget_(std::max<uint64_t>(capacity_bytes / 2, 1)) {}

  bool Get(std::string_view key, std::string* value) override {
    auto am = am_index_.find(key);
    if (am != am_index_.end()) {
      am_.splice(am_.begin(), am_, am->second);
      *value = am->second->second;
      return true;
    }
    auto in = a1in_index_.find(key);
    if (in != a1in_index_.end()) {
      // Probationary hit: serve it but do not promote — only a ghost
      // re-reference (a miss, then reinsert) proves reuse beyond the
      // FIFO's lifetime.
      *value = in->second->second;
      return true;
    }
    return false;  // ghosts hold no value
  }

  void Insert(std::string_view key, std::string_view value) override {
    if (Charge(key, value) > capacity_) {
      Erase(key);
      return;
    }
    auto am = am_index_.find(key);
    if (am != am_index_.end()) {
      resident_bytes_ += value.size() - am->second->second.size();
      am->second->second.assign(value);
      am_.splice(am_.begin(), am_, am->second);
    } else if (auto in = a1in_index_.find(key); in != a1in_index_.end()) {
      resident_bytes_ += value.size() - in->second->second.size();
      in->second->second.assign(value);
    } else if (auto ghost = ghost_index_.find(key);
               ghost != ghost_index_.end()) {
      ghost_bytes_ -= ghost->second->size();
      ghosts_.erase(ghost->second);
      ghost_index_.erase(ghost);
      am_.emplace_front(std::string(key), std::string(value));
      am_index_.emplace(am_.front().first, am_.begin());
      resident_bytes_ += Charge(key, value);
    } else {
      a1in_.emplace_front(std::string(key), std::string(value));
      a1in_index_.emplace(a1in_.front().first, a1in_.begin());
      a1in_bytes_ += Charge(key, value);
      resident_bytes_ += Charge(key, value);
    }
    EvictToFit();
  }

  void Erase(std::string_view key) override {
    if (auto am = am_index_.find(key); am != am_index_.end()) {
      resident_bytes_ -= Charge(am->second->first, am->second->second);
      am_.erase(am->second);
      am_index_.erase(am);
    } else if (auto in = a1in_index_.find(key); in != a1in_index_.end()) {
      const uint64_t charge = Charge(in->second->first, in->second->second);
      resident_bytes_ -= charge;
      a1in_bytes_ -= charge;
      a1in_.erase(in->second);
      a1in_index_.erase(in);
    } else if (auto ghost = ghost_index_.find(key);
               ghost != ghost_index_.end()) {
      ghost_bytes_ -= ghost->second->size();
      ghosts_.erase(ghost->second);
      ghost_index_.erase(ghost);
    }
  }

  void EraseRange(std::string_view begin, std::string_view end) override {
    for (auto it = am_index_.lower_bound(begin);
         it != am_index_.end() && it->first < end;) {
      resident_bytes_ -= Charge(it->second->first, it->second->second);
      am_.erase(it->second);
      it = am_index_.erase(it);
    }
    for (auto it = a1in_index_.lower_bound(begin);
         it != a1in_index_.end() && it->first < end;) {
      const uint64_t charge = Charge(it->second->first, it->second->second);
      resident_bytes_ -= charge;
      a1in_bytes_ -= charge;
      a1in_.erase(it->second);
      it = a1in_index_.erase(it);
    }
    for (auto it = ghost_index_.lower_bound(begin);
         it != ghost_index_.end() && it->first < end;) {
      ghost_bytes_ -= it->second->size();
      ghosts_.erase(it->second);
      it = ghost_index_.erase(it);
    }
  }

  uint64_t SizeBytes() const override { return resident_bytes_ + ghost_bytes_; }
  uint64_t EntryCount() const override { return am_.size() + a1in_.size(); }
  std::string PolicyName() const override { return "2q"; }

 private:
  void EvictToFit() {
    // The probationary FIFO holds its budget unconditionally — not just
    // under memory pressure. 2Q's scan resistance comes precisely from
    // first-touch entries aging out of a1in quickly; letting it balloon
    // while the cache is underfull would turn it back into one big LRU.
    while (a1in_bytes_ > a1in_budget_ && !a1in_.empty()) EvictA1InTail();
    while (resident_bytes_ > capacity_) {
      if (!a1in_.empty()) {
        EvictA1InTail();  // drain probation before touching the hot queue
      } else if (!am_.empty()) {
        const auto& victim = am_.back();
        resident_bytes_ -= Charge(victim.first, victim.second);
        am_index_.erase(victim.first);
        am_.pop_back();
      } else {
        break;
      }
    }
    while (ghost_bytes_ > ghost_budget_ && !ghosts_.empty()) {
      ghost_bytes_ -= ghosts_.back().size();
      ghost_index_.erase(ghosts_.back());
      ghosts_.pop_back();
    }
  }

  void EvictA1InTail() {
    auto& victim = a1in_.back();
    const uint64_t charge = Charge(victim.first, victim.second);
    resident_bytes_ -= charge;
    a1in_bytes_ -= charge;
    a1in_index_.erase(victim.first);
    ghosts_.emplace_front(std::move(victim.first));
    ghost_index_.emplace(ghosts_.front(), ghosts_.begin());
    ghost_bytes_ += ghosts_.front().size();
    a1in_.pop_back();
  }

  using Entry = std::pair<std::string, std::string>;
  const uint64_t capacity_;
  const uint64_t a1in_budget_;
  const uint64_t ghost_budget_;
  uint64_t resident_bytes_ = 0;  // am + a1in key+value bytes
  uint64_t a1in_bytes_ = 0;
  uint64_t ghost_bytes_ = 0;
  std::list<Entry> am_;    // front = MRU
  std::list<Entry> a1in_;  // front = newest, evict at back
  std::list<std::string> ghosts_;
  std::map<std::string, std::list<Entry>::iterator, std::less<>> am_index_;
  std::map<std::string, std::list<Entry>::iterator, std::less<>> a1in_index_;
  std::map<std::string_view, std::list<std::string>::iterator, std::less<>>
      ghost_index_;
};

}  // namespace

StatusOr<std::unique_ptr<ReadCache>> ReadCache::Create(
    std::string_view policy, uint64_t capacity_bytes) {
  if (policy == "lru") {
    return std::unique_ptr<ReadCache>(new LruCache(capacity_bytes));
  }
  if (policy == "2q") {
    return std::unique_ptr<ReadCache>(new TwoQCache(capacity_bytes));
  }
  return Status::InvalidArgument("unknown read_cache_policy \"" +
                                 std::string(policy) +
                                 "\" (expected \"lru\" or \"2q\")");
}

}  // namespace ptsb::cached
