// Scan-resistant read cache for the cached engine: a byte-budgeted map of
// recently read key/value pairs sitting UNDER the write buffer (buffered
// mutations always win; every buffered write erases its key here so a
// flush can never resurrect a stale cached value). The eviction policy is
// pluggable — "lru" is the classic recency list, "2q" is a simplified
// two-queue design (Johnson & Shasha) whose probationary FIFO absorbs
// one-shot scan traffic so a full iterator pass cannot evict the hot
// working set.
#ifndef PTSB_CACHED_READ_CACHE_H_
#define PTSB_CACHED_READ_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ptsb::cached {

class ReadCache {
 public:
  virtual ~ReadCache() = default;

  // On hit copies the value into *value, lets the policy observe the
  // reference (LRU: move to MRU; 2Q: promote on re-reference) and returns
  // true. Misses (including 2Q ghost entries, which remember only the
  // key) return false and leave *value alone.
  virtual bool Get(std::string_view key, std::string* value) = 0;

  // Inserts or refreshes key -> value, evicting per policy until the
  // byte budget holds. Entries larger than the whole budget are dropped.
  virtual void Insert(std::string_view key, std::string_view value) = 0;

  // Drops the key if cached (called for every buffered write: the write
  // buffer now owns the freshest version).
  virtual void Erase(std::string_view key) = 0;

  // Drops every cached key in [begin, end) — end exclusive, matching
  // WriteBatch::DeleteRange. Called when a range delete enters the write
  // buffer: a covered cached value must never resurface once the range
  // reaches the inner engine. Ghost keys (2Q) are dropped too, so a
  // deleted key re-entering the cache starts on probation again.
  virtual void EraseRange(std::string_view begin, std::string_view end) = 0;

  // Resident key+value bytes (ghost keys included for 2Q).
  virtual uint64_t SizeBytes() const = 0;
  virtual uint64_t EntryCount() const = 0;
  virtual std::string PolicyName() const = 0;

  // Builds the policy named by `policy` ("lru" or "2q") with the given
  // byte budget; InvalidArgument on anything else. capacity_bytes must
  // be > 0 (a disabled cache is a null ReadCache*, not a zero-budget one).
  static StatusOr<std::unique_ptr<ReadCache>> Create(
      std::string_view policy, uint64_t capacity_bytes);
};

}  // namespace ptsb::cached

#endif  // PTSB_CACHED_READ_CACHE_H_
