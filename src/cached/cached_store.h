// The "cached" engine: a flash-aware write buffer + read cache wrapped
// around any inner registry engine (eFIND-style host buffering; ROADMAP
// open item 1). User batches land in an in-memory buffer (last-write-wins
// per key, tombstones retained) backed by the wrapper's own append-only
// durability log; the buffer is drained to the inner engine as large
// group-commit batches picked largest-coalesced-first, so the inner
// structure sees fewer, bigger, flash-friendlier writes. Point reads that
// miss the buffer probe a pluggable scan-resistant read cache ("lru" or
// "2q") before paying the inner read path.
#ifndef PTSB_CACHED_CACHED_STORE_H_
#define PTSB_CACHED_CACHED_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cached/options.h"
#include "cached/read_cache.h"
#include "fs/filesystem.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_group.h"
#include "util/status.h"

namespace ptsb::cached {

class CachedStore : public kv::KVStore {
 public:
  // Opens (or reopens) the wrapper at eo.root: validates params, checks
  // the META file (layout-critical inner_engine must match the on-disk
  // choice), opens the inner engine under <root>/inner, and replays any
  // durability-log segments into the write buffer.
  static StatusOr<std::unique_ptr<CachedStore>> Open(
      const kv::EngineOptions& eo);

  ~CachedStore() override;

  Status Write(const kv::WriteBatch& batch) override;
  kv::WriteHandle WriteAsync(const kv::WriteBatch& batch) override;
  Status Get(std::string_view key, std::string* value) override;
  // Snapshot-aware point lookup: with a snapshot, consults the snapshot's
  // frozen buffer/range copies, then the inner engine AT the snapshot's
  // inner snapshot. The live read cache is skipped entirely (it reflects
  // live state, not the snapshot's).
  Status Get(const kv::ReadOptions& opts, std::string_view key,
             std::string* value) override;
  std::vector<Status> MultiGet(std::span<const std::string_view> keys,
                               std::vector<std::string>* values) override;
  kv::ReadHandle ReadAsync(std::string_view key, std::string* value) override;
  std::unique_ptr<Iterator> NewIterator() override;
  // With a snapshot: a merge of the snapshot's frozen buffer copy over
  // the inner engine's own snapshot iterator, immune to concurrent
  // writes. opts.readahead forwards to the inner snapshot cursor (the
  // wrapper's buffer is memory-resident; prefetch only helps below).
  // Without a snapshot, falls back to the live merging cursor.
  std::unique_ptr<Iterator> NewIterator(const kv::ReadOptions& opts) override;
  // Freezes the wrapper state (a copy of the write buffer and buffered
  // range deletes) AND the inner engine (inner_->GetSnapshot()) into one
  // composite view at the wrapper's commit sequence. The buffer copy's
  // bytes are accounted in snapshot_pinned_bytes until release.
  StatusOr<std::shared_ptr<const kv::Snapshot>> GetSnapshot() override;
  Status Flush() override;
  Status SettleBackgroundWork() override;
  Status Close() override;
  // Concurrent Write callers group-commit into the wrapper's durability
  // log; reads (which touch the shared buffer and read cache) run under
  // the group's commit-exclusion lock. Iterators and lifecycle calls
  // still expect a quiesced store.
  bool SupportsConcurrentWriters() const override { return true; }
  kv::KvStoreStats GetStats() const override;
  std::string Name() const override;
  uint64_t DiskBytesUsed() const override;

  // Introspection for benches/tests: the inner engine's own stats (what
  // actually reached the wrapped structure), and the live buffer shape.
  kv::KvStoreStats InnerStats() const { return inner_->GetStats(); }
  uint64_t BufferBytes() const { return buffer_bytes_; }
  size_t BufferEntries() const { return buffer_.size(); }

 private:
  class MergeIterator;
  class SnapshotImpl;
  class SnapIterator;

  // One buffered mutation. absorbed_bytes accumulates the charges of the
  // earlier versions this entry overwrote since it entered the buffer —
  // the flush manager drains largest-absorbed-first, keeping the entries
  // that coalesce the most in memory the longest.
  struct BufferEntry {
    std::string value;
    bool tombstone = false;
    uint64_t absorbed_bytes = 0;
  };

  // One buffered range delete ([begin, end), end exclusive). Ingesting a
  // range erases every covered buffer entry, so EVERY buffered entry
  // postdates every buffered range — which is why a flush can emit all
  // ranges first and then any subset of entries and still reproduce the
  // user's order.
  struct BufferedRange {
    std::string begin;
    std::string end;
  };

  CachedStore(const CachedOptions& options, fs::SimpleFs* fs,
              std::string root, std::unique_ptr<kv::KVStore> inner,
              std::unique_ptr<ReadCache> cache);

  int64_t NowNs() const {
    return options_.clock != nullptr ? options_.clock->NowNanos() : 0;
  }
  static uint64_t EntryCharge(std::string_view key, const BufferEntry& e) {
    return key.size() + e.value.size();
  }
  std::string LogName(uint64_t id) const;
  // Every ".wlog" segment under the root with a numeric basename, sorted
  // by id.
  std::vector<std::pair<uint64_t, std::string>> ListLogSegments() const;

  // The commit function the write group's leader runs: the old Write
  // body, applied to the merged batch of `n_user_batches` user Writes.
  Status WriteInternal(const kv::WriteBatch& batch, size_t n_user_batches);
  // Get's body, run under the group's commit-exclusion lock.
  Status GetInternal(std::string_view key, std::string* value);
  // MultiGet's body, run under the group's commit-exclusion lock.
  std::vector<Status> MultiGetInternal(std::span<const std::string_view> keys,
                                       std::vector<std::string>* values);

  // Applies one mutation to the in-memory buffer and invalidates the read
  // cache for the key. Coalescing stats are skipped during log replay.
  void ApplyEntry(kv::WriteBatch::EntryKind kind, std::string_view key,
                  std::string_view value);
  // Ingests one range delete: erases every covered buffer entry
  // (coalescing credit), invalidates the covered read-cache span, and
  // appends the range to ranges_ (charged to buffer_bytes_).
  void ApplyRangeDelete(std::string_view begin, std::string_view end);
  void ApplyToBuffer(const kv::WriteBatch& batch);
  // Whether `key` falls inside any of the given buffered ranges.
  static bool Covers(const std::vector<BufferedRange>& ranges,
                     std::string_view key);
  // Appends one encoded batch record to the active log segment (creating
  // it lazily) and honors the sync cadence.
  Status AppendLogRecord(const std::string& record);
  // Starts a fresh log segment holding the whole buffer as one synced
  // snapshot record (no record at all if the buffer is empty).
  Status WriteSnapshotSegment();
  // Replays every on-disk log segment into the buffer, then rewrites the
  // log as a single snapshot segment.
  Status ReplayAndCompactLog();
  // Drains the buffer down to target_bytes with one inner group-commit
  // batch (victims picked largest-absorbed-first). No-op if already at
  // or under target.
  Status FlushBuffer(uint64_t target_bytes);
  // Kicks a flush when the buffer crosses capacity — inline on the user
  // timeline, or on the background lane under background_io.
  Status MaybeFlush();
  // Rotates an overgrown log: everything still buffered is rewritten as
  // one snapshot record in a fresh segment and older segments are
  // deleted. Requires the inner engine be flushed first so records
  // dropped from the log are durable below.
  Status MaybeCheckpointLog();
  // Deletes every log segment with id < keep_from_id.
  Status DeleteLogSegments(uint64_t keep_from_id);
  void JoinBackgroundWork();

  // Snapshot Get's body, run under the group's commit-exclusion lock.
  Status SnapshotGetInternal(const SnapshotImpl& snap, std::string_view key,
                             std::string* value);
  // Called by ~SnapshotImpl: releases the pinned-buffer accounting (the
  // inner snapshot releases itself via its own shared_ptr deleter).
  void ReleaseSnapshot(const SnapshotImpl& snap);

  const CachedOptions options_;
  fs::SimpleFs* const fs_;
  const std::string root_;
  std::unique_ptr<kv::KVStore> inner_;
  std::unique_ptr<ReadCache> cache_;  // null when read_cache_bytes == 0

  std::map<std::string, BufferEntry, std::less<>> buffer_;
  uint64_t buffer_bytes_ = 0;
  // Buffered range deletes in ingest order; flushed (all of them, first
  // in the batch) by the next FlushBuffer. Their begin+end bytes are
  // charged to buffer_bytes_ and tracked separately here.
  std::vector<BufferedRange> ranges_;
  uint64_t ranges_bytes_ = 0;
  // Sum of buffer-copy bytes held by live snapshots (a memory gauge,
  // reported as this layer's share of snapshot_pinned_bytes).
  uint64_t snapshot_pinned_buffer_bytes_ = 0;

  fs::File* log_ = nullptr;  // owned by fs_; null until first append
  uint64_t log_id_ = 0;      // id of the active segment
  uint64_t next_log_id_ = 0;
  uint64_t unsynced_log_bytes_ = 0;

  bool replaying_ = false;
  bool closed_ = false;
  uint64_t write_epoch_ = 0;  // bumped by every Write; guards iterators
  int64_t background_horizon_ns_ = 0;

  mutable kv::KvStoreStats stats_;
  // Cross-thread group commit queue; also provides the commit-exclusion
  // lock the read paths (and const stats snapshots) run under.
  mutable kv::WriteGroup write_group_;
};

// Parses CachedOptions out of generic engine options (unknown params are
// the inner engine's business and pass through).
CachedOptions CachedOptionsFromEngineOptions(const kv::EngineOptions& eo);

// Registers the "cached" engine constructor with the global registry.
void RegisterCachedEngine();

// Emits every CachedOptions field as "key=value" params (the wrapper's
// own keys only; docs lint keeps docs/ENGINES.md in sync with this list).
std::map<std::string, std::string> EncodeEngineParams(
    const CachedOptions& options);

}  // namespace ptsb::cached

#endif  // PTSB_CACHED_CACHED_STORE_H_
