// Configuration of the cached front end: a flash-aware write buffer +
// read cache wrapped around one inner engine (any kv::EngineRegistry name
// except "cached" itself). The wrapper absorbs and coalesces mutations in
// memory, keeps them crash-durable in its own append-only log, and flushes
// them to the inner engine as large group-commit batches — so the inner
// structure sees fewer, bigger, flash-friendlier writes than the user
// issued. Structural options of the inner engine pass through the param
// map untouched.
#ifndef PTSB_CACHED_OPTIONS_H_
#define PTSB_CACHED_OPTIONS_H_

#include <cstdint>
#include <string>

#include "sim/clock.h"

namespace ptsb::cached {

struct CachedOptions {
  // Registry name of the engine the wrapper composes over ("lsm",
  // "btree", "alog", "sharded", or any out-of-tree registration).
  // Nesting "cached" is rejected.
  std::string inner_engine = "lsm";

  // Write-buffer capacity: the in-memory map of buffered mutations
  // (last-write-wins per key, tombstones retained) grows to this many
  // key+value bytes before a flush pushes it back down to
  // flush_watermark * write_buffer_bytes.
  uint64_t write_buffer_bytes = 4 << 20;

  // Read-cache capacity in key+value bytes, sitting UNDER the write
  // buffer: lookups that miss the buffer probe the cache before paying
  // the inner engine's read path. 0 disables the cache entirely.
  uint64_t read_cache_bytes = 8 << 20;

  // Eviction policy of the read cache: "lru" (classic recency list) or
  // "2q" (scan-resistant two-queue: one full iterator pass cannot evict
  // the hot working set, because only re-referenced keys are promoted to
  // the long-lived queue).
  std::string read_cache_policy = "2q";

  // Fraction of write_buffer_bytes a flush drains the buffer down to.
  // Flushing to a watermark rather than to empty keeps the hottest
  // (largest-coalesced) entries buffered, where they keep absorbing
  // rewrites; the flush victims are the entries that coalesced the most
  // already (largest payoff per inner write). Must be in (0, 1].
  double flush_watermark = 0.5;

  // Cap on the merged byte size of one cross-thread commit group: a
  // leader folds waiting writers' batches into a single durability-log
  // record up to this many payload bytes (its own batch always commits
  // regardless). See kv::WriteGroup.
  uint64_t max_write_group_bytes = 1ull << 20;

  // Explicit sync cadence of the wrapper's durability log. 0 = never sync
  // explicitly (full filesystem pages still reach the device as they
  // fill; the buffered log tail is lost on crash, like an unsynced WAL);
  // 1 makes every Write crash-durable the moment it returns.
  uint64_t log_sync_every_bytes = 0;

  // Run buffer flushes on the wrapper's background submission lane (queue
  // `background_queue`, I/O class kBackground) instead of the user's
  // timeline: commits no longer absorb flush device time; Flush, Close
  // and SettleBackgroundWork wait it out explicitly. The param also
  // passes through to the inner engine, so one flag moves the whole
  // stack's maintenance off the commit path. Off by default (the paper's
  // baseline).
  bool background_io = false;

  // Optional virtual clock for time accounting (device time is charged by
  // the device itself).
  sim::SimClock* clock = nullptr;
  // Submission queue for WriteAsync/ReadAsync (see kv::EngineOptions).
  uint32_t io_queue = 0;
  // Submission queue for the background flush lane (see kv::EngineOptions).
  uint32_t background_queue = 1;
};

}  // namespace ptsb::cached

#endif  // PTSB_CACHED_OPTIONS_H_
