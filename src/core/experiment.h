// Experiment driver: assembles the full stack the paper's testbed has
// (SSD -> iostat -> blktrace -> partition -> filesystem -> engine), applies
// the drive's initial state, runs the load phase and the timed update
// phase, and samples the paper's metrics every window.
//
// All sizes are specified at *paper scale* (400 GB drive, 200 GB dataset,
// 10 MiB caches, ...) and divided by `scale`. Because every structural
// size shrinks by the same factor, the time axis compresses by it too; all
// reported times are mapped back to paper-equivalent minutes.
#ifndef PTSB_CORE_EXPERIMENT_H_
#define PTSB_CORE_EXPERIMENT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "block/iostat.h"
#include "block/partition.h"
#include "block/trace.h"
#include "btree/options.h"
#include "core/metrics.h"
#include "fs/filesystem.h"
#include "kv/kvstore.h"
#include "kv/workload.h"
#include "lsm/options.h"
#include "sim/clock.h"
#include "sim/io_class.h"
#include "ssd/precondition.h"
#include "ssd/profiles.h"
#include "ssd/ssd_device.h"
#include "util/status.h"

namespace ptsb::core {

struct ExperimentConfig {
  std::string name = "experiment";
  uint64_t scale = 100;  // divide all paper-scale sizes by this

  // Device.
  ssd::ProfileKind profile = ssd::ProfileKind::kSsd1Enterprise;
  ssd::InitialState initial_state = ssd::InitialState::kTrimmed;
  uint64_t device_bytes = ssd::kPaperDeviceBytes;  // paper scale

  // Partition: fraction of the device the filesystem gets; the rest stays
  // trimmed as software over-provisioning (paper Section 4.6).
  double partition_frac = 1.0;

  // Dataset: fraction of the (whole) device capacity (paper default 0.5).
  double dataset_frac = 0.5;
  size_t key_bytes = 16;
  size_t value_bytes = 4000;

  // Update phase. batch_size > 1 groups puts into one KVStore::Write
  // (group commit); delete_fraction carves deletes out of the write ops;
  // scan_fraction carves scan_count-entry range scans out of the reads.
  double write_fraction = 1.0;
  double delete_fraction = 0.0;
  double scan_fraction = 0.0;
  size_t batch_size = 1;
  size_t scan_count = 100;
  // Concurrent workers for the update phase. Each worker replays its own
  // deterministic op stream (WorkloadSpec::ForThread) against the one
  // store; pair > 1 with the "sharded" engine, which serializes per
  // shard and commits cross-shard batches in parallel. With > 1 the
  // per-window series degrades to a single aggregate window (sampling
  // windows mid-run would race with the workers), and scan ops are
  // downgraded to gets: iterators have no snapshot isolation yet
  // (ROADMAP), so a scan concurrent with writes would read invalidated
  // state.
  size_t num_threads = 1;
  // Device-internal parallelism (Roh et al., PAPERS.md): number of
  // independent flash channels in the simulated SSD. A submission queue
  // q serializes on channel q % channels only; synchronous callers use
  // channel 0, so 1 reproduces the single-server device exactly.
  int channels = 1;
  // Async submission depth for the "sharded" engine (its queue_depth
  // param, unless engine_params overrides it): > 1 commits cross-shard
  // sub-batches through KVStore::WriteAsync with this many in flight, so
  // their device time overlaps across channels in VIRTUAL time. Ignored
  // by engines without async dispatch.
  int queue_depth = 1;
  // Pipelined writer mode: the update phase issues writes through
  // KVStore::WriteAsync and observes their completions via
  // WriteHandle::OnComplete callbacks instead of blocking on each
  // commit, keeping up to pipeline_depth commits in flight per worker.
  // Mutations are applied at submit (the engine's group-commit path runs
  // then); only the completion wait is deferred, so reads issued between
  // submissions still see every prior write. Works with any engine and
  // any num_threads; per-op latency is measured submit-to-completion in
  // virtual time.
  bool pipeline_writes = false;
  int pipeline_depth = 4;
  // Read-side submission depth (every engine's read_queue_depth param,
  // unless engine_params overrides it): > 1 lets MultiGet fan point
  // lookups out across read submission lanes, so independent reads
  // overlap across channels. Pair with read_batch_size > 1, which groups
  // that many gets into one MultiGet op.
  int read_queue_depth = 1;
  size_t read_batch_size = 1;
  // Run every scan op over a snapshot (KVStore::GetSnapshot +
  // ReadOptions::snapshot): the cursor freezes a commit sequence and
  // survives concurrent writers, so scan_fraction > 0 composes with
  // num_threads > 1 instead of being downgraded to point reads.
  bool scan_while_writing = false;
  // Iterator readahead for scan ops (ReadOptions::readahead): > 1
  // prefetches that many leaves/blocks/values per span across read
  // submission lanes at the engine's read_queue_depth, overlapping a
  // scan's I/O across SSD channels. Implies the snapshot scan path.
  int scan_readahead = 1;
  // Run engine maintenance (LSM compaction, B+Tree checkpoints, alog GC)
  // on a dedicated background submission lane/queue (the engines'
  // background_io param): user commits no longer absorb background
  // device time, which surfaces as background-channel utilization and as
  // tail latency at the points where the user genuinely waits (write
  // stalls, Flush, SettleBackgroundWork).
  bool background_io = false;
  // Partitioned background work (every engine's compaction_parallelism
  // param): > 1 splits a picked LSM compaction into that many disjoint
  // key subranges (and fans alog GC value reads / B+Tree checkpoint
  // block writes out the same way), each on its own background
  // submission lane, so background I/O overlaps across SSD channels.
  // Needs background_io; 1 keeps today's single-lane behavior.
  int compaction_parallelism = 1;
  // Inter-class QoS scheduling in the simulated SSD (threads through to
  // SsdConfig; see docs/SIMULATION.md "Inter-class scheduling"). All off
  // (0 / empty) by default, which reproduces FIFO per-channel
  // scheduling exactly.
  // Preemption quantum for background backend work, in MICROSECONDS
  // (--bg-slice-us): a foreground command waits at most one quantum
  // behind a background span. 0 = background runs to completion.
  int64_t background_slice_us = 0;
  // Token-bucket admission limit for background host-write bytes, MB/s
  // (--bg-rate-mbps). 0 = unlimited.
  double background_rate_mbps = 0;
  // Service weights "fgread:fgwrite:bg" (--class-weights), e.g. "4:4:1"
  // lets background interleave 1/4 of a foreground command's cost at
  // each preemption point. Empty = strict foreground priority.
  std::string class_weights;
  // Host-buffering knobs for the "cached" wrapper engine (its
  // read_cache_bytes / read_cache_policy / write_buffer_bytes params,
  // unless engine_params overrides them). 0 / empty leaves the engine's
  // own defaults in place; disabling the read cache outright is spelled
  // engine_params["read_cache_bytes"] = "0". Ignored by other engines.
  uint64_t cache_bytes = 0;
  std::string cache_policy;
  uint64_t write_buffer_bytes = 0;
  kv::Distribution distribution = kv::Distribution::kUniform;
  double zipf_theta = 0.99;  // used when distribution is zipfian
  double duration_minutes = 210;  // paper-equivalent minutes
  double window_minutes = 10;

  // Engine selection: a kv::EngineRegistry name plus option overrides.
  // For the built-in "lsm"/"btree" engines the driver first fills the
  // scaled defaults (ScaledLsmOptions / ScaledBTreeOptions below), then
  // applies engine_params on top, so any registered engine — including
  // out-of-tree ones — is configured the same way.
  std::string engine = "lsm";
  std::map<std::string, std::string> engine_params;

  bool collect_lba_trace = true;
  uint64_t seed = 42;

  // Filesystem behavior (paper: ext4 with nodiscard).
  bool fs_nodiscard = true;

  // Derived values (after scaling).
  uint64_t ScaledDeviceBytes() const { return device_bytes / scale; }
  uint64_t DatasetBytes() const {
    return static_cast<uint64_t>(dataset_frac *
                                 static_cast<double>(ScaledDeviceBytes()));
  }
  uint64_t NumKeys() const {
    return DatasetBytes() / (key_bytes + value_bytes);
  }
};

struct ExperimentResult {
  ExperimentConfig config;
  MetricsSeries series;

  // Steady-state summary (tail-window averages).
  WindowSample steady;
  double throughput_cv = 0;

  double load_minutes = 0;            // paper-equivalent
  double peak_disk_utilization = 0;
  double final_space_amp = 0;
  // The paper reports the *maximum* utilization RocksDB reaches, since its
  // footprint fluctuates with compaction churn (Section 4.5).
  double peak_space_amp = 0;
  bool ran_out_of_space = false;
  bool reached_steady_state = false;

  // LBA-trace analysis (paper Fig. 4).
  double lba_fraction_untouched = 0;
  std::vector<block::LbaTraceCollector::CdfPoint> lba_cdf;

  kv::KvStoreStats engine_stats;
  ssd::SmartCounters smart;
  uint64_t update_ops = 0;

  // Per-channel utilization over the whole run: fraction of the final
  // virtual time each flash channel spent busy with backend work
  // (programs, GC, erases). One entry per configured channel; a
  // single-channel run reports one number.
  std::vector<double> channel_utilization;

  // Per-channel, per-I/O-class busy fraction over the whole run, indexed
  // [channel][sim::IoClass]: how much of each channel went to foreground
  // reads, foreground writes, and background maintenance (includes read
  // occupancy, so it is finer-grained than channel_utilization).
  std::vector<std::array<double, sim::kNumIoClasses>>
      channel_class_utilization;
  // The same, summed across channels into the foreground-vs-background
  // device-time breakdown (nanoseconds of channel busy time).
  int64_t device_foreground_busy_ns = 0;
  int64_t device_background_busy_ns = 0;

  // QoS scheduler counters summed across channels (all zero unless a
  // QoS knob is set): foreground preemptions of background spans, time
  // background writes spent in the admission throttle, and per-class
  // scheduling delay imposed by the inter-class scheduler.
  uint64_t device_preemptions = 0;
  int64_t device_bg_throttled_ns = 0;
  std::array<int64_t, sim::kNumIoClasses> device_class_wait_ns{};

  // Operation-latency percentiles over the whole update phase
  // (microseconds of virtual time, per logical entry): background
  // interference shows up here as p99 long before it dents throughput.
  double op_p50_us = 0;
  double op_p99_us = 0;
  double op_max_us = 0;

  // End-to-end write amplification = WA-A x WA-D (paper Section 4.2).
  double EndToEndWa() const { return steady.wa_a_cum * steady.wa_d_cum; }
};

// Builds the stack, runs load + update, returns the sampled result.
// `progress` (optional) is invoked with a short status line per window.
StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const std::string&)>& progress = nullptr);

// Scaled engine option defaults (exposed for tests and examples). The
// clock is attached by the engine factory via kv::EngineOptions, not here.
lsm::LsmOptions ScaledLsmOptions(const ExperimentConfig& config);
btree::BTreeOptions ScaledBTreeOptions(const ExperimentConfig& config);
fs::FsOptions ScaledFsOptions(const ExperimentConfig& config);

}  // namespace ptsb::core

#endif  // PTSB_CORE_EXPERIMENT_H_
