#include "core/metrics.h"

#include "util/human.h"
#include "util/stats.h"

namespace ptsb::core {

WindowSample MetricsSeries::SteadyState(size_t tail) const {
  WindowSample avg;
  if (windows.empty()) return avg;
  if (tail == 0) tail = std::max<size_t>(3, windows.size() / 4);
  tail = std::min(tail, windows.size());
  const size_t start = windows.size() - tail;
  for (size_t i = start; i < windows.size(); i++) {
    const WindowSample& w = windows[i];
    avg.kv_kops += w.kv_kops;
    avg.dev_write_mbps += w.dev_write_mbps;
    avg.dev_read_mbps += w.dev_read_mbps;
    avg.wa_a_cum += w.wa_a_cum;
    avg.wa_d_cum += w.wa_d_cum;
    avg.wa_d_window += w.wa_d_window;
    avg.disk_utilization += w.disk_utilization;
    avg.space_amp += w.space_amp;
    avg.stalls += w.stalls;
  }
  const double n = static_cast<double>(tail);
  avg.t_minutes = windows.back().t_minutes;
  avg.kv_kops /= n;
  avg.dev_write_mbps /= n;
  avg.dev_read_mbps /= n;
  avg.wa_a_cum /= n;
  avg.wa_d_cum /= n;
  avg.wa_d_window /= n;
  avg.disk_utilization /= n;
  avg.space_amp /= n;
  return avg;
}

double MetricsSeries::ThroughputCv() const {
  if (windows.size() < 4) return 0;
  RunningStats stats;
  for (size_t i = windows.size() / 2; i < windows.size(); i++) {
    stats.Add(windows[i].kv_kops);
  }
  return stats.Cv();
}

std::string MetricsSeries::ToTable(const std::string& title) const {
  std::string out = title + "\n";
  out +=
      "  t(min)    Kops/s   devW(MB/s)  devR(MB/s)   WA-A   WA-D  "
      "util%  spaceAmp  stalls\n";
  for (const WindowSample& w : windows) {
    out += StrPrintf(
        "  %6.1f  %8.2f   %9.1f   %9.1f  %5.2f  %5.2f  %5.1f  %8.2f  %6llu\n",
        w.t_minutes, w.kv_kops, w.dev_write_mbps, w.dev_read_mbps, w.wa_a_cum,
        w.wa_d_cum, w.disk_utilization * 100.0, w.space_amp,
        static_cast<unsigned long long>(w.stalls));
  }
  return out;
}

std::string MetricsSeries::ToCsv() const {
  std::string out =
      "t_minutes,kv_kops,dev_write_mbps,dev_read_mbps,wa_a_cum,wa_d_cum,"
      "wa_d_window,disk_utilization,space_amp,stalls,cache_backlog_mb,"
      "op_p50_us,op_p99_us,op_max_us\n";
  for (const WindowSample& w : windows) {
    out += StrPrintf(
        "%.3f,%.4f,%.2f,%.2f,%.4f,%.4f,%.4f,%.5f,%.4f,%llu,%.2f,%.1f,%.1f,"
        "%.1f\n",
        w.t_minutes, w.kv_kops, w.dev_write_mbps, w.dev_read_mbps,
        w.wa_a_cum, w.wa_d_cum, w.wa_d_window, w.disk_utilization,
        w.space_amp, static_cast<unsigned long long>(w.stalls),
        w.cache_backlog_mb, w.op_p50_us, w.op_p99_us, w.op_max_us);
  }
  return out;
}

}  // namespace ptsb::core
