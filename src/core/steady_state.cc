#include "core/steady_state.h"

#include <algorithm>
#include <cmath>

namespace ptsb::core {

CusumDetector::CusumDetector(int warmup, double k_rel, double h_rel)
    : warmup_(std::max(1, warmup)), k_rel_(k_rel), h_rel_(h_rel) {}

bool CusumDetector::Add(double x) {
  samples_seen_++;
  if (samples_seen_ <= warmup_) {
    warmup_acc_ += x;
    if (samples_seen_ == warmup_) {
      mean_ = warmup_acc_ / warmup_;
    }
    return false;
  }
  const double scale = std::abs(mean_) > 1e-12 ? std::abs(mean_) : 1.0;
  const double k = k_rel_ * scale;
  const double h = h_rel_ * scale;
  s_pos_ = std::max(0.0, s_pos_ + (x - mean_) - k);
  s_neg_ = std::max(0.0, s_neg_ - (x - mean_) - k);
  if (s_pos_ > h || s_neg_ > h) {
    alarms_++;
    s_pos_ = 0;
    s_neg_ = 0;
    return true;
  }
  return false;
}

void CusumDetector::Reset() {
  samples_seen_ = 0;
  warmup_acc_ = 0;
  s_pos_ = 0;
  s_neg_ = 0;
}

SteadyStateDetector::SteadyStateDetector(size_t window_count,
                                         double rel_tolerance,
                                         double capacity_multiple)
    : window_count_(std::max<size_t>(2, window_count)),
      rel_tolerance_(rel_tolerance),
      capacity_multiple_(capacity_multiple) {}

bool SteadyStateDetector::Stable(const std::deque<double>& values,
                                 double tol) {
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double mid = (hi + lo) / 2;
  if (std::abs(mid) < 1e-12) return hi - lo < 1e-12;
  return (hi - lo) / std::abs(mid) <= tol;
}

void SteadyStateDetector::AddWindow(double kv_kops, double wa_a, double wa_d,
                                    uint64_t cumulative_host_bytes,
                                    uint64_t device_capacity) {
  auto push = [this](std::deque<double>* dq, double v) {
    dq->push_back(v);
    if (dq->size() > window_count_) dq->pop_front();
  };
  push(&tput_, kv_kops);
  push(&wa_a_, wa_a);
  push(&wa_d_, wa_d);

  if (device_capacity > 0 &&
      static_cast<double>(cumulative_host_bytes) >=
          capacity_multiple_ * static_cast<double>(device_capacity)) {
    steady_by_volume_ = true;
  }
  if (tput_.size() == window_count_) {
    steady_by_metrics_ = Stable(tput_, rel_tolerance_) &&
                         Stable(wa_a_, rel_tolerance_) &&
                         Stable(wa_d_, rel_tolerance_);
  }
  steady_ = steady_by_metrics_ || steady_by_volume_;
}

}  // namespace ptsb::core
