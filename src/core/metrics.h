// Windowed experiment metrics: exactly the indicators the paper reports
// (Section 3.3) — KV throughput, device throughput via iostat, WA-A from
// host-vs-user bytes, WA-D from SMART counters, space amplification — in
// 10-minute windows (paper default).
#ifndef PTSB_CORE_METRICS_H_
#define PTSB_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ptsb::core {

// One averaging window of the update phase. Times are in *paper-equivalent
// minutes* (simulated time multiplied by the scale factor).
struct WindowSample {
  double t_minutes = 0;  // window end, measured from update-phase start
  double kv_kops = 0;    // KV operations per second (thousands)
  double dev_write_mbps = 0;
  double dev_read_mbps = 0;
  double wa_a_cum = 0;    // cumulative host writes / user writes
  double wa_d_cum = 0;    // cumulative NAND / host writes (update phase)
  double wa_d_window = 0; // same, over this window only
  double disk_utilization = 0;
  double space_amp = 0;
  uint64_t stalls = 0;
  double cache_backlog_mb = 0;  // device write-cache occupancy

  // Operation latency percentiles within this window (microseconds of
  // virtual time). Write stalls and GC bursts surface here as p99 spikes
  // long before they dent the window-average throughput.
  double op_p50_us = 0;
  double op_p99_us = 0;
  double op_max_us = 0;
};

// Aggregate over a run, plus steady-state summary values.
struct MetricsSeries {
  std::vector<WindowSample> windows;

  // Averages over the last `tail` windows (the steady-state report).
  WindowSample SteadyState(size_t tail = 0) const;

  // Coefficient of variation of kv_kops over the last half of the run
  // (throughput-variability comparison, paper Fig. 10).
  double ThroughputCv() const;

  std::string ToTable(const std::string& title) const;
  std::string ToCsv() const;
};

}  // namespace ptsb::core

#endif  // PTSB_CORE_METRICS_H_
