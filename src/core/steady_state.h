// Steady-state detection, per the paper's guidelines (Section 4.1):
//  - CUSUM (Page's continuous inspection scheme) to detect that a metric
//    has stopped drifting;
//  - a holistic detector requiring KV throughput, WA-A and WA-D to all be
//    stable for a while;
//  - the 3x-device-capacity rule of thumb on cumulative host writes.
#ifndef PTSB_CORE_STEADY_STATE_H_
#define PTSB_CORE_STEADY_STATE_H_

#include <cstdint>
#include <cstddef>
#include <deque>

namespace ptsb::core {

// Two-sided CUSUM change detector (E.S. Page, Biometrika 1954). The
// reference mean is estimated from the first `warmup` samples; `k` is the
// allowed drift and `h` the alarm threshold, both relative to the mean.
class CusumDetector {
 public:
  CusumDetector(int warmup = 5, double k_rel = 0.05, double h_rel = 0.5);

  // Feeds one sample; returns true if a change alarm fires now.
  bool Add(double x);

  // Re-baselines at the current sample mean (typically after an alarm).
  void Reset();

  bool HasBaseline() const { return samples_seen_ >= warmup_; }
  double baseline() const { return mean_; }
  double positive_sum() const { return s_pos_; }
  double negative_sum() const { return s_neg_; }
  int alarms() const { return alarms_; }

 private:
  int warmup_;
  double k_rel_;
  double h_rel_;
  int samples_seen_ = 0;
  double warmup_acc_ = 0;
  double mean_ = 0;
  double s_pos_ = 0;
  double s_neg_ = 0;
  int alarms_ = 0;
};

// Holistic steady-state detection over experiment windows.
class SteadyStateDetector {
 public:
  // Steady when for `window_count` consecutive windows, each tracked
  // metric's spread (max-min)/mean stays below `rel_tolerance`; or when
  // cumulative host writes reach `capacity_multiple` x device capacity.
  SteadyStateDetector(size_t window_count = 6, double rel_tolerance = 0.1,
                      double capacity_multiple = 3.0);

  void AddWindow(double kv_kops, double wa_a, double wa_d,
                 uint64_t cumulative_host_bytes, uint64_t device_capacity);

  bool IsSteady() const { return steady_; }
  bool SteadyByMetrics() const { return steady_by_metrics_; }
  bool SteadyByVolume() const { return steady_by_volume_; }

 private:
  static bool Stable(const std::deque<double>& values, double tol);

  size_t window_count_;
  double rel_tolerance_;
  double capacity_multiple_;
  std::deque<double> tput_, wa_a_, wa_d_;
  bool steady_ = false;
  bool steady_by_metrics_ = false;
  bool steady_by_volume_ = false;
};

}  // namespace ptsb::core

#endif  // PTSB_CORE_STEADY_STATE_H_
