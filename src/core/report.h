// Reporting helpers shared by the benches: paper-vs-measured comparison
// rows, series tables, and CSV export under results/.
#ifndef PTSB_CORE_REPORT_H_
#define PTSB_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/experiment.h"

namespace ptsb::core {

// One "paper reported X, we measured Y" line.
struct ComparisonRow {
  std::string label;
  double paper_value = 0;
  double measured_value = 0;
  std::string unit;
};

class Report {
 public:
  explicit Report(std::string title);

  void AddComparison(const std::string& label, double paper, double measured,
                     const std::string& unit = "");
  void AddNote(const std::string& note);

  // Renders the full report (comparison table + notes).
  std::string Render() const;
  void PrintTo(FILE* out) const;

  const std::vector<ComparisonRow>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<ComparisonRow> rows_;
  std::vector<std::string> notes_;
};

// Writes `content` to results/<name> (creates the directory). Returns the
// path written, or empty on failure (benches treat CSV export as optional).
std::string WriteResultsFile(const std::string& name,
                             const std::string& content);

// CSV with one row per experiment's steady-state summary.
std::string SteadySummaryCsv(const std::vector<ExperimentResult>& results);

}  // namespace ptsb::core

#endif  // PTSB_CORE_REPORT_H_
