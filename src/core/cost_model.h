// The paper's back-of-the-envelope storage-cost model (Figs. 6c and 8):
// how many drives does a deployment need to hold a dataset AND sustain a
// target throughput, given per-instance measurements (one PTS instance per
// SSD, aggregate throughput = sum of instances).
#ifndef PTSB_CORE_COST_MODEL_H_
#define PTSB_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ptsb::core {

// One measured operating point of a system: a per-instance dataset size
// with its steady-state throughput. Points where the system ran out of
// space are simply not included.
struct OperatingPoint {
  uint64_t dataset_bytes_per_instance = 0;
  double kops_per_instance = 0;
};

struct SystemProfile {
  std::string name;
  std::vector<OperatingPoint> points;
};

// Minimum number of drives over all operating points:
//   max(ceil(total_dataset / per-instance dataset),
//       ceil(target_kops / per-instance kops)).
// Returns 0 if the system has no feasible operating point.
uint64_t DrivesNeeded(const SystemProfile& system, double total_dataset_tb,
                      double target_kops);

struct HeatmapCell {
  double dataset_tb = 0;
  double target_kops = 0;
  uint64_t drives_a = 0;
  uint64_t drives_b = 0;
  // -1: A cheaper, 0: same cost, +1: B cheaper (matches the paper's
  // three-region heatmaps).
  int winner = 0;
};

struct CostHeatmap {
  std::string system_a, system_b;
  std::vector<double> dataset_tb_axis;
  std::vector<double> kops_axis;
  std::vector<HeatmapCell> cells;  // row-major: kops x dataset

  const HeatmapCell& At(size_t kops_idx, size_t ds_idx) const {
    return cells[kops_idx * dataset_tb_axis.size() + ds_idx];
  }
  // ASCII rendering in the style of the paper's Figs. 6c/8.
  std::string Render() const;
};

CostHeatmap ComputeHeatmap(const SystemProfile& a, const SystemProfile& b,
                           const std::vector<double>& dataset_tb_axis,
                           const std::vector<double>& kops_axis);

}  // namespace ptsb::core

#endif  // PTSB_CORE_COST_MODEL_H_
