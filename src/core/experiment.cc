#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "alog/alog_store.h"
#include "btree/btree_store.h"
#include "core/steady_state.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "lsm/lsm_store.h"
#include "util/histogram.h"
#include "util/human.h"
#include "util/logging.h"

namespace ptsb::core {

lsm::LsmOptions ScaledLsmOptions(const ExperimentConfig& config) {
  lsm::LsmOptions o;
  const uint64_t s = config.scale;
  o.memtable_bytes = std::max<uint64_t>((64ull << 20) / s, 64 << 10);
  o.l1_target_bytes = std::max<uint64_t>((256ull << 20) / s, 256 << 10);
  o.sst_target_bytes = std::max<uint64_t>((64ull << 20) / s, 64 << 10);
  o.block_bytes = 4096;          // unscaled: device page granularity
  o.bloom_bits_per_key = 10;
  return o;
}

btree::BTreeOptions ScaledBTreeOptions(const ExperimentConfig& config) {
  btree::BTreeOptions o;
  const uint64_t s = config.scale;
  o.leaf_max_bytes = 32 << 10;   // unscaled page sizes
  o.internal_max_bytes = 4 << 10;
  o.cache_bytes = std::max<uint64_t>((10ull << 20) / s, 4 * o.leaf_max_bytes);
  o.checkpoint_every_bytes = std::max<uint64_t>((256ull << 20) / s, 1 << 20);
  o.file_grow_bytes = std::max<uint64_t>((64ull << 20) / s, 1 << 20);
  return o;
}

fs::FsOptions ScaledFsOptions(const ExperimentConfig& config) {
  fs::FsOptions o;
  o.nodiscard = config.fs_nodiscard;
  // Extent sizes are device-side properties (ext4 block groups, command
  // sizes) and deliberately do NOT scale: large writes must stay large so
  // per-command latency amortizes as it does on real hardware.
  o.max_extent_pages = (8ull << 20) / 4096;
  o.append_alloc_pages = (1ull << 20) / 4096;
  o.metadata_pages = 64;
  return o;
}

namespace {

struct Stack {
  sim::SimClock clock;
  std::unique_ptr<ssd::SsdDevice> ssd;
  std::unique_ptr<block::IoStatCollector> iostat;
  std::unique_ptr<block::LbaTraceCollector> trace;
  std::unique_ptr<block::PartitionView> partition;
  std::unique_ptr<fs::SimpleFs> fs;
  std::unique_ptr<kv::KVStore> store;
};

// Parses the --class-weights spec "fgread:fgwrite:bg" (three
// non-negative integers) into the SsdConfig weight array.
Status ParseClassWeights(const std::string& spec,
                         std::array<int, sim::kNumIoClasses>* out) {
  int parsed[sim::kNumIoClasses] = {0, 0, 0};
  char trailing = 0;
  if (std::sscanf(spec.c_str(), "%d:%d:%d%c", &parsed[0], &parsed[1],
                  &parsed[2], &trailing) != 3 ||
      parsed[0] < 0 || parsed[1] < 0 || parsed[2] < 0) {
    return Status::InvalidArgument("class_weights must be \"fgr:fgw:bg\" (got " +
                                   spec + ")");
  }
  for (int c = 0; c < sim::kNumIoClasses; c++) {
    (*out)[static_cast<size_t>(c)] = parsed[c];
  }
  return Status::OK();
}

Status BuildStack(const ExperimentConfig& config, Stack* stack) {
  auto ssd_config = ssd::MakeProfile(config.profile, config.device_bytes,
                                     config.scale);
  ssd_config.channels = std::max(1, config.channels);
  ssd_config.background_slice_ns = config.background_slice_us * 1000;
  ssd_config.background_rate_mbps = config.background_rate_mbps;
  if (!config.class_weights.empty()) {
    PTSB_RETURN_IF_ERROR(
        ParseClassWeights(config.class_weights, &ssd_config.class_weights));
  }
  stack->ssd = std::make_unique<ssd::SsdDevice>(ssd_config, &stack->clock);
  stack->iostat = std::make_unique<block::IoStatCollector>(stack->ssd.get());
  block::BlockDevice* top = stack->iostat.get();
  if (config.collect_lba_trace) {
    stack->trace = std::make_unique<block::LbaTraceCollector>(top);
    top = stack->trace.get();
  }
  const auto part_lbas = static_cast<uint64_t>(
      config.partition_frac * static_cast<double>(top->num_lbas()));
  PTSB_CHECK_GT(part_lbas, 0u);
  stack->partition =
      std::make_unique<block::PartitionView>(top, 0, part_lbas);

  // Initial drive state: whole-device trim, then (optionally) precondition
  // the PTS partition (paper Sections 3.4 and 4.6).
  PTSB_RETURN_IF_ERROR(ssd::TrimAll(stack->ssd.get()));
  if (config.initial_state == ssd::InitialState::kPreconditioned) {
    PTSB_RETURN_IF_ERROR(
        ssd::Precondition(stack->partition.get(), 2.0, config.seed));
  }

  stack->fs = std::make_unique<fs::SimpleFs>(stack->partition.get(),
                                             ScaledFsOptions(config));

  // Registry-driven engine construction: scaled defaults for the built-in
  // engines, then the caller's overrides, then kv::OpenStore by name.
  // "sharded" scales whatever inner engine its params select (the shards
  // are full instances of that engine, so they take the same defaults).
  kv::EngineOptions engine_options;
  engine_options.engine = config.engine;
  engine_options.fs = stack->fs.get();
  engine_options.clock = &stack->clock;
  std::string defaults_engine = config.engine;
  if (config.engine == "sharded" || config.engine == "cached") {
    const auto it = config.engine_params.find("inner_engine");
    defaults_engine = it != config.engine_params.end() ? it->second : "lsm";
  }
  if (defaults_engine == "lsm") {
    engine_options.params = lsm::EncodeEngineParams(ScaledLsmOptions(config));
  } else if (defaults_engine == "btree") {
    engine_options.params =
        btree::EncodeEngineParams(ScaledBTreeOptions(config));
  } else if (defaults_engine == "alog") {
    engine_options.params = alog::ScaledEngineParams(config.scale);
  }
  if (config.engine == "sharded") {
    // The driver-level queue_depth knob is the sharded engine's param of
    // the same name; an explicit engine_params entry wins below.
    engine_options.params["queue_depth"] =
        std::to_string(std::max(1, config.queue_depth));
  }
  if (config.engine == "cached") {
    // Driver-level host-buffering knobs map onto the cached engine's
    // params of the same meaning; 0 / empty keeps the engine defaults
    // and explicit engine_params entries win below.
    if (config.write_buffer_bytes > 0) {
      engine_options.params["write_buffer_bytes"] =
          std::to_string(config.write_buffer_bytes);
    }
    if (config.cache_bytes > 0) {
      engine_options.params["read_cache_bytes"] =
          std::to_string(config.cache_bytes);
    }
    if (!config.cache_policy.empty()) {
      engine_options.params["read_cache_policy"] = config.cache_policy;
    }
  }
  // Every engine understands the read fan-out depth and the background
  // I/O toggle (sharded passes background_io through to its inner
  // engines); explicit engine_params entries win below.
  engine_options.params["read_queue_depth"] =
      std::to_string(std::max(1, config.read_queue_depth));
  engine_options.params["background_io"] = config.background_io ? "1" : "0";
  engine_options.params["compaction_parallelism"] =
      std::to_string(std::max(1, config.compaction_parallelism));
  for (const auto& [key, value] : config.engine_params) {
    engine_options.params[key] = value;
  }
  PTSB_ASSIGN_OR_RETURN(stack->store, kv::OpenStore(engine_options));
  if (config.num_threads > 1 &&
      !stack->store->SupportsConcurrentWriters()) {
    // Fanning workers out over a single-threaded engine corrupts it;
    // refuse up front instead of crashing mid-run. The built-in engines
    // all pass (their Write goes through a cross-thread kv::WriteGroup);
    // this guards out-of-tree registry engines that keep the base-class
    // default.
    return Status::InvalidArgument(
        "num_threads=" + std::to_string(config.num_threads) +
        " requires an engine with concurrent-writer support; \"" +
        config.engine +
        "\" is single-threaded (use engine \"sharded\" with inner_engine=" +
        config.engine + ")");
  }
  return Status::OK();
}

// Reusable scratch for the MultiGet read path (read_batch_size > 1),
// hoisted out of the per-op loop like the WriteBatch is.
struct ReadBatchScratch {
  std::vector<std::string> keys;
  std::vector<std::string_view> views;
  std::vector<std::string> values;
};

// Applies one generated op to the store. `ops_done` counts logical
// entries (a batch counts its size). NotFound on point reads is success;
// NoSpace is returned for the caller to treat as data (paper Fig. 6).
Status ExecuteOp(kv::KVStore* store, kv::WorkloadGenerator* gen,
                 const kv::WorkloadSpec& spec, const kv::Op& op,
                 kv::WriteBatch* batch, std::string* read_value,
                 ReadBatchScratch* reads, uint64_t* ops_done) {
  *ops_done = 1;
  switch (op.type) {
    case kv::Op::Type::kPut:
      return store->Put(gen->KeyFor(op.key_id),
                        kv::MakeValue(op.value_seed, spec.value_bytes));
    case kv::Op::Type::kBatchPut: {
      batch->Clear();
      batch->Put(gen->KeyFor(op.key_id),
                 kv::MakeValue(op.value_seed, spec.value_bytes));
      for (size_t j = 1; j < spec.batch_size; j++) {
        batch->Put(gen->KeyFor(gen->NextKeyId()),
                   kv::MakeValue(gen->NextValueSeed(), spec.value_bytes));
      }
      *ops_done = batch->Count();
      return store->Write(*batch);
    }
    case kv::Op::Type::kDelete:
      return store->Delete(gen->KeyFor(op.key_id));
    case kv::Op::Type::kGet: {
      if (spec.read_batch_size > 1) {
        // Read-side batching: one MultiGet submission covering
        // read_batch_size lookups; the engine fans them out at its
        // read_queue_depth. NotFound per key is data, like for Get.
        reads->keys.clear();
        reads->keys.push_back(gen->KeyFor(op.key_id));
        for (size_t j = 1; j < spec.read_batch_size; j++) {
          reads->keys.push_back(gen->KeyFor(gen->NextKeyId()));
        }
        reads->views.assign(reads->keys.begin(), reads->keys.end());
        const std::vector<Status> statuses =
            store->MultiGet(reads->views, &reads->values);
        *ops_done = statuses.size();
        for (const Status& s : statuses) {
          if (!s.ok() && !s.IsNotFound()) return s;
        }
        return Status::OK();
      }
      const Status s = store->Get(gen->KeyFor(op.key_id), read_value);
      return s.IsNotFound() ? Status::OK() : s;
    }
    case kv::Op::Type::kScan: {
      // Snapshot scans (scan_snapshot, or any readahead request — the
      // engines honor readahead only on the snapshot path) freeze a
      // sequence first, so the cursor tolerates concurrent writers and
      // can prefetch through read submission lanes.
      std::shared_ptr<const kv::Snapshot> snap;
      std::unique_ptr<kv::KVStore::Iterator> it;
      if (spec.scan_snapshot || spec.scan_readahead > 1) {
        auto got = store->GetSnapshot();
        if (!got.ok()) return got.status();
        snap = *std::move(got);
        kv::ReadOptions opts;
        opts.snapshot = snap.get();
        opts.readahead = spec.scan_readahead;
        it = store->NewIterator(opts);
      } else {
        it = store->NewIterator();
      }
      size_t seen = 0;
      for (it->Seek(gen->KeyFor(op.key_id));
           it->Valid() && seen < spec.scan_count; it->Next()) {
        seen++;
      }
      return it->status();
    }
  }
  return Status::OK();
}


// True for ops the pipelined writer mode (pipeline_writes) can issue
// through WriteAsync; reads and scans stay synchronous.
bool IsWriteOp(const kv::Op& op) {
  return op.type == kv::Op::Type::kPut ||
         op.type == kv::Op::Type::kBatchPut ||
         op.type == kv::Op::Type::kDelete;
}

// Fills `batch` with the entries ExecuteOp would apply for the write op
// `op` (same key and value streams) and sets *ops_done to the logical
// entry count.
void FillWriteBatch(kv::WorkloadGenerator* gen, const kv::WorkloadSpec& spec,
                    const kv::Op& op, kv::WriteBatch* batch,
                    uint64_t* ops_done) {
  *ops_done = 1;
  switch (op.type) {
    case kv::Op::Type::kPut:
      batch->SetSingle(kv::WriteBatch::EntryKind::kPut,
                       gen->KeyFor(op.key_id),
                       kv::MakeValue(op.value_seed, spec.value_bytes));
      break;
    case kv::Op::Type::kBatchPut:
      batch->Clear();
      batch->Put(gen->KeyFor(op.key_id),
                 kv::MakeValue(op.value_seed, spec.value_bytes));
      for (size_t j = 1; j < spec.batch_size; j++) {
        batch->Put(gen->KeyFor(gen->NextKeyId()),
                   kv::MakeValue(gen->NextValueSeed(), spec.value_bytes));
      }
      *ops_done = batch->Count();
      break;
    case kv::Op::Type::kDelete:
      batch->SetSingle(kv::WriteBatch::EntryKind::kDelete,
                       gen->KeyFor(op.key_id), "");
      break;
    default:
      break;
  }
}

// Bounded window of in-flight asynchronous commits for the pipelined
// writer mode (ExperimentConfig::pipeline_writes). Submit() issues the
// batch through WriteAsync and registers an OnComplete callback that
// performs the op/latency/error accounting; once `depth` commits are in
// flight the oldest handle is retired — its Wait() joins the commit's
// virtual completion time into the shared clock, which fires the
// callback. kv::AsyncCommit applies the commit inside its lane at
// submission, so the batch is reusable (and the completion time known)
// the moment Submit returns; only the clock join is deferred, which is
// what lets consecutive commits' device time overlap in virtual time.
class WritePipeline {
 public:
  // Either histogram may be null; per-entry latencies are recorded into
  // both (the per-window one resets each window, the run one never does).
  WritePipeline(kv::KVStore* store, size_t depth, Histogram* latency,
                Histogram* run_latency)
      : store_(store), depth_(std::max<size_t>(1, depth)),
        latency_(latency), run_latency_(run_latency) {}
  ~WritePipeline() { Drain(); }

  // Issues one commit covering `ops` logical entries. `submit_ns` is the
  // virtual time the op was generated at: per-entry latency spans submit
  // to the commit's own completion, not its retirement from the window.
  void Submit(const kv::WriteBatch& batch, uint64_t ops, int64_t submit_ns) {
    kv::WriteHandle h = store_->WriteAsync(batch);
    const int64_t complete_ns =
        h.complete_ns() > 0 ? h.complete_ns() : submit_ns;
    const uint64_t per_entry_ns =
        static_cast<uint64_t>(std::max<int64_t>(0, complete_ns - submit_ns)) /
        std::max<uint64_t>(1, ops);
    h.OnComplete([this, ops, per_entry_ns](const Status& s) {
      if (s.IsNoSpace()) {
        out_of_space_ = true;
        return;
      }
      if (!s.ok()) {
        if (error_.ok()) error_ = s;
        return;
      }
      ops_done_ += ops;
      if (latency_ != nullptr) latency_->Record(per_entry_ns);
      if (run_latency_ != nullptr) run_latency_->Record(per_entry_ns);
    });
    in_flight_.push_back(std::move(h));
    while (in_flight_.size() > depth_) Retire();
  }

  // Retires every in-flight commit (window boundaries and loop end), so
  // the ops/latency/error accounting is settled before it is read.
  void Drain() {
    while (!in_flight_.empty()) Retire();
  }

  // Logical entries completed since the last call; Drain() first.
  uint64_t TakeOpsDone() {
    const uint64_t n = ops_done_;
    ops_done_ = 0;
    return n;
  }

  bool out_of_space() const { return out_of_space_; }
  const Status& error() const { return error_; }

 private:
  void Retire() {
    in_flight_.front().Wait();  // joins the clock + fires the callback
    in_flight_.pop_front();
  }

  kv::KVStore* store_;
  size_t depth_;
  Histogram* latency_;
  Histogram* run_latency_;
  std::deque<kv::WriteHandle> in_flight_;
  uint64_t ops_done_ = 0;  // completed but not yet taken
  bool out_of_space_ = false;
  Status error_;  // first non-NoSpace commit failure
};

// Baselines the window math subtracts from the current counters. The
// "cum" members anchor cumulative metrics at the update-phase start; the
// "window" members anchor per-window rates, and equal the cum members for
// the multi-threaded single-aggregate-window case.
struct WindowBaselines {
  block::IoCounters io_cum;
  ssd::SmartCounters smart_cum;
  kv::KvStoreStats engine_cum;
  block::IoCounters io_window;
  ssd::SmartCounters smart_window;
  uint64_t ops_window = 0;
  uint64_t stalls_window = 0;
};

// Samples the stack's counters into one WindowSample — the ONLY place the
// paper's window metrics (rates, WA-A/WA-D, utilization, latency
// percentiles) are computed, shared by the per-window loop and the
// multi-threaded aggregate window.
WindowSample SampleWindow(const ExperimentConfig& config, Stack* stack,
                          double t0_min, double now_min, double window_sec,
                          double time_scale, uint64_t dataset_bytes,
                          uint64_t update_ops, const WindowBaselines& base,
                          const Histogram& latency) {
  const auto io = stack->iostat->counters();
  const auto smart = stack->ssd->smart();
  const auto engine = stack->store->GetStats();
  const auto fs_stats = stack->fs->GetStats();

  WindowSample w;
  w.t_minutes = (now_min - t0_min) * time_scale;
  w.kv_kops = static_cast<double>(update_ops - base.ops_window) /
              window_sec / 1000.0;
  w.dev_write_mbps =
      static_cast<double>(io.write_bytes - base.io_window.write_bytes) /
      window_sec / 1e6;
  w.dev_read_mbps =
      static_cast<double>(io.read_bytes - base.io_window.read_bytes) /
      window_sec / 1e6;
  const uint64_t user_bytes =
      engine.user_bytes_written - base.engine_cum.user_bytes_written;
  const uint64_t host_bytes = io.write_bytes - base.io_cum.write_bytes;
  const uint64_t nand_bytes =
      smart.nand_bytes_written - base.smart_cum.nand_bytes_written;
  const uint64_t host_cum =
      smart.host_bytes_written - base.smart_cum.host_bytes_written;
  w.wa_a_cum = user_bytes > 0 ? static_cast<double>(host_bytes) /
                                    static_cast<double>(user_bytes)
                              : 0;
  w.wa_d_cum = host_cum > 0 ? static_cast<double>(nand_bytes) /
                                  static_cast<double>(host_cum)
                            : 1.0;
  const uint64_t host_w =
      smart.host_bytes_written - base.smart_window.host_bytes_written;
  const uint64_t nand_w =
      smart.nand_bytes_written - base.smart_window.nand_bytes_written;
  w.wa_d_window = host_w > 0 ? static_cast<double>(nand_w) /
                                   static_cast<double>(host_w)
                             : 1.0;
  w.disk_utilization = fs_stats.Utilization() * config.partition_frac;
  w.space_amp = static_cast<double>(stack->store->DiskBytesUsed()) /
                static_cast<double>(dataset_bytes);
  w.stalls = engine.stall_count - base.stalls_window;
  w.cache_backlog_mb =
      static_cast<double>(stack->ssd->GetCacheState().occupancy_bytes) /
      1e6;
  w.op_p50_us = latency.Percentile(50) / 1000.0;
  w.op_p99_us = latency.Percentile(99) / 1000.0;
  w.op_max_us = static_cast<double>(latency.max()) / 1000.0;
  return w;
}

// Records a finished window into the result series and peaks.
void PushWindow(const WindowSample& w, ExperimentResult* result) {
  result->series.windows.push_back(w);
  result->peak_disk_utilization =
      std::max(result->peak_disk_utilization, w.disk_utilization);
  result->peak_space_amp = std::max(result->peak_space_amp, w.space_amp);
}

// Multi-threaded update phase: num_threads workers replay disjoint
// deterministic op streams (WorkloadSpec::ForThread) against the one
// store until the shared virtual clock passes the duration. Per-op
// latencies go to thread-local histograms merged into `latency` after
// the join; a "latency" here is the op's span of the shared virtual
// timeline, into which each command's submission lane joins by max —
// concurrent workers' I/O overlaps in virtual time (up to per-channel
// serialization), like independent NVMe queues. On error the first
// status is returned; on
// NoSpace the phase ends and result->ran_out_of_space is set (data, not
// error — paper Fig. 6).
Status RunUpdatePhaseConcurrent(const ExperimentConfig& config,
                                const kv::WorkloadSpec& base_spec,
                                Stack* stack, double t0_min,
                                double duration_sim_min,
                                ExperimentResult* result,
                                Histogram* latency) {
  kv::WorkloadSpec spec = base_spec;
  if (spec.scan_fraction > 0 && !spec.scan_snapshot) {
    // A LIVE iterator concurrent with writers would walk invalidated
    // state, which the engines' debug epoch checks rightly abort on.
    // Snapshot scans (--scan-while-writing) freeze a sequence per scan
    // and are safe; without them, run the scan share as point reads
    // instead of silently racing.
    std::fprintf(stderr,
                 "ptsb: [%s] scan ops are downgraded to gets at "
                 "num_threads=%zu (pass --scan-while-writing to run them "
                 "over snapshots)\n",
                 config.name.c_str(), config.num_threads);
    spec.scan_fraction = 0;
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> out_of_space{false};
  std::atomic<uint64_t> total_ops{0};
  std::mutex error_mu;
  Status first_error;  // guarded by error_mu
  std::vector<Histogram> local_latency(config.num_threads);

  auto worker = [&](size_t tid) {
    kv::WorkloadGenerator gen(spec.ForThread(tid));
    kv::WriteBatch batch;
    std::string read_value;
    ReadBatchScratch reads;
    // Pipelined writer mode: each worker keeps its own bounded window of
    // in-flight WriteAsync commits (completion accounting runs in the
    // OnComplete callbacks, so the ops land in total_ops at drain time —
    // before the aggregate window is computed after the join).
    WritePipeline pipeline(
        stack->store.get(),
        static_cast<size_t>(std::max(1, config.pipeline_depth)),
        &local_latency[tid], nullptr);
    while (!stop.load(std::memory_order_relaxed) &&
           stack->clock.NowMinutes() - t0_min < duration_sim_min) {
      const int64_t op_start_ns = stack->clock.NowNanos();
      const kv::Op op = gen.Next();
      uint64_t ops_done = 1;
      if (config.pipeline_writes && IsWriteOp(op)) {
        FillWriteBatch(&gen, spec, op, &batch, &ops_done);
        pipeline.Submit(batch, ops_done, op_start_ns);
        if (pipeline.out_of_space() || !pipeline.error().ok()) break;
        continue;  // accounting happens when the commit retires
      }
      const Status s = ExecuteOp(stack->store.get(), &gen, spec, op,
                                 &batch, &read_value, &reads, &ops_done);
      if (s.IsNoSpace()) {
        out_of_space.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (!s.ok()) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = s;
        }
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      total_ops.fetch_add(ops_done, std::memory_order_relaxed);
      local_latency[tid].Record(
          static_cast<uint64_t>(stack->clock.NowNanos() - op_start_ns) /
          std::max<uint64_t>(1, ops_done));
    }
    pipeline.Drain();
    total_ops.fetch_add(pipeline.TakeOpsDone(), std::memory_order_relaxed);
    if (pipeline.out_of_space()) {
      out_of_space.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
    }
    if (!pipeline.error().ok()) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = pipeline.error();
      }
      stop.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(config.num_threads);
  for (size_t t = 0; t < config.num_threads; t++) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) t.join();

  if (!first_error.ok()) return first_error;
  if (out_of_space.load()) result->ran_out_of_space = true;
  result->update_ops += total_ops.load();
  for (const Histogram& h : local_latency) latency->Merge(h);
  return Status::OK();
}

}  // namespace

StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const std::string&)>& progress) {
  ExperimentResult result;
  result.config = config;

  Stack stack;
  PTSB_RETURN_IF_ERROR(BuildStack(config, &stack));
  const double time_scale = static_cast<double>(config.scale);
  const uint64_t dataset_bytes = config.DatasetBytes();

  // ---- Load phase: sequential ingest (paper Section 3.2).
  kv::WorkloadSpec spec;
  spec.num_keys = config.NumKeys();
  spec.key_bytes = config.key_bytes;
  spec.value_bytes = config.value_bytes;
  spec.write_fraction = config.write_fraction;
  spec.delete_fraction = config.delete_fraction;
  spec.scan_fraction = config.scan_fraction;
  spec.batch_size = std::max<size_t>(1, config.batch_size);
  spec.read_batch_size = std::max<size_t>(1, config.read_batch_size);
  spec.scan_count = config.scan_count;
  spec.scan_snapshot = config.scan_while_writing;
  spec.scan_readahead = std::max(1, config.scan_readahead);
  spec.num_threads = std::max<size_t>(1, config.num_threads);
  spec.distribution = config.distribution;
  spec.zipf_theta = config.zipf_theta;
  spec.seed = config.seed;

  const double load_start_min = stack.clock.NowMinutes();
  {
    kv::WorkloadGenerator gen(spec);
    for (uint64_t id = 0; id < spec.num_keys; id++) {
      const Status s = stack.store->Put(gen.KeyFor(id),
                                        gen.ValueFor(SplitMix64(id ^ 777)));
      if (s.IsNoSpace()) {
        result.ran_out_of_space = true;
        break;
      }
      PTSB_RETURN_IF_ERROR(s);
    }
    if (!result.ran_out_of_space) {
      PTSB_RETURN_IF_ERROR(stack.store->Flush());
      // Let compaction debt from the bulk load settle, so the measurement
      // phase starts from a quiesced tree (the paper's plots exclude the
      // loading phase).
      PTSB_RETURN_IF_ERROR(stack.store->SettleBackgroundWork());
    }
  }
  result.load_minutes =
      (stack.clock.NowMinutes() - load_start_min) * time_scale;
  if (result.ran_out_of_space) {
    // Fig. 6: RocksDB cannot hold the two largest datasets at all.
    result.peak_disk_utilization = stack.fs->GetStats().Utilization();
    return result;
  }

  // ---- Update phase.
  const double t0_min = stack.clock.NowMinutes();
  const double window_sim_min = config.window_minutes / time_scale;
  const double duration_sim_min = config.duration_minutes / time_scale;

  // Baselines: WA metrics measure the update phase, as the paper's plots
  // do (load-phase performance is excluded from the figures).
  const auto io0 = stack.iostat->counters();
  const auto smart0 = stack.ssd->smart();
  const auto engine0 = stack.store->GetStats();

  // Whole-phase latency distribution (virtual nanoseconds per logical
  // entry) for the run-level p50/p99 report; the per-window histograms
  // reset each window, this one never does.
  Histogram run_latency;

  if (config.num_threads > 1) {
    // Concurrent update phase: the whole phase becomes ONE aggregate
    // window (sampling mid-run would race with the workers), computed
    // from the same baselines the per-window math uses.
    Histogram latency;
    PTSB_RETURN_IF_ERROR(RunUpdatePhaseConcurrent(
        config, spec, &stack, t0_min, duration_sim_min, &result, &latency));
    run_latency.Merge(latency);
    const double now_min = stack.clock.NowMinutes();
    const double window_sec = (now_min - t0_min) * 60.0;
    if (window_sec > 0 && result.update_ops > 0) {
      // One window covering the whole phase: the windowed baselines ARE
      // the phase baselines (cumulative == windowed).
      WindowBaselines base{io0, smart0, engine0, io0, smart0, 0,
                           engine0.stall_count};
      const WindowSample w =
          SampleWindow(config, &stack, t0_min, now_min, window_sec,
                       time_scale, dataset_bytes, result.update_ops, base,
                       latency);
      PushWindow(w, &result);
      if (progress != nullptr) {
        progress(StrPrintf(
            "[%s] %zu threads  t=%5.0fmin  %6.2f Kops/s (aggregate)  "
            "devW=%6.1f MB/s  WA-A=%5.2f  WA-D=%4.2f  util=%4.1f%%",
            config.name.c_str(), config.num_threads, w.t_minutes,
            w.kv_kops, w.dev_write_mbps, w.wa_a_cum, w.wa_d_cum,
            w.disk_utilization * 100));
      }
    }
  } else {
    kv::WorkloadGenerator gen(spec);
    double window_start = t0_min;
    auto io_window_start = io0;
    auto smart_window_start = smart0;
    uint64_t ops_window_start = 0;
    uint64_t stalls_window_start = 0;

    Histogram op_latency;  // per-window, in virtual nanoseconds
    std::string read_value;
    kv::WriteBatch batch;
    ReadBatchScratch reads;
    // Pipelined writer mode: write ops go through a bounded window of
    // WriteAsync commits instead of blocking one at a time. Mutations
    // are applied at submit, so the reads and scans interleaved below
    // still see every prior write without draining first; the window is
    // drained at each sampling boundary so update_ops and the latency
    // histograms are settled before SampleWindow reads them.
    WritePipeline pipeline(
        stack.store.get(),
        static_cast<size_t>(std::max(1, config.pipeline_depth)),
        &op_latency, &run_latency);
    while (stack.clock.NowMinutes() - t0_min < duration_sim_min &&
           !result.ran_out_of_space) {
      const int64_t op_start_ns = stack.clock.NowNanos();
      const kv::Op op = gen.Next();
      uint64_t ops_done = 1;
      if (config.pipeline_writes && IsWriteOp(op)) {
        FillWriteBatch(&gen, spec, op, &batch, &ops_done);
        pipeline.Submit(batch, ops_done, op_start_ns);
        if (pipeline.out_of_space()) {
          result.ran_out_of_space = true;
          break;
        }
        PTSB_RETURN_IF_ERROR(pipeline.error());
      } else {
        const Status s = ExecuteOp(stack.store.get(), &gen, spec, op,
                                   &batch, &read_value, &reads, &ops_done);
        if (s.IsNoSpace()) {
          result.ran_out_of_space = true;
          break;
        }
        PTSB_RETURN_IF_ERROR(s);
        result.update_ops += ops_done;
        // Per-entry latency: a batch is one submission covering ops_done
        // entries, so divide its elapsed time to keep the histogram in
        // the same per-op units as kv_kops.
        const uint64_t per_entry_ns =
            static_cast<uint64_t>(stack.clock.NowNanos() - op_start_ns) /
            std::max<uint64_t>(1, ops_done);
        op_latency.Record(per_entry_ns);
        run_latency.Record(per_entry_ns);
      }

      // Window boundary?
      const double now_min = stack.clock.NowMinutes();
      if (now_min - window_start >= window_sim_min) {
        pipeline.Drain();
        result.update_ops += pipeline.TakeOpsDone();
        if (pipeline.out_of_space()) {
          result.ran_out_of_space = true;
          break;
        }
        PTSB_RETURN_IF_ERROR(pipeline.error());
        const double window_sec = (now_min - window_start) * 60.0;
        WindowBaselines base{io0,
                             smart0,
                             engine0,
                             io_window_start,
                             smart_window_start,
                             ops_window_start,
                             stalls_window_start};
        const WindowSample w =
            SampleWindow(config, &stack, t0_min, now_min, window_sec,
                         time_scale, dataset_bytes, result.update_ops, base,
                         op_latency);
        op_latency.Reset();
        PushWindow(w, &result);

        if (progress != nullptr) {
          progress(StrPrintf(
              "[%s] t=%5.0fmin  %6.2f Kops/s  devW=%6.1f MB/s  WA-A=%5.2f  "
              "WA-D=%4.2f  util=%4.1f%%",
              config.name.c_str(), w.t_minutes, w.kv_kops, w.dev_write_mbps,
              w.wa_a_cum, w.wa_d_cum, w.disk_utilization * 100));
        }

        window_start = now_min;
        io_window_start = stack.iostat->counters();
        smart_window_start = stack.ssd->smart();
        ops_window_start = result.update_ops;
        stalls_window_start = stack.store->GetStats().stall_count;
      }
    }
    // Retire the commits still in flight when the duration ran out.
    pipeline.Drain();
    result.update_ops += pipeline.TakeOpsDone();
    if (pipeline.out_of_space()) result.ran_out_of_space = true;
    PTSB_RETURN_IF_ERROR(pipeline.error());
  }

  result.steady = result.series.SteadyState();
  result.throughput_cv = result.series.ThroughputCv();
  result.final_space_amp =
      static_cast<double>(stack.store->DiskBytesUsed()) /
      static_cast<double>(dataset_bytes);
  result.engine_stats = stack.store->GetStats();
  result.smart = stack.ssd->smart();
  const int64_t total_ns = stack.clock.NowNanos();
  for (const auto& ch : stack.ssd->channel_stats()) {
    result.channel_utilization.push_back(
        total_ns > 0 ? static_cast<double>(ch.busy_ns) /
                           static_cast<double>(total_ns)
                     : 0.0);
    std::array<double, sim::kNumIoClasses> by_class{};
    for (int c = 0; c < sim::kNumIoClasses; c++) {
      by_class[static_cast<size_t>(c)] =
          total_ns > 0 ? static_cast<double>(ch.class_busy_ns[c]) /
                             static_cast<double>(total_ns)
                       : 0.0;
    }
    result.channel_class_utilization.push_back(by_class);
    result.device_foreground_busy_ns +=
        ch.class_busy_ns[static_cast<int>(sim::IoClass::kForegroundRead)] +
        ch.class_busy_ns[static_cast<int>(sim::IoClass::kForegroundWrite)];
    result.device_background_busy_ns +=
        ch.class_busy_ns[static_cast<int>(sim::IoClass::kBackground)];
    result.device_preemptions += ch.preemptions;
    result.device_bg_throttled_ns += ch.bg_throttled_ns;
    for (int c = 0; c < sim::kNumIoClasses; c++) {
      result.device_class_wait_ns[static_cast<size_t>(c)] +=
          ch.class_wait_ns[c];
    }
  }
  result.op_p50_us = run_latency.Percentile(50) / 1000.0;
  result.op_p99_us = run_latency.Percentile(99) / 1000.0;
  result.op_max_us = static_cast<double>(run_latency.max()) / 1000.0;
  if (stack.trace != nullptr) {
    result.lba_fraction_untouched = stack.trace->FractionUntouched();
    result.lba_cdf = stack.trace->WriteCdf(101);
  }

  // Steady-state detection over the recorded windows (paper Section 4.1).
  SteadyStateDetector detector;
  for (const WindowSample& w : result.series.windows) {
    detector.AddWindow(w.kv_kops, w.wa_a_cum, w.wa_d_cum,
                       result.smart.host_bytes_written,
                       config.ScaledDeviceBytes());
  }
  result.reached_steady_state = detector.IsSteady();

  const Status close_status = stack.store->Close();
  if (close_status.IsNoSpace()) {
    // A store that filled the device may be unable to flush on shutdown;
    // that is data, not an error (paper Fig. 6).
    result.ran_out_of_space = true;
  } else {
    PTSB_RETURN_IF_ERROR(close_status);
  }
  return result;
}

}  // namespace ptsb::core
