#include "core/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/human.h"

namespace ptsb::core {

Report::Report(std::string title) : title_(std::move(title)) {}

void Report::AddComparison(const std::string& label, double paper,
                           double measured, const std::string& unit) {
  rows_.push_back({label, paper, measured, unit});
}

void Report::AddNote(const std::string& note) { notes_.push_back(note); }

std::string Report::Render() const {
  std::string out = "== " + title_ + " ==\n";
  if (!rows_.empty()) {
    out += StrPrintf("  %-52s %12s %12s  %-8s %s\n", "metric", "paper",
                     "measured", "unit", "ratio");
    for (const ComparisonRow& r : rows_) {
      const double ratio =
          r.paper_value != 0 ? r.measured_value / r.paper_value : 0;
      out += StrPrintf("  %-52s %12.2f %12.2f  %-8s %.2fx\n", r.label.c_str(),
                       r.paper_value, r.measured_value, r.unit.c_str(),
                       ratio);
    }
  }
  for (const std::string& n : notes_) {
    out += "  note: " + n + "\n";
  }
  return out;
}

void Report::PrintTo(FILE* out) const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string WriteResultsFile(const std::string& name,
                             const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + name;
  std::ofstream f(path);
  if (!f) return "";
  f << content;
  return path;
}

std::string SteadySummaryCsv(const std::vector<ExperimentResult>& results) {
  std::string out =
      "name,engine,profile,initial_state,dataset_frac,partition_frac,"
      "value_bytes,write_fraction,kops,dev_write_mbps,wa_a,wa_d,e2e_wa,"
      "disk_utilization,space_amp,tput_cv,out_of_space,lba_untouched\n";
  for (const ExperimentResult& r : results) {
    out += StrPrintf(
        "%s,%s,%s,%s,%.3f,%.3f,%zu,%.2f,%.3f,%.1f,%.2f,%.3f,%.2f,%.4f,%.3f,"
        "%.3f,%d,%.3f\n",
        r.config.name.c_str(), r.config.engine.c_str(),
        ssd::ProfileName(r.config.profile).c_str(),
        ssd::InitialStateName(r.config.initial_state), r.config.dataset_frac,
        r.config.partition_frac, r.config.value_bytes,
        r.config.write_fraction, r.steady.kv_kops, r.steady.dev_write_mbps,
        r.steady.wa_a_cum, r.steady.wa_d_cum, r.EndToEndWa(),
        r.steady.disk_utilization, r.final_space_amp, r.throughput_cv,
        r.ran_out_of_space ? 1 : 0, r.lba_fraction_untouched);
  }
  return out;
}

}  // namespace ptsb::core
