#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/human.h"

namespace ptsb::core {

uint64_t DrivesNeeded(const SystemProfile& system, double total_dataset_tb,
                      double target_kops) {
  const double total_bytes = total_dataset_tb * 1e12;
  uint64_t best = 0;
  for (const OperatingPoint& p : system.points) {
    if (p.dataset_bytes_per_instance == 0 || p.kops_per_instance <= 0) {
      continue;
    }
    const auto capacity_bound = static_cast<uint64_t>(std::ceil(
        total_bytes / static_cast<double>(p.dataset_bytes_per_instance)));
    const auto throughput_bound = static_cast<uint64_t>(
        std::ceil(target_kops / p.kops_per_instance));
    const uint64_t drives =
        std::max<uint64_t>(1, std::max(capacity_bound, throughput_bound));
    if (best == 0 || drives < best) best = drives;
  }
  return best;
}

CostHeatmap ComputeHeatmap(const SystemProfile& a, const SystemProfile& b,
                           const std::vector<double>& dataset_tb_axis,
                           const std::vector<double>& kops_axis) {
  CostHeatmap map;
  map.system_a = a.name;
  map.system_b = b.name;
  map.dataset_tb_axis = dataset_tb_axis;
  map.kops_axis = kops_axis;
  for (const double kops : kops_axis) {
    for (const double ds : dataset_tb_axis) {
      HeatmapCell cell;
      cell.dataset_tb = ds;
      cell.target_kops = kops;
      cell.drives_a = DrivesNeeded(a, ds, kops);
      cell.drives_b = DrivesNeeded(b, ds, kops);
      if (cell.drives_a == 0 && cell.drives_b == 0) {
        cell.winner = 0;
      } else if (cell.drives_a == 0) {
        cell.winner = 1;
      } else if (cell.drives_b == 0) {
        cell.winner = -1;
      } else if (cell.drives_a < cell.drives_b) {
        cell.winner = -1;
      } else if (cell.drives_b < cell.drives_a) {
        cell.winner = 1;
      }
      map.cells.push_back(cell);
    }
  }
  return map;
}

std::string CostHeatmap::Render() const {
  // 'A' cell: system A needs fewer drives; 'B': system B; '=': same.
  std::string out = StrPrintf("storage-cost winner: A=%s  B=%s\n",
                              system_a.c_str(), system_b.c_str());
  out += "  target Kops/s |";
  for (const double ds : dataset_tb_axis) {
    out += StrPrintf(" %4.1fTB", ds);
  }
  out += "\n  --------------+";
  for (size_t i = 0; i < dataset_tb_axis.size(); i++) out += "------";
  out += "\n";
  for (size_t k = kops_axis.size(); k-- > 0;) {
    out += StrPrintf("  %12.1f  |", kops_axis[k]);
    for (size_t d = 0; d < dataset_tb_axis.size(); d++) {
      const HeatmapCell& cell = At(k, d);
      const char* sym = cell.winner < 0 ? "A" : cell.winner > 0 ? "B" : "=";
      out += StrPrintf("   %s  ", sym);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ptsb::core
