#include "util/crc32.h"

#include <array>

namespace ptsb {

namespace {

// Slice-by-8 CRC-32C: processes 8 bytes per step, ~6-8x faster than the
// byte-at-a-time loop. The simulator checksums every SST block and page
// twice (build + verify), so this is on the simulation's critical path.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t{};
  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; s++) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32cTables kT;

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = kT.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    n--;
  }
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    w ^= crc;
    crc = kT.t[7][w & 0xff] ^ kT.t[6][(w >> 8) & 0xff] ^
          kT.t[5][(w >> 16) & 0xff] ^ kT.t[4][(w >> 24) & 0xff] ^
          kT.t[3][(w >> 32) & 0xff] ^ kT.t[2][(w >> 40) & 0xff] ^
          kT.t[1][(w >> 48) & 0xff] ^ kT.t[0][(w >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kT.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    n--;
  }
  return ~crc;
}

}  // namespace ptsb
