#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace ptsb {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0), count_(0), sum_(0), min_(UINT64_MAX), max_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<int>(value);
  const int log2 = 63 - std::countl_zero(value);
  const int sub = static_cast<int>((value >> (log2 - kSubBucketBits)) &
                                   ((1u << kSubBucketBits) - 1));
  const int bucket =
      ((log2 - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return static_cast<uint64_t>(bucket);
  const int log2 = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  return (1ull << log2) +
         (static_cast<uint64_t>(sub) << (log2 - kSubBucketBits));
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket >= kNumBuckets - 1) return UINT64_MAX;
  return BucketLowerBound(bucket + 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target && buckets_[i] > 0) {
      // Linear interpolation within the bucket.
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(
          std::min(BucketUpperBound(i), max_));
      const double before =
          static_cast<double>(cumulative - buckets_[i]);
      const double frac =
          (target - before) / static_cast<double>(buckets_[i]);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min()), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.1f min=%llu max=%llu p50=%.0f p99=%.0f\n",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max_), Percentile(50),
                Percentile(99));
  out += line;
  if (count_ == 0) return out;
  for (int i = 0; i < kNumBuckets; i++) {
    if (buckets_[i] == 0) continue;
    const double frac =
        static_cast<double>(buckets_[i]) / static_cast<double>(count_);
    const int bars = static_cast<int>(frac * 50 + 0.5);
    std::snprintf(line, sizeof(line), "[%12llu, %12llu) %8llu %5.1f%% %s\n",
                  static_cast<unsigned long long>(BucketLowerBound(i)),
                  static_cast<unsigned long long>(BucketUpperBound(i)),
                  static_cast<unsigned long long>(buckets_[i]), frac * 100.0,
                  std::string(bars, '#').c_str());
    out += line;
  }
  return out;
}

}  // namespace ptsb
