// Streaming statistics: Welford mean/variance and simple counters with
// windowed rates, used by the metrics layer.
#ifndef PTSB_UTIL_STATS_H_
#define PTSB_UTIL_STATS_H_

#include <cstdint>

namespace ptsb {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double StdDev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Coefficient of variation: stddev / mean. Used to quantify the paper's
  // throughput-variability comparison (Fig. 10).
  double Cv() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace ptsb

#endif  // PTSB_UTIL_STATS_H_
