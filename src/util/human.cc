#include "util/human.h"

#include <cstdarg>
#include <cstdio>

namespace ptsb {

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 5) {
    v /= 1024.0;
    u++;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string HumanCount(double n) {
  char buf[64];
  if (n >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f G", n / 1e9);
  } else if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f M", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f K", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

std::string HumanDuration(double seconds) {
  const auto total = static_cast<long long>(seconds);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld", total / 3600,
                (total / 60) % 60, total % 60);
  return buf;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char stack_buf[512];
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  va_end(ap);
  if (n < 0) return "";
  if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    return std::string(stack_buf, n);
  }
  std::string out(static_cast<size_t>(n), '\0');
  va_start(ap, fmt);
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
  va_end(ap);
  return out;
}

}  // namespace ptsb
