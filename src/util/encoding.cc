#include "util/encoding.h"

namespace ptsb {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64)) return false;
  if (v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const auto byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    len++;
  }
  return len;
}

}  // namespace ptsb
