// Deterministic PRNGs and workload distributions. All experiment randomness
// flows through these so runs are reproducible bit-for-bit.
#ifndef PTSB_UTIL_RANDOM_H_
#define PTSB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>

namespace ptsb {

// SplitMix64: used for seeding and synthetic value payloads.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256**-based PRNG; fast, 2^256 period, deterministic across
// platforms (no std:: distribution usage anywhere in the library).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p);

  // Fill a buffer with pseudo-random bytes.
  void FillBytes(void* dst, size_t n);

  // Skewed distribution helper: returns a value in [0, n) where smaller
  // indices are exponentially more likely (used in fault-injection tests).
  uint64_t Skewed(uint64_t n);

 private:
  uint64_t s_[4];
};

// Zipfian generator over [0, n) with parameter theta (YCSB-style).
// Used by the extension workloads; the paper's default update workload is
// uniform random.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

}  // namespace ptsb

#endif  // PTSB_UTIL_RANDOM_H_
