// Human-readable formatting helpers for reports and benches.
#ifndef PTSB_UTIL_HUMAN_H_
#define PTSB_UTIL_HUMAN_H_

#include <cstdint>
#include <string>

namespace ptsb {

// 1536 -> "1.5 KiB", 4294967296 -> "4.0 GiB".
std::string HumanBytes(uint64_t bytes);

// 1234567 -> "1.23 M", 999 -> "999".
std::string HumanCount(double n);

// Seconds to "hh:mm:ss".
std::string HumanDuration(double seconds);

// printf-style into std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ptsb

#endif  // PTSB_UTIL_HUMAN_H_
