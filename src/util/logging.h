// Minimal CHECK facilities. CHECK failures abort: in a storage engine,
// continuing past a broken invariant corrupts user data.
#ifndef PTSB_UTIL_LOGGING_H_
#define PTSB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ptsb {
namespace internal {

// Stream adapter so PTSB_CHECK(x) << "context" works; aborts in the
// destructor, at the end of the full expression.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file_, line_, expr_,
                 stream_.str().c_str());
    std::abort();
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Swallows streamed messages when the check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace ptsb

// The while-loop form keeps the builder out of the hot path and lets callers
// stream context: PTSB_CHECK(a == b) << "while merging " << name;
// The builder's destructor never returns, so the loop executes at most once.
#define PTSB_CHECK(cond)                                                    \
  while (!(cond))                                                           \
  ::ptsb::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define PTSB_CHECK_OK(status_expr)                                          \
  do {                                                                      \
    const ::ptsb::Status _ptsb_st = (status_expr);                          \
    PTSB_CHECK(_ptsb_st.ok()) << _ptsb_st.ToString();                       \
  } while (0)

#define PTSB_CHECK_EQ(a, b) \
  PTSB_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define PTSB_CHECK_NE(a, b) PTSB_CHECK((a) != (b))
#define PTSB_CHECK_LE(a, b) \
  PTSB_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PTSB_CHECK_LT(a, b) \
  PTSB_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define PTSB_CHECK_GE(a, b) \
  PTSB_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PTSB_CHECK_GT(a, b) \
  PTSB_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define PTSB_DCHECK(cond) PTSB_CHECK(cond)
#else
#define PTSB_DCHECK(cond) \
  while (false) ::ptsb::internal::NullStream()
#endif

#endif  // PTSB_UTIL_LOGGING_H_
