// CRC-32C (Castagnoli) checksums for on-"disk" format integrity (SST blocks,
// WAL records, B+Tree pages, journal entries).
#ifndef PTSB_UTIL_CRC32_H_
#define PTSB_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ptsb {

// Computes CRC-32C of data[0, n), extending an initial crc (0 to start).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(0, data.data(), data.size());
}

// Masked CRC stored in files, so that a CRC of data that embeds CRCs does not
// degenerate (same trick as LevelDB/RocksDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace ptsb

#endif  // PTSB_UTIL_CRC32_H_
