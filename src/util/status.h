// Status and StatusOr: exception-free error propagation used across all
// ptsbench modules (the core I/O paths never throw).
#ifndef PTSB_UTIL_STATUS_H_
#define PTSB_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ptsb {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIoError,
  kNoSpace,
  kNotSupported,
  kFailedPrecondition,
};

// A lightweight absl::Status-alike. Ok status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kCorruption: name = "Corruption"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kIoError: name = "IoError"; break;
      case StatusCode::kNoSpace: name = "NoSpace"; break;
      case StatusCode::kNotSupported: name = "NotSupported"; break;
      case StatusCode::kFailedPrecondition: name = "FailedPrecondition"; break;
    }
    if (message_.empty()) return name;
    return name + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// StatusOr<T>: either a value or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok());
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-OK status to the caller.
#define PTSB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ptsb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

// Assign the value of a StatusOr expression or propagate its status.
#define PTSB_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PTSB_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!PTSB_CONCAT_(_sor_, __LINE__).ok())                \
    return PTSB_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(PTSB_CONCAT_(_sor_, __LINE__)).value()

#define PTSB_CONCAT_(a, b) PTSB_CONCAT_IMPL_(a, b)
#define PTSB_CONCAT_IMPL_(a, b) a##b

}  // namespace ptsb

#endif  // PTSB_UTIL_STATUS_H_
