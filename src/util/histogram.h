// Power-of-two bucketed histogram for latencies and sizes, plus exact
// percentile support for small sample sets.
#ifndef PTSB_UTIL_HISTOGRAM_H_
#define PTSB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ptsb {

// Log-bucketed histogram with 4 sub-buckets per power of two. Records
// non-negative values (typically nanoseconds or bytes). Percentile queries
// interpolate within a bucket.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  double Percentile(double p) const;  // p in [0, 100]
  double Median() const { return Percentile(50.0); }

  // Multi-line human-readable dump (bucket bar chart).
  std::string ToString() const;

 private:
  static constexpr int kSubBucketBits = 2;
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(uint64_t value);
  static uint64_t BucketLowerBound(int bucket);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace ptsb

#endif  // PTSB_UTIL_HISTOGRAM_H_
