#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ptsb {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_++;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::Variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Cv() const {
  if (count_ == 0 || mean_ == 0) return 0;
  return StdDev() / mean_;
}

}  // namespace ptsb
