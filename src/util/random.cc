#include "util/random.h"

#include <cmath>
#include <cstring>

namespace ptsb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed all four lanes through SplitMix64 per xoshiro authors' guidance.
  uint64_t x = seed;
  for (auto& lane : s_) {
    x = SplitMix64(x);
    lane = x != 0 ? x : 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  if (n == 0) return 0;
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + Uniform(hi - lo);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

void Rng::FillBytes(void* dst, size_t n) {
  auto* out = static_cast<uint8_t*>(dst);
  while (n >= 8) {
    uint64_t v = Next();
    std::memcpy(out, &v, 8);
    out += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t v = Next();
    std::memcpy(out, &v, n);
  }
}

uint64_t Rng::Skewed(uint64_t n) {
  if (n == 0) return 0;
  const uint64_t bits = Uniform(64);
  const uint64_t r = Next() >> (63 - (bits & 63));
  return r % n;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace ptsb
