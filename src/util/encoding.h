// Little-endian fixed-width and varint encoding helpers used by the on-"disk"
// file formats (SSTables, WAL, B+Tree pages, journal).
#ifndef PTSB_UTIL_ENCODING_H_
#define PTSB_UTIL_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ptsb {

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

// Varint32/64 (LEB128, as in protobuf/LevelDB formats).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

// Length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Each Get* consumes bytes from *input on success; returns false on
// malformed input (callers surface Status::Corruption).
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

// Number of bytes PutVarint64 would emit.
int VarintLength(uint64_t v);

}  // namespace ptsb

#endif  // PTSB_UTIL_ENCODING_H_
