#include "sim/clock.h"

#include <cmath>

#include "util/logging.h"

namespace ptsb::sim {

void SimClock::Advance(int64_t delta_ns) {
  PTSB_DCHECK(delta_ns >= 0);
  now_ns_ += delta_ns;
}

void SimClock::AdvanceTo(int64_t t_ns) {
  if (t_ns > now_ns_) now_ns_ = t_ns;
}

int64_t BytesToNanos(uint64_t bytes, double bytes_per_second) {
  PTSB_DCHECK(bytes_per_second > 0);
  return static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / bytes_per_second * 1e9));
}

}  // namespace ptsb::sim
