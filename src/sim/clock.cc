#include "sim/clock.h"

#include <cmath>

#include "util/logging.h"

namespace ptsb::sim {

thread_local SimClock::Lane SimClock::lane_;

void SimClock::Advance(int64_t delta_ns) {
  PTSB_DCHECK(delta_ns >= 0);
  if (lane_.owner == this) {
    lane_.now_ns += delta_ns;
    return;
  }
  now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
}

void SimClock::AdvanceTo(int64_t t_ns) {
  if (lane_.owner == this) {
    if (t_ns > lane_.now_ns) lane_.now_ns = t_ns;
    return;
  }
  // Monotonic max: lost CAS races mean another thread already advanced
  // past t_ns, which satisfies the contract.
  int64_t now = now_ns_.load(std::memory_order_relaxed);
  while (t_ns > now && !now_ns_.compare_exchange_weak(
                           now, t_ns, std::memory_order_relaxed)) {
  }
}

bool SimClock::BeginAsync(uint32_t queue, IoClass io_class) {
  if (lane_.owner != nullptr) return false;  // nested: run in the outer lane
  lane_.owner = this;
  lane_.now_ns = now_ns_.load(std::memory_order_relaxed);
  lane_.queue = queue;
  lane_.io_class = io_class;
  return true;
}

int64_t SimClock::EndAsync() {
  PTSB_DCHECK(lane_.owner == this);
  const int64_t t = lane_.now_ns;
  lane_ = Lane{};
  return t;
}

int64_t BytesToNanos(uint64_t bytes, double bytes_per_second) {
  PTSB_DCHECK(bytes_per_second > 0);
  return static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / bytes_per_second * 1e9));
}

}  // namespace ptsb::sim
