#include "sim/clock.h"

#include <cmath>

#include "util/logging.h"

namespace ptsb::sim {

void SimClock::Advance(int64_t delta_ns) {
  PTSB_DCHECK(delta_ns >= 0);
  now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
}

void SimClock::AdvanceTo(int64_t t_ns) {
  // Monotonic max: lost CAS races mean another thread already advanced
  // past t_ns, which satisfies the contract.
  int64_t now = now_ns_.load(std::memory_order_relaxed);
  while (t_ns > now && !now_ns_.compare_exchange_weak(
                           now, t_ns, std::memory_order_relaxed)) {
  }
}

int64_t BytesToNanos(uint64_t bytes, double bytes_per_second) {
  PTSB_DCHECK(bytes_per_second > 0);
  return static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / bytes_per_second * 1e9));
}

}  // namespace ptsb::sim
