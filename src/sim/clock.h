// Virtual time. Every latency in the system (flash programs, GC, cache
// stalls, CPU cost per KV op) advances this clock, so experiments report
// "minutes" of device time while running in milliseconds of wall-clock.
//
// The counter is atomic so concurrent shards/workers (kv::ShardedStore,
// the multi-threaded experiment driver) can charge time without a data
// race.
//
// Semantics under concurrency: the clock is a shared timeline that only
// moves forward. Plain Advance() calls from all threads sum (one
// serialized timeline), but work wrapped in an async submission *lane*
// (BeginAsync/EndAsync below, used by the block layer's SubmitWrite/
// SubmitRead and by KVStore::WriteAsync) joins back via AdvanceTo — a
// monotonic max — so N submissions issued from the same instant overlap
// in virtual time instead of serializing. This is how the simulated SSD
// models multi-queue/multi-channel parallelism (see docs/SIMULATION.md).
#ifndef PTSB_SIM_CLOCK_H_
#define PTSB_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "sim/io_class.h"
#include "util/status.h"

namespace ptsb::sim {

constexpr int64_t kNanosPerMicro = 1000;
constexpr int64_t kNanosPerMilli = 1000 * 1000;
constexpr int64_t kNanosPerSecond = 1000 * 1000 * 1000;
constexpr int64_t kNanosPerMinute = 60 * kNanosPerSecond;

class SimClock {
 public:
  SimClock() = default;

  int64_t NowNanos() const {
    if (lane_.owner == this) return lane_.now_ns;
    return now_ns_.load(std::memory_order_relaxed);
  }
  double NowSeconds() const {
    return static_cast<double>(NowNanos()) / 1e9;
  }
  double NowMinutes() const { return NowSeconds() / 60.0; }

  // Advances time by a non-negative delta.
  void Advance(int64_t delta_ns);

  // Advances time to t if t is in the future; no-op otherwise.
  void AdvanceTo(int64_t t_ns);

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

  // ---- Async submission lanes -----------------------------------------
  //
  // A lane is a thread-local fork of the timeline modeling one in-flight
  // async submission. While a lane is active on the calling thread,
  // NowNanos/Advance/AdvanceTo on THIS clock read and move the
  // lane-local time (seeded with the global time at BeginAsync) instead
  // of the shared counter; other threads are unaffected. EndAsync
  // returns the lane's completion timestamp WITHOUT touching the global
  // clock — the submission's Wait() joins it back with AdvanceTo. Lanes
  // submitted from the same global instant therefore overlap: waiting on
  // all of them costs max(lane times), not the sum.
  //
  // `queue` identifies the logical submission queue; ssd::SsdDevice maps
  // it to a flash channel (queue % channels) so distinct queues can
  // proceed on distinct per-channel busy-until timelines. `io_class`
  // tags the lane with who the work is for (foreground read/write or
  // engine-internal background maintenance); the device accounts busy
  // time and bytes per class per channel.

  // Starts a lane. Returns false if the thread is already inside a lane
  // (of any clock): the nested submission then simply runs within the
  // enclosing lane, and the caller must NOT call EndAsync.
  bool BeginAsync(uint32_t queue,
                  IoClass io_class = IoClass::kForegroundWrite);

  // Ends the active lane and returns its local completion time.
  int64_t EndAsync();

  // True if the calling thread is inside a lane of this clock.
  bool InAsync() const { return lane_.owner == this; }

  // Queue id of the calling thread's active lane (0 when none): the
  // device's channel selector.
  uint32_t AsyncQueue() const {
    return lane_.owner == this ? lane_.queue : 0;
  }

  // I/O class of the calling thread's active lane; `fallback` outside a
  // lane (the device passes the command's natural class: reads default
  // to kForegroundRead, writes to kForegroundWrite).
  IoClass ActiveIoClass(IoClass fallback) const {
    return lane_.owner == this ? lane_.io_class : fallback;
  }

 private:
  struct Lane {
    const SimClock* owner = nullptr;  // null = no lane active
    int64_t now_ns = 0;
    uint32_t queue = 0;
    IoClass io_class = IoClass::kForegroundWrite;
  };
  static thread_local Lane lane_;

  std::atomic<int64_t> now_ns_{0};
};

// Outcome of one async submission: the op's status plus the virtual
// time its lane completed at (0 when no clock was involved).
struct LaneResult {
  Status status;
  int64_t complete_ns = 0;
};

// THE lane protocol, shared by every submission wrapper in the stack
// (block::BlockDevice::SubmitWrite/SubmitRead, fs::File::SubmitAppend/
// SubmitWriteAt/SubmitReadAt, kv::AsyncCommit, kv::AsyncRead): run `op`
// inside a lane on `clock` tagged with `queue` and `io_class` and
// capture its completion time. With no clock the op just runs; inside an
// enclosing lane the op charges that lane and "completes" at its current
// time (nesting collapses). Centralized so a change to lane semantics
// cannot leave one layer's timing model behind.
template <typename Op>
LaneResult RunInLane(SimClock* clock, uint32_t queue, IoClass io_class,
                     const Op& op) {
  LaneResult r;
  if (clock == nullptr || !clock->BeginAsync(queue, io_class)) {
    r.status = op();
    r.complete_ns = clock != nullptr ? clock->NowNanos() : 0;
    return r;
  }
  r.status = op();
  r.complete_ns = clock->EndAsync();
  return r;
}

// Converts a byte count and a bandwidth (bytes/s) into nanoseconds.
int64_t BytesToNanos(uint64_t bytes, double bytes_per_second);

}  // namespace ptsb::sim

#endif  // PTSB_SIM_CLOCK_H_
