// Virtual time. Every latency in the system (flash programs, GC, cache
// stalls, CPU cost per KV op) advances this clock, so experiments report
// "minutes" of device time while running in milliseconds of wall-clock.
//
// The counter is atomic so concurrent shards/workers (kv::ShardedStore,
// the multi-threaded experiment driver) can charge time without a data
// race. Semantics under concurrency: advances from all threads sum, i.e.
// the clock models one serialized device timeline shared by all shards
// (wall-clock parallelism does not compress virtual device time).
#ifndef PTSB_SIM_CLOCK_H_
#define PTSB_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ptsb::sim {

constexpr int64_t kNanosPerMicro = 1000;
constexpr int64_t kNanosPerMilli = 1000 * 1000;
constexpr int64_t kNanosPerSecond = 1000 * 1000 * 1000;
constexpr int64_t kNanosPerMinute = 60 * kNanosPerSecond;

class SimClock {
 public:
  SimClock() = default;

  int64_t NowNanos() const {
    return now_ns_.load(std::memory_order_relaxed);
  }
  double NowSeconds() const {
    return static_cast<double>(NowNanos()) / 1e9;
  }
  double NowMinutes() const { return NowSeconds() / 60.0; }

  // Advances time by a non-negative delta.
  void Advance(int64_t delta_ns);

  // Advances time to t if t is in the future; no-op otherwise.
  void AdvanceTo(int64_t t_ns);

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ns_{0};
};

// Converts a byte count and a bandwidth (bytes/s) into nanoseconds.
int64_t BytesToNanos(uint64_t bytes, double bytes_per_second);

}  // namespace ptsb::sim

#endif  // PTSB_SIM_CLOCK_H_
