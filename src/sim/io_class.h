// I/O classes: who a device command is doing work for. The paper's core
// argument is that tree structures must be judged by how their INTERNAL
// operations (compaction, checkpointing, GC) interfere with user reads
// and writes on flash — which requires the simulator to tell the three
// apart all the way down the stack. Every submission lane
// (sim::SimClock::BeginAsync) carries a class, block/fs submissions tag
// it, and ssd::SsdDevice accounts busy time and bytes per class per
// channel, so interference is measurable instead of folded into one
// timeline.
#ifndef PTSB_SIM_IO_CLASS_H_
#define PTSB_SIM_IO_CLASS_H_

namespace ptsb::sim {

enum class IoClass : int {
  kForegroundRead = 0,   // user point/range reads (Get, MultiGet, scans)
  kForegroundWrite = 1,  // user commits (WAL/journal appends, flushes)
  kBackground = 2,       // engine maintenance: compaction, checkpoint, GC
};

inline constexpr int kNumIoClasses = 3;

inline const char* IoClassName(IoClass c) {
  switch (c) {
    case IoClass::kForegroundRead:
      return "fg-read";
    case IoClass::kForegroundWrite:
      return "fg-write";
    case IoClass::kBackground:
      return "background";
  }
  return "?";
}

}  // namespace ptsb::sim

#endif  // PTSB_SIM_IO_CLASS_H_
