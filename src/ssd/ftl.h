// Page-mapped flash translation layer. This is deliberately a *metadata only*
// model: it tracks logical-to-physical mappings, per-block valid counts,
// free blocks, and garbage-collection work, but stores no data (page
// contents live in SsdDevice's content store, keyed by logical address, so
// GC relocations cost simulated time but no memory traffic).
//
// Device-level write amplification (WA-D), the central metric of the paper,
// is *emergent* here: it is nand_pages_written / host_pages_written, where
// nand writes include GC relocations.
#ifndef PTSB_SSD_FTL_H_
#define PTSB_SSD_FTL_H_

#include <cstdint>
#include <vector>

#include "ssd/config.h"
#include "util/status.h"

namespace ptsb::ssd {

class FlashTranslationLayer {
 public:
  explicit FlashTranslationLayer(const FlashGeometry& geometry,
                                 bool gc_separate_open_block = true,
                                 int host_open_blocks = 1);

  FlashTranslationLayer(const FlashTranslationLayer&) = delete;
  FlashTranslationLayer& operator=(const FlashTranslationLayer&) = delete;

  // Work performed by one host operation, for the timing model.
  struct WorkDone {
    uint64_t host_pages = 0;       // pages programmed on behalf of the host
    uint64_t gc_read_pages = 0;    // valid pages read by GC
    uint64_t gc_write_pages = 0;   // valid pages re-programmed by GC
    uint64_t blocks_erased = 0;

    void Add(const WorkDone& o) {
      host_pages += o.host_pages;
      gc_read_pages += o.gc_read_pages;
      gc_write_pages += o.gc_write_pages;
      blocks_erased += o.blocks_erased;
    }
  };

  // Writes one logical page; may trigger garbage collection.
  WorkDone HostWrite(uint64_t lpn);

  // Discards one logical page (no-op if unmapped).
  void Trim(uint64_t lpn);

  bool IsMapped(uint64_t lpn) const;

  // Cumulative counters.
  struct Stats {
    uint64_t host_pages_written = 0;
    uint64_t gc_pages_relocated = 0;
    uint64_t blocks_erased = 0;
    uint64_t pages_trimmed = 0;
    uint64_t valid_pages = 0;
    uint64_t free_blocks = 0;
    uint64_t physical_blocks = 0;
    uint64_t nand_pages_written() const {
      return host_pages_written + gc_pages_relocated;
    }
  };
  Stats GetStats() const;

  // Cumulative device write amplification; 1.0 before any GC.
  double DeviceWriteAmplification() const;

  const FlashGeometry& geometry() const { return geometry_; }

  // Verifies every internal invariant (mapping bijectivity, valid counts,
  // bucket membership, free-block cleanliness, counter conservation).
  // O(physical pages); used by tests and debug assertions.
  Status CheckConsistency() const;

 private:
  static constexpr uint32_t kUnmapped = UINT32_MAX;
  static constexpr uint32_t kNoBlock = UINT32_MAX;

  struct OpenBlock {
    uint32_t block = kNoBlock;
    uint32_t next_page = 0;  // next free page index within the block
  };

  // Programs lpn into the given open point; returns pages programmed (1).
  void Program(uint64_t lpn, OpenBlock* open, WorkDone* work, bool is_gc);
  void Invalidate(uint64_t lpn);
  // Picks the sealed block with the fewest valid pages and reclaims it.
  void CollectOnce(WorkDone* work);
  void MaybeCollect(WorkDone* work);
  uint32_t TakeFreeBlock();
  void Seal(uint32_t block);

  // Valid-count bucket maintenance for greedy victim selection.
  void BucketInsert(uint32_t block);
  void BucketErase(uint32_t block);
  void BucketMove(uint32_t block, uint32_t old_count);

  FlashGeometry geometry_;
  bool gc_separate_open_block_;
  uint64_t pages_per_block_;
  uint64_t logical_pages_;
  uint64_t physical_blocks_;
  uint64_t gc_low_watermark_blocks_;

  std::vector<uint32_t> l2p_;          // logical page -> physical page
  std::vector<uint32_t> p2l_;          // physical page -> logical page
  std::vector<uint32_t> block_valid_;  // valid pages per block

  // Greedy GC support: sealed blocks bucketed by valid count.
  // buckets_[c] holds sealed blocks with exactly c valid pages.
  std::vector<std::vector<uint32_t>> buckets_;
  std::vector<uint32_t> bucket_pos_;   // block -> index within its bucket
  std::vector<uint8_t> in_bucket_;     // block -> is sealed (bucketed)
  uint64_t min_bucket_hint_ = 0;       // lowest possibly-non-empty bucket

  std::vector<uint32_t> free_blocks_;
  std::vector<OpenBlock> host_open_;  // striped round-robin
  size_t host_open_cursor_ = 0;
  OpenBlock gc_open_;

  // Counters.
  uint64_t host_pages_written_ = 0;
  uint64_t gc_pages_relocated_ = 0;
  uint64_t blocks_erased_ = 0;
  uint64_t pages_trimmed_ = 0;
  uint64_t valid_pages_ = 0;
};

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_FTL_H_
