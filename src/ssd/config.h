// Geometry and timing parameters of the simulated flash SSD.
#ifndef PTSB_SSD_CONFIG_H_
#define PTSB_SSD_CONFIG_H_

#include <array>
#include <cstdint>
#include <string>

#include "sim/io_class.h"

namespace ptsb::ssd {

// Flash geometry. "Logical" is the host-visible LBA space; "physical" adds
// the hardware over-provisioning the vendor ships (Section 2.2.2 of the
// paper: "SSD manufacturers always over-provision SSDs by a certain
// amount").
struct FlashGeometry {
  uint64_t page_bytes = 4096;
  uint64_t pages_per_block = 256;
  uint64_t logical_bytes = 4ull << 30;  // host-visible capacity

  // Extra physical capacity as a fraction of logical capacity.
  double hardware_op_frac = 0.12;

  // GC starts when free blocks drop below this fraction of physical blocks
  // and runs until it climbs back above 2x the threshold.
  double gc_low_watermark_frac = 0.02;

  uint64_t LogicalPages() const { return logical_bytes / page_bytes; }
  uint64_t BlockBytes() const { return page_bytes * pages_per_block; }
  uint64_t PhysicalBlocks() const {
    const double physical_bytes =
        static_cast<double>(logical_bytes) * (1.0 + hardware_op_frac);
    return static_cast<uint64_t>(physical_bytes / static_cast<double>(BlockBytes()));
  }
  uint64_t PhysicalPages() const { return PhysicalBlocks() * pages_per_block; }
};

// Timing model. The flash backend (programs, GC reads, erases) is a single
// server whose busy time is tracked on the virtual clock; the write-back
// cache acks host writes quickly until it fills, after which host writes
// stall on the backend drain — this is the mechanism behind the SSD2 stall
// behavior in Fig. 10 of the paper.
struct SsdTiming {
  // Host interface (bus) bandwidth for transfers into the device cache.
  double host_write_bw = 1.8e9;  // bytes/s
  // Latency to acknowledge one host write command once cache space exists.
  // Models the per-command overhead that penalizes small synchronous writes.
  int64_t write_ack_latency_ns = 20'000;
  // Flash program (drain) bandwidth: how fast cache contents reach flash.
  double program_bw = 550e6;  // bytes/s
  // Read latency (per command) and bandwidth.
  int64_t read_latency_ns = 90'000;
  double read_bw = 2.1e9;  // bytes/s
  // Block erase time charged to the backend during GC. Defaults to zero:
  // vendor sustained-write bandwidth specs already absorb erase overhead
  // (parallel dies); keep it as an explicit knob for the FTL ablation
  // bench.
  int64_t erase_latency_ns = 0;
  // Flash read bandwidth used by GC relocations.
  double gc_read_bw = 2.1e9;
  // Write-back cache capacity. 0 disables the cache (every write goes at
  // program_bw directly).
  uint64_t cache_bytes = 256ull << 20;
  // FLUSH/FUA command latency.
  int64_t flush_latency_ns = 20'000;
  // Fraction of the backend backlog that delays a host read (reads are
  // prioritized over programs, but not perfectly).
  double read_interference = 0.05;
};

struct SsdConfig {
  std::string name = "ssd";
  FlashGeometry geometry;
  SsdTiming timing;
  // If true, GC relocations write into a dedicated open block (hot/cold
  // separation); otherwise they share the host open blocks.
  bool gc_separate_open_block = true;
  // Number of concurrently-open host blocks, filled round-robin per page.
  // Models die-level striping: consecutive host writes land in different
  // erase blocks, so each block mixes data written over a longer time
  // span (and therefore with different lifetimes). This mixing is what
  // makes log-structured writers still incur device GC (paper Section
  // 4.2's counterintuitive WA-D ~2 for RocksDB).
  int host_open_blocks = 8;

  // Number of independent flash channels, each with its own busy-until
  // timeline (host ack/transfer + program/GC backend). A command issued
  // on submission queue q serializes only on channel q % channels, so
  // async submissions to distinct channels overlap in virtual time — the
  // device-internal parallelism of Roh et al. (see PAPERS.md and
  // docs/SIMULATION.md). Synchronous callers (no submission lane) always
  // use channel 0, so channels = 1 reproduces the single-server model
  // exactly.
  int channels = 1;

  // ---- Inter-class QoS scheduling (per channel) -----------------------
  // The three knobs below enable the per-channel scheduler between
  // sim::IoClass lanes (docs/SIMULATION.md, "Inter-class scheduling").
  // All default to off, in which case backend commands are scheduled
  // FIFO on one busy-until timeline per channel — byte-identical timing
  // to the pre-QoS device.

  // Preemption quantum for background backend work. A contiguous
  // background service period is divided into slices of this many
  // nanoseconds; a foreground command arriving mid-period starts at the
  // next slice boundary instead of waiting the period out, so its
  // scheduling delay behind background work is bounded by one quantum.
  // 0 = background runs to completion (FIFO).
  int64_t background_slice_ns = 0;

  // Service weights per sim::IoClass {fg-read, fg-write, background}.
  // At a preemption point, a foreground command of backend cost C lets
  // the displaced background work interleave up to C * w_bg / w_fg of
  // its backlog inside the foreground window, so background is not
  // starved under sustained foreground load. Any weight 0 = strict
  // foreground priority (no interleave).
  std::array<int, sim::kNumIoClasses> class_weights = {0, 0, 0};

  // Token-bucket admission limit for background host I/O bytes (writes
  // and reads), in MB/s (decimal). Bucket capacity is 10 ms worth of
  // tokens (at least 1 MiB); a background command that finds the bucket
  // empty waits for the refill before the device even accepts it
  // (ChannelStats::bg_throttled_ns). 0 = unlimited.
  double background_rate_mbps = 0;

  // True when any QoS knob is set; the device then routes backend
  // scheduling through the inter-class scheduler.
  bool QosEnabled() const {
    return background_slice_ns > 0 || background_rate_mbps > 0;
  }
};

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_CONFIG_H_
