// SsdDevice: a simulated flash SSD behind the BlockDevice interface.
//
// It combines:
//  - the FTL (mapping + garbage collection, from which WA-D emerges),
//  - a sparse content store keyed by *logical* page (GC moves no data),
//  - a timing model: host-interface transfer, per-command ack latency,
//    a write-back cache that drains into flash at the program bandwidth,
//    and N per-channel "backend" timelines shared by programs, GC reads
//    and erases (config.channels; one channel = the single serialized
//    server of the original model). A command issued on submission queue
//    q (sim::SimClock::AsyncQueue, set by the block layer's Submit API)
//    serializes on channel q % channels only, so async submissions to
//    distinct channels overlap in virtual time. When the cache is full,
//    host writes stall until the backend catches up — reproducing the
//    sustained-write cliff and the bursty stalls of consumer drives
//    (paper Sections 4.1 and 4.7),
//  - SMART-style counters (host vs NAND bytes written) used to measure
//    device write amplification exactly as the paper does.
#ifndef PTSB_SSD_SSD_DEVICE_H_
#define PTSB_SSD_SSD_DEVICE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "block/block_device.h"
#include "sim/clock.h"
#include "sim/io_class.h"
#include "ssd/config.h"
#include "ssd/ftl.h"

namespace ptsb::ssd {

// SMART-like attribute snapshot.
struct SmartCounters {
  uint64_t host_bytes_written = 0;
  uint64_t host_bytes_read = 0;
  uint64_t nand_bytes_written = 0;
  uint64_t blocks_erased = 0;
  uint64_t pages_trimmed = 0;

  // Cumulative device write amplification (paper Section 2.2.3).
  double WaD() const {
    if (host_bytes_written == 0) return 1.0;
    return static_cast<double>(nand_bytes_written) /
           static_cast<double>(host_bytes_written);
  }
};

class SsdDevice : public block::BlockDevice {
 public:
  SsdDevice(const SsdConfig& config, sim::SimClock* clock);
  ~SsdDevice() override;

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // BlockDevice interface.
  uint64_t lba_bytes() const override { return config_.geometry.page_bytes; }
  uint64_t num_lbas() const override {
    return config_.geometry.LogicalPages();
  }
  sim::SimClock* clock() const override { return clock_; }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override;

  SmartCounters smart() const {
    std::lock_guard<std::mutex> lock(mu_);
    return smart_;
  }
  const FlashTranslationLayer& ftl() const { return *ftl_; }
  const SsdConfig& config() const { return config_; }

  // Dynamic state for diagnostics.
  struct CacheState {
    uint64_t occupancy_bytes = 0;
    int64_t backend_lag_ns = 0;  // how far the busiest channel is behind
  };

  // Cumulative virtual time charged by category (diagnostics).
  struct TimeBreakdown {
    int64_t read_ns = 0;
    int64_t read_interference_ns = 0;
    int64_t write_host_ns = 0;   // ack + bus transfer
    int64_t write_stall_ns = 0;  // cache-full waits
    uint64_t read_commands = 0;
    uint64_t write_commands = 0;
  };
  TimeBreakdown time_breakdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_;
  }
  CacheState GetCacheState() const;

  // Per-channel accounting, for the per-channel utilization report:
  // busy_ns is the backend time the channel has actually spent busy as
  // of now (programs, GC relocations, erases; scheduled work that has
  // not elapsed yet — backlog past the current clock — is excluded, so
  // busy_ns / elapsed virtual time is a true utilization <= 1).
  // commands counts backend work items enqueued.
  //
  // scheduled_ns is the CUMULATIVE backend work ever scheduled on the
  // channel, backlog included. Unlike busy_ns it is a pure function of
  // the command byte stream — independent of submission timing, queues
  // and lanes — so two runs of the same logical workload must agree on
  // it exactly even when their foreground/background scheduling differs
  // (the conservation check in bench/micro_read.cc).
  //
  // The per-class arrays (indexed by sim::IoClass) attribute the
  // channel's occupancy to who submitted it: backend work (programs, GC,
  // erases) plus read occupancy, bytes moved, and commands, per class.
  // Device-internal GC triggered by a host write is charged to that
  // write's class (it inflates that command's channel time).
  // class_busy_ns is backlog-adjusted like busy_ns (the unserved backend
  // tail is deducted from the backend classes pro rata; read occupancy
  // is always fully elapsed, since every read is waited out), so the
  // per-class values are true utilizations and sum to at most the
  // elapsed backend + read busy time.
  //
  // The QoS counters below are populated when config.QosEnabled():
  // class_scheduled_ns is the per-class split of scheduled_ns (backlog
  // included — the per-class conservation invariant: a pure function of
  // the command byte stream, identical across QoS settings);
  // class_wait_ns accumulates scheduling delay imposed on each class by
  // the inter-class scheduler (time between a command becoming ready
  // behind its own class and actually starting, plus any interleaved
  // grant stretched into it); preemptions counts foreground commands
  // that cut a background service period short at a slice boundary;
  // bg_throttled_ns is time background host writes spent waiting on the
  // token-bucket admission limiter.
  struct ChannelStats {
    int64_t busy_ns = 0;
    uint64_t commands = 0;
    int64_t scheduled_ns = 0;
    std::array<int64_t, sim::kNumIoClasses> class_busy_ns{};
    std::array<uint64_t, sim::kNumIoClasses> class_bytes{};
    std::array<uint64_t, sim::kNumIoClasses> class_commands{};
    std::array<int64_t, sim::kNumIoClasses> class_scheduled_ns{};
    std::array<int64_t, sim::kNumIoClasses> class_wait_ns{};
    uint64_t preemptions = 0;
    int64_t bg_throttled_ns = 0;
  };
  int num_channels() const { return static_cast<int>(channels_.size()); }
  std::vector<ChannelStats> channel_stats() const;

  // Memory actually allocated for page contents (diagnostics).
  uint64_t ContentMemoryBytes() const;

 private:
  // One flash channel: an independent backend busy-until timeline (for
  // programs/GC/erases), an independent READ busy-until timeline (the
  // channel's read pipeline: reads submitted concurrently to the same
  // channel serialize on it, reads on distinct channels overlap — for
  // synchronous callers, who always wait each read out, it never moves
  // past the clock, so the pre-async timing is reproduced exactly), and
  // cumulative accounting, total and per I/O class.
  struct Channel {
    int64_t busy_until_ns = 0;
    int64_t busy_ns = 0;  // cumulative scheduled backend work
    uint64_t commands = 0;
    int64_t read_busy_until_ns = 0;
    // Backend (programs/GC/erases, scheduled) and read-pipeline
    // occupancy, separately per class: reads carry no backlog, so the
    // backlog adjustment in channel_stats() applies to the backend
    // share only.
    std::array<int64_t, sim::kNumIoClasses> class_backend_ns{};
    std::array<int64_t, sim::kNumIoClasses> class_read_ns{};
    std::array<uint64_t, sim::kNumIoClasses> class_bytes{};
    std::array<uint64_t, sim::kNumIoClasses> class_commands{};

    // ---- Inter-class scheduler state (config.QosEnabled() only) ----
    // Per-class busy-until timelines; busy_until_ns above stays their
    // max so the cache-stall and backlog logic is scheduler-agnostic.
    std::array<int64_t, sim::kNumIoClasses> class_until_ns{};
    // Booked background service periods [start, end), ascending. A
    // booking that starts within one slice of the previous period's end
    // extends it (one busy episode: sub-quantum pauses in a background
    // pipeline must not restart the slice grid), others open a new
    // period. Lanes run at different local times, so
    // background work is routinely booked ahead of the foreground
    // clock; a foreground command must distinguish "inside a booked
    // background period" (wait for the next slice boundary of that
    // period's grid) from "in a genuine idle gap" (start immediately).
    // Periods the foreground has moved past are pruned at its next
    // booking.
    std::deque<std::pair<int64_t, int64_t>> bg_periods;
    // Background work displaced by foreground preemption that has not
    // yet been re-booked: added to the start of the next background
    // booking, so span-level delay materializes without rewriting
    // already-booked completion times.
    int64_t bg_debt_ns = 0;
    // Token bucket for background host-write admission. tokens < 0
    // marks "never used" (filled to capacity on first use).
    int64_t bucket_tokens = -1;
    int64_t bucket_stamp_ns = 0;
    // QoS counters (see ChannelStats).
    std::array<int64_t, sim::kNumIoClasses> class_wait_ns{};
    uint64_t preemptions = 0;
    int64_t bg_throttled_ns = 0;
  };

  void CopyIn(uint64_t lpn, const uint8_t* src);
  void CopyOut(uint64_t lpn, uint8_t* dst) const;
  uint8_t* ChunkFor(uint64_t lpn, bool create);

  // The channel the current command serializes on: the active submission
  // lane's queue id mod channels (queue 0 — and thus channel 0 — for
  // synchronous callers outside any lane).
  Channel& ActiveChannel();

  // Timing helpers.
  void DrainCache(int64_t now_ns);
  // Blocks (advances the current timeline) until `bytes` fit in the cache.
  void WaitForCacheSpace(uint64_t bytes, Channel* channel);
  // Appends backend work to `channel`; `cached_bytes` > 0 ties a cache
  // entry to its completion. `cls`/`bytes` feed the per-class
  // accounting. With QoS off the work is booked FIFO at
  // max(now, busy_until); with QoS on it goes through QosSchedule.
  // `service_start_ns`, if non-null, receives the time the channel
  // begins serving this item.
  void EnqueueBackend(Channel* channel, int64_t cost_ns,
                      uint64_t cached_bytes, sim::IoClass cls,
                      uint64_t bytes, int64_t* service_start_ns = nullptr);
  int64_t BackendBacklogNanos(const Channel& channel) const;

  // ---- Inter-class QoS scheduler (config_.QosEnabled() only) ----
  // Books `cost_ns` of backend work for `cls`, applying slice-bounded
  // foreground preemption, weighted interleave and background debt.
  // Returns the service start; *end_ns receives the completion time
  // (start + cost + any interleaved background grant).
  int64_t QosSchedule(Channel* channel, sim::IoClass cls, int64_t cost_ns,
                      int64_t* end_ns);
  // Earliest time a foreground command ready at `base` can claim the
  // backend. Inside a booked background period: the next slice boundary
  // of that period's grid (or the period's end, whichever is sooner;
  // with no slice configured, behind ALL booked background, FIFO-
  // style). In an idle gap: `base` itself. Sets *preempts when it cuts
  // a background period short.
  int64_t QosForegroundStart(const Channel& channel, int64_t base,
                             bool* preempts) const;
  // Token-bucket admission for background host writes: returns how long
  // the caller must wait before `bytes` are admitted (0 if the bucket
  // covers them), debiting the bucket.
  int64_t TokenBucketWaitNanos(Channel* channel, uint64_t bytes);

  SsdConfig config_;
  sim::SimClock* clock_;
  // QoS knobs resolved at construction.
  const bool qos_;
  const int64_t bg_rate_bps_;        // 0 = unlimited
  const int64_t bucket_cap_bytes_;   // token-bucket capacity
  // The device's command-processing lock: Read/Write/Trim/Flush bodies
  // and the snapshot accessors serialize here (the firmware command
  // queue). The filesystem above takes no lock for data I/O — two files'
  // commands contend only at this point, never on an fs-wide mutex.
  // Virtual-time lane state lives in the clock (atomic / thread-local),
  // so holding mu_ across clock calls is safe; lock order is
  // SimpleFs::mu_ -> this (never the reverse).
  mutable std::mutex mu_;
  std::unique_ptr<FlashTranslationLayer> ftl_;

  // Sparse content store: fixed-size chunks of pages, allocated on first
  // data write. A chunk left null reads as zeros.
  static constexpr uint64_t kPagesPerChunk = 256;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;

  // Write-back cache: (backend completion time, bytes), ordered by
  // completion time (a min-heap — with multiple channels, completions
  // are not FIFO across channels).
  using CacheEntry = std::pair<int64_t, uint64_t>;
  std::priority_queue<CacheEntry, std::vector<CacheEntry>,
                      std::greater<CacheEntry>>
      cache_;
  uint64_t cache_occupancy_ = 0;
  std::vector<Channel> channels_;

  SmartCounters smart_;
  TimeBreakdown times_;
};

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_SSD_DEVICE_H_
