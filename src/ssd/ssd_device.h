// SsdDevice: a simulated flash SSD behind the BlockDevice interface.
//
// It combines:
//  - the FTL (mapping + garbage collection, from which WA-D emerges),
//  - a sparse content store keyed by *logical* page (GC moves no data),
//  - a timing model: host-interface transfer, per-command ack latency,
//    a write-back cache that drains into flash at the program bandwidth,
//    and a single "backend" timeline shared by programs, GC reads and
//    erases. When the cache is full, host writes stall until the backend
//    catches up — reproducing the sustained-write cliff and the bursty
//    stalls of consumer drives (paper Sections 4.1 and 4.7),
//  - SMART-style counters (host vs NAND bytes written) used to measure
//    device write amplification exactly as the paper does.
#ifndef PTSB_SSD_SSD_DEVICE_H_
#define PTSB_SSD_SSD_DEVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "block/block_device.h"
#include "sim/clock.h"
#include "ssd/config.h"
#include "ssd/ftl.h"

namespace ptsb::ssd {

// SMART-like attribute snapshot.
struct SmartCounters {
  uint64_t host_bytes_written = 0;
  uint64_t host_bytes_read = 0;
  uint64_t nand_bytes_written = 0;
  uint64_t blocks_erased = 0;
  uint64_t pages_trimmed = 0;

  // Cumulative device write amplification (paper Section 2.2.3).
  double WaD() const {
    if (host_bytes_written == 0) return 1.0;
    return static_cast<double>(nand_bytes_written) /
           static_cast<double>(host_bytes_written);
  }
};

class SsdDevice : public block::BlockDevice {
 public:
  SsdDevice(const SsdConfig& config, sim::SimClock* clock);
  ~SsdDevice() override;

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // BlockDevice interface.
  uint64_t lba_bytes() const override { return config_.geometry.page_bytes; }
  uint64_t num_lbas() const override {
    return config_.geometry.LogicalPages();
  }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override;

  SmartCounters smart() const { return smart_; }
  const FlashTranslationLayer& ftl() const { return *ftl_; }
  const SsdConfig& config() const { return config_; }
  sim::SimClock* clock() const { return clock_; }

  // Dynamic state for diagnostics.
  struct CacheState {
    uint64_t occupancy_bytes = 0;
    int64_t backend_lag_ns = 0;  // how far the flash backend is behind
  };

  // Cumulative virtual time charged by category (diagnostics).
  struct TimeBreakdown {
    int64_t read_ns = 0;
    int64_t read_interference_ns = 0;
    int64_t write_host_ns = 0;   // ack + bus transfer
    int64_t write_stall_ns = 0;  // cache-full waits
    uint64_t read_commands = 0;
    uint64_t write_commands = 0;
  };
  const TimeBreakdown& time_breakdown() const { return times_; }
  CacheState GetCacheState() const;

  // Memory actually allocated for page contents (diagnostics).
  uint64_t ContentMemoryBytes() const;

 private:
  void CopyIn(uint64_t lpn, const uint8_t* src);
  void CopyOut(uint64_t lpn, uint8_t* dst) const;
  uint8_t* ChunkFor(uint64_t lpn, bool create);

  // Timing helpers.
  void DrainCache(int64_t now_ns);
  // Blocks (advances the clock) until `bytes` fit in the cache.
  void WaitForCacheSpace(uint64_t bytes);
  // Appends backend work; `cached_bytes` > 0 ties a cache entry to its
  // completion.
  void EnqueueBackend(int64_t cost_ns, uint64_t cached_bytes);
  int64_t BackendBacklogNanos() const;

  SsdConfig config_;
  sim::SimClock* clock_;
  std::unique_ptr<FlashTranslationLayer> ftl_;

  // Sparse content store: fixed-size chunks of pages, allocated on first
  // data write. A chunk left null reads as zeros.
  static constexpr uint64_t kPagesPerChunk = 256;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;

  // Write-back cache: FIFO of (backend completion time, bytes).
  std::deque<std::pair<int64_t, uint64_t>> cache_fifo_;
  uint64_t cache_occupancy_ = 0;
  int64_t backend_busy_until_ = 0;

  SmartCounters smart_;
  TimeBreakdown times_;
};

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_SSD_DEVICE_H_
