// SsdDevice: a simulated flash SSD behind the BlockDevice interface.
//
// It combines:
//  - the FTL (mapping + garbage collection, from which WA-D emerges),
//  - a sparse content store keyed by *logical* page (GC moves no data),
//  - a timing model: host-interface transfer, per-command ack latency,
//    a write-back cache that drains into flash at the program bandwidth,
//    and N per-channel "backend" timelines shared by programs, GC reads
//    and erases (config.channels; one channel = the single serialized
//    server of the original model). A command issued on submission queue
//    q (sim::SimClock::AsyncQueue, set by the block layer's Submit API)
//    serializes on channel q % channels only, so async submissions to
//    distinct channels overlap in virtual time. When the cache is full,
//    host writes stall until the backend catches up — reproducing the
//    sustained-write cliff and the bursty stalls of consumer drives
//    (paper Sections 4.1 and 4.7),
//  - SMART-style counters (host vs NAND bytes written) used to measure
//    device write amplification exactly as the paper does.
#ifndef PTSB_SSD_SSD_DEVICE_H_
#define PTSB_SSD_SSD_DEVICE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "block/block_device.h"
#include "sim/clock.h"
#include "sim/io_class.h"
#include "ssd/config.h"
#include "ssd/ftl.h"

namespace ptsb::ssd {

// SMART-like attribute snapshot.
struct SmartCounters {
  uint64_t host_bytes_written = 0;
  uint64_t host_bytes_read = 0;
  uint64_t nand_bytes_written = 0;
  uint64_t blocks_erased = 0;
  uint64_t pages_trimmed = 0;

  // Cumulative device write amplification (paper Section 2.2.3).
  double WaD() const {
    if (host_bytes_written == 0) return 1.0;
    return static_cast<double>(nand_bytes_written) /
           static_cast<double>(host_bytes_written);
  }
};

class SsdDevice : public block::BlockDevice {
 public:
  SsdDevice(const SsdConfig& config, sim::SimClock* clock);
  ~SsdDevice() override;

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // BlockDevice interface.
  uint64_t lba_bytes() const override { return config_.geometry.page_bytes; }
  uint64_t num_lbas() const override {
    return config_.geometry.LogicalPages();
  }
  sim::SimClock* clock() const override { return clock_; }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override;

  SmartCounters smart() const {
    std::lock_guard<std::mutex> lock(mu_);
    return smart_;
  }
  const FlashTranslationLayer& ftl() const { return *ftl_; }
  const SsdConfig& config() const { return config_; }

  // Dynamic state for diagnostics.
  struct CacheState {
    uint64_t occupancy_bytes = 0;
    int64_t backend_lag_ns = 0;  // how far the busiest channel is behind
  };

  // Cumulative virtual time charged by category (diagnostics).
  struct TimeBreakdown {
    int64_t read_ns = 0;
    int64_t read_interference_ns = 0;
    int64_t write_host_ns = 0;   // ack + bus transfer
    int64_t write_stall_ns = 0;  // cache-full waits
    uint64_t read_commands = 0;
    uint64_t write_commands = 0;
  };
  TimeBreakdown time_breakdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_;
  }
  CacheState GetCacheState() const;

  // Per-channel accounting, for the per-channel utilization report:
  // busy_ns is the backend time the channel has actually spent busy as
  // of now (programs, GC relocations, erases; scheduled work that has
  // not elapsed yet — backlog past the current clock — is excluded, so
  // busy_ns / elapsed virtual time is a true utilization <= 1).
  // commands counts backend work items enqueued.
  //
  // scheduled_ns is the CUMULATIVE backend work ever scheduled on the
  // channel, backlog included. Unlike busy_ns it is a pure function of
  // the command byte stream — independent of submission timing, queues
  // and lanes — so two runs of the same logical workload must agree on
  // it exactly even when their foreground/background scheduling differs
  // (the conservation check in bench/micro_read.cc).
  //
  // The per-class arrays (indexed by sim::IoClass) attribute the
  // channel's occupancy to who submitted it: backend work (programs, GC,
  // erases) plus read occupancy, bytes moved, and commands, per class.
  // Device-internal GC triggered by a host write is charged to that
  // write's class (it inflates that command's channel time).
  // class_busy_ns is backlog-adjusted like busy_ns (the unserved backend
  // tail is deducted from the backend classes pro rata; read occupancy
  // is always fully elapsed, since every read is waited out), so the
  // per-class values are true utilizations and sum to at most the
  // elapsed backend + read busy time.
  struct ChannelStats {
    int64_t busy_ns = 0;
    uint64_t commands = 0;
    int64_t scheduled_ns = 0;
    std::array<int64_t, sim::kNumIoClasses> class_busy_ns{};
    std::array<uint64_t, sim::kNumIoClasses> class_bytes{};
    std::array<uint64_t, sim::kNumIoClasses> class_commands{};
  };
  int num_channels() const { return static_cast<int>(channels_.size()); }
  std::vector<ChannelStats> channel_stats() const;

  // Memory actually allocated for page contents (diagnostics).
  uint64_t ContentMemoryBytes() const;

 private:
  // One flash channel: an independent backend busy-until timeline (for
  // programs/GC/erases), an independent READ busy-until timeline (the
  // channel's read pipeline: reads submitted concurrently to the same
  // channel serialize on it, reads on distinct channels overlap — for
  // synchronous callers, who always wait each read out, it never moves
  // past the clock, so the pre-async timing is reproduced exactly), and
  // cumulative accounting, total and per I/O class.
  struct Channel {
    int64_t busy_until_ns = 0;
    int64_t busy_ns = 0;  // cumulative scheduled backend work
    uint64_t commands = 0;
    int64_t read_busy_until_ns = 0;
    // Backend (programs/GC/erases, scheduled) and read-pipeline
    // occupancy, separately per class: reads carry no backlog, so the
    // backlog adjustment in channel_stats() applies to the backend
    // share only.
    std::array<int64_t, sim::kNumIoClasses> class_backend_ns{};
    std::array<int64_t, sim::kNumIoClasses> class_read_ns{};
    std::array<uint64_t, sim::kNumIoClasses> class_bytes{};
    std::array<uint64_t, sim::kNumIoClasses> class_commands{};
  };

  void CopyIn(uint64_t lpn, const uint8_t* src);
  void CopyOut(uint64_t lpn, uint8_t* dst) const;
  uint8_t* ChunkFor(uint64_t lpn, bool create);

  // The channel the current command serializes on: the active submission
  // lane's queue id mod channels (queue 0 — and thus channel 0 — for
  // synchronous callers outside any lane).
  Channel& ActiveChannel();

  // Timing helpers.
  void DrainCache(int64_t now_ns);
  // Blocks (advances the current timeline) until `bytes` fit in the cache.
  void WaitForCacheSpace(uint64_t bytes, Channel* channel);
  // Appends backend work to `channel`; `cached_bytes` > 0 ties a cache
  // entry to its completion. `cls`/`bytes` feed the per-class accounting.
  void EnqueueBackend(Channel* channel, int64_t cost_ns,
                      uint64_t cached_bytes, sim::IoClass cls,
                      uint64_t bytes);
  int64_t BackendBacklogNanos(const Channel& channel) const;

  SsdConfig config_;
  sim::SimClock* clock_;
  // The device's command-processing lock: Read/Write/Trim/Flush bodies
  // and the snapshot accessors serialize here (the firmware command
  // queue). The filesystem above takes no lock for data I/O — two files'
  // commands contend only at this point, never on an fs-wide mutex.
  // Virtual-time lane state lives in the clock (atomic / thread-local),
  // so holding mu_ across clock calls is safe; lock order is
  // SimpleFs::mu_ -> this (never the reverse).
  mutable std::mutex mu_;
  std::unique_ptr<FlashTranslationLayer> ftl_;

  // Sparse content store: fixed-size chunks of pages, allocated on first
  // data write. A chunk left null reads as zeros.
  static constexpr uint64_t kPagesPerChunk = 256;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;

  // Write-back cache: (backend completion time, bytes), ordered by
  // completion time (a min-heap — with multiple channels, completions
  // are not FIFO across channels).
  using CacheEntry = std::pair<int64_t, uint64_t>;
  std::priority_queue<CacheEntry, std::vector<CacheEntry>,
                      std::greater<CacheEntry>>
      cache_;
  uint64_t cache_occupancy_ = 0;
  std::vector<Channel> channels_;

  SmartCounters smart_;
  TimeBreakdown times_;
};

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_SSD_DEVICE_H_
