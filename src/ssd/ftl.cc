#include "ssd/ftl.h"

#include <algorithm>

#include "util/logging.h"

namespace ptsb::ssd {

FlashTranslationLayer::FlashTranslationLayer(const FlashGeometry& geometry,
                                             bool gc_separate_open_block,
                                             int host_open_blocks)
    : geometry_(geometry),
      gc_separate_open_block_(gc_separate_open_block),
      pages_per_block_(geometry.pages_per_block),
      logical_pages_(geometry.LogicalPages()),
      physical_blocks_(geometry.PhysicalBlocks()) {
  PTSB_CHECK_GT(pages_per_block_, 0u);
  PTSB_CHECK_GT(logical_pages_, 0u);
  // The drive needs physical spare space to write at all: at least the
  // logical space plus a handful of blocks for open/GC bootstrap.
  const uint64_t logical_blocks =
      (logical_pages_ + pages_per_block_ - 1) / pages_per_block_;
  PTSB_CHECK_GE(physical_blocks_, logical_blocks + 4)
      << " hardware over-provisioning too small";
  // Clamp the stripe width so tiny (test-scale) devices keep enough spare
  // blocks for GC to make progress.
  const uint64_t spare_blocks = physical_blocks_ - logical_blocks;
  const auto max_stripe = std::max<uint64_t>(1, spare_blocks / 2);
  host_open_.resize(std::max<uint64_t>(
      1, std::min<uint64_t>(static_cast<uint64_t>(std::max(1, host_open_blocks)),
                            max_stripe)));

  gc_low_watermark_blocks_ = std::max<uint64_t>(
      host_open_.size() + 2,
      static_cast<uint64_t>(geometry.gc_low_watermark_frac *
                            static_cast<double>(physical_blocks_)));
  l2p_.assign(logical_pages_, kUnmapped);
  p2l_.assign(physical_blocks_ * pages_per_block_, kUnmapped);
  block_valid_.assign(physical_blocks_, 0);
  buckets_.resize(pages_per_block_ + 1);
  bucket_pos_.assign(physical_blocks_, 0);
  in_bucket_.assign(physical_blocks_, 0);

  free_blocks_.reserve(physical_blocks_);
  // Stacked so that block 0 is taken first (purely cosmetic determinism).
  for (uint64_t b = physical_blocks_; b-- > 0;) {
    free_blocks_.push_back(static_cast<uint32_t>(b));
  }
}

void FlashTranslationLayer::BucketInsert(uint32_t block) {
  PTSB_DCHECK(!in_bucket_[block]);
  const uint32_t count = block_valid_[block];
  bucket_pos_[block] = static_cast<uint32_t>(buckets_[count].size());
  buckets_[count].push_back(block);
  in_bucket_[block] = 1;
  min_bucket_hint_ = std::min<uint64_t>(min_bucket_hint_, count);
}

void FlashTranslationLayer::BucketErase(uint32_t block) {
  PTSB_DCHECK(in_bucket_[block]);
  const uint32_t count = block_valid_[block];
  auto& bucket = buckets_[count];
  const uint32_t pos = bucket_pos_[block];
  PTSB_DCHECK(bucket[pos] == block);
  bucket[pos] = bucket.back();
  bucket_pos_[bucket[pos]] = pos;
  bucket.pop_back();
  in_bucket_[block] = 0;
}

void FlashTranslationLayer::BucketMove(uint32_t block, uint32_t old_count) {
  PTSB_DCHECK(in_bucket_[block]);
  auto& bucket = buckets_[old_count];
  const uint32_t pos = bucket_pos_[block];
  PTSB_DCHECK(bucket[pos] == block);
  bucket[pos] = bucket.back();
  bucket_pos_[bucket[pos]] = pos;
  bucket.pop_back();
  const uint32_t count = block_valid_[block];
  bucket_pos_[block] = static_cast<uint32_t>(buckets_[count].size());
  buckets_[count].push_back(block);
  min_bucket_hint_ = std::min<uint64_t>(min_bucket_hint_, count);
}

uint32_t FlashTranslationLayer::TakeFreeBlock() {
  PTSB_CHECK(!free_blocks_.empty())
      << "FTL out of free blocks: GC failed to make progress";
  const uint32_t b = free_blocks_.back();
  free_blocks_.pop_back();
  return b;
}

void FlashTranslationLayer::Seal(uint32_t block) { BucketInsert(block); }

void FlashTranslationLayer::Invalidate(uint64_t lpn) {
  const uint32_t old_ppn = l2p_[lpn];
  if (old_ppn == kUnmapped) return;
  const auto block = static_cast<uint32_t>(old_ppn / pages_per_block_);
  p2l_[old_ppn] = kUnmapped;
  l2p_[lpn] = kUnmapped;
  const uint32_t old_count = block_valid_[block];
  PTSB_DCHECK(old_count > 0);
  block_valid_[block] = old_count - 1;
  valid_pages_--;
  if (in_bucket_[block]) BucketMove(block, old_count);
}

void FlashTranslationLayer::Program(uint64_t lpn, OpenBlock* open,
                                    WorkDone* work, bool is_gc) {
  if (open->block == kNoBlock) {
    open->block = TakeFreeBlock();
    open->next_page = 0;
  }
  const uint64_t ppn =
      static_cast<uint64_t>(open->block) * pages_per_block_ + open->next_page;
  open->next_page++;
  l2p_[lpn] = static_cast<uint32_t>(ppn);
  p2l_[ppn] = static_cast<uint32_t>(lpn);
  block_valid_[open->block]++;
  valid_pages_++;
  if (is_gc) {
    gc_pages_relocated_++;
    work->gc_write_pages++;
  } else {
    host_pages_written_++;
    work->host_pages++;
  }
  if (open->next_page == pages_per_block_) {
    Seal(open->block);
    open->block = kNoBlock;
    open->next_page = 0;
  }
}

FlashTranslationLayer::WorkDone FlashTranslationLayer::HostWrite(uint64_t lpn) {
  PTSB_DCHECK(lpn < logical_pages_);
  WorkDone work;
  Invalidate(lpn);
  // Stripe host writes across the open blocks (die parallelism).
  OpenBlock* open = &host_open_[host_open_cursor_];
  host_open_cursor_ = (host_open_cursor_ + 1) % host_open_.size();
  Program(lpn, open, &work, /*is_gc=*/false);
  MaybeCollect(&work);
  return work;
}

void FlashTranslationLayer::Trim(uint64_t lpn) {
  PTSB_DCHECK(lpn < logical_pages_);
  if (l2p_[lpn] == kUnmapped) return;
  Invalidate(lpn);
  pages_trimmed_++;
}

bool FlashTranslationLayer::IsMapped(uint64_t lpn) const {
  PTSB_DCHECK(lpn < logical_pages_);
  return l2p_[lpn] != kUnmapped;
}

void FlashTranslationLayer::MaybeCollect(WorkDone* work) {
  // Hysteresis: once below the low watermark, collect until 2x above it so
  // GC runs in bursts rather than one block at a time. At extreme
  // utilization the 2x target may be unachievable (every sealed block fully
  // valid); GC then stops early — the pigeonhole principle guarantees that
  // a reclaimable victim reappears before the free list empties.
  if (free_blocks_.size() >= gc_low_watermark_blocks_) return;
  while (free_blocks_.size() < 2 * gc_low_watermark_blocks_) {
    uint64_t c = min_bucket_hint_;
    while (c < buckets_.size() && buckets_[c].empty()) c++;
    min_bucket_hint_ = c;
    if (c >= pages_per_block_) break;  // nothing reclaimable right now
    CollectOnce(work);
  }
}

void FlashTranslationLayer::CollectOnce(WorkDone* work) {
  // Greedy victim: sealed block with the fewest valid pages.
  uint64_t c = min_bucket_hint_;
  while (c < buckets_.size() && buckets_[c].empty()) c++;
  PTSB_CHECK(c < pages_per_block_) << "no reclaimable block for GC";
  min_bucket_hint_ = c;
  const uint32_t victim = buckets_[c].back();
  BucketErase(victim);

  // Relocate valid pages.
  OpenBlock* open = gc_separate_open_block_ ? &gc_open_ : &host_open_[0];
  const uint64_t base = static_cast<uint64_t>(victim) * pages_per_block_;
  for (uint64_t i = 0; i < pages_per_block_; i++) {
    const uint32_t lpn = p2l_[base + i];
    if (lpn == kUnmapped) continue;
    work->gc_read_pages++;
    // Invalidate the old copy directly (victim is not bucketed anymore).
    p2l_[base + i] = kUnmapped;
    l2p_[lpn] = kUnmapped;
    block_valid_[victim]--;
    valid_pages_--;
    Program(lpn, open, work, /*is_gc=*/true);
  }
  PTSB_DCHECK(block_valid_[victim] == 0);
  blocks_erased_++;
  work->blocks_erased++;
  free_blocks_.push_back(victim);
}

FlashTranslationLayer::Stats FlashTranslationLayer::GetStats() const {
  Stats s;
  s.host_pages_written = host_pages_written_;
  s.gc_pages_relocated = gc_pages_relocated_;
  s.blocks_erased = blocks_erased_;
  s.pages_trimmed = pages_trimmed_;
  s.valid_pages = valid_pages_;
  s.free_blocks = free_blocks_.size();
  s.physical_blocks = physical_blocks_;
  return s;
}

double FlashTranslationLayer::DeviceWriteAmplification() const {
  if (host_pages_written_ == 0) return 1.0;
  return static_cast<double>(host_pages_written_ + gc_pages_relocated_) /
         static_cast<double>(host_pages_written_);
}

Status FlashTranslationLayer::CheckConsistency() const {
  // l2p/p2l bijectivity.
  uint64_t mapped = 0;
  for (uint64_t lpn = 0; lpn < logical_pages_; lpn++) {
    const uint32_t ppn = l2p_[lpn];
    if (ppn == kUnmapped) continue;
    mapped++;
    if (ppn >= p2l_.size() || p2l_[ppn] != lpn) {
      return Status::Corruption("l2p/p2l mismatch");
    }
  }
  uint64_t reverse_mapped = 0;
  std::vector<uint32_t> valid_count(physical_blocks_, 0);
  for (uint64_t ppn = 0; ppn < p2l_.size(); ppn++) {
    const uint32_t lpn = p2l_[ppn];
    if (lpn == kUnmapped) continue;
    reverse_mapped++;
    if (lpn >= logical_pages_ || l2p_[lpn] != ppn) {
      return Status::Corruption("p2l/l2p mismatch");
    }
    valid_count[ppn / pages_per_block_]++;
  }
  if (mapped != reverse_mapped || mapped != valid_pages_) {
    return Status::Corruption("valid page count mismatch");
  }
  // Per-block counts and bucket membership.
  std::vector<uint8_t> is_free(physical_blocks_, 0);
  for (const uint32_t b : free_blocks_) {
    if (is_free[b]) return Status::Corruption("block in free list twice");
    is_free[b] = 1;
  }
  for (uint32_t b = 0; b < physical_blocks_; b++) {
    if (valid_count[b] != block_valid_[b]) {
      return Status::Corruption("block valid count mismatch");
    }
    if (is_free[b] && block_valid_[b] != 0) {
      return Status::Corruption("free block has valid pages");
    }
    bool is_open = (b == gc_open_.block);
    for (const OpenBlock& ob : host_open_) is_open = is_open || (b == ob.block);
    const bool should_be_bucketed = !is_free[b] && !is_open;
    if (static_cast<bool>(in_bucket_[b]) != should_be_bucketed) {
      return Status::Corruption("bucket membership mismatch");
    }
    if (in_bucket_[b]) {
      const auto& bucket = buckets_[block_valid_[b]];
      if (bucket_pos_[b] >= bucket.size() || bucket[bucket_pos_[b]] != b) {
        return Status::Corruption("bucket position mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace ptsb::ssd
