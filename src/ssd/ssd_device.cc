#include "ssd/ssd_device.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace ptsb::ssd {

SsdDevice::SsdDevice(const SsdConfig& config, sim::SimClock* clock)
    : config_(config),
      clock_(clock),
      qos_(config.QosEnabled()),
      bg_rate_bps_(static_cast<int64_t>(config.background_rate_mbps * 1e6)),
      bucket_cap_bytes_(std::max<int64_t>(bg_rate_bps_ / 100, 1 << 20)),
      ftl_(std::make_unique<FlashTranslationLayer>(
          config.geometry, config.gc_separate_open_block,
          config.host_open_blocks)) {
  const uint64_t chunks =
      (config_.geometry.LogicalPages() + kPagesPerChunk - 1) / kPagesPerChunk;
  chunks_.resize(chunks);
  channels_.resize(static_cast<size_t>(std::max(1, config_.channels)));
}

SsdDevice::~SsdDevice() = default;

uint8_t* SsdDevice::ChunkFor(uint64_t lpn, bool create) {
  const uint64_t idx = lpn / kPagesPerChunk;
  if (!chunks_[idx]) {
    if (!create) return nullptr;
    const uint64_t bytes = kPagesPerChunk * config_.geometry.page_bytes;
    chunks_[idx] = std::make_unique<uint8_t[]>(bytes);
    std::memset(chunks_[idx].get(), 0, bytes);
  }
  return chunks_[idx].get();
}

void SsdDevice::CopyIn(uint64_t lpn, const uint8_t* src) {
  const uint64_t page = config_.geometry.page_bytes;
  uint8_t* chunk = ChunkFor(lpn, /*create=*/true);
  std::memcpy(chunk + (lpn % kPagesPerChunk) * page, src, page);
}

void SsdDevice::CopyOut(uint64_t lpn, uint8_t* dst) const {
  const uint64_t page = config_.geometry.page_bytes;
  const uint64_t idx = lpn / kPagesPerChunk;
  const uint8_t* chunk = chunks_[idx].get();
  if (chunk == nullptr) {
    std::memset(dst, 0, page);
  } else {
    std::memcpy(dst, chunk + (lpn % kPagesPerChunk) * page, page);
  }
}

SsdDevice::Channel& SsdDevice::ActiveChannel() {
  const uint32_t queue = clock_->AsyncQueue();
  return channels_[queue % channels_.size()];
}

void SsdDevice::DrainCache(int64_t now_ns) {
  while (!cache_.empty() && cache_.top().first <= now_ns) {
    cache_occupancy_ -= cache_.top().second;
    cache_.pop();
  }
}

void SsdDevice::WaitForCacheSpace(uint64_t bytes, Channel* channel) {
  const uint64_t cache_cap = config_.timing.cache_bytes;
  if (cache_cap == 0) {
    // No cache: the host write is synchronous with the channel's backend.
    clock_->AdvanceTo(channel->busy_until_ns);
    return;
  }
  DrainCache(clock_->NowNanos());
  // An oversized request is admitted once the cache is empty.
  while (cache_occupancy_ > 0 && cache_occupancy_ + bytes > cache_cap) {
    // Stall until the oldest cached entry reaches flash.
    clock_->AdvanceTo(cache_.top().first);
    DrainCache(clock_->NowNanos());
  }
}

void SsdDevice::EnqueueBackend(Channel* channel, int64_t cost_ns,
                               uint64_t cached_bytes, sim::IoClass cls,
                               uint64_t bytes, int64_t* service_start_ns) {
  int64_t start;
  int64_t end;
  if (!qos_) {
    start = std::max(clock_->NowNanos(), channel->busy_until_ns);
    end = start + cost_ns;
    channel->busy_until_ns = end;
  } else {
    start = QosSchedule(channel, cls, cost_ns, &end);
  }
  channel->busy_ns += cost_ns;
  channel->commands++;
  const auto c = static_cast<size_t>(cls);
  channel->class_backend_ns[c] += cost_ns;
  channel->class_bytes[c] += bytes;
  channel->class_commands[c]++;
  if (cached_bytes > 0) {
    cache_.emplace(end, cached_bytes);
    cache_occupancy_ += cached_bytes;
  }
  if (service_start_ns != nullptr) *service_start_ns = start;
}

int64_t SsdDevice::QosForegroundStart(const Channel& channel, int64_t base,
                                      bool* preempts) const {
  if (preempts != nullptr) *preempts = false;
  const int64_t bg_until =
      channel.class_until_ns[static_cast<size_t>(sim::IoClass::kBackground)];
  if (base >= bg_until) return base;  // background idle at base
  const int64_t slice = config_.background_slice_ns;
  if (slice <= 0) {
    // No preemption configured: wait all booked background out (FIFO).
    return bg_until;
  }
  // Find the booked background period containing `base`. If `base`
  // falls in a gap between periods (background lanes book ahead of the
  // foreground clock), the channel is genuinely idle and the command
  // starts immediately.
  for (const auto& [s, e] : channel.bg_periods) {
    if (base >= e) continue;
    if (base < s) break;
    // Next slice boundary of this period's grid, capped at its end.
    const int64_t boundary = s + (base - s + slice - 1) / slice * slice;
    if (boundary < e) {
      if (preempts != nullptr) *preempts = true;
      return boundary;
    }
    return e;
  }
  return base;
}

int64_t SsdDevice::QosSchedule(Channel* channel, sim::IoClass cls,
                               int64_t cost_ns, int64_t* end_ns) {
  const int64_t now = clock_->NowNanos();
  auto& until = channel->class_until_ns;
  const auto bg = static_cast<size_t>(sim::IoClass::kBackground);
  const auto fr = static_cast<size_t>(sim::IoClass::kForegroundRead);
  const auto fw = static_cast<size_t>(sim::IoClass::kForegroundWrite);
  int64_t start;
  int64_t end;
  if (cls == sim::IoClass::kBackground) {
    // Background waits out every class (foreground has priority), then
    // pays down any debt left by preemptions since its last booking.
    const int64_t ready = std::max({now, until[bg], until[fr], until[fw]});
    start = ready + channel->bg_debt_ns;
    channel->bg_debt_ns = 0;
    channel->class_wait_ns[bg] += start - std::max(now, until[bg]);
    end = start + cost_ns;
    until[bg] = end;
    // Record the booked period: extend the current one if the gap since
    // it is shorter than a quantum (same busy episode — a sub-quantum
    // pause in a compaction's read-process-write pipeline must not
    // restart the slice grid, or long slices would never reach a
    // boundary), else open a new one anchoring a fresh grid. Swallowed
    // gaps and the bounding coalesce of the two oldest periods both
    // overestimate background occupancy slightly, never under.
    auto& periods = channel->bg_periods;
    const int64_t episode_gap =
        std::max<int64_t>(config_.background_slice_ns, 1);
    if (!periods.empty() && start - periods.back().second < episode_gap) {
      periods.back().second = end;
    } else {
      periods.emplace_back(start, end);
      if (periods.size() > 256) {
        periods[1].first = periods[0].first;
        periods.pop_front();
      }
    }
  } else {
    const auto c = static_cast<size_t>(cls);
    // Foreground classes serialize behind each other, then preempt any
    // booked background period at the next slice boundary. Periods the
    // foreground has fully moved past can no longer affect it — prune.
    const int64_t base = std::max({now, until[fr], until[fw]});
    auto& periods = channel->bg_periods;
    while (!periods.empty() && periods.front().second <= base) {
      periods.pop_front();
    }
    bool preempts = false;
    start = QosForegroundStart(*channel, base, &preempts);
    if (preempts) channel->preemptions++;
    // Weighted interleave: let the displaced background serve up to
    // cost * w_bg / w_fg inside this window so it is not starved.
    int64_t grant = 0;
    const int w_fg = config_.class_weights[c];
    const int w_bg = config_.class_weights[bg];
    if (w_fg > 0 && w_bg > 0) {
      const int64_t bg_backlog =
          std::max<int64_t>(0, until[bg] - start) + channel->bg_debt_ns;
      grant = std::min(bg_backlog, cost_ns * w_bg / w_fg);
    }
    end = start + cost_ns + grant;
    channel->class_wait_ns[c] += (start - base) + grant;
    // Booked background time this window overlaps, minus the
    // interleaved grant (background service rendered inside it),
    // becomes debt carried to the next background booking: the span
    // the foreground cut into finishes that much later.
    int64_t displaced = 0;
    for (const auto& [s, e] : periods) {
      if (s >= end) break;
      displaced += std::max<int64_t>(0, std::min(e, end) - std::max(s, start));
    }
    channel->bg_debt_ns =
        std::max<int64_t>(0, channel->bg_debt_ns + displaced - grant);
    until[c] = end;
  }
  channel->busy_until_ns = std::max(channel->busy_until_ns, end);
  if (end_ns != nullptr) *end_ns = end;
  return start;
}

int64_t SsdDevice::TokenBucketWaitNanos(Channel* channel, uint64_t bytes) {
  const int64_t now = clock_->NowNanos();
  if (channel->bucket_tokens < 0) {  // first use: full bucket
    channel->bucket_tokens = bucket_cap_bytes_;
    channel->bucket_stamp_ns = now;
  }
  // Refill. Lanes can observe non-monotonic local times; never refill
  // backwards. The product (elapsed * rate) overflows int64 on long
  // runs, so widen.
  if (now > channel->bucket_stamp_ns) {
    const auto refill = static_cast<int64_t>(
        static_cast<__int128>(now - channel->bucket_stamp_ns) * bg_rate_bps_ /
        sim::kNanosPerSecond);
    channel->bucket_tokens =
        std::min(bucket_cap_bytes_, channel->bucket_tokens + refill);
    channel->bucket_stamp_ns = now;
  }
  const auto need = static_cast<int64_t>(bytes);
  if (channel->bucket_tokens >= need) {
    channel->bucket_tokens -= need;
    return 0;
  }
  // Wait exactly until the deficit has refilled (ceiling division, so
  // the wait is never one nanosecond short); the bucket restarts empty
  // with its stamp at the admission time.
  const int64_t deficit = need - channel->bucket_tokens;
  const int64_t wait =
      (deficit * sim::kNanosPerSecond + bg_rate_bps_ - 1) / bg_rate_bps_;
  channel->bucket_tokens = 0;
  channel->bucket_stamp_ns = std::max(channel->bucket_stamp_ns, now) + wait;
  return wait;
}

int64_t SsdDevice::BackendBacklogNanos(const Channel& channel) const {
  return std::max<int64_t>(0, channel.busy_until_ns - clock_->NowNanos());
}

Status SsdDevice::Read(uint64_t lba, uint64_t count, uint8_t* dst) {
  if (lba + count > num_lbas()) {
    return Status::InvalidArgument("read beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t page = config_.geometry.page_bytes;
  const uint64_t bytes = count * page;
  // Content.
  for (uint64_t i = 0; i < count; i++) {
    CopyOut(lba + i, dst + i * page);
  }
  // Timing: command latency + transfer + a slice of backend interference.
  Channel& channel = ActiveChannel();
  const auto cls =
      clock_->ActiveIoClass(sim::IoClass::kForegroundRead);
  int64_t cost = config_.timing.read_latency_ns +
                 sim::BytesToNanos(bytes, config_.timing.read_bw);
  if (qos_ && cls == sim::IoClass::kBackground) {
    // Under QoS a background read is a schedulable span exactly like a
    // background program: it passes the admission token bucket and
    // occupies the background timeline, so a compaction's whole
    // read-process-write pipeline books one contiguous period a
    // tightened slice can preempt — not just its output writes. The
    // scheduler wait replaces the interference heuristic.
    if (bg_rate_bps_ > 0) {
      const int64_t throttle = TokenBucketWaitNanos(&channel, bytes);
      channel.bg_throttled_ns += throttle;
      clock_->Advance(throttle);
    }
    int64_t end = 0;
    QosSchedule(&channel, cls, cost, &end);
    times_.read_ns += cost;
    times_.read_commands++;
    const auto bg = static_cast<size_t>(cls);
    channel.class_read_ns[bg] += cost;
    channel.class_bytes[bg] += bytes;
    channel.class_commands[bg]++;
    clock_->AdvanceTo(end);
    DrainCache(clock_->NowNanos());
    smart_.host_bytes_read += bytes;
    return Status::OK();
  }
  // Reads queue behind a slice of the channel's program backlog; bounded,
  // since real firmware prioritizes reads over background programs.
  // Under QoS a foreground read sees only the delay the scheduler would
  // actually impose on it (its own class backlog plus at most one
  // background quantum), not the whole backend backlog.
  int64_t backlog_ns = BackendBacklogNanos(channel);
  if (qos_ && cls != sim::IoClass::kBackground) {
    const int64_t now = clock_->NowNanos();
    const int64_t base = std::max(
        {now,
         channel.class_until_ns[static_cast<size_t>(
             sim::IoClass::kForegroundRead)],
         channel.class_until_ns[static_cast<size_t>(
             sim::IoClass::kForegroundWrite)]});
    backlog_ns = QosForegroundStart(channel, base, nullptr) - now;
  }
  const auto interference = std::min(
      static_cast<int64_t>(config_.timing.read_interference *
                           static_cast<double>(backlog_ns)),
      5 * config_.timing.read_latency_ns);
  cost += interference;
  times_.read_ns += cost;
  times_.read_interference_ns += interference;
  times_.read_commands++;
  // The command occupies the channel's read pipeline: concurrent reads
  // (submission lanes) to the SAME channel serialize behind each other,
  // reads on distinct channels overlap. A synchronous caller always
  // waits each read out, so for it start == now and this is exactly the
  // old Advance(cost).
  const int64_t start =
      std::max(clock_->NowNanos(), channel.read_busy_until_ns);
  channel.read_busy_until_ns = start + cost;
  const auto c = static_cast<size_t>(cls);
  channel.class_read_ns[c] += cost;
  channel.class_bytes[c] += bytes;
  channel.class_commands[c]++;
  clock_->AdvanceTo(start + cost);
  DrainCache(clock_->NowNanos());
  smart_.host_bytes_read += bytes;
  return Status::OK();
}

Status SsdDevice::Write(uint64_t lba, uint64_t count, const uint8_t* src) {
  if (lba + count > num_lbas()) {
    return Status::InvalidArgument("write beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t page = config_.geometry.page_bytes;
  Channel& channel = ActiveChannel();
  // Process in bounded batches so cache admission interleaves with large
  // writes the way real transfers do. Batches must fit well inside the
  // cache, or admission degrades to stop-and-wait.
  uint64_t batch_bytes = 1u << 20;
  if (config_.timing.cache_bytes > 0) {
    batch_bytes = std::min(batch_bytes, config_.timing.cache_bytes / 4);
  }
  const uint64_t batch_pages = std::max<uint64_t>(1, batch_bytes / page);
  uint64_t done = 0;
  bool first_command = true;
  const auto cls = clock_->ActiveIoClass(sim::IoClass::kForegroundWrite);
  // With QoS and no write cache, admission is deferred: the command is
  // scheduled first and the host then waits until the channel reaches
  // it (its service start), instead of waiting for the whole backend to
  // drain — this is what lets a sliced schedule bound foreground waits.
  const bool qos_sync_backend = qos_ && config_.timing.cache_bytes == 0;
  while (done < count) {
    const uint64_t n = std::min(batch_pages, count - done);
    const uint64_t bytes = n * page;

    // Token-bucket admission pacing for background writes (QoS).
    if (qos_ && bg_rate_bps_ > 0 && cls == sim::IoClass::kBackground) {
      const int64_t throttle = TokenBucketWaitNanos(&channel, bytes);
      if (throttle > 0) {
        channel.bg_throttled_ns += throttle;
        clock_->Advance(throttle);
      }
    }

    // Admission into the device cache (may stall).
    const int64_t stall_t0 = clock_->NowNanos();
    if (!qos_sync_backend) {
      WaitForCacheSpace(bytes, &channel);
      times_.write_stall_ns += clock_->NowNanos() - stall_t0;
    }

    // FTL work for these pages.
    FlashTranslationLayer::WorkDone work;
    for (uint64_t i = 0; i < n; i++) {
      const uint64_t lpn = lba + done + i;
      work.Add(ftl_->HostWrite(lpn));
      if (src != nullptr) CopyIn(lpn, src + (done + i) * page);
    }

    // Backend cost: GC first (it makes room), then the host program.
    // Device-internal GC is charged to the class of the write that
    // triggered it.
    const auto& t = config_.timing;
    int64_t gc_cost =
        sim::BytesToNanos(work.gc_read_pages * page, t.gc_read_bw) +
        sim::BytesToNanos(work.gc_write_pages * page, t.program_bw) +
        static_cast<int64_t>(work.blocks_erased) * t.erase_latency_ns;
    int64_t service_start = -1;
    if (gc_cost > 0) {
      EnqueueBackend(&channel, gc_cost, 0, cls,
                     (work.gc_read_pages + work.gc_write_pages) * page,
                     &service_start);
    }
    int64_t program_start = 0;
    EnqueueBackend(&channel, sim::BytesToNanos(bytes, t.program_bw), bytes,
                   cls, bytes, &program_start);
    if (service_start < 0) service_start = program_start;
    if (qos_sync_backend) {
      // No cache: the host write is synchronous with the channel's
      // backend reaching this command. (The FIFO equivalent — waiting
      // out busy_until before booking — lives in WaitForCacheSpace.)
      clock_->AdvanceTo(service_start);
      times_.write_stall_ns += clock_->NowNanos() - stall_t0;
    }

    // Host-side cost: ack latency (once per command) + bus transfer.
    int64_t host_cost = sim::BytesToNanos(bytes, t.host_write_bw);
    if (first_command) {
      host_cost += t.write_ack_latency_ns;
      first_command = false;
      times_.write_commands++;
    }
    times_.write_host_ns += host_cost;
    clock_->Advance(host_cost);
    DrainCache(clock_->NowNanos());

    smart_.host_bytes_written += bytes;
    done += n;
  }
  // Refresh NAND counters from the FTL.
  const auto stats = ftl_->GetStats();
  smart_.nand_bytes_written = stats.nand_pages_written() * page;
  smart_.blocks_erased = stats.blocks_erased;
  return Status::OK();
}

Status SsdDevice::Trim(uint64_t lba, uint64_t count) {
  if (lba + count > num_lbas()) {
    return Status::InvalidArgument("trim beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; i++) {
    const uint64_t lpn = lba + i;
    ftl_->Trim(lpn);
    // Drop content so reads of trimmed pages return zeros.
    const uint64_t idx = lpn / kPagesPerChunk;
    if (chunks_[idx]) {
      const uint64_t page = config_.geometry.page_bytes;
      std::memset(chunks_[idx].get() + (lpn % kPagesPerChunk) * page, 0, page);
    }
  }
  smart_.pages_trimmed += count;
  // TRIM commands are cheap but not free.
  clock_->Advance(10'000);
  return Status::OK();
}

Status SsdDevice::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  clock_->Advance(config_.timing.flush_latency_ns);
  DrainCache(clock_->NowNanos());
  return Status::OK();
}

SsdDevice::CacheState SsdDevice::GetCacheState() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheState s;
  s.occupancy_bytes = cache_occupancy_;
  for (const Channel& c : channels_) {
    s.backend_lag_ns = std::max(s.backend_lag_ns, BackendBacklogNanos(c));
  }
  return s;
}

std::vector<SsdDevice::ChannelStats> SsdDevice::channel_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChannelStats> out;
  out.reserve(channels_.size());
  for (const Channel& c : channels_) {
    ChannelStats s;
    // Exclude the unserved backlog (work scheduled past the current
    // clock): a short run with a full write cache would otherwise
    // report utilization above 100%.
    const int64_t backlog = BackendBacklogNanos(c);
    s.busy_ns = c.busy_ns - backlog;
    s.commands = c.commands;
    s.scheduled_ns = c.busy_ns;
    for (int k = 0; k < sim::kNumIoClasses; k++) {
      // The backlog is deducted from the backend classes pro rata (the
      // per-item completion times are not tracked per class); read
      // occupancy carries no backlog — every read is waited out. The
      // share is computed in double: the int64 product backlog *
      // class_backend_ns overflows on long runs.
      int64_t backend = c.class_backend_ns[k];
      if (backlog > 0 && c.busy_ns > 0) {
        backend -= static_cast<int64_t>(
            static_cast<double>(backlog) *
            static_cast<double>(c.class_backend_ns[k]) /
            static_cast<double>(c.busy_ns));
      }
      s.class_busy_ns[k] = backend + c.class_read_ns[k];
      s.class_scheduled_ns[k] = c.class_backend_ns[k];
    }
    s.class_bytes = c.class_bytes;
    s.class_commands = c.class_commands;
    s.class_wait_ns = c.class_wait_ns;
    s.preemptions = c.preemptions;
    s.bg_throttled_ns = c.bg_throttled_ns;
    out.push_back(s);
  }
  return out;
}

uint64_t SsdDevice::ContentMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& c : chunks_) {
    if (c) n += kPagesPerChunk * config_.geometry.page_bytes;
  }
  return n;
}

}  // namespace ptsb::ssd
