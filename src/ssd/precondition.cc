#include "ssd/precondition.h"

#include <algorithm>

#include "util/random.h"

namespace ptsb::ssd {

Status TrimAll(block::BlockDevice* device) {
  return device->Trim(0, device->num_lbas());
}

Status Precondition(block::BlockDevice* device, double overwrite_multiplier,
                    uint64_t seed) {
  const uint64_t lbas = device->num_lbas();
  // Phase 1: sequential full-device write so every LBA has valid data.
  const uint64_t batch = 1024;
  for (uint64_t lba = 0; lba < lbas; lba += batch) {
    const uint64_t n = std::min(batch, lbas - lba);
    PTSB_RETURN_IF_ERROR(device->Write(lba, n, nullptr));
  }
  // Phase 2: random single-page overwrites, 2x the capacity by default, to
  // trigger garbage collection and scramble the block layout.
  Rng rng(seed);
  const auto overwrites = static_cast<uint64_t>(
      overwrite_multiplier * static_cast<double>(lbas));
  for (uint64_t i = 0; i < overwrites; i++) {
    PTSB_RETURN_IF_ERROR(device->Write(rng.Uniform(lbas), 1, nullptr));
  }
  return Status::OK();
}

Status ApplyInitialState(block::BlockDevice* device, InitialState state,
                         uint64_t seed) {
  PTSB_RETURN_IF_ERROR(TrimAll(device));
  if (state == InitialState::kPreconditioned) {
    return Precondition(device, 2.0, seed);
  }
  return Status::OK();
}

const char* InitialStateName(InitialState s) {
  return s == InitialState::kTrimmed ? "trimmed" : "preconditioned";
}

}  // namespace ptsb::ssd
