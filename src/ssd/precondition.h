// Drive state preparation, mirroring Section 3.4 of the paper:
//   Trimmed:        blkdiscard of every block — factory-fresh behavior.
//   Preconditioned: sequential full-device write, then random writes of
//                   2x the device capacity to reach GC steady state.
//
// These operate on the BlockDevice interface so they can target either a
// whole drive or a partition (the paper preconditions the PTS partition in
// the over-provisioning experiment of Section 4.6).
#ifndef PTSB_SSD_PRECONDITION_H_
#define PTSB_SSD_PRECONDITION_H_

#include <cstdint>

#include "block/block_device.h"
#include "util/status.h"

namespace ptsb::ssd {

enum class InitialState { kTrimmed, kPreconditioned };

// blkdiscard equivalent: trims the whole logical space of `device`.
Status TrimAll(block::BlockDevice* device);

// Sequential fill + `overwrite_multiplier`x random single-page overwrites
// (the paper uses 2x). Uses payload-free writes, so no content memory is
// allocated. Deterministic under `seed`.
Status Precondition(block::BlockDevice* device,
                    double overwrite_multiplier = 2.0, uint64_t seed = 42);

// Applies the requested state (TrimAll first in both cases, so the state
// is reproducible regardless of prior device history).
Status ApplyInitialState(block::BlockDevice* device, InitialState state,
                         uint64_t seed = 42);

const char* InitialStateName(InitialState s);

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_PRECONDITION_H_
