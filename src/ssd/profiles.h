// Device profiles modeled after the paper's three SSDs (Section 4.7):
//   SSD1: Intel DC p3600-like enterprise flash drive,
//   SSD2: Intel 660p-like consumer QLC drive with a large write cache,
//   SSD3: Intel Optane-like 3D-XPoint drive (in-place updates, no GC).
// Parameters are calibrated so the *relative* behaviors of Figs. 9-10
// reproduce; see EXPERIMENTS.md for paper-vs-measured numbers.
#ifndef PTSB_SSD_PROFILES_H_
#define PTSB_SSD_PROFILES_H_

#include <cstdint>
#include <string>

#include "ssd/config.h"

namespace ptsb::ssd {

enum class ProfileKind { kSsd1Enterprise, kSsd2ConsumerQlc, kSsd3Optane };

// Returns a profile scaled down by `scale_denominator`: logical capacity
// and cache size divide by it; latencies and bandwidths do not.
SsdConfig MakeProfile(ProfileKind kind, uint64_t logical_bytes,
                      uint64_t scale_denominator = 1);

// The paper's 400 GB drive.
constexpr uint64_t kPaperDeviceBytes = 400ull * 1000 * 1000 * 1000;

ProfileKind ProfileFromName(const std::string& name);
std::string ProfileName(ProfileKind kind);

}  // namespace ptsb::ssd

#endif  // PTSB_SSD_PROFILES_H_
