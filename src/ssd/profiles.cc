#include "ssd/profiles.h"

#include "util/logging.h"

namespace ptsb::ssd {

SsdConfig MakeProfile(ProfileKind kind, uint64_t logical_bytes,
                      uint64_t scale_denominator) {
  PTSB_CHECK_GT(scale_denominator, 0u);
  SsdConfig c;
  c.geometry.logical_bytes = logical_bytes / scale_denominator;
  c.geometry.page_bytes = 4096;
  c.geometry.pages_per_block = 256;

  switch (kind) {
    case ProfileKind::kSsd1Enterprise: {
      // Enterprise flash: moderate hardware OP, solid sustained program
      // bandwidth, small power-loss-protected cache, higher per-command
      // write latency than cached consumer drives.
      c.name = "SSD1(p3600-like)";
      c.geometry.hardware_op_frac = 0.12;
      c.timing.host_write_bw = 1.8e9;
      c.timing.program_bw = 550e6;
      c.timing.read_latency_ns = 90'000;
      c.timing.read_bw = 2.1e9;
      c.timing.write_ack_latency_ns = 100'000;
      c.timing.cache_bytes = (256ull << 20) / scale_denominator;
      c.timing.erase_latency_ns = 0;
      c.timing.flush_latency_ns = 20'000;
      break;
    }
    case ProfileKind::kSsd2ConsumerQlc: {
      // Consumer QLC: very fast cache admission, large SLC cache, but slow
      // sustained (QLC) program bandwidth. Bursts larger than the cache
      // stall for long periods (paper Fig. 10, SSD2).
      c.name = "SSD2(660p-like)";
      c.geometry.hardware_op_frac = 0.08;
      c.timing.host_write_bw = 1.8e9;
      c.timing.program_bw = 60e6;
      c.timing.read_latency_ns = 70'000;
      c.timing.read_bw = 1.8e9;
      c.timing.write_ack_latency_ns = 30'000;
      c.timing.cache_bytes = (24ull << 30) / scale_denominator;
      c.timing.erase_latency_ns = 0;
      c.timing.flush_latency_ns = 500'000;
      break;
    }
    case ProfileKind::kSsd3Optane: {
      // 3D-XPoint: byte-addressable medium with in-place updates. Modeled
      // as flash with enormous OP (GC essentially never relocates valid
      // data; WA-D stays ~1), very low latency, high bandwidth, no cache
      // needed.
      c.name = "SSD3(optane-like)";
      c.geometry.hardware_op_frac = 0.55;
      c.host_open_blocks = 1;  // byte-addressable medium: no striping games
      c.timing.host_write_bw = 2.5e9;
      c.timing.program_bw = 2.2e9;
      c.timing.read_latency_ns = 10'000;
      c.timing.read_bw = 2.5e9;
      c.timing.write_ack_latency_ns = 15'000;
      c.timing.cache_bytes = (64ull << 20) / scale_denominator;
      c.timing.erase_latency_ns = 0;
      c.timing.flush_latency_ns = 5'000;
      break;
    }
  }
  return c;
}

ProfileKind ProfileFromName(const std::string& name) {
  if (name == "ssd1") return ProfileKind::kSsd1Enterprise;
  if (name == "ssd2") return ProfileKind::kSsd2ConsumerQlc;
  if (name == "ssd3") return ProfileKind::kSsd3Optane;
  PTSB_CHECK(false) << "unknown SSD profile: " << name
                    << " (expected ssd1|ssd2|ssd3)";
  return ProfileKind::kSsd1Enterprise;
}

std::string ProfileName(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kSsd1Enterprise: return "ssd1";
    case ProfileKind::kSsd2ConsumerQlc: return "ssd2";
    case ProfileKind::kSsd3Optane: return "ssd3";
  }
  return "?";
}

}  // namespace ptsb::ssd
