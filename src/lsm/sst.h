// Sorted string table: the on-disk file format of the LSM engine.
//
// Layout:
//   [data block]* [index block] [bloom filter] [footer]
// Data block:  (varint klen, key, fixed64 tag, varint vlen, value)* crc32
// Index block: (varint klen, last_key, fixed64 offset, fixed32 size)* crc32
// Bloom:       filter bytes, crc32
// Footer:      fixed64 index_off, fixed32 index_sz, fixed64 bloom_off,
//              fixed32 bloom_sz, fixed64 num_entries, fixed64 magic
//
// Readers keep the index and bloom pinned in memory (as RocksDB pins
// filter/index blocks); data blocks are read from the device on demand,
// which is what the paper's 10 MiB-cache configuration effectively does.
#ifndef PTSB_LSM_SST_H_
#define PTSB_LSM_SST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file.h"
#include "lsm/bloom.h"
#include "lsm/format.h"
#include "util/status.h"

namespace ptsb::lsm {

class SstBuilder {
 public:
  // Does not take ownership of `file`. Output is staged through a write
  // buffer (like RocksDB's WritableFileWriter) so the device sees large
  // sequential write commands instead of per-block ones.
  SstBuilder(fs::File* file, uint64_t block_bytes, int bloom_bits_per_key,
             uint64_t write_buffer_bytes = 256 << 10);

  // Keys must arrive in strictly increasing internal order.
  Status Add(std::string_view key, SequenceNumber seq, EntryType type,
             std::string_view value);

  // Flushes everything, syncs, trims the allocation. No Add after Finish.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_bytes() const { return offset_; }
  // Flushed bytes plus the buffered block: the rollover check.
  uint64_t EstimatedBytes() const { return offset_ + block_buf_.size(); }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  // Uncompressed user payload added so far (for compaction accounting).
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  Status FlushBlock();
  Status StageWrite(std::string_view data);
  Status FlushStaged();

  fs::File* file_;
  uint64_t block_bytes_;
  uint64_t write_buffer_bytes_;
  std::string staged_;
  BloomFilterBuilder bloom_;
  std::string block_buf_;
  std::string index_buf_;
  std::string last_key_in_block_;
  std::string smallest_;
  std::string largest_;
  SequenceNumber last_seq_ = 0;
  bool have_last_ = false;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t payload_bytes_ = 0;
  bool finished_ = false;
};

class SstReader {
 public:
  // Opens the table: reads footer, index and bloom (charged as device
  // reads). `file` must outlive the reader.
  static StatusOr<std::unique_ptr<SstReader>> Open(fs::File* file);

  struct GetResult {
    bool found = false;
    EntryType type = EntryType::kPut;
    SequenceNumber seq = 0;
    std::string value;
    // Bloom-filter verdict for this probe (both false when the table
    // has no filter): rejected without any device read, or admitted
    // and then not found — a wasted data-block read.
    bool bloom_negative = false;
    bool bloom_false_positive = false;
  };
  // Finds the newest entry for user key (tables store versions in internal
  // order, newest first).
  StatusOr<GetResult> Get(std::string_view key);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_bytes() const { return file_bytes_; }
  // In-memory footprint of the pinned index + bloom.
  uint64_t PinnedBytes() const;

  // The pinned block index, exposed as (last user key, on-disk size)
  // anchors: the byte-weighted candidate cut points the compaction
  // range splitter partitions input tables on. Splitting at a block's
  // last key keeps every version of one user key in one subrange.
  size_t NumBlocks() const { return blocks_.size(); }
  const std::string& BlockLastKey(size_t i) const {
    return blocks_[i].last_key;
  }
  uint32_t BlockBytes(size_t i) const { return blocks_[i].size; }
  // Index of the first block whose last key >= key (== NumBlocks() if
  // none) — the block a subcompaction bound lands in.
  size_t FindBlock(std::string_view key) const;

  class Iterator {
   public:
    // `readahead_bytes` batches sequential block reads into large device
    // commands (RocksDB's compaction readahead); 0 reads block by block.
    // With a clock and depth > 1, each span read is additionally split
    // into up to `depth` block-aligned chunks submitted on foreground-read
    // lanes base_queue..base_queue+depth-1, so one span's I/O overlaps
    // across SSD channels (completion = slowest chunk, not the sum) — the
    // scan-side analog of the MultiGet fan-out.
    explicit Iterator(SstReader* reader, uint64_t readahead_bytes = 0,
                      sim::SimClock* clock = nullptr, uint32_t base_queue = 0,
                      int depth = 1);
    bool Valid() const { return valid_; }
    // Caps span prefetch at block `end_block` (exclusive): a
    // subcompaction stops batching at its subrange's last needed block
    // instead of reading the whole readahead window past its end key.
    // Blocks at/past the cap are still readable one at a time (a key
    // run can spill one block past a subrange bound).
    void LimitSpanTo(size_t end_block) { span_block_limit_ = end_block; }
    Status SeekToFirst();
    // Positions at the first entry with user key >= target.
    Status Seek(std::string_view target);
    Status Next();
    std::string_view key() const { return key_; }
    SequenceNumber seq() const { return seq_; }
    EntryType type() const { return type_; }
    std::string_view value() const { return value_; }

   private:
    // Reads a run of blocks starting at `first_block` covering up to the
    // readahead budget, then enters the first block of the span.
    Status LoadSpan(size_t first_block);
    // Validates and enters a block that lies within the current span.
    Status EnterBlock(size_t block_index);
    bool ParseCurrent();

    SstReader* reader_;
    uint64_t readahead_bytes_;
    sim::SimClock* clock_;
    uint32_t base_queue_;
    int depth_;
    size_t span_block_limit_ = static_cast<size_t>(-1);
    size_t span_first_ = 0;  // first block index in span_data_
    size_t span_end_ = 0;    // one past the last block in span_data_
    uint64_t span_base_offset_ = 0;
    std::string span_data_;
    size_t block_index_ = 0;
    std::string_view remaining_;
    bool valid_ = false;
    std::string key_;
    SequenceNumber seq_ = 0;
    EntryType type_ = EntryType::kPut;
    std::string value_;
  };

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;  // block size including crc trailer
  };

  SstReader(fs::File* file, std::string bloom_data);

  Status ReadBlock(size_t block_index, std::string* out) const;

  fs::File* file_;
  std::vector<IndexEntry> blocks_;
  BloomFilter bloom_;
  uint64_t num_entries_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_SST_H_
