#include "lsm/sst.h"

#include <algorithm>

#include "util/crc32.h"
#include "util/encoding.h"
#include "util/logging.h"

namespace ptsb::lsm {

SstBuilder::SstBuilder(fs::File* file, uint64_t block_bytes,
                       int bloom_bits_per_key, uint64_t write_buffer_bytes)
    : file_(file),
      block_bytes_(block_bytes),
      write_buffer_bytes_(write_buffer_bytes),
      bloom_(bloom_bits_per_key) {}

Status SstBuilder::StageWrite(std::string_view data) {
  staged_.append(data.data(), data.size());
  if (staged_.size() >= write_buffer_bytes_) return FlushStaged();
  return Status::OK();
}

Status SstBuilder::FlushStaged() {
  if (staged_.empty()) return Status::OK();
  PTSB_RETURN_IF_ERROR(file_->Append(staged_));
  staged_.clear();
  return Status::OK();
}

Status SstBuilder::Add(std::string_view key, SequenceNumber seq,
                       EntryType type, std::string_view value) {
  PTSB_CHECK(!finished_);
  if (have_last_) {
    PTSB_CHECK(CompareInternal(largest_, last_seq_, key, seq) < 0)
        << "SST keys out of order: " << largest_ << " then " << key;
  }
  if (!have_last_) smallest_.assign(key.data(), key.size());
  largest_.assign(key.data(), key.size());
  last_seq_ = seq;
  have_last_ = true;

  PutVarint32(&block_buf_, static_cast<uint32_t>(key.size()));
  block_buf_.append(key.data(), key.size());
  PutFixed64(&block_buf_, PackSeqType(seq, type));
  PutVarint32(&block_buf_, static_cast<uint32_t>(value.size()));
  block_buf_.append(value.data(), value.size());

  bloom_.AddKey(key);
  last_key_in_block_.assign(key.data(), key.size());
  num_entries_++;
  payload_bytes_ += key.size() + value.size();

  if (block_buf_.size() >= block_bytes_) {
    return FlushBlock();
  }
  return Status::OK();
}

Status SstBuilder::FlushBlock() {
  if (block_buf_.empty()) return Status::OK();
  const uint32_t crc = MaskCrc(Crc32c(block_buf_));
  PutFixed32(&block_buf_, crc);

  // Index entry points at this block.
  PutVarint32(&index_buf_, static_cast<uint32_t>(last_key_in_block_.size()));
  index_buf_.append(last_key_in_block_);
  PutFixed64(&index_buf_, offset_);
  PutFixed32(&index_buf_, static_cast<uint32_t>(block_buf_.size()));

  PTSB_RETURN_IF_ERROR(StageWrite(block_buf_));
  offset_ += block_buf_.size();
  block_buf_.clear();
  return Status::OK();
}

Status SstBuilder::Finish() {
  PTSB_CHECK(!finished_);
  finished_ = true;
  PTSB_RETURN_IF_ERROR(FlushBlock());

  const uint64_t index_off = offset_;
  const uint32_t index_crc = MaskCrc(Crc32c(index_buf_));
  PutFixed32(&index_buf_, index_crc);
  PTSB_RETURN_IF_ERROR(StageWrite(index_buf_));
  offset_ += index_buf_.size();
  const auto index_size = static_cast<uint32_t>(index_buf_.size());

  const uint64_t bloom_off = offset_;
  std::string bloom_data = bloom_.Finish();
  PutFixed32(&bloom_data, MaskCrc(Crc32c(bloom_data)));
  PTSB_RETURN_IF_ERROR(StageWrite(bloom_data));
  offset_ += bloom_data.size();
  const auto bloom_size = static_cast<uint32_t>(bloom_data.size());

  std::string footer;
  PutFixed64(&footer, index_off);
  PutFixed32(&footer, index_size);
  PutFixed64(&footer, bloom_off);
  PutFixed32(&footer, bloom_size);
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kSstMagic);
  PTSB_RETURN_IF_ERROR(StageWrite(footer));
  offset_ += footer.size();

  PTSB_RETURN_IF_ERROR(FlushStaged());
  PTSB_RETURN_IF_ERROR(file_->Sync());
  return file_->ShrinkToFit();
}

SstReader::SstReader(fs::File* file, std::string bloom_data)
    : file_(file), bloom_(std::move(bloom_data)) {}

StatusOr<std::unique_ptr<SstReader>> SstReader::Open(fs::File* file) {
  const uint64_t size = file->size();
  if (size < static_cast<uint64_t>(kFooterBytes)) {
    return Status::Corruption("SST too small: " + file->name());
  }
  std::string footer(kFooterBytes, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file->ReadAt(size - kFooterBytes, kFooterBytes,
                                     footer.data()));
  if (got != static_cast<uint64_t>(kFooterBytes)) {
    return Status::Corruption("short footer read");
  }
  std::string_view in = footer;
  uint64_t index_off, bloom_off, num_entries, magic;
  uint32_t index_size, bloom_size;
  GetFixed64(&in, &index_off);
  GetFixed32(&in, &index_size);
  GetFixed64(&in, &bloom_off);
  GetFixed32(&in, &bloom_size);
  GetFixed64(&in, &num_entries);
  GetFixed64(&in, &magic);
  if (magic != kSstMagic) {
    return Status::Corruption("bad SST magic in " + file->name());
  }

  // Index.
  std::string index_data(index_size, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t igot,
                        file->ReadAt(index_off, index_size,
                                     index_data.data()));
  if (igot != index_size || index_size < 4) {
    return Status::Corruption("short index read");
  }
  const uint32_t stored_crc =
      DecodeFixed32(index_data.data() + index_size - 4);
  if (UnmaskCrc(stored_crc) !=
      Crc32c(std::string_view(index_data.data(), index_size - 4))) {
    return Status::Corruption("index checksum mismatch");
  }

  // Bloom.
  std::string bloom_data(bloom_size, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t bgot,
                        file->ReadAt(bloom_off, bloom_size,
                                     bloom_data.data()));
  if (bgot != bloom_size || bloom_size < 4) {
    return Status::Corruption("short bloom read");
  }
  const uint32_t bloom_crc =
      DecodeFixed32(bloom_data.data() + bloom_size - 4);
  bloom_data.resize(bloom_size - 4);
  if (UnmaskCrc(bloom_crc) != Crc32c(bloom_data)) {
    return Status::Corruption("bloom checksum mismatch");
  }

  auto reader =
      std::unique_ptr<SstReader>(new SstReader(file, std::move(bloom_data)));
  reader->num_entries_ = num_entries;
  reader->file_bytes_ = size;
  std::string_view idx(index_data.data(), index_size - 4);
  while (!idx.empty()) {
    IndexEntry e;
    std::string_view key;
    uint64_t off;
    uint32_t sz;
    uint32_t klen;
    if (!GetVarint32(&idx, &klen) || idx.size() < klen) {
      return Status::Corruption("bad index entry");
    }
    key = idx.substr(0, klen);
    idx.remove_prefix(klen);
    if (!GetFixed64(&idx, &off) || !GetFixed32(&idx, &sz)) {
      return Status::Corruption("bad index entry");
    }
    e.last_key.assign(key.data(), key.size());
    e.offset = off;
    e.size = sz;
    reader->blocks_.push_back(std::move(e));
  }
  return reader;
}

uint64_t SstReader::PinnedBytes() const {
  uint64_t n = bloom_.SizeBytes();
  for (const auto& b : blocks_) n += b.last_key.size() + 16;
  return n;
}

Status SstReader::ReadBlock(size_t block_index, std::string* out) const {
  const IndexEntry& e = blocks_[block_index];
  out->resize(e.size);
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file_->ReadAt(e.offset, e.size, out->data()));
  if (got != e.size || e.size < 4) {
    return Status::Corruption("short block read");
  }
  const uint32_t crc = DecodeFixed32(out->data() + e.size - 4);
  out->resize(e.size - 4);
  if (UnmaskCrc(crc) != Crc32c(*out)) {
    return Status::Corruption("block checksum mismatch in " + file_->name());
  }
  return Status::OK();
}

size_t SstReader::FindBlock(std::string_view key) const {
  // Binary search: first block with last_key >= key.
  size_t lo = 0, hi = blocks_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (blocks_[mid].last_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<SstReader::GetResult> SstReader::Get(std::string_view key) {
  GetResult r;
  if (!bloom_.MayContain(key)) {
    r.bloom_negative = true;
    return r;
  }
  // From here on, a miss with a real filter present is a false
  // positive: the filter admitted a key the table does not hold.
  const bool bloom_admitted = !bloom_.empty();
  const size_t bi = FindBlock(key);
  if (bi >= blocks_.size()) {
    r.bloom_false_positive = bloom_admitted;
    return r;
  }
  std::string block;
  PTSB_RETURN_IF_ERROR(ReadBlock(bi, &block));
  std::string_view in = block;
  while (!in.empty()) {
    uint32_t klen, vlen;
    uint64_t tag;
    if (!GetVarint32(&in, &klen) || in.size() < klen) {
      return Status::Corruption("bad record");
    }
    const std::string_view rkey = in.substr(0, klen);
    in.remove_prefix(klen);
    if (!GetFixed64(&in, &tag) || !GetVarint32(&in, &vlen) ||
        in.size() < vlen) {
      return Status::Corruption("bad record");
    }
    const std::string_view rvalue = in.substr(0, vlen);
    in.remove_prefix(vlen);
    if (rkey == key) {
      // Internal order puts the newest version first.
      r.found = true;
      r.seq = UnpackSeq(tag);
      r.type = UnpackType(tag);
      r.value.assign(rvalue.data(), rvalue.size());
      return r;
    }
    if (rkey > key) break;
  }
  r.bloom_false_positive = bloom_admitted;
  return r;
}

SstReader::Iterator::Iterator(SstReader* reader, uint64_t readahead_bytes,
                              sim::SimClock* clock, uint32_t base_queue,
                              int depth)
    : reader_(reader),
      readahead_bytes_(readahead_bytes),
      clock_(clock),
      base_queue_(base_queue),
      depth_(depth) {}

Status SstReader::Iterator::LoadSpan(size_t first_block) {
  const auto& blocks = reader_->blocks_;
  if (first_block >= blocks.size()) {
    valid_ = false;
    return Status::OK();
  }
  size_t end = first_block + 1;
  uint64_t span_bytes = blocks[first_block].size;
  // The prefetch cap (LimitSpanTo) bounds batching, never access: a
  // first block at/past the cap still loads as a one-block span.
  const size_t cap = std::max(first_block + 1, span_block_limit_);
  while (end < blocks.size() && end < cap &&
         span_bytes + blocks[end].size <=
             std::max<uint64_t>(readahead_bytes_,
                                blocks[first_block].size)) {
    span_bytes += blocks[end].size;
    end++;
  }
  span_first_ = first_block;
  span_end_ = end;
  span_base_offset_ = blocks[first_block].offset;
  span_data_.resize(span_bytes);
  const size_t nblocks = end - first_block;
  if (clock_ != nullptr && depth_ > 1 && nblocks > 1) {
    // Lane-split readahead: carve the span into up to `depth_`
    // block-aligned chunks, submit each on its own foreground-read lane
    // (distinct queues from the same instant -> distinct channels), and
    // wait them all — the span completes when the SLOWEST chunk does,
    // not after the sum of all chunk times.
    const size_t nchunks = std::min<size_t>(static_cast<size_t>(depth_),
                                            nblocks);
    std::vector<block::IoTicket> tickets;
    tickets.reserve(nchunks);
    size_t b = first_block;
    for (size_t j = 0; j < nchunks; j++) {
      const size_t take = nblocks / nchunks + (j < nblocks % nchunks ? 1 : 0);
      const uint64_t off = blocks[b].offset;
      uint64_t len = 0;
      for (size_t k = 0; k < take; k++) len += blocks[b + k].size;
      tickets.push_back(reader_->file_->SubmitReadAt(
          off, len, span_data_.data() + (off - span_base_offset_),
          base_queue_ + static_cast<uint32_t>(j),
          sim::IoClass::kForegroundRead));
      b += take;
    }
    Status first_bad;
    for (const block::IoTicket& t : tickets) {
      const Status s = reader_->file_->Wait(t);
      if (!s.ok() && first_bad.ok()) first_bad = s;
    }
    PTSB_RETURN_IF_ERROR(first_bad);
  } else {
    PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                          reader_->file_->ReadAt(span_base_offset_,
                                                 span_bytes,
                                                 span_data_.data()));
    if (got != span_bytes) return Status::Corruption("short span read");
  }
  return EnterBlock(first_block);
}

Status SstReader::Iterator::EnterBlock(size_t block_index) {
  if (block_index >= reader_->blocks_.size()) {
    valid_ = false;
    return Status::OK();
  }
  if (block_index < span_first_ || block_index >= span_end_) {
    return LoadSpan(block_index);
  }
  const auto& e = reader_->blocks_[block_index];
  block_index_ = block_index;
  const uint64_t rel = e.offset - span_base_offset_;
  const std::string_view framed(span_data_.data() + rel, e.size);
  if (e.size < 4) return Status::Corruption("undersized block");
  const uint32_t crc = DecodeFixed32(framed.data() + e.size - 4);
  const std::string_view body = framed.substr(0, e.size - 4);
  if (UnmaskCrc(crc) != Crc32c(body)) {
    return Status::Corruption("block checksum mismatch in " +
                              reader_->file_->name());
  }
  remaining_ = body;
  valid_ = ParseCurrent();
  if (!valid_ && block_index + 1 < reader_->blocks_.size()) {
    return EnterBlock(block_index + 1);
  }
  return Status::OK();
}

bool SstReader::Iterator::ParseCurrent() {
  if (remaining_.empty()) return false;
  uint32_t klen, vlen;
  uint64_t tag;
  if (!GetVarint32(&remaining_, &klen) || remaining_.size() < klen) {
    return false;
  }
  key_.assign(remaining_.data(), klen);
  remaining_.remove_prefix(klen);
  if (!GetFixed64(&remaining_, &tag) || !GetVarint32(&remaining_, &vlen) ||
      remaining_.size() < vlen) {
    return false;
  }
  seq_ = UnpackSeq(tag);
  type_ = UnpackType(tag);
  value_.assign(remaining_.data(), vlen);
  remaining_.remove_prefix(vlen);
  return true;
}

Status SstReader::Iterator::SeekToFirst() { return LoadSpan(0); }

Status SstReader::Iterator::Seek(std::string_view target) {
  PTSB_RETURN_IF_ERROR(LoadSpan(reader_->FindBlock(target)));
  while (valid_ && key_ < target) {
    PTSB_RETURN_IF_ERROR(Next());
  }
  return Status::OK();
}

Status SstReader::Iterator::Next() {
  PTSB_DCHECK(valid_);
  if (ParseCurrent()) return Status::OK();
  return EnterBlock(block_index_ + 1);
}

}  // namespace ptsb::lsm
