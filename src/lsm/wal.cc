#include "lsm/wal.h"

#include <vector>

#include "util/crc32.h"
#include "util/encoding.h"

namespace ptsb::lsm {

WalWriter::WalWriter(fs::File* file, uint64_t sync_every_bytes,
                     uint64_t buffer_bytes)
    : file_(file),
      sync_every_bytes_(sync_every_bytes),
      buffer_bytes_(buffer_bytes) {}

Status WalWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  PTSB_RETURN_IF_ERROR(file_->Append(buffer_));
  buffer_.clear();
  return Status::OK();
}

namespace {

void AppendEntry(std::string* payload, std::string_view key,
                 SequenceNumber seq, EntryType type, std::string_view value) {
  PutFixed64(payload, PackSeqType(seq, type));
  PutVarint32(payload, static_cast<uint32_t>(key.size()));
  payload->append(key.data(), key.size());
  PutVarint32(payload, static_cast<uint32_t>(value.size()));
  payload->append(value.data(), value.size());
}

}  // namespace

Status WalWriter::Add(std::string_view key, SequenceNumber seq,
                      EntryType type, std::string_view value) {
  std::string payload;
  payload.reserve(key.size() + value.size() + 24);
  AppendEntry(&payload, key, seq, type, value);
  return EmitRecord(payload);
}

Status WalWriter::AddBatch(const kv::WriteBatch& batch,
                           SequenceNumber first_seq) {
  std::string payload;
  payload.reserve(batch.ByteSize() + batch.Count() * 24);
  SequenceNumber seq = first_seq;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    EntryType type = EntryType::kDelete;
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        type = EntryType::kPut;
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        type = EntryType::kDelete;
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        // key = range begin, value = exclusive end; same framing as a Put.
        type = EntryType::kRangeDelete;
        break;
    }
    AppendEntry(&payload, e.key, seq++, type, e.value);
  }
  return EmitRecord(payload);
}

Status WalWriter::EmitRecord(std::string_view payload) {
  const size_t framed_start = buffer_.size();
  PutFixed32(&buffer_, MaskCrc(Crc32c(payload)));
  PutVarint32(&buffer_, static_cast<uint32_t>(payload.size()));
  buffer_.append(payload.data(), payload.size());
  bytes_written_ += buffer_.size() - framed_start;

  if (buffer_.size() >= buffer_bytes_) {
    PTSB_RETURN_IF_ERROR(FlushBuffer());
  }
  if (sync_every_bytes_ > 0) {
    unsynced_ += payload.size();
    if (unsynced_ >= sync_every_bytes_) {
      unsynced_ = 0;
      return Sync();
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  unsynced_ = 0;
  PTSB_RETURN_IF_ERROR(FlushBuffer());
  return file_->Sync();
}

Status ReplayWal(fs::File* file,
                 const std::function<void(std::string_view, SequenceNumber,
                                          EntryType, std::string_view)>& fn) {
  const uint64_t size = file->size();
  std::string data(size, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file->ReadAt(0, size, data.data()));
  std::string_view in(data.data(), got);
  while (!in.empty()) {
    uint32_t stored_crc, len;
    std::string_view record = in;  // to restore nothing; parse copies
    if (!GetFixed32(&record, &stored_crc) || !GetVarint32(&record, &len) ||
        record.size() < len) {
      break;  // truncated tail: normal after a crash
    }
    const std::string_view payload = record.substr(0, len);
    if (UnmaskCrc(stored_crc) != Crc32c(payload)) {
      break;  // torn record: stop replay here
    }
    // A record holds one entry per batched operation (group commit);
    // legacy single-op records are one-entry batches. Parse the whole
    // record before applying anything: a batch must replay atomically,
    // never as a prefix.
    struct ParsedEntry {
      std::string_view key;
      uint64_t tag;
      std::string_view value;
    };
    std::vector<ParsedEntry> entries;
    std::string_view p = payload;
    bool parsed_ok = true;
    while (!p.empty()) {
      uint64_t tag;
      uint32_t klen, vlen;
      if (!GetFixed64(&p, &tag) || !GetVarint32(&p, &klen) ||
          p.size() < klen) {
        parsed_ok = false;
        break;
      }
      const std::string_view key = p.substr(0, klen);
      p.remove_prefix(klen);
      if (!GetVarint32(&p, &vlen) || p.size() < vlen) {
        parsed_ok = false;
        break;
      }
      const std::string_view value = p.substr(0, vlen);
      p.remove_prefix(vlen);
      entries.push_back({key, tag, value});
    }
    if (!parsed_ok) break;  // crc passed but malformed: treat as torn
    for (const ParsedEntry& e : entries) {
      fn(e.key, UnpackSeq(e.tag), UnpackType(e.tag), e.value);
    }
    in = record.substr(len);
  }
  return Status::OK();
}

}  // namespace ptsb::lsm
