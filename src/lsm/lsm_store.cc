#include "lsm/lsm_store.h"

#include <algorithm>

#include "util/human.h"
#include "util/logging.h"

namespace ptsb::lsm {

LsmStore::LsmStore(fs::SimpleFs* fs, const LsmOptions& options,
                   std::string dir)
    : fs_(fs), options_(options), dir_(std::move(dir)),
      write_group_(options.max_write_group_bytes) {}

LsmStore::~LsmStore() {
  if (!closed_) {
    // Best-effort shutdown; errors are not recoverable in a destructor.
    Close().ok();
  }
}

StatusOr<std::unique_ptr<LsmStore>> LsmStore::Open(fs::SimpleFs* fs,
                                                   const LsmOptions& options,
                                                   std::string dir) {
  auto store =
      std::unique_ptr<LsmStore>(new LsmStore(fs, options, std::move(dir)));
  store->versions_ = std::make_unique<VersionSet>(fs, store->dir_,
                                                  options.max_levels);
  PTSB_RETURN_IF_ERROR(store->versions_->Recover());
  store->memtable_ = std::make_shared<Memtable>();
  store->seq_ = store->versions_->last_sequence();
  // Manifest-recovered range tombstones are the flushed baseline; WAL
  // replay re-appends anything newer.
  store->tombstones_ = store->versions_->range_tombstones();
  store->tombstones_persisted_ = store->tombstones_.size();

  // Sweep orphan SSTs: a crash mid-flush/compaction can leave a created
  // but never-installed file whose number the recovered manifest will
  // hand out again (next_file_number is only durable as of the last
  // edit) — the next flush would then collide on Create. Files the
  // manifest doesn't reference are dead by construction; delete them.
  {
    std::vector<std::string> files = fs->List(store->dir_ + "/");
    for (const std::string& name : files) {
      const size_t slash = name.rfind('/');
      if (name.ends_with(".log")) {
        // Kept and replayed below, but its allocation may not be durable:
        // never hand the number out again.
        store->versions_->EnsureFileNumberPast(
            std::stoull(name.substr(slash + 1)));
        continue;
      }
      if (!name.ends_with(".sst")) continue;
      const uint64_t number = std::stoull(name.substr(slash + 1));
      store->versions_->EnsureFileNumberPast(number);
      bool live = false;
      for (int level = 0; level < store->versions_->num_levels() && !live;
           level++) {
        for (const FileMeta& f : store->versions_->LevelFiles(level)) {
          if (f.number == number) {
            live = true;
            break;
          }
        }
      }
      if (!live) PTSB_RETURN_IF_ERROR(fs->Delete(name));
    }
  }

  // Replay WALs at or above the manifest's log number, in file order.
  std::vector<std::string> logs = fs->List(store->dir_ + "/");
  std::erase_if(logs, [](const std::string& n) {
    return !n.ends_with(".log");
  });
  std::sort(logs.begin(), logs.end());
  fs::File* newest_wal = nullptr;
  uint64_t newest_number = 0;
  for (const std::string& name : logs) {
    const size_t slash = name.rfind('/');
    const uint64_t number = std::stoull(name.substr(slash + 1));
    if (number < store->versions_->log_number()) {
      // Obsolete: already flushed.
      PTSB_RETURN_IF_ERROR(fs->Delete(name));
      continue;
    }
    PTSB_ASSIGN_OR_RETURN(fs::File * file, fs->Open(name));
    SequenceNumber max_seq = store->seq_;
    PTSB_RETURN_IF_ERROR(ReplayWal(
        file, [&](std::string_view key, SequenceNumber seq, EntryType type,
                  std::string_view value) {
          if (type == EntryType::kRangeDelete) {
            // Range tombstones never enter the memtable: they live in the
            // store's side list (key=begin, value=exclusive end).
            store->tombstones_.push_back(RangeTombstone{
                std::string(key), std::string(value), seq});
          } else {
            store->memtable_->Add(key, seq, type, value);
          }
          max_seq = std::max(max_seq, seq);
        }));
    store->seq_ = max_seq;
    newest_wal = file;
    newest_number = number;
  }
  if (options.wal_enabled) {
    if (newest_wal == nullptr) {
      newest_number = store->versions_->NewFileNumber();
      PTSB_ASSIGN_OR_RETURN(
          newest_wal,
          fs->Create(VersionSet::WalFileName(store->dir_, newest_number)));
      VersionEdit edit;
      edit.log_number = newest_number;
      PTSB_RETURN_IF_ERROR(store->versions_->LogAndApply(edit));
    }
    store->wal_file_ = newest_wal;
    store->wal_number_ = newest_number;
    store->wal_ = std::make_unique<WalWriter>(newest_wal,
                                              options.wal_sync_every_bytes,
                                              options.wal_buffer_bytes);
  }
  return store;
}

void LsmStore::ChargeCpu(int64_t ns) const {
  if (options_.clock != nullptr) options_.clock->Advance(ns);
}

kv::WriteHandle LsmStore::WriteAsync(const kv::WriteBatch& batch) {
  return kv::AsyncCommit(options_.clock, options_.io_queue,
                         [&] { return Write(batch); });
}

Status LsmStore::Write(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  if (batch.empty()) return Status::OK();
  // Cross-thread group commit: a single caller passes straight through
  // (group of one, no copy); concurrent callers elect a leader that
  // merges their batches into one WAL record.
  return write_group_.Commit(
      batch, [this](const kv::WriteBatch& merged, size_t n_user_batches) {
        return WriteInternal(merged, n_user_batches);
      });
}

Status LsmStore::WriteInternal(const kv::WriteBatch& batch,
                               size_t n_user_batches) {
  write_epoch_++;
  ChargeCpu(options_.cpu_put_ns * static_cast<int64_t>(batch.Count()));
  stats_.user_batches += n_user_batches;
  stats_.write_groups++;
  stats_.write_group_batches += n_user_batches;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        stats_.user_puts++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size();
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
    }
  }

  const SequenceNumber first_seq = seq_ + 1;
  seq_ += batch.Count();
  auto now = [this]() {
    return options_.clock != nullptr ? options_.clock->NowNanos() : 0;
  };
  if (wal_ != nullptr) {
    // Group commit: one record, one crc, for the whole batch.
    const int64_t t0 = now();
    const uint64_t wal_before = wal_->bytes_written();
    PTSB_RETURN_IF_ERROR(wal_->AddBatch(batch, first_seq));
    stats_.time_wal_ns += now() - t0;
    stats_.wal_bytes_written += wal_->bytes_written() - wal_before;
    stats_.wal_records++;
  }
  SequenceNumber seq = first_seq;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    const SequenceNumber s = seq++;
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        memtable_->Add(e.key, s, EntryType::kPut, e.value);
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        memtable_->Add(e.key, s, EntryType::kDelete, e.value);
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        // Range tombstones live beside the key space: WAL-logged above,
        // persisted in full by the next manifest edit, filtered on the
        // read paths (never merged into SSTs).
        tombstones_.push_back(RangeTombstone{e.key, e.value, s});
        break;
    }
  }

  if (memtable_->ApproximateBytes() >= options_.memtable_bytes) {
    const int64_t t0 = now();
    PTSB_RETURN_IF_ERROR(FlushMemtable());
    stats_.time_flush_ns += now() - t0;
  }
  // Background compaction's share of the device, paced by user traffic.
  const int64_t t1 = now();
  PTSB_RETURN_IF_ERROR(CompactionWork(
      batch.ByteSize() * options_.compaction_work_per_user_write));
  PTSB_RETURN_IF_ERROR(MaybeStall());
  stats_.time_compaction_ns += now() - t1;
  return Status::OK();
}

Status LsmStore::FlushMemtable() {
  if (memtable_->empty()) {
    if (tombstones_persisted_ == tombstones_.size()) return Status::OK();
    // Nothing to flush, but range tombstones the manifest has not seen
    // yet: persist them in an edit of their own (a DeleteRange-only
    // workload must survive WAL rotation and Close like any other write).
    VersionEdit edit;
    edit.range_tombstones = tombstones_;
    edit.last_sequence = seq_;
    PTSB_RETURN_IF_ERROR(versions_->LogAndApply(edit));
    tombstones_persisted_ = tombstones_.size();
    return Status::OK();
  }
  const uint64_t number = versions_->NewFileNumber();
  PTSB_ASSIGN_OR_RETURN(fs::File * file,
                        fs_->Create(VersionSet::SstFileName(dir_, number)));
  SstBuilder builder(file, options_.block_bytes, options_.bloom_bits_per_key);
  Memtable::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    PTSB_RETURN_IF_ERROR(builder.Add(it.key(), it.seq(), it.type(),
                                     it.value()));
  }
  PTSB_RETURN_IF_ERROR(builder.Finish());
  stats_.flush_bytes_written += builder.file_bytes();

  FileMeta meta;
  meta.number = number;
  meta.file_bytes = builder.file_bytes();
  meta.num_entries = builder.num_entries();
  meta.smallest = builder.smallest();
  meta.largest = builder.largest();

  VersionEdit edit;
  edit.added.emplace_back(0, std::move(meta));
  edit.last_sequence = seq_;
  // Every flush re-writes the full tombstone list (replace-on-apply), so
  // the rotated-away WAL's range deletes stay durable.
  edit.range_tombstones = tombstones_;

  // Rotate the WAL: the flushed SST covers everything in the old log.
  uint64_t old_wal = wal_number_;
  if (wal_ != nullptr) {
    wal_number_ = versions_->NewFileNumber();
    PTSB_ASSIGN_OR_RETURN(
        wal_file_, fs_->Create(VersionSet::WalFileName(dir_, wal_number_)));
    wal_ = std::make_unique<WalWriter>(wal_file_,
                                       options_.wal_sync_every_bytes,
                                       options_.wal_buffer_bytes);
    edit.log_number = wal_number_;
  }
  PTSB_RETURN_IF_ERROR(versions_->LogAndApply(edit));
  tombstones_persisted_ = tombstones_.size();
  if (wal_ != nullptr) {
    PTSB_RETURN_IF_ERROR(
        fs_->Delete(VersionSet::WalFileName(dir_, old_wal)));
  }
  // Rotate, not reset: a snapshot's shared_ptr keeps the old memtable
  // (and the versions it froze) readable after the swap.
  memtable_ = std::make_shared<Memtable>();
  return Status::OK();
}

Status LsmStore::CompactionWork(uint64_t budget) {
  // A zero budget requests no background progress at all (e.g.
  // compaction_work_per_user_write=0 defers every compaction to the
  // explicit drains); without this, picking and preparing a job would
  // still do device reads.
  if (budget == 0) return Status::OK();
  // Partitioned subcompactions need the pool's independent lanes; they
  // only exist with background_io and a clock. K <= 1 (or neither)
  // keeps the single-lane path below, byte for byte.
  if (options_.compaction_parallelism > 1 && options_.background_io &&
      options_.clock != nullptr) {
    return ParallelCompactionWork(budget);
  }
  if (!options_.background_io || options_.clock == nullptr) {
    return CompactionWorkImpl(budget);
  }
  kv::BackgroundResult r = kv::RunBackgroundWork(
      options_.clock, options_.background_queue, &background_horizon_ns_,
      [&] { return CompactionWorkImpl(budget); });
  stats_.time_background_ns += r.busy_ns;
  return r.status;
}

void LsmStore::JoinBackgroundWork() {
  if (options_.clock != nullptr) {
    options_.clock->AdvanceTo(background_horizon_ns_);
    if (pool_ != nullptr) pool_->Join();
  }
}

Status LsmStore::CompactionWorkImpl(uint64_t budget) {
  if (job_ == nullptr) {
    CompactionPick pick =
        PickCompaction(*versions_, options_, &compaction_cursors_);
    if (!pick.valid) return Status::OK();
    if (pick.trivial_move) {
      // Relink the file into the next level; no I/O at all.
      VersionEdit edit;
      edit.removed.emplace_back(pick.level, pick.inputs0[0].number);
      edit.added.emplace_back(pick.level + 1, pick.inputs0[0]);
      return versions_->LogAndApply(edit);
    }
    job_ = std::make_unique<CompactionJob>(fs_, dir_, versions_.get(),
                                           options_, std::move(pick));
    job_->set_file_deleter(MakeFileDeleter());
    PTSB_RETURN_IF_ERROR(job_->Prepare());
  }
  PTSB_ASSIGN_OR_RETURN(const bool done, job_->Step(budget));
  if (done) {
    stats_.compaction_bytes_read += job_->io_stats().bytes_read;
    stats_.compaction_bytes_written += job_->io_stats().bytes_written;
    EvictReaders(job_->deleted_files());
    job_.reset();
  }
  return Status::OK();
}

Status LsmStore::ParallelCompactionWork(uint64_t budget) {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<kv::BackgroundPool>(
        options_.clock, options_.background_queue,
        options_.compaction_parallelism);
  }
  if (parallel_job_ == nullptr) {
    CompactionPick pick =
        PickCompaction(*versions_, options_, &compaction_cursors_);
    if (!pick.valid) return Status::OK();
    if (pick.trivial_move) {
      // No table I/O; the manifest append still runs (and is charged)
      // on a background lane, like the single-lane path.
      kv::BackgroundResult r = pool_->Run(0, [&] {
        VersionEdit edit;
        edit.removed.emplace_back(pick.level, pick.inputs0[0].number);
        edit.added.emplace_back(pick.level + 1, pick.inputs0[0]);
        return versions_->LogAndApply(edit);
      });
      stats_.time_background_ns += r.busy_ns;
      return r.status;
    }
    PTSB_RETURN_IF_ERROR(StartSubcompaction(std::move(pick)));
  }
  auto& jobs = parallel_job_->jobs;
  int live = 0;
  for (const auto& j : jobs) {
    if (!j->finished()) live++;
  }
  if (live > 0) {
    // Split the pacing budget across the live subranges: one call here
    // advances every lane, so a slice still represents `budget` bytes
    // of input overall — the same pacing a single job would get.
    const uint64_t share =
        std::max<uint64_t>(1, budget / static_cast<uint64_t>(live));
    for (size_t i = 0; i < jobs.size(); i++) {
      if (jobs[i]->finished()) continue;
      kv::BackgroundResult r = pool_->Run(
          static_cast<int>(i),
          [&]() -> Status { return jobs[i]->Step(share).status(); });
      stats_.time_background_ns += r.busy_ns;
      PTSB_RETURN_IF_ERROR(r.status);
    }
  }
  for (const auto& j : jobs) {
    if (!j->finished()) return Status::OK();
  }
  return InstallSubcompaction();
}

Status LsmStore::StartSubcompaction(CompactionPick pick) {
  auto sub = std::make_unique<Subcompaction>();
  sub->pick = std::move(pick);
  // Open each input table once, on lane 0: the K subjobs share the
  // readers, so footer/index/bloom reads are paid once, not per
  // subrange.
  std::vector<SstReader*> raw;
  kv::BackgroundResult open_r = pool_->Run(0, [&]() -> Status {
    auto open_input = [&](const FileMeta& f) -> Status {
      PTSB_ASSIGN_OR_RETURN(
          fs::File * file, fs_->Open(VersionSet::SstFileName(dir_, f.number)));
      PTSB_ASSIGN_OR_RETURN(auto reader, SstReader::Open(file));
      raw.push_back(reader.get());
      sub->input_readers.push_back(std::move(reader));
      return Status::OK();
    };
    for (const FileMeta& f : sub->pick.inputs0) {
      PTSB_RETURN_IF_ERROR(open_input(f));
    }
    for (const FileMeta& f : sub->pick.inputs1) {
      PTSB_RETURN_IF_ERROR(open_input(f));
    }
    return Status::OK();
  });
  stats_.time_background_ns += open_r.busy_ns;
  PTSB_RETURN_IF_ERROR(open_r.status);
  // Every subrange depends on the shared opens.
  pool_->Barrier();

  const std::vector<std::string> bounds =
      SplitCompactionRange(raw, options_.compaction_parallelism);
  const size_t k = bounds.size() + 1;
  for (size_t i = 0; i < k; i++) {
    auto job = std::make_unique<CompactionJob>(fs_, dir_, versions_.get(),
                                               options_, sub->pick);
    job->SetKeyBounds(i == 0 ? std::string() : bounds[i - 1],
                      i == bounds.size() ? std::string() : bounds[i]);
    job->set_defer_install(true);
    sub->jobs.push_back(std::move(job));
  }
  // Seed each subrange on its own lane: the initial Seek loads data
  // blocks, and those reads already overlap across channels.
  for (size_t i = 0; i < k; i++) {
    kv::BackgroundResult r =
        pool_->Run(static_cast<int>(i),
                   [&] { return sub->jobs[i]->PrepareWithReaders(raw); });
    stats_.time_background_ns += r.busy_ns;
    PTSB_RETURN_IF_ERROR(r.status);
  }
  parallel_job_ = std::move(sub);
  return Status::OK();
}

Status LsmStore::InstallSubcompaction() {
  PTSB_CHECK(parallel_job_ != nullptr);
  Subcompaction& sub = *parallel_job_;
  for (const auto& job : sub.jobs) {
    stats_.compaction_bytes_read += job->io_stats().bytes_read;
    stats_.compaction_bytes_written += job->io_stats().bytes_written;
  }
  // The install depends on every subrange: line the lanes up first,
  // then commit on lane 0.
  pool_->Barrier();
  std::vector<uint64_t> deleted;
  kv::BackgroundResult r = pool_->Run(0, [&]() -> Status {
    // ONE atomic VersionEdit covering all subranges: removals for the
    // shared inputs, additions for every subrange's outputs. A crash
    // before this record leaves only orphan SSTs (the recovery sweep
    // reclaims them); after it, the new version is complete.
    VersionEdit edit;
    for (const FileMeta& f : sub.pick.inputs0) {
      edit.removed.emplace_back(sub.pick.level, f.number);
    }
    for (const FileMeta& f : sub.pick.inputs1) {
      edit.removed.emplace_back(sub.pick.level + 1, f.number);
    }
    for (const auto& job : sub.jobs) {
      for (const auto& [meta, number] : job->outputs()) {
        edit.added.emplace_back(sub.pick.level + 1, meta);
      }
    }
    PTSB_RETURN_IF_ERROR(versions_->LogAndApply(edit));
    // Close the shared readers, then dispose the inputs once (the
    // deleter parks snapshot-pinned inputs as on-disk zombies; only
    // physical deletions reach the eviction list) — same order as
    // CompactionJob::Install.
    sub.jobs.clear();
    sub.input_readers.clear();
    const CompactionJob::FileDeleter deleter = MakeFileDeleter();
    auto dispose = [&](const FileMeta& f) -> Status {
      PTSB_ASSIGN_OR_RETURN(const bool gone, deleter(f));
      if (gone) deleted.push_back(f.number);
      return Status::OK();
    };
    for (const FileMeta& f : sub.pick.inputs0) {
      PTSB_RETURN_IF_ERROR(dispose(f));
    }
    for (const FileMeta& f : sub.pick.inputs1) {
      PTSB_RETURN_IF_ERROR(dispose(f));
    }
    return Status::OK();
  });
  stats_.time_background_ns += r.busy_ns;
  parallel_job_.reset();
  EvictReaders(deleted);
  return r.status;
}

Status LsmStore::MaybeStall() {
  // RocksDB's stop-writes condition: too many L0 files. The user write
  // blocks while compaction catches up (device time accrues through the
  // compaction's I/O).
  while (static_cast<int>(versions_->LevelFiles(0).size()) >=
         options_.l0_stall_trigger) {
    stats_.stall_count++;
    PTSB_RETURN_IF_ERROR(CompactionWork(options_.compaction_budget_bytes));
    // A stall IS the user waiting for compaction: with background_io the
    // wait shows up as an explicit join of the background horizon (and
    // therefore as commit tail latency), not as per-write compaction
    // time.
    JoinBackgroundWork();
    if (!CompactionPending() &&
        static_cast<int>(versions_->LevelFiles(0).size()) >=
            options_.l0_stall_trigger) {
      // Compaction pressure resolved elsewhere or nothing to do; avoid a
      // livelock.
      break;
    }
  }
  return Status::OK();
}

Status LsmStore::DrainCompactions() {
  write_epoch_++;  // compaction deletes SSTs open iterators may hold
  // Finish the in-flight job and keep compacting until no level is over
  // its trigger. Draining means waiting the work out: join the
  // background horizon before reporting settled.
  for (;;) {
    PTSB_RETURN_IF_ERROR(
        CompactionWork(options_.compaction_budget_bytes * 8));
    if (CompactionPending()) continue;
    CompactionPick pick =
        PickCompaction(*versions_, options_, &compaction_cursors_);
    if (!pick.valid) {
      JoinBackgroundWork();
      return Status::OK();
    }
  }
}

Status LsmStore::CompactAll() {
  PTSB_RETURN_IF_ERROR(FlushMemtable());
  PTSB_RETURN_IF_ERROR(DrainCompactions());
  const int bottom = versions_->MaxPopulatedLevel();
  if (bottom < 0) return Status::OK();

  // Force every level (including the current bottom, so its own tombstones
  // get a chance to drop) down one step, top to bottom.
  const int last_forced = std::min(bottom, versions_->num_levels() - 2);
  for (int level = 0; level <= last_forced; level++) {
    while (!versions_->LevelFiles(level).empty()) {
      CompactionPick pick;
      pick.valid = true;
      pick.level = level;
      pick.inputs0 = versions_->LevelFiles(level);
      std::string smallest, largest;
      for (const FileMeta& f : pick.inputs0) {
        if (smallest.empty() || f.smallest < smallest) smallest = f.smallest;
        if (largest.empty() || f.largest > largest) largest = f.largest;
      }
      pick.inputs1 = versions_->Overlapping(level + 1, smallest, largest);
      pick.drop_tombstones = CanDropTombstones(*versions_, level + 1);
      auto job = std::make_unique<CompactionJob>(fs_, dir_, versions_.get(),
                                                 options_, std::move(pick));
      job->set_file_deleter(MakeFileDeleter());
      PTSB_RETURN_IF_ERROR(job->Prepare());
      for (;;) {
        PTSB_ASSIGN_OR_RETURN(
            const bool done, job->Step(options_.compaction_budget_bytes * 8));
        if (done) break;
      }
      stats_.compaction_bytes_read += job->io_stats().bytes_read;
      stats_.compaction_bytes_written += job->io_stats().bytes_written;
      EvictReaders(job->deleted_files());
    }
  }
  return Status::OK();
}

StatusOr<SstReader*> LsmStore::GetReader(uint64_t number) {
  auto it = readers_.find(number);
  if (it != readers_.end()) return it->second.get();
  PTSB_ASSIGN_OR_RETURN(fs::File * file,
                        fs_->Open(VersionSet::SstFileName(dir_, number)));
  PTSB_ASSIGN_OR_RETURN(auto reader, SstReader::Open(file));
  SstReader* raw = reader.get();
  readers_[number] = std::move(reader);
  return raw;
}

void LsmStore::EvictReaders(const std::vector<uint64_t>& numbers) {
  for (const uint64_t n : numbers) readers_.erase(n);
}

namespace {

// True when some range tombstone visible at `bound` hides a version of
// `key` written at `entry_seq`.
bool CoveredByRange(const std::vector<RangeTombstone>& tombstones,
                    std::string_view key, SequenceNumber entry_seq,
                    SequenceNumber bound) {
  for (const RangeTombstone& t : tombstones) {
    if (t.seq <= bound && RangeCovers(t, key, entry_seq)) return true;
  }
  return false;
}

// Newest version of `key` with seq <= bound in one table. SstReader::Get
// only surfaces the newest version outright, so bounded lookups walk the
// versions (internal order: newest first) through an iterator.
StatusOr<SstReader::GetResult> BoundedSstGet(SstReader* reader,
                                             std::string_view key,
                                             SequenceNumber bound) {
  SstReader::GetResult result;
  SstReader::Iterator it(reader);
  PTSB_RETURN_IF_ERROR(it.Seek(key));
  while (it.Valid() && it.key() == key) {
    if (it.seq() <= bound) {
      result.found = true;
      result.type = it.type();
      result.seq = it.seq();
      result.value.assign(it.value().data(), it.value().size());
      break;
    }
    PTSB_RETURN_IF_ERROR(it.Next());
  }
  return result;
}

}  // namespace

// A frozen view: the sequence bound plus owning references to everything
// a read at that bound can touch — the memtable of the moment (shared_ptr
// keeps it alive across rotations) and a copy of the per-level file lists
// (each file pinned in the store against physical deletion) and range
// tombstones. Destruction releases the pins under commit exclusion; the
// snapshot must be released before the store is destroyed.
class LsmStore::SnapshotImpl : public kv::Snapshot {
 public:
  explicit SnapshotImpl(LsmStore* store) : store_(store) {}
  ~SnapshotImpl() override { store_->ReleaseSnapshot(*this); }
  uint64_t sequence() const override { return seq_; }

  LsmStore* store_;
  SequenceNumber seq_ = 0;
  std::shared_ptr<Memtable> memtable_;
  std::vector<std::vector<FileMeta>> levels_;
  std::vector<RangeTombstone> tombstones_;
};

StatusOr<std::shared_ptr<const kv::Snapshot>> LsmStore::GetSnapshot() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> StatusOr<std::shared_ptr<const kv::Snapshot>> {
        auto snap = std::make_shared<SnapshotImpl>(this);
        snap->seq_ = seq_;
        snap->memtable_ = memtable_;
        snap->tombstones_ = tombstones_;
        snap->levels_.resize(versions_->num_levels());
        for (int l = 0; l < versions_->num_levels(); l++) {
          snap->levels_[l] = versions_->LevelFiles(l);
          for (const FileMeta& f : snap->levels_[l]) pins_[f.number]++;
        }
        stats_.snapshots_created++;
        stats_.snapshots_open++;
        return std::shared_ptr<const kv::Snapshot>(std::move(snap));
      });
}

void LsmStore::ReleaseSnapshot(const SnapshotImpl& snap) {
  write_group_.RunExclusive([&] {
    for (const auto& level : snap.levels_) {
      for (const FileMeta& f : level) UnpinFile(f.number);
    }
    stats_.snapshots_open--;
  });
}

void LsmStore::UnpinFile(uint64_t number) {
  auto it = pins_.find(number);
  PTSB_CHECK(it != pins_.end());
  if (--it->second > 0) return;
  pins_.erase(it);
  auto z = zombies_.find(number);
  if (z == zombies_.end()) return;  // still in the live version
  stats_.snapshot_pinned_bytes -= z->second;
  zombies_.erase(z);
  readers_.erase(number);
  // Runs inside the snapshot's destructor, so a failure cannot
  // propagate. On a healthy simulated filesystem the delete cannot
  // fail; on a dying device (fault injection) it can — the file is then
  // left behind as an orphan for the open-time sweep instead of
  // crashing in a destructor.
  fs_->Delete(VersionSet::SstFileName(dir_, number)).ok();
}

CompactionJob::FileDeleter LsmStore::MakeFileDeleter() {
  return [this](const FileMeta& f) -> StatusOr<bool> {
    if (pins_.count(f.number) != 0) {
      // A snapshot still reads this input: park it as an on-disk zombie.
      zombies_[f.number] = f.file_bytes;
      stats_.snapshot_pinned_bytes += f.file_bytes;
      return false;
    }
    PTSB_RETURN_IF_ERROR(fs_->Delete(VersionSet::SstFileName(dir_, f.number)));
    return true;
  };
}

Status LsmStore::SnapshotGetInternal(const SnapshotImpl& snap,
                                     std::string_view key,
                                     std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;

  const auto mem = snap.memtable_->Get(key, snap.seq_);
  if (mem.found) {
    if (mem.deleted ||
        CoveredByRange(snap.tombstones_, key, mem.seq, snap.seq_)) {
      return Status::NotFound("deleted");
    }
    *value = mem.value;
    stats_.user_bytes_read += value->size();
    return Status::OK();
  }
  for (size_t level = 0; level < snap.levels_.size(); level++) {
    for (const FileMeta& f : snap.levels_[level]) {
      if (key < f.smallest || key > f.largest) continue;
      PTSB_ASSIGN_OR_RETURN(SstReader * reader, GetReader(f.number));
      PTSB_ASSIGN_OR_RETURN(auto result, BoundedSstGet(reader, key, snap.seq_));
      if (result.found) {
        if (result.type == EntryType::kDelete ||
            CoveredByRange(snap.tombstones_, key, result.seq, snap.seq_)) {
          return Status::NotFound("deleted");
        }
        *value = std::move(result.value);
        stats_.user_bytes_read += value->size();
        return Status::OK();
      }
      if (level > 0) break;
    }
  }
  return Status::NotFound("no such key");
}

Status LsmStore::Get(std::string_view key, std::string* value) {
  PTSB_CHECK(!closed_);
  // Exclude in-flight group commits: a leader may be rotating the
  // memtable or retiring SSTs for followers on another thread.
  return write_group_.RunExclusive([&] { return GetInternal(key, value); });
}

Status LsmStore::Get(const kv::ReadOptions& opts, std::string_view key,
                     std::string* value) {
  if (opts.snapshot == nullptr) return Get(key, value);
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  return write_group_.RunExclusive(
      [&] { return SnapshotGetInternal(*snap, key, value); });
}

Status LsmStore::GetInternal(std::string_view key, std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;

  constexpr SequenceNumber kNoBound = ~SequenceNumber{0};
  const auto mem = memtable_->Get(key);
  if (mem.found) {
    if (mem.deleted || CoveredByRange(tombstones_, key, mem.seq, kNoBound)) {
      return Status::NotFound("deleted");
    }
    *value = mem.value;
    stats_.user_bytes_read += value->size();
    return Status::OK();
  }
  // L0 newest-first, then deeper levels.
  for (int level = 0; level < versions_->num_levels(); level++) {
    for (const FileMeta& f : versions_->LevelFiles(level)) {
      if (key < f.smallest || key > f.largest) continue;
      PTSB_ASSIGN_OR_RETURN(SstReader * reader, GetReader(f.number));
      PTSB_ASSIGN_OR_RETURN(auto result, reader->Get(key));
      if (result.bloom_negative) stats_.bloom_negatives++;
      if (result.bloom_false_positive) stats_.bloom_false_positives++;
      if (result.found) {
        if (result.type == EntryType::kDelete ||
            CoveredByRange(tombstones_, key, result.seq, kNoBound)) {
          return Status::NotFound("deleted");
        }
        *value = std::move(result.value);
        stats_.user_bytes_read += value->size();
        return Status::OK();
      }
      // L1+ files are disjoint: no other file in this level can match.
      if (level > 0) break;
    }
  }
  return Status::NotFound("no such key");
}

std::vector<Status> LsmStore::MultiGet(std::span<const std::string_view> keys,
                                       std::vector<std::string>* values) {
  PTSB_CHECK(!closed_);
  return kv::FanOutMultiGet(this, options_.clock, options_.io_queue,
                            options_.read_queue_depth, keys, values);
}

kv::ReadHandle LsmStore::ReadAsync(std::string_view key, std::string* value) {
  return kv::AsyncRead(options_.clock, options_.io_queue,
                       [&] { return Get(key, value); });
}

// Streaming merge over a memtable and a set of SSTs: picks the smallest
// entry in internal order, surfaces the newest visible version of each
// user key, skips point and range tombstones. In live mode the sources
// are the store's current memtable and version — any write invalidates
// the iterator (memtable rotation, compaction file deletion). In
// snapshot mode the sources are the snapshot's pinned memtable and
// frozen file lists, entries above the snapshot's sequence bound are
// invisible, and every cursor move takes the commit-exclusion lock — so
// the cursor survives (and serializes against) concurrent writers. The
// snapshot must outlive the cursor.
class LsmStore::MergingIterator : public kv::KVStore::Iterator {
 public:
  MergingIterator(LsmStore* store, const SnapshotImpl* snap, int readahead)
      : store_(store),
        snap_(snap),
        epoch_(store->write_epoch_),
        bound_(snap != nullptr ? snap->seq_ : ~SequenceNumber{0}),
        tombstones_(snap != nullptr ? snap->tombstones_
                                    : store->tombstones_) {
    // readahead > 1: prefetch that many data blocks per span, split
    // across foreground-read lanes at the engine's read_queue_depth so
    // one span's chunks overlap across SSD channels.
    uint64_t ra_bytes = 0;
    int depth = 1;
    if (readahead > 1) {
      ra_bytes = static_cast<uint64_t>(readahead) *
                 store_->options_.block_bytes;
      depth = std::min(readahead,
                       std::max(1, store_->options_.read_queue_depth));
    }
    Source mem_source;
    const Memtable* mt = snap != nullptr ? snap->memtable_.get()
                                         : store_->memtable_.get();
    mem_source.mem = std::make_unique<Memtable::Iterator>(mt);
    sources_.push_back(std::move(mem_source));
    auto add_file = [&](const FileMeta& f) {
      auto reader = store_->GetReader(f.number);
      if (!reader.ok()) {
        status_ = reader.status();
        return false;
      }
      Source s;
      s.sst = std::make_unique<SstReader::Iterator>(
          *reader, ra_bytes, depth > 1 ? store_->options_.clock : nullptr,
          store_->options_.io_queue, depth);
      s.largest = f.largest;
      sources_.push_back(std::move(s));
      return true;
    };
    if (snap != nullptr) {
      for (const auto& level : snap->levels_) {
        for (const FileMeta& f : level) {
          if (!add_file(f)) return;
        }
      }
    } else {
      for (int level = 0; level < store_->versions_->num_levels(); level++) {
        for (const FileMeta& f : store_->versions_->LevelFiles(level)) {
          if (!add_file(f)) return;
        }
      }
    }
  }

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    if (snap_ != nullptr) {
      store_->write_group_.RunExclusive([&] { SeekImpl(target); });
    } else {
      SeekImpl(target);
    }
  }

  bool Valid() const override {
    CheckEpoch();
    return valid_;
  }

  void Next() override {
    if (snap_ != nullptr) {
      store_->write_group_.RunExclusive([&] { NextImpl(); });
    } else {
      NextImpl();
    }
  }

  std::string_view key() const override {
    CheckEpoch();
    return key_;
  }
  std::string_view value() const override {
    CheckEpoch();
    return value_;
  }
  Status status() const override { return status_; }

 private:
  void SeekImpl(std::string_view target) {
    CheckEpoch();
    if (!status_.ok()) return;
    valid_ = false;
    have_last_ = false;
    for (Source& s : sources_) {
      const Status st = s.Seek(target);
      if (!st.ok()) {
        status_ = st;
        return;
      }
    }
    FindNextLiveEntry();
  }

  void NextImpl() {
    CheckEpoch();
    if (!valid_) return;
    valid_ = false;
    status_ = sources_[current_].Advance();
    if (!status_.ok()) return;
    FindNextLiveEntry();
  }

  // Debug-build fail-fast on use-after-write: a write can rotate the
  // memtable or delete the SSTs this iterator's sources point into, so
  // continuing would silently read stale (or freed) state. Snapshot
  // cursors are exempt: their sources are pinned, and their visibility
  // bound filters what concurrent writers append to the shared memtable.
  void CheckEpoch() const {
    PTSB_DCHECK(snap_ != nullptr || epoch_ == store_->write_epoch_)
        << "LSM iterator used after a write to the store; iterators "
           "observe the store as of creation and are invalidated by "
           "writes (create, consume, discard)";
  }

  struct Source {
    // Exactly one of mem/sst is set.
    std::unique_ptr<Memtable::Iterator> mem;
    std::unique_ptr<SstReader::Iterator> sst;
    std::string largest;  // sst only: upper key bound for pruning
    bool pruned = false;  // file cannot contain keys >= the seek target
    bool Valid() const {
      return !pruned && (mem ? mem->Valid() : sst->Valid());
    }
    std::string_view key() const { return mem ? mem->key() : sst->key(); }
    SequenceNumber seq() const { return mem ? mem->seq() : sst->seq(); }
    EntryType type() const { return mem ? mem->type() : sst->type(); }
    std::string_view value() const {
      return mem ? mem->value() : sst->value();
    }
    Status Seek(std::string_view target) {
      if (mem) {
        mem->Seek(target);
        return Status::OK();
      }
      // Skip the index search and block read for files entirely below
      // the target (the dominant case when seeking into a big store).
      pruned = largest < target;
      if (pruned) return Status::OK();
      return sst->Seek(target);
    }
    Status Advance() {
      if (mem) {
        mem->Next();
        return Status::OK();
      }
      return sst->Next();
    }
  };

  // Advances past shadowed versions and tombstones until positioned on
  // the newest live version of the next user key (or exhausts sources).
  void FindNextLiveEntry() {
    while (status_.ok()) {
      int best = -1;
      for (size_t i = 0; i < sources_.size(); i++) {
        if (!sources_[i].Valid()) continue;
        if (best < 0 ||
            CompareInternal(sources_[i].key(), sources_[i].seq(),
                            sources_[best].key(), sources_[best].seq()) < 0) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) return;  // all sources exhausted: clean end
      Source& src = sources_[best];
      if (src.seq() > bound_) {
        // Written after the snapshot: invisible, and it does NOT shadow —
        // an older visible version of the same key may follow.
        status_ = src.Advance();
        continue;
      }
      const bool shadowed = have_last_ && src.key() == last_user_key_;
      if (!shadowed) {
        last_user_key_.assign(src.key().data(), src.key().size());
        have_last_ = true;
        if (src.type() == EntryType::kPut &&
            !CoveredByRange(tombstones_, src.key(), src.seq(), bound_)) {
          key_ = last_user_key_;
          value_.assign(src.value().data(), src.value().size());
          current_ = static_cast<size_t>(best);
          valid_ = true;
          store_->stats_.user_bytes_read += key_.size() + value_.size();
          return;
        }
      }
      status_ = src.Advance();
    }
  }

  LsmStore* store_;
  const SnapshotImpl* snap_;  // null: live mode
  const uint64_t epoch_;  // store_->write_epoch_ at creation
  const SequenceNumber bound_;  // newest visible sequence
  const std::vector<RangeTombstone> tombstones_;
  std::vector<Source> sources_;
  size_t current_ = 0;  // source providing the current entry
  std::string last_user_key_;
  bool have_last_ = false;
  bool valid_ = false;
  std::string key_;
  std::string value_;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> LsmStore::NewIterator() {
  PTSB_CHECK(!closed_);
  // Construction snapshots sources, so it excludes in-flight commits;
  // iteration itself still requires a quiesced writer (epoch-checked).
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<MergingIterator>(this, nullptr, 0);
      });
}

std::unique_ptr<kv::KVStore::Iterator> LsmStore::NewIterator(
    const kv::ReadOptions& opts) {
  PTSB_CHECK(!closed_);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  if (snap != nullptr) {
    PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  }
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<MergingIterator>(this, snap, opts.readahead);
      });
}

Status LsmStore::Flush() {
  PTSB_CHECK(!closed_);
  write_epoch_++;  // memtable rotation invalidates open iterators
  // The user asked for durability: wait out in-flight background
  // compaction before flushing, like the other engines' Flush does.
  JoinBackgroundWork();
  PTSB_RETURN_IF_ERROR(FlushMemtable());
  return Status::OK();
}

Status LsmStore::Close() {
  if (closed_) return Status::OK();
  JoinBackgroundWork();  // shutdown waits out in-flight compaction
  PTSB_RETURN_IF_ERROR(FlushMemtable());
  if (wal_ != nullptr) PTSB_RETURN_IF_ERROR(wal_->Sync());
  closed_ = true;
  return Status::OK();
}

uint64_t LsmStore::DiskBytesUsed() const {
  uint64_t total = 0;
  for (const std::string& name : fs_->List(dir_ + "/")) {
    auto size = fs_->FileSize(name);
    if (size.ok()) total += *size;
  }
  return total;
}

namespace {

LsmOptions LsmOptionsFromEngineOptions(const kv::EngineOptions& eo) {
  LsmOptions o;
  o.memtable_bytes = kv::ParamUint64(eo, "memtable_bytes", o.memtable_bytes);
  o.l0_compaction_trigger =
      kv::ParamInt(eo, "l0_compaction_trigger", o.l0_compaction_trigger);
  o.l0_stall_trigger =
      kv::ParamInt(eo, "l0_stall_trigger", o.l0_stall_trigger);
  o.l1_target_bytes =
      kv::ParamUint64(eo, "l1_target_bytes", o.l1_target_bytes);
  o.level_size_ratio =
      kv::ParamDouble(eo, "level_size_ratio", o.level_size_ratio);
  o.max_levels = kv::ParamInt(eo, "max_levels", o.max_levels);
  o.sst_target_bytes =
      kv::ParamUint64(eo, "sst_target_bytes", o.sst_target_bytes);
  o.block_bytes = kv::ParamUint64(eo, "block_bytes", o.block_bytes);
  o.bloom_bits_per_key =
      kv::ParamInt(eo, "bloom_bits_per_key", o.bloom_bits_per_key);
  o.wal_enabled = kv::ParamBool(eo, "wal_enabled", o.wal_enabled);
  o.wal_sync_every_bytes =
      kv::ParamUint64(eo, "wal_sync_every_bytes", o.wal_sync_every_bytes);
  o.wal_buffer_bytes =
      kv::ParamUint64(eo, "wal_buffer_bytes", o.wal_buffer_bytes);
  o.compaction_readahead_bytes = kv::ParamUint64(
      eo, "compaction_readahead_bytes", o.compaction_readahead_bytes);
  o.compaction_work_per_user_write =
      kv::ParamUint64(eo, "compaction_work_per_user_write",
                      o.compaction_work_per_user_write);
  o.compaction_budget_bytes = kv::ParamUint64(eo, "compaction_budget_bytes",
                                              o.compaction_budget_bytes);
  o.compaction_parallelism =
      kv::ParamInt(eo, "compaction_parallelism", o.compaction_parallelism);
  o.cpu_put_ns = kv::ParamInt64(eo, "cpu_put_ns", o.cpu_put_ns);
  o.cpu_get_ns = kv::ParamInt64(eo, "cpu_get_ns", o.cpu_get_ns);
  o.max_write_group_bytes = kv::ParamUint64(eo, "max_write_group_bytes",
                                            o.max_write_group_bytes);
  o.read_queue_depth =
      kv::ParamInt(eo, "read_queue_depth", o.read_queue_depth);
  o.background_io = kv::ParamBool(eo, "background_io", o.background_io);
  o.clock = eo.clock;
  o.io_queue = eo.io_queue;
  o.background_queue = eo.background_queue;
  return o;
}

}  // namespace

void RegisterLsmEngine() {
  kv::EngineRegistry::Global().Register(
      "lsm",
      [](const kv::EngineOptions& eo)
          -> StatusOr<std::unique_ptr<kv::KVStore>> {
        auto opened =
            LsmStore::Open(eo.fs, LsmOptionsFromEngineOptions(eo),
                           eo.root.empty() ? "lsm" : eo.root);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<kv::KVStore>(std::move(*opened));
      });
}

std::map<std::string, std::string> EncodeEngineParams(const LsmOptions& o) {
  std::map<std::string, std::string> p;
  p["memtable_bytes"] = std::to_string(o.memtable_bytes);
  p["l0_compaction_trigger"] = std::to_string(o.l0_compaction_trigger);
  p["l0_stall_trigger"] = std::to_string(o.l0_stall_trigger);
  p["l1_target_bytes"] = std::to_string(o.l1_target_bytes);
  p["level_size_ratio"] = std::to_string(o.level_size_ratio);
  p["max_levels"] = std::to_string(o.max_levels);
  p["sst_target_bytes"] = std::to_string(o.sst_target_bytes);
  p["block_bytes"] = std::to_string(o.block_bytes);
  p["bloom_bits_per_key"] = std::to_string(o.bloom_bits_per_key);
  p["wal_enabled"] = o.wal_enabled ? "1" : "0";
  p["wal_sync_every_bytes"] = std::to_string(o.wal_sync_every_bytes);
  p["wal_buffer_bytes"] = std::to_string(o.wal_buffer_bytes);
  p["compaction_readahead_bytes"] =
      std::to_string(o.compaction_readahead_bytes);
  p["compaction_work_per_user_write"] =
      std::to_string(o.compaction_work_per_user_write);
  p["compaction_budget_bytes"] = std::to_string(o.compaction_budget_bytes);
  p["compaction_parallelism"] = std::to_string(o.compaction_parallelism);
  p["cpu_put_ns"] = std::to_string(o.cpu_put_ns);
  p["cpu_get_ns"] = std::to_string(o.cpu_get_ns);
  p["max_write_group_bytes"] = std::to_string(o.max_write_group_bytes);
  p["read_queue_depth"] = std::to_string(o.read_queue_depth);
  p["background_io"] = o.background_io ? "1" : "0";
  return p;
}

std::string LsmStore::DebugString() const {
  std::string out = StrPrintf("LsmStore seq=%llu memtable=%s\n",
                              static_cast<unsigned long long>(seq_),
                              HumanBytes(memtable_->ApproximateBytes()).c_str());
  for (int l = 0; l < versions_->num_levels(); l++) {
    const auto& files = versions_->LevelFiles(l);
    if (files.empty()) continue;
    out += StrPrintf("  L%d: %3zu files  %s\n", l, files.size(),
                     HumanBytes(versions_->LevelBytes(l)).c_str());
  }
  return out;
}

}  // namespace ptsb::lsm
