// Configuration of the LSM engine. Defaults correspond to the RocksDB
// setup the paper benchmarks (64 MiB memtables, leveled compaction with
// size ratio 10, WAL on); experiment presets divide the structural sizes by
// the simulation scale factor.
#ifndef PTSB_LSM_OPTIONS_H_
#define PTSB_LSM_OPTIONS_H_

#include <cstdint>

#include "sim/clock.h"

namespace ptsb::lsm {

struct LsmOptions {
  // Memtable (write buffer) capacity.
  uint64_t memtable_bytes = 64ull << 20;

  // Number of L0 files that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  // Number of L0 files at which user writes stall until compaction
  // catches up (RocksDB's stop-writes trigger).
  int l0_stall_trigger = 12;

  // Target size of L1; level i+1 targets level_size_ratio x level i.
  uint64_t l1_target_bytes = 256ull << 20;
  double level_size_ratio = 10.0;
  int max_levels = 7;

  // Target size of one SST file.
  uint64_t sst_target_bytes = 64ull << 20;
  // Data block size within an SST.
  uint64_t block_bytes = 4096;
  // Bloom filter bits per key (0 disables blooms).
  int bloom_bits_per_key = 10;

  // Write-ahead log. RocksDB's default: WAL written on every put, synced
  // only periodically (here: never synced explicitly unless
  // wal_sync_every_bytes > 0; full pages still reach the device through
  // the filesystem as they fill).
  bool wal_enabled = true;
  uint64_t wal_sync_every_bytes = 0;
  uint64_t wal_buffer_bytes = 64 << 10;

  // Compaction/flush readahead (RocksDB uses 2 MiB by default).
  uint64_t compaction_readahead_bytes = 256 << 10;

  // How many bytes of pending compaction work to process per user write
  // (models the background compaction pool's share of the device). The
  // paper's single-user-thread workload leaves CPUs idle, so compaction
  // pacing is I/O-bound.
  uint64_t compaction_work_per_user_write = 16;  // multiplier on user bytes

  // Bytes of compaction input processed per pacing slice: each stall
  // check steps the running compaction by this budget, and drains use
  // 8x it. Step boundaries do not change the device command stream
  // (I/O is driven by iterator span loads and builder buffer flushes),
  // so this knob trades scheduling granularity, not timing accuracy.
  uint64_t compaction_budget_bytes = 8ull << 20;

  // Partitioned subcompactions: a picked compaction is split into up to
  // this many disjoint key subranges, each merged by its own job on its
  // own background submission lane (queue background_queue + i), so
  // reads and writes from different subranges overlap across SSD
  // channels. All subranges install as ONE atomic VersionSet edit.
  // 1 = today's single-job behavior, byte for byte. Only takes effect
  // with background_io and a clock (there is no overlap to win
  // otherwise).
  int compaction_parallelism = 1;

  // CPU cost charged to the virtual clock per operation (0 if no clock).
  int64_t cpu_put_ns = 8'000;
  int64_t cpu_get_ns = 10'000;

  // Cap on the merged byte size of one cross-thread commit group: a
  // leader folds waiting writers' batches into a single WAL record up to
  // this many payload bytes (its own batch always commits regardless).
  // Larger groups amortize record framing further but lengthen the
  // latency of the unluckiest follower.
  uint64_t max_write_group_bytes = 1ull << 20;

  // Max in-flight MultiGet point lookups: each runs in its own
  // foreground-read submission lane, so up to this many independent SST
  // probes overlap in virtual device time across SSD channels. 1 (or no
  // clock) = sequential Gets, the pre-async read path.
  int read_queue_depth = 1;

  // Run paced compaction on the engine's background submission lane
  // (queue `background_queue`, I/O class kBackground) instead of the
  // user's timeline: commits no longer absorb compaction device time,
  // which instead surfaces as background-channel utilization and — at
  // the L0 stall trigger, Flush and SettleBackgroundWork, where the user
  // genuinely waits — as an explicit join. Off by default: the paper's
  // baseline charges compaction to the foreground, and the PR 4 async
  // write path measured it that way.
  bool background_io = false;

  // Optional virtual clock for CPU accounting (device time is charged by
  // the device itself).
  sim::SimClock* clock = nullptr;
  // Submission queue for WriteAsync commits (see kv::EngineOptions).
  uint32_t io_queue = 0;
  // Submission queue for the background lane (see kv::EngineOptions).
  uint32_t background_queue = 1;
};

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_OPTIONS_H_
