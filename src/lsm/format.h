// Internal record format shared by the memtable, WAL, and SSTs.
//
// An internal entry is (user_key, sequence, type, value). Internal ordering
// is by user key ascending, then sequence descending (newer first), exactly
// as in LevelDB/RocksDB.
#ifndef PTSB_LSM_FORMAT_H_
#define PTSB_LSM_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ptsb::lsm {

enum class EntryType : uint8_t {
  kDelete = 0,
  kPut = 1,
  // Range tombstone: user_key holds the range begin, value the EXCLUSIVE
  // end. Lives in the WAL and the manifest (never inside SSTs); covered
  // point entries are hidden at read time by seq comparison.
  kRangeDelete = 2,
};

using SequenceNumber = uint64_t;

// A range tombstone as the read path consumes it: hides any point entry
// with begin <= key < end whose sequence is older than seq.
struct RangeTombstone {
  std::string begin;
  std::string end;  // exclusive
  SequenceNumber seq = 0;
};

inline bool RangeCovers(const RangeTombstone& t, std::string_view key,
                        SequenceNumber entry_seq) {
  return entry_seq < t.seq && t.begin <= key && key < t.end;
}

struct InternalEntry {
  std::string_view user_key;
  SequenceNumber seq = 0;
  EntryType type = EntryType::kPut;
  std::string_view value;
};

// Three-way comparison in internal order: user key ascending, sequence
// descending. Returns <0, 0, >0.
inline int CompareInternal(std::string_view a_key, SequenceNumber a_seq,
                           std::string_view b_key, SequenceNumber b_seq) {
  const int c = a_key.compare(b_key);
  if (c != 0) return c;
  if (a_seq > b_seq) return -1;  // higher sequence sorts first
  if (a_seq < b_seq) return 1;
  return 0;
}

// Packs (seq, type) into the 64-bit tag stored on disk (seq << 8 | type).
inline uint64_t PackSeqType(SequenceNumber seq, EntryType type) {
  return (seq << 8) | static_cast<uint64_t>(type);
}
inline SequenceNumber UnpackSeq(uint64_t tag) { return tag >> 8; }
inline EntryType UnpackType(uint64_t tag) {
  return static_cast<EntryType>(tag & 0xff);
}

// SST file footer magic ("ptsbsst1" little-endian-ish).
constexpr uint64_t kSstMagic = 0x3174737362737470ULL;
// WAL record magic-free; WAL uses per-record CRCs.

constexpr int kFooterBytes = 8 + 4 + 8 + 4 + 8 + 8;  // see SstBuilder::Finish

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_FORMAT_H_
