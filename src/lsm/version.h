// LSM tree metadata: the set of live SST files per level, persisted through
// an append-only MANIFEST (with snapshot rotation) and a CURRENT pointer
// file, as in LevelDB/RocksDB.
//
// Level invariants:
//   L0: files may overlap; ordered newest-first (descending file number).
//   L1+: files have disjoint key ranges; ordered by smallest key.
#ifndef PTSB_LSM_VERSION_H_
#define PTSB_LSM_VERSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fs/filesystem.h"
#include "lsm/format.h"
#include "util/status.h"

namespace ptsb::lsm {

struct FileMeta {
  uint64_t number = 0;
  uint64_t file_bytes = 0;
  uint64_t num_entries = 0;
  std::string smallest;  // user keys
  std::string largest;
};

struct VersionEdit {
  std::optional<uint64_t> next_file_number;
  std::optional<SequenceNumber> last_sequence;
  std::optional<uint64_t> log_number;
  std::vector<std::pair<int, FileMeta>> added;    // (level, file)
  std::vector<std::pair<int, uint64_t>> removed;  // (level, file number)
  // Replace-on-apply: when present, the FULL range-tombstone list as of
  // this edit (written at every memtable flush, so the manifest state is
  // always "tombstones as of the last flush"; WAL replay re-adds newer
  // ones). Absent means "unchanged".
  std::optional<std::vector<RangeTombstone>> range_tombstones;

  std::string Encode() const;
  static StatusOr<VersionEdit> Decode(std::string_view in);
};

class VersionSet {
 public:
  VersionSet(fs::SimpleFs* fs, std::string dir, int max_levels);

  // Loads state from CURRENT/MANIFEST, or initializes a fresh store.
  Status Recover();

  // Applies the edit and persists it to the manifest (rotating if large).
  Status LogAndApply(const VersionEdit& edit);

  // State accessors.
  const std::vector<FileMeta>& LevelFiles(int level) const {
    return levels_[level];
  }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  uint64_t LevelBytes(int level) const;
  uint64_t TotalSstBytes() const;
  uint64_t TotalEntries() const;
  int MaxPopulatedLevel() const;  // -1 if empty

  // Durable range tombstones (as of the last flush-carrying edit).
  const std::vector<RangeTombstone>& range_tombstones() const {
    return tombstones_;
  }

  uint64_t NewFileNumber() { return next_file_number_++; }
  // Guarantees NewFileNumber never re-issues `number`. Recovery calls
  // this for every file found on disk: a crash can leave files whose
  // allocating edit never reached the manifest, and a reissued number
  // would collide on Create.
  void EnsureFileNumberPast(uint64_t number) {
    next_file_number_ = std::max(next_file_number_, number + 1);
  }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void set_last_sequence(SequenceNumber s) { last_sequence_ = s; }
  uint64_t log_number() const { return log_number_; }

  // Files in `level` overlapping [smallest, largest] (user-key range).
  std::vector<FileMeta> Overlapping(int level, std::string_view smallest,
                                    std::string_view largest) const;

  static std::string SstFileName(const std::string& dir, uint64_t number);
  static std::string WalFileName(const std::string& dir, uint64_t number);

  // Invariant checks for tests: L1+ sorted and disjoint, L0 newest-first.
  Status CheckInvariants() const;

 private:
  Status WriteSnapshot();
  void Apply(const VersionEdit& edit);
  std::string ManifestName(uint64_t number) const;
  std::string CurrentName() const;

  fs::SimpleFs* fs_;
  std::string dir_;
  std::vector<std::vector<FileMeta>> levels_;
  std::vector<RangeTombstone> tombstones_;
  uint64_t next_file_number_ = 1;
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;
  uint64_t manifest_number_ = 0;
  fs::File* manifest_file_ = nullptr;
  uint64_t manifest_edits_ = 0;
};

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_VERSION_H_
