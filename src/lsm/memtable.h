// In-memory write buffer: a skiplist in INTERNAL order (user key
// ascending, sequence descending) holding every version written since
// the last flush. Multi-versioning is what lets a snapshot at sequence S
// keep reading the value a later write overwrote: lookups and scans take
// a sequence bound and surface the newest version at or below it.
#ifndef PTSB_LSM_MEMTABLE_H_
#define PTSB_LSM_MEMTABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "lsm/format.h"
#include "util/random.h"

namespace ptsb::lsm {

class Memtable {
 public:
  Memtable();
  ~Memtable();  // defined out of line: Node is an incomplete type here

  Memtable(const Memtable&) = delete;
  Memtable& operator=(const Memtable&) = delete;

  // Inserts a new version. Delete is an Add with EntryType::kDelete.
  // Sequences for one user key must arrive in ascending order (they do:
  // the store assigns them monotonically under the commit lock).
  void Add(std::string_view key, SequenceNumber seq, EntryType type,
           std::string_view value);

  // Lookup result semantics: found=true + deleted=false -> value set;
  // found=true + deleted=true -> key has a tombstone here.
  struct LookupResult {
    bool found = false;
    bool deleted = false;
    std::string value;
    SequenceNumber seq = 0;
  };
  // Newest version with seq <= max_seq (snapshot reads pass their bound;
  // live reads pass the default, which sees everything).
  LookupResult Get(std::string_view key,
                   SequenceNumber max_seq = ~SequenceNumber{0}) const;

  // Approximate memory footprint (keys + values + node overhead).
  uint64_t ApproximateBytes() const { return bytes_; }
  uint64_t entries() const { return entries_; }
  bool empty() const { return entries_ == 0; }

  // Ordered forward iteration (for flush and scans).
  class Iterator {
   public:
    explicit Iterator(const Memtable* mt);
    bool Valid() const;
    void SeekToFirst();
    void Seek(std::string_view key);  // first entry with key >= target
    void Next();
    std::string_view key() const;
    SequenceNumber seq() const;
    EntryType type() const;
    std::string_view value() const;

   private:
    friend class Memtable;
    const Memtable* mt_;
    const void* node_;  // Memtable::Node*
  };

 private:
  struct Node;
  static constexpr int kMaxHeight = 12;

  Node* NewNode(std::string_view key, int height);
  // Returns the last node with key < target at each level (prev array).
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;
  int RandomHeight();

  std::deque<std::unique_ptr<Node>> arena_;
  Node* head_;
  int height_ = 1;
  Rng rng_;
  uint64_t bytes_ = 0;
  uint64_t entries_ = 0;
};

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_MEMTABLE_H_
