#include "lsm/bloom.h"

#include <algorithm>

namespace ptsb::lsm {

uint32_t BloomHash(std::string_view key) {
  // Murmur-inspired hash (LevelDB's Hash()).
  constexpr uint32_t kSeed = 0xbc9f1d34;
  constexpr uint32_t kM = 0xc6a4a793;
  const size_t n = key.size();
  const char* data = key.data();
  uint32_t h = kSeed ^ (static_cast<uint32_t>(n) * kM);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t w;
    __builtin_memcpy(&w, data + i, 4);
    h += w;
    h *= kM;
    h ^= (h >> 16);
  }
  switch (n - i) {
    case 3:
      h += static_cast<uint8_t>(data[i + 2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[i + 1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[i]);
      h *= kM;
      h ^= (h >> 24);
      break;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(std::string_view key) {
  if (bits_per_key_ <= 0) return;
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  if (bits_per_key_ <= 0 || hashes_.empty()) {
    return std::string(1, '\0');  // empty filter: matches everything
  }
  // k = bits_per_key * ln(2), clamped as in LevelDB.
  int k = static_cast<int>(bits_per_key_ * 0.69);
  k = std::clamp(k, 1, 30);

  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes + 1, '\0');
  filter[bytes] = static_cast<char>(k);
  for (uint32_t h : hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int j = 0; j < k; j++) {
      const size_t bit = h % bits;
      filter[bit / 8] = static_cast<char>(
          static_cast<uint8_t>(filter[bit / 8]) | (1 << (bit % 8)));
      h += delta;
    }
  }
  hashes_.clear();
  return filter;
}

BloomFilter::BloomFilter(std::string data) : data_(std::move(data)) {}

bool BloomFilter::MayContain(std::string_view key) const {
  if (data_.size() <= 1) return true;
  const size_t bits = (data_.size() - 1) * 8;
  const int k = data_[data_.size() - 1];
  if (k <= 0 || k > 30) return true;  // treat malformed as match-all
  uint32_t h = BloomHash(key);
  uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const size_t bit = h % bits;
    if ((static_cast<uint8_t>(data_[bit / 8]) & (1 << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace ptsb::lsm
