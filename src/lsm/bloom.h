// Standard double-hashing Bloom filter for SST files (same construction as
// LevelDB's BloomFilterPolicy).
#ifndef PTSB_LSM_BLOOM_H_
#define PTSB_LSM_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptsb::lsm {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(std::string_view key);

  // Serializes the filter: [bit array][1 byte k].
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  std::vector<uint32_t> hashes_;
};

class BloomFilter {
 public:
  // data as produced by BloomFilterBuilder::Finish. Keeps a copy.
  explicit BloomFilter(std::string data);

  // May return a false positive; never a false negative.
  bool MayContain(std::string_view key) const;

  // An empty filter (e.g. bloom disabled) matches everything.
  bool empty() const { return data_.size() <= 1; }
  size_t SizeBytes() const { return data_.size(); }

 private:
  std::string data_;
};

// The hash both sides use.
uint32_t BloomHash(std::string_view key);

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_BLOOM_H_
