// Write-ahead log. One record per write *batch* (group commit):
//   fixed32 masked-crc(payload) | varint32 len | payload
//   payload: (fixed64 tag | varint32 klen | key | varint32 vlen | value)+
// A single-op Put/Delete is a one-entry batch, so the legacy one-entry
// records parse identically. Record framing (crc + length) is paid once
// per batch — the WAL byte overhead amortizes across batched entries.
// Replay stops cleanly at the first truncated or corrupt record, which is
// exactly what a post-crash tail looks like.
#ifndef PTSB_LSM_WAL_H_
#define PTSB_LSM_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "fs/file.h"
#include "kv/write_batch.h"
#include "lsm/format.h"
#include "util/status.h"

namespace ptsb::lsm {

class WalWriter {
 public:
  // Does not take ownership. sync_every_bytes == 0 -> never explicit sync
  // (full filesystem pages still reach the device as they fill).
  // Records are staged in a `buffer_bytes` memory buffer before hitting
  // the filesystem (RocksDB's log writer buffering), so the device sees
  // few large WAL writes. Buffered-but-unflushed records are lost on
  // crash, exactly like the default (unsynced) RocksDB WAL.
  WalWriter(fs::File* file, uint64_t sync_every_bytes,
            uint64_t buffer_bytes = 64 << 10);

  Status Add(std::string_view key, SequenceNumber seq, EntryType type,
             std::string_view value);

  // Appends the whole batch as ONE record; entry i gets sequence
  // first_seq + i. This is the group-commit path.
  Status AddBatch(const kv::WriteBatch& batch, SequenceNumber first_seq);

  Status Sync();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  // Frames `payload` (crc + length), stages it, handles buffer flush and
  // periodic sync. Updates bytes_written_ with the exact record size.
  Status EmitRecord(std::string_view payload);
  Status FlushBuffer();

  fs::File* file_;
  uint64_t sync_every_bytes_;
  uint64_t buffer_bytes_;
  std::string buffer_;
  uint64_t bytes_written_ = 0;
  uint64_t unsynced_ = 0;
};

// Replays a WAL file; invokes fn for every intact record in order. Returns
// OK even if the tail is truncated/corrupt (that is the normal crash case);
// returns Corruption only for structurally impossible states.
Status ReplayWal(fs::File* file,
                 const std::function<void(std::string_view key,
                                          SequenceNumber seq, EntryType type,
                                          std::string_view value)>& fn);

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_WAL_H_
