#include "lsm/memtable.h"

#include "util/logging.h"

namespace ptsb::lsm {

struct Memtable::Node {
  std::string key;
  std::string value;
  SequenceNumber seq = 0;
  EntryType type = EntryType::kPut;
  int height = 1;
  Node* next[kMaxHeight] = {};
};

namespace {
// Per-entry bookkeeping overhead (node, pointers) used for the memtable
// size trigger; mirrors the arena accounting a real engine does.
constexpr uint64_t kNodeOverhead = 64;
}  // namespace

Memtable::~Memtable() = default;

Memtable::Memtable() : rng_(0x9e3779b97f4a7c15ULL) {
  auto head = std::make_unique<Node>();
  head->height = kMaxHeight;
  head_ = head.get();
  arena_.push_back(std::move(head));
}

Memtable::Node* Memtable::NewNode(std::string_view key, int height) {
  auto node = std::make_unique<Node>();
  node->key.assign(key.data(), key.size());
  node->height = height;
  Node* raw = node.get();
  arena_.push_back(std::move(node));
  return raw;
}

int Memtable::RandomHeight() {
  // Increase height with probability 1/4 per level, as in LevelDB.
  int height = 1;
  while (height < kMaxHeight && (rng_.Next() & 3) == 0) height++;
  return height;
}

Memtable::Node* Memtable::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* x = head_;
  int level = height_ - 1;
  for (;;) {
    Node* next = x->next[level];
    if (next != nullptr && next->key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      level--;
    }
  }
}

void Memtable::Add(std::string_view key, SequenceNumber seq, EntryType type,
                   std::string_view value) {
  Node* prev[kMaxHeight];
  // Always insert: the new node lands BEFORE any existing versions of the
  // same user key (FindGreaterOrEqual stops at the first node with
  // key >= target), and since sequences per key arrive ascending, level-0
  // order is exactly internal order — key ascending, seq descending.
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    PTSB_DCHECK(seq > node->seq);
  }
  const int height = RandomHeight();
  if (height > height_) {
    for (int i = height_; i < height; i++) prev[i] = head_;
    height_ = height;
  }
  Node* fresh = NewNode(key, height);
  fresh->value.assign(value.data(), value.size());
  fresh->seq = seq;
  fresh->type = type;
  for (int i = 0; i < height; i++) {
    fresh->next[i] = prev[i]->next[i];
    prev[i]->next[i] = fresh;
  }
  entries_++;
  bytes_ += key.size() + value.size() + kNodeOverhead;
}

Memtable::LookupResult Memtable::Get(std::string_view key,
                                     SequenceNumber max_seq) const {
  LookupResult r;
  const Node* node = FindGreaterOrEqual(key, nullptr);
  // Versions of one key sit newest-first; skip those above the bound.
  while (node != nullptr && node->key == key && node->seq > max_seq) {
    node = node->next[0];
  }
  if (node == nullptr || node->key != key) return r;
  r.found = true;
  r.seq = node->seq;
  if (node->type == EntryType::kDelete) {
    r.deleted = true;
  } else {
    r.value = node->value;
  }
  return r;
}

Memtable::Iterator::Iterator(const Memtable* mt) : mt_(mt), node_(nullptr) {}

bool Memtable::Iterator::Valid() const { return node_ != nullptr; }

void Memtable::Iterator::SeekToFirst() { node_ = mt_->head_->next[0]; }

void Memtable::Iterator::Seek(std::string_view key) {
  node_ = mt_->FindGreaterOrEqual(key, nullptr);
}

void Memtable::Iterator::Next() {
  PTSB_DCHECK(Valid());
  node_ = static_cast<const Node*>(node_)->next[0];
}

std::string_view Memtable::Iterator::key() const {
  return static_cast<const Node*>(node_)->key;
}
SequenceNumber Memtable::Iterator::seq() const {
  return static_cast<const Node*>(node_)->seq;
}
EntryType Memtable::Iterator::type() const {
  return static_cast<const Node*>(node_)->type;
}
std::string_view Memtable::Iterator::value() const {
  return static_cast<const Node*>(node_)->value;
}

}  // namespace ptsb::lsm
