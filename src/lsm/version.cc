#include "lsm/version.h"

#include "fs/file.h"

#include <algorithm>

#include "util/crc32.h"
#include "util/encoding.h"
#include "util/human.h"
#include "util/logging.h"

namespace ptsb::lsm {

namespace {
enum EditTag : uint32_t {
  kNextFileNumber = 1,
  kLastSequence = 2,
  kLogNumber = 3,
  kAddedFile = 4,
  kRemovedFile = 5,
  kRangeTombstones = 6,  // full-list replacement (count + entries)
};
}  // namespace

std::string VersionEdit::Encode() const {
  std::string out;
  if (next_file_number) {
    PutVarint32(&out, kNextFileNumber);
    PutVarint64(&out, *next_file_number);
  }
  if (last_sequence) {
    PutVarint32(&out, kLastSequence);
    PutVarint64(&out, *last_sequence);
  }
  if (log_number) {
    PutVarint32(&out, kLogNumber);
    PutVarint64(&out, *log_number);
  }
  for (const auto& [level, f] : added) {
    PutVarint32(&out, kAddedFile);
    PutVarint32(&out, static_cast<uint32_t>(level));
    PutVarint64(&out, f.number);
    PutVarint64(&out, f.file_bytes);
    PutVarint64(&out, f.num_entries);
    PutLengthPrefixed(&out, f.smallest);
    PutLengthPrefixed(&out, f.largest);
  }
  for (const auto& [level, number] : removed) {
    PutVarint32(&out, kRemovedFile);
    PutVarint32(&out, static_cast<uint32_t>(level));
    PutVarint64(&out, number);
  }
  if (range_tombstones) {
    PutVarint32(&out, kRangeTombstones);
    PutVarint32(&out, static_cast<uint32_t>(range_tombstones->size()));
    for (const RangeTombstone& t : *range_tombstones) {
      PutLengthPrefixed(&out, t.begin);
      PutLengthPrefixed(&out, t.end);
      PutVarint64(&out, t.seq);
    }
  }
  return out;
}

StatusOr<VersionEdit> VersionEdit::Decode(std::string_view in) {
  VersionEdit edit;
  while (!in.empty()) {
    uint32_t tag;
    if (!GetVarint32(&in, &tag)) {
      return Status::Corruption("bad edit tag");
    }
    uint64_t v64;
    switch (tag) {
      case kNextFileNumber:
        if (!GetVarint64(&in, &v64)) return Status::Corruption("bad edit");
        edit.next_file_number = v64;
        break;
      case kLastSequence:
        if (!GetVarint64(&in, &v64)) return Status::Corruption("bad edit");
        edit.last_sequence = v64;
        break;
      case kLogNumber:
        if (!GetVarint64(&in, &v64)) return Status::Corruption("bad edit");
        edit.log_number = v64;
        break;
      case kAddedFile: {
        uint32_t level;
        FileMeta f;
        std::string_view smallest, largest;
        if (!GetVarint32(&in, &level) || !GetVarint64(&in, &f.number) ||
            !GetVarint64(&in, &f.file_bytes) ||
            !GetVarint64(&in, &f.num_entries) ||
            !GetLengthPrefixed(&in, &smallest) ||
            !GetLengthPrefixed(&in, &largest)) {
          return Status::Corruption("bad added-file edit");
        }
        f.smallest.assign(smallest.data(), smallest.size());
        f.largest.assign(largest.data(), largest.size());
        edit.added.emplace_back(static_cast<int>(level), std::move(f));
        break;
      }
      case kRemovedFile: {
        uint32_t level;
        if (!GetVarint32(&in, &level) || !GetVarint64(&in, &v64)) {
          return Status::Corruption("bad removed-file edit");
        }
        edit.removed.emplace_back(static_cast<int>(level), v64);
        break;
      }
      case kRangeTombstones: {
        uint32_t count;
        if (!GetVarint32(&in, &count)) {
          return Status::Corruption("bad range-tombstone edit");
        }
        std::vector<RangeTombstone> list;
        list.reserve(count);
        for (uint32_t i = 0; i < count; i++) {
          std::string_view begin, end;
          uint64_t seq;
          if (!GetLengthPrefixed(&in, &begin) ||
              !GetLengthPrefixed(&in, &end) || !GetVarint64(&in, &seq)) {
            return Status::Corruption("bad range-tombstone edit");
          }
          RangeTombstone t;
          t.begin.assign(begin.data(), begin.size());
          t.end.assign(end.data(), end.size());
          t.seq = seq;
          list.push_back(std::move(t));
        }
        edit.range_tombstones = std::move(list);
        break;
      }
      default:
        return Status::Corruption("unknown edit tag");
    }
  }
  return edit;
}

VersionSet::VersionSet(fs::SimpleFs* fs, std::string dir, int max_levels)
    : fs_(fs), dir_(std::move(dir)), levels_(max_levels) {}

std::string VersionSet::SstFileName(const std::string& dir, uint64_t number) {
  return StrPrintf("%s/%06llu.sst", dir.c_str(),
                   static_cast<unsigned long long>(number));
}

std::string VersionSet::WalFileName(const std::string& dir, uint64_t number) {
  return StrPrintf("%s/%06llu.log", dir.c_str(),
                   static_cast<unsigned long long>(number));
}

std::string VersionSet::ManifestName(uint64_t number) const {
  return StrPrintf("%s/MANIFEST-%06llu", dir_.c_str(),
                   static_cast<unsigned long long>(number));
}

std::string VersionSet::CurrentName() const { return dir_ + "/CURRENT"; }

void VersionSet::Apply(const VersionEdit& edit) {
  if (edit.next_file_number) next_file_number_ = *edit.next_file_number;
  if (edit.last_sequence) last_sequence_ = *edit.last_sequence;
  if (edit.log_number) log_number_ = *edit.log_number;
  if (edit.range_tombstones) tombstones_ = *edit.range_tombstones;
  for (const auto& [level, number] : edit.removed) {
    auto& files = levels_[level];
    files.erase(std::remove_if(files.begin(), files.end(),
                               [n = number](const FileMeta& f) {
                                 return f.number == n;
                               }),
                files.end());
  }
  // One edit may carry many additions (a memtable flush, or a
  // partitioned subcompaction installing every subrange's outputs as
  // one atomic record); the re-sort below makes the order they arrive
  // in irrelevant, but each file number must appear at most once.
#ifndef NDEBUG
  {
    std::vector<uint64_t> nums;
    for (const auto& [level, f] : edit.added) nums.push_back(f.number);
    std::sort(nums.begin(), nums.end());
    PTSB_DCHECK(std::adjacent_find(nums.begin(), nums.end()) == nums.end())
        << "duplicate file number added by one VersionEdit";
  }
#endif
  for (const auto& [level, f] : edit.added) {
    // Never hand out a number at or below one we have seen in use.
    next_file_number_ = std::max(next_file_number_, f.number + 1);
    levels_[level].push_back(f);
  }
  if (edit.log_number) {
    next_file_number_ = std::max(next_file_number_, *edit.log_number + 1);
  }
  // Restore ordering invariants.
  std::sort(levels_[0].begin(), levels_[0].end(),
            [](const FileMeta& a, const FileMeta& b) {
              return a.number > b.number;  // newest first
            });
  for (size_t l = 1; l < levels_.size(); l++) {
    std::sort(levels_[l].begin(), levels_[l].end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.smallest < b.smallest;
              });
  }
}

Status VersionSet::Recover() {
  if (!fs_->Exists(CurrentName())) {
    // Fresh store.
    manifest_number_ = next_file_number_++;
    return WriteSnapshot();
  }
  // Read CURRENT.
  PTSB_ASSIGN_OR_RETURN(fs::File * current, fs_->Open(CurrentName()));
  std::string manifest_name(current->size(), '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        current->ReadAt(0, manifest_name.size(),
                                        manifest_name.data()));
  manifest_name.resize(got);
  if (manifest_name.empty()) return Status::Corruption("empty CURRENT");

  PTSB_ASSIGN_OR_RETURN(fs::File * manifest, fs_->Open(manifest_name));
  std::string data(manifest->size(), '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t mgot,
                        manifest->ReadAt(0, data.size(), data.data()));
  std::string_view in(data.data(), mgot);
  while (!in.empty()) {
    uint32_t crc, len;
    if (!GetFixed32(&in, &crc) || !GetVarint32(&in, &len) ||
        in.size() < len) {
      break;  // torn tail
    }
    const std::string_view payload = in.substr(0, len);
    in.remove_prefix(len);
    if (UnmaskCrc(crc) != Crc32c(payload)) break;
    PTSB_ASSIGN_OR_RETURN(VersionEdit edit, VersionEdit::Decode(payload));
    Apply(edit);
  }
  // Parse the manifest number back out of its name for rotation.
  const size_t dash = manifest_name.rfind('-');
  manifest_number_ = std::stoull(manifest_name.substr(dash + 1));
  manifest_file_ = manifest;
  return Status::OK();
}

Status VersionSet::WriteSnapshot() {
  // Full state as one edit, into a fresh manifest.
  VersionEdit snapshot;
  snapshot.next_file_number = next_file_number_;
  snapshot.last_sequence = last_sequence_;
  snapshot.log_number = log_number_;
  snapshot.range_tombstones = tombstones_;
  for (int level = 0; level < num_levels(); level++) {
    for (const FileMeta& f : levels_[level]) {
      snapshot.added.emplace_back(level, f);
    }
  }
  const uint64_t new_number = manifest_number_;
  const std::string name = ManifestName(new_number);
  if (fs_->Exists(name)) PTSB_RETURN_IF_ERROR(fs_->Delete(name));
  PTSB_ASSIGN_OR_RETURN(fs::File * file, fs_->Create(name));

  const std::string payload = snapshot.Encode();
  std::string record;
  PutFixed32(&record, MaskCrc(Crc32c(payload)));
  PutVarint32(&record, static_cast<uint32_t>(payload.size()));
  record.append(payload);
  PTSB_RETURN_IF_ERROR(file->Append(record));
  PTSB_RETURN_IF_ERROR(file->Sync());

  // Point CURRENT at it.
  const std::string tmp = CurrentName() + ".tmp";
  if (fs_->Exists(tmp)) PTSB_RETURN_IF_ERROR(fs_->Delete(tmp));
  PTSB_ASSIGN_OR_RETURN(fs::File * cur, fs_->Create(tmp));
  PTSB_RETURN_IF_ERROR(cur->Append(name));
  PTSB_RETURN_IF_ERROR(cur->Sync());
  PTSB_RETURN_IF_ERROR(fs_->Rename(tmp, CurrentName()));

  manifest_file_ = file;
  manifest_edits_ = 0;
  return Status::OK();
}

Status VersionSet::LogAndApply(const VersionEdit& edit) {
  Apply(edit);
  // Rotate the manifest periodically so it does not grow unboundedly.
  constexpr uint64_t kEditsPerManifest = 512;
  if (manifest_file_ == nullptr || manifest_edits_ >= kEditsPerManifest) {
    const uint64_t old_number = manifest_number_;
    const bool had_manifest = manifest_file_ != nullptr;
    manifest_number_ = next_file_number_++;
    PTSB_RETURN_IF_ERROR(WriteSnapshot());
    if (had_manifest) {
      PTSB_RETURN_IF_ERROR(fs_->Delete(ManifestName(old_number)));
    }
    return Status::OK();
  }
  // Stamp the counters so that a crash right after this record replays to
  // a state that never reuses a file number or a sequence number.
  VersionEdit stamped = edit;
  stamped.next_file_number = next_file_number_;
  stamped.last_sequence = last_sequence_;
  const std::string payload = stamped.Encode();
  std::string record;
  PutFixed32(&record, MaskCrc(Crc32c(payload)));
  PutVarint32(&record, static_cast<uint32_t>(payload.size()));
  record.append(payload);
  PTSB_RETURN_IF_ERROR(manifest_file_->Append(record));
  PTSB_RETURN_IF_ERROR(manifest_file_->Sync());
  manifest_edits_++;
  return Status::OK();
}

uint64_t VersionSet::LevelBytes(int level) const {
  uint64_t n = 0;
  for (const FileMeta& f : levels_[level]) n += f.file_bytes;
  return n;
}

uint64_t VersionSet::TotalSstBytes() const {
  uint64_t n = 0;
  for (int l = 0; l < num_levels(); l++) n += LevelBytes(l);
  return n;
}

uint64_t VersionSet::TotalEntries() const {
  uint64_t n = 0;
  for (const auto& level : levels_) {
    for (const FileMeta& f : level) n += f.num_entries;
  }
  return n;
}

int VersionSet::MaxPopulatedLevel() const {
  for (int l = num_levels() - 1; l >= 0; l--) {
    if (!levels_[l].empty()) return l;
  }
  return -1;
}

std::vector<FileMeta> VersionSet::Overlapping(int level,
                                              std::string_view smallest,
                                              std::string_view largest) const {
  std::vector<FileMeta> out;
  for (const FileMeta& f : levels_[level]) {
    if (f.largest < smallest || f.smallest > largest) continue;
    out.push_back(f);
  }
  return out;
}

Status VersionSet::CheckInvariants() const {
  for (size_t i = 1; i < levels_[0].size(); i++) {
    if (levels_[0][i - 1].number <= levels_[0][i].number) {
      return Status::Corruption("L0 not newest-first");
    }
  }
  for (size_t l = 1; l < levels_.size(); l++) {
    const auto& files = levels_[l];
    for (size_t i = 0; i < files.size(); i++) {
      if (files[i].smallest > files[i].largest) {
        return Status::Corruption("file with inverted range");
      }
      if (i > 0 && files[i - 1].largest >= files[i].smallest) {
        return Status::Corruption("overlapping files in L" +
                                  std::to_string(l));
      }
    }
  }
  return Status::OK();
}

}  // namespace ptsb::lsm
