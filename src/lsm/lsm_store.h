// LsmStore: the RocksDB-analog key-value store. Memtable + WAL in front,
// leveled SSTs behind, compaction interleaved with user operations.
#ifndef PTSB_LSM_LSM_STORE_H_
#define PTSB_LSM_LSM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fs/filesystem.h"
#include "kv/background_pool.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_group.h"
#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/sst.h"
#include "lsm/version.h"
#include "lsm/wal.h"

namespace ptsb::lsm {

class LsmStore : public kv::KVStore {
 public:
  // Opens (or creates) a store rooted at `dir` within `fs`. Recovers the
  // manifest and replays the WAL.
  static StatusOr<std::unique_ptr<LsmStore>> Open(fs::SimpleFs* fs,
                                                  const LsmOptions& options,
                                                  std::string dir = "lsm");
  ~LsmStore() override;

  // kv::KVStore interface. Write is the group-commit path: the batch is
  // routed through a cross-thread kv::WriteGroup, so a single caller's
  // batch becomes ONE WAL record (one memtable insertion pass, one
  // flush/compaction pacing step) and N concurrent callers' batches are
  // merged by a leader into sub-linearly many records.
  Status Write(const kv::WriteBatch& batch) override;
  // Runs the commit in a submission lane on options().io_queue, so
  // back-to-back WriteAsync calls on distinct queues overlap in virtual
  // time (see kv::KVStore::WriteAsync).
  kv::WriteHandle WriteAsync(const kv::WriteBatch& batch) override;
  Status Get(std::string_view key, std::string* value) override;
  // Fans the lookups out across foreground-read submission lanes at
  // options().read_queue_depth, so independent SST probes overlap in
  // virtual device time (see kv::KVStore::MultiGet).
  std::vector<Status> MultiGet(std::span<const std::string_view> keys,
                               std::vector<std::string>* values) override;
  // Runs the lookup in a foreground-read lane on options().io_queue (see
  // kv::KVStore::ReadAsync).
  kv::ReadHandle ReadAsync(std::string_view key, std::string* value) override;
  // Snapshot-aware point lookup: resolves the key against the snapshot's
  // pinned memtable + file lists at its sequence bound.
  Status Get(const kv::ReadOptions& opts, std::string_view key,
             std::string* value) override;
  // Merging iterator over the memtable and every live SST. Invalidated by
  // any write to the store (no snapshot pinning).
  std::unique_ptr<kv::KVStore::Iterator> NewIterator() override;
  // Snapshot / readahead variant. With a snapshot the cursor reads the
  // pinned sources (shared memtable, pinned SSTs) at the snapshot's
  // sequence bound, takes the commit-exclusion lock around every cursor
  // move (so it is safe under concurrent writers), and skips the
  // write-epoch invalidation check. The snapshot must outlive the
  // cursor. readahead > 1 prefetches that many data blocks per span,
  // split across foreground-read lanes at read_queue_depth.
  std::unique_ptr<kv::KVStore::Iterator> NewIterator(
      const kv::ReadOptions& opts) override;
  // Freezes the current state: sequence bound + shared memtable + the
  // per-level file lists (each file pinned against physical deletion) +
  // the range-tombstone list. Compaction may still retire pinned files
  // from the live version; they become zombies on disk (accounted in
  // snapshot_pinned_bytes) until the last pinning snapshot drops.
  StatusOr<std::shared_ptr<const kv::Snapshot>> GetSnapshot() override;
  Status Flush() override;
  Status SettleBackgroundWork() override { return DrainCompactions(); }
  Status Close() override;
  // Concurrent Write callers group-commit; point reads run under the
  // group's commit-exclusion lock. Iterators and lifecycle calls still
  // expect a quiesced store.
  bool SupportsConcurrentWriters() const override { return true; }
  kv::KvStoreStats GetStats() const override {
    return write_group_.RunExclusive([&] { return stats_; });
  }
  std::string Name() const override { return "lsm(rocksdb-like)"; }
  uint64_t DiskBytesUsed() const override;

  // Introspection for tests and benches.
  const VersionSet& versions() const { return *versions_; }
  uint64_t MemtableBytes() const { return memtable_->ApproximateBytes(); }
  bool CompactionPending() const {
    return job_ != nullptr || parallel_job_ != nullptr;
  }
  // Runs compaction to completion (tests; also used by Flush).
  Status DrainCompactions();
  // Manual full compaction (RocksDB CompactRange analog): pushes all data
  // to a single bottom level, dropping every shadowed version and
  // tombstone on the way.
  Status CompactAll();
  std::string DebugString() const;

 private:
  class MergingIterator;
  class SnapshotImpl;

  LsmStore(fs::SimpleFs* fs, const LsmOptions& options, std::string dir);

  // The commit function the write group's leader runs: the old Write
  // body, applied to the merged batch of `n_user_batches` user Writes.
  Status WriteInternal(const kv::WriteBatch& batch, size_t n_user_batches);
  // Get's body, run under the group's commit-exclusion lock.
  Status GetInternal(std::string_view key, std::string* value);
  Status FlushMemtable();
  // Runs up to `budget` bytes of compaction work, starting a job if due.
  // With background_io on (and a clock), the work runs on the engine's
  // background lane: the foreground clock does not advance, and the
  // completion horizon is joined back only where the user genuinely
  // waits (MaybeStall, DrainCompactions, Close).
  Status CompactionWork(uint64_t budget);
  Status CompactionWorkImpl(uint64_t budget);
  // Partitioned-subcompaction variants (compaction_parallelism > 1 with
  // background_io and a clock). The picked input set is cut into up to K
  // disjoint key subranges; each runs as its own deferred-install
  // CompactionJob on its own BackgroundPool lane, so reads/writes from
  // different subranges overlap in virtual device time. All subranges'
  // outputs install as ONE atomic VersionSet edit.
  Status ParallelCompactionWork(uint64_t budget);
  Status StartSubcompaction(CompactionPick pick);
  Status InstallSubcompaction();
  // AdvanceTo the background lane's completion horizon: the foreground
  // explicitly waiting out pending compaction.
  void JoinBackgroundWork();
  Status MaybeStall();
  StatusOr<SstReader*> GetReader(uint64_t number);
  void EvictReaders(const std::vector<uint64_t>& numbers);
  void ChargeCpu(int64_t ns) const;

  // Snapshot Get's body: newest version of `key` at the snapshot's
  // sequence bound across its pinned memtable + frozen file lists,
  // filtered by its range tombstones. Runs under commit exclusion.
  Status SnapshotGetInternal(const SnapshotImpl& snap, std::string_view key,
                             std::string* value);
  // The CompactionJob input-disposal hook: pinned inputs become on-disk
  // zombies (snapshot_pinned_bytes grows) instead of being deleted.
  CompactionJob::FileDeleter MakeFileDeleter();
  // Snapshot deleter body: un-pins every file the snapshot held and
  // physically deletes zombies whose last pin dropped.
  void ReleaseSnapshot(const SnapshotImpl& snap);
  void UnpinFile(uint64_t number);

  fs::SimpleFs* fs_;
  LsmOptions options_;
  std::string dir_;

  std::unique_ptr<VersionSet> versions_;
  // shared_ptr: a snapshot keeps the memtable it froze alive across
  // rotations (flush swaps in a fresh one; pinned versions stay readable).
  std::shared_ptr<Memtable> memtable_;
  std::unique_ptr<WalWriter> wal_;
  fs::File* wal_file_ = nullptr;
  uint64_t wal_number_ = 0;

  std::unique_ptr<CompactionJob> job_;
  // In-flight partitioned subcompaction: one pick, the shared input
  // readers (each input table opened once), and one deferred-install
  // job per key subrange. Mutually exclusive with job_.
  struct Subcompaction {
    CompactionPick pick;
    std::vector<std::unique_ptr<SstReader>> input_readers;
    std::vector<std::unique_ptr<CompactionJob>> jobs;
  };
  std::unique_ptr<Subcompaction> parallel_job_;
  // Background lanes for subcompactions (queue background_queue + i).
  // Created lazily on the first parallel pick.
  std::unique_ptr<kv::BackgroundPool> pool_;
  std::vector<uint64_t> compaction_cursors_;
  // Completion time of the last background-lane compaction span
  // (background_io): the engine's one background worker serializes on
  // it, and foreground waits join it via JoinBackgroundWork().
  int64_t background_horizon_ns_ = 0;

  // Table cache: open readers with pinned index+bloom (never evicted while
  // the file is live, as RocksDB effectively does for filter/index blocks).
  std::map<uint64_t, std::unique_ptr<SstReader>> readers_;

  // Range tombstones, oldest first: {begin, end, seq} hides every version
  // of a covered key older than seq. They live beside the key space (WAL
  // records until the next flush, then the manifest's full-list edit) and
  // are filtered on the read path, never merged into SSTs.
  std::vector<RangeTombstone> tombstones_;
  // How many of tombstones_ the manifest already holds (they are only
  // appended, so a count is a full description).
  size_t tombstones_persisted_ = 0;

  // Snapshot pinning. pins_: file number -> number of open snapshots
  // whose frozen file lists include it. zombies_: pinned files the live
  // version already dropped (compaction inputs) -> their byte size; they
  // stay on the filesystem until the last pin drops.
  std::map<uint64_t, int> pins_;
  std::map<uint64_t, uint64_t> zombies_;

  SequenceNumber seq_ = 0;
  // Bumped by every mutating entry point (Write, Flush, compaction
  // drains). Debug builds compare it against the value captured at
  // iterator creation to fail fast on use-after-write instead of reading
  // freed memtables/SSTs.
  uint64_t write_epoch_ = 0;
  kv::KvStoreStats stats_;
  // Cross-thread group commit queue; also provides the commit-exclusion
  // lock the read paths (and const stats snapshots) run under. mutable:
  // taking the exclusion lock is not logically a mutation.
  mutable kv::WriteGroup write_group_;
  bool closed_ = false;
};

// Registers the "lsm" engine factory with kv::EngineRegistry. Recognized
// params mirror LsmOptions field names (e.g. "memtable_bytes",
// "wal_enabled", "level_size_ratio"); the factory starts from default
// LsmOptions and applies overrides.
void RegisterLsmEngine();

// Encodes every numeric/bool LsmOptions field into an EngineOptions param
// map (the inverse of what the factory parses); the clock is carried by
// EngineOptions itself, not the map.
std::map<std::string, std::string> EncodeEngineParams(const LsmOptions& o);

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_LSM_STORE_H_
