// Leveled compaction: picking (score-based, with RocksDB-style trivial
// moves) and execution (an incremental job that merges input tables into
// the next level in bounded steps, so compaction I/O interleaves with user
// operations the way background compaction threads would).
#ifndef PTSB_LSM_COMPACTION_H_
#define PTSB_LSM_COMPACTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fs/filesystem.h"
#include "lsm/options.h"
#include "lsm/sst.h"
#include "lsm/version.h"
#include "util/status.h"

namespace ptsb::lsm {

// Target size for a level under the leveled policy.
uint64_t LevelTargetBytes(const LsmOptions& options, int level);

// Compaction pressure of a level: >= 1.0 means compaction is due.
double LevelScore(const VersionSet& versions, const LsmOptions& options,
                  int level);

// True when no level deeper than `output_level` holds any file, i.e.
// tombstones compacted to `output_level` can be dropped.
bool CanDropTombstones(const VersionSet& versions, int output_level);

struct CompactionPick {
  bool valid = false;
  bool trivial_move = false;  // single input, no overlap: just relink
  int level = 0;              // input level
  std::vector<FileMeta> inputs0;  // files from `level`
  std::vector<FileMeta> inputs1;  // overlapping files from `level + 1`
  bool drop_tombstones = false;
  double score = 0;
};

// Chooses the most pressured level. `cursors` holds one round-robin file
// cursor per level and is advanced by the pick.
CompactionPick PickCompaction(const VersionSet& versions,
                              const LsmOptions& options,
                              std::vector<uint64_t>* cursors);

// Range splitter for partitioned subcompactions: cuts the key space the
// input tables cover into up to `k` byte-balanced subranges, using the
// readers' pinned block indexes as (last key, block bytes) anchors — no
// device I/O. Returns the interior boundaries b_1 < ... < b_m (m <=
// k-1) as user keys: subrange i covers (b_{i-1}, b_i], begin-exclusive
// and end-inclusive, with the first subrange open at the bottom and the
// last unbounded at the top. Boundaries are block last-keys, so all
// versions of one user key always land in one subrange. Returns empty
// (do not split) when the inputs are too small to cut.
std::vector<std::string> SplitCompactionRange(
    const std::vector<SstReader*>& readers, int k);

// Byte-level accounting of one compaction, merged into the engine stats.
struct CompactionIoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t entries_dropped = 0;  // shadowed versions + dropped tombstones
};

// Merges inputs0+inputs1 into new tables at level+1. Drives in steps.
class CompactionJob {
 public:
  CompactionJob(fs::SimpleFs* fs, std::string dir, VersionSet* versions,
                const LsmOptions& options, CompactionPick pick);
  ~CompactionJob();

  CompactionJob(const CompactionJob&) = delete;
  CompactionJob& operator=(const CompactionJob&) = delete;

  // Opens input tables. Must be called once before Step.
  Status Prepare();

  // Subcompaction variant: borrows pre-opened readers (one per input, in
  // inputs0-then-inputs1 order) instead of opening the tables itself, so
  // K subjobs over the same inputs pay the footer/index/bloom reads
  // once. The readers must outlive the job.
  Status PrepareWithReaders(const std::vector<SstReader*>& readers);

  // Restricts the job to user keys in (begin_exclusive, end_inclusive]
  // — a subrange from SplitCompactionRange. Empty begin means from the
  // start, empty end means unbounded. Must be set before Prepare.
  void SetKeyBounds(std::string begin_exclusive, std::string end_inclusive) {
    begin_key_ = std::move(begin_exclusive);
    end_key_ = std::move(end_inclusive);
  }

  // Deferred-install mode (subcompactions): Step finishes outputs but
  // neither writes the manifest edit nor touches the inputs — the store
  // installs all subranges' outputs as ONE atomic VersionSet edit and
  // disposes the shared inputs once. Must be set before the final Step.
  void set_defer_install(bool defer) { defer_install_ = defer; }

  // Processes about `max_bytes` of input data. Returns true when the whole
  // compaction is finished and installed (inputs deleted) — or, in
  // deferred-install mode, drained with all outputs finished.
  StatusOr<bool> Step(uint64_t max_bytes);

  bool finished() const { return finished_; }
  const CompactionIoStats& io_stats() const { return io_; }
  const CompactionPick& pick() const { return pick_; }
  // Finished output tables (meta, file number). Stable once finished();
  // deferred-install callers read this to build the combined edit.
  const std::vector<std::pair<FileMeta, uint64_t>>& outputs() const {
    return outputs_;
  }
  // File numbers of tables this job PHYSICALLY deleted (for table-cache
  // invalidation). Inputs an open snapshot still pins are not listed: the
  // store's deleter turned them into zombies instead of deleting them.
  const std::vector<uint64_t>& deleted_files() const { return deleted_; }

  // Input disposal hook. Returns true if the file was physically deleted,
  // false if it must outlive the compaction (an open snapshot reads it);
  // the store installs one that parks pinned inputs as zombies. Unset,
  // inputs are deleted directly.
  using FileDeleter = std::function<StatusOr<bool>(const FileMeta&)>;
  void set_file_deleter(FileDeleter deleter) {
    file_deleter_ = std::move(deleter);
  }

 private:
  struct Input {
    FileMeta meta;
    SstReader* reader = nullptr;            // borrowed or owned_reader.get()
    std::unique_ptr<SstReader> owned_reader;  // set when self-opened
    std::unique_ptr<SstReader::Iterator> iter;
  };

  // Positions one input's iterator at the first entry inside the key
  // bounds (shared by both Prepare variants).
  Status SeekInputToBegin(Input* in);

  // Index of the input whose current entry is smallest in internal order,
  // or -1 when all are exhausted.
  int FindSmallest() const;
  Status OpenOutput();
  Status FinishOutput();
  Status Install();

  fs::SimpleFs* fs_;
  std::string dir_;
  VersionSet* versions_;
  const LsmOptions& options_;
  CompactionPick pick_;

  std::vector<Input> inputs_;
  std::string begin_key_;  // exclusive lower bound ("" = none)
  std::string end_key_;    // inclusive upper bound ("" = none)
  bool defer_install_ = false;
  std::unique_ptr<SstBuilder> builder_;
  fs::File* output_file_ = nullptr;
  uint64_t output_number_ = 0;
  std::vector<std::pair<FileMeta, uint64_t>> outputs_;  // meta, number
  std::string last_emitted_key_;
  bool emitted_any_ = false;
  bool prepared_ = false;
  bool finished_ = false;
  CompactionIoStats io_;
  std::vector<uint64_t> deleted_;
  FileDeleter file_deleter_;
};

}  // namespace ptsb::lsm

#endif  // PTSB_LSM_COMPACTION_H_
