#include "lsm/compaction.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ptsb::lsm {

uint64_t LevelTargetBytes(const LsmOptions& options, int level) {
  PTSB_DCHECK(level >= 1);
  double target = static_cast<double>(options.l1_target_bytes);
  for (int l = 1; l < level; l++) target *= options.level_size_ratio;
  return static_cast<uint64_t>(target);
}

double LevelScore(const VersionSet& versions, const LsmOptions& options,
                  int level) {
  if (level == 0) {
    return static_cast<double>(versions.LevelFiles(0).size()) /
           static_cast<double>(options.l0_compaction_trigger);
  }
  if (level >= versions.num_levels() - 1) return 0;  // last level: no target
  return static_cast<double>(versions.LevelBytes(level)) /
         static_cast<double>(LevelTargetBytes(options, level));
}

bool CanDropTombstones(const VersionSet& versions, int output_level) {
  for (int l = output_level + 1; l < versions.num_levels(); l++) {
    if (!versions.LevelFiles(l).empty()) return false;
  }
  return true;
}

namespace {

// Key span of a set of files.
void RangeOf(const std::vector<FileMeta>& files, std::string* smallest,
             std::string* largest) {
  for (const FileMeta& f : files) {
    if (smallest->empty() || f.smallest < *smallest) *smallest = f.smallest;
    if (largest->empty() || f.largest > *largest) *largest = f.largest;
  }
}

}  // namespace

CompactionPick PickCompaction(const VersionSet& versions,
                              const LsmOptions& options,
                              std::vector<uint64_t>* cursors) {
  CompactionPick pick;
  cursors->resize(versions.num_levels(), 0);

  int best_level = -1;
  double best_score = 1.0;  // only levels at/over their trigger
  for (int l = 0; l < versions.num_levels() - 1; l++) {
    const double score = LevelScore(versions, options, l);
    if (score >= best_score) {
      best_score = score;
      best_level = l;
    }
  }
  if (best_level < 0) return pick;

  pick.valid = true;
  pick.level = best_level;
  pick.score = best_score;

  if (best_level == 0) {
    // All of L0 (files overlap; merging them all at once keeps the
    // invariant simple, as LevelDB does).
    pick.inputs0 = versions.LevelFiles(0);
  } else {
    // RocksDB's kMinOverlappingRatio heuristic: compact the file whose
    // key range overlaps the least data in the next level (per input
    // byte), which substantially lowers WA-A versus naive round-robin.
    const auto& files = versions.LevelFiles(best_level);
    PTSB_CHECK(!files.empty());
    size_t best_idx = (*cursors)[best_level] % files.size();
    double best_ratio = -1;
    for (size_t i = 0; i < files.size(); i++) {
      uint64_t overlap = 0;
      for (const FileMeta& f :
           versions.Overlapping(best_level + 1, files[i].smallest,
                                files[i].largest)) {
        overlap += f.file_bytes;
      }
      const double ratio = static_cast<double>(overlap) /
                           static_cast<double>(files[i].file_bytes + 1);
      if (best_ratio < 0 || ratio < best_ratio) {
        best_ratio = ratio;
        best_idx = i;
      }
    }
    (*cursors)[best_level] = best_idx + 1;
    pick.inputs0.push_back(files[best_idx]);
  }

  std::string smallest, largest;
  RangeOf(pick.inputs0, &smallest, &largest);
  pick.inputs1 = versions.Overlapping(best_level + 1, smallest, largest);
  pick.drop_tombstones = CanDropTombstones(versions, best_level + 1);
  pick.trivial_move = best_level >= 1 && pick.inputs0.size() == 1 &&
                      pick.inputs1.empty();
  return pick;
}

CompactionJob::CompactionJob(fs::SimpleFs* fs, std::string dir,
                             VersionSet* versions, const LsmOptions& options,
                             CompactionPick pick)
    : fs_(fs),
      dir_(std::move(dir)),
      versions_(versions),
      options_(options),
      pick_(std::move(pick)) {}

CompactionJob::~CompactionJob() = default;

Status CompactionJob::Prepare() {
  PTSB_CHECK(!prepared_);
  prepared_ = true;
  auto open_input = [&](const FileMeta& meta) -> Status {
    Input in;
    in.meta = meta;
    PTSB_ASSIGN_OR_RETURN(fs::File * file,
                          fs_->Open(VersionSet::SstFileName(dir_, meta.number)));
    PTSB_ASSIGN_OR_RETURN(in.reader, SstReader::Open(file));
    in.iter = std::make_unique<SstReader::Iterator>(
        in.reader.get(), options_.compaction_readahead_bytes);
    PTSB_RETURN_IF_ERROR(in.iter->SeekToFirst());
    inputs_.push_back(std::move(in));
    return Status::OK();
  };
  for (const FileMeta& f : pick_.inputs0) PTSB_RETURN_IF_ERROR(open_input(f));
  for (const FileMeta& f : pick_.inputs1) PTSB_RETURN_IF_ERROR(open_input(f));
  return Status::OK();
}

int CompactionJob::FindSmallest() const {
  int best = -1;
  for (size_t i = 0; i < inputs_.size(); i++) {
    const auto& in = inputs_[i];
    if (!in.iter->Valid()) continue;
    if (best < 0 ||
        CompareInternal(in.iter->key(), in.iter->seq(),
                        inputs_[best].iter->key(),
                        inputs_[best].iter->seq()) < 0) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

Status CompactionJob::OpenOutput() {
  output_number_ = versions_->NewFileNumber();
  PTSB_ASSIGN_OR_RETURN(
      output_file_, fs_->Create(VersionSet::SstFileName(dir_, output_number_)));
  builder_ = std::make_unique<SstBuilder>(output_file_, options_.block_bytes,
                                          options_.bloom_bits_per_key);
  return Status::OK();
}

Status CompactionJob::FinishOutput() {
  if (builder_ == nullptr) return Status::OK();
  if (builder_->num_entries() == 0) {
    builder_.reset();
    PTSB_RETURN_IF_ERROR(
        fs_->Delete(VersionSet::SstFileName(dir_, output_number_)));
    output_file_ = nullptr;
    return Status::OK();
  }
  PTSB_RETURN_IF_ERROR(builder_->Finish());
  FileMeta meta;
  meta.number = output_number_;
  meta.file_bytes = builder_->file_bytes();
  meta.num_entries = builder_->num_entries();
  meta.smallest = builder_->smallest();
  meta.largest = builder_->largest();
  io_.bytes_written += builder_->file_bytes();
  outputs_.emplace_back(std::move(meta), output_number_);
  builder_.reset();
  output_file_ = nullptr;
  return Status::OK();
}

StatusOr<bool> CompactionJob::Step(uint64_t max_bytes) {
  PTSB_CHECK(prepared_);
  if (finished_) return true;

  uint64_t consumed = 0;
  while (consumed < max_bytes) {
    const int idx = FindSmallest();
    if (idx < 0) {
      // All inputs drained.
      PTSB_RETURN_IF_ERROR(FinishOutput());
      PTSB_RETURN_IF_ERROR(Install());
      finished_ = true;
      return true;
    }
    auto& iter = *inputs_[idx].iter;
    const uint64_t entry_bytes = iter.key().size() + iter.value().size() + 16;
    consumed += entry_bytes;
    io_.bytes_read += entry_bytes;

    const bool shadowed = emitted_any_ && iter.key() == last_emitted_key_;
    const bool drop_tombstone =
        pick_.drop_tombstones && iter.type() == EntryType::kDelete;
    if (shadowed || drop_tombstone) {
      io_.entries_dropped++;
      if (!shadowed) {
        // A dropped tombstone still consumes its key slot.
        last_emitted_key_.assign(iter.key().data(), iter.key().size());
        emitted_any_ = true;
      }
      PTSB_RETURN_IF_ERROR(iter.Next());
      continue;
    }

    if (builder_ == nullptr) PTSB_RETURN_IF_ERROR(OpenOutput());
    PTSB_RETURN_IF_ERROR(
        builder_->Add(iter.key(), iter.seq(), iter.type(), iter.value()));
    last_emitted_key_.assign(iter.key().data(), iter.key().size());
    emitted_any_ = true;
    if (builder_->EstimatedBytes() >= options_.sst_target_bytes) {
      PTSB_RETURN_IF_ERROR(FinishOutput());
    }
    PTSB_RETURN_IF_ERROR(iter.Next());
  }
  return false;
}

Status CompactionJob::Install() {
  VersionEdit edit;
  for (const FileMeta& f : pick_.inputs0) {
    edit.removed.emplace_back(pick_.level, f.number);
  }
  for (const FileMeta& f : pick_.inputs1) {
    edit.removed.emplace_back(pick_.level + 1, f.number);
  }
  for (auto& [meta, number] : outputs_) {
    edit.added.emplace_back(pick_.level + 1, meta);
  }
  PTSB_RETURN_IF_ERROR(versions_->LogAndApply(edit));
  // Drop input files (this job's readers first, then the files). The
  // store's deleter keeps inputs a snapshot pins on disk as zombies and
  // reports false; only physical deletions reach deleted_, so the table
  // cache keeps serving pinned files to snapshot iterators.
  inputs_.clear();
  auto dispose = [&](const FileMeta& f) -> Status {
    bool deleted = true;
    if (file_deleter_) {
      PTSB_ASSIGN_OR_RETURN(deleted, file_deleter_(f));
    } else {
      PTSB_RETURN_IF_ERROR(
          fs_->Delete(VersionSet::SstFileName(dir_, f.number)));
    }
    if (deleted) deleted_.push_back(f.number);
    return Status::OK();
  };
  for (const FileMeta& f : pick_.inputs0) PTSB_RETURN_IF_ERROR(dispose(f));
  for (const FileMeta& f : pick_.inputs1) PTSB_RETURN_IF_ERROR(dispose(f));
  return Status::OK();
}

}  // namespace ptsb::lsm
