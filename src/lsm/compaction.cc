#include "lsm/compaction.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ptsb::lsm {

uint64_t LevelTargetBytes(const LsmOptions& options, int level) {
  PTSB_DCHECK(level >= 1);
  double target = static_cast<double>(options.l1_target_bytes);
  for (int l = 1; l < level; l++) target *= options.level_size_ratio;
  return static_cast<uint64_t>(target);
}

double LevelScore(const VersionSet& versions, const LsmOptions& options,
                  int level) {
  if (level == 0) {
    return static_cast<double>(versions.LevelFiles(0).size()) /
           static_cast<double>(options.l0_compaction_trigger);
  }
  if (level >= versions.num_levels() - 1) return 0;  // last level: no target
  return static_cast<double>(versions.LevelBytes(level)) /
         static_cast<double>(LevelTargetBytes(options, level));
}

bool CanDropTombstones(const VersionSet& versions, int output_level) {
  for (int l = output_level + 1; l < versions.num_levels(); l++) {
    if (!versions.LevelFiles(l).empty()) return false;
  }
  return true;
}

namespace {

// Key span of a set of files.
void RangeOf(const std::vector<FileMeta>& files, std::string* smallest,
             std::string* largest) {
  for (const FileMeta& f : files) {
    if (smallest->empty() || f.smallest < *smallest) *smallest = f.smallest;
    if (largest->empty() || f.largest > *largest) *largest = f.largest;
  }
}

}  // namespace

CompactionPick PickCompaction(const VersionSet& versions,
                              const LsmOptions& options,
                              std::vector<uint64_t>* cursors) {
  CompactionPick pick;
  cursors->resize(versions.num_levels(), 0);

  int best_level = -1;
  double best_score = 1.0;  // only levels at/over their trigger
  for (int l = 0; l < versions.num_levels() - 1; l++) {
    const double score = LevelScore(versions, options, l);
    if (score >= best_score) {
      best_score = score;
      best_level = l;
    }
  }
  if (best_level < 0) return pick;

  pick.valid = true;
  pick.level = best_level;
  pick.score = best_score;

  if (best_level == 0) {
    // All of L0 (files overlap; merging them all at once keeps the
    // invariant simple, as LevelDB does).
    pick.inputs0 = versions.LevelFiles(0);
  } else {
    // RocksDB's kMinOverlappingRatio heuristic: compact the file whose
    // key range overlaps the least data in the next level (per input
    // byte), which substantially lowers WA-A versus naive round-robin.
    const auto& files = versions.LevelFiles(best_level);
    PTSB_CHECK(!files.empty());
    size_t best_idx = (*cursors)[best_level] % files.size();
    double best_ratio = -1;
    for (size_t i = 0; i < files.size(); i++) {
      uint64_t overlap = 0;
      for (const FileMeta& f :
           versions.Overlapping(best_level + 1, files[i].smallest,
                                files[i].largest)) {
        overlap += f.file_bytes;
      }
      const double ratio = static_cast<double>(overlap) /
                           static_cast<double>(files[i].file_bytes + 1);
      if (best_ratio < 0 || ratio < best_ratio) {
        best_ratio = ratio;
        best_idx = i;
      }
    }
    (*cursors)[best_level] = best_idx + 1;
    pick.inputs0.push_back(files[best_idx]);
  }

  std::string smallest, largest;
  RangeOf(pick.inputs0, &smallest, &largest);
  pick.inputs1 = versions.Overlapping(best_level + 1, smallest, largest);
  pick.drop_tombstones = CanDropTombstones(versions, best_level + 1);
  pick.trivial_move = best_level >= 1 && pick.inputs0.size() == 1 &&
                      pick.inputs1.empty();
  return pick;
}

std::vector<std::string> SplitCompactionRange(
    const std::vector<SstReader*>& readers, int k) {
  std::vector<std::string> bounds;
  if (k <= 1) return bounds;
  // Anchors: every input block's (last user key, on-disk bytes), from
  // the pinned indexes — the finest cut points available without I/O.
  struct Anchor {
    const std::string* key;
    uint64_t bytes;
  };
  std::vector<Anchor> anchors;
  uint64_t total = 0;
  for (const SstReader* r : readers) {
    for (size_t i = 0; i < r->NumBlocks(); i++) {
      anchors.push_back({&r->BlockLastKey(i), r->BlockBytes(i)});
      total += r->BlockBytes(i);
    }
  }
  if (anchors.size() < 2 || total == 0) return bounds;
  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) { return *a.key < *b.key; });
  const std::string& top = *anchors.back().key;
  // Walk the cumulative byte weight and cut at total*i/k. Cuts that
  // collide (dense duplicates) or land on the top key (which would
  // leave an empty tail subrange) are dropped — callers fall back to
  // fewer subranges, or to an unsplit job when none survive.
  uint64_t cum = 0;
  size_t a = 0;
  for (int i = 1; i < k; i++) {
    const uint64_t target = total * static_cast<uint64_t>(i) /
                            static_cast<uint64_t>(k);
    while (a < anchors.size() && cum + anchors[a].bytes <= target) {
      cum += anchors[a].bytes;
      a++;
    }
    if (a == 0 || a >= anchors.size()) continue;
    const std::string& key = *anchors[a - 1].key;
    if (key >= top) break;
    if (!bounds.empty() && key <= bounds.back()) continue;
    bounds.push_back(key);
  }
  return bounds;
}

CompactionJob::CompactionJob(fs::SimpleFs* fs, std::string dir,
                             VersionSet* versions, const LsmOptions& options,
                             CompactionPick pick)
    : fs_(fs),
      dir_(std::move(dir)),
      versions_(versions),
      options_(options),
      pick_(std::move(pick)) {}

CompactionJob::~CompactionJob() = default;

Status CompactionJob::SeekInputToBegin(Input* in) {
  if (begin_key_.empty()) return in->iter->SeekToFirst();
  // The lower bound is exclusive: the previous subrange owns every
  // version of begin_key_ itself.
  PTSB_RETURN_IF_ERROR(in->iter->Seek(begin_key_));
  while (in->iter->Valid() && in->iter->key() == begin_key_) {
    PTSB_RETURN_IF_ERROR(in->iter->Next());
  }
  return Status::OK();
}

Status CompactionJob::Prepare() {
  PTSB_CHECK(!prepared_);
  prepared_ = true;
  auto open_input = [&](const FileMeta& meta) -> Status {
    Input in;
    in.meta = meta;
    PTSB_ASSIGN_OR_RETURN(fs::File * file,
                          fs_->Open(VersionSet::SstFileName(dir_, meta.number)));
    PTSB_ASSIGN_OR_RETURN(in.owned_reader, SstReader::Open(file));
    in.reader = in.owned_reader.get();
    in.iter = std::make_unique<SstReader::Iterator>(
        in.reader, options_.compaction_readahead_bytes);
    if (!end_key_.empty()) {
      // Don't prefetch past this subrange: cap the span at the block
      // holding end_key_ (blocks are sorted by last key, so the first
      // block whose last key covers it is the last one needed).
      in.iter->LimitSpanTo(in.reader->FindBlock(end_key_) + 1);
    }
    PTSB_RETURN_IF_ERROR(SeekInputToBegin(&in));
    inputs_.push_back(std::move(in));
    return Status::OK();
  };
  for (const FileMeta& f : pick_.inputs0) PTSB_RETURN_IF_ERROR(open_input(f));
  for (const FileMeta& f : pick_.inputs1) PTSB_RETURN_IF_ERROR(open_input(f));
  return Status::OK();
}

Status CompactionJob::PrepareWithReaders(
    const std::vector<SstReader*>& readers) {
  PTSB_CHECK(!prepared_);
  prepared_ = true;
  PTSB_CHECK_EQ(readers.size(), pick_.inputs0.size() + pick_.inputs1.size());
  size_t r = 0;
  auto borrow_input = [&](const FileMeta& meta) -> Status {
    Input in;
    in.meta = meta;
    in.reader = readers[r++];
    in.iter = std::make_unique<SstReader::Iterator>(
        in.reader, options_.compaction_readahead_bytes);
    if (!end_key_.empty()) {
      // Don't prefetch past this subrange: cap the span at the block
      // holding end_key_ (blocks are sorted by last key, so the first
      // block whose last key covers it is the last one needed).
      in.iter->LimitSpanTo(in.reader->FindBlock(end_key_) + 1);
    }
    PTSB_RETURN_IF_ERROR(SeekInputToBegin(&in));
    inputs_.push_back(std::move(in));
    return Status::OK();
  };
  for (const FileMeta& f : pick_.inputs0) {
    PTSB_RETURN_IF_ERROR(borrow_input(f));
  }
  for (const FileMeta& f : pick_.inputs1) {
    PTSB_RETURN_IF_ERROR(borrow_input(f));
  }
  return Status::OK();
}

int CompactionJob::FindSmallest() const {
  int best = -1;
  for (size_t i = 0; i < inputs_.size(); i++) {
    const auto& in = inputs_[i];
    if (!in.iter->Valid()) continue;
    if (best < 0 ||
        CompareInternal(in.iter->key(), in.iter->seq(),
                        inputs_[best].iter->key(),
                        inputs_[best].iter->seq()) < 0) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

Status CompactionJob::OpenOutput() {
  output_number_ = versions_->NewFileNumber();
  PTSB_ASSIGN_OR_RETURN(
      output_file_, fs_->Create(VersionSet::SstFileName(dir_, output_number_)));
  builder_ = std::make_unique<SstBuilder>(output_file_, options_.block_bytes,
                                          options_.bloom_bits_per_key);
  return Status::OK();
}

Status CompactionJob::FinishOutput() {
  if (builder_ == nullptr) return Status::OK();
  if (builder_->num_entries() == 0) {
    builder_.reset();
    PTSB_RETURN_IF_ERROR(
        fs_->Delete(VersionSet::SstFileName(dir_, output_number_)));
    output_file_ = nullptr;
    return Status::OK();
  }
  PTSB_RETURN_IF_ERROR(builder_->Finish());
  FileMeta meta;
  meta.number = output_number_;
  meta.file_bytes = builder_->file_bytes();
  meta.num_entries = builder_->num_entries();
  meta.smallest = builder_->smallest();
  meta.largest = builder_->largest();
  io_.bytes_written += builder_->file_bytes();
  outputs_.emplace_back(std::move(meta), output_number_);
  builder_.reset();
  output_file_ = nullptr;
  return Status::OK();
}

StatusOr<bool> CompactionJob::Step(uint64_t max_bytes) {
  PTSB_CHECK(prepared_);
  if (finished_) return true;

  uint64_t consumed = 0;
  while (consumed < max_bytes) {
    const int idx = FindSmallest();
    if (idx < 0 || (!end_key_.empty() && inputs_[idx].iter->key() > end_key_)) {
      // All inputs drained — or the smallest remaining entry is past
      // this subrange's inclusive upper bound, so every input is.
      PTSB_RETURN_IF_ERROR(FinishOutput());
      if (!defer_install_) PTSB_RETURN_IF_ERROR(Install());
      finished_ = true;
      return true;
    }
    auto& iter = *inputs_[idx].iter;
    const uint64_t entry_bytes = iter.key().size() + iter.value().size() + 16;
    consumed += entry_bytes;
    io_.bytes_read += entry_bytes;

    const bool shadowed = emitted_any_ && iter.key() == last_emitted_key_;
    const bool drop_tombstone =
        pick_.drop_tombstones && iter.type() == EntryType::kDelete;
    if (shadowed || drop_tombstone) {
      io_.entries_dropped++;
      if (!shadowed) {
        // A dropped tombstone still consumes its key slot.
        last_emitted_key_.assign(iter.key().data(), iter.key().size());
        emitted_any_ = true;
      }
      PTSB_RETURN_IF_ERROR(iter.Next());
      continue;
    }

    if (builder_ == nullptr) PTSB_RETURN_IF_ERROR(OpenOutput());
    PTSB_RETURN_IF_ERROR(
        builder_->Add(iter.key(), iter.seq(), iter.type(), iter.value()));
    last_emitted_key_.assign(iter.key().data(), iter.key().size());
    emitted_any_ = true;
    if (builder_->EstimatedBytes() >= options_.sst_target_bytes) {
      PTSB_RETURN_IF_ERROR(FinishOutput());
    }
    PTSB_RETURN_IF_ERROR(iter.Next());
  }
  return false;
}

Status CompactionJob::Install() {
  VersionEdit edit;
  for (const FileMeta& f : pick_.inputs0) {
    edit.removed.emplace_back(pick_.level, f.number);
  }
  for (const FileMeta& f : pick_.inputs1) {
    edit.removed.emplace_back(pick_.level + 1, f.number);
  }
  for (auto& [meta, number] : outputs_) {
    edit.added.emplace_back(pick_.level + 1, meta);
  }
  PTSB_RETURN_IF_ERROR(versions_->LogAndApply(edit));
  // Drop input files (this job's readers first, then the files). The
  // store's deleter keeps inputs a snapshot pins on disk as zombies and
  // reports false; only physical deletions reach deleted_, so the table
  // cache keeps serving pinned files to snapshot iterators.
  inputs_.clear();
  auto dispose = [&](const FileMeta& f) -> Status {
    bool deleted = true;
    if (file_deleter_) {
      PTSB_ASSIGN_OR_RETURN(deleted, file_deleter_(f));
    } else {
      PTSB_RETURN_IF_ERROR(
          fs_->Delete(VersionSet::SstFileName(dir_, f.number)));
    }
    if (deleted) deleted_.push_back(f.number);
    return Status::OK();
  };
  for (const FileMeta& f : pick_.inputs0) PTSB_RETURN_IF_ERROR(dispose(f));
  for (const FileMeta& f : pick_.inputs1) PTSB_RETURN_IF_ERROR(dispose(f));
  return Status::OK();
}

}  // namespace ptsb::lsm
