#include "btree/journal.h"

#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/encoding.h"

namespace ptsb::btree {

JournalWriter::JournalWriter(fs::File* file, uint64_t sync_every_bytes)
    : file_(file), sync_every_bytes_(sync_every_bytes) {}

namespace {

void AppendTuple(std::string* payload, JournalOp op, std::string_view key,
                 std::string_view value) {
  payload->push_back(static_cast<char>(op));
  PutLengthPrefixed(payload, key);
  PutLengthPrefixed(payload, value);
}

}  // namespace

Status JournalWriter::Append(JournalOp op, std::string_view key,
                             std::string_view value) {
  std::string payload;
  AppendTuple(&payload, op, key, value);
  return EmitRecord(payload);
}

Status JournalWriter::AppendBatch(const kv::WriteBatch& batch) {
  std::string payload;
  payload.reserve(batch.ByteSize() + batch.Count() * 11);
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    JournalOp op = JournalOp::kDelete;
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        op = JournalOp::kPut;
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        op = JournalOp::kDelete;
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        op = JournalOp::kDeleteRange;
        break;
    }
    AppendTuple(&payload, op, e.key, e.value);
  }
  return EmitRecord(payload);
}

Status JournalWriter::EmitRecord(std::string_view payload) {
  std::string record;
  PutFixed32(&record, MaskCrc(Crc32c(payload)));
  PutVarint32(&record, static_cast<uint32_t>(payload.size()));
  record.append(payload.data(), payload.size());
  PTSB_RETURN_IF_ERROR(file_->Append(record));
  bytes_written_ += record.size();
  if (sync_every_bytes_ > 0) {
    unsynced_ += record.size();
    if (unsynced_ >= sync_every_bytes_) {
      unsynced_ = 0;
      return file_->Sync();
    }
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  unsynced_ = 0;
  return file_->Sync();
}

Status ReplayJournal(
    fs::File* file,
    const std::function<void(JournalOp, std::string_view, std::string_view)>&
        fn) {
  std::string data(file->size(), '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file->ReadAt(0, data.size(), data.data()));
  std::string_view in(data.data(), got);
  while (!in.empty()) {
    std::string_view record = in;
    uint32_t crc, len;
    if (!GetFixed32(&record, &crc) || !GetVarint32(&record, &len) ||
        record.size() < len) {
      break;
    }
    const std::string_view payload = record.substr(0, len);
    if (UnmaskCrc(crc) != Crc32c(payload)) break;
    // One tuple per batched operation (group commit); legacy single-op
    // records are one-tuple batches. Parse the whole record before
    // applying anything: a batch must replay atomically, never as a
    // prefix.
    struct ParsedTuple {
      JournalOp op;
      std::string_view key;
      std::string_view value;
    };
    std::vector<ParsedTuple> tuples;
    std::string_view p = payload;
    bool parsed_ok = !p.empty();
    while (!p.empty()) {
      const auto op = static_cast<JournalOp>(p[0]);
      p.remove_prefix(1);
      std::string_view key, value;
      if (!GetLengthPrefixed(&p, &key) || !GetLengthPrefixed(&p, &value)) {
        parsed_ok = false;
        break;
      }
      tuples.push_back({op, key, value});
    }
    if (!parsed_ok) break;
    for (const ParsedTuple& t : tuples) fn(t.op, t.key, t.value);
    in = record.substr(len);
  }
  return Status::OK();
}

}  // namespace ptsb::btree
