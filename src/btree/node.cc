#include "btree/node.h"

#include <algorithm>

#include "util/crc32.h"
#include "util/encoding.h"
#include "util/logging.h"

namespace ptsb::btree {

uint64_t Node::RecomputeBytes() const {
  uint64_t n = kNodeOverhead;
  if (is_leaf) {
    for (const auto& [k, v] : items) {
      n += k.size() + v.size() + kLeafItemOverhead;
    }
  } else {
    for (const auto& c : children) n += c.first_key.size() + kChildOverhead;
  }
  return n;
}

size_t Node::FindChildIdx(std::string_view key) const {
  PTSB_DCHECK(!is_leaf);
  PTSB_DCHECK(!children.empty());
  // Last child whose first_key <= key; keys below everything clamp to 0.
  size_t lo = 0, hi = children.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (children[mid].first_key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

size_t Node::FindChildIdxExact(std::string_view route) const {
  const size_t idx = FindChildIdx(route);
  PTSB_CHECK(children[idx].first_key == route)
      << "child route key not found: " << route;
  return idx;
}

std::string Node::Serialize() const {
  std::string payload;
  payload.push_back(is_leaf ? 1 : 0);
  if (is_leaf) {
    PutVarint64(&payload, items.size());
    for (const auto& [k, v] : items) {
      PutLengthPrefixed(&payload, k);
      PutLengthPrefixed(&payload, v);
    }
  } else {
    PutVarint64(&payload, children.size());
    for (const auto& c : children) {
      PTSB_CHECK(!c.addr.IsNull()) << "serializing internal with unwritten child";
      PutLengthPrefixed(&payload, c.first_key);
      PutVarint64(&payload, c.addr.offset);
      PutVarint64(&payload, c.addr.bytes);
    }
  }
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  PutFixed32(&out, MaskCrc(Crc32c(payload)));
  return out;
}

StatusOr<std::unique_ptr<Node>> Node::Deserialize(std::string_view data) {
  uint32_t len;
  if (!GetFixed32(&data, &len) || data.size() < len + 4) {
    return Status::Corruption("node frame truncated");
  }
  const std::string_view payload = data.substr(0, len);
  std::string_view crc_in = data.substr(len, 4);
  uint32_t crc;
  GetFixed32(&crc_in, &crc);
  if (UnmaskCrc(crc) != Crc32c(payload)) {
    return Status::Corruption("node checksum mismatch");
  }
  std::string_view in = payload;
  if (in.empty()) return Status::Corruption("empty node");
  const bool is_leaf = in[0] == 1;
  in.remove_prefix(1);
  uint64_t count;
  if (!GetVarint64(&in, &count)) return Status::Corruption("bad node count");

  auto node = std::make_unique<Node>();
  node->is_leaf = is_leaf;
  if (is_leaf) {
    node->items.reserve(count);
    for (uint64_t i = 0; i < count; i++) {
      std::string_view k, v;
      if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
        return Status::Corruption("bad leaf item");
      }
      node->items.emplace_back(std::string(k), std::string(v));
    }
  } else {
    node->children.reserve(count);
    for (uint64_t i = 0; i < count; i++) {
      std::string_view k;
      uint64_t off, bytes;
      if (!GetLengthPrefixed(&in, &k) || !GetVarint64(&in, &off) ||
          !GetVarint64(&in, &bytes)) {
        return Status::Corruption("bad child ref");
      }
      ChildRef ref;
      ref.first_key.assign(k.data(), k.size());
      ref.addr = BlockAddr{off, bytes};
      node->children.push_back(std::move(ref));
    }
    if (node->children.empty()) {
      return Status::Corruption("internal node without children");
    }
  }
  node->bytes = node->RecomputeBytes();
  return node;
}

}  // namespace ptsb::btree
