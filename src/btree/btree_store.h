// BTreeStore: the WiredTiger-analog key-value store. A single-file paged
// B+Tree with a leaf page cache, copy-on-write block management, periodic
// checkpoints (alternating header slots), and an optional journal.
#ifndef PTSB_BTREE_BTREE_STORE_H_
#define PTSB_BTREE_BTREE_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "btree/block_manager.h"
#include "btree/journal.h"
#include "btree/node.h"
#include "btree/options.h"
#include "fs/filesystem.h"
#include "kv/background_pool.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_group.h"

namespace ptsb::btree {

class BTreeStore : public kv::KVStore {
 public:
  // Opens (or creates) the tree file at `file_name`, recovering from the
  // newest valid checkpoint and replaying the journal if enabled.
  static StatusOr<std::unique_ptr<BTreeStore>> Open(
      fs::SimpleFs* fs, const BTreeOptions& options,
      std::string file_name = "btree/tree.db");
  ~BTreeStore() override;

  // kv::KVStore interface. Write is the group-commit path: one journal
  // record for the whole batch, then all leaf updates applied with page
  // writebacks deferred (dirty pages sit in the cache; checkpoint/evict
  // pacing runs once per batch).
  Status Write(const kv::WriteBatch& batch) override;
  // Runs the commit in a submission lane on options().io_queue, so
  // back-to-back WriteAsync calls on distinct queues overlap in virtual
  // time (see kv::KVStore::WriteAsync).
  kv::WriteHandle WriteAsync(const kv::WriteBatch& batch) override;
  Status Get(std::string_view key, std::string* value) override;
  // Snapshot-aware point lookup: with a snapshot, walks the pinned
  // checkpoint's on-disk tree privately (never touching the live cache).
  Status Get(const kv::ReadOptions& opts, std::string_view key,
             std::string* value) override;
  // Fans the lookups out across foreground-read submission lanes at
  // options().read_queue_depth, so independent leaf reads overlap in
  // virtual device time (see kv::KVStore::MultiGet).
  std::vector<Status> MultiGet(std::span<const std::string_view> keys,
                               std::vector<std::string>* values) override;
  // Runs the lookup in a foreground-read lane on options().io_queue (see
  // kv::KVStore::ReadAsync).
  kv::ReadHandle ReadAsync(std::string_view key, std::string* value) override;
  // Leaf-walking cursor in key order. Invalidated by any write to the
  // store (splits and evictions move items between pages).
  std::unique_ptr<kv::KVStore::Iterator> NewIterator() override;
  // With a snapshot: a disk-walking cursor over the pinned checkpoint's
  // tree, immune to concurrent writes (it never touches the live cache).
  // opts.readahead > 1 batches that many sibling-leaf reads per span
  // across foreground-read submission lanes (capped at
  // read_queue_depth), so the leaf fetches overlap in virtual device
  // time. Without a snapshot, falls back to the live cursor.
  std::unique_ptr<kv::KVStore::Iterator> NewIterator(
      const kv::ReadOptions& opts) override;
  // Pins the current state as a checkpoint: runs a foreground checkpoint
  // and holds its generation's blocks out of reuse (quarantine cohorts
  // in the block manager) until the snapshot drops.
  StatusOr<std::shared_ptr<const kv::Snapshot>> GetSnapshot() override;
  Status Flush() override;  // checkpoint
  // Waits out a background-lane checkpoint in flight (background_io);
  // checkpoints have no deferred debt beyond that, so nothing else to do.
  Status SettleBackgroundWork() override;
  Status Close() override;
  // Concurrent Write callers group-commit; point reads run under the
  // group's commit-exclusion lock (they touch the shared leaf cache).
  // Iterators and lifecycle calls still expect a quiesced store.
  bool SupportsConcurrentWriters() const override { return true; }
  kv::KvStoreStats GetStats() const override {
    return write_group_.RunExclusive([&] {
      kv::KvStoreStats s = stats_;
      // Live gauge: bytes the block manager holds out of reuse for
      // snapshots (returns to 0 when the last snapshot drops).
      s.snapshot_pinned_bytes = blocks_->quarantined_bytes();
      return s;
    });
  }
  std::string Name() const override { return "btree(wiredtiger-like)"; }
  uint64_t DiskBytesUsed() const override;

  // Introspection for tests and benches.
  uint64_t checkpoint_count() const { return checkpoint_count_; }
  uint64_t CacheBytes() const { return cache_leaf_bytes_; }
  const BlockManager& block_manager() const { return *blocks_; }
  // Structural invariants: sorted keys, route consistency, uniform depth.
  Status CheckStructure();

 private:
  class Cursor;
  class SnapshotImpl;
  class SnapCursor;

  BTreeStore(fs::SimpleFs* fs, const BTreeOptions& options,
             std::string file_name);

  // The commit function the write group's leader runs: the old Write
  // body, applied to the merged batch of `n_user_batches` user Writes.
  Status WriteInternal(const kv::WriteBatch& batch, size_t n_user_batches);
  // Get's body, run under the group's commit-exclusion lock (descends
  // the tree, faulting and LRU-touching leaves in the shared cache).
  Status GetInternal(std::string_view key, std::string* value);

  // Applies one batch entry to its leaf (insert/overwrite/erase + split).
  Status ApplyEntry(const kv::WriteBatch::Entry& entry);
  // Eagerly erases every key in [begin, end): B+Trees keep no tombstones,
  // so a range delete is the per-leaf erasure of the covered spans.
  Status ApplyDeleteRange(std::string_view begin, std::string_view end);

  // Snapshot Get's body: a private root-to-leaf walk of the pinned
  // checkpoint's on-disk tree (runs under the commit-exclusion lock).
  Status SnapshotGetInternal(const SnapshotImpl& snap, std::string_view key,
                             std::string* value);
  // Called by ~SnapshotImpl: drops the generation pin and releases any
  // quarantine cohorts no remaining snapshot needs.
  void ReleaseSnapshot(const SnapshotImpl& snap);

  Status Recover();
  StatusOr<std::unique_ptr<Node>> ReadNode(const BlockAddr& addr);
  // Ensures children[idx] of `parent` is loaded; returns the child.
  StatusOr<Node*> FetchChild(Node* parent, size_t idx);
  StatusOr<Node*> DescendToLeaf(std::string_view key);

  // One deferred checkpoint block write: the bytes for a node (or blob)
  // at its freshly allocated offset, device write postponed so a batch
  // of them can fan out across background lanes.
  struct PendingWrite {
    uint64_t offset = 0;
    std::string data;
  };
  // Writes a node to a fresh block, frees the old one, updates the parent
  // address cell (or the pending root address). With `deferred` set, all
  // of that bookkeeping still happens in order but the device write is
  // appended to the list instead of issued.
  Status WriteNode(Node* node, std::vector<PendingWrite>* deferred = nullptr);
  // Post-order: writes every dirty node in the loaded subtree.
  Status WriteDirtySubtree(Node* node,
                           std::vector<PendingWrite>* deferred = nullptr);
  Status Checkpoint();
  // Partitioned checkpoint (compaction_parallelism > 1 with
  // background_io and a clock): collects the dirty nodes' block writes,
  // fans them across the pool's lanes, then runs the free-list blob,
  // header and journal rotation on lane 0 behind a background-side
  // barrier — same crash-safety order (header last, frees after), same
  // bytes, overlapped device time.
  Status CheckpointParallel();
  // AdvanceTo the background lane's completion horizon (background_io):
  // the foreground explicitly waiting out an in-flight checkpoint.
  void JoinBackgroundWork();
  Status WriteHeader();

  // Leaf cache management.
  void TouchLeaf(Node* leaf);
  void ForgetLeaf(Node* leaf);  // remove from LRU accounting
  Status EvictIfNeeded();

  // Split path after an insert made `node` oversized.
  Status SplitIfNeeded(Node* node);

  void ChargeCpu(int64_t ns) const;

  static int Depth(const Node* n);
  Status CheckSubtree(Node* node, int depth, int expect_depth,
                      std::string_view lower_bound);

  fs::SimpleFs* fs_;
  BTreeOptions options_;
  std::string file_name_;
  fs::File* file_ = nullptr;
  std::unique_ptr<BlockManager> blocks_;
  std::unique_ptr<Node> root_;
  BlockAddr root_addr_;      // as of the last write of the root
  BlockAddr freelist_addr_;  // current persisted free list blob
  uint64_t checkpoint_gen_ = 0;
  uint64_t checkpoint_count_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  // Completion time of the last background-lane checkpoint
  // (background_io); foreground waits join it via JoinBackgroundWork().
  int64_t background_horizon_ns_ = 0;
  // Lanes for partitioned checkpoints; created lazily by the paced
  // checkpoint site, null in single-lane mode.
  std::unique_ptr<kv::BackgroundPool> pool_;

  std::list<Node*> lru_;  // front = least recently used
  uint64_t cache_leaf_bytes_ = 0;

  std::unique_ptr<JournalWriter> journal_;
  fs::File* journal_file_ = nullptr;
  bool replaying_ = false;
  // Set when a journal rotation failed mid-way: the tree state is durable
  // but new commits would have no durable record, so Write fail-stops
  // until a reopen rebuilds the journal.
  bool journal_lost_ = false;

  // Bumped by every mutating entry point (Write, Flush). Debug builds
  // compare it against the value captured at cursor creation to fail
  // fast on use-after-write instead of walking moved/evicted leaves.
  uint64_t write_epoch_ = 0;
  // checkpoint generation -> number of live snapshots pinning it.
  std::map<uint64_t, int> snapshot_pins_;
  kv::KvStoreStats stats_;
  // Cross-thread group commit queue; also provides the commit-exclusion
  // lock the read paths (and const stats snapshots) run under.
  mutable kv::WriteGroup write_group_;
  bool in_checkpoint_ = false;
  bool closed_ = false;
};

// Registers the "btree" engine factory with kv::EngineRegistry. Recognized
// params mirror BTreeOptions field names (e.g. "cache_bytes",
// "journal_enabled"); the factory starts from default BTreeOptions and
// applies overrides.
void RegisterBTreeEngine();

// Encodes every numeric/bool BTreeOptions field into an EngineOptions
// param map (the inverse of what the factory parses); the clock is
// carried by EngineOptions itself, not the map.
std::map<std::string, std::string> EncodeEngineParams(const BTreeOptions& o);

}  // namespace ptsb::btree

#endif  // PTSB_BTREE_BTREE_STORE_H_
