// Configuration of the B+Tree engine. Defaults mirror the WiredTiger setup
// of the paper: 32 KiB leaf pages, 4 KiB internal pages, a small page
// cache (10 MiB in the paper), journaling disabled (WiredTiger's standalone
// default), periodic checkpoints for durability.
#ifndef PTSB_BTREE_OPTIONS_H_
#define PTSB_BTREE_OPTIONS_H_

#include <cstdint>

#include "sim/clock.h"

namespace ptsb::btree {

struct BTreeOptions {
  uint64_t leaf_max_bytes = 32 << 10;
  uint64_t internal_max_bytes = 4 << 10;

  // Page cache for leaves; internal pages are pinned in memory (as
  // WiredTiger effectively retains the internal tree of an active table).
  uint64_t cache_bytes = 10 << 20;

  // Checkpoint after this many bytes of user writes (the durability knob;
  // WiredTiger defaults to time-based checkpoints, which a byte budget
  // approximates in virtual time).
  uint64_t checkpoint_every_bytes = 256ull << 20;

  // Write-ahead journal (WiredTiger standalone runs without logging; this
  // matches the paper's configuration when false).
  bool journal_enabled = false;
  uint64_t journal_sync_every_bytes = 0;  // 0: rely on page-fill writes

  // Block manager: reuse freed blocks (copy-on-write within the file,
  // keeping a compact LBA footprint). false = append-only growth
  // (ablation for the Fig. 4 LBA-locality analysis).
  bool reuse_freed_blocks = true;
  // File growth chunk when the free list cannot satisfy an allocation.
  uint64_t file_grow_bytes = 16 << 20;

  // CPU cost per op charged to the virtual clock (the paper observes
  // WiredTiger is partially CPU/synchronization-bound).
  int64_t cpu_put_ns = 400'000;
  int64_t cpu_get_ns = 150'000;

  // Cap on the merged byte size of one cross-thread commit group: a
  // leader folds waiting writers' batches into a single journal record
  // up to this many payload bytes (its own batch always commits
  // regardless). See kv::WriteGroup.
  uint64_t max_write_group_bytes = 1ull << 20;

  // Max in-flight MultiGet point lookups: each runs in its own
  // foreground-read submission lane, so up to this many independent leaf
  // reads overlap in virtual device time across SSD channels. 1 (or no
  // clock) = sequential Gets.
  int read_queue_depth = 1;

  // Run paced checkpoints on the engine's background submission lane
  // (queue `background_queue`, I/O class kBackground) instead of the
  // user's timeline: commits no longer absorb checkpoint device time.
  // The explicit Flush/Close checkpoints still run (and are waited out)
  // on the foreground — the user asked for durability there. Off by
  // default (the paper's baseline).
  bool background_io = false;

  // Partitioned paced checkpoints: with background_io and a clock, a
  // checkpoint's dirty-node block writes are fanned across this many
  // background submission lanes (queue background_queue + i) via a
  // kv::BackgroundPool, so the writes overlap across SSD channels. The
  // free-list blob, header and journal rotation stay ordered on lane 0
  // (crash-safety order unchanged). 1 = today's single-lane behavior.
  // The name matches the LSM engine's knob so one driver param reaches
  // every engine.
  int compaction_parallelism = 1;

  sim::SimClock* clock = nullptr;
  // Submission queue for WriteAsync commits (see kv::EngineOptions).
  uint32_t io_queue = 0;
  // Submission queue for the background lane (see kv::EngineOptions).
  uint32_t background_queue = 1;
};

}  // namespace ptsb::btree

#endif  // PTSB_BTREE_OPTIONS_H_
