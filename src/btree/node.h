// In-memory B+Tree nodes and their on-disk (de)serialization.
//
// Internal nodes reference children by block address (as WiredTiger's
// internal pages do); the in-memory tree additionally caches child
// pointers. A leaf's relocation on writeback updates only its parent's
// in-memory address cell; parents are persisted at checkpoint.
#ifndef PTSB_BTREE_NODE_H_
#define PTSB_BTREE_NODE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "btree/block_manager.h"
#include "util/status.h"

namespace ptsb::btree {

struct Node {
  bool is_leaf = true;
  // Needs (re)writing: structural change, or a child address changed.
  bool dirty = false;
  Node* parent = nullptr;       // null for the root
  std::string route_key;        // the parent entry's first_key ("" for root)
  BlockAddr addr;               // last on-disk location (null if never written)
  uint64_t bytes = 0;           // running serialized-size estimate

  // Leaf payload: sorted by key.
  std::vector<std::pair<std::string, std::string>> items;

  // Internal payload: sorted by first_key; child may be null (not loaded).
  struct ChildRef {
    std::string first_key;
    BlockAddr addr;
    std::unique_ptr<Node> child;
  };
  std::vector<ChildRef> children;

  // LRU bookkeeping (leaves only).
  std::list<Node*>::iterator lru_it;
  bool in_lru = false;
  // Bytes currently charged to the cache accounting for this node.
  uint64_t accounted_bytes = 0;

  // Size-estimate bookkeeping.
  static constexpr uint64_t kNodeOverhead = 16;
  static constexpr uint64_t kLeafItemOverhead = 8;
  static constexpr uint64_t kChildOverhead = 24;

  uint64_t RecomputeBytes() const;

  // Routing: index of the child covering `key` (clamped to 0).
  size_t FindChildIdx(std::string_view key) const;
  // Exact entry index for a child's route key (used by writeback).
  size_t FindChildIdxExact(std::string_view route) const;

  // Serializes payload: u8 kind | varint count | entries | crc32.
  std::string Serialize() const;
  // Parses a serialized node. Children of internals come back unloaded.
  static StatusOr<std::unique_ptr<Node>> Deserialize(std::string_view data);
};

}  // namespace ptsb::btree

#endif  // PTSB_BTREE_NODE_H_
