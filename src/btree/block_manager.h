// Block manager: allocation of page-aligned block ranges *within* the
// single B+Tree file, WiredTiger-style. Freed blocks go to a pending list
// and only become reusable after the next checkpoint commits, so a crash
// can always fall back to the previous checkpoint's block image.
//
// First-fit at the lowest offset keeps the file footprint compact, which is
// what confines WiredTiger's writes to a narrow LBA range in the paper's
// Fig. 4 analysis.
#ifndef PTSB_BTREE_BLOCK_MANAGER_H_
#define PTSB_BTREE_BLOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>

#include "fs/file.h"
#include "util/status.h"

namespace ptsb::btree {

struct BlockAddr {
  uint64_t offset = 0;
  uint64_t bytes = 0;  // always a multiple of the allocation unit

  bool IsNull() const { return bytes == 0; }
  bool operator==(const BlockAddr&) const = default;
};

class BlockManager {
 public:
  static constexpr uint64_t kUnit = 4096;

  // `data_start`: offsets below this are reserved (checkpoint headers).
  BlockManager(fs::File* file, uint64_t data_start, bool reuse_freed_blocks,
               uint64_t file_grow_bytes);

  // Allocates a block run covering `bytes` (rounded up to kUnit).
  StatusOr<BlockAddr> Allocate(uint64_t bytes);

  // Defers the block for reuse after the next checkpoint.
  void Free(const BlockAddr& addr);

  // Checkpoint committed: pending frees become available.
  void MergePendingFrees();

  // Checkpoint committed while snapshots pin OLDER checkpoints: pending
  // frees move into the quarantine cohort tagged with the committing
  // generation instead of becoming available. Blocks in cohort G may be
  // referenced by any checkpoint with generation < G, so they stay
  // unallocatable until no snapshot pins such a generation.
  void QuarantinePendingFrees(uint64_t gen);

  // Releases every quarantine cohort whose generation is <=
  // `min_pinned_gen` (cohort G is only needed by snapshots pinning a
  // generation < G). Pass UINT64_MAX when no snapshots remain.
  void ReleaseQuarantinedUpTo(uint64_t min_pinned_gen);

  // Bytes held back from reuse on behalf of live snapshots.
  uint64_t quarantined_bytes() const { return quarantined_bytes_; }

  // Returns the block to the available list right away. Only safe for
  // blocks that the previous checkpoint does not reference (e.g. the old
  // free-list blob, once the new header is durable).
  void FreeImmediately(const BlockAddr& addr);

  // Serialization of the available list (pending must be merged first).
  std::string EncodeFreeList() const;
  // Encodes the free list as it will look once the in-progress checkpoint
  // commits: available + pending + `extra` (the old free-list blob), with
  // `extra.bytes` subtracted from the allocated count.
  std::string EncodeMergedFreeList(const BlockAddr& extra) const;
  Status DecodeFreeList(std::string_view in);

  uint64_t allocated_bytes() const { return allocated_bytes_; }
  uint64_t file_bytes() const { return file_end_; }
  uint64_t free_bytes() const;
  uint64_t pending_bytes() const { return pending_bytes_; }

  // Invariants: lists sorted/coalesced/disjoint, within file bounds.
  Status CheckConsistency() const;

 private:
  void AddToList(std::map<uint64_t, uint64_t>* list, uint64_t offset,
                 uint64_t bytes);

  fs::File* file_;
  uint64_t data_start_;
  bool reuse_freed_blocks_;
  uint64_t file_grow_bytes_;
  uint64_t file_end_;  // current end of managed space
  uint64_t allocated_bytes_ = 0;
  uint64_t pending_bytes_ = 0;
  uint64_t quarantined_bytes_ = 0;
  std::map<uint64_t, uint64_t> available_;  // offset -> bytes
  std::map<uint64_t, uint64_t> pending_;
  // gen -> (offset -> bytes): frees held back for snapshots pinning a
  // checkpoint older than `gen`.
  std::map<uint64_t, std::map<uint64_t, uint64_t>> quarantined_;
};

}  // namespace ptsb::btree

#endif  // PTSB_BTREE_BLOCK_MANAGER_H_
