#include "btree/btree_store.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/crc32.h"
#include "util/encoding.h"
#include "util/logging.h"

namespace ptsb::btree {

namespace {

constexpr uint64_t kHeaderMagic = 0x7074736274726565ULL;  // "ptsbtree"
constexpr uint64_t kHeaderBytes = BlockManager::kUnit;
constexpr uint64_t kDataStart = 2 * kHeaderBytes;

struct Header {
  uint64_t gen = 0;
  BlockAddr root;
  BlockAddr freelist;
};

std::string EncodeHeader(const Header& h) {
  std::string payload;
  PutFixed64(&payload, kHeaderMagic);
  PutFixed64(&payload, h.gen);
  PutFixed64(&payload, h.root.offset);
  PutFixed64(&payload, h.root.bytes);
  PutFixed64(&payload, h.freelist.offset);
  PutFixed64(&payload, h.freelist.bytes);
  std::string out = payload;
  PutFixed32(&out, MaskCrc(Crc32c(payload)));
  out.resize(kHeaderBytes, 0);
  return out;
}

bool DecodeHeader(std::string_view in, Header* h) {
  if (in.size() < 52) return false;
  const std::string_view payload = in.substr(0, 48);
  std::string_view crc_in = in.substr(48, 4);
  uint32_t crc;
  GetFixed32(&crc_in, &crc);
  if (UnmaskCrc(crc) != Crc32c(payload)) return false;
  std::string_view p = payload;
  uint64_t magic;
  GetFixed64(&p, &magic);
  if (magic != kHeaderMagic) return false;
  GetFixed64(&p, &h->gen);
  GetFixed64(&p, &h->root.offset);
  GetFixed64(&p, &h->root.bytes);
  GetFixed64(&p, &h->freelist.offset);
  GetFixed64(&p, &h->freelist.bytes);
  return true;
}

}  // namespace

BTreeStore::BTreeStore(fs::SimpleFs* fs, const BTreeOptions& options,
                       std::string file_name)
    : fs_(fs),
      options_(options),
      file_name_(std::move(file_name)),
      write_group_(options.max_write_group_bytes) {}

BTreeStore::~BTreeStore() {
  if (!closed_) Close().ok();
}

StatusOr<std::unique_ptr<BTreeStore>> BTreeStore::Open(
    fs::SimpleFs* fs, const BTreeOptions& options, std::string file_name) {
  auto store = std::unique_ptr<BTreeStore>(
      new BTreeStore(fs, options, std::move(file_name)));
  PTSB_ASSIGN_OR_RETURN(store->file_, fs->OpenOrCreate(store->file_name_));
  PTSB_RETURN_IF_ERROR(store->file_->Extend(kDataStart));
  store->blocks_ = std::make_unique<BlockManager>(
      store->file_, kDataStart, options.reuse_freed_blocks,
      options.file_grow_bytes);
  PTSB_RETURN_IF_ERROR(store->Recover());

  if (options.journal_enabled) {
    const std::string jname = store->file_name_ + ".journal";
    if (fs->Exists(jname)) {
      PTSB_ASSIGN_OR_RETURN(store->journal_file_, fs->Open(jname));
      // Replay through the normal write path, without re-journaling.
      store->replaying_ = true;
      Status replay_status = Status::OK();
      PTSB_RETURN_IF_ERROR(ReplayJournal(
          store->journal_file_,
          [&](JournalOp op, std::string_view key, std::string_view value) {
            if (!replay_status.ok()) return;
            switch (op) {
              case JournalOp::kPut:
                replay_status = store->Put(key, value);
                break;
              case JournalOp::kDelete:
                replay_status = store->Delete(key);
                break;
              case JournalOp::kDeleteRange:
                // Deterministic re-expansion through the same eager
                // range-erase the original write used.
                replay_status = store->DeleteRange(key, value);
                break;
            }
          }));
      store->replaying_ = false;
      PTSB_RETURN_IF_ERROR(replay_status);
    } else {
      PTSB_ASSIGN_OR_RETURN(store->journal_file_, fs->Create(jname));
    }
    store->journal_ = std::make_unique<JournalWriter>(
        store->journal_file_, options.journal_sync_every_bytes);
  }
  return store;
}

Status BTreeStore::Recover() {
  Header best;
  bool found = false;
  for (int slot = 0; slot < 2; slot++) {
    std::string buf(kHeaderBytes, '\0');
    auto got = file_->ReadAt(slot * kHeaderBytes, kHeaderBytes, buf.data());
    if (!got.ok() || *got != kHeaderBytes) continue;
    Header h;
    if (DecodeHeader(buf, &h) && (!found || h.gen > best.gen)) {
      best = h;
      found = true;
    }
  }
  if (!found) {
    // Fresh tree: an empty root leaf.
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
    root_->dirty = true;
    root_->bytes = root_->RecomputeBytes();
    checkpoint_gen_ = 0;
    return Status::OK();
  }
  checkpoint_gen_ = best.gen;
  freelist_addr_ = best.freelist;
  if (!best.freelist.IsNull()) {
    std::string blob(best.freelist.bytes, '\0');
    PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                          file_->ReadAt(best.freelist.offset,
                                        best.freelist.bytes, blob.data()));
    if (got != best.freelist.bytes) {
      return Status::Corruption("short free-list read");
    }
    PTSB_RETURN_IF_ERROR(blocks_->DecodeFreeList(blob));
  }
  root_addr_ = best.root;
  PTSB_ASSIGN_OR_RETURN(root_, ReadNode(best.root));
  return Status::OK();
}

StatusOr<std::unique_ptr<Node>> BTreeStore::ReadNode(const BlockAddr& addr) {
  PTSB_CHECK(!addr.IsNull());
  std::string buf(addr.bytes, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file_->ReadAt(addr.offset, addr.bytes, buf.data()));
  if (got != addr.bytes) return Status::Corruption("short node read");
  stats_.page_read_bytes += addr.bytes;
  PTSB_ASSIGN_OR_RETURN(auto node, Node::Deserialize(buf));
  node->addr = addr;
  return node;
}

StatusOr<Node*> BTreeStore::FetchChild(Node* parent, size_t idx) {
  Node::ChildRef& ref = parent->children[idx];
  if (ref.child == nullptr) {
    PTSB_ASSIGN_OR_RETURN(auto node, ReadNode(ref.addr));
    node->parent = parent;
    node->route_key = ref.first_key;
    ref.child = std::move(node);
  }
  if (ref.child->is_leaf) TouchLeaf(ref.child.get());
  return ref.child.get();
}

StatusOr<Node*> BTreeStore::DescendToLeaf(std::string_view key) {
  Node* node = root_.get();
  while (!node->is_leaf) {
    const size_t idx = node->FindChildIdx(key);
    PTSB_ASSIGN_OR_RETURN(node, FetchChild(node, idx));
  }
  return node;
}

void BTreeStore::TouchLeaf(Node* leaf) {
  if (leaf->parent == nullptr) return;  // the root is never cache-managed
  if (leaf->in_lru) {
    lru_.splice(lru_.end(), lru_, leaf->lru_it);
  } else {
    leaf->lru_it = lru_.insert(lru_.end(), leaf);
    leaf->in_lru = true;
  }
  cache_leaf_bytes_ += leaf->bytes - leaf->accounted_bytes;
  leaf->accounted_bytes = leaf->bytes;
}

void BTreeStore::ForgetLeaf(Node* leaf) {
  if (!leaf->in_lru) return;
  lru_.erase(leaf->lru_it);
  leaf->in_lru = false;
  cache_leaf_bytes_ -= leaf->accounted_bytes;
  leaf->accounted_bytes = 0;
}

Status BTreeStore::EvictIfNeeded() {
  while (cache_leaf_bytes_ > options_.cache_bytes && !lru_.empty()) {
    Node* leaf = lru_.front();
    if (leaf->dirty) PTSB_RETURN_IF_ERROR(WriteNode(leaf));
    ForgetLeaf(leaf);
    Node* parent = leaf->parent;
    const size_t idx = parent->FindChildIdxExact(leaf->route_key);
    parent->children[idx].child.reset();  // destroys `leaf`
    // The destroyed leaf may be one an open cursor points into — and
    // eviction can be triggered by READS (Get fills the cache), not just
    // writes. Count it as an invalidation so the cursors' debug epoch
    // check fails fast; a cursor's own eviction calls resynchronize (its
    // current leaf is never in the LRU while it is positioned there).
    write_epoch_++;
  }
  return Status::OK();
}

Status BTreeStore::WriteNode(Node* node, std::vector<PendingWrite>* deferred) {
  std::string data = node->Serialize();
  PTSB_ASSIGN_OR_RETURN(BlockAddr addr, blocks_->Allocate(data.size()));
  data.resize(addr.bytes, 0);
  if (deferred != nullptr) {
    // Partitioned checkpoint: every allocation/free/parent-pointer step
    // stays in post-order here; only the device write is postponed so
    // the batch can fan out across lanes. Safe to reorder among
    // themselves: each targets its own freshly allocated block, and the
    // header that makes any of them reachable is written after all of
    // them complete.
    deferred->push_back({addr.offset, std::move(data)});
  } else {
    PTSB_RETURN_IF_ERROR(file_->WriteAt(addr.offset, data));
  }
  if (in_checkpoint_) {
    stats_.checkpoint_bytes_written += addr.bytes;
  } else {
    stats_.page_write_bytes += addr.bytes;
  }
  blocks_->Free(node->addr);
  node->addr = addr;
  if (node->parent != nullptr) {
    const size_t idx = node->parent->FindChildIdxExact(node->route_key);
    node->parent->children[idx].addr = addr;
    node->parent->dirty = true;
  } else {
    root_addr_ = addr;
  }
  node->dirty = false;
  return Status::OK();
}

Status BTreeStore::WriteDirtySubtree(Node* node,
                                     std::vector<PendingWrite>* deferred) {
  if (!node->is_leaf) {
    for (auto& ref : node->children) {
      if (ref.child != nullptr) {
        PTSB_RETURN_IF_ERROR(WriteDirtySubtree(ref.child.get(), deferred));
      }
    }
  }
  if (node->dirty) PTSB_RETURN_IF_ERROR(WriteNode(node, deferred));
  return Status::OK();
}

Status BTreeStore::WriteHeader() {
  Header h;
  h.gen = ++checkpoint_gen_;
  h.root = root_addr_;
  h.freelist = freelist_addr_;
  const std::string data = EncodeHeader(h);
  const uint64_t slot = h.gen % 2;
  PTSB_RETURN_IF_ERROR(file_->WriteAt(slot * kHeaderBytes, data));
  stats_.checkpoint_bytes_written += kHeaderBytes;
  return file_->Sync();
}

Status BTreeStore::Checkpoint() {
  in_checkpoint_ = true;
  Status s = [&]() -> Status {
    PTSB_RETURN_IF_ERROR(WriteDirtySubtree(root_.get()));

    // Persist the post-commit free list. The blob is allocated from the
    // currently-available list only (never from blocks the previous
    // checkpoint still references), then the old blob becomes free.
    const BlockAddr old_blob = freelist_addr_;
    std::string encoded = blocks_->EncodeMergedFreeList(old_blob);
    PTSB_ASSIGN_OR_RETURN(BlockAddr blob,
                          blocks_->Allocate(encoded.size() + 64));
    encoded = blocks_->EncodeMergedFreeList(old_blob);
    PTSB_CHECK_LE(encoded.size(), blob.bytes);
    encoded.resize(blob.bytes, 0);
    PTSB_RETURN_IF_ERROR(file_->WriteAt(blob.offset, encoded));
    stats_.checkpoint_bytes_written += blob.bytes;
    freelist_addr_ = blob;

    PTSB_RETURN_IF_ERROR(WriteHeader());

    // The new header is durable: deferred frees become reusable — unless
    // a live snapshot pins an older checkpoint, whose tree may still
    // reference them; then they wait in a quarantine cohort until the
    // last such snapshot drops. (Crash recovery ignores quarantine: the
    // persisted free list already counts these blocks as free, which is
    // correct because a crash drops every snapshot.)
    if (snapshot_pins_.empty()) {
      blocks_->MergePendingFrees();
    } else {
      blocks_->QuarantinePendingFrees(checkpoint_gen_);
    }
    blocks_->FreeImmediately(old_blob);
    return Status::OK();
  }();
  in_checkpoint_ = false;
  PTSB_RETURN_IF_ERROR(s);
  checkpoint_count_++;
  bytes_since_checkpoint_ = 0;

  // Rotate the journal: everything it held is now in the checkpoint.
  if (journal_ != nullptr) {
    Status rotated = [&]() -> Status {
      PTSB_RETURN_IF_ERROR(journal_->Sync());
      const std::string jname = file_name_ + ".journal";
      journal_.reset();
      PTSB_RETURN_IF_ERROR(fs_->Delete(jname));
      PTSB_ASSIGN_OR_RETURN(journal_file_, fs_->Create(jname));
      journal_ = std::make_unique<JournalWriter>(
          journal_file_, options_.journal_sync_every_bytes);
      return Status::OK();
    }();
    if (!rotated.ok()) {
      // Everything up to here IS durable (the checkpoint header synced
      // above), but with the rotation half-done there is no journal to
      // give further commits a durable record — acknowledging them would
      // silently drop them at the next crash. Refuse writes until a
      // reopen rebuilds the journal (see WriteInternal).
      journal_.reset();
      journal_lost_ = true;
      return rotated;
    }
  }
  return Status::OK();
}

Status BTreeStore::CheckpointParallel() {
  PTSB_CHECK(pool_ != nullptr);
  in_checkpoint_ = true;
  Status s = [&]() -> Status {
    // Phase 1 (CPU only): serialize + allocate every dirty node in the
    // usual post-order, deferring the device writes. Allocation order,
    // parent-pointer updates, frees and byte accounting are identical
    // to the serial path.
    std::vector<PendingWrite> writes;
    PTSB_RETURN_IF_ERROR(WriteDirtySubtree(root_.get(), &writes));

    // Phase 2: fan the block writes across the pool's lanes —
    // contiguous chunks so each lane still issues ascending offsets.
    const int lanes = pool_->lanes();
    const size_t per = (writes.size() + static_cast<size_t>(lanes) - 1) /
                       static_cast<size_t>(lanes);
    for (int l = 0; l < lanes && per > 0; l++) {
      const size_t begin = static_cast<size_t>(l) * per;
      if (begin >= writes.size()) break;
      const size_t end = std::min(writes.size(), begin + per);
      kv::BackgroundResult r = pool_->Run(l, [&, begin, end]() -> Status {
        for (size_t j = begin; j < end; j++) {
          PTSB_RETURN_IF_ERROR(
              file_->WriteAt(writes[j].offset, writes[j].data));
        }
        return Status::OK();
      });
      stats_.time_background_ns += r.busy_ns;
      PTSB_RETURN_IF_ERROR(r.status);
    }

    // Phase 3 (lane 0, ordered after every block write): free-list
    // blob, header, post-header free bookkeeping — the crash-safety
    // order is unchanged: the header that publishes the new tree is the
    // last write, and frees only become reusable once it is durable.
    pool_->Barrier();
    kv::BackgroundResult r = pool_->Run(0, [&]() -> Status {
      const BlockAddr old_blob = freelist_addr_;
      std::string encoded = blocks_->EncodeMergedFreeList(old_blob);
      PTSB_ASSIGN_OR_RETURN(BlockAddr blob,
                            blocks_->Allocate(encoded.size() + 64));
      encoded = blocks_->EncodeMergedFreeList(old_blob);
      PTSB_CHECK_LE(encoded.size(), blob.bytes);
      encoded.resize(blob.bytes, 0);
      PTSB_RETURN_IF_ERROR(file_->WriteAt(blob.offset, encoded));
      stats_.checkpoint_bytes_written += blob.bytes;
      freelist_addr_ = blob;

      PTSB_RETURN_IF_ERROR(WriteHeader());

      if (snapshot_pins_.empty()) {
        blocks_->MergePendingFrees();
      } else {
        blocks_->QuarantinePendingFrees(checkpoint_gen_);
      }
      blocks_->FreeImmediately(old_blob);
      return Status::OK();
    });
    stats_.time_background_ns += r.busy_ns;
    return r.status;
  }();
  in_checkpoint_ = false;
  PTSB_RETURN_IF_ERROR(s);
  checkpoint_count_++;
  bytes_since_checkpoint_ = 0;

  // Journal rotation, on lane 0 behind the header (same order as the
  // serial path; see Checkpoint for the journal_lost_ contract).
  if (journal_ != nullptr) {
    kv::BackgroundResult r = pool_->Run(0, [&]() -> Status {
      PTSB_RETURN_IF_ERROR(journal_->Sync());
      const std::string jname = file_name_ + ".journal";
      journal_.reset();
      PTSB_RETURN_IF_ERROR(fs_->Delete(jname));
      PTSB_ASSIGN_OR_RETURN(journal_file_, fs_->Create(jname));
      journal_ = std::make_unique<JournalWriter>(
          journal_file_, options_.journal_sync_every_bytes);
      return Status::OK();
    });
    stats_.time_background_ns += r.busy_ns;
    if (!r.status.ok()) {
      journal_.reset();
      journal_lost_ = true;
      return r.status;
    }
  }
  return Status::OK();
}

Status BTreeStore::SplitIfNeeded(Node* node) {
  while (node != nullptr) {
    const uint64_t max_bytes =
        node->is_leaf ? options_.leaf_max_bytes : options_.internal_max_bytes;
    const size_t entry_count =
        node->is_leaf ? node->items.size() : node->children.size();
    if (node->bytes <= max_bytes || entry_count < 2) {
      node = nullptr;
      break;
    }

    auto right = std::make_unique<Node>();
    Node* right_raw = right.get();
    right->is_leaf = node->is_leaf;
    right->dirty = true;
    node->dirty = true;

    std::string separator;
    if (node->is_leaf) {
      // WiredTiger-style split: the left page keeps ~85% (split_pct), so
      // disk pages stay near full and the per-update writeback volume
      // approaches the page size.
      const uint64_t keep = node->bytes * 85 / 100;
      uint64_t acc = Node::kNodeOverhead;
      size_t split = 1;
      for (size_t i = 0; i + 1 < node->items.size(); i++) {
        acc += node->items[i].first.size() + node->items[i].second.size() +
               Node::kLeafItemOverhead;
        if (acc >= keep) {
          split = i + 1;
          break;
        }
      }
      right->items.assign(std::make_move_iterator(node->items.begin() + split),
                          std::make_move_iterator(node->items.end()));
      node->items.erase(node->items.begin() + split, node->items.end());
      separator = right->items.front().first;
    } else {
      const size_t split = node->children.size() / 2;
      right->children.assign(
          std::make_move_iterator(node->children.begin() + split),
          std::make_move_iterator(node->children.end()));
      node->children.erase(node->children.begin() + split,
                           node->children.end());
      for (auto& ref : right->children) {
        if (ref.child != nullptr) ref.child->parent = right_raw;
      }
      separator = right->children.front().first_key;
    }
    node->bytes = node->RecomputeBytes();
    right->bytes = right->RecomputeBytes();
    right->route_key = separator;

    Node* parent = node->parent;
    if (parent == nullptr) {
      // Grow the tree: a fresh internal root adopting both halves.
      PTSB_CHECK(node == root_.get());
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->dirty = true;
      Node::ChildRef left_ref;
      left_ref.first_key = node->route_key;  // "" for the old root
      left_ref.addr = node->addr;
      Node::ChildRef right_ref;
      right_ref.first_key = separator;
      std::unique_ptr<Node> old_root = std::move(root_);
      root_ = std::move(new_root);
      old_root->parent = root_.get();
      right_raw->parent = root_.get();
      left_ref.child = std::move(old_root);
      right_ref.child = std::move(right);
      root_->children.push_back(std::move(left_ref));
      root_->children.push_back(std::move(right_ref));
      root_->bytes = root_->RecomputeBytes();
      Node* left_raw = root_->children[0].child.get();
      if (left_raw->is_leaf) {
        // Both halves are now cache-managed leaves.
        TouchLeaf(left_raw);
        TouchLeaf(right_raw);
      }
      node = nullptr;  // the new root holds 2 children; it cannot overflow
    } else {
      const size_t idx = parent->FindChildIdxExact(node->route_key);
      Node::ChildRef right_ref;
      right_ref.first_key = separator;
      right_raw->parent = parent;
      right_ref.child = std::move(right);
      parent->children.insert(parent->children.begin() + idx + 1,
                              std::move(right_ref));
      parent->bytes = parent->RecomputeBytes();
      parent->dirty = true;
      if (right_raw->is_leaf) {
        TouchLeaf(node);  // re-account shrunken left leaf
        TouchLeaf(right_raw);
      }
      node = parent;  // the parent may overflow in turn
    }
  }
  return Status::OK();
}

void BTreeStore::ChargeCpu(int64_t ns) const {
  if (options_.clock != nullptr) options_.clock->Advance(ns);
}

Status BTreeStore::ApplyEntry(const kv::WriteBatch::Entry& entry) {
  if (entry.kind == kv::WriteBatch::EntryKind::kDeleteRange) {
    // entry.value holds the exclusive range end (see kv::WriteBatch).
    return ApplyDeleteRange(entry.key, entry.value);
  }
  const std::string_view key = entry.key;
  PTSB_ASSIGN_OR_RETURN(Node* leaf, DescendToLeaf(key));
  auto it = std::lower_bound(
      leaf->items.begin(), leaf->items.end(), key,
      [](const auto& item, std::string_view k) { return item.first < k; });
  const bool present = it != leaf->items.end() && it->first == key;
  if (entry.kind == kv::WriteBatch::EntryKind::kPut) {
    const std::string_view value = entry.value;
    if (present) {
      leaf->bytes += value.size();
      leaf->bytes -= it->second.size();
      it->second.assign(value.data(), value.size());
    } else {
      leaf->items.emplace(it, std::string(key), std::string(value));
      leaf->bytes += key.size() + value.size() + Node::kLeafItemOverhead;
    }
  } else {
    if (!present) return Status::OK();
    leaf->bytes -= key.size() + it->second.size() + Node::kLeafItemOverhead;
    leaf->items.erase(it);
  }
  leaf->dirty = true;
  TouchLeaf(leaf);
  return SplitIfNeeded(leaf);
}

Status BTreeStore::ApplyDeleteRange(std::string_view begin,
                                    std::string_view end) {
  if (begin >= end) return Status::OK();
  // Repeated root-to-leaf descents: each pass erases the covered span of
  // one leaf. The descent tracks the closest right-sibling route key, so
  // multi-leaf ranges hop to the next leaf's subtree without cursor
  // machinery (the route key is the smallest key the next subtree can
  // hold, and it is strictly greater than every key visited so far, so
  // the loop terminates).
  std::string cursor(begin);
  for (;;) {
    Node* node = root_.get();
    std::string next_subtree;
    bool has_next = false;
    while (!node->is_leaf) {
      const size_t idx = node->FindChildIdx(cursor);
      if (idx + 1 < node->children.size()) {
        next_subtree = node->children[idx + 1].first_key;
        has_next = true;
      }
      PTSB_ASSIGN_OR_RETURN(node, FetchChild(node, idx));
    }
    const auto first = std::lower_bound(
        node->items.begin(), node->items.end(), std::string_view(cursor),
        [](const auto& item, std::string_view k) { return item.first < k; });
    const auto last = std::lower_bound(
        first, node->items.end(), end,
        [](const auto& item, std::string_view k) { return item.first < k; });
    if (first != last) {
      for (auto it = first; it != last; ++it) {
        node->bytes -=
            it->first.size() + it->second.size() + Node::kLeafItemOverhead;
      }
      node->items.erase(first, last);  // empty leaves are allowed
      node->dirty = true;
      TouchLeaf(node);
    }
    if (!has_next || next_subtree >= end) return Status::OK();
    cursor = next_subtree;
  }
}

kv::WriteHandle BTreeStore::WriteAsync(const kv::WriteBatch& batch) {
  return kv::AsyncCommit(options_.clock, options_.io_queue,
                         [&] { return Write(batch); });
}

Status BTreeStore::Write(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  if (batch.empty()) return Status::OK();
  return write_group_.Commit(
      batch, [this](const kv::WriteBatch& merged, size_t n_user_batches) {
        return WriteInternal(merged, n_user_batches);
      });
}

Status BTreeStore::WriteInternal(const kv::WriteBatch& batch,
                                 size_t n_user_batches) {
  write_epoch_++;
  ChargeCpu(options_.cpu_put_ns * static_cast<int64_t>(batch.Count()));
  stats_.user_batches += n_user_batches;
  stats_.write_groups++;
  stats_.write_group_batches += n_user_batches;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        stats_.user_puts++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size();
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        // One logical delete spanning [key, value).
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
    }
  }
  if (journal_lost_) {
    // A failed journal rotation left commits without a durable record;
    // fail-stop instead of acknowledging writes a crash would drop.
    return Status::IoError(
        "btree: journal unavailable after failed rotation; reopen to "
        "recover");
  }
  if (journal_ != nullptr && !replaying_) {
    // Group commit: one journal record, one crc, for the whole batch.
    const uint64_t journal_before = journal_->bytes_written();
    PTSB_RETURN_IF_ERROR(journal_->AppendBatch(batch));
    stats_.wal_bytes_written += journal_->bytes_written() - journal_before;
    stats_.wal_records++;
  }
  // Apply all entries before any checkpoint/eviction pacing: page
  // writebacks for the whole batch are deferred to one decision point.
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    PTSB_RETURN_IF_ERROR(ApplyEntry(e));
  }

  bytes_since_checkpoint_ += batch.ByteSize();
  if (!replaying_ &&
      bytes_since_checkpoint_ >= options_.checkpoint_every_bytes) {
    // Paced (not user-requested) checkpoints move to the background lane
    // when background_io is on: the commit returns without absorbing the
    // checkpoint's device time.
    if (options_.background_io && options_.clock != nullptr) {
      if (options_.compaction_parallelism > 1) {
        // Partitioned checkpoint: the phases dispatch through the
        // pool's lanes themselves — an enclosing background span here
        // would collapse the fan-out (nested lanes run synchronously).
        if (pool_ == nullptr) {
          pool_ = std::make_unique<kv::BackgroundPool>(
              options_.clock, options_.background_queue,
              options_.compaction_parallelism);
        }
        PTSB_RETURN_IF_ERROR(CheckpointParallel());
      } else {
        kv::BackgroundResult r = kv::RunBackgroundWork(
            options_.clock, options_.background_queue,
            &background_horizon_ns_, [&] { return Checkpoint(); });
        stats_.time_background_ns += r.busy_ns;
        PTSB_RETURN_IF_ERROR(r.status);
      }
    } else {
      PTSB_RETURN_IF_ERROR(Checkpoint());
    }
  }
  return EvictIfNeeded();
}

void BTreeStore::JoinBackgroundWork() {
  if (options_.clock != nullptr) {
    options_.clock->AdvanceTo(background_horizon_ns_);
    if (pool_ != nullptr) pool_->Join();
  }
}

Status BTreeStore::Get(std::string_view key, std::string* value) {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive([&] { return GetInternal(key, value); });
}

Status BTreeStore::GetInternal(std::string_view key, std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;
  PTSB_ASSIGN_OR_RETURN(Node* leaf, DescendToLeaf(key));
  const auto it = std::lower_bound(
      leaf->items.begin(), leaf->items.end(), key,
      [](const auto& item, std::string_view k) { return item.first < k; });
  Status result = Status::NotFound("no such key");
  if (it != leaf->items.end() && it->first == key) {
    *value = it->second;
    stats_.user_bytes_read += value->size();
    result = Status::OK();
  }
  PTSB_RETURN_IF_ERROR(EvictIfNeeded());
  return result;
}

std::vector<Status> BTreeStore::MultiGet(
    std::span<const std::string_view> keys,
    std::vector<std::string>* values) {
  PTSB_CHECK(!closed_);
  return kv::FanOutMultiGet(this, options_.clock, options_.io_queue,
                            options_.read_queue_depth, keys, values);
}

kv::ReadHandle BTreeStore::ReadAsync(std::string_view key,
                                     std::string* value) {
  return kv::AsyncRead(options_.clock, options_.io_queue,
                       [&] { return Get(key, value); });
}

// Leaf-walking cursor: descends to the target leaf, then streams items in
// order, hopping to the next leaf through the stack of internal-node
// positions. The cache cap is enforced only when moving OFF a leaf (the
// current leaf must stay resident while views into it are live); internal
// nodes are pinned by design, so stack frames never dangle.
class BTreeStore::Cursor : public kv::KVStore::Iterator {
 public:
  explicit Cursor(BTreeStore* store)
      : store_(store), epoch_(store->write_epoch_) {}

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    CheckEpoch();
    status_ = Status::OK();
    valid_ = false;
    stack_.clear();
    leaf_ = nullptr;
    item_ = 0;
    // Enforce the cache cap before loading anything: short seek-bounded
    // scans never reach AdvanceToNextLeaf, and without this the cursor
    // path would grow the leaf cache without bound. Our own eviction must
    // not self-invalidate: resync the epoch (we hold no leaf here).
    status_ = store_->EvictIfNeeded();
    epoch_ = store_->write_epoch_;
    if (!status_.ok()) return;
    Node* node = store_->root_.get();
    while (!node->is_leaf) {
      const size_t idx = node->FindChildIdx(target);
      stack_.push_back({node, idx});
      auto child = store_->FetchChild(node, idx);
      if (!child.ok()) {
        status_ = child.status();
        return;
      }
      node = *child;
    }
    leaf_ = node;
    const auto it = std::lower_bound(
        leaf_->items.begin(), leaf_->items.end(), target,
        [](const auto& item, std::string_view k) { return item.first < k; });
    item_ = static_cast<size_t>(it - leaf_->items.begin());
    if (item_ < leaf_->items.size()) {
      SetCurrent();
    } else {
      AdvanceToNextLeaf();
    }
  }

  bool Valid() const override {
    CheckEpoch();
    return valid_;
  }

  void Next() override {
    CheckEpoch();
    if (!valid_) return;
    valid_ = false;
    item_++;
    if (item_ < leaf_->items.size()) {
      SetCurrent();
    } else {
      AdvanceToNextLeaf();
    }
  }

  std::string_view key() const override {
    CheckEpoch();
    return leaf_->items[item_].first;
  }
  std::string_view value() const override {
    CheckEpoch();
    return leaf_->items[item_].second;
  }
  Status status() const override { return status_; }

 private:
  // Debug-build fail-fast on use-after-write: splits move items between
  // pages and evictions free the leaf this cursor points into, so
  // continuing would silently read stale (or freed) state.
  void CheckEpoch() const {
    PTSB_DCHECK(epoch_ == store_->write_epoch_)
        << "B+Tree cursor used after a write to the store; iterators "
           "observe the store as of creation and are invalidated by "
           "writes (create, consume, discard)";
  }

  struct Frame {
    Node* node;  // internal node (never cache-evicted)
    size_t idx;  // child currently being explored
  };

  void SetCurrent() {
    valid_ = true;
    store_->stats_.user_bytes_read +=
        leaf_->items[item_].first.size() + leaf_->items[item_].second.size();
  }

  void AdvanceToNextLeaf() {
    leaf_ = nullptr;
    item_ = 0;
    // Off the previous leaf: the only safe point to enforce the cache
    // cap. Resync the epoch so our own eviction doesn't self-invalidate.
    status_ = store_->EvictIfNeeded();
    epoch_ = store_->write_epoch_;
    while (status_.ok() && !stack_.empty()) {
      Frame& top = stack_.back();
      top.idx++;
      if (top.idx >= top.node->children.size()) {
        stack_.pop_back();
        continue;
      }
      // Descend the leftmost path under the next sibling.
      Node* node = top.node;
      size_t idx = top.idx;
      for (;;) {
        auto child = store_->FetchChild(node, idx);
        if (!child.ok()) {
          status_ = child.status();
          return;
        }
        node = *child;
        if (node->is_leaf) break;
        stack_.push_back({node, 0});
        idx = 0;
      }
      if (node->items.empty()) continue;  // deletes can leave empty leaves
      leaf_ = node;
      item_ = 0;
      SetCurrent();
      return;
    }
  }

  BTreeStore* store_;
  // store_->write_epoch_ at creation, resynced after this cursor's own
  // eviction calls (which run while it holds no leaf).
  uint64_t epoch_;
  std::vector<Frame> stack_;
  Node* leaf_ = nullptr;
  size_t item_ = 0;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> BTreeStore::NewIterator() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<Cursor>(this);
      });
}

// A pinned checkpoint: the tree image rooted at `root_` stays readable on
// disk because the block manager quarantines (instead of reusing) every
// block freed by later checkpoints while this generation is pinned.
// Contract (as in the LSM engine): the snapshot must outlive cursors
// created from it and must be released before the store is destroyed.
class BTreeStore::SnapshotImpl : public kv::Snapshot {
 public:
  explicit SnapshotImpl(BTreeStore* store) : store_(store) {}
  ~SnapshotImpl() override { store_->ReleaseSnapshot(*this); }
  uint64_t sequence() const override { return gen_; }

  BTreeStore* store_;
  uint64_t gen_ = 0;   // pinned checkpoint generation
  BlockAddr root_;     // that checkpoint's root node
};

StatusOr<std::shared_ptr<const kv::Snapshot>> BTreeStore::GetSnapshot() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> StatusOr<std::shared_ptr<const kv::Snapshot>> {
        // A snapshot IS a checkpoint here: make the current state one,
        // then pin its generation. Checkpoint writebacks move leaves
        // around, so live cursors are invalidated like any write.
        write_epoch_++;
        JoinBackgroundWork();
        PTSB_RETURN_IF_ERROR(Checkpoint());
        auto snap = std::make_shared<SnapshotImpl>(this);
        snap->gen_ = checkpoint_gen_;
        snap->root_ = root_addr_;
        snapshot_pins_[snap->gen_]++;
        stats_.snapshots_created++;
        stats_.snapshots_open++;
        return std::shared_ptr<const kv::Snapshot>(std::move(snap));
      });
}

void BTreeStore::ReleaseSnapshot(const SnapshotImpl& snap) {
  write_group_.RunExclusive([&] {
    auto it = snapshot_pins_.find(snap.gen_);
    PTSB_CHECK(it != snapshot_pins_.end());
    if (--it->second == 0) snapshot_pins_.erase(it);
    // Cohort G is needed only by snapshots pinning a generation < G:
    // everything at or below the oldest remaining pin can be reused.
    const uint64_t min_pinned = snapshot_pins_.empty()
                                    ? std::numeric_limits<uint64_t>::max()
                                    : snapshot_pins_.begin()->first;
    blocks_->ReleaseQuarantinedUpTo(min_pinned);
    stats_.snapshots_open--;
  });
}

Status BTreeStore::SnapshotGetInternal(const SnapshotImpl& snap,
                                       std::string_view key,
                                       std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;
  PTSB_CHECK(!snap.root_.IsNull());
  // Private root-to-leaf walk of the pinned on-disk tree: nothing is
  // linked into the live cache, so concurrent writes (excluded only for
  // the duration of this call, not the snapshot's lifetime) never see or
  // perturb these nodes.
  PTSB_ASSIGN_OR_RETURN(std::unique_ptr<Node> node, ReadNode(snap.root_));
  while (!node->is_leaf) {
    const size_t idx = node->FindChildIdx(key);
    const BlockAddr child = node->children[idx].addr;
    PTSB_ASSIGN_OR_RETURN(node, ReadNode(child));
  }
  const auto it = std::lower_bound(
      node->items.begin(), node->items.end(), key,
      [](const auto& item, std::string_view k) { return item.first < k; });
  if (it == node->items.end() || it->first != key) {
    return Status::NotFound("no such key");
  }
  *value = it->second;
  stats_.user_bytes_read += value->size();
  return Status::OK();
}

Status BTreeStore::Get(const kv::ReadOptions& opts, std::string_view key,
                       std::string* value) {
  PTSB_CHECK(!closed_);
  if (opts.snapshot == nullptr) return Get(key, value);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  return write_group_.RunExclusive(
      [&] { return SnapshotGetInternal(*snap, key, value); });
}

// Disk-walking cursor over a pinned checkpoint. It owns every node it
// loads (stack of internal nodes + current leaf), so it is immune to
// live-tree splits and evictions — no write-epoch check. Each movement
// runs under the commit-exclusion lock (the File substrate has a
// single-user contract), but the cursor stays valid across writes made
// between movements. With readahead > 1, sibling-leaf reads are batched
// across foreground-read submission lanes so their device time overlaps.
class BTreeStore::SnapCursor : public kv::KVStore::Iterator {
 public:
  SnapCursor(BTreeStore* store, const SnapshotImpl* snap, int readahead)
      : store_(store),
        snap_(snap),
        span_(readahead > 1 ? readahead : 1),
        depth_(std::min<int>(span_,
                             std::max(1, store->options_.read_queue_depth))) {}

  void SeekToFirst() override { Seek(""); }

  void Seek(std::string_view target) override {
    store_->write_group_.RunExclusive([&] { SeekImpl(target); });
  }

  void Next() override {
    if (!valid_) return;
    store_->write_group_.RunExclusive([&] { NextImpl(); });
  }

  bool Valid() const override { return valid_; }
  std::string_view key() const override { return leaf_->items[item_].first; }
  std::string_view value() const override {
    return leaf_->items[item_].second;
  }
  Status status() const override { return status_; }

 private:
  struct Frame {
    std::unique_ptr<Node> node;  // internal node of the pinned tree
    size_t idx;                  // child currently being explored
  };

  void SeekImpl(std::string_view target) {
    status_ = Status::OK();
    valid_ = false;
    stack_.clear();
    ready_.clear();
    leaf_.reset();
    item_ = 0;
    auto got = store_->ReadNode(snap_->root_);
    if (!got.ok()) {
      status_ = got.status();
      return;
    }
    std::unique_ptr<Node> cur = std::move(*got);
    leaf_parent_level_ = -1;
    while (!cur->is_leaf) {
      const size_t idx = cur->FindChildIdx(target);
      const BlockAddr child_addr = cur->children[idx].addr;
      stack_.push_back({std::move(cur), idx});
      auto child = store_->ReadNode(child_addr);
      if (!child.ok()) {
        status_ = child.status();
        return;
      }
      cur = std::move(*child);
    }
    leaf_parent_level_ = static_cast<int>(stack_.size()) - 1;
    leaf_ = std::move(cur);
    const auto it = std::lower_bound(
        leaf_->items.begin(), leaf_->items.end(), target,
        [](const auto& item, std::string_view k) { return item.first < k; });
    item_ = static_cast<size_t>(it - leaf_->items.begin());
    if (item_ < leaf_->items.size()) {
      SetCurrent();
    } else {
      AdvanceToNextLeaf();
    }
  }

  void NextImpl() {
    valid_ = false;
    item_++;
    if (leaf_ != nullptr && item_ < leaf_->items.size()) {
      SetCurrent();
    } else {
      AdvanceToNextLeaf();
    }
  }

  void SetCurrent() {
    valid_ = true;
    store_->stats_.user_bytes_read +=
        leaf_->items[item_].first.size() + leaf_->items[item_].second.size();
  }

  void AdvanceToNextLeaf() {
    leaf_.reset();
    item_ = 0;
    while (status_.ok()) {
      // Drain prefetched leaves first.
      while (!ready_.empty()) {
        std::unique_ptr<Node> n = std::move(ready_.front());
        ready_.pop_front();
        if (n->items.empty()) continue;  // deletes can leave empty leaves
        leaf_ = std::move(n);
        SetCurrent();
        return;
      }
      if (stack_.empty()) return;  // exhausted
      Frame& top = stack_.back();
      top.idx++;
      if (top.idx >= top.node->children.size()) {
        stack_.pop_back();
        continue;
      }
      // Descend leftmost under the next sibling down to the level whose
      // children are leaves (depth is uniform), then batch a leaf run.
      while (static_cast<int>(stack_.size()) - 1 < leaf_parent_level_) {
        Frame& f = stack_.back();
        auto got = store_->ReadNode(f.node->children[f.idx].addr);
        if (!got.ok()) {
          status_ = got.status();
          return;
        }
        stack_.push_back({std::move(*got), 0});
      }
      LoadLeafRun(&stack_.back());
    }
  }

  // Reads children [frame->idx, frame->idx + span_) of a leaf-parent
  // frame into ready_. With a clock and depth_ > 1 the reads are
  // submitted before any is waited, striped over lanes io_queue + j, so
  // their virtual device time is the max, not the sum.
  void LoadLeafRun(Frame* frame) {
    const auto& kids = frame->node->children;
    const size_t first = frame->idx;
    const size_t count =
        std::min<size_t>(static_cast<size_t>(span_), kids.size() - first);
    if (count <= 1 || depth_ <= 1 || store_->options_.clock == nullptr) {
      for (size_t i = 0; i < count; i++) {
        auto got = store_->ReadNode(kids[first + i].addr);
        if (!got.ok()) {
          status_ = got.status();
          return;
        }
        ready_.push_back(std::move(*got));
      }
    } else {
      std::vector<std::string> bufs(count);
      std::vector<block::IoTicket> tickets(count);
      for (size_t i = 0; i < count; i++) {
        const BlockAddr& a = kids[first + i].addr;
        bufs[i].resize(a.bytes);
        tickets[i] = store_->file_->SubmitReadAt(
            a.offset, a.bytes, bufs[i].data(),
            store_->options_.io_queue +
                static_cast<uint32_t>(i % static_cast<size_t>(depth_)));
      }
      for (size_t i = 0; i < count; i++) {
        const Status s = store_->file_->Wait(tickets[i]);
        if (!s.ok() && status_.ok()) status_ = s;
      }
      if (!status_.ok()) return;
      for (size_t i = 0; i < count; i++) {
        store_->stats_.page_read_bytes += bufs[i].size();
        auto node = Node::Deserialize(bufs[i]);
        if (!node.ok()) {
          status_ = node.status();
          return;
        }
        (*node)->addr = kids[first + i].addr;
        ready_.push_back(std::move(*node));
      }
    }
    frame->idx = first + count - 1;  // last child now explored
  }

  BTreeStore* store_;
  const SnapshotImpl* snap_;
  const int span_;   // leaves per prefetch batch
  const int depth_;  // submission lanes used per batch
  std::vector<Frame> stack_;
  // Index of the stack level whose children are leaves (-1: root leaf).
  int leaf_parent_level_ = -1;
  std::deque<std::unique_ptr<Node>> ready_;  // prefetched sibling leaves
  std::unique_ptr<Node> leaf_;
  size_t item_ = 0;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> BTreeStore::NewIterator(
    const kv::ReadOptions& opts) {
  PTSB_CHECK(!closed_);
  if (opts.snapshot == nullptr) {
    // Readahead is a disk-cursor concern; the live cursor reads through
    // the leaf cache.
    return NewIterator();
  }
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<SnapCursor>(this, snap, opts.readahead);
      });
}

Status BTreeStore::Flush() {
  PTSB_CHECK(!closed_);
  write_epoch_++;  // checkpoint writebacks/evictions move leaves around
  // The user asked for durability: wait out any in-flight background
  // checkpoint, then run this one on the foreground.
  JoinBackgroundWork();
  return Checkpoint();
}

Status BTreeStore::SettleBackgroundWork() {
  PTSB_CHECK(!closed_);
  JoinBackgroundWork();
  return Status::OK();
}

Status BTreeStore::Close() {
  if (closed_) return Status::OK();
  JoinBackgroundWork();
  PTSB_RETURN_IF_ERROR(Checkpoint());
  closed_ = true;
  return Status::OK();
}

uint64_t BTreeStore::DiskBytesUsed() const {
  uint64_t total = file_->allocated_bytes();
  if (journal_file_ != nullptr) total += journal_file_->size();
  return total;
}

int BTreeStore::Depth(const Node* n) {
  int d = 1;
  while (!n->is_leaf) {
    // Follow any loaded child; structure checks load everything first.
    const Node* next = nullptr;
    for (const auto& ref : n->children) {
      if (ref.child != nullptr) {
        next = ref.child.get();
        break;
      }
    }
    PTSB_CHECK(next != nullptr) << "Depth() requires a fully loaded tree";
    n = next;
    d++;
  }
  return d;
}

Status BTreeStore::CheckSubtree(Node* node, int depth, int expect_depth,
                                std::string_view lower_bound) {
  if (node->is_leaf) {
    if (depth != expect_depth) {
      return Status::Corruption("non-uniform leaf depth");
    }
    for (size_t i = 0; i < node->items.size(); i++) {
      if (i > 0 && node->items[i - 1].first >= node->items[i].first) {
        return Status::Corruption("leaf keys out of order");
      }
      if (node->parent != nullptr && node->items[i].first < lower_bound &&
          !lower_bound.empty()) {
        return Status::Corruption("leaf key below its route key");
      }
    }
    return Status::OK();
  }
  if (node->children.empty()) {
    return Status::Corruption("internal node with no children");
  }
  for (size_t i = 0; i < node->children.size(); i++) {
    auto& ref = node->children[i];
    if (i > 0 && node->children[i - 1].first_key >= ref.first_key) {
      return Status::Corruption("child keys out of order");
    }
    PTSB_ASSIGN_OR_RETURN(Node* child, FetchChild(node, i));
    if (child->route_key != ref.first_key) {
      return Status::Corruption("route key mismatch");
    }
    if (child->parent != node) {
      return Status::Corruption("parent pointer mismatch");
    }
    const std::string_view bound = i == 0 ? lower_bound
                                          : std::string_view(ref.first_key);
    PTSB_RETURN_IF_ERROR(CheckSubtree(child, depth + 1, expect_depth, bound));
  }
  return Status::OK();
}

namespace {

BTreeOptions BTreeOptionsFromEngineOptions(const kv::EngineOptions& eo) {
  BTreeOptions o;
  o.leaf_max_bytes = kv::ParamUint64(eo, "leaf_max_bytes", o.leaf_max_bytes);
  o.internal_max_bytes =
      kv::ParamUint64(eo, "internal_max_bytes", o.internal_max_bytes);
  o.cache_bytes = kv::ParamUint64(eo, "cache_bytes", o.cache_bytes);
  o.checkpoint_every_bytes = kv::ParamUint64(eo, "checkpoint_every_bytes",
                                             o.checkpoint_every_bytes);
  o.journal_enabled =
      kv::ParamBool(eo, "journal_enabled", o.journal_enabled);
  o.journal_sync_every_bytes = kv::ParamUint64(
      eo, "journal_sync_every_bytes", o.journal_sync_every_bytes);
  o.reuse_freed_blocks =
      kv::ParamBool(eo, "reuse_freed_blocks", o.reuse_freed_blocks);
  o.file_grow_bytes =
      kv::ParamUint64(eo, "file_grow_bytes", o.file_grow_bytes);
  o.cpu_put_ns = kv::ParamInt64(eo, "cpu_put_ns", o.cpu_put_ns);
  o.cpu_get_ns = kv::ParamInt64(eo, "cpu_get_ns", o.cpu_get_ns);
  o.max_write_group_bytes = kv::ParamUint64(eo, "max_write_group_bytes",
                                            o.max_write_group_bytes);
  o.read_queue_depth =
      kv::ParamInt(eo, "read_queue_depth", o.read_queue_depth);
  o.background_io = kv::ParamBool(eo, "background_io", o.background_io);
  o.compaction_parallelism =
      kv::ParamInt(eo, "compaction_parallelism", o.compaction_parallelism);
  o.clock = eo.clock;
  o.io_queue = eo.io_queue;
  o.background_queue = eo.background_queue;
  return o;
}

}  // namespace

void RegisterBTreeEngine() {
  kv::EngineRegistry::Global().Register(
      "btree",
      [](const kv::EngineOptions& eo)
          -> StatusOr<std::unique_ptr<kv::KVStore>> {
        auto opened =
            BTreeStore::Open(eo.fs, BTreeOptionsFromEngineOptions(eo),
                             eo.root.empty() ? "btree/tree.db" : eo.root);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<kv::KVStore>(std::move(*opened));
      });
}

std::map<std::string, std::string> EncodeEngineParams(const BTreeOptions& o) {
  std::map<std::string, std::string> p;
  p["leaf_max_bytes"] = std::to_string(o.leaf_max_bytes);
  p["internal_max_bytes"] = std::to_string(o.internal_max_bytes);
  p["cache_bytes"] = std::to_string(o.cache_bytes);
  p["checkpoint_every_bytes"] = std::to_string(o.checkpoint_every_bytes);
  p["journal_enabled"] = o.journal_enabled ? "1" : "0";
  p["journal_sync_every_bytes"] =
      std::to_string(o.journal_sync_every_bytes);
  p["reuse_freed_blocks"] = o.reuse_freed_blocks ? "1" : "0";
  p["file_grow_bytes"] = std::to_string(o.file_grow_bytes);
  p["cpu_put_ns"] = std::to_string(o.cpu_put_ns);
  p["cpu_get_ns"] = std::to_string(o.cpu_get_ns);
  p["max_write_group_bytes"] = std::to_string(o.max_write_group_bytes);
  p["read_queue_depth"] = std::to_string(o.read_queue_depth);
  p["background_io"] = o.background_io ? "1" : "0";
  p["compaction_parallelism"] = std::to_string(o.compaction_parallelism);
  return p;
}

Status BTreeStore::CheckStructure() {
  // Load everything (test-sized trees), then verify.
  std::vector<Node*> to_load{root_.get()};
  while (!to_load.empty()) {
    Node* n = to_load.back();
    to_load.pop_back();
    if (n->is_leaf) continue;
    for (size_t i = 0; i < n->children.size(); i++) {
      PTSB_ASSIGN_OR_RETURN(Node* child, FetchChild(n, i));
      to_load.push_back(child);
    }
  }
  PTSB_RETURN_IF_ERROR(blocks_->CheckConsistency());
  return CheckSubtree(root_.get(), 1, Depth(root_.get()), "");
}

}  // namespace ptsb::btree
