// Optional write-ahead journal for the B+Tree (WiredTiger's logging).
// Disabled by default to match the paper's standalone-WiredTiger setup;
// enabling it trades extra writes for durability between checkpoints.
//
// Record format: fixed32 masked-crc | varint32 len | payload, where the
// payload holds one (op, key, value) tuple per batched operation. A
// single-op Append is a one-tuple batch, so legacy records replay
// unchanged; batched appends pay the framing once (group commit).
#ifndef PTSB_BTREE_JOURNAL_H_
#define PTSB_BTREE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "fs/file.h"
#include "kv/write_batch.h"
#include "util/status.h"

namespace ptsb::btree {

// kDeleteRange carries (begin, exclusive end) in the (key, value) slots;
// replay re-expands it through the store's eager range-erase, so the
// journal stays a flat op log.
enum class JournalOp : uint8_t { kPut = 1, kDelete = 2, kDeleteRange = 3 };

class JournalWriter {
 public:
  JournalWriter(fs::File* file, uint64_t sync_every_bytes);

  Status Append(JournalOp op, std::string_view key, std::string_view value);
  // Appends the whole batch as ONE record (group commit).
  Status AppendBatch(const kv::WriteBatch& batch);
  Status Sync();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status EmitRecord(std::string_view payload);

  fs::File* file_;
  uint64_t sync_every_bytes_;
  uint64_t bytes_written_ = 0;
  uint64_t unsynced_ = 0;
};

// Replays intact records in order; stops silently at a torn tail.
Status ReplayJournal(
    fs::File* file,
    const std::function<void(JournalOp, std::string_view key,
                             std::string_view value)>& fn);

}  // namespace ptsb::btree

#endif  // PTSB_BTREE_JOURNAL_H_
