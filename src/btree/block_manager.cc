#include "btree/block_manager.h"

#include <algorithm>

#include "util/encoding.h"
#include "util/logging.h"

namespace ptsb::btree {

BlockManager::BlockManager(fs::File* file, uint64_t data_start,
                           bool reuse_freed_blocks, uint64_t file_grow_bytes)
    : file_(file),
      data_start_(data_start),
      reuse_freed_blocks_(reuse_freed_blocks),
      file_grow_bytes_(std::max(file_grow_bytes, kUnit)),
      file_end_(data_start) {}

StatusOr<BlockAddr> BlockManager::Allocate(uint64_t bytes) {
  bytes = (bytes + kUnit - 1) / kUnit * kUnit;
  if (bytes == 0) bytes = kUnit;
  // First fit at the lowest offset keeps the footprint compact.
  for (auto it = available_.begin(); it != available_.end(); ++it) {
    if (it->second < bytes) continue;
    BlockAddr addr{it->first, bytes};
    const uint64_t rest = it->second - bytes;
    const uint64_t rest_off = it->first + bytes;
    available_.erase(it);
    if (rest > 0) available_[rest_off] = rest;
    allocated_bytes_ += bytes;
    return addr;
  }
  // Grow the file.
  const uint64_t grow = std::max(bytes, file_grow_bytes_);
  PTSB_RETURN_IF_ERROR(file_->Extend(file_end_ + grow));
  BlockAddr addr{file_end_, bytes};
  if (grow > bytes) AddToList(&available_, file_end_ + bytes, grow - bytes);
  file_end_ += grow;
  allocated_bytes_ += bytes;
  return addr;
}

void BlockManager::Free(const BlockAddr& addr) {
  if (addr.IsNull()) return;
  PTSB_DCHECK(addr.offset >= data_start_ &&
              addr.offset + addr.bytes <= file_end_);
  allocated_bytes_ -= addr.bytes;
  if (!reuse_freed_blocks_) return;  // append-only ablation: leak space
  AddToList(&pending_, addr.offset, addr.bytes);
  pending_bytes_ += addr.bytes;
}

void BlockManager::MergePendingFrees() {
  for (const auto& [off, len] : pending_) {
    AddToList(&available_, off, len);
  }
  pending_.clear();
  pending_bytes_ = 0;
}

void BlockManager::QuarantinePendingFrees(uint64_t gen) {
  if (pending_.empty()) return;
  std::map<uint64_t, uint64_t>* cohort = &quarantined_[gen];
  for (const auto& [off, len] : pending_) {
    AddToList(cohort, off, len);
    quarantined_bytes_ += len;
  }
  pending_.clear();
  pending_bytes_ = 0;
}

void BlockManager::ReleaseQuarantinedUpTo(uint64_t min_pinned_gen) {
  while (!quarantined_.empty() &&
         quarantined_.begin()->first <= min_pinned_gen) {
    for (const auto& [off, len] : quarantined_.begin()->second) {
      AddToList(&available_, off, len);
      quarantined_bytes_ -= len;
    }
    quarantined_.erase(quarantined_.begin());
  }
}

void BlockManager::AddToList(std::map<uint64_t, uint64_t>* list,
                             uint64_t offset, uint64_t bytes) {
  auto [it, inserted] = list->emplace(offset, bytes);
  PTSB_CHECK(inserted) << "double free at offset " << offset;
  auto next = std::next(it);
  if (next != list->end() && it->first + it->second == next->first) {
    it->second += next->second;
    list->erase(next);
  }
  if (it != list->begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      list->erase(it);
    }
  }
}

uint64_t BlockManager::free_bytes() const {
  uint64_t n = 0;
  for (const auto& [off, len] : available_) n += len;
  return n;
}

std::string BlockManager::EncodeFreeList() const {
  PTSB_CHECK(pending_.empty()) << "encode before merging pending frees";
  std::string out;
  PutVarint64(&out, file_end_);
  PutVarint64(&out, allocated_bytes_);
  PutVarint64(&out, available_.size());
  for (const auto& [off, len] : available_) {
    PutVarint64(&out, off);
    PutVarint64(&out, len);
  }
  return out;
}

void BlockManager::FreeImmediately(const BlockAddr& addr) {
  if (addr.IsNull()) return;
  allocated_bytes_ -= addr.bytes;
  if (!reuse_freed_blocks_) return;
  AddToList(&available_, addr.offset, addr.bytes);
}

std::string BlockManager::EncodeMergedFreeList(const BlockAddr& extra) const {
  std::map<uint64_t, uint64_t> merged = available_;
  // Merging into a copy: AddToList coalesces, so build via a scratch
  // manager-like merge.
  auto add = [&merged](uint64_t offset, uint64_t bytes) {
    auto [it, inserted] = merged.emplace(offset, bytes);
    PTSB_CHECK(inserted);
    auto next = std::next(it);
    if (next != merged.end() && it->first + it->second == next->first) {
      it->second += next->second;
      merged.erase(next);
    }
    if (it != merged.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        merged.erase(it);
      }
    }
  };
  for (const auto& [off, len] : pending_) add(off, len);
  // Quarantined blocks are held back only for LIVE snapshots; a crash
  // drops every snapshot, so the persisted image may reuse them.
  for (const auto& [gen, cohort] : quarantined_) {
    for (const auto& [off, len] : cohort) add(off, len);
  }
  if (!extra.IsNull() && reuse_freed_blocks_) add(extra.offset, extra.bytes);

  std::string out;
  PutVarint64(&out, file_end_);
  PutVarint64(&out, allocated_bytes_ - extra.bytes);
  PutVarint64(&out, merged.size());
  for (const auto& [off, len] : merged) {
    PutVarint64(&out, off);
    PutVarint64(&out, len);
  }
  return out;
}

Status BlockManager::DecodeFreeList(std::string_view in) {
  uint64_t count;
  available_.clear();
  pending_.clear();
  pending_bytes_ = 0;
  quarantined_.clear();
  quarantined_bytes_ = 0;
  if (!GetVarint64(&in, &file_end_) || !GetVarint64(&in, &allocated_bytes_) ||
      !GetVarint64(&in, &count)) {
    return Status::Corruption("bad free list header");
  }
  for (uint64_t i = 0; i < count; i++) {
    uint64_t off, len;
    if (!GetVarint64(&in, &off) || !GetVarint64(&in, &len)) {
      return Status::Corruption("bad free list entry");
    }
    available_[off] = len;
  }
  return CheckConsistency();
}

Status BlockManager::CheckConsistency() const {
  auto check_list = [&](const std::map<uint64_t, uint64_t>& list) -> Status {
    uint64_t prev_end = 0;
    bool first = true;
    for (const auto& [off, len] : list) {
      if (len == 0) return Status::Corruption("zero-length free block");
      if (off % kUnit != 0 || len % kUnit != 0) {
        return Status::Corruption("misaligned free block");
      }
      if (off < data_start_ || off + len > file_end_) {
        return Status::Corruption("free block out of range");
      }
      if (!first && off < prev_end) {
        return Status::Corruption("overlapping free blocks");
      }
      prev_end = off + len;
      first = false;
    }
    return Status::OK();
  };
  PTSB_RETURN_IF_ERROR(check_list(available_));
  PTSB_RETURN_IF_ERROR(check_list(pending_));
  for (const auto& [gen, cohort] : quarantined_) {
    PTSB_RETURN_IF_ERROR(check_list(cohort));
  }
  return Status::OK();
}

}  // namespace ptsb::btree
