// SimpleFs: an extent-based filesystem over a BlockDevice, standing in for
// the paper's ext4-with-nodiscard setup (Section 3.5).
//
// Semantics that matter for the study:
//  - nodiscard (default): deleting a file returns its extents to the FS
//    free pool but does NOT trim them on the device, so the FTL keeps
//    treating them as valid data until the LBAs are rewritten. This is the
//    mechanism that erodes the "LSM trees are flash friendly" intuition
//    (paper Section 4.2/4.3).
//  - Appends are buffered per-file at page granularity; Sync() writes the
//    partial tail page and issues a device flush. Repeated small appends +
//    syncs hammer the same LBA, as on a real filesystem.
//  - The namespace (directory + inode table) is modeled as a small reserved
//    metadata region; namespace mutations charge one metadata page write.
//    Namespace durability follows the journaled-fs assumption: after
//    SimulateCrash() the namespace survives, unsynced file data does not.
//  - Thread safety, modeled on the kernel's locking split. ONE filesystem
//    mutex: `mu_` serializes the namespace (directory + inode table) AND
//    the shared allocation state (extent allocator, metadata-region
//    cursor) — the inode/block-bitmap lock. Device commands take no
//    filesystem lock at all: each BlockDevice serializes its own command
//    processing internally (the bio/FTL serialization point lives in the
//    device, where it belongs), so two files' data I/O never contends on
//    a filesystem-wide mutex — only allocations and namespace mutations
//    do. Per-file state (tail buffer, sizes, extent list) takes no lock
//    either: like a kernel page cache keyed by inode, it is safe as long
//    as each File has one user at a time, which is exactly the
//    serialization kv::ShardedStore (per shard) and kv::WriteGroup (per
//    store) provide. Concurrent writers therefore overlap all their CPU
//    work — key comparisons, checksums, index updates, tail-page memcpys
//    — and their device commands queue only inside the device model. A
//    single File shared by two unsynchronized threads is still a bug
//    (appends would interleave unpredictably), and whole-fs inspection
//    (SimulateCrash, CheckConsistency, GetStats over in-flight files)
//    expects writers quiesced. Lock order: mu_ before any device-internal
//    mutex.
#ifndef PTSB_FS_FILESYSTEM_H_
#define PTSB_FS_FILESYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "block/block_device.h"
#include "fs/extent_allocator.h"
#include "util/status.h"

namespace ptsb::fs {

class File;

// Fault-injection hook, consulted immediately BEFORE every device write
// the filesystem issues — file data pages (appends, write-through,
// sync of a partial tail) and namespace metadata pages alike. Returning
// non-OK suppresses the write and fails the operation above it, modeling
// power loss at exactly that device write; the crash-recovery tests
// install a counting policy, run a workload until it trips, then
// SimulateCrash() and reopen. Reads are never faulted (a dying drive
// that corrupts reads is a different failure model).
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;
  // `name` is the file being written ("" for namespace metadata). Called
  // once per device write command, before it reaches the device.
  virtual Status BeforeDeviceWrite(const std::string& name) = 0;
};

struct FsOptions {
  // If true (paper default), freed extents are not trimmed on the device.
  bool nodiscard = true;
  // Allocations longer than this are split into multiple extents,
  // modeling ext4 block-group spreading. 0 = unlimited.
  uint64_t max_extent_pages = 2048;
  // Appending beyond the allocated size grows the file by chunks of this
  // many pages (delayed-allocation analog).
  uint64_t append_alloc_pages = 256;
  // Reserved metadata region at the start of the partition.
  uint64_t metadata_pages = 64;
};

struct FsStats {
  uint64_t capacity_bytes = 0;
  uint64_t used_bytes = 0;       // allocated data + metadata region
  uint64_t free_bytes = 0;
  uint64_t num_files = 0;
  uint64_t free_extents = 0;
  uint64_t largest_free_extent_bytes = 0;

  // Total disk utilization as the paper reports it (Fig. 6a).
  double Utilization() const {
    if (capacity_bytes == 0) return 0;
    return static_cast<double>(used_bytes) /
           static_cast<double>(capacity_bytes);
  }
};

// Per-file state. Internal to SimpleFs/File (namespace-scope only so the
// File handle can hold a typed pointer); fields are mutated exclusively
// by the file's single user plus the namespace operations under
// SimpleFs::mu_.
struct Inode {
  uint64_t id = 0;
  std::string name;
  std::vector<Extent> extents;
  uint64_t size_bytes = 0;         // logical size including buffered tail
  uint64_t synced_bytes = 0;       // durable prefix
  uint64_t allocated_pages = 0;
  // Buffered tail page (size % page_bytes bytes of it are meaningful).
  std::unique_ptr<uint8_t[]> tail;
  std::unique_ptr<File> handle;
};

class SimpleFs {
 public:
  SimpleFs(block::BlockDevice* device, const FsOptions& options);
  ~SimpleFs();

  SimpleFs(const SimpleFs&) = delete;
  SimpleFs& operator=(const SimpleFs&) = delete;

  // Creates a new empty file. Fails with InvalidArgument if it exists.
  StatusOr<File*> Create(const std::string& name);
  // Opens an existing file. Fails with NotFound.
  StatusOr<File*> Open(const std::string& name);
  // Creates or opens.
  StatusOr<File*> OpenOrCreate(const std::string& name);

  // Deletes a file. Its extents are freed (and trimmed iff !nodiscard).
  Status Delete(const std::string& name);
  Status Rename(const std::string& from, const std::string& to);
  bool Exists(const std::string& name) const;
  std::vector<std::string> List(const std::string& prefix = "") const;
  StatusOr<uint64_t> FileSize(const std::string& name) const;

  // Drops all unsynced buffered data, as a power failure would. The
  // namespace and all synced data survive.
  void SimulateCrash();

  FsStats GetStats() const;
  const FsOptions& options() const { return options_; }
  block::BlockDevice* device() const { return device_; }

  // Internal consistency check (allocator invariants + no extent shared by
  // two files + sizes consistent). Used by tests.
  Status CheckConsistency() const;

  // Installs (or, with nullptr, clears) the fault-injection policy.
  // Unowned: the caller keeps it alive until cleared. Install/clear with
  // writers quiesced.
  void SetFaultPolicy(FaultPolicy* policy) { fault_policy_ = policy; }

  // Consults the installed policy before a device write on behalf of
  // `name`. Internal to the fs and its File handles, public so the
  // file-data write path (a free function in file.cc) can reach it.
  Status CheckFault(const std::string& name) {
    if (fault_policy_ == nullptr) return Status::OK();
    return fault_policy_->BeforeDeviceWrite(name);
  }

 private:
  friend class File;

  // Unlocked implementations; callers hold mu_. Public entry points wrap
  // these so internal cross-calls (Rename deleting its target,
  // OpenOrCreate probing then creating) never re-enter the lock.
  StatusOr<File*> CreateLocked(const std::string& name);
  StatusOr<File*> OpenLocked(const std::string& name);
  Status DeleteLocked(const std::string& name);

  // Charges one metadata page write for a namespace mutation. Caller
  // holds mu_ (every namespace mutation already does).
  Status TouchMetadata();

  // Maps a page index within the file to a device LBA. Reads only the
  // file's own extent list: the caller must be the file's (sole) user.
  uint64_t PageToLba(const Inode& inode, uint64_t file_page) const;

  // Allocator interactions. ExtendInode takes mu_ internally (its callers
  // are File operations, which hold no fs lock); FreeInodeExtents expects
  // the caller to hold mu_ (its one caller is DeleteLocked). Both
  // otherwise touch only the inode's own fields.
  Status ExtendInode(Inode* inode, uint64_t min_pages);
  void FreeInodeExtents(Inode* inode);

  block::BlockDevice* device_;
  FsOptions options_;
  uint64_t page_bytes_;
  // Guards directory_/inodes_/next_inode_id_ (the namespace) and
  // allocator_/metadata_cursor_ (shared allocation state). Device
  // commands are serialized by the device itself, not here; File data
  // paths take mu_ only to allocate (ExtendInode) or free (ShrinkToFit).
  mutable std::mutex mu_;
  std::unique_ptr<ExtentAllocator> allocator_;
  std::map<std::string, uint64_t> directory_;       // name -> inode id
  std::map<uint64_t, std::unique_ptr<Inode>> inodes_;
  uint64_t next_inode_id_ = 1;
  uint64_t metadata_cursor_ = 0;
  FaultPolicy* fault_policy_ = nullptr;  // unowned; null = no injection
};

}  // namespace ptsb::fs

#endif  // PTSB_FS_FILESYSTEM_H_

