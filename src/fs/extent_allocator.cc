#include "fs/extent_allocator.h"

#include <algorithm>

#include "util/logging.h"

namespace ptsb::fs {

ExtentAllocator::ExtentAllocator(uint64_t first_page, uint64_t num_pages)
    : first_page_(first_page),
      total_pages_(num_pages),
      free_pages_(num_pages),
      cursor_(first_page) {
  if (num_pages > 0) free_[first_page] = num_pages;
}

Extent ExtentAllocator::TakeFrom(std::map<uint64_t, uint64_t>::iterator it,
                                 uint64_t max_pages) {
  const uint64_t start = it->first;
  const uint64_t len = it->second;
  const uint64_t take = std::min(len, max_pages);
  free_.erase(it);
  if (take < len) {
    free_[start + take] = len - take;
  }
  free_pages_ -= take;
  cursor_ = start + take;
  return Extent{start, take};
}

StatusOr<std::vector<Extent>> ExtentAllocator::Allocate(
    uint64_t num_pages, uint64_t max_extent_pages) {
  if (num_pages == 0) return std::vector<Extent>{};
  if (max_extent_pages == 0) max_extent_pages = total_pages_;
  if (num_pages > free_pages_) {
    return Status::NoSpace("extent allocator exhausted");
  }
  std::vector<Extent> result;
  uint64_t remaining = num_pages;
  while (remaining > 0) {
    // Next-fit: first free extent at or after the cursor, wrapping around.
    auto it = free_.lower_bound(cursor_);
    if (it == free_.end()) it = free_.begin();
    PTSB_CHECK(it != free_.end());
    Extent e = TakeFrom(it, std::min(remaining, max_extent_pages));
    // Merge with the previous extent if physically contiguous, so that
    // one logical allocation does not get artificially chopped.
    if (!result.empty() && result.back().end() == e.first_page &&
        result.back().num_pages + e.num_pages <= max_extent_pages) {
      result.back().num_pages += e.num_pages;
    } else {
      result.push_back(e);
    }
    remaining -= e.num_pages;
  }
  return result;
}

void ExtentAllocator::Free(const Extent& extent) {
  if (extent.num_pages == 0) return;
  PTSB_DCHECK(extent.first_page >= first_page_ &&
              extent.end() <= first_page_ + total_pages_);
  auto [it, inserted] = free_.emplace(extent.first_page, extent.num_pages);
  PTSB_CHECK(inserted) << "double free of extent";
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      PTSB_CHECK(prev->first + prev->second <= it->first)
          << "overlapping free extents";
      prev->second += it->second;
      free_.erase(it);
    }
  }
  free_pages_ += extent.num_pages;
}

uint64_t ExtentAllocator::LargestFreeExtent() const {
  uint64_t best = 0;
  for (const auto& [start, len] : free_) best = std::max(best, len);
  return best;
}

Status ExtentAllocator::CheckConsistency() const {
  uint64_t total = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [start, len] : free_) {
    if (len == 0) return Status::Corruption("zero-length free extent");
    if (start < first_page_ || start + len > first_page_ + total_pages_) {
      return Status::Corruption("free extent out of range");
    }
    if (!first && start <= prev_end) {
      return Status::Corruption(start == prev_end
                                    ? "uncoalesced free extents"
                                    : "overlapping free extents");
    }
    prev_end = start + len;
    first = false;
    total += len;
  }
  if (total != free_pages_) {
    return Status::Corruption("free page count mismatch");
  }
  return Status::OK();
}

}  // namespace ptsb::fs
