#include "fs/file.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "fs/filesystem.h"
#include "sim/clock.h"
#include "util/logging.h"

namespace ptsb::fs {

namespace {
// Writes a run of logically-consecutive file pages, batching device writes
// over physically-contiguous LBA runs. Takes no filesystem lock: the
// device serializes its own command processing, and the extent list is
// per-file state owned by the file's single user. The fault-policy check
// happens here — one consult per device write command, so a counting
// policy sees every distinct write the filesystem issues.
Status WriteFilePages(SimpleFs* fs, const Inode& inode, uint64_t first_page,
                      uint64_t num_pages, const uint8_t* src,
                      uint64_t page_bytes) {
  block::BlockDevice* device = fs->device();
  const std::vector<Extent>& extents = inode.extents;
  uint64_t skipped = 0;
  uint64_t page = first_page;
  uint64_t remaining = num_pages;
  const uint8_t* p = src;
  for (const Extent& e : extents) {
    if (remaining == 0) break;
    if (page >= skipped + e.num_pages) {
      skipped += e.num_pages;
      continue;
    }
    const uint64_t offset_in_extent = page - skipped;
    const uint64_t run =
        std::min(remaining, e.num_pages - offset_in_extent);
    PTSB_RETURN_IF_ERROR(fs->CheckFault(inode.name));
    PTSB_RETURN_IF_ERROR(
        device->Write(e.first_page + offset_in_extent, run, p));
    p += run * page_bytes;
    page += run;
    remaining -= run;
    skipped += e.num_pages;
  }
  if (remaining != 0) return Status::IoError("write beyond allocation");
  return Status::OK();
}

}  // namespace

block::IoTicket File::SubmitAppend(std::string_view data, uint32_t queue,
                                   sim::IoClass io_class) {
  const sim::LaneResult r =
      sim::RunInLane(fs_->device_->clock(), queue, io_class,
                     [&] { return AppendImpl(data); });
  return block::IoTicket{r.status, r.complete_ns};
}

block::IoTicket File::SubmitWriteAt(uint64_t offset, std::string_view data,
                                    uint32_t queue, sim::IoClass io_class) {
  const sim::LaneResult r =
      sim::RunInLane(fs_->device_->clock(), queue, io_class,
                     [&] { return WriteAtImpl(offset, data); });
  return block::IoTicket{r.status, r.complete_ns};
}

block::IoTicket File::SubmitReadAt(uint64_t offset, uint64_t n, char* dst,
                                   uint32_t queue, sim::IoClass io_class) {
  const sim::LaneResult r =
      sim::RunInLane(fs_->device_->clock(), queue, io_class, [&] {
        auto got = ReadAt(offset, n, dst);
        if (!got.ok()) return got.status();
        if (*got != n) return Status::IoError("short read in SubmitReadAt");
        return Status::OK();
      });
  return block::IoTicket{r.status, r.complete_ns};
}

Status File::Wait(const block::IoTicket& ticket) {
  return fs_->device_->Wait(ticket);
}

Status File::Append(std::string_view data) {
  return Wait(SubmitAppend(data));
}

Status File::WriteAt(uint64_t offset, std::string_view data) {
  return Wait(SubmitWriteAt(offset, data));
}

Status File::AppendImpl(std::string_view data) {
  Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  while (!data.empty()) {
    const uint64_t tail_off = inode.size_bytes % page;
    const uint64_t file_page = inode.size_bytes / page;
    if (tail_off == 0 && data.size() >= page) {
      // Bulk path: whole pages write through directly.
      const uint64_t npages = data.size() / page;
      PTSB_RETURN_IF_ERROR(fs_->ExtendInode(
          &inode,
          std::max(file_page + npages,
                   file_page + fs_->options_.append_alloc_pages)));
      PTSB_RETURN_IF_ERROR(WriteFilePages(
          fs_, inode, file_page, npages,
          reinterpret_cast<const uint8_t*>(data.data()), page));
      inode.size_bytes += npages * page;
      inode.synced_bytes = inode.size_bytes;
      data.remove_prefix(npages * page);
      continue;
    }
    // Buffered path: fill the tail page (no lock -- per-file state).
    const uint64_t take = std::min<uint64_t>(page - tail_off, data.size());
    std::memcpy(inode.tail.get() + tail_off, data.data(), take);
    inode.size_bytes += take;
    data.remove_prefix(take);
    if (inode.size_bytes % page == 0) {
      // Tail page completed: materialize it.
      PTSB_RETURN_IF_ERROR(fs_->ExtendInode(
          &inode, std::max(file_page + 1,
                           file_page + fs_->options_.append_alloc_pages)));
      PTSB_RETURN_IF_ERROR(WriteFilePages(fs_, inode, file_page, 1,
                                          inode.tail.get(), page));
      inode.synced_bytes = inode.size_bytes;
      std::memset(inode.tail.get(), 0, page);
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> File::ReadAt(uint64_t offset, uint64_t n, char* dst) const {
  const Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  if (offset >= inode.size_bytes) return uint64_t{0};
  n = std::min(n, inode.size_bytes - offset);

  // Bytes in [0, tail_start) are device-backed; bytes in [tail_start, size)
  // live in the in-memory tail buffer (which always mirrors the current
  // partial tail page, synced or not).
  const uint64_t tail_start = inode.size_bytes - inode.size_bytes % page;
  const uint64_t end = offset + n;

  uint64_t done = 0;
  uint64_t pos = offset;
  const uint64_t device_end = std::min(end, tail_start);
  if (pos < device_end) {
    std::unique_ptr<uint8_t[]> scratch(new uint8_t[page]);
    // Unaligned head.
    if (pos % page != 0) {
      const uint64_t in_page = pos % page;
      const uint64_t take = std::min(page - in_page, device_end - pos);
      PTSB_RETURN_IF_ERROR(
          fs_->device_->Read(fs_->PageToLba(inode, pos / page), 1,
                             scratch.get()));
      std::memcpy(dst + done, scratch.get() + in_page, take);
      pos += take;
      done += take;
    }
    // Aligned middle: batch physically-contiguous page runs into single
    // device commands (one command per extent run, not per page).
    while (pos + page <= device_end) {
      const uint64_t first_page = pos / page;
      const uint64_t want_pages = (device_end - pos) / page;
      uint64_t run = 1;
      const uint64_t first_lba = fs_->PageToLba(inode, first_page);
      while (run < want_pages &&
             fs_->PageToLba(inode, first_page + run) == first_lba + run) {
        run++;
      }
      PTSB_RETURN_IF_ERROR(fs_->device_->Read(
          first_lba, run, reinterpret_cast<uint8_t*>(dst + done)));
      pos += run * page;
      done += run * page;
    }
    // Unaligned tail (still device-backed).
    if (pos < device_end) {
      const uint64_t take = device_end - pos;
      PTSB_RETURN_IF_ERROR(
          fs_->device_->Read(fs_->PageToLba(inode, pos / page), 1,
                             scratch.get()));
      std::memcpy(dst + done, scratch.get(), take);
      pos += take;
      done += take;
    }
  }
  if (pos < end) {
    // Tail portion (per-file memory; no lock).
    PTSB_DCHECK(pos >= tail_start);
    const uint64_t take = end - pos;
    std::memcpy(dst + done, inode.tail.get() + (pos - tail_start), take);
    done += take;
  }
  return done;
}

Status File::WriteAtImpl(uint64_t offset, std::string_view data) {
  Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  if (offset % page != 0 || data.size() % page != 0) {
    return Status::InvalidArgument("WriteAt requires page alignment");
  }
  if (offset + data.size() > inode.allocated_pages * page) {
    return Status::InvalidArgument("WriteAt beyond allocation");
  }
  return WriteFilePages(fs_, inode, offset / page, data.size() / page,
                        reinterpret_cast<const uint8_t*>(data.data()), page);
}

Status File::Extend(uint64_t bytes) {
  Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  const uint64_t pages = (bytes + page - 1) / page;
  PTSB_RETURN_IF_ERROR(fs_->ExtendInode(&inode, pages));
  if (bytes > inode.size_bytes) {
    inode.size_bytes = bytes;
    inode.synced_bytes = std::max(inode.synced_bytes, bytes);
  }
  return Status::OK();
}

Status File::Sync() {
  Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  const uint64_t tail_off = inode.size_bytes % page;
  if (inode.synced_bytes < inode.size_bytes && tail_off != 0) {
    const uint64_t file_page = inode.size_bytes / page;
    PTSB_RETURN_IF_ERROR(fs_->ExtendInode(&inode, file_page + 1));
    PTSB_RETURN_IF_ERROR(WriteFilePages(fs_, inode, file_page, 1,
                                        inode.tail.get(), page));
  }
  inode.synced_bytes = inode.size_bytes;
  return fs_->device_->Flush();
}

Status File::ShrinkToFit() {
  Inode& inode = *inode_;
  const uint64_t page = fs_->page_bytes_;
  const uint64_t needed = (inode.size_bytes + page - 1) / page;
  // Returning extents mutates the shared allocator: that is fs-wide
  // allocation state, guarded by the filesystem mutex.
  std::lock_guard<std::mutex> lock(fs_->mu_);
  while (inode.allocated_pages > needed) {
    Extent& last = inode.extents.back();
    const uint64_t excess =
        std::min(inode.allocated_pages - needed, last.num_pages);
    const Extent freed{last.first_page + last.num_pages - excess, excess};
    last.num_pages -= excess;
    inode.allocated_pages -= excess;
    if (last.num_pages == 0) inode.extents.pop_back();
    fs_->allocator_->Free(freed);
    if (!fs_->options_.nodiscard) {
      PTSB_RETURN_IF_ERROR(
          fs_->device_->Trim(freed.first_page, freed.num_pages));
    }
  }
  return Status::OK();
}

uint64_t File::size() const { return inode_->size_bytes; }

uint64_t File::synced_size() const { return inode_->synced_bytes; }

uint64_t File::allocated_bytes() const {
  return inode_->allocated_pages * fs_->page_bytes_;
}

const std::string& File::name() const { return inode_->name; }

uint64_t File::ExtentCount() const { return inode_->extents.size(); }

}  // namespace ptsb::fs
