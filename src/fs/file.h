// File handle for SimpleFs. Safe to use from one thread per file while
// other threads operate on OTHER files: per-file state (tail buffer,
// sizes, extents) is touched only by this file's user, and the shared
// substrate (allocator, device) is serialized by the filesystem's I/O
// mutex — the locking split kv::ShardedStore's per-shard engines rely on.
// A single File shared by two unsynchronized threads is a bug: appends
// would interleave unpredictably.
#ifndef PTSB_FS_FILE_H_
#define PTSB_FS_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "block/block_device.h"
#include "sim/io_class.h"
#include "util/status.h"

namespace ptsb::fs {

class SimpleFs;
struct Inode;

class File {
 public:
  // Appends bytes at the end of the file (buffered; full pages are written
  // through to the device, the partial tail stays in memory until Sync).
  // Equivalent to Wait(SubmitAppend(data)).
  Status Append(std::string_view data);

  // ---- Async submission. SubmitAppend/SubmitWriteAt apply the write
  // immediately (data is visible to subsequent reads) but run its device
  // commands in a virtual-time submission lane tagged with `queue` and
  // `io_class`: the latency lands in the returned ticket instead of the
  // shared clock, and the simulated SSD serializes the commands on
  // channel `queue % channels` only, accounting busy time under the
  // class. Wait(ticket) joins the completion time into the clock
  // (monotonic max), so submissions on distinct queues issued from the
  // same instant overlap in virtual time. On an untimed device the calls
  // degrade to their synchronous equivalents. The per-file single-user
  // contract is unchanged: submissions on ONE file must come from its
  // one user.
  block::IoTicket SubmitAppend(
      std::string_view data, uint32_t queue = 0,
      sim::IoClass io_class = sim::IoClass::kForegroundWrite);
  block::IoTicket SubmitWriteAt(
      uint64_t offset, std::string_view data, uint32_t queue = 0,
      sim::IoClass io_class = sim::IoClass::kForegroundWrite);
  // Reads EXACTLY [offset, offset+n) into dst inside a submission lane
  // (the read-side counterpart of SubmitAppend; see kv MultiGet fan-out).
  // Unlike ReadAt, a short read — the range extending past EOF — is an
  // error in the ticket, since the caller cannot learn a byte count from
  // an IoTicket.
  block::IoTicket SubmitReadAt(
      uint64_t offset, uint64_t n, char* dst, uint32_t queue = 0,
      sim::IoClass io_class = sim::IoClass::kForegroundRead);
  Status Wait(const block::IoTicket& ticket);

  // Reads [offset, offset+n) into dst. Reads through the device but serves
  // the buffered tail from memory, like the page cache would. Returns the
  // number of bytes read (short reads happen at EOF).
  StatusOr<uint64_t> ReadAt(uint64_t offset, uint64_t n, char* dst) const;

  // Overwrites existing bytes. The range must be page-aligned on both ends
  // (direct-I/O style), and must lie within the allocated space (use
  // Extend first). Used by the B+Tree block manager. Equivalent to
  // Wait(SubmitWriteAt(offset, data)).
  Status WriteAt(uint64_t offset, std::string_view data);

  // Ensures at least `bytes` of allocated capacity; sets size to at least
  // `bytes` (newly allocated space reads as zeros).
  Status Extend(uint64_t bytes);

  // Writes out the buffered tail page (zero-padded) and flushes the device
  // write cache. After Sync, size() == synced_size().
  Status Sync();

  // Releases allocated-but-unused whole pages past the end of the file
  // (appends over-allocate in chunks; call this after finishing a file).
  Status ShrinkToFit();

  uint64_t size() const;
  uint64_t synced_size() const;
  uint64_t allocated_bytes() const;
  const std::string& name() const;

  // Number of extents backing this file (fragmentation diagnostic).
  uint64_t ExtentCount() const;

 private:
  friend class SimpleFs;
  File(SimpleFs* fs, Inode* inode) : fs_(fs), inode_(inode) {}

  // Synchronous bodies; the public entry points wrap them in submission
  // lanes (submit-then-wait).
  Status AppendImpl(std::string_view data);
  Status WriteAtImpl(uint64_t offset, std::string_view data);

  SimpleFs* fs_;
  Inode* inode_;
};

}  // namespace ptsb::fs

#endif  // PTSB_FS_FILE_H_
