// Page-granular extent allocator with a next-fit (rotating cursor) policy,
// modeling how an aged ext4 spreads allocations across the LBA space.
//
// The policy is load-bearing for the paper's findings: files that are
// created and deleted continuously (LSM SSTs, WAL segments) sweep the whole
// partition over time (Fig. 4, RocksDB curve), while a file allocated once
// and updated in place (the B+Tree file) stays compact (WiredTiger curve).
#ifndef PTSB_FS_EXTENT_ALLOCATOR_H_
#define PTSB_FS_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/status.h"

namespace ptsb::fs {

struct Extent {
  uint64_t first_page = 0;
  uint64_t num_pages = 0;

  uint64_t end() const { return first_page + num_pages; }
  bool operator==(const Extent&) const = default;
};

class ExtentAllocator {
 public:
  // Manages pages [first_page, first_page + num_pages).
  ExtentAllocator(uint64_t first_page, uint64_t num_pages);

  // Allocates exactly `num_pages`, possibly as multiple extents, each at
  // most `max_extent_pages` long. Returns NoSpace (and allocates nothing)
  // if the total free space is insufficient.
  StatusOr<std::vector<Extent>> Allocate(uint64_t num_pages,
                                         uint64_t max_extent_pages);

  // Returns an extent to the free pool (coalesces with neighbors).
  void Free(const Extent& extent);

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t FreeExtentCount() const { return free_.size(); }
  uint64_t LargestFreeExtent() const;

  // Verifies free-list invariants (sorted, coalesced, in-range, total).
  Status CheckConsistency() const;

 private:
  // Takes up to max_pages from the extent starting at `it`, advancing the
  // cursor.
  Extent TakeFrom(std::map<uint64_t, uint64_t>::iterator it,
                  uint64_t max_pages);

  uint64_t first_page_;
  uint64_t total_pages_;
  uint64_t free_pages_;
  std::map<uint64_t, uint64_t> free_;  // start page -> length
  uint64_t cursor_;                    // next-fit rotating cursor
};

}  // namespace ptsb::fs

#endif  // PTSB_FS_EXTENT_ALLOCATOR_H_
