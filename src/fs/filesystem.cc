#include "fs/filesystem.h"

#include <algorithm>
#include <cstring>

#include "fs/file.h"
#include "util/logging.h"

namespace ptsb::fs {

SimpleFs::SimpleFs(block::BlockDevice* device, const FsOptions& options)
    : device_(device),
      options_(options),
      page_bytes_(device->lba_bytes()) {
  PTSB_CHECK_GT(device->num_lbas(), options.metadata_pages);
  allocator_ = std::make_unique<ExtentAllocator>(
      options.metadata_pages, device->num_lbas() - options.metadata_pages);
}

SimpleFs::~SimpleFs() = default;

Status SimpleFs::TouchMetadata() {
  if (options_.metadata_pages == 0) return Status::OK();
  PTSB_RETURN_IF_ERROR(CheckFault(""));
  const uint64_t lba = metadata_cursor_;
  metadata_cursor_ = (metadata_cursor_ + 1) % options_.metadata_pages;
  return device_->Write(lba, 1, nullptr);
}

uint64_t SimpleFs::PageToLba(const Inode& inode, uint64_t file_page) const {
  uint64_t skipped = 0;
  for (const Extent& e : inode.extents) {
    if (file_page < skipped + e.num_pages) {
      return e.first_page + (file_page - skipped);
    }
    skipped += e.num_pages;
  }
  PTSB_CHECK(false) << "file page " << file_page << " beyond allocation of "
                    << inode.name;
  return 0;
}

Status SimpleFs::ExtendInode(Inode* inode, uint64_t min_pages) {
  if (min_pages <= inode->allocated_pages) return Status::OK();
  const uint64_t want = min_pages - inode->allocated_pages;
  std::lock_guard<std::mutex> lock(mu_);
  auto extents = allocator_->Allocate(want, options_.max_extent_pages);
  if (!extents.ok()) return extents.status();
  for (Extent& e : *extents) {
    // Merge with the trailing extent when physically contiguous.
    if (!inode->extents.empty() && inode->extents.back().end() == e.first_page) {
      inode->extents.back().num_pages += e.num_pages;
    } else {
      inode->extents.push_back(e);
    }
    inode->allocated_pages += e.num_pages;
  }
  return Status::OK();
}

void SimpleFs::FreeInodeExtents(Inode* inode) {
  for (const Extent& e : inode->extents) {
    allocator_->Free(e);
    if (!options_.nodiscard) {
      // discard mount option: tell the device the LBAs are dead.
      PTSB_CHECK_OK(device_->Trim(e.first_page, e.num_pages));
    }
  }
  inode->extents.clear();
  inode->allocated_pages = 0;
}

StatusOr<File*> SimpleFs::CreateLocked(const std::string& name) {
  if (directory_.contains(name)) {
    return Status::InvalidArgument("file exists: " + name);
  }
  auto inode = std::make_unique<Inode>();
  inode->id = next_inode_id_++;
  inode->name = name;
  inode->tail = std::make_unique<uint8_t[]>(page_bytes_);
  inode->handle.reset(new File(this, inode.get()));
  File* handle = inode->handle.get();
  directory_[name] = inode->id;
  inodes_[inode->id] = std::move(inode);
  PTSB_RETURN_IF_ERROR(TouchMetadata());
  return handle;
}

StatusOr<File*> SimpleFs::Create(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateLocked(name);
}

StatusOr<File*> SimpleFs::OpenLocked(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return inodes_.at(it->second)->handle.get();
}

StatusOr<File*> SimpleFs::Open(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return OpenLocked(name);
}

StatusOr<File*> SimpleFs::OpenOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (directory_.contains(name)) return OpenLocked(name);
  return CreateLocked(name);
}

Status SimpleFs::DeleteLocked(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  auto node_it = inodes_.find(it->second);
  FreeInodeExtents(node_it->second.get());
  inodes_.erase(node_it);
  directory_.erase(it);
  return TouchMetadata();
}

Status SimpleFs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return DeleteLocked(name);
}

Status SimpleFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(from);
  if (it == directory_.end()) {
    return Status::NotFound("no such file: " + from);
  }
  if (from == to) return Status::OK();
  // POSIX rename: silently replaces the target.
  if (directory_.contains(to)) {
    PTSB_RETURN_IF_ERROR(DeleteLocked(to));
    it = directory_.find(from);
  }
  const uint64_t id = it->second;
  directory_.erase(it);
  directory_[to] = id;
  inodes_.at(id)->name = to;
  return TouchMetadata();
}

bool SimpleFs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.contains(name);
}

std::vector<std::string> SimpleFs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, id] : directory_) {
    if (name.starts_with(prefix)) out.push_back(name);
  }
  return out;
}

StatusOr<uint64_t> SimpleFs::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return inodes_.at(it->second)->size_bytes;
}

void SimpleFs::SimulateCrash() {
  // Whole-fs inspection: expects writers quiesced (it mutates per-file
  // state the files' owners otherwise own).
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, inode] : inodes_) {
    if (inode->size_bytes == inode->synced_bytes) continue;
    inode->size_bytes = inode->synced_bytes;
    const uint64_t tail_off = inode->size_bytes % page_bytes_;
    std::memset(inode->tail.get(), 0, page_bytes_);
    if (tail_off != 0) {
      // Recover the durable prefix of the tail page from the device.
      const uint64_t file_page = inode->size_bytes / page_bytes_;
      uint8_t page_buf[64 * 1024];
      PTSB_CHECK_LE(page_bytes_, sizeof(page_buf));
      PTSB_CHECK_OK(
          device_->Read(PageToLba(*inode, file_page), 1, page_buf));
      std::memcpy(inode->tail.get(), page_buf, tail_off);
    }
  }
}

FsStats SimpleFs::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FsStats s;
  s.capacity_bytes = device_->capacity_bytes();
  const uint64_t data_pages = allocator_->total_pages();
  s.free_bytes = allocator_->free_pages() * page_bytes_;
  s.used_bytes =
      (options_.metadata_pages + (data_pages - allocator_->free_pages())) *
      page_bytes_;
  s.num_files = directory_.size();
  s.free_extents = allocator_->FreeExtentCount();
  s.largest_free_extent_bytes = allocator_->LargestFreeExtent() * page_bytes_;
  return s;
}

Status SimpleFs::CheckConsistency() const {
  std::lock_guard<std::mutex> lock(mu_);
  PTSB_RETURN_IF_ERROR(allocator_->CheckConsistency());
  // Extents of all files must be disjoint, in range, and match counters.
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (start, end)
  uint64_t allocated = 0;
  for (const auto& [id, inode] : inodes_) {
    uint64_t pages = 0;
    for (const Extent& e : inode->extents) {
      if (e.num_pages == 0) return Status::Corruption("empty extent");
      if (e.first_page < options_.metadata_pages ||
          e.end() > device_->num_lbas()) {
        return Status::Corruption("extent out of range");
      }
      ranges.emplace_back(e.first_page, e.end());
      pages += e.num_pages;
    }
    if (pages != inode->allocated_pages) {
      return Status::Corruption("allocated_pages mismatch");
    }
    if (inode->size_bytes > inode->allocated_pages * page_bytes_) {
      return Status::Corruption("size beyond allocation");
    }
    if (inode->synced_bytes > inode->size_bytes) {
      return Status::Corruption("synced beyond size");
    }
    allocated += pages;
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); i++) {
    if (ranges[i].first < ranges[i - 1].second) {
      return Status::Corruption("overlapping file extents");
    }
  }
  if (allocated + allocator_->free_pages() != allocator_->total_pages()) {
    return Status::Corruption("page accounting mismatch");
  }
  return Status::OK();
}

}  // namespace ptsb::fs
