// A contiguous slice of a device exposed as a device. Reserving a slice of
// a trimmed SSD and never writing it is exactly how the paper implements
// software over-provisioning (Sections 2.2.2 and 4.6).
#ifndef PTSB_BLOCK_PARTITION_H_
#define PTSB_BLOCK_PARTITION_H_

#include <cstdint>

#include "block/block_device.h"

namespace ptsb::block {

class PartitionView : public BlockDevice {
 public:
  // [first_lba, first_lba + num_lbas) of `base`.
  PartitionView(BlockDevice* base, uint64_t first_lba, uint64_t num_lbas);

  uint64_t lba_bytes() const override { return base_->lba_bytes(); }
  uint64_t num_lbas() const override { return num_lbas_; }
  sim::SimClock* clock() const override { return base_->clock(); }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override { return base_->Flush(); }

  uint64_t first_lba() const { return first_lba_; }

 private:
  Status CheckRange(uint64_t lba, uint64_t count) const;

  BlockDevice* base_;
  uint64_t first_lba_;
  uint64_t num_lbas_;
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_PARTITION_H_
