#include "block/partition.h"

#include "util/logging.h"

namespace ptsb::block {

PartitionView::PartitionView(BlockDevice* base, uint64_t first_lba,
                             uint64_t num_lbas)
    : base_(base), first_lba_(first_lba), num_lbas_(num_lbas) {
  PTSB_CHECK_LE(first_lba + num_lbas, base->num_lbas());
}

Status PartitionView::CheckRange(uint64_t lba, uint64_t count) const {
  if (lba + count > num_lbas_) {
    return Status::InvalidArgument("I/O beyond partition");
  }
  return Status::OK();
}

Status PartitionView::Read(uint64_t lba, uint64_t count, uint8_t* dst) {
  PTSB_RETURN_IF_ERROR(CheckRange(lba, count));
  return base_->Read(first_lba_ + lba, count, dst);
}

Status PartitionView::Write(uint64_t lba, uint64_t count, const uint8_t* src) {
  PTSB_RETURN_IF_ERROR(CheckRange(lba, count));
  return base_->Write(first_lba_ + lba, count, src);
}

Status PartitionView::Trim(uint64_t lba, uint64_t count) {
  PTSB_RETURN_IF_ERROR(CheckRange(lba, count));
  return base_->Trim(first_lba_ + lba, count);
}

}  // namespace ptsb::block
