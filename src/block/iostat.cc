#include "block/iostat.h"

// Header-only; this translation unit anchors the vtable.
