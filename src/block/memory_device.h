// A plain RAM-backed block device with no timing model. Used by unit tests
// of upper layers (filesystem, engines) where flash dynamics are not under
// test.
#ifndef PTSB_BLOCK_MEMORY_DEVICE_H_
#define PTSB_BLOCK_MEMORY_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "block/block_device.h"

namespace ptsb::block {

class MemoryBlockDevice : public BlockDevice {
 public:
  MemoryBlockDevice(uint64_t lba_bytes, uint64_t num_lbas);

  uint64_t lba_bytes() const override { return lba_bytes_; }
  uint64_t num_lbas() const override { return num_lbas_; }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override;

  // Fault injection: the next `n` writes fail with IoError.
  void FailNextWrites(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_writes_ = n;
  }

  uint64_t writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_;
  }
  uint64_t reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_;
  }
  uint64_t trims() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trims_;
  }
  uint64_t flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_;
  }

 private:
  uint64_t lba_bytes_;
  uint64_t num_lbas_;
  // The device's command-processing lock (see SsdDevice::mu_): data and
  // counters are shared by concurrent File operations now that the
  // filesystem takes no fs-wide lock for data I/O.
  mutable std::mutex mu_;
  std::vector<uint8_t> data_;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
  uint64_t trims_ = 0;
  uint64_t flushes_ = 0;
  int fail_writes_ = 0;
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_MEMORY_DEVICE_H_
