#include "block/memory_device.h"

#include <cstring>
#include <mutex>

namespace ptsb::block {

MemoryBlockDevice::MemoryBlockDevice(uint64_t lba_bytes, uint64_t num_lbas)
    : lba_bytes_(lba_bytes),
      num_lbas_(num_lbas),
      data_(lba_bytes * num_lbas, 0) {}

Status MemoryBlockDevice::Read(uint64_t lba, uint64_t count, uint8_t* dst) {
  if (lba + count > num_lbas_) {
    return Status::InvalidArgument("read beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(dst, data_.data() + lba * lba_bytes_, count * lba_bytes_);
  reads_ += count;
  return Status::OK();
}

Status MemoryBlockDevice::Write(uint64_t lba, uint64_t count,
                                const uint8_t* src) {
  if (lba + count > num_lbas_) {
    return Status::InvalidArgument("write beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_writes_ > 0) {
    fail_writes_--;
    return Status::IoError("injected write failure");
  }
  if (src == nullptr) {
    std::memset(data_.data() + lba * lba_bytes_, 0, count * lba_bytes_);
  } else {
    std::memcpy(data_.data() + lba * lba_bytes_, src, count * lba_bytes_);
  }
  writes_ += count;
  return Status::OK();
}

Status MemoryBlockDevice::Trim(uint64_t lba, uint64_t count) {
  if (lba + count > num_lbas_) {
    return Status::InvalidArgument("trim beyond device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::memset(data_.data() + lba * lba_bytes_, 0, count * lba_bytes_);
  trims_ += count;
  return Status::OK();
}

Status MemoryBlockDevice::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flushes_++;
  return Status::OK();
}

}  // namespace ptsb::block
