// blktrace-equivalent: records per-LBA write counts so the Fig. 4 analysis
// (CDF of LBA write probability, which explains why WiredTiger benefits
// from a trimmed drive) can be reproduced.
#ifndef PTSB_BLOCK_TRACE_H_
#define PTSB_BLOCK_TRACE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "block/block_device.h"

namespace ptsb::block {

class LbaTraceCollector : public BlockDevice {
 public:
  explicit LbaTraceCollector(BlockDevice* base);

  uint64_t lba_bytes() const override { return base_->lba_bytes(); }
  uint64_t num_lbas() const override { return base_->num_lbas(); }
  sim::SimClock* clock() const override { return base_->clock(); }
  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override;
  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override;
  Status Trim(uint64_t lba, uint64_t count) override;
  Status Flush() override { return base_->Flush(); }

  void Reset();

  // Fraction of LBAs never written.
  double FractionUntouched() const;

  // CDF of write counts with LBAs sorted by decreasing write count:
  // point i of the result is the cumulative fraction of all writes that
  // the i/(points-1) most-written fraction of LBAs received (the exact
  // presentation of the paper's Fig. 4).
  struct CdfPoint {
    double lba_fraction;    // x: fraction of LBA space (sorted by writes)
    double write_fraction;  // y: cumulative fraction of writes
  };
  std::vector<CdfPoint> WriteCdf(int points = 101) const;

  const std::vector<uint32_t>& write_counts() const { return write_counts_; }

 private:
  BlockDevice* base_;
  // Concurrent writers reach the block layer in parallel (see
  // IoStatCollector::mu_); the histogram updates need their own lock.
  mutable std::mutex mu_;
  std::vector<uint32_t> write_counts_;
  uint64_t total_writes_ = 0;
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_TRACE_H_
