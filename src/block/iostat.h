// iostat-equivalent: a pass-through decorator that counts host reads and
// writes at the block layer. The paper measures "device throughput" and
// "user-level write amplification" from these OS-level counters
// (Section 3.3, metrics ii and iii).
#ifndef PTSB_BLOCK_IOSTAT_H_
#define PTSB_BLOCK_IOSTAT_H_

#include <cstdint>
#include <mutex>

#include "block/block_device.h"

namespace ptsb::block {

struct IoCounters {
  uint64_t read_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t write_ops = 0;
  uint64_t write_bytes = 0;
  uint64_t trim_ops = 0;
  uint64_t trim_bytes = 0;
  uint64_t flushes = 0;

  IoCounters operator-(const IoCounters& o) const {
    IoCounters d;
    d.read_ops = read_ops - o.read_ops;
    d.read_bytes = read_bytes - o.read_bytes;
    d.write_ops = write_ops - o.write_ops;
    d.write_bytes = write_bytes - o.write_bytes;
    d.trim_ops = trim_ops - o.trim_ops;
    d.trim_bytes = trim_bytes - o.trim_bytes;
    d.flushes = flushes - o.flushes;
    return d;
  }
};

class IoStatCollector : public BlockDevice {
 public:
  explicit IoStatCollector(BlockDevice* base) : base_(base) {}

  uint64_t lba_bytes() const override { return base_->lba_bytes(); }
  uint64_t num_lbas() const override { return base_->num_lbas(); }
  sim::SimClock* clock() const override { return base_->clock(); }

  Status Read(uint64_t lba, uint64_t count, uint8_t* dst) override {
    Status s = base_->Read(lba, count, dst);
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.read_ops++;
      counters_.read_bytes += count * lba_bytes();
    }
    return s;
  }

  Status Write(uint64_t lba, uint64_t count, const uint8_t* src) override {
    Status s = base_->Write(lba, count, src);
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.write_ops++;
      counters_.write_bytes += count * lba_bytes();
    }
    return s;
  }

  Status Trim(uint64_t lba, uint64_t count) override {
    Status s = base_->Trim(lba, count);
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.trim_ops++;
      counters_.trim_bytes += count * lba_bytes();
    }
    return s;
  }

  Status Flush() override {
    Status s = base_->Flush();
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.flushes++;
    }
    return s;
  }

  IoCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = IoCounters();
  }

 private:
  BlockDevice* base_;
  // Counter updates happen concurrently once the filesystem stops
  // serializing data I/O (concurrent write groups / shards reach the
  // block layer in parallel); the base device's own lock does not cover
  // this decorator's counters.
  mutable std::mutex mu_;
  IoCounters counters_;
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_IOSTAT_H_
