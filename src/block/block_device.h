// The block layer: what the filesystem sees. LBAs are page-sized (4 KiB),
// matching the direct-I/O granularity the paper's setup uses.
#ifndef PTSB_BLOCK_BLOCK_DEVICE_H_
#define PTSB_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>

#include "util/status.h"

namespace ptsb::block {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint64_t lba_bytes() const = 0;
  virtual uint64_t num_lbas() const = 0;
  uint64_t capacity_bytes() const { return lba_bytes() * num_lbas(); }

  // Reads `count` LBAs starting at `lba` into dst (count * lba_bytes bytes).
  virtual Status Read(uint64_t lba, uint64_t count, uint8_t* dst) = 0;

  // Writes `count` LBAs. src may be nullptr, meaning "don't care" payload
  // (used by preconditioning; reads of such LBAs return zeros).
  virtual Status Write(uint64_t lba, uint64_t count, const uint8_t* src) = 0;

  // Discards `count` LBAs (blkdiscard / TRIM).
  virtual Status Trim(uint64_t lba, uint64_t count) = 0;

  // Device cache flush command.
  virtual Status Flush() = 0;
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_BLOCK_DEVICE_H_
