// The block layer: what the filesystem sees. LBAs are page-sized (4 KiB),
// matching the direct-I/O granularity the paper's setup uses.
#ifndef PTSB_BLOCK_BLOCK_DEVICE_H_
#define PTSB_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>

#include "sim/io_class.h"
#include "util/status.h"

namespace ptsb::sim {
class SimClock;
}  // namespace ptsb::sim

namespace ptsb::block {

// Handle for one async submission (see BlockDevice::SubmitWrite). The
// command's side effects (data, counters, FTL state) are applied at
// submit; `complete_ns` is the virtual time at which it finishes.
// Wait(ticket) joins that time into the shared clock and returns the
// command's status. complete_ns == 0 means "completed at submit" (no
// virtual clock attached).
struct IoTicket {
  Status status;
  int64_t complete_ns = 0;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint64_t lba_bytes() const = 0;
  virtual uint64_t num_lbas() const = 0;
  uint64_t capacity_bytes() const { return lba_bytes() * num_lbas(); }

  // Virtual clock this device charges latencies to; nullptr for untimed
  // devices (MemoryBlockDevice). Decorators forward to the base device.
  virtual sim::SimClock* clock() const { return nullptr; }

  // Reads `count` LBAs starting at `lba` into dst (count * lba_bytes bytes).
  virtual Status Read(uint64_t lba, uint64_t count, uint8_t* dst) = 0;

  // Writes `count` LBAs. src may be nullptr, meaning "don't care" payload
  // (used by preconditioning; reads of such LBAs return zeros).
  virtual Status Write(uint64_t lba, uint64_t count, const uint8_t* src) = 0;

  // Discards `count` LBAs (blkdiscard / TRIM).
  virtual Status Trim(uint64_t lba, uint64_t count) = 0;

  // Device cache flush command.
  virtual Status Flush() = 0;

  // ---- Async submission ------------------------------------------------
  //
  // SubmitWrite/SubmitRead run the command inside a virtual-time
  // submission lane (sim::SimClock::BeginAsync) tagged with `queue` and
  // `io_class`: the command's latency accumulates into the returned
  // ticket instead of advancing the shared clock, and the simulated SSD
  // serializes it on channel `queue % channels` only (reads on the
  // channel's read pipeline, writes on its program backend) and accounts
  // its busy time/bytes under `io_class`. Wait(ticket) joins the
  // completion time into the clock (a monotonic max), so commands
  // submitted on distinct queues from the same instant overlap in
  // virtual time. The synchronous calls above are equivalent to
  // submit-then-wait on queue 0. On an untimed device (no clock) Submit
  // degrades to the synchronous call. Non-virtual: implemented over the
  // virtual Read/Write, so decorators (iostat, trace, partition) keep
  // counting.
  IoTicket SubmitWrite(uint64_t lba, uint64_t count, const uint8_t* src,
                       uint32_t queue = 0,
                       sim::IoClass io_class = sim::IoClass::kForegroundWrite);
  IoTicket SubmitRead(uint64_t lba, uint64_t count, uint8_t* dst,
                      uint32_t queue = 0,
                      sim::IoClass io_class = sim::IoClass::kForegroundRead);

  // Joins the ticket's completion time into the clock and returns the
  // submission's status. Idempotent (AdvanceTo is a monotonic max).
  Status Wait(const IoTicket& ticket);
};

}  // namespace ptsb::block

#endif  // PTSB_BLOCK_BLOCK_DEVICE_H_
