#include "block/trace.h"

#include <algorithm>
#include <mutex>

namespace ptsb::block {

LbaTraceCollector::LbaTraceCollector(BlockDevice* base)
    : base_(base), write_counts_(base->num_lbas(), 0) {}

Status LbaTraceCollector::Read(uint64_t lba, uint64_t count, uint8_t* dst) {
  return base_->Read(lba, count, dst);
}

Status LbaTraceCollector::Write(uint64_t lba, uint64_t count,
                                const uint8_t* src) {
  Status s = base_->Write(lba, count, src);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t i = 0; i < count; i++) write_counts_[lba + i]++;
    total_writes_ += count;
  }
  return s;
}

Status LbaTraceCollector::Trim(uint64_t lba, uint64_t count) {
  return base_->Trim(lba, count);
}

void LbaTraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(write_counts_.begin(), write_counts_.end(), 0);
  total_writes_ = 0;
}

double LbaTraceCollector::FractionUntouched() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_counts_.empty()) return 0;
  uint64_t untouched = 0;
  for (const uint32_t c : write_counts_) {
    if (c == 0) untouched++;
  }
  return static_cast<double>(untouched) /
         static_cast<double>(write_counts_.size());
}

std::vector<LbaTraceCollector::CdfPoint> LbaTraceCollector::WriteCdf(
    int points) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> sorted = write_counts_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<CdfPoint> cdf;
  cdf.reserve(points);
  if (sorted.empty() || total_writes_ == 0 || points < 2) return cdf;
  // Prefix sums at the sample points only (O(n) single pass).
  uint64_t cumulative = 0;
  size_t next_index = 0;
  for (int p = 0; p < points; p++) {
    const double frac = static_cast<double>(p) / (points - 1);
    const auto target =
        static_cast<size_t>(frac * static_cast<double>(sorted.size()));
    while (next_index < target && next_index < sorted.size()) {
      cumulative += sorted[next_index++];
    }
    cdf.push_back({frac, static_cast<double>(cumulative) /
                             static_cast<double>(total_writes_)});
  }
  return cdf;
}

}  // namespace ptsb::block
