#include "block/block_device.h"

#include "sim/clock.h"

namespace ptsb::block {

IoTicket BlockDevice::SubmitWrite(uint64_t lba, uint64_t count,
                                  const uint8_t* src, uint32_t queue,
                                  sim::IoClass io_class) {
  const sim::LaneResult r = sim::RunInLane(
      clock(), queue, io_class, [&] { return Write(lba, count, src); });
  return IoTicket{r.status, r.complete_ns};
}

IoTicket BlockDevice::SubmitRead(uint64_t lba, uint64_t count, uint8_t* dst,
                                 uint32_t queue, sim::IoClass io_class) {
  const sim::LaneResult r = sim::RunInLane(
      clock(), queue, io_class, [&] { return Read(lba, count, dst); });
  return IoTicket{r.status, r.complete_ns};
}

Status BlockDevice::Wait(const IoTicket& ticket) {
  sim::SimClock* c = clock();
  if (c != nullptr && ticket.complete_ns > 0) {
    c->AdvanceTo(ticket.complete_ns);
  }
  return ticket.status;
}

}  // namespace ptsb::block
