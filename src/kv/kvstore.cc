#include "kv/kvstore.h"

#include "sim/clock.h"

namespace ptsb::kv {

Status WriteHandle::Wait() {
  Settle();
  return status_;
}

void WriteHandle::OnComplete(Callback cb) {
  if (joined_) {
    if (cb) cb(status_);
    return;
  }
  callback_ = std::move(cb);
}

void WriteHandle::Settle() {
  if (!joined_) {
    if (clock_ != nullptr && complete_ns_ > 0) {
      clock_->AdvanceTo(complete_ns_);
    }
    joined_ = true;
  }
  if (callback_) {
    Callback cb = std::move(callback_);
    callback_ = nullptr;
    cb(status_);
  }
}

WriteHandle AsyncCommit(sim::SimClock* clock, uint32_t queue,
                        const std::function<Status()>& commit) {
  sim::LaneResult r =
      sim::RunInLane(clock, queue, sim::IoClass::kForegroundWrite, commit);
  return WriteHandle(std::move(r.status), r.complete_ns, clock);
}

Status ReadHandle::Wait() {
  Settle();
  return status_;
}

void ReadHandle::OnComplete(Callback cb) {
  if (joined_) {
    if (cb) cb(status_);
    return;
  }
  callback_ = std::move(cb);
}

void ReadHandle::Settle() {
  if (!joined_) {
    if (clock_ != nullptr && complete_ns_ > 0) {
      clock_->AdvanceTo(complete_ns_);
    }
    joined_ = true;
  }
  if (callback_) {
    Callback cb = std::move(callback_);
    callback_ = nullptr;
    cb(status_);
  }
}

ReadHandle AsyncRead(sim::SimClock* clock, uint32_t queue,
                     const std::function<Status()>& read) {
  sim::LaneResult r =
      sim::RunInLane(clock, queue, sim::IoClass::kForegroundRead, read);
  return ReadHandle(std::move(r.status), r.complete_ns, clock);
}

BackgroundResult RunBackgroundWork(sim::SimClock* clock, uint32_t queue,
                                   int64_t* horizon_ns,
                                   const std::function<Status()>& work) {
  BackgroundResult r;
  if (clock == nullptr ||
      !clock->BeginAsync(queue, sim::IoClass::kBackground)) {
    // Untimed, or inside an enclosing lane (e.g. a WriteAsync commit):
    // the work runs on the current timeline, nothing moves off it.
    r.status = work();
    return r;
  }
  // One background worker per engine: new work starts no earlier than
  // the previous background span finished.
  clock->AdvanceTo(*horizon_ns);
  const int64_t t0 = clock->NowNanos();
  r.status = work();
  *horizon_ns = clock->EndAsync();
  r.busy_ns = *horizon_ns - t0;
  return r;
}

namespace {

class FailedIteratorImpl : public KVStore::Iterator {
 public:
  explicit FailedIteratorImpl(Status status) : status_(std::move(status)) {}
  void SeekToFirst() override {}
  void Seek(std::string_view) override {}
  bool Valid() const override { return false; }
  void Next() override {}
  std::string_view key() const override { return {}; }
  std::string_view value() const override { return {}; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<KVStore::Iterator> FailedIterator(Status status) {
  return std::make_unique<FailedIteratorImpl>(std::move(status));
}

std::unique_ptr<KVStore::Iterator> KVStore::NewIterator(
    const ReadOptions& opts) {
  if (opts.snapshot != nullptr) {
    return FailedIterator(
        Status::NotSupported(Name() + ": snapshot iterators not supported"));
  }
  return NewIterator();
}

std::vector<Status> KVStore::MultiGet(std::span<const std::string_view> keys,
                                      std::vector<std::string>* values) {
  // No clock and depth 1: FanOutMultiGet's sequential path, the one
  // per-key Get loop in the codebase.
  return FanOutMultiGet(this, nullptr, 0, 1, keys, values);
}

std::vector<Status> FanOutMultiGet(KVStore* store, sim::SimClock* clock,
                                   uint32_t base_queue, int depth,
                                   std::span<const std::string_view> keys,
                                   std::vector<std::string>* values) {
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size());
  if (clock == nullptr || depth <= 1) {
    for (size_t i = 0; i < keys.size(); i++) {
      statuses[i] = store->Get(keys[i], &(*values)[i]);
    }
    return statuses;
  }
  // Bounded fan-out: keep at most `depth` lookups in flight. Waiting the
  // oldest joins its completion into the clock, so later submissions
  // start no earlier than its finish. The in-flight window spans `depth`
  // consecutive indices, so the mod-depth queue ids are distinct within
  // it and lookups stripe across channels.
  std::vector<ReadHandle> handles;
  handles.reserve(keys.size());
  size_t waited = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    const uint32_t queue =
        base_queue + static_cast<uint32_t>(i % static_cast<size_t>(depth));
    handles.push_back(AsyncRead(
        clock, queue, [&, i] { return store->Get(keys[i], &(*values)[i]); }));
    if (handles.size() - waited >= static_cast<size_t>(depth)) {
      statuses[waited] = handles[waited].Wait();
      waited++;
    }
  }
  for (; waited < handles.size(); waited++) {
    statuses[waited] = handles[waited].Wait();
  }
  return statuses;
}

}  // namespace ptsb::kv
