#include "kv/kvstore.h"

namespace ptsb::kv {

Status KVStore::Scan(std::string_view start_key, size_t count,
                     std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::unique_ptr<Iterator> it = NewIterator();
  for (it->Seek(start_key); it->Valid() && out->size() < count; it->Next()) {
    out->emplace_back(std::string(it->key()), std::string(it->value()));
  }
  return it->status();
}

}  // namespace ptsb::kv
