#include "kv/kvstore.h"

#include "sim/clock.h"

namespace ptsb::kv {

Status WriteHandle::Wait() {
  if (clock_ != nullptr && complete_ns_ > 0) {
    clock_->AdvanceTo(complete_ns_);
  }
  return status_;
}

WriteHandle AsyncCommit(sim::SimClock* clock, uint32_t queue,
                        const std::function<Status()>& commit) {
  sim::LaneResult r = sim::RunInLane(clock, queue, commit);
  return WriteHandle(std::move(r.status), r.complete_ns, clock);
}

Status KVStore::Scan(std::string_view start_key, size_t count,
                     std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::unique_ptr<Iterator> it = NewIterator();
  for (it->Seek(start_key); it->Valid() && out->size() < count; it->Next()) {
    out->emplace_back(std::string(it->key()), std::string(it->value()));
  }
  return it->status();
}

}  // namespace ptsb::kv
