#include "kv/kv.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/encoding.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::kv {

std::string MakeKey(uint64_t id, size_t key_bytes) {
  PTSB_CHECK_GE(key_bytes, 8u);
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%0*" PRIu64,
                static_cast<int>(key_bytes - 1), id);
  std::string key;
  key.reserve(key_bytes);
  key.push_back('u');
  key.append(digits, key_bytes - 1);
  return key;
}

bool ParseKey(std::string_view key, uint64_t* id) {
  if (key.size() < 8 || key[0] != 'u') return false;
  uint64_t v = 0;
  for (size_t i = 1; i < key.size(); i++) {
    const char c = key[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

std::string MakeValue(uint64_t seed, size_t value_bytes) {
  PTSB_CHECK_GE(value_bytes, 16u);
  std::string value(value_bytes, '\0');
  EncodeFixed64(value.data(), seed);
  EncodeFixed64(value.data() + 8, value_bytes);
  uint64_t x = seed;
  size_t pos = 16;
  while (pos < value_bytes) {
    x = SplitMix64(x);
    const size_t n = std::min<size_t>(8, value_bytes - pos);
    std::memcpy(value.data() + pos, &x, n);
    pos += n;
  }
  return value;
}

bool VerifyValue(std::string_view value) {
  if (value.size() < 16) return false;
  const uint64_t seed = DecodeFixed64(value.data());
  const uint64_t size = DecodeFixed64(value.data() + 8);
  if (size != value.size()) return false;
  uint64_t x = seed;
  size_t pos = 16;
  while (pos < value.size()) {
    x = SplitMix64(x);
    const size_t n = std::min<size_t>(8, value.size() - pos);
    if (std::memcmp(value.data() + pos, &x, n) != 0) return false;
    pos += n;
  }
  return true;
}

uint64_t ValueSeed(std::string_view value) {
  if (value.size() < 16) return 0;
  return DecodeFixed64(value.data());
}

}  // namespace ptsb::kv
