// WriteGroup: a RocksDB-style cross-thread group commit queue.
//
// N threads calling Commit() concurrently line up in arrival order; the
// thread at the queue front becomes the LEADER, claims the batches of the
// followers queued behind it (up to max_group_bytes), merges them into one
// WriteBatch, and runs the engine's commit function ONCE for the whole
// group — one WAL/journal/segment record where a per-thread mutex would
// have written N. Followers block until the leader publishes their status
// and wake with the group's commit outcome (per-batch status == group
// status: the merged record either became durable for everyone or for no
// one, exactly RocksDB's JoinBatchGroup contract).
//
// The leader releases the queue lock while committing, so writers arriving
// DURING a commit enqueue behind the in-flight group and merge into the
// next one — this is what makes the record count sub-linear in the writer
// count under load. With a single caller the queue is always empty at
// entry: the caller claims a group of one and its own batch is passed to
// the commit function directly (no merge copy, no condition-variable wait),
// so the single-threaded fast path is byte- and virtual-time-identical to
// calling the commit function inline.
//
// The group also exports the commit exclusion lock to the read path:
// engines whose point reads mutate internal state (B+Tree LRU bumps, LSM
// memtable probes racing a flush) wrap those reads in RunExclusive so the
// whole store tolerates concurrent Write/Get callers. Iterators are NOT
// covered — they remain create/consume/discard under a quiesced writer,
// enforced by the engines' write-epoch checks.
#ifndef PTSB_KV_WRITE_GROUP_H_
#define PTSB_KV_WRITE_GROUP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "kv/write_batch.h"
#include "util/status.h"

namespace ptsb::kv {

class WriteGroup {
 public:
  // Commits `merged` as ONE log record. `n_user_batches` is the number of
  // user Write() calls folded into it, so the engine can keep per-batch
  // accounting (user_batches, write_group_batches) exact under merging.
  using CommitFn = std::function<Status(const WriteBatch& merged,
                                        size_t n_user_batches)>;

  static constexpr uint64_t kDefaultMaxGroupBytes = 1ull << 20;

  explicit WriteGroup(uint64_t max_group_bytes = kDefaultMaxGroupBytes)
      : max_group_bytes_(max_group_bytes == 0 ? kDefaultMaxGroupBytes
                                              : max_group_bytes) {}

  WriteGroup(const WriteGroup&) = delete;
  WriteGroup& operator=(const WriteGroup&) = delete;

  // Thread-safe. Blocks until this batch is durable (committed by this
  // thread as leader or by an earlier leader on its behalf) and returns
  // its commit status. `batch` must stay alive and unmodified for the
  // duration of the call; empty batches are the caller's problem (engines
  // early-return before entering the group).
  Status Commit(const WriteBatch& batch, const CommitFn& fn);

  // Runs `fn` while no group commit is in flight. The engines' read paths
  // (Get / MultiGet / ReadAsync / iterator construction) run under this so
  // concurrent readers never observe a half-applied group.
  template <typename Fn>
  auto RunExclusive(Fn&& fn) {
    std::lock_guard<std::mutex> lock(commit_mu_);
    return std::forward<Fn>(fn)();
  }

  uint64_t max_group_bytes() const { return max_group_bytes_; }

 private:
  // One waiting writer, allocated on its caller's stack. The leader
  // touches followers' fields only under mu_, and a follower cannot
  // return (destroying the frame) until it reacquires mu_ after the
  // leader's notify — so no dangling access is possible.
  struct Writer {
    explicit Writer(const WriteBatch* b) : batch(b) {}
    const WriteBatch* batch;
    Status status;
    bool done = false;
    std::condition_variable cv;
  };

  std::mutex mu_;         // guards queue_
  std::mutex commit_mu_;  // held across the commit fn; readers share it
  std::deque<Writer*> queue_;
  const uint64_t max_group_bytes_;
};

}  // namespace ptsb::kv

#endif  // PTSB_KV_WRITE_GROUP_H_
