#include "kv/workload.h"

namespace ptsb::kv {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec),
      rng_(spec.seed),
      zipf_(spec.num_keys, spec.zipf_theta, spec.seed ^ 0x5bd1e995u) {}

Op WorkloadGenerator::Next() {
  Op op;
  op.type = rng_.Bernoulli(spec_.write_fraction) ? Op::Type::kPut
                                                 : Op::Type::kGet;
  op.key_id = spec_.distribution == Distribution::kUniform
                  ? rng_.Uniform(spec_.num_keys)
                  : zipf_.Next();
  // A fresh seed per update makes every rewrite of a key produce different
  // bytes, like a real update stream.
  op.value_seed = SplitMix64(spec_.seed ^ (0x9e3779b97f4a7c15ULL +
                                           ++op_counter_));
  return op;
}

Status LoadSequential(KVStore* store, const WorkloadSpec& spec,
                      void (*progress)(uint64_t, uint64_t),
                      uint64_t progress_every) {
  for (uint64_t id = 0; id < spec.num_keys; id++) {
    const std::string key = MakeKey(id, spec.key_bytes);
    const std::string value =
        MakeValue(SplitMix64(spec.seed ^ id), spec.value_bytes);
    PTSB_RETURN_IF_ERROR(store->Put(key, value));
    if (progress != nullptr && (id + 1) % progress_every == 0) {
      progress(id + 1, spec.num_keys);
    }
  }
  return store->Flush();
}

}  // namespace ptsb::kv
