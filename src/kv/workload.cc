#include "kv/workload.h"

#include <algorithm>

#include "kv/write_batch.h"

namespace ptsb::kv {

WorkloadSpec WorkloadSpec::ForThread(size_t t) const {
  WorkloadSpec out = *this;
  // Thread 0 keeps the base seed, so num_threads=1 reproduces the
  // single-threaded stream exactly; higher threads get decorrelated
  // seeds (consecutive integers would correlate the Rng streams).
  if (t > 0) {
    out.seed = SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * t));
  }
  return out;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec),
      rng_(spec.seed),
      zipf_(spec.num_keys, spec.zipf_theta, spec.seed ^ 0x5bd1e995u) {}

uint64_t WorkloadGenerator::NextKeyId() {
  return spec_.distribution == Distribution::kUniform
             ? rng_.Uniform(spec_.num_keys)
             : zipf_.Next();
}

uint64_t WorkloadGenerator::NextValueSeed() {
  // A fresh seed per update makes every rewrite of a key produce different
  // bytes, like a real update stream.
  return SplitMix64(spec_.seed ^ (0x9e3779b97f4a7c15ULL + ++op_counter_));
}

Op WorkloadGenerator::Next() {
  Op op;
  if (rng_.Bernoulli(spec_.write_fraction)) {
    if (spec_.delete_fraction > 0 && rng_.Bernoulli(spec_.delete_fraction)) {
      op.type = Op::Type::kDelete;
    } else {
      op.type = spec_.batch_size > 1 ? Op::Type::kBatchPut : Op::Type::kPut;
    }
  } else {
    if (spec_.scan_fraction > 0 && rng_.Bernoulli(spec_.scan_fraction)) {
      op.type = Op::Type::kScan;
    } else {
      op.type = Op::Type::kGet;
    }
  }
  op.key_id = NextKeyId();
  op.value_seed = NextValueSeed();
  return op;
}

Status LoadSequential(KVStore* store, const WorkloadSpec& spec,
                      void (*progress)(uint64_t, uint64_t),
                      uint64_t progress_every) {
  const size_t batch_size = std::max<size_t>(1, spec.batch_size);
  WriteBatch batch;
  for (uint64_t id = 0; id < spec.num_keys; id++) {
    batch.Put(MakeKey(id, spec.key_bytes),
              MakeValue(SplitMix64(spec.seed ^ id), spec.value_bytes));
    if (batch.Count() >= batch_size || id + 1 == spec.num_keys) {
      PTSB_RETURN_IF_ERROR(store->Write(batch));
      batch.Clear();
    }
    if (progress != nullptr && (id + 1) % progress_every == 0) {
      progress(id + 1, spec.num_keys);
    }
  }
  return store->Flush();
}

}  // namespace ptsb::kv
