// Key/value primitives shared by the engines, the workload generators and
// the experiment driver. The paper's dataset is 16-byte keys with 4000-byte
// values (Section 3.2); keys here are fixed-width decimal strings so that
// lexicographic order equals numeric order.
#ifndef PTSB_KV_KV_H_
#define PTSB_KV_KV_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ptsb::kv {

constexpr size_t kDefaultKeyBytes = 16;
constexpr size_t kDefaultValueBytes = 4000;

// "user00000000001234"-style fixed-width key.
std::string MakeKey(uint64_t id, size_t key_bytes = kDefaultKeyBytes);

// Recovers the numeric id from a key (returns false on malformed input).
bool ParseKey(std::string_view key, uint64_t* id);

// Deterministic, verifiable value payload: the first 16 bytes encode
// (seed, size); the rest is a pseudo-random stream derived from seed.
std::string MakeValue(uint64_t seed, size_t value_bytes);

// Verifies that `value` was produced by MakeValue (integrity check used in
// tests and examples).
bool VerifyValue(std::string_view value);

// Extracts the seed from a MakeValue payload (0 if malformed).
uint64_t ValueSeed(std::string_view value);

}  // namespace ptsb::kv

#endif  // PTSB_KV_KV_H_
