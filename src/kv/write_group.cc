#include "kv/write_group.h"

#include <thread>

namespace ptsb::kv {

Status WriteGroup::Commit(const WriteBatch& batch, const CommitFn& fn) {
  Writer w(&batch);
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&w);
  // Wait until an earlier leader committed on our behalf, or until we
  // reach the queue front and lead the next group ourselves. Writers that
  // arrive while a commit is in flight park here: the in-flight group's
  // members stay at the front until it completes, so none of them can
  // mistake itself for a leader.
  w.cv.wait(lock, [&] { return w.done || queue_.front() == &w; });
  if (w.done) return w.status;

  // Group-formation window: one scheduling-point yield before the scan.
  // Concurrent writers that are runnable but have not reached push_back
  // yet — the common case on few-core hosts, where the previous leader's
  // wake-up runs before the other writer threads get CPU time — get one
  // chance to enqueue and be claimed below. Bounded (a single yield, no
  // timed wait), leaves the virtual clock untouched, and the queue front
  // cannot change underneath us: only the front writer removes itself.
  lock.unlock();
  std::this_thread::yield();
  lock.lock();

  // Leader: claim the longest front run of the queue that fits in
  // max_group_bytes (our own batch always fits).
  size_t n = 1;
  uint64_t bytes = batch.ByteSize();
  while (n < queue_.size() &&
         bytes + queue_[n]->batch->ByteSize() <= max_group_bytes_) {
    bytes += queue_[n]->batch->ByteSize();
    n++;
  }
  WriteBatch merged;
  const WriteBatch* unit = &batch;
  if (n > 1) {
    for (size_t i = 0; i < n; i++) merged.Append(*queue_[i]->batch);
    unit = &merged;
  }

  // Commit OUTSIDE the queue lock: writers arriving now enqueue behind
  // the group and merge into the next one. commit_mu_ keeps the engine's
  // internal state single-writer (and excludes RunExclusive readers).
  lock.unlock();
  Status s;
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    s = fn(*unit, n);
  }
  lock.lock();

  // Publish the outcome, retire the group, and hand leadership to the
  // next waiter (if any).
  for (size_t i = 0; i < n; i++) {
    Writer* m = queue_.front();
    queue_.pop_front();
    if (m != &w) {
      m->status = s;
      m->done = true;
      m->cv.notify_one();
    }
  }
  if (!queue_.empty()) queue_.front()->cv.notify_one();
  return s;
}

}  // namespace ptsb::kv
