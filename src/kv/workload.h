// Workload generation per Section 3.2 of the paper: sequential-order load
// of N key-value pairs, then an op mix (default write-only uniform-random
// updates of existing keys; num_threads > 1 replays disjoint streams from
// concurrent workers). Variants cover the paper's
// additional workloads (50:50 read/write mix, 128-byte values), a zipfian
// extension, and the batched/delete/scan mixes the engine API supports:
// write ops become kBatchPut groups when batch_size > 1, a delete_fraction
// of writes are deletes, and a scan_fraction of reads are scan_count-entry
// range scans.
#ifndef PTSB_KV_WORKLOAD_H_
#define PTSB_KV_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "kv/kv.h"
#include "kv/kvstore.h"
#include "util/random.h"
#include "util/status.h"

namespace ptsb::kv {

enum class Distribution { kUniform, kZipfian };

struct WorkloadSpec {
  uint64_t num_keys = 50'000'000;
  size_t key_bytes = kDefaultKeyBytes;
  size_t value_bytes = kDefaultValueBytes;
  // Fraction of operations that are writes (paper default: write-only).
  double write_fraction = 1.0;
  // Of the write ops: fraction that are deletes (the rest are puts).
  double delete_fraction = 0.0;
  // Of the read ops: fraction that are range scans (the rest are gets).
  double scan_fraction = 0.0;
  // Puts are emitted as kBatchPut when batch_size > 1; the driver groups
  // this many entries into one KVStore::Write (group commit).
  size_t batch_size = 1;
  // Point reads are executed as KVStore::MultiGet over this many keys
  // when > 1 (the read-side analog of batch_size: one submission, the
  // engine fans the lookups out at its read_queue_depth). 1 = plain Get.
  size_t read_batch_size = 1;
  // Entries consumed per scan op.
  size_t scan_count = 100;
  // Run each scan over a snapshot (KVStore::GetSnapshot + ReadOptions):
  // the cursor observes a frozen sequence and survives concurrent
  // writers — required for scan ops under num_threads > 1.
  bool scan_snapshot = false;
  // Iterator readahead for scan ops (ReadOptions::readahead): > 1
  // prefetches that many leaves/blocks/values across read submission
  // lanes. Takes the snapshot path (engines only honor readahead there).
  int scan_readahead = 1;
  // Worker threads replaying the update phase. Each worker runs its own
  // WorkloadGenerator seeded with ForThread(t).seed, so the T op streams
  // are disjoint and the whole run is deterministic given (seed, T).
  // Engines are single-threaded; only "sharded" (and future concurrent
  // engines) benefit from > 1.
  size_t num_threads = 1;
  Distribution distribution = Distribution::kUniform;
  double zipf_theta = 0.99;
  uint64_t seed = 7;

  // The per-worker spec for thread `t` of num_threads: identical shape,
  // thread-unique seed.
  WorkloadSpec ForThread(size_t t) const;

  uint64_t DatasetBytes() const {
    return num_keys * (key_bytes + value_bytes);
  }
};

struct Op {
  enum class Type { kPut, kGet, kBatchPut, kDelete, kScan } type = Type::kPut;
  uint64_t key_id = 0;      // target key (first key of a batch / scan start)
  uint64_t value_seed = 0;  // for puts
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  // Next operation of the update/read phase.
  Op Next();

  // Additional draws for filling a kBatchPut: the driver calls these
  // (batch_size - 1) times per batch op, keeping the stream deterministic.
  uint64_t NextKeyId();
  uint64_t NextValueSeed();

  const WorkloadSpec& spec() const { return spec_; }

  std::string KeyFor(uint64_t id) const {
    return MakeKey(id, spec_.key_bytes);
  }
  std::string ValueFor(uint64_t seed) const {
    return MakeValue(seed, spec_.value_bytes);
  }

 private:
  WorkloadSpec spec_;
  Rng rng_;
  ZipfianGenerator zipf_;
  uint64_t op_counter_ = 0;
};

// Ingests all keys in sequential order (the paper's loading phase),
// batching spec.batch_size keys per KVStore::Write. Calls
// progress(i, num_keys) every `progress_every` keys if non-null.
Status LoadSequential(KVStore* store, const WorkloadSpec& spec,
                      void (*progress)(uint64_t, uint64_t) = nullptr,
                      uint64_t progress_every = 1u << 20);

}  // namespace ptsb::kv

#endif  // PTSB_KV_WORKLOAD_H_
