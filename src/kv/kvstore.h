// The engine-neutral key-value store interface. LsmStore (RocksDB-like) and
// BTreeStore (WiredTiger-like) implement it; the experiment driver and the
// examples program against it.
#ifndef PTSB_KV_KVSTORE_H_
#define PTSB_KV_KVSTORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ptsb::kv {

// Engine-side write accounting (application-level write breakdown). The
// paper's WA-A is measured at the block layer (host bytes / user bytes);
// these counters let benches attribute it to engine mechanisms.
struct KvStoreStats {
  uint64_t user_puts = 0;
  uint64_t user_gets = 0;
  uint64_t user_deletes = 0;
  uint64_t user_scans = 0;
  uint64_t user_bytes_written = 0;  // sum of key+value sizes put
  uint64_t user_bytes_read = 0;

  uint64_t wal_bytes_written = 0;         // LSM write-ahead log / journal
  uint64_t flush_bytes_written = 0;       // LSM memtable flushes
  uint64_t compaction_bytes_written = 0;  // LSM compaction output
  uint64_t compaction_bytes_read = 0;     // LSM compaction input
  uint64_t page_write_bytes = 0;          // B+Tree page writebacks
  uint64_t page_read_bytes = 0;           // B+Tree page reads
  uint64_t checkpoint_bytes_written = 0;  // B+Tree checkpoints

  uint64_t stall_count = 0;  // engine-level write stalls (LSM L0 pressure)

  // Virtual-time breakdown (nanoseconds of simulated time spent inside
  // each engine mechanism); only filled when a clock is attached.
  int64_t time_wal_ns = 0;
  int64_t time_flush_ns = 0;
  int64_t time_compaction_ns = 0;
  int64_t time_read_path_ns = 0;
  int64_t time_writeback_ns = 0;   // B+Tree leaf writebacks + page reads
  int64_t time_checkpoint_ns = 0;  // B+Tree checkpoints
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) = 0;
  virtual Status Delete(std::string_view key) = 0;

  // Collects up to `count` pairs with key >= start_key in ascending order.
  virtual Status Scan(std::string_view start_key, size_t count,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Forces all buffered state to stable storage (memtable flush or
  // checkpoint), e.g. before measuring space, or before Close.
  virtual Status Flush() = 0;

  // Completes pending background work (compaction debt). Used between a
  // load phase and a measurement phase; engines without background work
  // keep the default no-op.
  virtual Status SettleBackgroundWork() { return Status::OK(); }

  // Graceful shutdown; the store can be re-opened from disk state.
  virtual Status Close() = 0;

  virtual KvStoreStats GetStats() const = 0;
  virtual std::string Name() const = 0;

  // Bytes of live engine data on the filesystem (for space amplification).
  virtual uint64_t DiskBytesUsed() const = 0;
};

}  // namespace ptsb::kv

#endif  // PTSB_KV_KVSTORE_H_
