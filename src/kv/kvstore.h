// The engine-neutral key-value store interface. LsmStore (RocksDB-like)
// and BTreeStore (WiredTiger-like) implement it; the experiment driver,
// the benches and the examples program against it.
//
// The API has three pillars:
//
//  1. Batched writes. Write(const WriteBatch&) is the primary mutation
//     path: the engine persists the whole batch under a single WAL or
//     journal record (group commit), then applies the entries in order.
//     Put and Delete are thin one-entry convenience wrappers over Write —
//     correct, but paying the full per-record log overhead each call.
//
//  2. Streaming reads. NewIterator() returns a cursor (Seek / Valid /
//     Next / key / value) that walks the store in ascending key order
//     without materializing results: a merging iterator over
//     memtable + SSTs in the LSM, a leaf-walking cursor in the B+Tree.
//     An iterator observes the store as of its creation and is
//     invalidated by writes (no snapshot pinning, like a RocksDB
//     iterator without a snapshot); create, consume, discard.
//     Point reads come in three shapes: Get (one key), MultiGet (a batch
//     of keys, fanned out across read submission lanes so independent
//     lookups overlap in virtual device time), and ReadAsync (one key,
//     caller-managed overlap via ReadHandle — the read-side mirror of
//     WriteAsync/WriteHandle).
//
//  3. Registry construction. Engines self-register by name ("lsm",
//     "btree") in kv::EngineRegistry; callers build stores through
//     kv::OpenStore(EngineOptions) with a string name + option map
//     instead of linking against a concrete engine type (see
//     kv/registry.h).
#ifndef PTSB_KV_KVSTORE_H_
#define PTSB_KV_KVSTORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kv/write_batch.h"
#include "util/status.h"

namespace ptsb::sim {
class SimClock;
}  // namespace ptsb::sim

namespace ptsb::kv {

// Engine-side write accounting (application-level write breakdown). The
// paper's WA-A is measured at the block layer (host bytes / user bytes);
// these counters let benches attribute it to engine mechanisms. Under
// group commit, wal_bytes_written grows sub-linearly with batch size:
// record framing is paid once per batch, not once per entry.
struct KvStoreStats {
  uint64_t user_puts = 0;
  uint64_t user_gets = 0;    // point lookups (MultiGet counts per key)
  uint64_t user_deletes = 0;
  uint64_t user_scans = 0;   // iterators created
  uint64_t user_batches = 0; // Write calls (Put/Delete count as size-1)
  uint64_t user_bytes_written = 0;  // sum of key+value sizes put
  uint64_t user_bytes_read = 0;

  // Group-commit accounting. wal_records counts the log records the
  // engine actually wrote (one per commit GROUP); write_groups counts the
  // groups committed and write_group_batches the user batches folded into
  // them. Under a single writer all three track user_batches one-to-one;
  // under N concurrent writers wal_records/write_groups grow SUB-linearly
  // while write_group_batches keeps counting every user batch — their
  // ratio is the measured group occupancy.
  uint64_t wal_records = 0;
  uint64_t write_groups = 0;
  uint64_t write_group_batches = 0;

  uint64_t wal_bytes_written = 0;         // LSM WAL / journal / alog appends
  uint64_t flush_bytes_written = 0;       // LSM memtable flushes
  uint64_t compaction_bytes_written = 0;  // LSM compaction output
  uint64_t compaction_bytes_read = 0;     // LSM compaction input
  uint64_t page_write_bytes = 0;          // B+Tree page writebacks
  uint64_t page_read_bytes = 0;           // B+Tree page reads
  uint64_t checkpoint_bytes_written = 0;  // B+Tree checkpoints
  uint64_t gc_bytes_written = 0;          // alog segment-GC rewrites
  uint64_t gc_bytes_read = 0;             // alog segment-GC input

  // Wrapper cache layer (the "cached" engine; zero in the bare engines).
  // A hit is a point lookup served entirely above the inner engine (write
  // buffer or read cache); a miss is one forwarded to it. NotFound from
  // the inner engine still counts as a miss — the lookup paid the inner
  // read path either way.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Bytes of earlier buffered entries absorbed by newer writes to the
  // same key before any flush: rewrite traffic the write buffer kept off
  // the inner engine entirely.
  uint64_t buffer_coalesced_bytes = 0;
  // Write-buffer flush batches committed to the inner engine (each is one
  // inner group commit).
  uint64_t flush_batches = 0;

  uint64_t stall_count = 0;  // engine-level write stalls (LSM L0 pressure)

  // Bloom-filter effectiveness on the LSM point-read path (zero in
  // engines without blooms). A negative is an SST probe the pinned
  // filter rejected without touching the device — the work blooms
  // exist to save; a false positive is a probe the filter admitted
  // whose table turned out not to hold the key — the data-block read
  // was wasted. true-negative rate = negatives / (negatives + false
  // positives + hits); the paper's 10-bits-per-key default targets
  // ~1% false positives.
  uint64_t bloom_negatives = 0;
  uint64_t bloom_false_positives = 0;

  // Snapshot accounting. snapshots_created counts GetSnapshot calls over
  // the store's lifetime; snapshots_open is a gauge of snapshots handed
  // out and not yet released; snapshot_pinned_bytes is a gauge of disk
  // bytes that are dead to the live view but kept on the filesystem only
  // because an open snapshot still reads them (obsolete SSTs past
  // compaction, quarantined B+Tree blocks, sealed alog segments past GC).
  // Both gauges must return to zero after the last snapshot drops — the
  // stats-verified release the acceptance criteria require.
  uint64_t snapshots_created = 0;
  uint64_t snapshots_open = 0;
  uint64_t snapshot_pinned_bytes = 0;

  // Virtual-time breakdown (nanoseconds of simulated time spent inside
  // each engine mechanism); only filled when a clock is attached. The
  // time_* fields measure FOREGROUND time: what the user-visible
  // timeline absorbed. With background_io on, maintenance runs on a
  // background lane instead, its span lands in time_background_ns, and
  // the corresponding foreground field stays near zero — the
  // foreground-vs-background breakdown the paper's interference argument
  // needs.
  int64_t time_wal_ns = 0;
  int64_t time_flush_ns = 0;
  int64_t time_compaction_ns = 0;
  int64_t time_read_path_ns = 0;
  int64_t time_writeback_ns = 0;   // B+Tree leaf writebacks + page reads
  int64_t time_checkpoint_ns = 0;  // B+Tree checkpoints
  int64_t time_background_ns = 0;  // background-lane spans (background_io)
};

// Handle for one in-flight asynchronous commit (KVStore::WriteAsync).
// The commit's side effects (memtable/index/log state, stats) are applied
// at submission; `complete_ns` is the virtual time at which it finishes.
// Wait() joins that time into the shared clock (a monotonic max) and
// returns the commit's status — so handles obtained from the same global
// instant overlap in virtual time. For engines without a clock (or
// without async support) the handle is already complete and Wait() just
// returns the status.
//
// Completion can also be consumed push-style: OnComplete(cb) registers a
// single callback that fires EXACTLY ONCE with the commit status —
// inline, on the registering thread, if the handle is already complete;
// otherwise inside the Wait() that joins the completion time (so the
// callback always observes a clock that has absorbed the commit's
// latency). Handles are move-only: the callback has one owner and one
// firer. Destroying a handle that was never waited is NOT an error — the
// destructor safe-joins (performs the Wait-join and fires the pending
// callback), so a dropped handle can neither lose its latency nor strand
// its callback. This is the documented alternative to making un-waited
// destruction a hard error; see tests/async_io_test.cc.
class WriteHandle {
 public:
  using Callback = std::function<void(const Status&)>;

  WriteHandle() : joined_(true) {}
  // Already-complete (synchronous) commit.
  explicit WriteHandle(Status status)
      : status_(std::move(status)), joined_(true) {}
  WriteHandle(Status status, int64_t complete_ns, sim::SimClock* clock)
      : status_(std::move(status)), complete_ns_(complete_ns),
        clock_(clock), joined_(clock == nullptr || complete_ns <= 0) {}

  WriteHandle(WriteHandle&& o) noexcept { MoveFrom(o); }
  WriteHandle& operator=(WriteHandle&& o) noexcept {
    if (this != &o) {
      Settle();
      MoveFrom(o);
    }
    return *this;
  }
  WriteHandle(const WriteHandle&) = delete;
  WriteHandle& operator=(const WriteHandle&) = delete;

  // Safe-join: never loses the commit's virtual latency or a pending
  // callback.
  ~WriteHandle() { Settle(); }

  // Joins the completion time into the clock, fires the pending callback
  // (if any), and returns the commit status. Idempotent (the join and
  // the callback each happen at most once).
  Status Wait();

  // Registers the completion callback (one per handle). Fires inline if
  // the handle is already complete.
  void OnComplete(Callback cb);

  // True once the completion time has been joined (or there was never a
  // pending timeline to join).
  bool complete() const { return joined_; }

  int64_t complete_ns() const { return complete_ns_; }

 private:
  void MoveFrom(WriteHandle& o) {
    status_ = std::move(o.status_);
    complete_ns_ = o.complete_ns_;
    clock_ = o.clock_;
    joined_ = o.joined_;
    callback_ = std::move(o.callback_);
    o.clock_ = nullptr;
    o.joined_ = true;
    o.callback_ = nullptr;
  }
  void Settle();

  Status status_;
  int64_t complete_ns_ = 0;
  sim::SimClock* clock_ = nullptr;
  bool joined_ = true;
  Callback callback_;
};

// Runs `commit` inside a virtual-time submission lane on `clock` (queue
// id `queue`, which the simulated SSD maps to a flash channel) and wraps
// the result in a WriteHandle. The shared engine-side implementation of
// KVStore::WriteAsync: with no clock — or when the calling thread is
// already inside a lane — the commit runs synchronously on the current
// timeline.
WriteHandle AsyncCommit(sim::SimClock* clock, uint32_t queue,
                        const std::function<Status()>& commit);

// Handle for one in-flight asynchronous point read (KVStore::ReadAsync),
// mirroring WriteHandle: the value is filled at submission, `complete_ns`
// is the virtual time the lookup's lane finished at, and Wait() joins
// that time into the shared clock (monotonic max) and returns the read's
// status. Completion callbacks, move-only ownership and the safe-join
// destructor follow WriteHandle exactly: OnComplete(cb) fires once —
// inline if already complete, inside Wait() (or the destructor's
// safe-join) otherwise.
class ReadHandle {
 public:
  using Callback = std::function<void(const Status&)>;

  ReadHandle() : joined_(true) {}
  // Already-complete (synchronous) read.
  explicit ReadHandle(Status status)
      : status_(std::move(status)), joined_(true) {}
  ReadHandle(Status status, int64_t complete_ns, sim::SimClock* clock)
      : status_(std::move(status)), complete_ns_(complete_ns),
        clock_(clock), joined_(clock == nullptr || complete_ns <= 0) {}

  ReadHandle(ReadHandle&& o) noexcept { MoveFrom(o); }
  ReadHandle& operator=(ReadHandle&& o) noexcept {
    if (this != &o) {
      Settle();
      MoveFrom(o);
    }
    return *this;
  }
  ReadHandle(const ReadHandle&) = delete;
  ReadHandle& operator=(const ReadHandle&) = delete;

  ~ReadHandle() { Settle(); }

  // Joins the completion time into the clock, fires the pending callback
  // (if any), and returns the read status. Idempotent.
  Status Wait();

  // Registers the completion callback (one per handle). Fires inline if
  // the handle is already complete.
  void OnComplete(Callback cb);

  bool complete() const { return joined_; }

  int64_t complete_ns() const { return complete_ns_; }

 private:
  void MoveFrom(ReadHandle& o) {
    status_ = std::move(o.status_);
    complete_ns_ = o.complete_ns_;
    clock_ = o.clock_;
    joined_ = o.joined_;
    callback_ = std::move(o.callback_);
    o.clock_ = nullptr;
    o.joined_ = true;
    o.callback_ = nullptr;
  }
  void Settle();

  Status status_;
  int64_t complete_ns_ = 0;
  sim::SimClock* clock_ = nullptr;
  bool joined_ = true;
  Callback callback_;
};

// Runs `read` inside a virtual-time submission lane on `clock` tagged
// sim::IoClass::kForegroundRead and wraps the result in a ReadHandle.
// The shared engine-side implementation of KVStore::ReadAsync.
ReadHandle AsyncRead(sim::SimClock* clock, uint32_t queue,
                     const std::function<Status()>& read);

// Outcome of one span of background maintenance work (RunBackgroundWork).
struct BackgroundResult {
  Status status;
  int64_t busy_ns = 0;  // virtual time the background lane spent on it
};

// Runs `work` on the engine's background submission lane: a lane on
// `queue` tagged sim::IoClass::kBackground, serialized behind the
// engine's previous background work via `*horizon_ns` (one background
// worker per engine, like a compaction thread) — the foreground clock
// does not advance, so user commit latency no longer absorbs the
// maintenance I/O. `*horizon_ns` is updated to the work's completion
// time; the engine must join it back into the clock (AdvanceTo) at the
// points where the user genuinely waits: write stalls, Flush/Close, and
// SettleBackgroundWork. With no clock — or inside an enclosing lane,
// where a nested fork is impossible — the work simply runs on the
// current timeline (busy_ns stays 0: nothing moved off the foreground).
BackgroundResult RunBackgroundWork(sim::SimClock* clock, uint32_t queue,
                                   int64_t* horizon_ns,
                                   const std::function<Status()>& work);

// A consistent, read-only view of a store as of one commit sequence
// number. Obtained via KVStore::GetSnapshot() (which returns a
// shared_ptr whose deleter releases the engine-side pins) and consumed
// by passing the raw pointer in ReadOptions. While at least one snapshot
// pins a resource (an SST past compaction, a B+Tree checkpoint's pages,
// an alog segment past GC), the engine defers its physical deletion and
// accounts the held bytes in KvStoreStats::snapshot_pinned_bytes.
class Snapshot {
 public:
  virtual ~Snapshot() = default;
  // The engine's commit sequence number this view freezes. Opaque except
  // for ordering: later snapshots of the same store have larger numbers.
  virtual uint64_t sequence() const = 0;
};

// Per-read options for Get/MultiGet/NewIterator.
struct ReadOptions {
  // Null reads the live store (and, for iterators, keeps the
  // invalidated-by-any-write contract). Non-null must point at a live
  // snapshot of the SAME store; reads then observe exactly the state at
  // the snapshot's sequence, and iterators survive concurrent writes.
  const Snapshot* snapshot = nullptr;
  // Iterator readahead in entries/blocks: > 1 lets the iterator prefetch
  // that many leaves/blocks/values through foreground-read submission
  // lanes (queue striping at the engine's read_queue_depth), so a scan's
  // I/O overlaps across SSD channels instead of running at queue depth 1.
  // 0 or 1 reads one block at a time.
  int readahead = 0;
};

class KVStore {
 public:
  // Streaming cursor over the store in ascending key order. Deleted keys
  // are skipped; each user key surfaces once (newest version). After
  // construction the cursor is unpositioned: call Seek or SeekToFirst
  // first. If an I/O error occurs the cursor becomes !Valid() and
  // status() holds the error (end-of-data leaves status() OK).
  class Iterator {
   public:
    virtual ~Iterator() = default;

    virtual void SeekToFirst() = 0;
    // Positions at the first live key >= target.
    virtual void Seek(std::string_view target) = 0;
    virtual bool Valid() const = 0;
    virtual void Next() = 0;

    // Valid only while Valid() is true and until the next move.
    virtual std::string_view key() const = 0;
    virtual std::string_view value() const = 0;

    virtual Status status() const = 0;
  };

  virtual ~KVStore() = default;

  // Primary mutation path: applies all entries atomically with respect to
  // logging (one WAL/journal record for the whole batch).
  virtual Status Write(const WriteBatch& batch) = 0;

  // Asynchronous variant: submits the commit and returns a handle whose
  // Wait() yields the commit status. Engines with a virtual clock run the
  // commit in a submission lane (kv::AsyncCommit) so several WriteAsync
  // calls issued back-to-back overlap in virtual device time — the
  // mechanism kv::ShardedStore uses to overlap cross-shard sub-batch
  // commits on distinct flash channels. The default implementation is
  // simply synchronous (correct for any engine; no overlap). Like Write,
  // one store must not see concurrent unsynchronized callers unless
  // SupportsConcurrentWriters() is true.
  virtual WriteHandle WriteAsync(const WriteBatch& batch) {
    return WriteHandle(Write(batch));
  }

  // One-entry conveniences over Write. Each thread reuses one WriteBatch
  // (and its entry's string capacity) across calls, so the steady-state
  // hot path allocates nothing: a fresh batch per call would pay a vector
  // plus two string allocations per operation. Safe because the batch is
  // consumed synchronously by Write before the wrapper returns, and no
  // engine's Write re-enters Put/Delete.
  Status Put(std::string_view key, std::string_view value) {
    thread_local WriteBatch batch;
    batch.SetSingle(WriteBatch::EntryKind::kPut, key, value);
    return Write(batch);
  }
  Status Delete(std::string_view key) {
    thread_local WriteBatch batch;
    batch.SetSingle(WriteBatch::EntryKind::kDelete, key, "");
    return Write(batch);
  }
  // One-entry range delete ([begin, end), end exclusive). begin >= end is
  // a uniform no-op (normalized away by WriteBatch::DeleteRange).
  Status DeleteRange(std::string_view begin, std::string_view end) {
    thread_local WriteBatch batch;
    batch.Clear();
    batch.DeleteRange(begin, end);
    if (batch.empty()) return Status::OK();
    return Write(batch);
  }

  virtual Status Get(std::string_view key, std::string* value) = 0;

  // Snapshot-aware point lookup. The default forwards live reads and
  // rejects snapshot reads, so only engines that actually implement
  // snapshot visibility accept one.
  virtual Status Get(const ReadOptions& opts, std::string_view key,
                     std::string* value) {
    if (opts.snapshot != nullptr) {
      return Status::NotSupported(Name() + ": snapshot reads not supported");
    }
    return Get(key, value);
  }

  // Batched point reads: one status per key (NotFound for missing keys,
  // which is data, not failure), `values` resized to match. The default
  // implementation is sequential Gets; engines with a virtual clock fan
  // the lookups out across read submission lanes at their
  // `read_queue_depth` (LSM SST probes, B+Tree leaf reads, alog segment
  // reads, per-shard sub-lookups in the sharded store), so independent
  // reads overlap in virtual device time across SSD channels — the
  // read-side counterpart of the WriteBatch group commit.
  virtual std::vector<Status> MultiGet(
      std::span<const std::string_view> keys,
      std::vector<std::string>* values);

  // Snapshot-aware batched point reads. The default runs sequential
  // snapshot Gets (engines override to keep their fan-out under the
  // snapshot's visibility bound).
  virtual std::vector<Status> MultiGet(const ReadOptions& opts,
                                       std::span<const std::string_view> keys,
                                       std::vector<std::string>* values) {
    if (opts.snapshot == nullptr) return MultiGet(keys, values);
    values->assign(keys.size(), std::string());
    std::vector<Status> statuses(keys.size());
    for (size_t i = 0; i < keys.size(); i++) {
      statuses[i] = Get(opts, keys[i], &(*values)[i]);
    }
    return statuses;
  }

  // Asynchronous point read, mirroring WriteAsync: submits the lookup
  // and returns a handle whose Wait() yields its status. The value is
  // filled at submission; engines with a clock run the lookup in a
  // foreground-read submission lane so several ReadAsync calls issued
  // back-to-back overlap in virtual device time. The default
  // implementation is simply synchronous.
  virtual ReadHandle ReadAsync(std::string_view key, std::string* value) {
    return ReadHandle(Get(key, value));
  }

  // The streaming read path. Never returns null; a failed setup yields an
  // iterator whose status() carries the error.
  virtual std::unique_ptr<Iterator> NewIterator() = 0;

  // Snapshot-aware iterator. With a snapshot, the cursor observes exactly
  // the state at the snapshot's sequence and SURVIVES concurrent writes
  // (the engine's write-epoch invalidation check is skipped); with
  // readahead > 1 the cursor prefetches through foreground-read lanes.
  // The default forwards live cursors and errors on snapshot requests
  // (defined out of line: it needs FailedIterator).
  virtual std::unique_ptr<Iterator> NewIterator(const ReadOptions& opts);

  // Freezes the current committed state into a refcounted snapshot. The
  // returned shared_ptr's deleter releases the engine-side pins (under
  // the engine's commit exclusion), so dropping the last reference
  // un-pins every resource the snapshot held. The default errors; all
  // bundled engines override.
  virtual StatusOr<std::shared_ptr<const Snapshot>> GetSnapshot() {
    return Status::NotSupported(Name() + ": snapshots not supported");
  }

  // Forces all buffered state to stable storage (memtable flush or
  // checkpoint), e.g. before measuring space, or before Close.
  virtual Status Flush() = 0;

  // Completes pending background work (compaction debt). Used between a
  // load phase and a measurement phase; engines without background work
  // keep the default no-op.
  virtual Status SettleBackgroundWork() { return Status::OK(); }

  // Graceful shutdown; the store can be re-opened from disk state.
  virtual Status Close() = 0;

  // Whether Write/Get may be called from multiple threads concurrently.
  // The storage engines route Write through a kv::WriteGroup (concurrent
  // callers line up and a leader commits their batches as one log record)
  // and exclude point reads against in-flight commits, so they return
  // true; the sharded front end serializes per shard and returns true as
  // well. Iterators and lifecycle calls (Flush/Close/SettleBackgroundWork)
  // still expect a quiesced store. Drivers must check this before fanning
  // out workers.
  virtual bool SupportsConcurrentWriters() const { return false; }

  virtual KvStoreStats GetStats() const = 0;
  virtual std::string Name() const = 0;

  // Bytes of live engine data on the filesystem (for space amplification).
  virtual uint64_t DiskBytesUsed() const = 0;
};

// The shared MultiGet fan-out: submits each key's Get in its own
// foreground-read lane on queues `base_queue + (i mod depth)` with at
// most `depth` lookups in flight (waiting the oldest before submitting
// past the depth, exactly a bounded submission queue), then waits the
// stragglers. With no clock or depth <= 1 this degrades to sequential
// Gets. Engines whose Get already expresses the whole lookup (LSM,
// B+Tree) implement MultiGet with this directly; alog overrides it with
// a File::SubmitReadAt fan-out instead.
std::vector<Status> FanOutMultiGet(KVStore* store, sim::SimClock* clock,
                                   uint32_t base_queue, int depth,
                                   std::span<const std::string_view> keys,
                                   std::vector<std::string>* values);

// An always-invalid iterator carrying `status` — what NewIterator returns
// when cursor setup itself fails (the API never returns null).
std::unique_ptr<KVStore::Iterator> FailedIterator(Status status);

}  // namespace ptsb::kv

#endif  // PTSB_KV_KVSTORE_H_
