#include "kv/registry.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ptsb::kv {

namespace {

// A malformed override would otherwise silently fall back to the default
// and run the whole experiment with the wrong configuration.
void WarnUnparsable(const std::string& key, const std::string& raw,
                    const char* expected) {
  std::fprintf(stderr,
               "ptsb: ignoring unparsable engine param %s=\"%s\" "
               "(expected %s); using the default\n",
               key.c_str(), raw.c_str(), expected);
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = new EngineRegistry();
  return *registry;
}

void EngineRegistry::Register(const std::string& name,
                              EngineFactory factory) {
  factories_[name] = std::move(factory);
}

bool EngineRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

StatusOr<std::unique_ptr<KVStore>> EngineRegistry::Open(
    const EngineOptions& options) const {
  if (options.fs == nullptr) {
    return Status::InvalidArgument("EngineOptions.fs is required");
  }
  const auto it = factories_.find(options.engine);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& name : Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::InvalidArgument("unknown engine \"" + options.engine +
                                   "\" (registered: " + known + ")");
  }
  return it->second(options);
}

StatusOr<std::unique_ptr<KVStore>> OpenStore(const EngineOptions& options) {
  RegisterBuiltinEngines();
  return EngineRegistry::Global().Open(options);
}

namespace {

const std::string* FindParam(const EngineOptions& options,
                             const std::string& key) {
  const auto it = options.params.find(key);
  return it == options.params.end() ? nullptr : &it->second;
}

}  // namespace

uint64_t ParamUint64(const EngineOptions& options, const std::string& key,
                     uint64_t def) {
  const std::string* raw = FindParam(options, key);
  if (raw == nullptr) return def;
  // strtoull accepts a leading '-' and wraps it modulo 2^64 ("-1" parses
  // as 18446744073709551615 with *end == '\0'), which would silently run
  // the whole experiment with a garbage value; reject signed input here.
  if (raw->find('-') != std::string::npos) {
    WarnUnparsable(key, *raw, "unsigned integer");
    return def;
  }
  char* end = nullptr;
  errno = 0;
  const uint64_t v = std::strtoull(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE) {
    WarnUnparsable(key, *raw, "unsigned integer");
    return def;
  }
  return v;
}

int64_t ParamInt64(const EngineOptions& options, const std::string& key,
                   int64_t def) {
  const std::string* raw = FindParam(options, key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const int64_t v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE) {
    WarnUnparsable(key, *raw, "integer");
    return def;
  }
  return v;
}

int ParamInt(const EngineOptions& options, const std::string& key, int def) {
  const int64_t v = ParamInt64(options, key, def);
  // An int64 that parses fine can still truncate when narrowed (e.g.
  // "4294967296" would silently become 0); out-of-range values fall back
  // to the default like any other unparsable input.
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    const std::string* raw = FindParam(options, key);
    WarnUnparsable(key, raw != nullptr ? *raw : "", "32-bit integer");
    return def;
  }
  return static_cast<int>(v);
}

double ParamDouble(const EngineOptions& options, const std::string& key,
                   double def) {
  const std::string* raw = FindParam(options, key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    WarnUnparsable(key, *raw, "number");
    return def;
  }
  return v;
}

bool ParamBool(const EngineOptions& options, const std::string& key,
               bool def) {
  const std::string* raw = FindParam(options, key);
  if (raw == nullptr) return def;
  if (*raw == "1" || *raw == "true") return true;
  if (*raw == "0" || *raw == "false") return false;
  WarnUnparsable(key, *raw, "1/0/true/false");
  return def;
}

}  // namespace ptsb::kv
