// EngineRegistry + OpenStore: registry-driven engine construction. Engines
// self-register a factory under a short name ("lsm", "btree", "alog");
// callers open
// a store with a name plus a string->string option map, so the experiment
// driver, benches and future multi-backend work never link against a
// concrete engine type. New engines plug in by calling
// EngineRegistry::Global().Register(...) — no core/ changes required.
#ifndef PTSB_KV_REGISTRY_H_
#define PTSB_KV_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kv/kvstore.h"
#include "util/status.h"

namespace ptsb::fs {
class SimpleFs;
}  // namespace ptsb::fs
namespace ptsb::sim {
class SimClock;
}  // namespace ptsb::sim

namespace ptsb::kv {

// Everything a factory needs to build a store. `params` carries
// engine-specific option overrides as strings (e.g. "memtable_bytes" ->
// "65536"); unknown keys are ignored by engines that don't understand
// them, so one map can be threaded through generic drivers.
struct EngineOptions {
  std::string engine = "lsm";
  fs::SimpleFs* fs = nullptr;       // required
  sim::SimClock* clock = nullptr;   // optional virtual clock
  // Submission queue id this store tags its async commits with; the
  // simulated SSD maps it to a flash channel (queue % channels), so
  // stores on distinct queues overlap in virtual time. The sharded front
  // end assigns queue i to shard i. Not a param-map key: like `clock`,
  // it is wiring, not a tunable of the engine's on-disk behavior.
  uint32_t io_queue = 0;
  // Submission queue for the engine's BACKGROUND lane (compaction /
  // checkpoint / GC when the `background_io` param is on), kept distinct
  // from io_queue so maintenance lands on its own flash channel when the
  // device has one. The sharded front end assigns queue shards + i to
  // shard i's background work. Wiring, like io_queue.
  uint32_t background_queue = 1;
  std::string root;                 // engine root dir/file ("" = default)
  std::map<std::string, std::string> params;
};

using EngineFactory =
    std::function<StatusOr<std::unique_ptr<KVStore>>(const EngineOptions&)>;

class EngineRegistry {
 public:
  // The process-wide registry used by OpenStore.
  static EngineRegistry& Global();

  // Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, EngineFactory factory);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

  StatusOr<std::unique_ptr<KVStore>> Open(const EngineOptions& options) const;

 private:
  std::map<std::string, EngineFactory> factories_;
};

// Opens a store through the global registry. Built-in engines are
// registered on first use; returns InvalidArgument for unknown names,
// listing what is available.
StatusOr<std::unique_ptr<KVStore>> OpenStore(const EngineOptions& options);

// Idempotently registers the built-in engines ("lsm", "btree", "alog").
// OpenStore calls this itself; it is exposed for code that inspects the
// registry before opening anything.
void RegisterBuiltinEngines();

// Typed accessors for EngineOptions::params (missing key -> `def`;
// unparsable values also fall back to `def`). Booleans accept
// "1"/"0"/"true"/"false".
uint64_t ParamUint64(const EngineOptions& options, const std::string& key,
                     uint64_t def);
int64_t ParamInt64(const EngineOptions& options, const std::string& key,
                   int64_t def);
int ParamInt(const EngineOptions& options, const std::string& key, int def);
double ParamDouble(const EngineOptions& options, const std::string& key,
                   double def);
bool ParamBool(const EngineOptions& options, const std::string& key,
               bool def);

}  // namespace ptsb::kv

#endif  // PTSB_KV_REGISTRY_H_
