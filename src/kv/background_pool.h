// A small pool of background submission lanes: the multi-lane
// generalization of kv::RunBackgroundWork. One engine owns one pool;
// lane i submits on queue `base_queue + i`, so the simulated SSD maps
// concurrent background work to distinct flash channels
// ((base_queue + i) % channels) and overlapped spans cost max, not sum,
// of their device time — partitioned subcompactions, fanned-out GC
// value reads and checkpoint block writes all ride on this.
//
// Like RunBackgroundWork, each lane is serialized behind its own
// previous work via a per-lane horizon; the foreground clock does not
// advance while work runs. Barrier() orders later background work
// behind everything submitted so far WITHOUT advancing the foreground
// (a background-side dependency: install-after-all-subranges,
// delete-victim-after-all-reads). Join() advances the foreground to the
// pool's completion — the points where the user genuinely waits.
//
// A pool with one lane is exactly RunBackgroundWork with an owned
// horizon. With no clock — or on a thread already inside a submission
// lane, where a nested fork is impossible — Run degrades to running the
// work synchronously on the current timeline.
#ifndef PTSB_KV_BACKGROUND_POOL_H_
#define PTSB_KV_BACKGROUND_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "kv/kvstore.h"
#include "util/status.h"

namespace ptsb::sim {
class SimClock;
}  // namespace ptsb::sim

namespace ptsb::kv {

class BackgroundPool {
 public:
  // `lanes` must be >= 1. The pool does not own the clock.
  BackgroundPool(sim::SimClock* clock, uint32_t base_queue, int lanes);

  int lanes() const { return static_cast<int>(horizons_.size()); }

  // Runs `work` on lane `lane % lanes()`: a background-class submission
  // lane on queue base_queue + lane, starting no earlier than the
  // lane's previous work finished. busy_ns is the virtual time the lane
  // spent (0 when the work ran synchronously on the current timeline).
  BackgroundResult Run(int lane, const std::function<Status()>& work);

  // Orders all future Run calls behind every lane's current horizon:
  // each lane's horizon becomes the pool-wide max. Purely
  // background-side — the foreground clock does not move.
  void Barrier();

  // Completion time of the pool: the max lane horizon.
  int64_t horizon_ns() const;

  // Advances the foreground clock to horizon_ns() — the explicit wait
  // at stalls, Flush/Close and SettleBackgroundWork.
  void Join();

 private:
  sim::SimClock* clock_;
  uint32_t base_queue_;
  std::vector<int64_t> horizons_;
};

}  // namespace ptsb::kv

#endif  // PTSB_KV_BACKGROUND_POOL_H_
