// WriteBatch: an ordered group of Put/Delete entries submitted to an
// engine as one unit through KVStore::Write. Batching is the mechanism
// behind group commit: the engine persists the whole batch with a single
// WAL/journal record (one header, one crc) instead of one per operation,
// so the log overhead amortizes across the batch — the behavior RocksDB
// and WiredTiger both rely on under concurrent writers.
//
// A batch is a plain value type: build it up, hand it to Write, Clear and
// reuse. Entries are applied in insertion order; a later entry for the
// same key shadows an earlier one, exactly as if the operations had been
// submitted individually.
#ifndef PTSB_KV_WRITE_BATCH_H_
#define PTSB_KV_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptsb::kv {

class WriteBatch {
 public:
  enum class EntryKind : uint8_t { kPut = 1, kDelete = 2, kDeleteRange = 3 };

  struct Entry {
    EntryKind kind;
    std::string key;
    std::string value;  // empty for deletes; range end for kDeleteRange
  };

  void Put(std::string_view key, std::string_view value) {
    entries_.push_back(Entry{EntryKind::kPut, std::string(key),
                             std::string(value)});
    byte_size_ += key.size() + value.size();
  }

  void Delete(std::string_view key) {
    entries_.push_back(Entry{EntryKind::kDelete, std::string(key), ""});
    byte_size_ += key.size();
  }

  // Deletes every key in [begin, end) — end EXCLUSIVE, like RocksDB's
  // DeleteRange. The entry stores begin in `key` and end in `value`, so
  // the range rides through the log codecs with the same framing as a
  // Put. An empty or inverted range (begin >= end) is normalized away at
  // batch build time: no entry is added, making the no-op uniform across
  // engines instead of each replay path special-casing it.
  void DeleteRange(std::string_view begin, std::string_view end) {
    if (begin >= end) return;
    entries_.push_back(Entry{EntryKind::kDeleteRange, std::string(begin),
                             std::string(end)});
    byte_size_ += begin.size() + end.size();
  }

  // Appends a copy of another batch's entries in order. Used by the write
  // group's leader to merge followers' batches into one commit unit.
  void Append(const WriteBatch& other) {
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
    byte_size_ += other.byte_size_;
  }

  // Resets the batch to exactly one entry, reusing the entry slot's string
  // capacity. The Put/Delete convenience wrappers call this on a reused
  // batch so the one-entry hot path stops paying a vector + two string
  // allocations per operation.
  void SetSingle(EntryKind kind, std::string_view key,
                 std::string_view value) {
    if (entries_.empty()) {
      entries_.emplace_back();
    } else {
      entries_.resize(1);
    }
    Entry& e = entries_.front();
    e.kind = kind;
    e.key.assign(key);
    e.value.assign(value);
    byte_size_ = key.size() + value.size();
  }

  void Clear() {
    entries_.clear();
    byte_size_ = 0;
  }

  bool empty() const { return entries_.empty(); }
  size_t Count() const { return entries_.size(); }

  // Sum of key+value payload bytes across all entries (the engine-neutral
  // "user bytes" this batch represents).
  uint64_t ByteSize() const { return byte_size_; }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
  uint64_t byte_size_ = 0;
};

}  // namespace ptsb::kv

#endif  // PTSB_KV_WRITE_BATCH_H_
