// Links the built-in engines into the registry. Static self-registration
// alone would be dropped by the linker for binaries that only reference
// kv::OpenStore (the engine object files would appear unused in the static
// library), so OpenStore pulls the registrations in explicitly through
// this translation unit.
#include <mutex>

#include "alog/alog_store.h"
#include "btree/btree_store.h"
#include "cached/cached_store.h"
#include "kv/registry.h"
#include "lsm/lsm_store.h"
#include "sharded/sharded_store.h"

namespace ptsb::kv {

void RegisterBuiltinEngines() {
  static std::once_flag once;
  std::call_once(once, [] {
    lsm::RegisterLsmEngine();
    btree::RegisterBTreeEngine();
    alog::RegisterAlogEngine();
    sharded::RegisterShardedEngine();
    cached::RegisterCachedEngine();
  });
}

}  // namespace ptsb::kv
