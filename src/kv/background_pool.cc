#include "kv/background_pool.h"

#include <algorithm>

#include "sim/clock.h"
#include "util/logging.h"

namespace ptsb::kv {

BackgroundPool::BackgroundPool(sim::SimClock* clock, uint32_t base_queue,
                               int lanes)
    : clock_(clock), base_queue_(base_queue) {
  PTSB_CHECK(lanes >= 1);
  horizons_.assign(static_cast<size_t>(lanes), 0);
}

BackgroundResult BackgroundPool::Run(int lane,
                                     const std::function<Status()>& work) {
  const size_t i = static_cast<size_t>(lane) % horizons_.size();
  return RunBackgroundWork(clock_, base_queue_ + static_cast<uint32_t>(i),
                           &horizons_[i], work);
}

void BackgroundPool::Barrier() {
  const int64_t h = horizon_ns();
  for (int64_t& lane_h : horizons_) lane_h = h;
}

int64_t BackgroundPool::horizon_ns() const {
  return *std::max_element(horizons_.begin(), horizons_.end());
}

void BackgroundPool::Join() {
  if (clock_ != nullptr) clock_->AdvanceTo(horizon_ns());
}

}  // namespace ptsb::kv
