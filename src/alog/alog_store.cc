#include "alog/alog_store.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/human.h"
#include "util/logging.h"

namespace ptsb::alog {

AlogStore::AlogStore(fs::SimpleFs* fs, const AlogOptions& options,
                     std::string dir)
    : fs_(fs), options_(options), dir_(std::move(dir)),
      write_group_(options.max_write_group_bytes) {}

AlogStore::~AlogStore() {
  if (!closed_) {
    // Best-effort shutdown; errors are not recoverable in a destructor.
    Close().ok();
  }
}

std::string AlogStore::SegmentFileName(const std::string& dir, uint64_t id) {
  return StrPrintf("%s/%06llu.seg", dir.c_str(),
                   static_cast<unsigned long long>(id));
}

StatusOr<std::unique_ptr<AlogStore>> AlogStore::Open(fs::SimpleFs* fs,
                                                     const AlogOptions& options,
                                                     std::string dir) {
  if (options.segment_bytes == 0) {
    return Status::InvalidArgument("alog segment_bytes must be positive");
  }
  if (!(options.gc_trigger > 0.0) || options.gc_trigger > 1.0) {
    return Status::InvalidArgument("alog gc_trigger must be in (0, 1]");
  }
  auto store =
      std::unique_ptr<AlogStore>(new AlogStore(fs, options, std::move(dir)));

  // Replay every segment in id order (numeric, not lexicographic: the
  // fixed-width file names wrap their pad once ids pass 999999, and a
  // misordered replay would let stale records re-shadow newer ones).
  // Pre-existing segments are sealed: after a crash the newest one may end
  // in a torn record, and appending past a torn tail would bury it
  // mid-file where replay cannot skip it.
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const std::string& name : fs->List(store->dir_ + "/")) {
    if (!name.ends_with(".seg")) continue;
    const size_t slash = name.rfind('/');
    const std::string base =
        name.substr(slash + 1, name.size() - slash - 1 - 4);
    // A foreign or mangled file name must not abort recovery (std::stoull
    // throws); anything non-numeric is simply not one of our segments.
    if (base.empty() || base.size() > 19 ||
        base.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    files.emplace_back(std::stoull(base), name);
  }
  std::sort(files.begin(), files.end());
  store->replaying_ = true;
  for (const auto& [id, name] : files) {
    PTSB_ASSIGN_OR_RETURN(fs::File * file, fs->Open(name));
    SegmentInfo info;
    info.file = file;
    info.sealed = true;
    store->segments_.emplace(id, info);
    PTSB_RETURN_IF_ERROR(ReplaySegment(file, [&](const ReplayedEntry& e) {
      store->segments_.at(id).payload_bytes += e.entry_bytes;
      store->sealed_payload_bytes_ += e.entry_bytes;
      Location loc;
      loc.segment = id;
      loc.value_offset = e.value_offset;
      loc.value_bytes = static_cast<uint32_t>(e.value.size());
      loc.entry_bytes = e.entry_bytes;
      store->ApplyToIndex(e.kind, e.key, loc);
    }));
    store->next_segment_id_ = std::max(store->next_segment_id_, id + 1);
  }
  store->replaying_ = false;

  // Segments with nothing live (everything shadowed by newer records, or
  // only a torn tail) are reclaimed immediately: free GC at open.
  for (auto it = store->segments_.begin(); it != store->segments_.end();) {
    if (it->second.live_entries == 0) {
      store->sealed_payload_bytes_ -= it->second.payload_bytes;
      store->sealed_live_bytes_ -= it->second.live_bytes;
      PTSB_RETURN_IF_ERROR(
          fs->Delete(SegmentFileName(store->dir_, it->first)));
      it = store->segments_.erase(it);
    } else {
      ++it;
    }
  }
  return store;
}

void AlogStore::ChargeCpu(int64_t ns) const {
  if (options_.clock != nullptr) options_.clock->Advance(ns);
}

Status AlogStore::RollSegment() {
  if (active_id_ != 0) {
    SegmentInfo& old = segments_.at(active_id_);
    // Sealing makes the segment durable and returns its over-allocated
    // append slack to the filesystem; it is never written again.
    unsynced_bytes_ = 0;  // the seal sync restarts the sync cadence
    PTSB_RETURN_IF_ERROR(old.file->Sync());
    PTSB_RETURN_IF_ERROR(old.file->ShrinkToFit());
    old.sealed = true;
    sealed_payload_bytes_ += old.payload_bytes;
    sealed_live_bytes_ += old.live_bytes;
    // A roll is the natural point to re-examine filesystem headroom: the
    // pressure threshold is several segments wide, so per-write checks
    // would only rediscover the same answer.
    pressure_check_due_ = true;
  }
  const uint64_t id = next_segment_id_++;
  PTSB_ASSIGN_OR_RETURN(fs::File * file,
                        fs_->Create(SegmentFileName(dir_, id)));
  SegmentInfo info;
  info.file = file;
  segments_.emplace(id, info);
  active_id_ = id;
  return Status::OK();
}

StatusOr<uint64_t> AlogStore::AppendRecord(std::string_view record,
                                           uint64_t payload, bool gc) {
  if (active_id_ == 0 ||
      segments_.at(active_id_).payload_bytes >= options_.segment_bytes) {
    PTSB_RETURN_IF_ERROR(RollSegment());
  }
  SegmentInfo& seg = segments_.at(active_id_);
  const uint64_t start = seg.file->size();
  PTSB_RETURN_IF_ERROR(seg.file->Append(record));
  seg.payload_bytes += payload;
  if (gc) {
    stats_.gc_bytes_written += record.size();
  } else {
    stats_.wal_bytes_written += record.size();
    // GC rewrites are internal traffic: only user commits count as log
    // records for the group-commit accounting.
    stats_.wal_records++;
  }
  if (options_.sync_every_bytes > 0) {
    unsynced_bytes_ += record.size();
    if (unsynced_bytes_ >= options_.sync_every_bytes) {
      unsynced_bytes_ = 0;
      PTSB_RETURN_IF_ERROR(seg.file->Sync());
    }
  }
  return start;
}

void AlogStore::ReleaseLocation(const Location& loc) {
  SegmentInfo& seg = segments_.at(loc.segment);
  PTSB_DCHECK(seg.live_entries > 0);
  seg.live_bytes -= loc.entry_bytes;
  seg.live_entries--;
  if (seg.sealed) sealed_live_bytes_ -= loc.entry_bytes;
}

void AlogStore::ApplyToIndex(kv::WriteBatch::EntryKind kind,
                             std::string_view key, const Location& loc) {
  SegmentInfo& seg = segments_.at(loc.segment);
  auto it = index_.find(key);
  if (kind == kv::WriteBatch::EntryKind::kPut) {
    if (it != index_.end()) {
      ReleaseLocation(it->second);
      it->second = loc;
    } else {
      index_.emplace(std::string(key), loc);
    }
    seg.live_bytes += loc.entry_bytes;
    seg.live_entries++;
    if (seg.sealed) sealed_live_bytes_ += loc.entry_bytes;  // replay only
    return;
  }
  // A tombstone stays in the index while older shadowed entries for its
  // key may survive in other segments (replay must keep suppressing them).
  // When the key has no index entry at all, nothing for it survives
  // anywhere, so the tombstone is dead on arrival.
  if (it != index_.end()) {
    ReleaseLocation(it->second);
    Location tomb = loc;
    tomb.tombstone = true;
    it->second = tomb;
    seg.live_bytes += loc.entry_bytes;
    seg.live_entries++;
    if (seg.sealed) sealed_live_bytes_ += loc.entry_bytes;  // replay only
  }
}

Status AlogStore::ApplyBatchRecord(const kv::WriteBatch& batch, bool gc) {
  // Group commit: one record, one crc, for the whole batch.
  std::vector<EntryLayout> layout;
  const std::string record = EncodeRecord(batch, &layout);
  uint64_t payload = 0;
  for (const EntryLayout& l : layout) payload += l.entry_bytes;
  PTSB_ASSIGN_OR_RETURN(const uint64_t start,
                        AppendRecord(record, payload, gc));
  // Entries index in order, so a later entry for the same key wins (and
  // immediately deadens the earlier one), exactly as if submitted
  // individually — crash replay walks the record in the same order.
  size_t i = 0;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    Location loc;
    loc.segment = active_id_;
    loc.value_offset = start + layout[i].value_offset;
    loc.value_bytes = layout[i].value_bytes;
    loc.entry_bytes = layout[i].entry_bytes;
    ApplyToIndex(e.kind, e.key, loc);
    i++;
  }
  return Status::OK();
}

kv::WriteHandle AlogStore::WriteAsync(const kv::WriteBatch& batch) {
  return kv::AsyncCommit(options_.clock, options_.io_queue,
                         [&] { return Write(batch); });
}

Status AlogStore::Write(const kv::WriteBatch& batch) {
  PTSB_CHECK(!closed_);
  // An empty batch is a no-op: no record, no stats movement.
  if (batch.empty()) return Status::OK();
  // Cross-thread group commit: a single caller passes straight through
  // (group of one, no copy); concurrent callers elect a leader that
  // merges their batches into one appended record.
  return write_group_.Commit(
      batch, [this](const kv::WriteBatch& merged, size_t n_user_batches) {
        return WriteInternal(merged, n_user_batches);
      });
}

kv::WriteBatch AlogStore::ExpandRangeDeletes(const kv::WriteBatch& batch,
                                             bool* changed) const {
  *changed = false;
  bool has_range = false;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    if (e.kind == kv::WriteBatch::EntryKind::kDeleteRange) {
      has_range = true;
      break;
    }
  }
  if (!has_range) return {};
  *changed = true;
  kv::WriteBatch out;
  // Batch-local overlay: entries earlier in this batch shadow the index
  // for later range entries (a put inside the batch is covered by a
  // following range over it; a delete removes the key from coverage).
  std::map<std::string, bool, std::less<>> overlay;  // key -> live?
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        out.Put(e.key, e.value);
        overlay[std::string(e.key)] = true;
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        out.Delete(e.key);
        overlay[std::string(e.key)] = false;
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange: {
        const std::string_view begin = e.key;
        const std::string_view end = e.value;  // exclusive
        if (begin >= end) break;
        std::set<std::string, std::less<>> covered;
        for (auto it = index_.lower_bound(begin);
             it != index_.end() && it->first < end; ++it) {
          if (!it->second.tombstone) covered.insert(it->first);
        }
        for (auto it = overlay.lower_bound(begin);
             it != overlay.end() && it->first < end; ++it) {
          if (it->second) {
            covered.insert(it->first);
          } else {
            covered.erase(it->first);
          }
        }
        for (const std::string& k : covered) {
          out.Delete(k);
          overlay[k] = false;
        }
        break;
      }
    }
  }
  return out;
}

Status AlogStore::WriteInternal(const kv::WriteBatch& batch,
                                size_t n_user_batches) {
  write_epoch_++;
  ChargeCpu(options_.cpu_put_ns * static_cast<int64_t>(batch.Count()));
  stats_.user_batches += n_user_batches;
  stats_.write_groups++;
  stats_.write_group_batches += n_user_batches;
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        stats_.user_puts++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size();
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange:
        // One logical delete spanning [key, value).
        stats_.user_deletes++;
        stats_.user_bytes_written += e.key.size() + e.value.size();
        break;
    }
  }

  // Range deletes are expanded into per-key tombstones at commit time:
  // the index is the only source of covered keys, and expanding before
  // the append makes the on-disk record (and crash replay) plain.
  bool expanded_changed = false;
  const kv::WriteBatch expanded = ExpandRangeDeletes(batch, &expanded_changed);
  const kv::WriteBatch& to_apply = expanded_changed ? expanded : batch;

  auto now = [this]() {
    return options_.clock != nullptr ? options_.clock->NowNanos() : 0;
  };
  const int64_t t0 = now();
  // A batch whose ranges covered nothing can expand to empty: the stats
  // above still count the logical deletes, but nothing needs appending.
  if (!to_apply.empty()) {
    PTSB_RETURN_IF_ERROR(ApplyBatchRecord(to_apply, /*gc=*/false));
  }
  stats_.time_wal_ns += now() - t0;

  const int64_t t1 = now();
  PTSB_RETURN_IF_ERROR(RunGc());
  stats_.time_compaction_ns += now() - t1;
  return Status::OK();
}

Status AlogStore::RunGc() {
  if (!options_.background_io || options_.clock == nullptr) {
    return MaybeGc();
  }
  if (options_.compaction_parallelism > 1) {
    // Partitioned GC: MaybeGc's orchestration is CPU-only and stays on
    // the foreground timeline; CollectSegment dispatches its I/O phases
    // through the pool's lanes. Wrapping MaybeGc in one enclosing
    // background span here would collapse the fan-out (nested lanes run
    // synchronously), so the pool replaces the span entirely.
    if (pool_ == nullptr) {
      pool_ = std::make_unique<kv::BackgroundPool>(
          options_.clock, options_.background_queue,
          options_.compaction_parallelism);
    }
    return MaybeGc();
  }
  kv::BackgroundResult r = kv::RunBackgroundWork(
      options_.clock, options_.background_queue, &background_horizon_ns_,
      [&] { return MaybeGc(); });
  stats_.time_background_ns += r.busy_ns;
  return r.status;
}

void AlogStore::JoinBackgroundWork() {
  if (options_.clock != nullptr) {
    options_.clock->AdvanceTo(background_horizon_ns_);
    if (pool_ != nullptr) pool_->Join();
  }
}

Status AlogStore::SettleBackgroundWork() {
  PTSB_CHECK(!closed_);
  const Status s = RunGc();
  JoinBackgroundWork();  // settling means waiting the work out
  return s;
}

Status AlogStore::Get(std::string_view key, std::string* value) {
  PTSB_CHECK(!closed_);
  // Exclude in-flight group commits: a leader may be retargeting the
  // index or GC-deleting segment files on another thread.
  return write_group_.RunExclusive([&] { return GetInternal(key, value); });
}

Status AlogStore::GetInternal(std::string_view key, std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;
  const auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key");
  if (it->second.tombstone) return Status::NotFound("deleted");
  const Location& loc = it->second;
  value->resize(loc.value_bytes);
  PTSB_ASSIGN_OR_RETURN(
      const uint64_t got,
      segments_.at(loc.segment)
          .file->ReadAt(loc.value_offset, loc.value_bytes, value->data()));
  if (got != loc.value_bytes) return Status::Corruption("short value read");
  stats_.user_bytes_read += value->size();
  return Status::OK();
}

std::vector<Status> AlogStore::MultiGet(std::span<const std::string_view> keys,
                                        std::vector<std::string>* values) {
  PTSB_CHECK(!closed_);
  const int depth = options_.read_queue_depth;
  if (options_.clock == nullptr || depth <= 1) {
    return KVStore::MultiGet(keys, values);  // sequential Gets
  }
  // The whole fan-out runs under commit exclusion: it walks the index and
  // reads segment files an in-flight group commit could be retargeting.
  return write_group_.RunExclusive(
      [&] { return MultiGetFanOut(keys, values); });
}

std::vector<Status> AlogStore::MultiGetFanOut(
    std::span<const std::string_view> keys,
    std::vector<std::string>* values) {
  const int depth = options_.read_queue_depth;
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size());
  // Fan-out: the index lookups are pure CPU; each hit's value read is
  // submitted to its segment file across read lanes, at most `depth` in
  // flight (waiting the oldest bounds the queue, exactly like the
  // sharded store's write dispatch). Misses and tombstones never touch
  // the device.
  struct Pending {
    size_t idx = 0;
    fs::File* file = nullptr;
    block::IoTicket ticket;
  };
  std::vector<Pending> pending;
  pending.reserve(keys.size());
  size_t waited = 0;
  uint32_t next_slot = 0;
  auto wait_oldest = [&] {
    Pending& p = pending[waited];
    statuses[p.idx] = p.file->Wait(p.ticket);
    if (statuses[p.idx].ok()) {
      stats_.user_bytes_read += (*values)[p.idx].size();
    }
    waited++;
  };
  for (size_t i = 0; i < keys.size(); i++) {
    ChargeCpu(options_.cpu_get_ns);
    stats_.user_gets++;
    const auto it = index_.find(keys[i]);
    if (it == index_.end() || it->second.tombstone) {
      statuses[i] = Status::NotFound("no such key");
      continue;
    }
    const Location& loc = it->second;
    (*values)[i].resize(loc.value_bytes);
    Pending p;
    p.idx = i;
    p.file = segments_.at(loc.segment).file;
    const uint32_t queue =
        options_.io_queue + (next_slot++ % static_cast<uint32_t>(depth));
    p.ticket = p.file->SubmitReadAt(loc.value_offset, loc.value_bytes,
                                    (*values)[i].data(), queue,
                                    sim::IoClass::kForegroundRead);
    pending.push_back(p);
    if (pending.size() - waited >= static_cast<size_t>(depth)) {
      wait_oldest();
    }
  }
  while (waited < pending.size()) wait_oldest();
  return statuses;
}

kv::ReadHandle AlogStore::ReadAsync(std::string_view key,
                                    std::string* value) {
  return kv::AsyncRead(options_.clock, options_.io_queue,
                       [&] { return Get(key, value); });
}

Status AlogStore::MaybeGc() {
  if (replaying_) return Status::OK();
  // Full-segment collections, run inline with the triggering write (the
  // log engine's analog of compaction pacing). Two triggers:
  //  - dead-ratio: sealed dead bytes exceed gc_trigger of sealed payload
  //    (an O(1) check against the running sealed counters);
  //  - space pressure: the filesystem is nearly full, so collect any
  //    reclaimable segment even below the ratio (the WA cost of GC at
  //    high utilization is the log engine's version of SSD overprovision
  //    pressure). A collection needs headroom to rewrite the victim's
  //    live data before its file is deleted, hence the early threshold;
  //    because that threshold spans several segments, the filesystem is
  //    only consulted after a segment roll, not on every write.
  for (;;) {
    if (sealed_payload_bytes_ == 0) return Status::OK();
    const uint64_t dead = sealed_payload_bytes_ - sealed_live_bytes_;
    const bool over_trigger =
        static_cast<double>(dead) >
        options_.gc_trigger * static_cast<double>(sealed_payload_bytes_);
    if (!over_trigger) {
      if (!pressure_check_due_) return Status::OK();
      const fs::FsStats fs_stats = fs_->GetStats();
      const bool space_pressure =
          fs_stats.free_bytes <
          std::max<uint64_t>(4 * options_.segment_bytes,
                             fs_stats.capacity_bytes / 32);
      if (!space_pressure) {
        pressure_check_due_ = false;
        return Status::OK();
      }
    }
    // The coldest segment: highest dead ratio, oldest on ties. A segment
    // with nothing dead reclaims nothing — if none qualifies, further
    // writes legitimately run the store out of space.
    uint64_t victim = 0;
    double worst = 0.0;
    for (const auto& [id, seg] : segments_) {
      if (!seg.sealed || seg.payload_bytes == 0 ||
          seg.live_bytes == seg.payload_bytes) {
        continue;
      }
      const double ratio =
          static_cast<double>(seg.payload_bytes - seg.live_bytes) /
          static_cast<double>(seg.payload_bytes);
      if (ratio > worst) {
        worst = ratio;
        victim = id;
      }
    }
    if (victim == 0) {
      pressure_check_due_ = false;
      return Status::OK();
    }
    PTSB_RETURN_IF_ERROR(CollectSegment(victim));
  }
}

Status AlogStore::CollectSegment(uint64_t id) {
  const auto seg_it = segments_.find(id);
  PTSB_CHECK(seg_it != segments_.end() && seg_it->second.sealed);
  // Dropping a tombstone is safe only when no older record for its key can
  // survive it. The index points at the newest record per key, so every
  // other record for the key is older; if this is the oldest segment they
  // all live here and die with the file. Otherwise the tombstone must move
  // forward to keep shadowing them through future replays.
  const bool oldest = segments_.begin()->first == id;

  // Finding the victim's entries costs a full index walk. Collections are
  // rare (once per segment lifetime) and simulation-scale indexes are
  // small; a per-segment key set would shrink this to the victim's size
  // at a permanent memory cost per entry.
  struct Ref {
    std::string key;
    Location loc;
  };
  std::vector<Ref> refs;
  refs.reserve(seg_it->second.live_entries);
  for (const auto& [key, loc] : index_) {
    if (loc.segment == id) refs.push_back({key, loc});
  }
  // Read live values in file order (sequential on a real device).
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.loc.value_offset < b.loc.value_offset;
  });

  kv::WriteBatch batch;
  if (pool_ != nullptr) {
    // Partitioned read phase: the victim's live values are read on the
    // pool's lanes — contiguous file-order chunks, one per lane, so a
    // collection's reads overlap across SSD channels. The batch is then
    // assembled in the same ref order as the serial path, so contents,
    // record framing and stats are identical.
    std::vector<size_t> live;
    for (size_t i = 0; i < refs.size(); i++) {
      if (!refs[i].loc.tombstone) live.push_back(i);
    }
    std::vector<std::string> values(refs.size());
    const int lanes = pool_->lanes();
    const size_t per =
        (live.size() + static_cast<size_t>(lanes) - 1) /
        std::max<size_t>(1, static_cast<size_t>(lanes));
    for (int l = 0; l < lanes && per > 0; l++) {
      const size_t begin = static_cast<size_t>(l) * per;
      if (begin >= live.size()) break;
      const size_t end = std::min(live.size(), begin + per);
      kv::BackgroundResult r = pool_->Run(l, [&, begin, end]() -> Status {
        for (size_t j = begin; j < end; j++) {
          const Ref& ref = refs[live[j]];
          std::string* out = &values[live[j]];
          out->resize(ref.loc.value_bytes);
          PTSB_ASSIGN_OR_RETURN(
              const uint64_t got,
              seg_it->second.file->ReadAt(ref.loc.value_offset,
                                          ref.loc.value_bytes, out->data()));
          if (got != ref.loc.value_bytes) {
            return Status::Corruption("short GC value read");
          }
        }
        return Status::OK();
      });
      stats_.time_background_ns += r.busy_ns;
      PTSB_RETURN_IF_ERROR(r.status);
    }
    for (size_t i = 0; i < refs.size(); i++) {
      const Ref& r = refs[i];
      if (r.loc.tombstone) {
        if (oldest) {
          ReleaseLocation(r.loc);
          index_.erase(r.key);
        } else {
          batch.Delete(r.key);
        }
        continue;
      }
      stats_.gc_bytes_read += r.loc.value_bytes;
      batch.Put(r.key, values[i]);
    }
  } else {
    std::string value;
    for (const Ref& r : refs) {
      if (r.loc.tombstone) {
        if (oldest) {
          ReleaseLocation(r.loc);
          index_.erase(r.key);
        } else {
          batch.Delete(r.key);
        }
        continue;
      }
      value.resize(r.loc.value_bytes);
      PTSB_ASSIGN_OR_RETURN(
          const uint64_t got,
          seg_it->second.file->ReadAt(r.loc.value_offset, r.loc.value_bytes,
                                      value.data()));
      if (got != r.loc.value_bytes) {
        return Status::Corruption("short GC value read");
      }
      stats_.gc_bytes_read += r.loc.value_bytes;
      batch.Put(r.key, value);
    }
  }

  if (!batch.empty()) {
    // The victim's file is deleted below, so the rewritten live data must
    // be durable first: a crash with the GC record still in the unsynced
    // tail would drop it whole on replay (torn crc) while the durable
    // originals are already gone with the victim's file.
    auto apply = [&]() -> Status {
      PTSB_RETURN_IF_ERROR(ApplyBatchRecord(batch, /*gc=*/true));
      unsynced_bytes_ = 0;
      return segments_.at(active_id_).file->Sync();
    };
    if (pool_ != nullptr) {
      // The rewrite depends on every lane's reads; it runs on lane 0
      // after a background-side barrier (the foreground does not wait).
      pool_->Barrier();
      kv::BackgroundResult r = pool_->Run(0, apply);
      stats_.time_background_ns += r.busy_ns;
      PTSB_RETURN_IF_ERROR(r.status);
    } else {
      PTSB_RETURN_IF_ERROR(apply());
    }
  }

  const SegmentInfo& collected = segments_.at(id);
  PTSB_CHECK_EQ(collected.live_entries, 0u)
      << "collected segment still referenced";
  sealed_payload_bytes_ -= collected.payload_bytes;
  sealed_live_bytes_ -= collected.live_bytes;
  if (seg_pins_.count(id) != 0) {
    // A live snapshot still reads values out of this file: keep it as a
    // zombie (and account its bytes) until the last pin drops.
    ZombieSegment z;
    z.file = collected.file;
    z.file_bytes = collected.file->size();
    stats_.snapshot_pinned_bytes += z.file_bytes;
    zombie_segments_.emplace(id, z);
  } else if (pool_ != nullptr) {
    // Partitioned mode: the deletion orders after the rewrite on lane 0
    // (file metadata work stays on the background timeline).
    kv::BackgroundResult r = pool_->Run(
        0, [&] { return fs_->Delete(SegmentFileName(dir_, id)); });
    stats_.time_background_ns += r.busy_ns;
    PTSB_RETURN_IF_ERROR(r.status);
  } else {
    PTSB_RETURN_IF_ERROR(fs_->Delete(SegmentFileName(dir_, id)));
  }
  segments_.erase(id);
  return Status::OK();
}

fs::File* AlogStore::SegmentFile(uint64_t id) const {
  const auto it = segments_.find(id);
  if (it != segments_.end()) return it->second.file;
  const auto z = zombie_segments_.find(id);
  PTSB_CHECK(z != zombie_segments_.end()) << "segment " << id << " gone";
  return z->second.file;
}

// Ordered cursor over the index; values are read lazily from the segment
// files as the cursor positions. Holds a live std::map iterator, so any
// write to the store invalidates it (appends retarget the index, GC
// deletes segment files) — the same contract as the other engines.
class AlogStore::OrderedIterator : public kv::KVStore::Iterator {
 public:
  explicit OrderedIterator(AlogStore* store)
      : store_(store),
        epoch_(store->write_epoch_),
        pos_(store->index_.end()) {}

  void SeekToFirst() override {
    CheckEpoch();
    Position(store_->index_.begin());
  }
  void Seek(std::string_view target) override {
    CheckEpoch();
    Position(store_->index_.lower_bound(target));
  }
  bool Valid() const override {
    CheckEpoch();
    return valid_;
  }

  void Next() override {
    CheckEpoch();
    if (!valid_) return;
    Position(std::next(pos_));
  }

  std::string_view key() const override {
    CheckEpoch();
    return pos_->first;
  }
  std::string_view value() const override {
    CheckEpoch();
    return value_;
  }
  Status status() const override { return status_; }

 private:
  using IndexIter = std::map<std::string, Location, std::less<>>::iterator;

  // Debug-build fail-fast on use-after-write: appends retarget the index
  // node this cursor holds and GC deletes the segment files it reads
  // from, so continuing would silently read stale (or freed) state.
  void CheckEpoch() const {
    PTSB_DCHECK(epoch_ == store_->write_epoch_)
        << "alog iterator used after a write to the store; iterators "
           "observe the store as of creation and are invalidated by "
           "writes (create, consume, discard)";
  }

  void Position(IndexIter it) {
    valid_ = false;
    if (!status_.ok()) return;
    while (it != store_->index_.end() && it->second.tombstone) ++it;
    if (it == store_->index_.end()) return;  // clean end-of-data
    pos_ = it;
    const Location& loc = it->second;
    value_.resize(loc.value_bytes);
    auto got = store_->segments_.at(loc.segment)
                   .file->ReadAt(loc.value_offset, loc.value_bytes,
                                 value_.data());
    if (!got.ok()) {
      status_ = got.status();
      return;
    }
    if (*got != loc.value_bytes) {
      status_ = Status::Corruption("short value read");
      return;
    }
    store_->stats_.user_bytes_read += pos_->first.size() + value_.size();
    valid_ = true;
  }

  AlogStore* store_;
  const uint64_t epoch_;  // store_->write_epoch_ at creation
  IndexIter pos_;
  std::string value_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> AlogStore::NewIterator() {
  PTSB_CHECK(!closed_);
  // Construction excludes in-flight commits; iteration itself still
  // requires a quiesced writer (epoch-checked).
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<OrderedIterator>(this);
      });
}

// A frozen copy of the index plus pins on every segment existing at
// creation. Segments are append-only, so the copied locations stay
// readable as long as the files exist; the pins defer GC's file deletion
// (zombies) until the last pinning snapshot drops. Contract (as in the
// other engines): the snapshot must outlive cursors created from it and
// must be released before the store is destroyed.
class AlogStore::SnapshotImpl : public kv::Snapshot {
 public:
  explicit SnapshotImpl(AlogStore* store) : store_(store) {}
  ~SnapshotImpl() override { store_->ReleaseSnapshot(*this); }
  uint64_t sequence() const override { return seq_; }

  AlogStore* store_;
  uint64_t seq_ = 0;  // write_epoch_ at creation (opaque ordering token)
  std::map<std::string, Location, std::less<>> index_;
  std::vector<uint64_t> pinned_;  // segment ids pinned at creation
};

StatusOr<std::shared_ptr<const kv::Snapshot>> AlogStore::GetSnapshot() {
  PTSB_CHECK(!closed_);
  return write_group_.RunExclusive(
      [&]() -> StatusOr<std::shared_ptr<const kv::Snapshot>> {
        auto snap = std::make_shared<SnapshotImpl>(this);
        snap->seq_ = write_epoch_;
        // Full copy: the index IS the engine's version state, and the
        // engine keeps no historical versions to share.
        snap->index_ = index_;
        snap->pinned_.reserve(segments_.size());
        for (const auto& [id, seg] : segments_) {
          snap->pinned_.push_back(id);
          seg_pins_[id]++;
        }
        stats_.snapshots_created++;
        stats_.snapshots_open++;
        return std::shared_ptr<const kv::Snapshot>(std::move(snap));
      });
}

void AlogStore::UnpinSegment(uint64_t id) {
  auto it = seg_pins_.find(id);
  PTSB_CHECK(it != seg_pins_.end());
  if (--it->second > 0) return;
  seg_pins_.erase(it);
  const auto z = zombie_segments_.find(id);
  if (z == zombie_segments_.end()) return;  // still a live segment
  stats_.snapshot_pinned_bytes -= z->second.file_bytes;
  const Status s = fs_->Delete(SegmentFileName(dir_, id));
  PTSB_CHECK(s.ok()) << "zombie segment delete failed: " << s.ToString();
  zombie_segments_.erase(z);
}

void AlogStore::ReleaseSnapshot(const SnapshotImpl& snap) {
  write_group_.RunExclusive([&] {
    for (const uint64_t id : snap.pinned_) UnpinSegment(id);
    stats_.snapshots_open--;
  });
}

Status AlogStore::SnapshotGetInternal(const SnapshotImpl& snap,
                                      std::string_view key,
                                      std::string* value) {
  ChargeCpu(options_.cpu_get_ns);
  stats_.user_gets++;
  const auto it = snap.index_.find(key);
  if (it == snap.index_.end()) return Status::NotFound("no such key");
  if (it->second.tombstone) return Status::NotFound("deleted");
  const Location& loc = it->second;
  value->resize(loc.value_bytes);
  PTSB_ASSIGN_OR_RETURN(
      const uint64_t got,
      SegmentFile(loc.segment)
          ->ReadAt(loc.value_offset, loc.value_bytes, value->data()));
  if (got != loc.value_bytes) return Status::Corruption("short value read");
  stats_.user_bytes_read += value->size();
  return Status::OK();
}

Status AlogStore::Get(const kv::ReadOptions& opts, std::string_view key,
                      std::string* value) {
  PTSB_CHECK(!closed_);
  if (opts.snapshot == nullptr) return Get(key, value);
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  return write_group_.RunExclusive(
      [&] { return SnapshotGetInternal(*snap, key, value); });
}

// Ordered cursor over a snapshot's frozen index copy. The index it walks
// is owned by the snapshot (immutable), so concurrent writes never move
// it — no write-epoch check. Each movement runs under the
// commit-exclusion lock (segment reads share the File substrate with
// commits), but the cursor stays valid across writes made between
// movements. With readahead > 1, the next span of value reads is
// submitted across foreground-read lanes before any is waited, so their
// virtual device time overlaps.
class AlogStore::SnapIterator : public kv::KVStore::Iterator {
 public:
  SnapIterator(AlogStore* store, const SnapshotImpl* snap, int readahead)
      : store_(store),
        snap_(snap),
        span_(readahead > 1 ? readahead : 1),
        depth_(std::min<int>(span_,
                             std::max(1, store->options_.read_queue_depth))),
        pos_(snap->index_.end()) {}

  void SeekToFirst() override {
    store_->write_group_.RunExclusive(
        [&] { Position(snap_->index_.begin()); });
  }
  void Seek(std::string_view target) override {
    store_->write_group_.RunExclusive(
        [&] { Position(snap_->index_.lower_bound(target)); });
  }
  void Next() override {
    if (!valid_) return;
    store_->write_group_.RunExclusive([&] { Position(std::next(pos_)); });
  }
  bool Valid() const override { return valid_; }
  std::string_view key() const override { return pos_->first; }
  std::string_view value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  using ConstIter =
      std::map<std::string, Location, std::less<>>::const_iterator;

  void Position(ConstIter it) {
    valid_ = false;
    if (!status_.ok()) return;
    while (it != snap_->index_.end() && it->second.tombstone) ++it;
    if (it == snap_->index_.end()) return;  // clean end-of-data
    if (!ready_.empty() && ready_.front().first == it) {
      value_ = std::move(ready_.front().second);
      ready_.pop_front();
    } else {
      ready_.clear();  // a Seek jumped off the prefetched run
      if (!LoadSpan(it)) return;
    }
    pos_ = it;
    store_->stats_.user_bytes_read += it->first.size() + value_.size();
    valid_ = true;
  }

  // Reads the value at `first` into value_; with readahead, also submits
  // the following span of value reads across lanes before waiting any,
  // caching the extras in ready_ for upcoming Next() calls.
  bool LoadSpan(ConstIter first) {
    if (span_ <= 1 || depth_ <= 1 || store_->options_.clock == nullptr) {
      return ReadValue(first, &value_);
    }
    std::vector<ConstIter> batch;
    batch.reserve(static_cast<size_t>(span_));
    for (ConstIter it = first;
         it != snap_->index_.end() &&
         batch.size() < static_cast<size_t>(span_);
         ++it) {
      if (!it->second.tombstone) batch.push_back(it);
    }
    std::vector<std::string> bufs(batch.size());
    std::vector<std::pair<fs::File*, block::IoTicket>> inflight(batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
      const Location& loc = batch[i]->second;
      bufs[i].resize(loc.value_bytes);
      fs::File* file = store_->SegmentFile(loc.segment);
      inflight[i] = {
          file,
          file->SubmitReadAt(
              loc.value_offset, loc.value_bytes, bufs[i].data(),
              store_->options_.io_queue +
                  static_cast<uint32_t>(i % static_cast<size_t>(depth_)))};
    }
    for (size_t i = 0; i < batch.size(); i++) {
      const Status s = inflight[i].first->Wait(inflight[i].second);
      if (!s.ok() && status_.ok()) status_ = s;
    }
    if (!status_.ok()) return false;
    value_ = std::move(bufs[0]);
    for (size_t i = 1; i < batch.size(); i++) {
      ready_.emplace_back(batch[i], std::move(bufs[i]));
    }
    return true;
  }

  bool ReadValue(ConstIter it, std::string* out) {
    const Location& loc = it->second;
    out->resize(loc.value_bytes);
    auto got = store_->SegmentFile(loc.segment)
                   ->ReadAt(loc.value_offset, loc.value_bytes, out->data());
    if (!got.ok()) {
      status_ = got.status();
      return false;
    }
    if (*got != loc.value_bytes) {
      status_ = Status::Corruption("short value read");
      return false;
    }
    return true;
  }

  AlogStore* store_;
  const SnapshotImpl* snap_;
  const int span_;   // values per prefetch batch
  const int depth_;  // submission lanes used per batch
  ConstIter pos_;
  std::string value_;
  std::deque<std::pair<ConstIter, std::string>> ready_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<kv::KVStore::Iterator> AlogStore::NewIterator(
    const kv::ReadOptions& opts) {
  PTSB_CHECK(!closed_);
  if (opts.snapshot == nullptr) {
    // Readahead is a snapshot-cursor concern here: the live cursor's
    // epoch contract already requires a quiesced writer.
    return NewIterator();
  }
  const auto* snap = static_cast<const SnapshotImpl*>(opts.snapshot);
  PTSB_CHECK(snap->store_ == this) << "snapshot from a different store";
  return write_group_.RunExclusive(
      [&]() -> std::unique_ptr<kv::KVStore::Iterator> {
        stats_.user_scans++;
        return std::make_unique<SnapIterator>(this, snap, opts.readahead);
      });
}

Status AlogStore::Flush() {
  PTSB_CHECK(!closed_);
  JoinBackgroundWork();  // durability waits out in-flight GC rewrites
  if (active_id_ != 0) {
    PTSB_RETURN_IF_ERROR(segments_.at(active_id_).file->Sync());
  }
  return Status::OK();
}

Status AlogStore::Close() {
  if (closed_) return Status::OK();
  JoinBackgroundWork();
  if (active_id_ != 0) {
    SegmentInfo& seg = segments_.at(active_id_);
    PTSB_RETURN_IF_ERROR(seg.file->Sync());
    PTSB_RETURN_IF_ERROR(seg.file->ShrinkToFit());
    if (seg.payload_bytes == 0) {
      // Nothing was ever appended; don't leave an empty segment behind.
      PTSB_RETURN_IF_ERROR(fs_->Delete(SegmentFileName(dir_, active_id_)));
      segments_.erase(active_id_);
    }
    active_id_ = 0;
  }
  closed_ = true;
  return Status::OK();
}

uint64_t AlogStore::DiskBytesUsed() const {
  uint64_t total = 0;
  for (const std::string& name : fs_->List(dir_ + "/")) {
    auto size = fs_->FileSize(name);
    if (size.ok()) total += *size;
  }
  return total;
}

uint64_t AlogStore::LiveKeys() const {
  uint64_t n = 0;
  for (const auto& [key, loc] : index_) {
    if (!loc.tombstone) n++;
  }
  return n;
}

uint64_t AlogStore::DeadBytes() const {
  // Recomputed from scratch (tests cross-check the running counters the
  // GC trigger uses against this).
  uint64_t dead = 0;
  for (const auto& [id, seg] : segments_) {
    if (seg.sealed) dead += seg.payload_bytes - seg.live_bytes;
  }
  PTSB_DCHECK(dead == sealed_payload_bytes_ - sealed_live_bytes_);
  return dead;
}

std::string AlogStore::DebugString() const {
  std::string out = StrPrintf("AlogStore index=%zu keys  segments=%zu\n",
                              index_.size(), segments_.size());
  for (const auto& [id, seg] : segments_) {
    out += StrPrintf("  seg %06llu%s: payload=%s live=%s (%llu entries)\n",
                     static_cast<unsigned long long>(id),
                     seg.sealed ? "" : " (active)",
                     HumanBytes(seg.payload_bytes).c_str(),
                     HumanBytes(seg.live_bytes).c_str(),
                     static_cast<unsigned long long>(seg.live_entries));
  }
  return out;
}

namespace {

AlogOptions AlogOptionsFromEngineOptions(const kv::EngineOptions& eo) {
  AlogOptions o;
  o.segment_bytes = kv::ParamUint64(eo, "segment_bytes", o.segment_bytes);
  o.gc_trigger = kv::ParamDouble(eo, "gc_trigger", o.gc_trigger);
  o.sync_every_bytes =
      kv::ParamUint64(eo, "sync_every_bytes", o.sync_every_bytes);
  o.cpu_put_ns = kv::ParamInt64(eo, "cpu_put_ns", o.cpu_put_ns);
  o.cpu_get_ns = kv::ParamInt64(eo, "cpu_get_ns", o.cpu_get_ns);
  o.max_write_group_bytes = kv::ParamUint64(eo, "max_write_group_bytes",
                                            o.max_write_group_bytes);
  o.read_queue_depth =
      kv::ParamInt(eo, "read_queue_depth", o.read_queue_depth);
  o.background_io = kv::ParamBool(eo, "background_io", o.background_io);
  o.compaction_parallelism =
      kv::ParamInt(eo, "compaction_parallelism", o.compaction_parallelism);
  o.clock = eo.clock;
  o.io_queue = eo.io_queue;
  o.background_queue = eo.background_queue;
  return o;
}

}  // namespace

void RegisterAlogEngine() {
  kv::EngineRegistry::Global().Register(
      "alog",
      [](const kv::EngineOptions& eo)
          -> StatusOr<std::unique_ptr<kv::KVStore>> {
        auto opened =
            AlogStore::Open(eo.fs, AlogOptionsFromEngineOptions(eo),
                            eo.root.empty() ? "alog" : eo.root);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<kv::KVStore>(std::move(*opened));
      });
}

std::map<std::string, std::string> EncodeEngineParams(const AlogOptions& o) {
  std::map<std::string, std::string> p;
  p["segment_bytes"] = std::to_string(o.segment_bytes);
  p["gc_trigger"] = std::to_string(o.gc_trigger);
  p["sync_every_bytes"] = std::to_string(o.sync_every_bytes);
  p["cpu_put_ns"] = std::to_string(o.cpu_put_ns);
  p["cpu_get_ns"] = std::to_string(o.cpu_get_ns);
  p["max_write_group_bytes"] = std::to_string(o.max_write_group_bytes);
  p["read_queue_depth"] = std::to_string(o.read_queue_depth);
  p["background_io"] = o.background_io ? "1" : "0";
  p["compaction_parallelism"] = std::to_string(o.compaction_parallelism);
  return p;
}

std::map<std::string, std::string> ScaledEngineParams(uint64_t scale) {
  AlogOptions o;
  o.segment_bytes = std::max<uint64_t>(o.segment_bytes / scale, 64 << 10);
  return EncodeEngineParams(o);
}

}  // namespace ptsb::alog
