// Configuration of the append-only log engine. Defaults mirror the other
// engines' paper-scale sizing (64 MiB structural units); experiment presets
// divide segment_bytes by the simulation scale factor.
#ifndef PTSB_ALOG_OPTIONS_H_
#define PTSB_ALOG_OPTIONS_H_

#include <cstdint>

#include "sim/clock.h"

namespace ptsb::alog {

struct AlogOptions {
  // Target size of one segment file; the active segment is sealed and a
  // new one started once its payload reaches this.
  uint64_t segment_bytes = 64ull << 20;

  // Garbage collection starts when dead bytes across sealed segments
  // exceed this fraction of their total payload. The collector rewrites
  // the coldest (highest dead-ratio) segments until back under trigger.
  // Independently of the ratio, GC also runs whenever the filesystem is
  // nearly full, since a too-lazy trigger would otherwise run the store
  // out of space while holding reclaimable bytes.
  double gc_trigger = 0.5;

  // Explicit segment sync cadence. 0 = never sync explicitly (full
  // filesystem pages still reach the device as they fill, and the
  // buffered tail is lost on crash, like an unsynced WAL).
  uint64_t sync_every_bytes = 0;

  // CPU cost charged to the virtual clock per operation (0 if no clock).
  // The log engine does the least per-write work of the three engines: an
  // append plus one ordered-map update.
  int64_t cpu_put_ns = 5'000;
  int64_t cpu_get_ns = 6'000;

  // Cap on the merged byte size of one cross-thread commit group: a
  // leader folds waiting writers' batches into a single appended record
  // up to this many payload bytes (its own batch always commits
  // regardless). See kv::WriteGroup.
  uint64_t max_write_group_bytes = 1ull << 20;

  // Max in-flight MultiGet point lookups: each key's segment read is
  // submitted via fs::File::SubmitReadAt in its own foreground-read
  // lane, so up to this many independent segment reads overlap in
  // virtual device time across SSD channels. 1 (or no clock) =
  // sequential Gets.
  int read_queue_depth = 1;

  // Run segment GC on the engine's background submission lane (queue
  // `background_queue`, I/O class kBackground) instead of the user's
  // timeline: commits no longer absorb GC device time; Flush, Close and
  // SettleBackgroundWork wait it out explicitly. Off by default (the
  // paper's baseline).
  bool background_io = false;

  // Partitioned background GC: with background_io and a clock, a
  // collection's per-value segment reads are fanned across this many
  // background submission lanes (queue background_queue + i) via a
  // kv::BackgroundPool, so the reads overlap across SSD channels. The
  // rewrite record, sync and victim deletion stay on lane 0 (ordering
  // is unchanged). 1 = today's single-lane behavior. The name matches
  // the LSM engine's knob so one driver param reaches every engine.
  int compaction_parallelism = 1;

  // Optional virtual clock for CPU accounting (device time is charged by
  // the device itself).
  sim::SimClock* clock = nullptr;
  // Submission queue for WriteAsync commits (see kv::EngineOptions).
  uint32_t io_queue = 0;
  // Submission queue for the background lane (see kv::EngineOptions).
  uint32_t background_queue = 1;
};

}  // namespace ptsb::alog

#endif  // PTSB_ALOG_OPTIONS_H_
