// AlogStore: the append-only log engine (Bitcask-like). The limiting case
// of sequential-write friendliness among the testbed's engines: every
// mutation is an append to the active segment file, an in-memory sorted
// index (key -> segment/offset) serves point reads and ordered iteration,
// and a garbage collector rewrites the coldest segments once the dead-byte
// ratio across sealed segments exceeds a trigger. Where the LSM pays
// compaction and the B+Tree pays page writebacks, the log pays only GC —
// the third point of the paper's flash-friendliness trade-off space.
#ifndef PTSB_ALOG_ALOG_STORE_H_
#define PTSB_ALOG_ALOG_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alog/options.h"
#include "alog/segment.h"
#include "fs/filesystem.h"
#include "kv/background_pool.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_group.h"

namespace ptsb::alog {

class AlogStore : public kv::KVStore {
 public:
  // Opens (or creates) a store rooted at `dir` within `fs`. Recovery
  // replays every segment in file order, rebuilding the index; a torn
  // record tail stops that segment's replay (the normal crash case). All
  // pre-existing segments are sealed; new writes go to a fresh segment.
  static StatusOr<std::unique_ptr<AlogStore>> Open(fs::SimpleFs* fs,
                                                   const AlogOptions& options,
                                                   std::string dir = "alog");
  ~AlogStore() override;

  // kv::KVStore interface. Write is the group-commit path: the whole batch
  // becomes ONE appended record, then one index update pass; GC runs once
  // per batch when the dead-byte trigger is exceeded.
  Status Write(const kv::WriteBatch& batch) override;
  // Runs the commit in a submission lane on options().io_queue, so
  // back-to-back WriteAsync calls on distinct queues overlap in virtual
  // time (see kv::KVStore::WriteAsync).
  kv::WriteHandle WriteAsync(const kv::WriteBatch& batch) override;
  Status Get(std::string_view key, std::string* value) override;
  // Snapshot-aware point lookup: with a snapshot, consults the
  // snapshot's frozen index copy and reads the value from its (possibly
  // GC-deferred) segment file.
  Status Get(const kv::ReadOptions& opts, std::string_view key,
             std::string* value) override;
  // The index lookups run on the CPU; each hit's segment read is
  // submitted via fs::File::SubmitReadAt across read lanes at
  // options().read_queue_depth, so independent segment reads overlap in
  // virtual device time (see kv::KVStore::MultiGet).
  std::vector<Status> MultiGet(std::span<const std::string_view> keys,
                               std::vector<std::string>* values) override;
  // Runs the lookup in a foreground-read lane on options().io_queue (see
  // kv::KVStore::ReadAsync).
  kv::ReadHandle ReadAsync(std::string_view key, std::string* value) override;
  // Ordered cursor over the in-memory index, reading values lazily from
  // the segments. Invalidated by any write to the store (appends move the
  // index; GC deletes segment files).
  std::unique_ptr<kv::KVStore::Iterator> NewIterator() override;
  // With a snapshot: an ordered cursor over the snapshot's frozen index
  // copy, immune to concurrent writes (segments are append-only and the
  // snapshot's pins defer GC file deletion). opts.readahead > 1 batches
  // that many upcoming value reads per span across foreground-read
  // submission lanes (capped at read_queue_depth), so the segment reads
  // overlap in virtual device time. Without a snapshot, falls back to
  // the live cursor.
  std::unique_ptr<kv::KVStore::Iterator> NewIterator(
      const kv::ReadOptions& opts) override;
  // Freezes the current index (a full copy — the index IS the engine's
  // version state) and pins every current segment: GC may still collect
  // a pinned segment, but its file deletion is deferred until the last
  // pinning snapshot drops (tracked in snapshot_pinned_bytes).
  StatusOr<std::shared_ptr<const kv::Snapshot>> GetSnapshot() override;
  Status Flush() override;  // sync the active segment
  Status SettleBackgroundWork() override;
  Status Close() override;
  // Concurrent Write callers group-commit; point reads run under the
  // group's commit-exclusion lock. Iterators and lifecycle calls still
  // expect a quiesced store.
  bool SupportsConcurrentWriters() const override { return true; }
  kv::KvStoreStats GetStats() const override {
    return write_group_.RunExclusive([&] { return stats_; });
  }
  std::string Name() const override { return "alog(bitcask-like)"; }
  uint64_t DiskBytesUsed() const override;

  // Introspection for tests and benches.
  uint64_t SegmentCount() const { return segments_.size(); }
  uint64_t LiveKeys() const;
  // Dead payload bytes across sealed segments (what GC reclaims).
  uint64_t DeadBytes() const;
  std::string DebugString() const;

 private:
  class OrderedIterator;
  class SnapshotImpl;
  class SnapIterator;

  // Where the newest record for a key lives. Tombstones stay in the index
  // so GC can carry them forward past older shadowed puts (dropping one is
  // only safe while collecting the oldest segment; see CollectSegment).
  struct Location {
    uint64_t segment = 0;
    uint64_t value_offset = 0;
    uint32_t value_bytes = 0;
    uint32_t entry_bytes = 0;
    bool tombstone = false;
  };

  struct SegmentInfo {
    fs::File* file = nullptr;
    uint64_t payload_bytes = 0;  // sum of encoded entry bytes appended
    uint64_t live_bytes = 0;     // entries currently referenced by the index
    uint64_t live_entries = 0;
    bool sealed = false;
  };

  AlogStore(fs::SimpleFs* fs, const AlogOptions& options, std::string dir);

  // The commit function the write group's leader runs: the old Write
  // body, applied to the merged batch of `n_user_batches` user Writes.
  Status WriteInternal(const kv::WriteBatch& batch, size_t n_user_batches);
  // Get's body, run under the group's commit-exclusion lock.
  Status GetInternal(std::string_view key, std::string* value);
  // MultiGet's read fan-out, run under the group's commit-exclusion lock.
  std::vector<Status> MultiGetFanOut(std::span<const std::string_view> keys,
                                     std::vector<std::string>* values);

  static std::string SegmentFileName(const std::string& dir, uint64_t id);

  // Appends one framed record, rolling to a new segment first if the
  // active one is full. Returns the record's start offset in the (possibly
  // new) active segment. GC appends are accounted to gc_bytes_written,
  // user appends to wal_bytes_written (the log is both data and WAL).
  StatusOr<uint64_t> AppendRecord(std::string_view record, uint64_t payload,
                                  bool gc);
  // Appends the batch as ONE record (group commit) and points the index
  // at the new locations, in entry order (last entry wins on duplicates).
  Status ApplyBatchRecord(const kv::WriteBatch& batch, bool gc);
  Status RollSegment();

  // Points the index at `loc` for `key` (newest wins); the previously
  // indexed entry, if any, becomes dead in its segment. A tombstone for a
  // key with no surviving entries is dead immediately and not indexed.
  void ApplyToIndex(kv::WriteBatch::EntryKind kind, std::string_view key,
                    const Location& loc);
  void ReleaseLocation(const Location& loc);

  // Expands every kDeleteRange entry of `batch` into per-key tombstones
  // against the index overlaid with the batch's earlier entries, so the
  // appended record (and hence crash replay) carries plain tombstones.
  // Returns the expanded batch; `*changed` says whether expansion
  // happened (false: append `batch` itself).
  kv::WriteBatch ExpandRangeDeletes(const kv::WriteBatch& batch,
                                    bool* changed) const;

  // Snapshot Get's body, run under the group's commit-exclusion lock.
  Status SnapshotGetInternal(const SnapshotImpl& snap, std::string_view key,
                             std::string* value);
  // Called by ~SnapshotImpl: unpins the snapshot's segments, deleting
  // any zombie whose last pin dropped.
  void ReleaseSnapshot(const SnapshotImpl& snap);
  void UnpinSegment(uint64_t id);
  // The file backing segment `id`: live (segments_) or GC-collected but
  // snapshot-pinned (zombie_segments_).
  fs::File* SegmentFile(uint64_t id) const;

  // Rewrites every live entry (and surviving tombstone) of one sealed
  // segment to the active head, then deletes its file — unless a
  // snapshot pins it, in which case the file lingers as a zombie until
  // the last pin drops.
  Status CollectSegment(uint64_t id);
  Status MaybeGc();
  // MaybeGc on the background lane when background_io is on (and not
  // inside an enclosing lane); the foreground clock does not advance.
  Status RunGc();
  // AdvanceTo the background lane's completion horizon: the foreground
  // explicitly waiting out in-flight GC (Flush/Close/Settle).
  void JoinBackgroundWork();

  void ChargeCpu(int64_t ns) const;

  fs::SimpleFs* fs_;
  AlogOptions options_;
  std::string dir_;

  std::map<std::string, Location, std::less<>> index_;
  std::map<uint64_t, SegmentInfo> segments_;  // ordered by segment id
  uint64_t active_id_ = 0;                    // 0 = no active segment yet
  uint64_t next_segment_id_ = 1;
  uint64_t unsynced_bytes_ = 0;
  // Running sums over the sealed segments, so the GC trigger check is
  // O(1) per write instead of a scan of segments_.
  uint64_t sealed_payload_bytes_ = 0;
  uint64_t sealed_live_bytes_ = 0;
  bool pressure_check_due_ = true;  // re-check fs headroom at next GC pass
  bool replaying_ = false;
  // Completion time of the last background-lane GC span (background_io);
  // foreground waits join it via JoinBackgroundWork().
  int64_t background_horizon_ns_ = 0;
  // Lanes for partitioned GC (compaction_parallelism > 1 with
  // background_io and a clock): a collection's per-value reads fan out
  // across them. Created lazily; null in single-lane mode. When set,
  // RunGc dispatches through the pool instead of one enclosing
  // background span (nested lanes would collapse the fan-out).
  std::unique_ptr<kv::BackgroundPool> pool_;

  // Bumped by every Write (appends retarget the index; GC deletes
  // segments). Debug builds compare it against the value captured at
  // iterator creation to fail fast on use-after-write.
  uint64_t write_epoch_ = 0;
  // segment id -> number of live snapshots pinning it.
  std::map<uint64_t, int> seg_pins_;
  // GC-collected segments whose file deletion is deferred by pins.
  struct ZombieSegment {
    fs::File* file = nullptr;
    uint64_t file_bytes = 0;
  };
  std::map<uint64_t, ZombieSegment> zombie_segments_;
  kv::KvStoreStats stats_;
  // Cross-thread group commit queue; also provides the commit-exclusion
  // lock the read paths (and const stats snapshots) run under.
  mutable kv::WriteGroup write_group_;
  bool closed_ = false;
};

// Registers the "alog" engine factory with kv::EngineRegistry. Recognized
// params mirror AlogOptions field names ("segment_bytes", "gc_trigger",
// "sync_every_bytes", "cpu_put_ns", "cpu_get_ns"); the factory starts from
// default AlogOptions and applies overrides.
void RegisterAlogEngine();

// Encodes every numeric AlogOptions field into an EngineOptions param map
// (the inverse of what the factory parses); the clock is carried by
// EngineOptions itself, not the map.
std::map<std::string, std::string> EncodeEngineParams(const AlogOptions& o);

// Param map with structural sizes divided by the simulation scale factor
// (the analog of core::ScaledLsmOptions for drivers that shrink the
// paper-scale setup; the floor keeps segments a few filesystem pages).
std::map<std::string, std::string> ScaledEngineParams(uint64_t scale);

}  // namespace ptsb::alog

#endif  // PTSB_ALOG_ALOG_STORE_H_
