#include "alog/segment.h"

#include "util/crc32.h"
#include "util/encoding.h"

namespace ptsb::alog {

std::string EncodeRecord(const kv::WriteBatch& batch,
                         std::vector<EntryLayout>* layout) {
  std::string payload;
  payload.reserve(batch.ByteSize() + batch.Count() * 11);
  std::vector<EntryLayout> offsets;
  offsets.reserve(batch.Count());
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    const size_t entry_start = payload.size();
    payload.push_back(static_cast<char>(e.kind));
    PutVarint32(&payload, static_cast<uint32_t>(e.key.size()));
    payload.append(e.key);
    PutVarint32(&payload, static_cast<uint32_t>(e.value.size()));
    EntryLayout l;
    l.value_offset = payload.size();  // fixed up for the frame below
    l.value_bytes = static_cast<uint32_t>(e.value.size());
    payload.append(e.value);
    l.entry_bytes = static_cast<uint32_t>(payload.size() - entry_start);
    offsets.push_back(l);
  }

  std::string record;
  record.reserve(payload.size() + 9);
  PutFixed32(&record, MaskCrc(Crc32c(payload)));
  PutVarint32(&record, static_cast<uint32_t>(payload.size()));
  const uint64_t header = record.size();
  record.append(payload);
  if (layout != nullptr) {
    for (EntryLayout& l : offsets) l.value_offset += header;
    *layout = std::move(offsets);
  }
  return record;
}

Status ReplaySegment(
    fs::File* file, const std::function<void(const ReplayedEntry&)>& fn) {
  const uint64_t size = file->size();
  std::string data(size, '\0');
  PTSB_ASSIGN_OR_RETURN(const uint64_t got,
                        file->ReadAt(0, size, data.data()));
  std::string_view in(data.data(), got);
  uint64_t record_start = 0;
  while (!in.empty()) {
    uint32_t stored_crc, len;
    std::string_view record = in;
    if (!GetFixed32(&record, &stored_crc) || !GetVarint32(&record, &len) ||
        record.size() < len) {
      break;  // truncated tail: normal after a crash
    }
    const uint64_t header = static_cast<uint64_t>(in.size() - record.size());
    const std::string_view payload = record.substr(0, len);
    if (UnmaskCrc(stored_crc) != Crc32c(payload)) {
      break;  // torn record: stop replay here
    }
    // Parse the whole record before applying anything: a batch must replay
    // atomically, never as a prefix.
    std::vector<ReplayedEntry> entries;
    std::string_view p = payload;
    bool parsed_ok = !p.empty();
    while (!p.empty()) {
      const size_t entry_start = payload.size() - p.size();
      const auto kind = static_cast<kv::WriteBatch::EntryKind>(p[0]);
      if (kind != kv::WriteBatch::EntryKind::kPut &&
          kind != kv::WriteBatch::EntryKind::kDelete &&
          kind != kv::WriteBatch::EntryKind::kDeleteRange) {
        parsed_ok = false;
        break;
      }
      p.remove_prefix(1);
      uint32_t klen, vlen;
      if (!GetVarint32(&p, &klen) || p.size() < klen) {
        parsed_ok = false;
        break;
      }
      const std::string_view key = p.substr(0, klen);
      p.remove_prefix(klen);
      if (!GetVarint32(&p, &vlen) || p.size() < vlen) {
        parsed_ok = false;
        break;
      }
      ReplayedEntry e;
      e.kind = kind;
      e.key = key;
      e.value = p.substr(0, vlen);
      e.value_offset = record_start + header + (payload.size() - p.size());
      p.remove_prefix(vlen);
      e.entry_bytes =
          static_cast<uint32_t>((payload.size() - p.size()) - entry_start);
      entries.push_back(e);
    }
    if (!parsed_ok) break;  // crc passed but malformed: treat as torn
    for (const ReplayedEntry& e : entries) fn(e);
    record_start += header + len;
    in = record.substr(len);
  }
  return Status::OK();
}

}  // namespace ptsb::alog
