// Segment record codec for the append-only log engine. A segment file is a
// sequence of framed records, one record per write *batch* (group commit):
//   fixed32 masked-crc(payload) | varint32 len | payload
//   payload: (fixed8 op | varint32 klen | key | varint32 vlen | value)+
// The framing (crc + length) is paid once per batch, so the log byte
// overhead amortizes across batched entries exactly as in the LSM WAL and
// the B+Tree journal. Replay stops cleanly at the first truncated or
// corrupt record, which is what a post-crash tail looks like.
//
// Unlike a WAL, the segment IS the value store: the index keeps the file
// offset of each live value, so the codec reports where every entry's
// value landed inside the encoded record.
#ifndef PTSB_ALOG_SEGMENT_H_
#define PTSB_ALOG_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file.h"
#include "kv/write_batch.h"
#include "util/status.h"

namespace ptsb::alog {

// Where one batch entry sits inside its encoded record, relative to the
// record's first byte (the crc). entry_bytes is the entry's share of the
// payload — the unit of the engine's live/dead accounting.
struct EntryLayout {
  uint64_t value_offset = 0;  // first value byte, relative to record start
  uint32_t value_bytes = 0;
  uint32_t entry_bytes = 0;  // encoded entry size within the payload
};

// Encodes the whole batch as ONE framed record; layout (if non-null) gets
// one EntryLayout per batch entry, in order.
std::string EncodeRecord(const kv::WriteBatch& batch,
                         std::vector<EntryLayout>* layout);

// One decoded entry surfaced during replay. value_offset is absolute in
// the file (usable directly as an index location); entry_bytes matches
// what EncodeRecord accounted for this entry.
struct ReplayedEntry {
  kv::WriteBatch::EntryKind kind;
  std::string_view key;
  std::string_view value;
  uint64_t value_offset = 0;
  uint32_t entry_bytes = 0;
};

// Replays a segment file; invokes fn for every entry of every intact
// record in order. Returns OK even if the tail is truncated/corrupt (the
// normal crash case); a record parses atomically or not at all.
Status ReplaySegment(
    fs::File* file, const std::function<void(const ReplayedEntry&)>& fn);

}  // namespace ptsb::alog

#endif  // PTSB_ALOG_SEGMENT_H_
