// Scan-under-write stress battery: snapshot scans racing live writers.
//
// 4 writer threads each own a disjoint key slice and rewrite the WHOLE
// slice as one WriteBatch per round, stamping every value with the round
// number. 2 scanner threads concurrently take snapshots and scan. Because
// a batch commits atomically with respect to GetSnapshot (both serialize
// through the engine's write group), every snapshot must observe each
// writer at a whole-round boundary:
//
//  - re-scanning the SAME snapshot returns a byte-identical result;
//  - per key, the observed round never decreases across a scanner's
//    successive snapshots (sequence numbers are monotone);
//  - per writer, all keys of its slice carry the SAME round stamp —
//    except through the sharded router, whose composite snapshot is
//    per-shard atomic only (exactly Write's documented atomicity);
//  - every scan sees the full keyspace (no partial states);
//  - after the writers join, a final snapshot scan equals the serial
//    golden state (every writer at its last round).
//
// Runs over every engine cell (bare, sharded, cached). Carries the ctest
// "stress" label: the TSan matrix entry hunts races between the write
// group, snapshot refcounts and the iterator read paths.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "util/status.h"

namespace ptsb {
namespace {

constexpr size_t kWriters = 4;
constexpr uint64_t kKeysPerWriter = 48;
constexpr int kRounds = 10;
constexpr int kScansPerScanner = 6;
constexpr uint64_t kNumKeys = kWriters * kKeysPerWriter;

std::string ValueFor(size_t writer, int round, uint64_t key) {
  std::string v = "w" + std::to_string(writer) + ".r" +
                  std::to_string(round) + ".k" + std::to_string(key);
  v.resize(48, 'x');  // fixed size: keeps batch byte-pacing uniform
  return v;
}

// Parses the round stamp out of a ValueFor string.
int RoundOf(std::string_view value) {
  const size_t r = value.find(".r");
  const size_t k = value.find(".k");
  if (r == std::string_view::npos || k == std::string_view::npos) return -1;
  return std::stoi(std::string(value.substr(r + 2, k - r - 2)));
}

size_t WriterOf(uint64_t key_id) { return key_id / kKeysPerWriter; }

struct EngineConfig {
  std::string label;
  std::string engine;
  std::map<std::string, std::string> params;
  bool cross_shard_atomic;  // false for the sharded router
};

std::map<std::string, std::string> SmallParams(const std::string& engine) {
  if (engine == "lsm") {
    return {{"memtable_bytes", std::to_string(16 << 10)},
            {"l1_target_bytes", std::to_string(64 << 10)},
            {"sst_target_bytes", std::to_string(32 << 10)},
            {"block_bytes", "1024"}};
  }
  if (engine == "btree") {
    return {{"leaf_max_bytes", std::to_string(2 << 10)},
            {"internal_max_bytes", "512"},
            {"cache_bytes", std::to_string(16 << 10)},
            {"checkpoint_every_bytes", std::to_string(64 << 10)}};
  }
  if (engine == "alog") {
    return {{"segment_bytes", std::to_string(16 << 10)},
            {"gc_trigger", "0.4"}};
  }
  return {};
}

std::vector<EngineConfig> AllEngineConfigs() {
  kv::RegisterBuiltinEngines();
  std::vector<EngineConfig> configs;
  for (const std::string name : {"lsm", "btree", "alog"}) {
    configs.push_back({name, name, SmallParams(name), true});
  }
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = SmallParams(inner);
    params["shards"] = "3";
    params["inner_engine"] = inner;
    configs.push_back({"sharded/" + inner, "sharded", std::move(params),
                       false});
  }
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = SmallParams(inner);
    params["inner_engine"] = inner;
    params["write_buffer_bytes"] = std::to_string(8 << 10);
    params["read_cache_bytes"] = std::to_string(32 << 10);
    configs.push_back({"cached/" + inner, "cached", std::move(params), true});
  }
  return configs;
}

// One full scan through `snap`: collects (key_id, round) plus the raw
// concatenation for byte-identity comparison. Returns false on any
// malformed state (wrong key count, unparseable value).
bool ScanSnapshot(kv::KVStore* store, const kv::Snapshot* snap,
                  std::vector<int>* rounds, std::string* raw) {
  kv::ReadOptions opts;
  opts.snapshot = snap;
  auto it = store->NewIterator(opts);
  rounds->assign(kNumKeys, -1);
  raw->clear();
  uint64_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    raw->append(it->key());
    raw->append(it->value());
    const int round = RoundOf(it->value());
    if (round < 0) return false;
    if (n >= kNumKeys) return false;
    (*rounds)[n] = round;
    n++;
  }
  if (!it->status().ok()) return false;
  return n == kNumKeys;  // every scan sees the whole keyspace
}

TEST(ScanUnderWriteStress, SnapshotScansSeeWholeRoundsUnderLoad) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& label = config.label;
    block::MemoryBlockDevice dev(4096, 1 << 15);
    fs::SimpleFs fs(&dev, {});
    kv::EngineOptions options;
    options.engine = config.engine;
    options.fs = &fs;
    options.params = config.params;
    auto opened = kv::OpenStore(options);
    ASSERT_TRUE(opened.ok()) << label << ": " << opened.status().ToString();
    auto store = *std::move(opened);
    ASSERT_TRUE(store->SupportsConcurrentWriters()) << label;

    // Round 0 for every writer, so scanners always see a full keyspace.
    for (size_t w = 0; w < kWriters; w++) {
      kv::WriteBatch batch;
      for (uint64_t i = 0; i < kKeysPerWriter; i++) {
        const uint64_t id = w * kKeysPerWriter + i;
        batch.Put(kv::MakeKey(id), ValueFor(w, 0, id));
      }
      ASSERT_TRUE(store->Write(batch).ok()) << label;
    }

    std::atomic<bool> failed{false};
    std::atomic<int> writers_done{0};
    auto fail = [&](const std::string& what) {
      if (!failed.exchange(true)) {
        ADD_FAILURE() << label << ": " << what;
      }
    };

    std::vector<std::thread> threads;
    for (size_t w = 0; w < kWriters; w++) {
      threads.emplace_back([&, w] {
        for (int round = 1; round <= kRounds; round++) {
          kv::WriteBatch batch;
          for (uint64_t i = 0; i < kKeysPerWriter; i++) {
            const uint64_t id = w * kKeysPerWriter + i;
            batch.Put(kv::MakeKey(id), ValueFor(w, round, id));
          }
          if (!store->Write(batch).ok()) {
            fail("writer " + std::to_string(w) + " write error");
            return;
          }
        }
        writers_done.fetch_add(1);
      });
    }

    for (int s = 0; s < 2; s++) {
      threads.emplace_back([&] {
        std::vector<int> last_rounds(kNumKeys, -1);
        std::vector<int> rounds;
        std::string raw, raw2;
        for (int scan = 0; scan < kScansPerScanner && !failed.load(); scan++) {
          auto got = store->GetSnapshot();
          if (!got.ok()) {
            fail("GetSnapshot: " + got.status().ToString());
            return;
          }
          std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
          if (!ScanSnapshot(store.get(), snap.get(), &rounds, &raw)) {
            fail("snapshot scan saw a partial or malformed keyspace");
            return;
          }
          // Re-scan of the SAME snapshot: byte-identical.
          std::vector<int> rounds2;
          if (!ScanSnapshot(store.get(), snap.get(), &rounds2, &raw2) ||
              raw2 != raw) {
            fail("re-scan of one snapshot returned different bytes");
            return;
          }
          for (uint64_t id = 0; id < kNumKeys; id++) {
            // Monotone per key across this scanner's snapshots.
            if (rounds[id] < last_rounds[id]) {
              fail("key round moved backwards across snapshots");
              return;
            }
            last_rounds[id] = rounds[id];
          }
          if (config.cross_shard_atomic) {
            // Whole-round visibility: one stamp per writer slice.
            for (size_t w = 0; w < kWriters; w++) {
              const int first = rounds[w * kKeysPerWriter];
              for (uint64_t i = 1; i < kKeysPerWriter; i++) {
                if (rounds[w * kKeysPerWriter + i] != first) {
                  fail("torn round: writer " + std::to_string(w) +
                       " visible mid-batch");
                  return;
                }
              }
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_FALSE(failed.load()) << label;
    ASSERT_EQ(writers_done.load(), static_cast<int>(kWriters)) << label;

    // Final snapshot equals the serial golden: every writer at kRounds.
    auto got = store->GetSnapshot();
    ASSERT_TRUE(got.ok()) << label;
    std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
    kv::ReadOptions opts;
    opts.snapshot = snap.get();
    auto it = store->NewIterator(opts);
    uint64_t id = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next(), id++) {
      ASSERT_LT(id, kNumKeys) << label;
      EXPECT_EQ(it->key(), kv::MakeKey(id)) << label;
      EXPECT_EQ(it->value(), ValueFor(WriterOf(id), kRounds, id)) << label;
    }
    EXPECT_EQ(id, kNumKeys) << label;
    ASSERT_TRUE(it->status().ok()) << label;
    it.reset();
    snap.reset();

    // All pins released: the stats gauges return to zero.
    const kv::KvStoreStats stats = store->GetStats();
    EXPECT_EQ(stats.snapshots_open, 0u) << label;
    EXPECT_EQ(stats.snapshot_pinned_bytes, 0u) << label;
    EXPECT_GT(stats.snapshots_created, 0u) << label;
    ASSERT_TRUE(store->Close().ok()) << label;
  }
}

}  // namespace
}  // namespace ptsb
