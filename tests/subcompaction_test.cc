// Partitioned subcompactions: the range splitter's cut invariants, the
// K=1 vs K>1 visible-state contract at the store level, atomic install
// across reopen, and concurrent writers while every picked compaction is
// split across background lanes (the TSan target of this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "lsm/compaction.h"
#include "lsm/sst.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb {
namespace {

using lsm::EntryType;
using lsm::SplitCompactionRange;
using lsm::SstBuilder;
using lsm::SstReader;

class SplitCompactionRangeTest : public ::testing::Test {
 protected:
  // Builds one table of `n` sequential keys "k%06d" starting at `first`,
  // with small blocks so there are many cut anchors.
  std::unique_ptr<SstReader> BuildTable(const std::string& name, int first,
                                        int n, uint64_t block_bytes = 1024) {
    fs::File* file = *fs_.Create(name);
    SstBuilder builder(file, block_bytes, 10);
    for (int i = first; i < first + n; i++) {
      char key[16];
      snprintf(key, sizeof(key), "k%06d", i);
      EXPECT_TRUE(
          builder.Add(key, 1000 + i, EntryType::kPut, std::string(40, 'v'))
              .ok());
    }
    EXPECT_TRUE(builder.Finish().ok());
    auto reader = SstReader::Open(file);
    EXPECT_TRUE(reader.ok());
    return *std::move(reader);
  }

  block::MemoryBlockDevice dev_{4096, 1 << 14};
  fs::SimpleFs fs_{&dev_, {}};
};

TEST_F(SplitCompactionRangeTest, KOneAndTinyInputsDontSplit) {
  auto big = BuildTable("big.sst", 0, 400);
  EXPECT_TRUE(SplitCompactionRange({big.get()}, 1).empty());
  EXPECT_TRUE(SplitCompactionRange({big.get()}, 0).empty());
  // A single-block table has one anchor: nothing to cut.
  auto tiny = BuildTable("tiny.sst", 0, 4, 64 << 10);
  EXPECT_EQ(tiny->NumBlocks(), 1u);
  EXPECT_TRUE(SplitCompactionRange({tiny.get()}, 4).empty());
  EXPECT_TRUE(SplitCompactionRange({}, 4).empty());
}

TEST_F(SplitCompactionRangeTest, CutsAreOrderedBalancedBlockLastKeys) {
  // Two interleaved tables, as a real (inputs0, inputs1) pick would see.
  auto a = BuildTable("a.sst", 0, 400);
  auto b = BuildTable("b.sst", 200, 400);
  const std::vector<SstReader*> readers = {a.get(), b.get()};

  std::set<std::string> anchor_keys;
  uint64_t total = 0;
  for (const SstReader* r : readers) {
    for (size_t i = 0; i < r->NumBlocks(); i++) {
      anchor_keys.insert(r->BlockLastKey(i));
      total += r->BlockBytes(i);
    }
  }
  ASSERT_GT(anchor_keys.size(), 8u) << "need many anchors to cut";

  const std::vector<std::string> bounds = SplitCompactionRange(readers, 4);
  ASSERT_EQ(bounds.size(), 3u);
  for (size_t i = 0; i < bounds.size(); i++) {
    // Every boundary is some block's last key (all versions of one user
    // key stay in one subrange) and strictly below the top key (no
    // empty tail subrange).
    EXPECT_TRUE(anchor_keys.count(bounds[i])) << bounds[i];
    EXPECT_LT(bounds[i], *anchor_keys.rbegin());
    if (i > 0) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }

  // Byte balance: each subrange's anchor weight lands within 2x of the
  // ideal quarter (block granularity makes exact quarters impossible).
  std::vector<uint64_t> weight(4, 0);
  for (const SstReader* r : readers) {
    for (size_t i = 0; i < r->NumBlocks(); i++) {
      const std::string& key = r->BlockLastKey(i);
      size_t slot = 0;
      while (slot < bounds.size() && key > bounds[slot]) slot++;
      weight[slot] += r->BlockBytes(i);
    }
  }
  for (size_t s = 0; s < weight.size(); s++) {
    EXPECT_GT(weight[s], total / 8) << "subrange " << s << " too small";
    EXPECT_LT(weight[s], total / 2) << "subrange " << s << " too large";
  }
}

TEST_F(SplitCompactionRangeTest, RequestingMoreCutsThanAnchorsDegrades) {
  auto a = BuildTable("a.sst", 0, 40);  // a handful of blocks
  const std::vector<std::string> bounds =
      SplitCompactionRange({a.get()}, 64);
  // Never more interior bounds than k-1, never duplicates, never the top.
  EXPECT_LT(bounds.size(), 64u);
  for (size_t i = 1; i < bounds.size(); i++) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  for (const std::string& bound : bounds) {
    EXPECT_LT(bound, a->BlockLastKey(a->NumBlocks() - 1));
  }
}

// ---- Store-level contract ---------------------------------------------

std::map<std::string, std::string> TinyLsmParams(int parallelism) {
  return {{"memtable_bytes", std::to_string(8 << 10)},
          {"l1_target_bytes", std::to_string(32 << 10)},
          {"sst_target_bytes", std::to_string(16 << 10)},
          {"block_bytes", "1024"},
          {"compaction_parallelism", std::to_string(parallelism)}};
}

struct StoreHarness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<StoreHarness> OpenLsm(int parallelism) {
  kv::RegisterBuiltinEngines();
  auto h = std::make_unique<StoreHarness>();
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &h->fs;
  options.params = TinyLsmParams(parallelism);
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

TEST(SubcompactionStoreTest, ParallelContentsMatchSequential) {
  auto k1 = OpenLsm(1);
  auto k4 = OpenLsm(4);
  testing::ReferenceModel model1, model4;
  Rng rng1(0x5b11), rng4(0x5b11);
  testing::RunRandomOps(k1->store.get(), &model1, &rng1, 4000, 500, 120);
  testing::RunRandomOps(k4->store.get(), &model4, &rng4, 4000, 500, 120);
  ASSERT_TRUE(k1->store->SettleBackgroundWork().ok());
  ASSERT_TRUE(k4->store->SettleBackgroundWork().ok());

  // Same ops, same model; every key agrees and the full scans are
  // byte-identical.
  auto i1 = k1->store->NewIterator();
  auto i4 = k4->store->NewIterator();
  i1->SeekToFirst();
  i4->SeekToFirst();
  size_t n = 0;
  while (i1->Valid()) {
    ASSERT_TRUE(i4->Valid()) << "K=4 lost keys after " << n;
    EXPECT_EQ(i1->key(), i4->key());
    EXPECT_EQ(i1->value(), i4->value()) << i1->key();
    i1->Next();
    i4->Next();
    n++;
  }
  EXPECT_FALSE(i4->Valid()) << "K=4 has phantom keys";
  ASSERT_TRUE(i1->status().ok());
  ASSERT_TRUE(i4->status().ok());
  EXPECT_EQ(n, model1.size());
  testing::VerifyAll(k4->store.get(), model4);
  ASSERT_TRUE(k1->store->Close().ok());
  ASSERT_TRUE(k4->store->Close().ok());
}

TEST(SubcompactionStoreTest, AtomicInstallSurvivesReopen) {
  auto h = OpenLsm(4);
  testing::ReferenceModel model;
  Rng rng(0xa70b1c);
  testing::RunRandomOps(h->store.get(), &model, &rng, 4000, 400, 150);
  // Drain every pending compaction (all partitioned) and reopen: the
  // recovered manifest must describe exactly the installed outputs.
  ASSERT_TRUE(h->store->SettleBackgroundWork().ok());
  ASSERT_TRUE(h->store->Close().ok());
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &h->fs;
  options.params = TinyLsmParams(4);
  auto reopened = kv::OpenStore(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  h->store = *std::move(reopened);
  testing::VerifyAll(h->store.get(), model);
  size_t n = 0;
  auto it = h->store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(n, model.size()) << "reopen resurrected or lost keys";
  it.reset();
  ASSERT_TRUE(h->store->Close().ok());
}

// Concurrent writers while every compaction is partitioned: the commit
// path (write groups) and the subcompaction path (shared readers, one
// atomic install) interleave freely. Run under TSan via the stress
// label.
TEST(SubcompactionStressTest, ConcurrentWritersUnderParallelCompaction) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kKeysPerWriter = 400;
  auto h = OpenLsm(4);
  ASSERT_TRUE(h->store->SupportsConcurrentWriters());
  kv::KVStore* store = h->store.get();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      Rng rng(0x7ead + w);
      for (uint64_t i = 0; i < kKeysPerWriter; i++) {
        // Disjoint key slices per writer; re-put a quarter of them so
        // compactions see shadowed versions to drop.
        const uint64_t id = w * kKeysPerWriter + rng.Uniform(kKeysPerWriter);
        std::string value(100, '\0');
        rng.FillBytes(value.data(), value.size());
        if (!store->Put(kv::MakeKey(id), value).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  // One scanner racing the writers and their subcompactions. Bare
  // iterators are invalidated by any write, so each scan pins a
  // snapshot (the supported way to read while writers run).
  threads.emplace_back([&] {
    for (int scan = 0; scan < 20 && !failed.load(); scan++) {
      auto got = store->GetSnapshot();
      if (!got.ok()) {
        failed.store(true);
        return;
      }
      std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
      kv::ReadOptions opts;
      opts.snapshot = snap.get();
      auto it = store->NewIterator(opts);
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        if (!prev.empty() && std::string(it->key()) <= prev) {
          failed.store(true);
          return;
        }
        prev = std::string(it->key());
      }
      if (!it->status().ok()) {
        failed.store(true);
        return;
      }
    }
  });
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(store->SettleBackgroundWork().ok());
  // Every writer's slice is fully present (values raced, presence no).
  auto it = store->NewIterator();
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  ASSERT_TRUE(it->status().ok());
  EXPECT_GT(n, 0u);
  EXPECT_GT(store->GetStats().compaction_bytes_written, 0u)
      << "workload too small to compact: the race tested nothing";
  it.reset();
  ASSERT_TRUE(h->store->Close().ok());
}

}  // namespace
}  // namespace ptsb
