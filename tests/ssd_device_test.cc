// Tests for SsdDevice: content integrity, SMART accounting, and the timing
// model (cache stalls, sustained-bandwidth behavior, read costs).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/clock.h"
#include "ssd/precondition.h"
#include "ssd/profiles.h"
#include "ssd/ssd_device.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::ssd {
namespace {

SsdConfig TestConfig(uint64_t logical_mib = 16) {
  SsdConfig c;
  c.geometry.page_bytes = 4096;
  c.geometry.pages_per_block = 64;
  c.geometry.logical_bytes = logical_mib << 20;
  c.geometry.hardware_op_frac = 0.15;
  c.timing.cache_bytes = 1 << 20;
  c.timing.program_bw = 500e6;
  c.timing.host_write_bw = 2e9;
  c.timing.write_ack_latency_ns = 10'000;
  c.timing.read_latency_ns = 50'000;
  return c;
}

TEST(SsdDeviceTest, WriteReadRoundTrip) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  std::vector<uint8_t> out(4096 * 3), in(4096 * 3);
  Rng rng(1);
  rng.FillBytes(out.data(), out.size());
  ASSERT_TRUE(dev.Write(10, 3, out.data()).ok());
  ASSERT_TRUE(dev.Read(10, 3, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), out.size()), 0);
}

TEST(SsdDeviceTest, UnwrittenReadsZero) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  std::vector<uint8_t> in(4096, 0xff);
  ASSERT_TRUE(dev.Read(42, 1, in.data()).ok());
  for (uint8_t b : in) EXPECT_EQ(b, 0);
}

TEST(SsdDeviceTest, TrimZeroesContent) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  std::vector<uint8_t> buf(4096, 0xab);
  ASSERT_TRUE(dev.Write(5, 1, buf.data()).ok());
  ASSERT_TRUE(dev.Trim(5, 1).ok());
  ASSERT_TRUE(dev.Read(5, 1, buf.data()).ok());
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
  EXPECT_FALSE(dev.ftl().IsMapped(5));
}

TEST(SsdDeviceTest, BoundsChecked) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  std::vector<uint8_t> buf(4096);
  EXPECT_TRUE(dev.Read(dev.num_lbas(), 1, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(dev.Write(dev.num_lbas() - 1, 2, nullptr).IsInvalidArgument());
  EXPECT_TRUE(dev.Trim(dev.num_lbas(), 1).IsInvalidArgument());
}

TEST(SsdDeviceTest, SmartCountsHostAndNandBytes) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  ASSERT_TRUE(dev.Write(0, 8, nullptr).ok());
  const auto smart = dev.smart();
  EXPECT_EQ(smart.host_bytes_written, 8u * 4096);
  EXPECT_EQ(smart.nand_bytes_written, 8u * 4096);
  EXPECT_DOUBLE_EQ(smart.WaD(), 1.0);
}

TEST(SsdDeviceTest, WaDGrowsUnderRandomOverwrite) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  const uint64_t lbas = dev.num_lbas();
  for (uint64_t lba = 0; lba < lbas; lba++) {
    ASSERT_TRUE(dev.Write(lba, 1, nullptr).ok());
  }
  Rng rng(2);
  for (uint64_t i = 0; i < 3 * lbas; i++) {
    ASSERT_TRUE(dev.Write(rng.Uniform(lbas), 1, nullptr).ok());
  }
  EXPECT_GT(dev.smart().WaD(), 1.3);
}

TEST(SsdDeviceTest, PayloadFreeWritesAllocateNoContentMemory) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(64), &clock);
  ASSERT_TRUE(Precondition(&dev, 1.0).ok());
  EXPECT_EQ(dev.ContentMemoryBytes(), 0u);
}

TEST(SsdDeviceTest, WritesAdvanceClock) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  ASSERT_TRUE(dev.Write(0, 1, nullptr).ok());
  // At least the ack latency plus the bus transfer.
  EXPECT_GE(clock.NowNanos(), 10'000);
}

TEST(SsdDeviceTest, ReadsAdvanceClockByLatencyAndBandwidth) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  const int64_t t0 = clock.NowNanos();
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(dev.Read(0, 1, buf.data()).ok());
  EXPECT_GE(clock.NowNanos() - t0, 50'000);
}

TEST(SsdDeviceTest, SustainedWritesConvergeToProgramBandwidth) {
  // Write far more than the cache size; the long-run rate must approach
  // program_bw (no GC here: sequential overwrite).
  sim::SimClock clock;
  SsdConfig cfg = TestConfig(64);
  cfg.timing.cache_bytes = 1 << 20;
  cfg.timing.program_bw = 100e6;
  cfg.timing.host_write_bw = 2e9;
  SsdDevice dev(cfg, &clock);
  const uint64_t lbas = dev.num_lbas();
  uint64_t written = 0;
  for (int lap = 0; lap < 3; lap++) {
    for (uint64_t lba = 0; lba < lbas; lba += 16) {
      ASSERT_TRUE(dev.Write(lba, 16, nullptr).ok());
      written += 16 * 4096;
    }
  }
  const double rate =
      static_cast<double>(written) / clock.NowSeconds();  // bytes/s
  EXPECT_NEAR(rate, 100e6, 15e6);
}

TEST(SsdDeviceTest, BurstSmallerThanCacheIsFast) {
  sim::SimClock clock;
  SsdConfig cfg = TestConfig(64);
  cfg.timing.cache_bytes = 32 << 20;
  cfg.timing.program_bw = 50e6;   // slow flash
  cfg.timing.host_write_bw = 2e9; // fast bus
  cfg.timing.write_ack_latency_ns = 1000;
  SsdDevice dev(cfg, &clock);
  // 8 MiB burst into an empty 32 MiB cache: bus speed, not flash speed.
  const uint64_t pages = (8 << 20) / 4096;
  ASSERT_TRUE(dev.Write(0, pages, nullptr).ok());
  const double elapsed = clock.NowSeconds();
  EXPECT_LT(elapsed, 0.05);  // 8 MiB at 50 MB/s would take 0.16 s
}

TEST(SsdDeviceTest, CacheFullStallsWrites) {
  sim::SimClock clock;
  SsdConfig cfg = TestConfig(64);
  cfg.timing.cache_bytes = 1 << 20;
  cfg.timing.program_bw = 50e6;
  cfg.timing.host_write_bw = 2e9;
  SsdDevice dev(cfg, &clock);
  // 16 MiB sustained: must take ~flash time (0.32 s), not bus time.
  const uint64_t pages = (16 << 20) / 4096;
  ASSERT_TRUE(dev.Write(0, pages, nullptr).ok());
  EXPECT_GT(clock.NowSeconds(), 0.25);
}

TEST(SsdDeviceTest, FlushAdvancesClock) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  const int64_t t0 = clock.NowNanos();
  ASSERT_TRUE(dev.Flush().ok());
  EXPECT_GT(clock.NowNanos(), t0);
}

TEST(SsdDeviceTest, ClassBusyIsBacklogAdjustedPerClass) {
  // Under read/write contention on one channel, class_busy_ns must be a
  // true utilization: the unserved backend tail is deducted from the
  // backend (write) class, while read occupancy — always waited out —
  // stays fully elapsed. Exact-arithmetic timing: 10 us/page programs
  // and reads, 1 us/page bus, no ack/read latency, no interference.
  sim::SimClock clock;
  SsdConfig cfg = TestConfig(64);
  cfg.timing.cache_bytes = 8 << 20;
  cfg.timing.program_bw = 409.6e6;
  cfg.timing.host_write_bw = 4.096e9;
  cfg.timing.write_ack_latency_ns = 0;
  cfg.timing.read_latency_ns = 0;
  cfg.timing.read_bw = 409.6e6;
  cfg.timing.read_interference = 0;
  SsdDevice dev(cfg, &clock);

  // 256 cached pages book 2.56 ms of backend; the host only pays the
  // 256 us bus transfer. A 4-page read then runs to completion.
  ASSERT_TRUE(dev.Write(0, 256, nullptr).ok());
  ASSERT_EQ(clock.NowNanos(), 256'000);
  std::vector<uint8_t> buf(4096 * 4);
  ASSERT_TRUE(dev.Read(0, 4, buf.data()).ok());
  ASSERT_EQ(clock.NowNanos(), 296'000);

  const auto fw = static_cast<size_t>(sim::IoClass::kForegroundWrite);
  const auto fr = static_cast<size_t>(sim::IoClass::kForegroundRead);
  auto s = dev.channel_stats()[0];
  // Backlog = 2'560'000 booked - 296'000 elapsed; the write class is
  // the only backend class, so it absorbs the whole deduction.
  EXPECT_EQ(s.busy_ns, 296'000);
  EXPECT_EQ(s.class_busy_ns[fw], 296'000);
  EXPECT_EQ(s.class_busy_ns[fr], 40'000);  // fully elapsed
  // scheduled_ns is backlog-independent.
  EXPECT_EQ(s.scheduled_ns, 2'560'000);
  EXPECT_EQ(s.class_scheduled_ns[fw], 2'560'000);

  // Once the backlog drains, the write class's busy time converges to
  // its scheduled work; the read share does not move.
  clock.Advance(3'000'000);
  s = dev.channel_stats()[0];
  EXPECT_EQ(s.busy_ns, 2'560'000);
  EXPECT_EQ(s.class_busy_ns[fw], 2'560'000);
  EXPECT_EQ(s.class_busy_ns[fr], 40'000);
  EXPECT_EQ(s.scheduled_ns, 2'560'000);
}

TEST(PreconditionTest, TrimmedDeviceHasNoValidPages) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  ASSERT_TRUE(dev.Write(0, 100, nullptr).ok());
  ASSERT_TRUE(ApplyInitialState(&dev, InitialState::kTrimmed).ok());
  EXPECT_EQ(dev.ftl().GetStats().valid_pages, 0u);
}

TEST(PreconditionTest, PreconditionedDeviceIsFullAndScrambled) {
  sim::SimClock clock;
  SsdDevice dev(TestConfig(), &clock);
  ASSERT_TRUE(ApplyInitialState(&dev, InitialState::kPreconditioned).ok());
  const auto s = dev.ftl().GetStats();
  // Every logical page valid.
  EXPECT_EQ(s.valid_pages, dev.num_lbas());
  // Random phase forced garbage collection.
  EXPECT_GT(s.gc_pages_relocated, 0u);
  EXPECT_GT(dev.smart().WaD(), 1.0);
}

TEST(PreconditionTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::SimClock clock;
    SsdDevice dev(TestConfig(), &clock);
    PTSB_CHECK_OK(ApplyInitialState(&dev, InitialState::kPreconditioned, 99));
    return dev.ftl().GetStats().gc_pages_relocated;
  };
  EXPECT_EQ(run(), run());
}

TEST(ProfilesTest, ScalingDividesCapacityAndCache) {
  const auto full = MakeProfile(ProfileKind::kSsd1Enterprise,
                                kPaperDeviceBytes, 1);
  const auto scaled = MakeProfile(ProfileKind::kSsd1Enterprise,
                                  kPaperDeviceBytes, 100);
  EXPECT_EQ(full.geometry.logical_bytes, kPaperDeviceBytes);
  EXPECT_EQ(scaled.geometry.logical_bytes, kPaperDeviceBytes / 100);
  EXPECT_EQ(scaled.timing.cache_bytes, full.timing.cache_bytes / 100);
  // Latencies are not scaled.
  EXPECT_EQ(scaled.timing.read_latency_ns, full.timing.read_latency_ns);
}

TEST(ProfilesTest, NamesRoundTrip) {
  for (auto kind : {ProfileKind::kSsd1Enterprise, ProfileKind::kSsd2ConsumerQlc,
                    ProfileKind::kSsd3Optane}) {
    EXPECT_EQ(ProfileFromName(ProfileName(kind)), kind);
  }
}

TEST(ProfilesTest, Ssd3HasNoGcPressure) {
  // The Optane-like profile models in-place updates via huge OP: random
  // overwrites should keep WA-D essentially at 1.
  sim::SimClock clock;
  auto cfg = MakeProfile(ProfileKind::kSsd3Optane, 64ull << 20, 1);
  SsdDevice dev(cfg, &clock);
  const uint64_t lbas = dev.num_lbas();
  Rng rng(3);
  for (uint64_t i = 0; i < 2 * lbas; i++) {
    ASSERT_TRUE(dev.Write(rng.Uniform(lbas), 1, nullptr).ok());
  }
  EXPECT_LT(dev.smart().WaD(), 1.25);
}

}  // namespace
}  // namespace ptsb::ssd
