// The async multi-queue submission path: virtual-time submission lanes
// (sim::SimClock::BeginAsync), the block layer's SubmitWrite/SubmitRead,
// fs::File::SubmitAppend, per-channel overlap in ssd::SsdDevice, and the
// sharded store's queue_depth async dispatch. The headline properties:
//  - commands submitted on distinct queues from the same instant overlap
//    in virtual time (wait-all costs max, not sum) iff the device has
//    channels for them;
//  - synchronous calls are exactly submit-then-wait (identical timing);
//  - a multi-channel async sharded commit finishes EARLIER in simulated
//    device time than the serialized equivalent, with identical final
//    store contents — and deterministically so.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "fs/file.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"

namespace ptsb {
namespace {

ssd::SsdConfig SmallSsd(int channels, uint64_t cache_bytes = 0) {
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64ull << 20;
  cfg.channels = channels;
  // cache_bytes = 0 makes host writes synchronous with the channel
  // backend, so program time is visible in every command's latency and
  // overlap (or its absence) shows up directly in the clock.
  cfg.timing.cache_bytes = cache_bytes;
  return cfg;
}

TEST(SimClockLaneTest, LanesForkAndJoinByMax) {
  sim::SimClock clock;
  clock.Advance(1000);
  ASSERT_TRUE(clock.BeginAsync(3));
  EXPECT_TRUE(clock.InAsync());
  EXPECT_EQ(clock.AsyncQueue(), 3u);
  EXPECT_EQ(clock.NowNanos(), 1000);  // lane seeded with global now
  clock.Advance(500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  // Nested begin is refused: the inner submission runs in this lane.
  EXPECT_FALSE(clock.BeginAsync(7));
  EXPECT_EQ(clock.AsyncQueue(), 3u);
  const int64_t t1 = clock.EndAsync();
  EXPECT_EQ(t1, 1500);
  // Ending the lane did not touch the global clock.
  EXPECT_FALSE(clock.InAsync());
  EXPECT_EQ(clock.NowNanos(), 1000);

  // A second lane from the same instant overlaps the first: joining both
  // advances to the max, not the sum.
  ASSERT_TRUE(clock.BeginAsync(4));
  clock.Advance(200);
  const int64_t t2 = clock.EndAsync();
  clock.AdvanceTo(t1);
  clock.AdvanceTo(t2);
  EXPECT_EQ(clock.NowNanos(), 1500);
}

TEST(SimClockLaneTest, LanesAreThreadLocal) {
  sim::SimClock clock;
  ASSERT_TRUE(clock.BeginAsync(1));
  clock.Advance(700);
  std::thread other([&clock] {
    // This thread has no lane: it sees (and moves) the global clock.
    EXPECT_FALSE(clock.InAsync());
    EXPECT_EQ(clock.NowNanos(), 0);
    clock.Advance(50);
  });
  other.join();
  EXPECT_EQ(clock.NowNanos(), 700);  // lane view unaffected
  const int64_t done = clock.EndAsync();
  EXPECT_EQ(clock.NowNanos(), 50);  // global moved only by the other thread
  clock.AdvanceTo(done);
  // The join is a monotonic max with the other thread's progress, not a
  // sum: the lane's work overlapped it.
  EXPECT_EQ(clock.NowNanos(), 700);
}

// Submitting the same work on distinct queues of a multi-channel device
// must cost ~max of the command latencies; on a single channel it stays
// serialized. Content is identical either way.
TEST(SsdChannelTest, DistinctQueuesOverlapOnDistinctChannels) {
  constexpr uint64_t kPages = 512;  // 2 MiB per command
  const std::string payload(kPages * 4096, 'x');

  auto run = [&](int channels, bool async) -> int64_t {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallSsd(channels), &clock);
    if (async) {
      std::vector<block::IoTicket> tickets;
      for (uint32_t q = 0; q < 4; q++) {
        tickets.push_back(dev.SubmitWrite(
            q * kPages, kPages,
            reinterpret_cast<const uint8_t*>(payload.data()), q));
      }
      for (const auto& t : tickets) EXPECT_TRUE(dev.Wait(t).ok());
    } else {
      for (uint32_t q = 0; q < 4; q++) {
        EXPECT_TRUE(dev.Write(q * kPages, kPages,
                              reinterpret_cast<const uint8_t*>(
                                  payload.data()))
                        .ok());
      }
    }
    // Contents are applied at submit regardless of timing model.
    std::vector<uint8_t> page(4096);
    EXPECT_TRUE(dev.Read(3 * kPages, 1, page.data()).ok());
    EXPECT_EQ(page[0], 'x');
    return clock.NowNanos();
  };

  const int64_t sync_1ch = run(1, /*async=*/false);
  const int64_t async_1ch = run(1, /*async=*/true);
  const int64_t async_4ch = run(4, /*async=*/true);

  // One channel serializes async submissions too (queue % 1 == 0 always).
  EXPECT_GT(async_1ch, async_4ch);
  // Four channels overlap the four commands: far below the serialized
  // run, and within a factor of ~2.5 of a single command's cost.
  EXPECT_LT(async_4ch, sync_1ch / 2);
  // Determinism: the virtual timeline is a pure function of the inputs.
  EXPECT_EQ(async_4ch, run(4, /*async=*/true));
}

// Reads submitted on distinct queues overlap on distinct channels; on a
// single channel they serialize on the read pipeline to exactly the
// sequential total. Contents and class accounting are independent of the
// timing model.
TEST(SsdChannelTest, ReadsOverlapAcrossChannelsAndSerializeWithinOne) {
  constexpr uint64_t kPages = 256;  // 1 MiB per command
  const std::string payload(kPages * 4096, 'r');

  auto run = [&](int channels, bool async) -> int64_t {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallSsd(channels), &clock);
    for (uint32_t q = 0; q < 4; q++) {
      EXPECT_TRUE(dev.Write(q * kPages, kPages,
                            reinterpret_cast<const uint8_t*>(payload.data()))
                      .ok());
    }
    // Let the programs drain so read interference is identical across
    // timing modes.
    clock.Advance(sim::kNanosPerSecond);
    const int64_t t0 = clock.NowNanos();
    std::vector<std::vector<uint8_t>> bufs(4,
                                           std::vector<uint8_t>(kPages * 4096));
    if (async) {
      std::vector<block::IoTicket> tickets;
      for (uint32_t q = 0; q < 4; q++) {
        tickets.push_back(dev.SubmitRead(q * kPages, kPages,
                                         bufs[q].data(), q));
      }
      for (const auto& t : tickets) EXPECT_TRUE(dev.Wait(t).ok());
    } else {
      for (uint32_t q = 0; q < 4; q++) {
        EXPECT_TRUE(dev.Read(q * kPages, kPages, bufs[q].data()).ok());
      }
    }
    for (const auto& buf : bufs) EXPECT_EQ(buf[0], 'r');
    // Read occupancy is accounted under the foreground-read class.
    const auto stats = dev.channel_stats();
    int64_t read_busy = 0;
    for (const auto& ch : stats) {
      read_busy +=
          ch.class_busy_ns[static_cast<int>(sim::IoClass::kForegroundRead)];
    }
    EXPECT_GT(read_busy, 0);
    return clock.NowNanos() - t0;
  };

  const int64_t sync_1ch = run(1, /*async=*/false);
  const int64_t async_1ch = run(1, /*async=*/true);
  const int64_t async_4ch = run(4, /*async=*/true);
  // One channel: concurrent reads serialize on the read pipeline to the
  // nanosecond of the sequential run.
  EXPECT_EQ(async_1ch, sync_1ch);
  // Four channels: the four reads overlap (well under half the total).
  EXPECT_LT(async_4ch, sync_1ch / 2);
  EXPECT_EQ(async_4ch, run(4, /*async=*/true));  // deterministic
}

// A synchronous call is exactly submit-then-wait on queue 0.
TEST(SsdChannelTest, SyncWriteEqualsSubmitThenWait) {
  const std::string payload(64 * 4096, 'y');
  sim::SimClock c1, c2;
  ssd::SsdDevice d1(SmallSsd(4), &c1);
  ssd::SsdDevice d2(SmallSsd(4), &c2);
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(
        d1.Write(static_cast<uint64_t>(i) * 64, 64,
                 reinterpret_cast<const uint8_t*>(payload.data()))
            .ok());
    ASSERT_TRUE(
        d2.Wait(d2.SubmitWrite(static_cast<uint64_t>(i) * 64, 64,
                               reinterpret_cast<const uint8_t*>(
                                   payload.data()),
                               0))
            .ok());
  }
  EXPECT_EQ(c1.NowNanos(), c2.NowNanos());
  EXPECT_EQ(d1.smart().host_bytes_written, d2.smart().host_bytes_written);
}

// File-level async: four files appended on four queues overlap in virtual
// time on a four-channel device.
TEST(FileAsyncTest, SubmitAppendOverlapsAcrossFiles) {
  const std::string chunk(1 << 20, 'f');
  auto run = [&](bool async) -> int64_t {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallSsd(4), &clock);
    fs::SimpleFs fs(&dev, {});
    std::vector<fs::File*> files;
    for (int i = 0; i < 4; i++) {
      files.push_back(*fs.Create("f" + std::to_string(i)));
    }
    if (async) {
      std::vector<block::IoTicket> tickets;
      for (uint32_t q = 0; q < 4; q++) {
        tickets.push_back(files[q]->SubmitAppend(chunk, q));
      }
      for (size_t q = 0; q < 4; q++) {
        EXPECT_TRUE(files[q]->Wait(tickets[q]).ok());
      }
    } else {
      for (auto* f : files) EXPECT_TRUE(f->Append(chunk).ok());
    }
    for (auto* f : files) EXPECT_EQ(f->size(), chunk.size());
    return clock.NowNanos();
  };
  const int64_t sync_ns = run(/*async=*/false);
  const int64_t async_ns = run(/*async=*/true);
  EXPECT_LT(async_ns, sync_ns / 2);

  // Submitted data is immediately visible to reads.
  sim::SimClock clock;
  ssd::SsdDevice dev(SmallSsd(4), &clock);
  fs::SimpleFs fs(&dev, {});
  fs::File* f = *fs.Create("g");
  const block::IoTicket t = f->SubmitAppend("hello async", 2);
  std::string buf(11, '\0');
  ASSERT_TRUE(f->ReadAt(0, buf.size(), buf.data()).ok());
  EXPECT_EQ(buf, "hello async");
  EXPECT_TRUE(f->Wait(t).ok());
}

// File-level async reads: SubmitReadAt reads exactly the requested range
// inside a lane, overlaps across queues, and errors (rather than
// truncating) past EOF.
TEST(FileAsyncTest, SubmitReadAtOverlapsAndRejectsShortReads) {
  const std::string chunk(1 << 20, 'q');
  sim::SimClock clock;
  ssd::SsdDevice dev(SmallSsd(4), &clock);
  fs::SimpleFs fs(&dev, {});
  std::vector<fs::File*> files;
  for (int i = 0; i < 4; i++) {
    files.push_back(*fs.Create("r" + std::to_string(i)));
    ASSERT_TRUE(files.back()->Append(chunk).ok());
  }
  clock.Advance(sim::kNanosPerSecond);  // drain programs

  // Sequential baseline.
  std::vector<std::string> bufs(4, std::string(chunk.size(), '\0'));
  const int64_t t0 = clock.NowNanos();
  for (int i = 0; i < 4; i++) {
    auto got = files[static_cast<size_t>(i)]->ReadAt(
        0, chunk.size(), bufs[static_cast<size_t>(i)].data());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, chunk.size());
  }
  const int64_t seq_ns = clock.NowNanos() - t0;

  // Fan the same four reads out on four queues.
  const int64_t t1 = clock.NowNanos();
  std::vector<block::IoTicket> tickets;
  for (uint32_t q = 0; q < 4; q++) {
    bufs[q].assign(chunk.size(), '\0');
    tickets.push_back(files[q]->SubmitReadAt(0, chunk.size(),
                                             bufs[q].data(), q));
  }
  for (size_t q = 0; q < 4; q++) {
    EXPECT_TRUE(files[q]->Wait(tickets[q]).ok());
    EXPECT_EQ(bufs[q], chunk);
  }
  const int64_t fan_ns = clock.NowNanos() - t1;
  EXPECT_LT(fan_ns, seq_ns / 2);

  // A range past EOF is an error in the ticket, not a silent short read.
  std::string small(16, '\0');
  const block::IoTicket bad =
      files[0]->SubmitReadAt(chunk.size() - 8, 16, small.data(), 1);
  EXPECT_TRUE(files[0]->Wait(bad).IsIoError());
}

// ---- The engine read path ---------------------------------------------

// ReadAsync immediately awaited replays the synchronous Get timeline to
// the nanosecond (the read-side twin of submit-then-wait == sync).
TEST(ReadAsyncTest, SubmitThenWaitMatchesSyncGet) {
  auto make = [](sim::SimClock* clock, ssd::SsdDevice* ssd,
                 std::unique_ptr<fs::SimpleFs>* fs)
      -> std::unique_ptr<kv::KVStore> {
    *fs = std::make_unique<fs::SimpleFs>(ssd, fs::FsOptions{});
    kv::EngineOptions options;
    options.engine = "alog";
    options.fs = fs->get();
    options.clock = clock;
    options.params = {{"segment_bytes", std::to_string(1 << 20)}};
    auto opened = kv::OpenStore(options);
    EXPECT_TRUE(opened.ok());
    return *std::move(opened);
  };
  sim::SimClock c1, c2;
  ssd::SsdDevice d1(SmallSsd(4), &c1), d2(SmallSsd(4), &c2);
  std::unique_ptr<fs::SimpleFs> f1, f2;
  auto s1 = make(&c1, &d1, &f1);
  auto s2 = make(&c2, &d2, &f2);
  for (uint64_t id = 0; id < 64; id++) {
    ASSERT_TRUE(s1->Put(kv::MakeKey(id), kv::MakeValue(id, 1024)).ok());
    ASSERT_TRUE(s2->Put(kv::MakeKey(id), kv::MakeValue(id, 1024)).ok());
  }
  for (uint64_t id = 0; id < 64; id += 3) {
    std::string v1, v2;
    ASSERT_TRUE(s1->Get(kv::MakeKey(id), &v1).ok());
    kv::ReadHandle h = s2->ReadAsync(kv::MakeKey(id), &v2);
    ASSERT_TRUE(h.Wait().ok());
    EXPECT_EQ(v1, v2);
  }
  EXPECT_EQ(c1.NowNanos(), c2.NowNanos())
      << "ReadAsync+Wait must replay the sync Get timeline";
  ASSERT_TRUE(s1->Close().ok());
  ASSERT_TRUE(s2->Close().ok());
}

// MultiGet's acceptance property: with channels and read_queue_depth, a
// uniform batch of lookups finishes in strictly less simulated device
// time than sequential Gets, with identical returned values —
// deterministically.
TEST(MultiGetTest, FanOutCompressesVirtualTime) {
  auto run = [](int channels, int read_qd, int64_t* read_phase_ns,
                uint32_t* checksum) {
    sim::SimClock clock;
    ssd::SsdDevice ssd(SmallSsd(channels), &clock);
    fs::SimpleFs fs(&ssd, {});
    kv::EngineOptions options;
    options.engine = "alog";
    options.fs = &fs;
    options.clock = &clock;
    options.params = {{"segment_bytes", std::to_string(4 << 20)},
                      {"read_queue_depth", std::to_string(read_qd)}};
    auto opened = kv::OpenStore(options);
    ASSERT_TRUE(opened.ok());
    auto store = *std::move(opened);
    for (uint64_t id = 0; id < 128; id++) {
      ASSERT_TRUE(store->Put(kv::MakeKey(id), kv::MakeValue(id, 2048)).ok());
    }
    ASSERT_TRUE(store->Flush().ok());

    std::vector<std::string> keys;
    for (uint64_t id = 0; id < 128; id += 1) {
      keys.push_back(kv::MakeKey((id * 37) % 128));
    }
    keys.push_back("no-such-key");  // misses cost no device time
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::string> values;
    const int64_t t0 = clock.NowNanos();
    const std::vector<Status> statuses = store->MultiGet(views, &values);
    *read_phase_ns = clock.NowNanos() - t0;
    *checksum = 0;
    for (size_t i = 0; i + 1 < statuses.size(); i++) {
      ASSERT_TRUE(statuses[i].ok()) << i;
      *checksum = Crc32c(*checksum, values[i].data(), values[i].size());
    }
    EXPECT_TRUE(statuses.back().IsNotFound());
    ASSERT_TRUE(store->Close().ok());
  };

  int64_t seq_ns = 0, fan_ns = 0, repeat_ns = 0;
  uint32_t seq_sum = 0, fan_sum = 0, repeat_sum = 0;
  run(4, 1, &seq_ns, &seq_sum);   // read_queue_depth=1 IS sequential Gets
  run(4, 8, &fan_ns, &fan_sum);
  EXPECT_LT(fan_ns, seq_ns)
      << "4-channel read_queue_depth=8 must beat sequential gets";
  EXPECT_EQ(fan_sum, seq_sum) << "values must not depend on timing";
  run(4, 8, &repeat_ns, &repeat_sum);  // virtual-time determinism
  EXPECT_EQ(repeat_ns, fan_ns);
  EXPECT_EQ(repeat_sum, fan_sum);
}

// ---- Completion callbacks (push-style handles) ------------------------
//
// WriteHandle/ReadHandle::OnComplete registers a one-shot callback that
// fires with the operation's status EXACTLY ONCE: inline at registration
// if the handle is already complete, otherwise inside the Wait() that
// joins the completion time into the clock — i.e. on the WAITER's
// thread, after the clock has absorbed the operation's virtual latency.
// A handle dropped without Wait() safe-joins in its destructor (performs
// the clock join and fires the pending callback) rather than erroring;
// that choice is documented on the class in kv/kvstore.h and pinned by
// DroppedHandleSafeJoinsAndFires below.

struct TimedAlogHarness {
  sim::SimClock clock;
  std::unique_ptr<ssd::SsdDevice> ssd;
  std::unique_ptr<fs::SimpleFs> fs;
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<TimedAlogHarness> MakeTimedAlog() {
  auto h = std::make_unique<TimedAlogHarness>();
  h->ssd = std::make_unique<ssd::SsdDevice>(SmallSsd(2), &h->clock);
  h->fs = std::make_unique<fs::SimpleFs>(h->ssd.get(), fs::FsOptions{});
  kv::EngineOptions options;
  options.engine = "alog";
  options.fs = h->fs.get();
  options.clock = &h->clock;
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

TEST(CompletionCallbackTest, FiresExactlyOnceInsideWait) {
  auto h = MakeTimedAlog();
  kv::WriteBatch batch;
  batch.Put("k", std::string(2048, 'v'));
  int fires = 0;
  {
    kv::WriteHandle handle = h->store->WriteAsync(batch);
    ASSERT_FALSE(handle.complete()) << "clock join must be deferred";
    Status seen;
    handle.OnComplete([&](const Status& s) {
      fires++;
      seen = s;
    });
    EXPECT_EQ(fires, 0) << "pending handle must not fire at registration";
    const int64_t complete_ns = handle.complete_ns();
    ASSERT_TRUE(handle.Wait().ok());
    EXPECT_EQ(fires, 1);
    EXPECT_TRUE(seen.ok());
    EXPECT_GE(h->clock.NowNanos(), complete_ns)
        << "the callback observes a clock past the commit's completion";
    ASSERT_TRUE(handle.Wait().ok());  // Wait is idempotent...
    EXPECT_EQ(fires, 1);              // ...and must not re-fire
  }
  EXPECT_EQ(fires, 1) << "nor may the destructor re-fire";
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(CompletionCallbackTest, FiresInlineWhenAlreadyComplete) {
  // Without a clock the commit runs synchronously, so the handle is
  // complete when WriteAsync returns and the callback fires inline, on
  // the registering thread.
  block::MemoryBlockDevice dev(4096, 1 << 13);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = "alog";
  options.fs = &fs;
  auto opened = kv::OpenStore(options);
  ASSERT_TRUE(opened.ok());
  auto store = *std::move(opened);
  kv::WriteBatch batch;
  batch.Put("k", "v");
  kv::WriteHandle handle = store->WriteAsync(batch);
  EXPECT_TRUE(handle.complete());
  int fires = 0;
  std::thread::id cb_thread;
  handle.OnComplete([&](const Status& s) {
    fires++;
    cb_thread = std::this_thread::get_id();
    EXPECT_TRUE(s.ok());
  });
  EXPECT_EQ(fires, 1) << "complete handle fires inline at registration";
  EXPECT_EQ(cb_thread, std::this_thread::get_id());
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_EQ(fires, 1);
  ASSERT_TRUE(store->Close().ok());
}

TEST(CompletionCallbackTest, FiresOnTheWaitersThread) {
  auto h = MakeTimedAlog();
  kv::WriteBatch batch;
  batch.Put("k", std::string(2048, 'v'));
  kv::WriteHandle handle = h->store->WriteAsync(batch);
  ASSERT_FALSE(handle.complete());
  int fires = 0;
  std::thread::id cb_thread;
  handle.OnComplete([&](const Status& s) {
    fires++;
    cb_thread = std::this_thread::get_id();
    EXPECT_TRUE(s.ok());
  });
  std::thread::id waiter_thread;
  std::thread waiter([&] {
    waiter_thread = std::this_thread::get_id();
    EXPECT_TRUE(handle.Wait().ok());
  });
  waiter.join();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(cb_thread, waiter_thread)
      << "a pending callback runs inside the Wait that joins the clock";
  EXPECT_NE(cb_thread, std::this_thread::get_id());
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(CompletionCallbackTest, DroppedHandleSafeJoinsAndFires) {
  auto h = MakeTimedAlog();
  kv::WriteBatch batch;
  batch.Put("k", std::string(2048, 'v'));
  int fires = 0;
  int64_t complete_ns = 0;
  {
    kv::WriteHandle handle = h->store->WriteAsync(batch);
    ASSERT_FALSE(handle.complete());
    complete_ns = handle.complete_ns();
    handle.OnComplete([&](const Status& s) {
      fires++;
      EXPECT_TRUE(s.ok());
    });
    // Dropped without Wait: the destructor safe-joins.
  }
  EXPECT_EQ(fires, 1)
      << "destroying an un-waited handle must fire the pending callback";
  EXPECT_GE(h->clock.NowNanos(), complete_ns)
      << "the safe-join must not lose the commit's virtual latency";
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(CompletionCallbackTest, ReadHandleCallbacksMirrorWriteHandles) {
  auto h = MakeTimedAlog();
  ASSERT_TRUE(h->store->Put("k", std::string(2048, 'v')).ok());
  ASSERT_TRUE(h->store->Flush().ok());
  std::string value;
  int fires = 0;
  {
    kv::ReadHandle handle = h->store->ReadAsync("k", &value);
    handle.OnComplete([&](const Status& s) {
      fires++;
      EXPECT_TRUE(s.ok());
    });
    // The callback travels with a move; the moved-from shell must not
    // fire it at destruction.
    kv::ReadHandle moved = std::move(handle);
    EXPECT_TRUE(moved.Wait().ok());
    EXPECT_EQ(fires, 1);
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(value, std::string(2048, 'v'))
      << "the value is filled at submission, like WriteAsync's effects";
  ASSERT_TRUE(h->store->Close().ok());
}

// ---- Background I/O separation ----------------------------------------

struct BgOutcome {
  int64_t foreground_ns = 0;       // clock at end of the write loop
  int64_t scheduled_busy_ns = 0;   // byte-driven backend work, all channels
  int64_t background_busy_ns = 0;  // busy time accounted to kBackground
  uint32_t checksum = 0;           // final contents
};

// Runs a maintenance-heavy write workload on `engine` with background_io
// on or off. The logical work (and therefore the device command stream)
// is identical in both modes; only the timeline attribution differs.
BgOutcome RunBackgroundWorkload(const std::string& engine,
                                std::map<std::string, std::string> params,
                                bool background_io) {
  BgOutcome out;
  sim::SimClock clock;
  ssd::SsdDevice ssd(SmallSsd(2), &clock);
  fs::SimpleFs fs(&ssd, {});
  kv::EngineOptions options;
  options.engine = engine;
  options.fs = &fs;
  options.clock = &clock;
  options.params = std::move(params);
  options.params["background_io"] = background_io ? "1" : "0";
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  auto store = *std::move(opened);

  kv::WriteBatch batch;
  for (uint64_t i = 0; i < 3000; i++) {
    batch.Clear();
    batch.Put(kv::MakeKey(i % 400), kv::MakeValue(i, 512));
    EXPECT_TRUE(store->Write(batch).ok());
  }
  out.foreground_ns = clock.NowNanos();

  EXPECT_TRUE(store->SettleBackgroundWork().ok());
  EXPECT_TRUE(store->Flush().ok());
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.checksum = Crc32c(out.checksum, it->key().data(), it->key().size());
    out.checksum =
        Crc32c(out.checksum, it->value().data(), it->value().size());
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_TRUE(store->Close().ok());
  for (const auto& ch : ssd.channel_stats()) {
    out.scheduled_busy_ns += ch.scheduled_ns;
    out.background_busy_ns +=
        ch.class_busy_ns[static_cast<int>(sim::IoClass::kBackground)];
  }
  return out;
}

// Maintenance-heavy params per engine: every run must actually trigger
// compaction / checkpoints / GC, or the separation would have nothing to
// separate and the strict inequalities below would be vacuous.
class BackgroundIoTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BackgroundIoTest, SeparationLowersForegroundTimeConservingWork) {
  const std::string engine = GetParam();
  std::map<std::string, std::string> params;
  if (engine == "lsm") {
    params = {{"memtable_bytes", std::to_string(32 << 10)},
              {"l1_target_bytes", std::to_string(128 << 10)},
              {"sst_target_bytes", std::to_string(64 << 10)}};
  } else if (engine == "btree") {
    params = {{"cache_bytes", std::to_string(64 << 10)},
              {"checkpoint_every_bytes", std::to_string(64 << 10)}};
  } else {
    params = {{"segment_bytes", std::to_string(64 << 10)},
              {"gc_trigger", "0.3"}};
  }
  const BgOutcome base = RunBackgroundWorkload(engine, params, false);
  const BgOutcome sep = RunBackgroundWorkload(engine, params, true);

  // The baseline attributes nothing to the background class; separation
  // must actually have moved work there.
  EXPECT_EQ(base.background_busy_ns, 0) << engine;
  EXPECT_GT(sep.background_busy_ns, 0) << engine;
  // Foreground commits stop absorbing maintenance device time...
  EXPECT_LT(sep.foreground_ns, base.foreground_ns) << engine;
  // ...but the device did exactly the same byte-driven work,
  EXPECT_EQ(sep.scheduled_busy_ns, base.scheduled_busy_ns) << engine;
  // ...and contents cannot depend on timeline attribution.
  EXPECT_EQ(sep.checksum, base.checksum) << engine;

  // Determinism: the separated run replays to the nanosecond.
  const BgOutcome again = RunBackgroundWorkload(engine, params, true);
  EXPECT_EQ(again.foreground_ns, sep.foreground_ns) << engine;
  EXPECT_EQ(again.checksum, sep.checksum) << engine;
}

INSTANTIATE_TEST_SUITE_P(Engines, BackgroundIoTest,
                         ::testing::Values("lsm", "btree", "alog"));

// ---- The sharded async commit path ------------------------------------

struct ShardedStack {
  sim::SimClock clock;
  std::unique_ptr<ssd::SsdDevice> ssd;
  std::unique_ptr<fs::SimpleFs> fs;
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<ShardedStack> MakeShardedStack(int channels,
                                               int queue_depth,
                                               int shards = 4) {
  auto s = std::make_unique<ShardedStack>();
  s->ssd = std::make_unique<ssd::SsdDevice>(SmallSsd(channels), &s->clock);
  s->fs = std::make_unique<fs::SimpleFs>(s->ssd.get(), fs::FsOptions{});
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = s->fs.get();
  options.clock = &s->clock;
  options.params = {{"shards", std::to_string(shards)},
                    {"inner_engine", "alog"},
                    {"segment_bytes", std::to_string(1 << 20)},
                    // Workers off: the async path dispatches from the
                    // caller thread, keeping the timeline deterministic.
                    {"parallel_write", "0"},
                    {"queue_depth", std::to_string(queue_depth)}};
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  s->store = *std::move(opened);
  return s;
}

// Runs the same cross-shard batch workload and returns the final virtual
// time; `checksum` covers the full final contents.
int64_t RunBatchWorkload(ShardedStack* s, uint32_t* checksum) {
  kv::WriteBatch batch;
  for (uint64_t b = 0; b < 64; b++) {
    batch.Clear();
    for (uint64_t i = 0; i < 32; i++) {
      const uint64_t id = (b * 32 + i) % 512;
      batch.Put(kv::MakeKey(id), kv::MakeValue(b * 1000 + id, 512));
    }
    EXPECT_TRUE(s->store->Write(batch).ok());
  }
  EXPECT_TRUE(s->store->Flush().ok());
  *checksum = 0;
  auto it = s->store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    *checksum = Crc32c(*checksum, it->key().data(), it->key().size());
    *checksum = Crc32c(*checksum, it->value().data(), it->value().size());
  }
  EXPECT_TRUE(it->status().ok());
  return s->clock.NowNanos();
}

// The acceptance property of the async path: a multi-channel concurrent
// commit finishes earlier in simulated device time than the serialized
// equivalent, with identical final contents — deterministically.
TEST(ShardedAsyncTest, MultiChannelCommitCompressesVirtualTime) {
  uint32_t serial_sum, async_sum, repeat_sum;
  auto serial = MakeShardedStack(/*channels=*/1, /*queue_depth=*/1);
  const int64_t serial_ns = RunBatchWorkload(serial.get(), &serial_sum);
  ASSERT_TRUE(serial->store->Close().ok());

  auto async = MakeShardedStack(/*channels=*/4, /*queue_depth=*/8);
  const int64_t async_ns = RunBatchWorkload(async.get(), &async_sum);
  ASSERT_TRUE(async->store->Close().ok());

  EXPECT_LT(async_ns, serial_ns)
      << "4-channel queue_depth=8 must beat the serialized run";
  EXPECT_EQ(serial_sum, async_sum) << "contents must not depend on timing";

  // Virtual-time determinism: the async run replays to the nanosecond.
  auto again = MakeShardedStack(/*channels=*/4, /*queue_depth=*/8);
  EXPECT_EQ(RunBatchWorkload(again.get(), &repeat_sum), async_ns);
  EXPECT_EQ(repeat_sum, async_sum);
  ASSERT_TRUE(again->store->Close().ok());
}

// queue_depth bounds the overlap window: deeper queues can only help.
TEST(ShardedAsyncTest, DeeperQueuesNeverSlowTheVirtualTimeline) {
  uint32_t sum_prev = 0;
  int64_t prev_ns = 0;
  bool first = true;
  for (const int qd : {1, 2, 8}) {
    uint32_t sum;
    auto stack = MakeShardedStack(/*channels=*/4, qd);
    const int64_t ns = RunBatchWorkload(stack.get(), &sum);
    ASSERT_TRUE(stack->store->Close().ok());
    if (!first) {
      EXPECT_LE(ns, prev_ns) << "queue_depth=" << qd;
      EXPECT_EQ(sum, sum_prev);
    }
    prev_ns = ns;
    sum_prev = sum;
    first = false;
  }
}

// Multi-threaded async stress (the TSan target): several caller threads
// drive queue_depth>1 commits through the same sharded store over a
// multi-channel SSD. Lanes are thread-local, channel state is serialized
// below the filesystem's I/O mutex — no races, no lost writes.
TEST(ShardedAsyncTest, ConcurrentAsyncWritersStress) {
  auto stack = MakeShardedStack(/*channels=*/4, /*queue_depth=*/4,
                                /*shards=*/4);
  constexpr int kThreads = 4;
  constexpr uint64_t kBatches = 60;
  constexpr uint64_t kPerBatch = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      kv::WriteBatch batch;
      for (uint64_t b = 0; b < kBatches; b++) {
        batch.Clear();
        for (uint64_t i = 0; i < kPerBatch; i++) {
          const uint64_t id = b * kPerBatch + i;
          batch.Put("t" + std::to_string(t) + "-" + kv::MakeKey(id),
                    kv::MakeValue(id, 256));
        }
        if (!stack->store->Write(batch).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  // Every thread's final values are present and intact.
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t id = 0; id < kBatches * kPerBatch; id += 37) {
      std::string value;
      ASSERT_TRUE(stack->store
                      ->Get("t" + std::to_string(t) + "-" + kv::MakeKey(id),
                            &value)
                      .ok())
          << "thread " << t << " id " << id;
      EXPECT_TRUE(kv::VerifyValue(value));
    }
  }
  ASSERT_TRUE(stack->store->Close().ok());
}

}  // namespace
}  // namespace ptsb
