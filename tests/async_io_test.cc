// The async multi-queue submission path: virtual-time submission lanes
// (sim::SimClock::BeginAsync), the block layer's SubmitWrite/SubmitRead,
// fs::File::SubmitAppend, per-channel overlap in ssd::SsdDevice, and the
// sharded store's queue_depth async dispatch. The headline properties:
//  - commands submitted on distinct queues from the same instant overlap
//    in virtual time (wait-all costs max, not sum) iff the device has
//    channels for them;
//  - synchronous calls are exactly submit-then-wait (identical timing);
//  - a multi-channel async sharded commit finishes EARLIER in simulated
//    device time than the serialized equivalent, with identical final
//    store contents — and deterministically so.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fs/file.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/crc32.h"

namespace ptsb {
namespace {

ssd::SsdConfig SmallSsd(int channels, uint64_t cache_bytes = 0) {
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64ull << 20;
  cfg.channels = channels;
  // cache_bytes = 0 makes host writes synchronous with the channel
  // backend, so program time is visible in every command's latency and
  // overlap (or its absence) shows up directly in the clock.
  cfg.timing.cache_bytes = cache_bytes;
  return cfg;
}

TEST(SimClockLaneTest, LanesForkAndJoinByMax) {
  sim::SimClock clock;
  clock.Advance(1000);
  ASSERT_TRUE(clock.BeginAsync(3));
  EXPECT_TRUE(clock.InAsync());
  EXPECT_EQ(clock.AsyncQueue(), 3u);
  EXPECT_EQ(clock.NowNanos(), 1000);  // lane seeded with global now
  clock.Advance(500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  // Nested begin is refused: the inner submission runs in this lane.
  EXPECT_FALSE(clock.BeginAsync(7));
  EXPECT_EQ(clock.AsyncQueue(), 3u);
  const int64_t t1 = clock.EndAsync();
  EXPECT_EQ(t1, 1500);
  // Ending the lane did not touch the global clock.
  EXPECT_FALSE(clock.InAsync());
  EXPECT_EQ(clock.NowNanos(), 1000);

  // A second lane from the same instant overlaps the first: joining both
  // advances to the max, not the sum.
  ASSERT_TRUE(clock.BeginAsync(4));
  clock.Advance(200);
  const int64_t t2 = clock.EndAsync();
  clock.AdvanceTo(t1);
  clock.AdvanceTo(t2);
  EXPECT_EQ(clock.NowNanos(), 1500);
}

TEST(SimClockLaneTest, LanesAreThreadLocal) {
  sim::SimClock clock;
  ASSERT_TRUE(clock.BeginAsync(1));
  clock.Advance(700);
  std::thread other([&clock] {
    // This thread has no lane: it sees (and moves) the global clock.
    EXPECT_FALSE(clock.InAsync());
    EXPECT_EQ(clock.NowNanos(), 0);
    clock.Advance(50);
  });
  other.join();
  EXPECT_EQ(clock.NowNanos(), 700);  // lane view unaffected
  const int64_t done = clock.EndAsync();
  EXPECT_EQ(clock.NowNanos(), 50);  // global moved only by the other thread
  clock.AdvanceTo(done);
  // The join is a monotonic max with the other thread's progress, not a
  // sum: the lane's work overlapped it.
  EXPECT_EQ(clock.NowNanos(), 700);
}

// Submitting the same work on distinct queues of a multi-channel device
// must cost ~max of the command latencies; on a single channel it stays
// serialized. Content is identical either way.
TEST(SsdChannelTest, DistinctQueuesOverlapOnDistinctChannels) {
  constexpr uint64_t kPages = 512;  // 2 MiB per command
  const std::string payload(kPages * 4096, 'x');

  auto run = [&](int channels, bool async) -> int64_t {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallSsd(channels), &clock);
    if (async) {
      std::vector<block::IoTicket> tickets;
      for (uint32_t q = 0; q < 4; q++) {
        tickets.push_back(dev.SubmitWrite(
            q * kPages, kPages,
            reinterpret_cast<const uint8_t*>(payload.data()), q));
      }
      for (const auto& t : tickets) EXPECT_TRUE(dev.Wait(t).ok());
    } else {
      for (uint32_t q = 0; q < 4; q++) {
        EXPECT_TRUE(dev.Write(q * kPages, kPages,
                              reinterpret_cast<const uint8_t*>(
                                  payload.data()))
                        .ok());
      }
    }
    // Contents are applied at submit regardless of timing model.
    std::vector<uint8_t> page(4096);
    EXPECT_TRUE(dev.Read(3 * kPages, 1, page.data()).ok());
    EXPECT_EQ(page[0], 'x');
    return clock.NowNanos();
  };

  const int64_t sync_1ch = run(1, /*async=*/false);
  const int64_t async_1ch = run(1, /*async=*/true);
  const int64_t async_4ch = run(4, /*async=*/true);

  // One channel serializes async submissions too (queue % 1 == 0 always).
  EXPECT_GT(async_1ch, async_4ch);
  // Four channels overlap the four commands: far below the serialized
  // run, and within a factor of ~2.5 of a single command's cost.
  EXPECT_LT(async_4ch, sync_1ch / 2);
  // Determinism: the virtual timeline is a pure function of the inputs.
  EXPECT_EQ(async_4ch, run(4, /*async=*/true));
}

// A synchronous call is exactly submit-then-wait on queue 0.
TEST(SsdChannelTest, SyncWriteEqualsSubmitThenWait) {
  const std::string payload(64 * 4096, 'y');
  sim::SimClock c1, c2;
  ssd::SsdDevice d1(SmallSsd(4), &c1);
  ssd::SsdDevice d2(SmallSsd(4), &c2);
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(
        d1.Write(static_cast<uint64_t>(i) * 64, 64,
                 reinterpret_cast<const uint8_t*>(payload.data()))
            .ok());
    ASSERT_TRUE(
        d2.Wait(d2.SubmitWrite(static_cast<uint64_t>(i) * 64, 64,
                               reinterpret_cast<const uint8_t*>(
                                   payload.data()),
                               0))
            .ok());
  }
  EXPECT_EQ(c1.NowNanos(), c2.NowNanos());
  EXPECT_EQ(d1.smart().host_bytes_written, d2.smart().host_bytes_written);
}

// File-level async: four files appended on four queues overlap in virtual
// time on a four-channel device.
TEST(FileAsyncTest, SubmitAppendOverlapsAcrossFiles) {
  const std::string chunk(1 << 20, 'f');
  auto run = [&](bool async) -> int64_t {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallSsd(4), &clock);
    fs::SimpleFs fs(&dev, {});
    std::vector<fs::File*> files;
    for (int i = 0; i < 4; i++) {
      files.push_back(*fs.Create("f" + std::to_string(i)));
    }
    if (async) {
      std::vector<block::IoTicket> tickets;
      for (uint32_t q = 0; q < 4; q++) {
        tickets.push_back(files[q]->SubmitAppend(chunk, q));
      }
      for (size_t q = 0; q < 4; q++) {
        EXPECT_TRUE(files[q]->Wait(tickets[q]).ok());
      }
    } else {
      for (auto* f : files) EXPECT_TRUE(f->Append(chunk).ok());
    }
    for (auto* f : files) EXPECT_EQ(f->size(), chunk.size());
    return clock.NowNanos();
  };
  const int64_t sync_ns = run(/*async=*/false);
  const int64_t async_ns = run(/*async=*/true);
  EXPECT_LT(async_ns, sync_ns / 2);

  // Submitted data is immediately visible to reads.
  sim::SimClock clock;
  ssd::SsdDevice dev(SmallSsd(4), &clock);
  fs::SimpleFs fs(&dev, {});
  fs::File* f = *fs.Create("g");
  const block::IoTicket t = f->SubmitAppend("hello async", 2);
  std::string buf(11, '\0');
  ASSERT_TRUE(f->ReadAt(0, buf.size(), buf.data()).ok());
  EXPECT_EQ(buf, "hello async");
  EXPECT_TRUE(f->Wait(t).ok());
}

// ---- The sharded async commit path ------------------------------------

struct ShardedStack {
  sim::SimClock clock;
  std::unique_ptr<ssd::SsdDevice> ssd;
  std::unique_ptr<fs::SimpleFs> fs;
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<ShardedStack> MakeShardedStack(int channels,
                                               int queue_depth,
                                               int shards = 4) {
  auto s = std::make_unique<ShardedStack>();
  s->ssd = std::make_unique<ssd::SsdDevice>(SmallSsd(channels), &s->clock);
  s->fs = std::make_unique<fs::SimpleFs>(s->ssd.get(), fs::FsOptions{});
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = s->fs.get();
  options.clock = &s->clock;
  options.params = {{"shards", std::to_string(shards)},
                    {"inner_engine", "alog"},
                    {"segment_bytes", std::to_string(1 << 20)},
                    // Workers off: the async path dispatches from the
                    // caller thread, keeping the timeline deterministic.
                    {"parallel_write", "0"},
                    {"queue_depth", std::to_string(queue_depth)}};
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  s->store = *std::move(opened);
  return s;
}

// Runs the same cross-shard batch workload and returns the final virtual
// time; `checksum` covers the full final contents.
int64_t RunBatchWorkload(ShardedStack* s, uint32_t* checksum) {
  kv::WriteBatch batch;
  for (uint64_t b = 0; b < 64; b++) {
    batch.Clear();
    for (uint64_t i = 0; i < 32; i++) {
      const uint64_t id = (b * 32 + i) % 512;
      batch.Put(kv::MakeKey(id), kv::MakeValue(b * 1000 + id, 512));
    }
    EXPECT_TRUE(s->store->Write(batch).ok());
  }
  EXPECT_TRUE(s->store->Flush().ok());
  *checksum = 0;
  auto it = s->store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    *checksum = Crc32c(*checksum, it->key().data(), it->key().size());
    *checksum = Crc32c(*checksum, it->value().data(), it->value().size());
  }
  EXPECT_TRUE(it->status().ok());
  return s->clock.NowNanos();
}

// The acceptance property of the async path: a multi-channel concurrent
// commit finishes earlier in simulated device time than the serialized
// equivalent, with identical final contents — deterministically.
TEST(ShardedAsyncTest, MultiChannelCommitCompressesVirtualTime) {
  uint32_t serial_sum, async_sum, repeat_sum;
  auto serial = MakeShardedStack(/*channels=*/1, /*queue_depth=*/1);
  const int64_t serial_ns = RunBatchWorkload(serial.get(), &serial_sum);
  ASSERT_TRUE(serial->store->Close().ok());

  auto async = MakeShardedStack(/*channels=*/4, /*queue_depth=*/8);
  const int64_t async_ns = RunBatchWorkload(async.get(), &async_sum);
  ASSERT_TRUE(async->store->Close().ok());

  EXPECT_LT(async_ns, serial_ns)
      << "4-channel queue_depth=8 must beat the serialized run";
  EXPECT_EQ(serial_sum, async_sum) << "contents must not depend on timing";

  // Virtual-time determinism: the async run replays to the nanosecond.
  auto again = MakeShardedStack(/*channels=*/4, /*queue_depth=*/8);
  EXPECT_EQ(RunBatchWorkload(again.get(), &repeat_sum), async_ns);
  EXPECT_EQ(repeat_sum, async_sum);
  ASSERT_TRUE(again->store->Close().ok());
}

// queue_depth bounds the overlap window: deeper queues can only help.
TEST(ShardedAsyncTest, DeeperQueuesNeverSlowTheVirtualTimeline) {
  uint32_t sum_prev = 0;
  int64_t prev_ns = 0;
  bool first = true;
  for (const int qd : {1, 2, 8}) {
    uint32_t sum;
    auto stack = MakeShardedStack(/*channels=*/4, qd);
    const int64_t ns = RunBatchWorkload(stack.get(), &sum);
    ASSERT_TRUE(stack->store->Close().ok());
    if (!first) {
      EXPECT_LE(ns, prev_ns) << "queue_depth=" << qd;
      EXPECT_EQ(sum, sum_prev);
    }
    prev_ns = ns;
    sum_prev = sum;
    first = false;
  }
}

// Multi-threaded async stress (the TSan target): several caller threads
// drive queue_depth>1 commits through the same sharded store over a
// multi-channel SSD. Lanes are thread-local, channel state is serialized
// below the filesystem's I/O mutex — no races, no lost writes.
TEST(ShardedAsyncTest, ConcurrentAsyncWritersStress) {
  auto stack = MakeShardedStack(/*channels=*/4, /*queue_depth=*/4,
                                /*shards=*/4);
  constexpr int kThreads = 4;
  constexpr uint64_t kBatches = 60;
  constexpr uint64_t kPerBatch = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      kv::WriteBatch batch;
      for (uint64_t b = 0; b < kBatches; b++) {
        batch.Clear();
        for (uint64_t i = 0; i < kPerBatch; i++) {
          const uint64_t id = b * kPerBatch + i;
          batch.Put("t" + std::to_string(t) + "-" + kv::MakeKey(id),
                    kv::MakeValue(id, 256));
        }
        if (!stack->store->Write(batch).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  // Every thread's final values are present and intact.
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t id = 0; id < kBatches * kPerBatch; id += 37) {
      std::string value;
      ASSERT_TRUE(stack->store
                      ->Get("t" + std::to_string(t) + "-" + kv::MakeKey(id),
                            &value)
                      .ok())
          << "thread " << t << " id " << id;
      EXPECT_TRUE(kv::VerifyValue(value));
    }
  }
  ASSERT_TRUE(stack->store->Close().ok());
}

}  // namespace
}  // namespace ptsb
