// Unit and property tests for the flash translation layer: mapping
// correctness, GC behavior, conservation invariants, and the emergent
// write-amplification characteristics the paper's analysis relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "ssd/config.h"
#include "ssd/ftl.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::ssd {
namespace {

FlashGeometry SmallGeometry(uint64_t logical_mib = 16, double op = 0.15) {
  FlashGeometry g;
  g.page_bytes = 4096;
  g.pages_per_block = 64;
  g.logical_bytes = logical_mib << 20;
  g.hardware_op_frac = op;
  return g;
}

TEST(FtlTest, FreshDeviceUnmapped) {
  FlashTranslationLayer ftl(SmallGeometry());
  EXPECT_FALSE(ftl.IsMapped(0));
  EXPECT_FALSE(ftl.IsMapped(ftl.geometry().LogicalPages() - 1));
  EXPECT_EQ(ftl.GetStats().valid_pages, 0u);
  EXPECT_EQ(ftl.DeviceWriteAmplification(), 1.0);
}

TEST(FtlTest, WriteMapsPage) {
  FlashTranslationLayer ftl(SmallGeometry());
  auto work = ftl.HostWrite(5);
  EXPECT_EQ(work.host_pages, 1u);
  EXPECT_EQ(work.gc_write_pages, 0u);
  EXPECT_TRUE(ftl.IsMapped(5));
  EXPECT_EQ(ftl.GetStats().valid_pages, 1u);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, OverwriteKeepsOneValidCopy) {
  FlashTranslationLayer ftl(SmallGeometry());
  for (int i = 0; i < 10; i++) ftl.HostWrite(7);
  EXPECT_EQ(ftl.GetStats().valid_pages, 1u);
  EXPECT_EQ(ftl.GetStats().host_pages_written, 10u);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, TrimUnmapsAndIsIdempotent) {
  FlashTranslationLayer ftl(SmallGeometry());
  ftl.HostWrite(3);
  ftl.Trim(3);
  EXPECT_FALSE(ftl.IsMapped(3));
  EXPECT_EQ(ftl.GetStats().valid_pages, 0u);
  ftl.Trim(3);  // no-op
  EXPECT_EQ(ftl.GetStats().pages_trimmed, 1u);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, SequentialFillIncursNoGc) {
  FlashTranslationLayer ftl(SmallGeometry());
  const uint64_t pages = ftl.geometry().LogicalPages();
  for (uint64_t p = 0; p < pages; p++) ftl.HostWrite(p);
  const auto s = ftl.GetStats();
  EXPECT_EQ(s.host_pages_written, pages);
  EXPECT_EQ(s.gc_pages_relocated, 0u);
  EXPECT_EQ(ftl.DeviceWriteAmplification(), 1.0);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, SequentialOverwriteKeepsWaNearOne) {
  // Rewriting the whole space sequentially invalidates whole blocks at a
  // time, so GC victims are empty and relocate nothing.
  FlashTranslationLayer ftl(SmallGeometry());
  const uint64_t pages = ftl.geometry().LogicalPages();
  for (int lap = 0; lap < 4; lap++) {
    for (uint64_t p = 0; p < pages; p++) ftl.HostWrite(p);
  }
  EXPECT_LT(ftl.DeviceWriteAmplification(), 1.05);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, RandomOverwriteOfFullDeviceAmplifies) {
  FlashTranslationLayer ftl(SmallGeometry(16, 0.10));
  const uint64_t pages = ftl.geometry().LogicalPages();
  for (uint64_t p = 0; p < pages; p++) ftl.HostWrite(p);
  Rng rng(1);
  for (uint64_t i = 0; i < 4 * pages; i++) {
    ftl.HostWrite(rng.Uniform(pages));
  }
  // Full utilization with 10% OP: heavy relocation traffic.
  EXPECT_GT(ftl.DeviceWriteAmplification(), 1.8);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, HalfUtilizationHasLowWa) {
  // The paper's reference point (Section 4.2): a random write workload
  // targeting ~60% of the device has WA-D around 1.4.
  FlashTranslationLayer ftl(SmallGeometry(16, 0.12));
  const uint64_t pages = ftl.geometry().LogicalPages();
  const uint64_t used = pages * 6 / 10;
  for (uint64_t p = 0; p < used; p++) ftl.HostWrite(p);
  Rng rng(2);
  for (uint64_t i = 0; i < 6 * used; i++) {
    ftl.HostWrite(rng.Uniform(used));
  }
  const double wa = ftl.DeviceWriteAmplification();
  EXPECT_GT(wa, 1.05);
  EXPECT_LT(wa, 1.9);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, MoreOverProvisioningLowersWa) {
  double wa[2];
  const double ops[2] = {0.08, 0.40};
  for (int i = 0; i < 2; i++) {
    FlashTranslationLayer ftl(SmallGeometry(16, ops[i]));
    const uint64_t pages = ftl.geometry().LogicalPages();
    for (uint64_t p = 0; p < pages; p++) ftl.HostWrite(p);
    Rng rng(3);
    for (uint64_t j = 0; j < 4 * pages; j++) ftl.HostWrite(rng.Uniform(pages));
    wa[i] = ftl.DeviceWriteAmplification();
  }
  EXPECT_GT(wa[0], wa[1] + 0.3);
}

TEST(FtlTest, TrimmedRegionActsAsOverProvisioning) {
  // Writing only half the LBA space on a trimmed device leaves the rest as
  // implicit OP, keeping WA-D low: the WiredTiger effect of Fig. 3/4.
  FlashTranslationLayer full(SmallGeometry(16, 0.10));
  FlashTranslationLayer half(SmallGeometry(16, 0.10));
  const uint64_t pages = full.geometry().LogicalPages();
  Rng rng(4);
  // "full": every LBA valid, then random updates to the first half.
  for (uint64_t p = 0; p < pages; p++) full.HostWrite(p);
  for (uint64_t i = 0; i < 4 * pages; i++) {
    full.HostWrite(rng.Uniform(pages / 2));
  }
  // "half": only the first half ever written.
  for (uint64_t p = 0; p < pages / 2; p++) half.HostWrite(p);
  for (uint64_t i = 0; i < 4 * pages; i++) {
    half.HostWrite(rng.Uniform(pages / 2));
  }
  EXPECT_GT(full.DeviceWriteAmplification(),
            half.DeviceWriteAmplification() + 0.2);
}

TEST(FtlTest, ConservationNandEqualsHostPlusGc) {
  FlashTranslationLayer ftl(SmallGeometry());
  const uint64_t pages = ftl.geometry().LogicalPages();
  Rng rng(5);
  for (uint64_t i = 0; i < 3 * pages; i++) ftl.HostWrite(rng.Uniform(pages));
  const auto s = ftl.GetStats();
  EXPECT_EQ(s.nand_pages_written(), s.host_pages_written + s.gc_pages_relocated);
  EXPECT_EQ(s.host_pages_written, 3 * pages);
}

TEST(FtlTest, ValidPagesNeverExceedLogicalSpace) {
  FlashTranslationLayer ftl(SmallGeometry());
  const uint64_t pages = ftl.geometry().LogicalPages();
  Rng rng(6);
  for (uint64_t i = 0; i < 2 * pages; i++) {
    ftl.HostWrite(rng.Uniform(pages));
    if (i % 7 == 0) ftl.Trim(rng.Uniform(pages));
  }
  EXPECT_LE(ftl.GetStats().valid_pages, pages);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(FtlTest, GcMaintainsFreeBlockFloor) {
  FlashTranslationLayer ftl(SmallGeometry(16, 0.10));
  const uint64_t pages = ftl.geometry().LogicalPages();
  Rng rng(7);
  for (uint64_t i = 0; i < 5 * pages; i++) ftl.HostWrite(rng.Uniform(pages));
  const auto s = ftl.GetStats();
  EXPECT_GE(s.free_blocks, 3u);
}

TEST(FtlTest, SharedOpenBlockModeWorks) {
  FlashTranslationLayer ftl(SmallGeometry(16, 0.10),
                            /*gc_separate_open_block=*/false);
  const uint64_t pages = ftl.geometry().LogicalPages();
  Rng rng(8);
  for (uint64_t i = 0; i < 4 * pages; i++) ftl.HostWrite(rng.Uniform(pages));
  EXPECT_TRUE(ftl.CheckConsistency().ok());
  EXPECT_GT(ftl.DeviceWriteAmplification(), 1.0);
}

TEST(FtlTest, GcOpenBlockModesBothConvergeUnderSkew) {
  // Both GC write-placement policies (dedicated GC open block vs sharing
  // the host open block) must stay consistent and land in the same WA
  // regime under a skewed workload. The quantitative comparison is an
  // ablation in bench/micro_ftl.
  double wa[2];
  for (int mode = 0; mode < 2; mode++) {
    FlashTranslationLayer ftl(SmallGeometry(16, 0.10), mode == 0);
    const uint64_t pages = ftl.geometry().LogicalPages();
    for (uint64_t p = 0; p < pages; p++) ftl.HostWrite(p);
    Rng rng(9);
    // 90% of writes to 10% of the space.
    for (uint64_t i = 0; i < 5 * pages; i++) {
      const bool hot = rng.Bernoulli(0.9);
      const uint64_t lpn = hot ? rng.Uniform(pages / 10)
                               : pages / 10 + rng.Uniform(pages * 9 / 10);
      ftl.HostWrite(lpn);
    }
    PTSB_CHECK_OK(ftl.CheckConsistency());
    wa[mode] = ftl.DeviceWriteAmplification();
  }
  EXPECT_GT(wa[0], 1.0);
  EXPECT_GT(wa[1], 1.0);
  EXPECT_NEAR(wa[0], wa[1], 0.25 * wa[1]);
}

// Property sweep: random mixes of writes and trims at several utilization
// levels and OP levels must preserve every FTL invariant.
class FtlPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double, uint64_t>> {};

TEST_P(FtlPropertyTest, RandomOpsPreserveInvariants) {
  const double utilization = std::get<0>(GetParam());
  const double op = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  FlashTranslationLayer ftl(SmallGeometry(16, op));
  const uint64_t pages = ftl.geometry().LogicalPages();
  const auto used = static_cast<uint64_t>(utilization * static_cast<double>(pages));
  Rng rng(seed);
  uint64_t host_expected = 0;
  for (uint64_t i = 0; i < 4 * pages; i++) {
    if (rng.Bernoulli(0.9)) {
      ftl.HostWrite(rng.Uniform(used));
      host_expected++;
    } else {
      ftl.Trim(rng.Uniform(used));
    }
  }
  ASSERT_TRUE(ftl.CheckConsistency().ok());
  const auto s = ftl.GetStats();
  EXPECT_EQ(s.host_pages_written, host_expected);
  EXPECT_GE(ftl.DeviceWriteAmplification(), 1.0);
  EXPECT_LE(s.valid_pages, used);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtlPropertyTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.75, 0.95),
                       ::testing::Values(0.08, 0.2),
                       ::testing::Values(11u, 22u)));

}  // namespace
}  // namespace ptsb::ssd
