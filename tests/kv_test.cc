// Tests for the kv layer: key/value codecs, the WriteBatch container and
// workload generation.
#include <gtest/gtest.h>

#include <map>

#include "kv/kv.h"
#include "kv/workload.h"
#include "kv/write_batch.h"

namespace ptsb::kv {
namespace {

TEST(WriteBatchTest, AccumulatesEntriesInOrder) {
  WriteBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.Put("a", "1");
  batch.Delete("bb");
  batch.Put("ccc", "22");
  EXPECT_EQ(batch.Count(), 3u);
  ASSERT_EQ(batch.entries().size(), 3u);
  EXPECT_EQ(batch.entries()[0].kind, WriteBatch::EntryKind::kPut);
  EXPECT_EQ(batch.entries()[0].key, "a");
  EXPECT_EQ(batch.entries()[0].value, "1");
  EXPECT_EQ(batch.entries()[1].kind, WriteBatch::EntryKind::kDelete);
  EXPECT_EQ(batch.entries()[1].key, "bb");
  EXPECT_EQ(batch.entries()[2].key, "ccc");
}

TEST(WriteBatchTest, ByteSizeCountsKeysAndValues) {
  WriteBatch batch;
  batch.Put("abc", "xy");   // 5 bytes
  batch.Delete("defg");     // 4 bytes (no value)
  EXPECT_EQ(batch.ByteSize(), 9u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.ByteSize(), 0u);
}

TEST(KeyTest, FixedWidthAndOrdered) {
  const std::string a = MakeKey(5);
  const std::string b = MakeKey(50);
  const std::string c = MakeKey(500000);
  EXPECT_EQ(a.size(), kDefaultKeyBytes);
  EXPECT_EQ(b.size(), kDefaultKeyBytes);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(KeyTest, ParseRoundTrip) {
  for (uint64_t id : {0ull, 1ull, 123456ull, 49'999'999ull}) {
    uint64_t out;
    ASSERT_TRUE(ParseKey(MakeKey(id), &out));
    EXPECT_EQ(out, id);
  }
  uint64_t out;
  EXPECT_FALSE(ParseKey("xxx", &out));
  EXPECT_FALSE(ParseKey("u12a4567890123456", &out));
}

TEST(KeyTest, CustomWidth) {
  const std::string k = MakeKey(7, 24);
  EXPECT_EQ(k.size(), 24u);
  uint64_t out;
  ASSERT_TRUE(ParseKey(k, &out));
  EXPECT_EQ(out, 7u);
}

TEST(ValueTest, RoundTripAndVerify) {
  const std::string v = MakeValue(12345, 4000);
  EXPECT_EQ(v.size(), 4000u);
  EXPECT_TRUE(VerifyValue(v));
  EXPECT_EQ(ValueSeed(v), 12345u);
}

TEST(ValueTest, CorruptionDetected) {
  std::string v = MakeValue(9, 128);
  v[64] ^= 0x01;
  EXPECT_FALSE(VerifyValue(v));
}

TEST(ValueTest, DifferentSeedsDiffer) {
  EXPECT_NE(MakeValue(1, 128), MakeValue(2, 128));
}

TEST(ValueTest, MinimumSize) {
  const std::string v = MakeValue(3, 16);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_TRUE(VerifyValue(v));
}

TEST(WorkloadTest, WriteOnlyProducesOnlyPuts) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.write_fraction = 1.0;
  WorkloadGenerator gen(spec);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(gen.Next().type, Op::Type::kPut);
  }
}

TEST(WorkloadTest, MixedRatioApproximatelyHolds) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.write_fraction = 0.5;
  WorkloadGenerator gen(spec);
  int puts = 0;
  const int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    puts += gen.Next().type == Op::Type::kPut ? 1 : 0;
  }
  EXPECT_NEAR(puts, kOps / 2, kOps / 20);
}

TEST(WorkloadTest, KeysInRangeAndCoverSpace) {
  WorkloadSpec spec;
  spec.num_keys = 100;
  WorkloadGenerator gen(spec);
  std::map<uint64_t, int> seen;
  for (int i = 0; i < 10000; i++) {
    const Op op = gen.Next();
    ASSERT_LT(op.key_id, 100u);
    seen[op.key_id]++;
  }
  EXPECT_EQ(seen.size(), 100u);  // uniform across the whole key space
}

TEST(WorkloadTest, ValueSeedsUniquePerOp) {
  WorkloadSpec spec;
  spec.num_keys = 10;
  WorkloadGenerator gen(spec);
  std::map<uint64_t, int> seeds;
  for (int i = 0; i < 1000; i++) seeds[gen.Next().value_seed]++;
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.seed = 42;
  WorkloadGenerator a(spec), b(spec);
  for (int i = 0; i < 100; i++) {
    const Op oa = a.Next();
    const Op ob = b.Next();
    EXPECT_EQ(oa.key_id, ob.key_id);
    EXPECT_EQ(oa.value_seed, ob.value_seed);
  }
}

TEST(WorkloadTest, ZipfianConcentrates) {
  WorkloadSpec spec;
  spec.num_keys = 100000;
  spec.distribution = Distribution::kZipfian;
  WorkloadGenerator gen(spec);
  uint64_t hot = 0;
  const int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    if (gen.Next().key_id < 1000) hot++;  // hottest 1%
  }
  EXPECT_GT(hot, static_cast<uint64_t>(kOps) / 5);
}

TEST(WorkloadTest, DeleteFractionCarvesDeletesOutOfWrites) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.write_fraction = 0.8;
  spec.delete_fraction = 0.25;
  WorkloadGenerator gen(spec);
  int puts = 0, deletes = 0, gets = 0;
  const int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    switch (gen.Next().type) {
      case Op::Type::kPut: puts++; break;
      case Op::Type::kDelete: deletes++; break;
      case Op::Type::kGet: gets++; break;
      default: FAIL() << "unexpected op type";
    }
  }
  // writes ~80%, of which ~25% deletes.
  EXPECT_NEAR(puts + deletes, kOps * 0.8, kOps * 0.05);
  EXPECT_NEAR(deletes, kOps * 0.8 * 0.25, kOps * 0.05);
  EXPECT_NEAR(gets, kOps * 0.2, kOps * 0.05);
}

TEST(WorkloadTest, BatchSizeTurnsPutsIntoBatchPuts) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.batch_size = 16;
  WorkloadGenerator gen(spec);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(gen.Next().type, Op::Type::kBatchPut);
  }
}

TEST(WorkloadTest, ScanFractionCarvesScansOutOfReads) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.write_fraction = 0.0;
  spec.scan_fraction = 0.5;
  WorkloadGenerator gen(spec);
  int scans = 0, gets = 0;
  const int kOps = 10000;
  for (int i = 0; i < kOps; i++) {
    const Op op = gen.Next();
    if (op.type == Op::Type::kScan) {
      scans++;
    } else {
      ASSERT_EQ(op.type, Op::Type::kGet);
      gets++;
    }
  }
  EXPECT_NEAR(scans, kOps / 2, kOps / 20);
  EXPECT_NEAR(gets, kOps / 2, kOps / 20);
}

TEST(WorkloadTest, BatchFillDrawsAreDeterministic) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.batch_size = 8;
  spec.seed = 99;
  WorkloadGenerator a(spec), b(spec);
  for (int i = 0; i < 50; i++) {
    const Op oa = a.Next();
    const Op ob = b.Next();
    EXPECT_EQ(oa.key_id, ob.key_id);
    for (size_t j = 1; j < spec.batch_size; j++) {
      EXPECT_EQ(a.NextKeyId(), b.NextKeyId());
      EXPECT_EQ(a.NextValueSeed(), b.NextValueSeed());
    }
  }
}

TEST(WorkloadTest, DatasetBytesMatchesPaperMath) {
  WorkloadSpec spec;  // 50M x (16 + 4000)
  EXPECT_NEAR(static_cast<double>(spec.DatasetBytes()), 200.8e9, 1e9);
}

}  // namespace
}  // namespace ptsb::kv
