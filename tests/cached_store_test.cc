// CachedStore: the wrapper-specific contracts the differential battery
// cannot see from the outside — crash replay of the durability log (a
// kill before any flush must not lose buffered writes), 2Q scan
// resistance (one full iterator pass must not evict the hot working
// set), exact hit/miss accounting on a scripted trace, write-buffer
// coalescing accounting, and configuration rejection (bad policy, bad
// watermark, META mismatch on reopen).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "block/memory_device.h"
#include "cached/cached_store.h"
#include "cached/read_cache.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "test_support.h"

namespace ptsb {
namespace {

struct Harness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<cached::CachedStore> store;
};

// Opens a typed CachedStore (not through the registry) so tests can reach
// the introspection hooks (BufferBytes/InnerStats).
void OpenCached(Harness* h, std::map<std::string, std::string> params,
                const std::string& root = "") {
  kv::RegisterBuiltinEngines();
  kv::EngineOptions options;
  options.engine = "cached";
  options.fs = &h->fs;
  options.root = root;
  options.params = std::move(params);
  auto opened = cached::CachedStore::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  h->store = *std::move(opened);
}

TEST(CachedStoreTest, RejectsBadConfigurations) {
  kv::RegisterBuiltinEngines();
  Harness h;
  kv::EngineOptions options;
  options.engine = "cached";
  options.fs = &h.fs;

  options.params = {{"read_cache_policy", "clock-pro"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  // A bad policy must fail even with the cache disabled — a typo that
  // only bites when the cache is later enabled is a silent footgun.
  options.params = {{"read_cache_policy", "lruu"}, {"read_cache_bytes", "0"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  options.params = {{"write_buffer_bytes", "0"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  options.params = {{"flush_watermark", "0"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  options.params = {{"flush_watermark", "1.5"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  options.params = {{"inner_engine", "cached"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
  options.params = {{"inner_engine", "no-such-engine"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).status().IsInvalidArgument());
}

TEST(CachedStoreTest, MetaRejectsInnerEngineMismatchOnReopen) {
  Harness h;
  OpenCached(&h, {{"inner_engine", "lsm"}}, "meta-check");
  ASSERT_TRUE(h.store->Put("k", "v").ok());
  ASSERT_TRUE(h.store->Close().ok());
  h.store.reset();

  kv::EngineOptions options;
  options.engine = "cached";
  options.fs = &h.fs;
  options.root = "meta-check";
  options.params = {{"inner_engine", "btree"}};
  const Status s = cached::CachedStore::Open(options).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  options.params = {{"inner_engine", "lsm"}};
  EXPECT_TRUE(cached::CachedStore::Open(options).ok());
}

// The headline durability claim: writes that only ever reached the write
// buffer (never flushed to the inner engine) survive a crash, because the
// wrapper's own log is synced per record and replayed on open. The trace
// also overwrites and deletes keys that WERE flushed earlier, so replay
// must shadow inner-engine state, not just restore missing keys.
TEST(CachedStoreTest, CrashBeforeFlushReplaysDurabilityLog) {
  Harness h;
  const std::map<std::string, std::string> params = {
      {"inner_engine", "lsm"},
      {"write_buffer_bytes", std::to_string(1 << 20)},  // never auto-flush
      {"log_sync_every_bytes", "1"},
  };
  OpenCached(&h, params, "crash");

  testing::ReferenceModel model;
  auto put = [&](const std::string& k, const std::string& v) {
    ASSERT_TRUE(h.store->Put(k, v).ok());
    model.Put(k, v);
  };
  for (int i = 0; i < 20; i++) {
    put("k" + std::to_string(100 + i), "flushed-" + std::to_string(i));
  }
  ASSERT_TRUE(h.store->Flush().ok());  // k100..k119 now live in the inner lsm
  ASSERT_EQ(h.store->BufferEntries(), 0u);

  // Buffered-only tail: new keys, overwrites of flushed keys, deletes of
  // flushed keys — none of it flushed again before the crash.
  for (int i = 0; i < 10; i++) {
    put("k" + std::to_string(200 + i), "buffered-" + std::to_string(i));
  }
  for (int i = 0; i < 5; i++) {
    put("k" + std::to_string(100 + i), "rewritten-" + std::to_string(i));
  }
  kv::WriteBatch batch;
  for (int i = 5; i < 10; i++) {
    batch.Delete("k" + std::to_string(100 + i));
    model.Delete("k" + std::to_string(100 + i));
  }
  ASSERT_TRUE(h.store->Write(batch).ok());
  ASSERT_GT(h.store->BufferEntries(), 0u);

  h.fs.SimulateCrash();
  // Abandon the handle without Close() — Close would flush the buffer and
  // defeat the point. (Deliberate leak, same idiom as the differential
  // crash tests.)
  h.store.release();

  OpenCached(&h, params, "crash");
  testing::VerifyAll(h.store.get(), model);
  for (int i = 5; i < 10; i++) {
    std::string value;
    EXPECT_TRUE(
        h.store->Get("k" + std::to_string(100 + i), &value).IsNotFound());
  }
  // The replayed tail lives in the buffer again; recovery must not have
  // pushed it into the inner engine behind the user's back. (The inner
  // engine's in-memory counters start at zero on reopen, so any write
  // during replay would show here.)
  EXPECT_GT(h.store->BufferEntries(), 0u);
  EXPECT_EQ(h.store->InnerStats().user_puts, 0u);
  EXPECT_EQ(h.store->InnerStats().user_deletes, 0u);

  // And the iterator stream over buffer+inner matches the model exactly.
  auto it = h.store->NewIterator();
  auto expected = model.map().begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.map().end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(expected, model.map().end());
}

// Loads hot + filler keys through the read cache and checks the policy
// contract: under 2Q a full iterator scan must not evict a hot working
// set that earned its way into the long-lived queue, while under LRU the
// same scan wipes it out.
void RunScanResistanceTrace(const std::string& policy,
                            uint64_t expected_hot_hits_after_scan) {
  Harness h;
  OpenCached(&h,
             {{"inner_engine", "lsm"},
              {"read_cache_bytes", "4096"},
              {"read_cache_policy", policy}},
             "scan-" + policy);

  const std::string value(100, 'v');
  std::vector<std::string> hot, filler;
  for (int i = 0; i < 10; i++) {
    hot.push_back("h0" + std::to_string(i));  // scans reach these FIRST
  }
  for (int i = 0; i < 200; i++) {
    std::string k = "z" + std::to_string(i);
    k.insert(1, 3 - (k.size() - 1), '0');  // z000..z199, sorted after hot
    filler.push_back(k);
  }
  kv::WriteBatch load;
  for (const std::string& k : hot) load.Put(k, value);
  for (const std::string& k : filler) load.Put(k, value);
  ASSERT_TRUE(h.store->Write(load).ok());
  ASSERT_TRUE(h.store->Flush().ok());  // empty the buffer: reads now probe
  ASSERT_EQ(h.store->BufferEntries(), 0u);  // cache, then the inner engine

  std::string got;
  auto get_hot_hits = [&] {
    const uint64_t before = h.store->GetStats().cache_hits;
    for (const std::string& k : hot) {
      EXPECT_TRUE(h.store->Get(k, &got).ok()) << k;
    }
    return h.store->GetStats().cache_hits - before;
  };

  // Touch the hot set, flood past the probationary queue, touch it again:
  // under 2Q the re-reference hits the ghost list and promotes the hot
  // keys into the protected queue; under LRU it is just another insert.
  get_hot_hits();
  for (int i = 0; i < 15; i++) {
    EXPECT_TRUE(h.store->Get(filler[static_cast<size_t>(i)], &got).ok());
  }
  get_hot_hits();
  EXPECT_EQ(get_hot_hits(), 10u) << policy << ": hot set not resident";

  // One full scan over the whole store (hot keys first, then 20KiB of
  // filler — 5x the cache budget).
  auto it = h.store->NewIterator();
  size_t seen = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) seen++;
  ASSERT_TRUE(it->status().ok());
  ASSERT_EQ(seen, hot.size() + filler.size());

  EXPECT_EQ(get_hot_hits(), expected_hot_hits_after_scan) << policy;
}

TEST(CachedStoreTest, TwoQSurvivesFullScan) {
  RunScanResistanceTrace("2q", 10);
}

TEST(CachedStoreTest, LruLosesHotSetToFullScan) {
  RunScanResistanceTrace("lru", 0);
}

// Every hit/miss on a scripted trace, counted by hand: buffer hits,
// tombstone hits, read-cache hits, inner misses (found and NotFound),
// and the sequential MultiGet path.
TEST(CachedStoreTest, HitAndMissCountersAreExact) {
  Harness h;
  OpenCached(&h, {{"inner_engine", "lsm"}, {"read_cache_policy", "lru"}},
             "counters");
  std::string got;

  ASSERT_TRUE(h.store->Put("a", "va").ok());
  ASSERT_TRUE(h.store->Put("b", "vb").ok());
  ASSERT_TRUE(h.store->Put("c", "vc").ok());

  EXPECT_TRUE(h.store->Get("a", &got).ok());        // buffer hit     (h=1)
  EXPECT_TRUE(h.store->Get("x", &got).IsNotFound());  // inner miss   (m=1)
  ASSERT_TRUE(h.store->Flush().ok());  // buffer emptied into the inner lsm

  EXPECT_TRUE(h.store->Get("a", &got).ok());  // inner miss, fills    (m=2)
  EXPECT_TRUE(h.store->Get("a", &got).ok());  // read-cache hit       (h=2)
  EXPECT_TRUE(h.store->Get("b", &got).ok());  // inner miss, fills    (m=3)
  EXPECT_TRUE(h.store->Get("b", &got).ok());  // read-cache hit       (h=3)

  ASSERT_TRUE(h.store->Delete("b").ok());  // tombstone evicts cached "b"
  EXPECT_TRUE(h.store->Get("b", &got).IsNotFound());  // buffer hit   (h=4)

  const std::vector<std::string_view> keys = {"a", "c", "z"};
  std::vector<std::string> values;
  const std::vector<Status> statuses = h.store->MultiGet(keys, &values);
  EXPECT_TRUE(statuses[0].ok());           // read-cache hit          (h=5)
  EXPECT_TRUE(statuses[1].ok());           // inner miss, fills       (m=4)
  EXPECT_TRUE(statuses[2].IsNotFound());   // inner miss              (m=5)

  const kv::KvStoreStats stats = h.store->GetStats();
  EXPECT_EQ(stats.cache_hits, 5u);
  EXPECT_EQ(stats.cache_misses, 5u);
  EXPECT_EQ(stats.user_gets, 10u);
}

// Rewrites absorbed by the buffer are counted byte-exactly and never
// reach the inner engine; the eventual drain is one group-commit batch.
TEST(CachedStoreTest, CoalescingIsCountedAndKeptOffTheInnerEngine) {
  Harness h;
  OpenCached(&h, {{"inner_engine", "lsm"}}, "coalesce");

  const std::string value(100, 'w');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(h.store->Put("key", value).ok());
  }
  kv::KvStoreStats stats = h.store->GetStats();
  // 49 overwrites, each absorbing the previous 3+100 byte entry.
  EXPECT_EQ(stats.buffer_coalesced_bytes, 49u * 103u);
  EXPECT_EQ(stats.flush_batches, 0u);
  EXPECT_EQ(h.store->InnerStats().user_puts, 0u);
  EXPECT_EQ(h.store->BufferEntries(), 1u);

  ASSERT_TRUE(h.store->Flush().ok());
  stats = h.store->GetStats();
  EXPECT_EQ(stats.flush_batches, 1u);
  EXPECT_EQ(h.store->InnerStats().user_puts, 1u);  // one key, one batch
  std::string got;
  ASSERT_TRUE(h.store->Get("key", &got).ok());
  EXPECT_EQ(got, value);
}

// Largest-coalesced-first victim selection: the entry that keeps being
// rewritten stays buffered across a flush while cold entries drain.
TEST(CachedStoreTest, FlushEvictsLargestCoalescedEntriesFirst) {
  Harness h;
  OpenCached(&h,
             {{"inner_engine", "lsm"},
              {"write_buffer_bytes", "4096"},
              {"flush_watermark", "0.5"}},
             "victims");

  const std::string value(200, 'x');
  // One hot key rewritten ten times: its absorbed bytes dwarf everything
  // else, making it the top flush victim by design (most payoff per
  // inner write).
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(h.store->Put("hot", value).ok());
  }
  // Cold keys fill the buffer to the 4KiB capacity; the crossing write
  // triggers an inline flush down to the 2KiB watermark.
  for (int i = 0; i < 30 && h.store->GetStats().flush_batches == 0; i++) {
    ASSERT_TRUE(h.store->Put("cold" + std::to_string(i), value).ok());
  }
  const kv::KvStoreStats stats = h.store->GetStats();
  ASSERT_EQ(stats.flush_batches, 1u);
  EXPECT_LE(h.store->BufferBytes(), 2048u);
  EXPECT_GT(h.store->BufferEntries(), 0u);  // cold survivors stayed behind
  // "hot" had by far the largest absorbed bytes, so it must be among the
  // flush victims: a fresh Get misses the buffer (and the cache, which
  // every rewrite invalidated) and finds the value in the inner engine.
  const uint64_t misses_before = stats.cache_misses;
  std::string got;
  ASSERT_TRUE(h.store->Get("hot", &got).ok());
  EXPECT_EQ(got, value);
  EXPECT_EQ(h.store->GetStats().cache_misses, misses_before + 1);
}

}  // namespace
}  // namespace ptsb
