// Tests for the SSD's inter-class QoS scheduler (SsdConfig::
// background_slice_ns / class_weights / background_rate_mbps): exact
// preemption bounds, weighted-service grants, token-bucket refill
// arithmetic, FIFO equivalence of the no-knob configuration, and
// per-class conservation of scheduled backend work across settings.
//
// Timing parameters are chosen so every expected timestamp is exact
// integer nanoseconds: 4 KiB pages program at 10 us/page
// (program_bw 409.6 MB/s), cross the host bus at 1 us/page
// (host_write_bw 4.096 GB/s), and read at 10 us/page with zero command
// latency. No write cache: commands are synchronous with the backend,
// so the schedule is directly visible in the clock.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include "sim/clock.h"
#include "sim/io_class.h"
#include "ssd/ssd_device.h"
#include "util/random.h"

namespace ptsb::ssd {
namespace {

constexpr int64_t kPageProgramNs = 10'000;  // 4096 B at 409.6 MB/s
constexpr int64_t kPageHostNs = 1'000;      // 4096 B at 4.096 GB/s

SsdConfig QosTestConfig() {
  SsdConfig c;
  c.geometry.page_bytes = 4096;
  c.geometry.pages_per_block = 64;
  c.geometry.logical_bytes = 16ull << 20;
  c.timing.cache_bytes = 0;  // synchronous with the backend
  c.timing.program_bw = 409.6e6;
  c.timing.host_write_bw = 4.096e9;
  c.timing.write_ack_latency_ns = 0;
  c.timing.read_latency_ns = 0;
  c.timing.read_bw = 409.6e6;
  c.timing.read_interference = 0;
  c.timing.flush_latency_ns = 0;
  return c;
}

// Books a background span of `pages` programs on channel 0 via a
// background lane forked at the CURRENT global time (the global clock
// does not move — exactly how kv::RunBackgroundWork books compaction
// ahead of the foreground).
void BookBackground(sim::SimClock* clock, SsdDevice* dev, uint64_t lba,
                    uint64_t pages) {
  ASSERT_TRUE(clock->BeginAsync(1, sim::IoClass::kBackground));
  ASSERT_TRUE(dev->Write(lba, pages, nullptr).ok());
  clock->EndAsync();
}

SsdDevice::ChannelStats Chan0(const SsdDevice& dev) {
  return dev.channel_stats()[0];
}

TEST(QosSchedulerTest, ForegroundWaitBoundedByOneQuantumExactly) {
  sim::SimClock clock;
  SsdConfig cfg = QosTestConfig();
  cfg.background_slice_ns = 100'000;  // 100 us quantum
  SsdDevice dev(cfg, &clock);

  // 32 background pages book one service period [0, 320us) while the
  // foreground clock stays at 0.
  BookBackground(&clock, &dev, 1000, 32);
  ASSERT_EQ(clock.NowNanos(), 0);

  // A foreground write arriving 50 us into the period starts at the
  // next slice boundary (100 us), NOT at the period's end (320 us):
  // scheduling delay is 50 us, bounded by one quantum.
  clock.Advance(50'000);
  ASSERT_TRUE(dev.Write(0, 1, nullptr).ok());
  // AdvanceTo(boundary 100us) + 1 page host transfer.
  EXPECT_EQ(clock.NowNanos(), 101'000);
  auto s = Chan0(dev);
  EXPECT_EQ(s.preemptions, 1u);
  const auto fw = static_cast<size_t>(sim::IoClass::kForegroundWrite);
  const auto bg = static_cast<size_t>(sim::IoClass::kBackground);
  EXPECT_EQ(s.class_wait_ns[fw], 50'000);

  // A second write (ready when the first completes at 110 us, still
  // mid-period) waits exactly to the NEXT boundary of the same grid:
  // 200 us, a 90 us delay — again under one quantum.
  ASSERT_TRUE(dev.Write(1, 1, nullptr).ok());
  EXPECT_EQ(clock.NowNanos(), 201'000);
  s = Chan0(dev);
  EXPECT_EQ(s.preemptions, 2u);
  EXPECT_EQ(s.class_wait_ns[fw], 50'000 + 90'000);

  // The two preempted programs (10 us each) displaced 20 us of booked
  // background; the next background booking pays that debt: it starts
  // at 320us (its own backlog) + 20us of debt, waiting 20 us.
  BookBackground(&clock, &dev, 1100, 1);
  s = Chan0(dev);
  EXPECT_EQ(s.class_wait_ns[bg], 20'000);
  // Conservation: 33 background + 2 foreground programs, to the ns.
  EXPECT_EQ(s.class_scheduled_ns[bg], 33 * kPageProgramNs);
  EXPECT_EQ(s.class_scheduled_ns[fw], 2 * kPageProgramNs);
}

TEST(QosSchedulerTest, WeightedServiceGrantsFollowTheRatios) {
  // At a preemption point, the displaced background may interleave up
  // to cost * w_bg / w_fg inside the foreground window; the foreground
  // command's completion (and its class_wait) stretch by the grant.
  const auto run = [](std::array<int, sim::kNumIoClasses> weights) {
    sim::SimClock clock;
    SsdConfig cfg = QosTestConfig();
    cfg.background_slice_ns = 100'000;
    cfg.class_weights = weights;
    SsdDevice dev(cfg, &clock);
    BookBackground(&clock, &dev, 1000, 32);  // period [0, 320us)
    clock.Advance(50'000);
    EXPECT_TRUE(dev.Write(0, 1, nullptr).ok());
    const auto fw = static_cast<size_t>(sim::IoClass::kForegroundWrite);
    return Chan0(dev).class_wait_ns[fw];
  };
  // w_bg : w_fw = 2 : 1 -> grant 2 x cost = 20 us on top of the 50 us
  // boundary wait; 1 : 2 -> grant cost / 2 = 5 us; zero weights ->
  // strict priority, no grant.
  EXPECT_EQ(run({1, 1, 2}), 50'000 + 20'000);
  EXPECT_EQ(run({1, 2, 1}), 50'000 + 5'000);
  EXPECT_EQ(run({0, 0, 0}), 50'000);
}

TEST(QosSchedulerTest, TokenBucketRefillArithmeticExact) {
  // rate = 100 MB/s, bucket capacity max(rate/100, 1 MiB) = 1 MiB.
  // A 2 MiB background write goes in two 1 MiB batches: the first
  // drains the full bucket; by the time the second asks (256 us of
  // host transfer later) the bucket holds 256us * 100MB/s = 25600
  // bytes, so it waits ceil((1048576 - 25600) * 1e9 / 1e8) ns.
  sim::SimClock clock;
  SsdConfig cfg = QosTestConfig();
  cfg.background_rate_mbps = 100;
  SsdDevice dev(cfg, &clock);

  ASSERT_TRUE(clock.BeginAsync(1, sim::IoClass::kBackground));
  ASSERT_TRUE(dev.Write(0, 512, nullptr).ok());
  clock.EndAsync();

  const auto s = Chan0(dev);
  EXPECT_EQ(s.bg_throttled_ns, 10'229'760);
  EXPECT_EQ(dev.smart().host_bytes_written, 2ull << 20);
  // Throttling delays work; it must not create or destroy any.
  const auto bg = static_cast<size_t>(sim::IoClass::kBackground);
  EXPECT_EQ(s.class_scheduled_ns[bg], 512 * kPageProgramNs);
}

// A mixed foreground/background workload (no background reads — those
// are schedulable spans only under QoS) used for the equivalence and
// conservation checks below.
struct WorkloadResult {
  int64_t final_ns = 0;
  SsdDevice::TimeBreakdown times;
  SsdDevice::ChannelStats chan;
  SmartCounters smart;
};

WorkloadResult RunMixedWorkload(const SsdConfig& cfg) {
  sim::SimClock clock;
  SsdDevice dev(cfg, &clock);
  std::vector<uint8_t> buf(4096 * 4);
  Rng rng(11);
  rng.FillBytes(buf.data(), buf.size());
  for (int i = 0; i < 24; i++) {
    EXPECT_TRUE(dev.Write(4 * static_cast<uint64_t>(i), 4, buf.data()).ok());
    if (i % 3 == 0) {
      EXPECT_TRUE(clock.BeginAsync(1, sim::IoClass::kBackground));
      EXPECT_TRUE(
          dev.Write(2000 + 16 * static_cast<uint64_t>(i), 16, nullptr).ok());
      clock.EndAsync();
    }
    if (i % 5 == 0) {
      EXPECT_TRUE(dev.Read(4 * static_cast<uint64_t>(i), 4, buf.data()).ok());
    }
  }
  WorkloadResult r;
  r.final_ns = clock.NowNanos();
  r.times = dev.time_breakdown();
  r.chan = dev.channel_stats()[0];
  r.smart = dev.smart();
  return r;
}

TEST(QosSchedulerTest, NoKnobConfigIsFifoToTheNanosecond) {
  // The zero-config device must reproduce pre-QoS FIFO timing exactly.
  // An effectively-inert QoS config (slice 0 = no preemption, weights 0
  // = no interleave, admission rate far above the workload) routes every
  // command through the scheduler yet must land every one of them on
  // the very same nanosecond as the legacy FIFO path.
  WorkloadResult fifo = RunMixedWorkload(QosTestConfig());
  SsdConfig inert = QosTestConfig();
  inert.background_rate_mbps = 1e6;  // QoS on, never throttles
  WorkloadResult qos = RunMixedWorkload(inert);

  EXPECT_EQ(fifo.final_ns, qos.final_ns);
  EXPECT_EQ(fifo.times.read_ns, qos.times.read_ns);
  EXPECT_EQ(fifo.times.read_interference_ns, qos.times.read_interference_ns);
  EXPECT_EQ(fifo.times.write_host_ns, qos.times.write_host_ns);
  EXPECT_EQ(fifo.times.write_stall_ns, qos.times.write_stall_ns);
  EXPECT_EQ(fifo.chan.busy_ns, qos.chan.busy_ns);
  EXPECT_EQ(fifo.chan.scheduled_ns, qos.chan.scheduled_ns);
  EXPECT_EQ(fifo.chan.class_busy_ns, qos.chan.class_busy_ns);
  EXPECT_EQ(fifo.chan.class_bytes, qos.chan.class_bytes);
  EXPECT_EQ(fifo.smart.host_bytes_written, qos.smart.host_bytes_written);
  EXPECT_EQ(fifo.smart.nand_bytes_written, qos.smart.nand_bytes_written);

  // And the no-knob run never touches a QoS counter.
  EXPECT_EQ(fifo.chan.preemptions, 0u);
  EXPECT_EQ(fifo.chan.bg_throttled_ns, 0);
  for (int64_t w : fifo.chan.class_wait_ns) EXPECT_EQ(w, 0);
}

TEST(QosSchedulerTest, ScheduledWorkConservedAcrossSettings) {
  // Per-class scheduled_ns is a pure function of the command byte
  // stream: every QoS setting must agree with FIFO exactly, class by
  // class, even though the settings place the work at different times.
  const WorkloadResult base = RunMixedWorkload(QosTestConfig());
  SsdConfig sliced = QosTestConfig();
  sliced.background_slice_ns = 50'000;
  SsdConfig weighted = QosTestConfig();
  weighted.background_slice_ns = 200'000;
  weighted.class_weights = {1, 1, 1};
  SsdConfig throttled = QosTestConfig();
  throttled.background_slice_ns = 100'000;
  throttled.background_rate_mbps = 40;
  SsdConfig rate_only = QosTestConfig();
  rate_only.background_rate_mbps = 25;
  for (const SsdConfig& cfg : {sliced, weighted, throttled, rate_only}) {
    const WorkloadResult r = RunMixedWorkload(cfg);
    EXPECT_EQ(r.chan.scheduled_ns, base.chan.scheduled_ns);
    EXPECT_EQ(r.chan.class_scheduled_ns, base.chan.class_scheduled_ns);
    EXPECT_EQ(r.chan.class_bytes, base.chan.class_bytes);
    EXPECT_EQ(r.smart.nand_bytes_written, base.smart.nand_bytes_written);
  }
}

TEST(QosSchedulerTest, BackgroundReadsAreSchedulableSpansUnderQos) {
  // Under QoS a background read books into the background timeline, so
  // a later foreground write preempts the read span at a slice
  // boundary instead of ignoring it.
  sim::SimClock clock;
  SsdConfig cfg = QosTestConfig();
  cfg.background_slice_ns = 100'000;
  SsdDevice dev(cfg, &clock);
  ASSERT_TRUE(dev.Write(1000, 32, nullptr).ok());
  // Let the write's own booked span elapse, so the read books a fresh
  // background period anchored at t0.
  clock.Advance(320'000);
  const int64_t t0 = clock.NowNanos();

  std::vector<uint8_t> buf(4096 * 32);
  ASSERT_TRUE(clock.BeginAsync(1, sim::IoClass::kBackground));
  ASSERT_TRUE(dev.Read(1000, 32, buf.data()).ok());  // [t0, t0+320us)
  clock.EndAsync();

  clock.Advance(50'000);
  ASSERT_TRUE(dev.Write(0, 1, nullptr).ok());
  // Boundary of the read span's grid at t0 + 100us, + 1 page host.
  EXPECT_EQ(clock.NowNanos(), t0 + 101'000);
  EXPECT_EQ(Chan0(dev).preemptions, 1u);
}

TEST(QosSchedulerTest, ConcurrentMixedClassesKeepInvariants) {
  // Multi-threaded hammering of one channel with all knobs on: the
  // scheduler state lives under the device lock, so this is primarily
  // a TSan target. Invariants: totals match per-class splits, contents
  // survive, and conservation holds against a serial run of the same
  // per-thread command streams.
  sim::SimClock clock;
  SsdConfig cfg = QosTestConfig();
  cfg.background_slice_ns = 20'000;
  cfg.class_weights = {1, 1, 1};
  cfg.background_rate_mbps = 50;
  SsdDevice dev(cfg, &clock);

  std::thread fg([&] {
    std::vector<uint8_t> buf(4096 * 2, 0x5a);
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(dev.Write(2 * (static_cast<uint64_t>(i) % 64), 2,
                            buf.data()).ok());
    }
  });
  std::thread bg([&] {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(clock.BeginAsync(1, sim::IoClass::kBackground));
      ASSERT_TRUE(dev.Write(1024 + 8 * (static_cast<uint64_t>(i) % 32), 8,
                            nullptr).ok());
      clock.EndAsync();
    }
  });
  std::thread rd([&] {
    std::vector<uint8_t> buf(4096);
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(dev.Read(static_cast<uint64_t>(i) % 128, 1,
                           buf.data()).ok());
    }
  });
  fg.join();
  bg.join();
  rd.join();

  const auto s = Chan0(dev);
  int64_t class_sum = 0;
  for (int64_t v : s.class_scheduled_ns) class_sum += v;
  EXPECT_EQ(class_sum, s.scheduled_ns);
  const auto fw = static_cast<size_t>(sim::IoClass::kForegroundWrite);
  const auto bg_c = static_cast<size_t>(sim::IoClass::kBackground);
  EXPECT_EQ(s.class_scheduled_ns[fw], 200 * 2 * kPageProgramNs);
  EXPECT_EQ(s.class_scheduled_ns[bg_c], 50 * 8 * kPageProgramNs);
  // Foreground contents survived the scheduling scrum.
  std::vector<uint8_t> buf(4096 * 2);
  ASSERT_TRUE(dev.Read(0, 2, buf.data()).ok());
  for (uint8_t b : buf) EXPECT_EQ(b, 0x5a);
  (void)kPageHostNs;
}

}  // namespace
}  // namespace ptsb::ssd
