// Tests for B+Tree building blocks: block manager (allocation, deferred
// frees, persistence) and node serialization.
#include <gtest/gtest.h>

#include "block/memory_device.h"
#include "btree/block_manager.h"
#include "btree/node.h"
#include "fs/file.h"
#include "fs/filesystem.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::btree {
namespace {

constexpr uint64_t kUnit = BlockManager::kUnit;

class BlockManagerTest : public ::testing::Test {
 protected:
  BlockManagerTest() : dev_(4096, 4096), fs_(&dev_, {}) {
    file_ = *fs_.Create("tree");
    PTSB_CHECK_OK(file_->Extend(2 * kUnit));
  }
  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
  fs::File* file_;
};

TEST_F(BlockManagerTest, AllocateRoundsUpToUnit) {
  BlockManager bm(file_, 2 * kUnit, true, 16 * kUnit);
  auto a = bm.Allocate(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->bytes, kUnit);
  EXPECT_EQ(a->offset % kUnit, 0u);
  EXPECT_GE(a->offset, 2 * kUnit);
  EXPECT_EQ(bm.allocated_bytes(), kUnit);
}

TEST_F(BlockManagerTest, FreedBlocksNotReusedUntilMerge) {
  BlockManager bm(file_, 2 * kUnit, true, 4 * kUnit);
  auto a = *bm.Allocate(kUnit);
  bm.Free(a);
  // Before the merge, the same offset must not be handed out again.
  auto b = *bm.Allocate(kUnit);
  EXPECT_NE(b.offset, a.offset);
  bm.MergePendingFrees();
  // Now the low offset is preferred (first fit).
  auto c = *bm.Allocate(kUnit);
  EXPECT_EQ(c.offset, a.offset);
  EXPECT_TRUE(bm.CheckConsistency().ok());
}

TEST_F(BlockManagerTest, FirstFitKeepsFootprintCompact) {
  BlockManager bm(file_, 2 * kUnit, true, 64 * kUnit);
  std::vector<BlockAddr> blocks;
  for (int i = 0; i < 32; i++) blocks.push_back(*bm.Allocate(kUnit));
  const uint64_t end_before = bm.file_bytes();
  // Free everything, merge, and reallocate: no growth.
  for (const auto& b : blocks) bm.Free(b);
  bm.MergePendingFrees();
  for (int i = 0; i < 32; i++) blocks[i] = *bm.Allocate(kUnit);
  EXPECT_EQ(bm.file_bytes(), end_before);
  EXPECT_TRUE(bm.CheckConsistency().ok());
}

TEST_F(BlockManagerTest, AppendOnlyModeGrowsForever) {
  BlockManager bm(file_, 2 * kUnit, /*reuse_freed_blocks=*/false, 4 * kUnit);
  auto a = *bm.Allocate(4 * kUnit);
  bm.Free(a);
  bm.MergePendingFrees();
  auto b = *bm.Allocate(4 * kUnit);
  EXPECT_GT(b.offset, a.offset);  // never reuses the freed range
}

TEST_F(BlockManagerTest, EncodeDecodeRoundTrip) {
  BlockManager bm(file_, 2 * kUnit, true, 8 * kUnit);
  auto a = *bm.Allocate(2 * kUnit);
  auto b = *bm.Allocate(3 * kUnit);
  bm.Free(a);
  bm.MergePendingFrees();
  const std::string blob = bm.EncodeFreeList();

  BlockManager restored(file_, 2 * kUnit, true, 8 * kUnit);
  ASSERT_TRUE(restored.DecodeFreeList(blob).ok());
  EXPECT_EQ(restored.file_bytes(), bm.file_bytes());
  EXPECT_EQ(restored.allocated_bytes(), bm.allocated_bytes());
  EXPECT_EQ(restored.free_bytes(), bm.free_bytes());
  // And the restored instance allocates from the same free space.
  auto c = *restored.Allocate(kUnit);
  EXPECT_EQ(c.offset, a.offset);
  (void)b;
}

TEST_F(BlockManagerTest, MergedEncodingIncludesPendingAndExtra) {
  BlockManager bm(file_, 2 * kUnit, true, 8 * kUnit);
  auto keep = *bm.Allocate(kUnit);
  auto freed = *bm.Allocate(kUnit);
  auto old_blob = *bm.Allocate(kUnit);
  bm.Free(freed);  // pending
  const std::string blob = bm.EncodeMergedFreeList(old_blob);

  BlockManager restored(file_, 2 * kUnit, true, 8 * kUnit);
  ASSERT_TRUE(restored.DecodeFreeList(blob).ok());
  // Post-commit view: only `keep` stays allocated (Free() already removed
  // `freed` from the allocated count; `old_blob` is subtracted as extra);
  // `freed` and `old_blob` are both free space.
  EXPECT_EQ(restored.allocated_bytes(), kUnit);
  EXPECT_GE(restored.free_bytes(), 2 * kUnit);
  (void)keep;
}

TEST_F(BlockManagerTest, DecodeRejectsGarbage) {
  BlockManager bm(file_, 2 * kUnit, true, 8 * kUnit);
  EXPECT_FALSE(bm.DecodeFreeList("nonsense").ok());
}

TEST_F(BlockManagerTest, StressRandomAllocFree) {
  BlockManager bm(file_, 2 * kUnit, true, 32 * kUnit);
  Rng rng(5);
  std::vector<BlockAddr> live;
  for (int i = 0; i < 3000; i++) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      auto a = bm.Allocate(rng.UniformRange(1, 6 * kUnit));
      ASSERT_TRUE(a.ok());
      live.push_back(*a);
    } else {
      const size_t idx = rng.Uniform(live.size());
      bm.Free(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    if (i % 100 == 0) bm.MergePendingFrees();
    ASSERT_TRUE(bm.CheckConsistency().ok()) << "iteration " << i;
  }
  uint64_t live_bytes = 0;
  for (const auto& a : live) live_bytes += a.bytes;
  EXPECT_EQ(bm.allocated_bytes(), live_bytes);
}

TEST(NodeTest, LeafSerializeRoundTrip) {
  Node leaf;
  leaf.is_leaf = true;
  leaf.items = {{"alpha", "1"}, {"beta", std::string(5000, 'x')}, {"gamma", ""}};
  leaf.bytes = leaf.RecomputeBytes();
  auto restored = Node::Deserialize(leaf.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE((*restored)->is_leaf);
  ASSERT_EQ((*restored)->items.size(), 3u);
  EXPECT_EQ((*restored)->items[1].second.size(), 5000u);
  EXPECT_EQ((*restored)->bytes, leaf.bytes);
}

TEST(NodeTest, InternalSerializeRoundTrip) {
  Node internal;
  internal.is_leaf = false;
  for (int i = 0; i < 5; i++) {
    Node::ChildRef ref;
    ref.first_key = "key" + std::to_string(i * 10);
    ref.addr = BlockAddr{static_cast<uint64_t>(i) * 8192, 4096};
    internal.children.push_back(std::move(ref));
  }
  auto restored = Node::Deserialize(internal.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE((*restored)->is_leaf);
  ASSERT_EQ((*restored)->children.size(), 5u);
  EXPECT_EQ((*restored)->children[3].addr.offset, 3u * 8192);
  EXPECT_EQ((*restored)->children[3].child, nullptr);  // unloaded
}

TEST(NodeTest, DeserializeRejectsCorruption) {
  Node leaf;
  leaf.is_leaf = true;
  leaf.items = {{"k", "v"}};
  std::string data = leaf.Serialize();
  data[6] ^= 0x40;
  EXPECT_TRUE(Node::Deserialize(data).status().IsCorruption());
  EXPECT_TRUE(Node::Deserialize("").status().IsCorruption());
}

TEST(NodeTest, RoutingClampsBelowFirstKey) {
  Node internal;
  internal.is_leaf = false;
  for (const char* k : {"g", "m", "t"}) {
    Node::ChildRef ref;
    ref.first_key = k;
    ref.addr = BlockAddr{4096, 4096};
    internal.children.push_back(std::move(ref));
  }
  EXPECT_EQ(internal.FindChildIdx("a"), 0u);  // below everything
  EXPECT_EQ(internal.FindChildIdx("g"), 0u);
  EXPECT_EQ(internal.FindChildIdx("h"), 0u);
  EXPECT_EQ(internal.FindChildIdx("m"), 1u);
  EXPECT_EQ(internal.FindChildIdx("s"), 1u);
  EXPECT_EQ(internal.FindChildIdx("z"), 2u);
}

}  // namespace
}  // namespace ptsb::btree
